// Command xoarlint runs the repo's static-analysis passes — the build-time
// enforcement of Xoar's least-privilege invariants (see internal/xoarlint).
//
// Usage:
//
//	xoarlint [-list] [./... | dir ...]
//
// With no arguments (or "./..."), the whole module containing the current
// directory is analyzed. Exit status: 0 clean, 1 violations, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"xoar/internal/xoarlint"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: xoarlint [-list] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range xoarlint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	var pkgs []*xoarlint.Package
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		var (
			loaded []*xoarlint.Package
			err    error
		)
		if arg == "./..." || arg == "..." {
			loaded, err = xoarlint.LoadModule(".")
		} else {
			loaded, err = xoarlint.LoadModuleDir(arg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarlint: %v\n", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := xoarlint.RunAll(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xoarlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
