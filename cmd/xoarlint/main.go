// Command xoarlint runs the repo's static-analysis passes — the build-time
// enforcement of Xoar's least-privilege invariants (see internal/xoarlint).
//
// Usage:
//
//	xoarlint [-list] [-json | -sarif | -github] [-matrix | -capmanifest | -surface | -hotpath] [./... | dir ...]
//
// With no arguments (or "./..."), the whole module containing the current
// directory is analyzed. Diagnostics print as text by default; -json emits
// a JSON document, -sarif a SARIF 2.1.0 log, and -github GitHub Actions
// ::error workflow commands for inline PR annotations.
//
// -matrix skips diagnostics and prints the privilege matrix built from
// internal/hv (the PRIVMATRIX.json golden artifact) to stdout. -capmanifest
// likewise prints the per-shard capability manifest derived from that matrix
// (the internal/capability/CAPMANIFEST.json golden artifact), and -surface
// prints its human-readable attack-surface report. -hotpath prints the
// hot-path allocation artifact built from //xoarlint:hot annotations (the
// HOTPATH.json golden artifact).
//
// Exit status: 0 clean, 1 violations, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"xoar/internal/xoarlint"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	githubOut := flag.Bool("github", false, "emit diagnostics as GitHub Actions ::error annotations")
	matrix := flag.Bool("matrix", false, "print the internal/hv privilege matrix (PRIVMATRIX.json) and exit")
	capmanifest := flag.Bool("capmanifest", false, "print the per-shard capability manifest (CAPMANIFEST.json) and exit")
	surface := flag.Bool("surface", false, "print the per-shard attack-surface report and exit")
	hotpath := flag.Bool("hotpath", false, "print the hot-path allocation artifact (HOTPATH.json) and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: xoarlint [-list] [-json | -sarif | -github] [-matrix | -capmanifest | -surface | -hotpath] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range xoarlint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if countTrue(*jsonOut, *sarifOut, *githubOut) > 1 {
		fmt.Fprintln(os.Stderr, "xoarlint: -json, -sarif and -github are mutually exclusive")
		os.Exit(2)
	}
	if countTrue(*matrix, *capmanifest, *surface, *hotpath) > 1 {
		fmt.Fprintln(os.Stderr, "xoarlint: -matrix, -capmanifest, -surface and -hotpath are mutually exclusive")
		os.Exit(2)
	}

	var pkgs []*xoarlint.Package
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		var (
			loaded []*xoarlint.Package
			err    error
		)
		if arg == "./..." || arg == "..." {
			loaded, err = xoarlint.LoadModule(".")
		} else {
			loaded, err = xoarlint.LoadModuleDir(arg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarlint: %v\n", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, loaded...)
	}

	if *matrix {
		m, err := xoarlint.BuildPrivMatrix(pkgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarlint: %v\n", err)
			os.Exit(2)
		}
		b, err := m.EncodeJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarlint: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
		return
	}
	if *capmanifest || *surface {
		m, err := xoarlint.BuildCapManifest(pkgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarlint: %v\n", err)
			os.Exit(2)
		}
		if *surface {
			fmt.Print(m.SurfaceReport())
			return
		}
		b, err := m.EncodeJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarlint: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
		return
	}

	if *hotpath {
		os.Stdout.Write(xoarlint.BuildHotPath(pkgs).EncodeJSON())
		return
	}

	diags := xoarlint.RunAll(pkgs)
	cwd, _ := os.Getwd()
	switch {
	case *jsonOut:
		if err := xoarlint.RenderJSON(os.Stdout, diags, cwd); err != nil {
			fmt.Fprintf(os.Stderr, "xoarlint: %v\n", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := xoarlint.RenderSARIF(os.Stdout, diags, cwd); err != nil {
			fmt.Fprintf(os.Stderr, "xoarlint: %v\n", err)
			os.Exit(2)
		}
	case *githubOut:
		xoarlint.RenderGitHub(os.Stdout, diags, cwd)
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xoarlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func countTrue(bs ...bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
