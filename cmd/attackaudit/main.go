// Command attackaudit runs the §6.2 security evaluation in detail: it boots
// both platform profiles with two co-located tenants, injects each of the 23
// guest-sourced registry vulnerabilities, and prints the computed blast
// radius of every attack plus the TCB accounting.
//
// Two further modes drive the adversarial suite directly:
//
//	-fuzz N    replay N generated hypercall sequences (seeds 1..N) against
//	           the manifest oracle, minimizing and printing any finding
//	-replay    execute the §2.3 attack-taxonomy scenarios and print the
//	           denial counts and blast radii
package main

import (
	"flag"
	"fmt"
	"os"

	"xoar"
	"xoar/internal/attack"
	"xoar/internal/experiments"
	"xoar/internal/seceval"
)

func main() {
	profileName := flag.String("profile", "both", "profile to audit: xoar, dom0, or both")
	dot := flag.Bool("dot", false, "also print the shard dependency graph in Graphviz format")
	fuzzN := flag.Int("fuzz", 0, "replay this many generated hypercall sequences (seeds 1..N) and exit")
	replay := flag.Bool("replay", false, "run the attack-taxonomy scenarios and exit")
	flag.Parse()

	if *fuzzN > 0 {
		os.Exit(runFuzz(*fuzzN))
	}
	if *replay {
		os.Exit(runReplay())
	}

	profiles := []xoar.Profile{xoar.XoarShards, xoar.MonolithicDom0}
	switch *profileName {
	case "xoar":
		profiles = profiles[:1]
	case "dom0":
		profiles = profiles[1:]
	case "both":
	default:
		fmt.Fprintln(os.Stderr, "attackaudit: unknown profile", *profileName)
		os.Exit(2)
	}

	for _, profile := range profiles {
		pl, err := xoar.New(profile, xoar.Config{Seed: 1})
		if err != nil {
			fatal(err)
		}
		attacker, err := pl.CreateGuest(xoar.GuestSpec{Name: "attacker", Net: true, Disk: true})
		if err != nil {
			fatal(err)
		}
		victim, err := pl.CreateGuest(xoar.GuestSpec{Name: "victim", Net: true, Disk: true})
		if err != nil {
			fatal(err)
		}

		fmt.Printf("=== %s ===\n", profile)
		tcb := pl.TCB()
		fmt.Printf("%s\n", tcb.String())
		for _, c := range tcb.Components {
			fmt.Printf("  trusted component: %s (%s) — %d source LoC\n", c.Name, c.Image, c.SrcLoC)
		}

		rep := pl.SecurityReport(attacker.Dom)
		fmt.Printf("\nguest-sourced CVE containment (attacker=%v, co-tenant=%v):\n", attacker.Dom, victim.Dom)
		for _, f := range rep.Findings {
			extra := ""
			if len(f.Reached) > 0 {
				extra = fmt.Sprintf(" reaches=%v", f.Reached)
			}
			fmt.Printf("  %-8s %-18s %-17s -> %-18s%s\n",
				f.Vuln.ID, f.Vuln.Vector, f.Vuln.Class, f.Outcome, extra)
		}
		fmt.Println("\nsummary:")
		for o, n := range rep.ByOutcome {
			fmt.Printf("  %-20s %d\n", o, n)
		}

		// Dynamic capability probes: assume each control component is fully
		// compromised and actually attempt hostile operations.
		fmt.Println("\ndynamic capability probes (compromised component -> capabilities actually obtained):")
		for _, c := range pl.Components() {
			probe := pl.ProbeCompromise(c.Dom, victim.Dom)
			got := probe.Obtained()
			if len(got) == 0 {
				fmt.Printf("  %-16s clean (nothing beyond its own service)\n", c.Name)
			} else {
				fmt.Printf("  %-16s %v\n", c.Name, got)
			}
		}

		if *dot && profile == xoar.XoarShards {
			fmt.Println("\ndependency graph:")
			fmt.Print(pl.Log.Dot())
		}
		fmt.Println()
		pl.Shutdown()
	}

	// §7.1: how much of the hypervisor's own surface could leave ring 0.
	{
		pl, err := xoar.New(xoar.XoarShards, xoar.Config{Seed: 1})
		if err != nil {
			fatal(err)
		}
		if _, err := pl.CreateGuest(xoar.GuestSpec{Name: "g", Net: true, Disk: true}); err != nil {
			fatal(err)
		}
		rep := seceval.HVSplit(pl.HV.HypercallCount)
		fmt.Println("=== hypervisor split (§7.1 future work) ===")
		fmt.Printf("ring-0 hypercalls: %d; deprivilegeable: %d\n", len(rep.Ring0Calls), len(rep.DeprivilegedCalls))
		fmt.Printf("observed traffic on a booted platform: ring-0 %d calls, deprivilegeable %d calls\n\n",
			rep.Ring0Traffic, rep.DeprivilegedTraffic)
		pl.Shutdown()
	}

	// Registry overview, independent of profile.
	fmt.Println("=== vulnerability registry (§2.2.1) ===")
	bySrc := map[seceval.Source]int{}
	for _, v := range seceval.Registry() {
		bySrc[v.Source]++
	}
	fmt.Printf("total studied: %d; guest-sourced: %d; admin-network: %d; host-os (excluded): %d\n",
		len(seceval.Registry()), bySrc[seceval.SrcGuest], bySrc[seceval.SrcAdminNet], bySrc[seceval.SrcHost])
}

// runFuzz is the CLI face of the seeded generator: the same sequences the
// Go fuzzer starts from, replayed one seed at a time with findings
// minimized to a checked-in-able reproducer.
func runFuzz(n int) int {
	bad := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		seq := attack.Generate(seed)
		res, err := attack.RunSequence(seq)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("seed %-4d persona=%-9v calls=%-2d attempted=%-2d denied=%-2d findings=%d\n",
			seed, seq.Persona, len(seq.Calls), res.Attempted, res.Denied, len(res.Findings))
		if len(res.Findings) == 0 {
			continue
		}
		bad++
		for _, f := range res.Findings {
			fmt.Printf("  FINDING %v\n", f)
		}
		min, err := attack.Minimize(seq)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  minimized reproducer (%d calls, add to testdata/fuzz): %q\n",
			len(min.Calls), min.Encode())
	}
	if bad > 0 {
		fmt.Printf("\n%d of %d sequences produced findings\n", bad, n)
		return 1
	}
	fmt.Printf("\nall %d sequences clean\n", n)
	return 0
}

// runReplay prints the §2.3 taxonomy artifact — the same table the drift
// test and the benchmark gate pin.
func runReplay() int {
	tbl, err := experiments.AttackTaxonomy()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("=== %s ===\n%s\n\n", tbl.ID, tbl.Title)
	for _, r := range tbl.Rows {
		fmt.Printf("  %-55s %6g %s\n", r.Label, r.Measured, r.Unit)
	}
	fmt.Println()
	for _, n := range tbl.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	escal := 0.0
	for _, r := range tbl.Rows {
		if len(r.Label) > 13 && r.Label[len(r.Label)-13:] == ": escalations" {
			escal += r.Measured
		}
	}
	if escal > 0 {
		fmt.Printf("\n%g escalations — the manifest oracle found uncovered successes\n", escal)
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attackaudit:", err)
	os.Exit(1)
}
