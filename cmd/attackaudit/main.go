// Command attackaudit runs the §6.2 security evaluation in detail: it boots
// both platform profiles with two co-located tenants, injects each of the 23
// guest-sourced registry vulnerabilities, and prints the computed blast
// radius of every attack plus the TCB accounting.
package main

import (
	"flag"
	"fmt"
	"os"

	"xoar"
	"xoar/internal/seceval"
)

func main() {
	profileName := flag.String("profile", "both", "profile to audit: xoar, dom0, or both")
	dot := flag.Bool("dot", false, "also print the shard dependency graph in Graphviz format")
	flag.Parse()

	profiles := []xoar.Profile{xoar.XoarShards, xoar.MonolithicDom0}
	switch *profileName {
	case "xoar":
		profiles = profiles[:1]
	case "dom0":
		profiles = profiles[1:]
	case "both":
	default:
		fmt.Fprintln(os.Stderr, "attackaudit: unknown profile", *profileName)
		os.Exit(2)
	}

	for _, profile := range profiles {
		pl, err := xoar.New(profile, xoar.Config{Seed: 1})
		if err != nil {
			fatal(err)
		}
		attacker, err := pl.CreateGuest(xoar.GuestSpec{Name: "attacker", Net: true, Disk: true})
		if err != nil {
			fatal(err)
		}
		victim, err := pl.CreateGuest(xoar.GuestSpec{Name: "victim", Net: true, Disk: true})
		if err != nil {
			fatal(err)
		}

		fmt.Printf("=== %s ===\n", profile)
		tcb := pl.TCB()
		fmt.Printf("%s\n", tcb.String())
		for _, c := range tcb.Components {
			fmt.Printf("  trusted component: %s (%s) — %d source LoC\n", c.Name, c.Image, c.SrcLoC)
		}

		rep := pl.SecurityReport(attacker.Dom)
		fmt.Printf("\nguest-sourced CVE containment (attacker=%v, co-tenant=%v):\n", attacker.Dom, victim.Dom)
		for _, f := range rep.Findings {
			extra := ""
			if len(f.Reached) > 0 {
				extra = fmt.Sprintf(" reaches=%v", f.Reached)
			}
			fmt.Printf("  %-8s %-18s %-17s -> %-18s%s\n",
				f.Vuln.ID, f.Vuln.Vector, f.Vuln.Class, f.Outcome, extra)
		}
		fmt.Println("\nsummary:")
		for o, n := range rep.ByOutcome {
			fmt.Printf("  %-20s %d\n", o, n)
		}

		// Dynamic capability probes: assume each control component is fully
		// compromised and actually attempt hostile operations.
		fmt.Println("\ndynamic capability probes (compromised component -> capabilities actually obtained):")
		for _, c := range pl.Components() {
			probe := pl.ProbeCompromise(c.Dom, victim.Dom)
			got := probe.Obtained()
			if len(got) == 0 {
				fmt.Printf("  %-16s clean (nothing beyond its own service)\n", c.Name)
			} else {
				fmt.Printf("  %-16s %v\n", c.Name, got)
			}
		}

		if *dot && profile == xoar.XoarShards {
			fmt.Println("\ndependency graph:")
			fmt.Print(pl.Log.Dot())
		}
		fmt.Println()
		pl.Shutdown()
	}

	// §7.1: how much of the hypervisor's own surface could leave ring 0.
	{
		pl, err := xoar.New(xoar.XoarShards, xoar.Config{Seed: 1})
		if err != nil {
			fatal(err)
		}
		if _, err := pl.CreateGuest(xoar.GuestSpec{Name: "g", Net: true, Disk: true}); err != nil {
			fatal(err)
		}
		rep := seceval.HVSplit(pl.HV.HypercallCount)
		fmt.Println("=== hypervisor split (§7.1 future work) ===")
		fmt.Printf("ring-0 hypercalls: %d; deprivilegeable: %d\n", len(rep.Ring0Calls), len(rep.DeprivilegedCalls))
		fmt.Printf("observed traffic on a booted platform: ring-0 %d calls, deprivilegeable %d calls\n\n",
			rep.Ring0Traffic, rep.DeprivilegedTraffic)
		pl.Shutdown()
	}

	// Registry overview, independent of profile.
	fmt.Println("=== vulnerability registry (§2.2.1) ===")
	bySrc := map[seceval.Source]int{}
	for _, v := range seceval.Registry() {
		bySrc[v.Source]++
	}
	fmt.Printf("total studied: %d; guest-sourced: %d; admin-network: %d; host-os (excluded): %d\n",
		len(seceval.Registry()), bySrc[seceval.SrcGuest], bySrc[seceval.SrcAdminNet], bySrc[seceval.SrcHost])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attackaudit:", err)
	os.Exit(1)
}
