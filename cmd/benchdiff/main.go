// Command benchdiff is the CI benchmark-regression gate: it parses `go test
// -bench` output, compares the custom metrics the benchmarks report (boot
// makespans, Table 6.1 totals, speedups — all deterministic under the sim's
// fixed seeds) against a checked-in baseline, and exits non-zero when a
// gated metric moves in its "worse" direction beyond tolerance.
//
//	go test -run '^$' -bench 'Pipeline|Table6' -benchtime=1x . > bench.out
//	benchdiff -baseline BENCH_baseline.json bench.out
//	benchdiff -baseline BENCH_baseline.json -update bench.out   # refresh values
//
// Only custom metrics (b.ReportMetric units) are gated — ns/op depends on
// host load and is deliberately ignored. The exception is allocs/op (exact
// under -benchmem): with -hotpath HOTPATH.json, every hot root that declares
// a bench= binding must measure exactly its static allocs/op budget, in both
// directions — a measured alloc the analyzer missed is an analyzer gap, and
// a static budget above the measurement is stale slack. Either one fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"xoar/internal/xoarlint"
)

// MetricGate is one gated metric of one benchmark.
type MetricGate struct {
	// Bench is the benchmark name as printed (without the -N GOMAXPROCS
	// suffix), e.g. "BenchmarkBootPipeline".
	Bench string `json:"bench"`
	// Metric is the custom unit reported via b.ReportMetric, e.g. "s-pipelined".
	Metric string `json:"metric"`
	// Value is the baseline.
	Value float64 `json:"value"`
	// Worse names the regression direction: "higher" (latency-like),
	// "lower" (throughput/speedup-like), or "either" (pinned value).
	Worse string `json:"worse"`
	// Tolerance overrides the file-level tolerance when > 0.
	Tolerance float64 `json:"tolerance,omitempty"`
	// AbsTolerance widens the band by an absolute amount in the metric's own
	// unit. It is the only way to gate a zero baseline (allocs/op = 0), where
	// a relative band is degenerate: any measured value would fail — or with
	// worse="higher", any value would pass a baseline of exactly 0 only.
	AbsTolerance float64 `json:"abs_tolerance,omitempty"`
	// Note is a human-readable reminder of what the metric means.
	Note string `json:"note,omitempty"`
}

// Baseline is the checked-in gate file.
type Baseline struct {
	// Tolerance is the default relative tolerance band (0.05 = 5%).
	Tolerance float64      `json:"tolerance"`
	Metrics   []MetricGate `json:"metrics"`
}

// parseBench extracts benchmark -> metric unit -> value from `go test
// -bench` output. Result lines look like:
//
//	BenchmarkBootPipeline   1   1080531 ns/op   104.0 s-pipelined   1.001 x-speedup
//
// i.e. name, iteration count, then value/unit pairs.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the GOMAXPROCS suffix (BenchmarkFoo-8 -> BenchmarkFoo).
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. "BenchmarkFoo\t--- FAIL")
		}
		metrics := out[name]
		if metrics == nil {
			metrics = make(map[string]float64)
			out[name] = metrics
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: %s: bad value %q", name, fields[i])
			}
			metrics[fields[i+1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// check compares one gate against a measured value and returns a non-empty
// complaint on regression.
func check(g MetricGate, got, defaultTol float64) string {
	tol := g.Tolerance
	if tol <= 0 {
		tol = defaultTol
	}
	band := tol*math.Abs(g.Value) + g.AbsTolerance
	switch g.Worse {
	case "higher":
		if got > g.Value+band {
			return fmt.Sprintf("%.6g exceeds baseline %.6g by more than the %.6g band", got, g.Value, band)
		}
	case "lower":
		if got < g.Value-band {
			return fmt.Sprintf("%.6g falls below baseline %.6g by more than the %.6g band", got, g.Value, band)
		}
	case "either":
		if math.Abs(got-g.Value) > band {
			return fmt.Sprintf("%.6g deviates from pinned baseline %.6g by more than the %.6g band", got, g.Value, band)
		}
	default:
		return fmt.Sprintf("bad gate direction %q (want higher/lower/either)", g.Worse)
	}
	return ""
}

// checkHotPath cross-checks the static allocs/op budgets in the hot-path
// artifact against the measured -benchmem allocs/op of each root's declared
// benchmark. Exact equality is required in both directions; a root whose
// bench metric is absent from the run fails (the gate must not silently
// vanish with the benchmark). Returns the number of failures.
func checkHotPath(path string, results map[string]map[string]float64) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 1
	}
	hp, err := xoarlint.DecodeHotPath(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 1
	}
	failures := 0
	checked := 0
	for _, root := range hp.Roots {
		if root.Bench == "" {
			continue
		}
		checked++
		got, ok := results[root.Bench]["allocs/op"]
		if !ok {
			fmt.Printf("FAIL hotpath %s: %s reported no allocs/op (run with -benchmem)\n", root.Root, root.Bench)
			failures++
			continue
		}
		if got != float64(root.AllocsPerOp) {
			dir := "static analysis missed an allocation"
			if got < float64(root.AllocsPerOp) {
				dir = "static budget is stale slack"
			}
			fmt.Printf("FAIL hotpath %s: %s measured %g allocs/op, static budget %d (%s)\n",
				root.Root, root.Bench, got, root.AllocsPerOp, dir)
			failures++
			continue
		}
		fmt.Printf("  ok hotpath %s: %s allocs/op = %d (measured == static)\n", root.Root, root.Bench, root.AllocsPerOp)
	}
	if checked == 0 {
		fmt.Printf("FAIL hotpath: no root in %s declares a bench binding\n", path)
		failures++
	}
	return failures
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline gate file")
	update := flag.Bool("update", false, "rewrite the baseline's values from this run instead of gating")
	hotpathPath := flag.String("hotpath", "", "hot-path artifact (HOTPATH.json); cross-check static allocs/op budgets against measured -benchmem values")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-baseline file] [-update] [bench-output-file]")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if base.Tolerance <= 0 {
		base.Tolerance = 0.05
	}

	results, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in input")
		os.Exit(2)
	}

	failures := 0
	for i, g := range base.Metrics {
		got, ok := results[g.Bench][g.Metric]
		if !ok {
			// A gated metric that vanished is a regression, not a skip —
			// otherwise deleting a benchmark silently drops its gate.
			fmt.Printf("FAIL %s %s: metric missing from run\n", g.Bench, g.Metric)
			failures++
			continue
		}
		if *update {
			base.Metrics[i].Value = got
			fmt.Printf("  ok %s %s: baseline <- %.6g\n", g.Bench, g.Metric, got)
			continue
		}
		if msg := check(g, got, base.Tolerance); msg != "" {
			fmt.Printf("FAIL %s %s: %s\n", g.Bench, g.Metric, msg)
			failures++
		} else {
			fmt.Printf("  ok %s %s: %.6g (baseline %.6g, worse=%s)\n", g.Bench, g.Metric, got, g.Value, g.Worse)
		}
	}

	if *hotpathPath != "" && !*update {
		failures += checkHotPath(*hotpathPath, results)
	}

	if *update {
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Printf("benchdiff: %d gated metric(s) regressed vs %s\n", failures, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d gated metric(s) within tolerance\n", len(base.Metrics))
}
