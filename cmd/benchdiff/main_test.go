package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: xoar
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable61_Memory 	       1	   3148518 ns/op	       128.0 MB-netback	       896.0 MB-total
BenchmarkTable62_Boot-8 	       1	    295511 ns/op	         1.508 x-console	         1.145 x-ping
BenchmarkBootPipeline   	       1	   1080531 ns/op	       128.7 ms-reclaimed	       104.0 s-pipelined	       104.1 s-serial	         1.001 x-speedup
PASS
ok  	xoar	0.011s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	if v := got["BenchmarkTable61_Memory"]["MB-total"]; v != 896.0 {
		t.Errorf("MB-total = %v", v)
	}
	// The -8 GOMAXPROCS suffix is stripped.
	if v := got["BenchmarkTable62_Boot"]["x-console"]; v != 1.508 {
		t.Errorf("x-console = %v (keys: %v)", v, got)
	}
	if v := got["BenchmarkBootPipeline"]["s-pipelined"]; v != 104.0 {
		t.Errorf("s-pipelined = %v", v)
	}
	// ns/op is parsed like any pair but never gated; presence is harmless.
	if v := got["BenchmarkBootPipeline"]["ns/op"]; v != 1080531 {
		t.Errorf("ns/op = %v", v)
	}
}

func TestParseBenchSkipsNonResultLines(t *testing.T) {
	got, err := parseBench(strings.NewReader("BenchmarkBroken \t--- FAIL\nnothing here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %v from non-result input", got)
	}
}

func TestCheckDirections(t *testing.T) {
	cases := []struct {
		name string
		g    MetricGate
		got  float64
		fail bool
	}{
		{"higher-ok", MetricGate{Value: 100, Worse: "higher"}, 104, false},
		{"higher-better-ok", MetricGate{Value: 100, Worse: "higher"}, 50, false},
		{"higher-regressed", MetricGate{Value: 100, Worse: "higher"}, 106, true},
		{"lower-ok", MetricGate{Value: 1.5, Worse: "lower"}, 1.46, false},
		{"lower-better-ok", MetricGate{Value: 1.5, Worse: "lower"}, 2.0, false},
		{"lower-regressed", MetricGate{Value: 1.5, Worse: "lower"}, 1.0, true},
		{"either-ok", MetricGate{Value: 896, Worse: "either"}, 900, false},
		{"either-drifted", MetricGate{Value: 896, Worse: "either"}, 1000, true},
		{"per-gate-tolerance", MetricGate{Value: 100, Worse: "higher", Tolerance: 0.5}, 140, false},
		// A zero baseline has a zero relative band: only an absolute
		// tolerance makes it gateable (allocs/op = 0).
		{"zero-baseline-exact", MetricGate{Value: 0, Worse: "higher"}, 0, false},
		{"zero-baseline-regressed", MetricGate{Value: 0, Worse: "higher"}, 1, true},
		{"abs-tolerance-ok", MetricGate{Value: 0, Worse: "higher", AbsTolerance: 0.5}, 0.4, false},
		{"abs-tolerance-regressed", MetricGate{Value: 0, Worse: "higher", AbsTolerance: 0.5}, 1, true},
		{"abs-widens-relative", MetricGate{Value: 100, Worse: "either", AbsTolerance: 10}, 114, false},
		{"bad-direction", MetricGate{Value: 1, Worse: "sideways"}, 1, true},
	}
	for _, c := range cases {
		msg := check(c.g, c.got, 0.05)
		if (msg != "") != c.fail {
			t.Errorf("%s: check = %q, want fail=%v", c.name, msg, c.fail)
		}
	}
}
