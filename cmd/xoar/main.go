// Command xoar boots the platform in either profile, creates guests, runs a
// short I/O demonstration, and prints the component inventory, the boot
// milestones, and the tail of the audit log.
//
//	xoar                       # boot the disaggregated platform
//	xoar -profile dom0         # boot the stock monolithic platform
//	xoar -guests 4             # create four guests
//	xoar -restart-netback 5s   # microreboot NetBack every 5 seconds
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xoar"
	"xoar/internal/sim"
)

func main() {
	profileName := flag.String("profile", "xoar", "platform profile: xoar or dom0")
	guests := flag.Int("guests", 2, "number of guests to create")
	restart := flag.Duration("restart-netback", 0, "NetBack microreboot interval (0 disables)")
	fast := flag.Bool("fast-restarts", false, "use recovery-box (fast) restarts")
	demoMB := flag.Int("demo-mb", 64, "per-guest demo transfer size in MB")
	flag.Parse()

	profile := xoar.XoarShards
	if *profileName == "dom0" {
		profile = xoar.MonolithicDom0
	}

	pl, err := xoar.New(profile, xoar.Config{Seed: 1})
	if err != nil {
		fatal(err)
	}
	defer pl.Shutdown()

	tm := pl.Boot.Timings
	fmt.Printf("booted %s: console ready %.1fs, network ready %.1fs, full platform %.1fs\n\n",
		profile, tm.ConsoleReady.Seconds(), tm.PingReady.Seconds(), tm.Done.Seconds())

	fmt.Println("control-plane components:")
	for _, c := range pl.Components() {
		tag := ""
		if c.Privileged {
			tag = " [privileged]"
		}
		fmt.Printf("  %-16s %-24s %4dMB  clients=%d%s\n", c.Dom, c.Name+" ("+c.Image+")", c.MemMB, len(c.Clients), tag)
	}

	if *restart > 0 {
		if err := pl.SetNetBackRestartPolicy(xoar.RestartPolicy{
			Interval: xoar.Duration(*restart / time.Nanosecond * time.Duration(sim.Nanosecond)),
			Fast:     *fast,
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("\nNetBack microreboots every %v (fast=%v)\n", *restart, *fast)
	}

	fmt.Printf("\ncreating %d guests and fetching %dMB each:\n", *guests, *demoMB)
	for i := 0; i < *guests; i++ {
		g, err := pl.CreateGuest(xoar.GuestSpec{
			Name: fmt.Sprintf("guest-%d", i), VCPUs: 2, Net: true, Disk: true,
		})
		if err != nil {
			fatal(err)
		}
		res, err := g.Fetch(int64(*demoMB)<<20, xoar.SinkDisk)
		if err != nil {
			fatal(err)
		}
		g.WriteConsole("demo transfer complete")
		fmt.Printf("  %s (%v): %.1f MB/s to disk, %d stalls, %d retransmits\n",
			g.Name, g.Dom, res.ThroughputMBps(), res.Stalls, res.Retransmits)
	}

	if *restart > 0 {
		for _, nb := range pl.Boot.NetBacks {
			if st, ok := pl.RestartStats(nb.Dom); ok {
				fmt.Printf("\nNetBack %v: %d microreboots, %.0fms avg downtime\n",
					nb.Dom, st.Restarts, st.TotalDowntime.Seconds()/float64(max(1, st.Restarts))*1000)
			}
		}
	}

	fmt.Println("\naudit log (tail):")
	recs := pl.Log.Records()
	start := 0
	if len(recs) > 12 {
		start = len(recs) - 12
	}
	for _, r := range recs[start:] {
		fmt.Printf("  %8.2fs  %-12s %-8v %s\n", r.Time.Seconds(), r.Kind, r.Dom, r.Arg)
	}
	if i := pl.Log.Verify(); i != -1 {
		fmt.Printf("audit log CORRUPT at record %d\n", i)
	} else {
		fmt.Printf("audit log verified: %d records, hash chain intact\n", pl.Log.Len())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xoar:", err)
	os.Exit(1)
}
