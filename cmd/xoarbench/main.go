// Command xoarbench regenerates the paper's evaluation: every table and
// figure of §6, printed as paper-vs-measured rows.
//
//	xoarbench                  # run everything at full scale
//	xoarbench -exp fig6.3      # one experiment
//	xoarbench -scale 0.1       # shrink workloads 10x for a quick pass
//	xoarbench -markdown        # emit EXPERIMENTS.md-style sections
//	xoarbench -metrics         # boot Xoar, run a workload, dump telemetry
//	xoarbench -metrics -json   # same, as JSON
//	xoarbench -trace out.json  # Chrome trace_event JSON of a batched boot
//	xoarbench -cluster         # serverless churn across a simulated fleet
//	xoarbench -cluster -hosts 16 -rate 2000 -guests 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xoar/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids: table6.1,table6.2,fig6.1,fig6.2,fig6.3,fig6.4,fig6.5,sec-tcb,sec-attacks,ablations,telemetry,boot-pipeline,cluster-churn")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = the paper's sizes)")
	markdown := flag.Bool("markdown", false, "emit markdown instead of text tables")
	metrics := flag.Bool("metrics", false, "boot the Xoar profile, run a workload, and print the telemetry snapshot")
	jsonOut := flag.Bool("json", false, "with -metrics: emit the snapshot as JSON")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON (telemetry-enabled boot + batched fleet build) to this file")
	clusterRun := flag.Bool("cluster", false, "run the cluster serverless-churn study (cold-start percentiles, placement, rebalancing)")
	hosts := flag.Int("hosts", 0, "with -cluster: fleet size (default 8)")
	rate := flag.Float64("rate", 0, "with -cluster: fleet-wide guest arrivals per second (default 1000)")
	guests := flag.Int("guests", 0, "with -cluster: total short-lived guests to submit (default 5000)")
	flag.Parse()

	if *clusterRun {
		cfg := experiments.DefaultClusterChurnConfig()
		if *hosts > 0 {
			cfg.Hosts = *hosts
		}
		if *rate > 0 {
			cfg.ArrivalsPerSec = *rate
		}
		if *guests > 0 {
			cfg.Guests = *guests
		}
		t, err := experiments.ClusterChurn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarbench: cluster: %v\n", err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Print(experiments.Markdown(t))
		} else {
			fmt.Print(experiments.Render(t))
		}
		if !*metrics && !expFlagSet() {
			return
		}
	}

	if *traceOut != "" {
		data, err := experiments.TraceJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarbench: trace: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "xoarbench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
		if !*metrics && !expFlagSet() {
			return
		}
	}

	if *metrics {
		snap, err := experiments.MetricsSnapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarbench: metrics: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			out, err := snap.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "xoarbench: metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(out))
		} else {
			fmt.Print(snap.Text())
		}
		// -metrics alone is a snapshot dump; run experiments only when the
		// user asked for some explicitly.
		if !expFlagSet() {
			return
		}
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	s := experiments.Scale(*scale)

	type runner struct {
		id  string
		run func() (experiments.Table, error)
	}
	runners := []runner{
		{"table6.1", experiments.MemoryOverhead},
		{"table6.2", experiments.BootTime},
		{"fig6.1", func() (experiments.Table, error) { return experiments.Postmark(s) }},
		{"fig6.2", func() (experiments.Table, error) { return experiments.Wget(s) }},
		{"fig6.3", func() (experiments.Table, error) {
			t, _, err := experiments.RestartThroughput(s, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
			return t, err
		}},
		{"fig6.4", func() (experiments.Table, error) { return experiments.KernelBuild(s) }},
		{"fig6.5", func() (experiments.Table, error) { return experiments.Apache(s) }},
		{"sec-tcb", experiments.TCBSize},
		{"sec-attacks", experiments.KnownAttacks},
		{"ablations", experiments.Ablations},
		{"telemetry", experiments.Telemetry},
		{"boot-pipeline", func() (experiments.Table, error) {
			n := int(16 * *scale)
			if n < 2 {
				n = 2
			}
			return experiments.BootPipeline(n)
		}},
		{"cluster-churn", func() (experiments.Table, error) {
			cfg := experiments.DefaultClusterChurnConfig()
			cfg.Guests = int(float64(cfg.Guests) * *scale)
			if cfg.Guests < 100 {
				cfg.Guests = 100
			}
			return experiments.ClusterChurn(cfg)
		}},
	}

	ran := 0
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		t, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "xoarbench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Print(experiments.Markdown(t))
		} else {
			fmt.Print(experiments.Render(t))
			fmt.Println()
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "xoarbench: no experiment matches %q\n", *exp)
		os.Exit(2)
	}
}

// expFlagSet reports whether -exp was passed explicitly.
func expFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			set = true
		}
	})
	return set
}
