package xoar_test

import (
	"fmt"
	"log"

	"xoar"
)

// The canonical flow: boot the disaggregated platform, create a guest,
// move data through the split drivers.
func Example() {
	pl, err := xoar.New(xoar.XoarShards, xoar.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()

	g, err := pl.CreateGuest(xoar.GuestSpec{Name: "web", VCPUs: 2, Net: true, Disk: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := g.Fetch(128<<20, xoar.SinkNull)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched %dMB at %.0f MB/s\n", res.Bytes>>20, res.ThroughputMBps())
	// Output: fetched 128MB at 117 MB/s
}

// Microreboots bound how long a compromised driver domain can live: NetBack
// is restored to its post-boot snapshot every two seconds while traffic runs.
func ExamplePlatform_SetNetBackRestartPolicy() {
	pl, err := xoar.New(xoar.XoarShards, xoar.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(xoar.GuestSpec{Name: "app", VCPUs: 2, Net: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := pl.SetNetBackRestartPolicy(xoar.RestartPolicy{Interval: 2 * xoar.Second, Fast: true}); err != nil {
		log.Fatal(err)
	}
	if _, err := g.Fetch(512<<20, xoar.SinkNull); err != nil {
		log.Fatal(err)
	}
	st, _ := pl.RestartStats(pl.Boot.NetBacks[0].Dom)
	fmt.Printf("transfer survived %d microreboots, %.0fms downtime each\n",
		st.Restarts, st.TotalDowntime.Seconds()/float64(st.Restarts)*1000)
	// Output: transfer survived 2 microreboots, 140ms downtime each
}

// The audit log answers the paper's forensic question: which guests were
// exposed to a shard during an incident window (§3.2.2).
func ExamplePlatform_DependentsOf() {
	pl, err := xoar.New(xoar.XoarShards, xoar.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()
	a, _ := pl.CreateGuest(xoar.GuestSpec{Name: "tenantA", Net: true})
	b, _ := pl.CreateGuest(xoar.GuestSpec{Name: "tenantB", Net: true})
	nb := pl.Boot.NetBacks[0].Dom
	exposed := pl.DependentsOf(nb, 0, pl.Now())
	fmt.Printf("guests exposed to a NetBack compromise: %v %v in %v\n",
		a.Dom, b.Dom, exposed)
	fmt.Printf("audit log intact: %v\n", pl.Log.Verify() == -1)
	// Output:
	// guests exposed to a NetBack compromise: dom9 dom10 in [dom9 dom10]
	// audit log intact: true
}

// Containment is computed from live privilege state: the same attack lands
// very differently on the two profiles.
func ExamplePlatform_SecurityReport() {
	for _, profile := range []xoar.Profile{xoar.MonolithicDom0, xoar.XoarShards} {
		pl, err := xoar.New(profile, xoar.Config{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		g, err := pl.CreateGuest(xoar.GuestSpec{Name: "attacker", Net: true, Disk: true})
		if err != nil {
			log.Fatal(err)
		}
		rep := pl.SecurityReport(g.Dom)
		whole := 0
		for _, f := range rep.Findings {
			if f.Outcome.String() == "whole-host" {
				whole++
			}
		}
		fmt.Printf("%v: %d of %d guest-reachable CVEs compromise the whole host\n",
			profile, whole, len(rep.Findings))
		pl.Shutdown()
	}
	// Output:
	// monolithic-dom0: 19 of 23 guest-reachable CVEs compromise the whole host
	// xoar-shards: 1 of 23 guest-reachable CVEs compromise the whole host
}
