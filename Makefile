GO ?= go

.PHONY: build test race vet fmt lint matrix capmanifest hotpath check bench bench-diff fuzz cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, so regressions can't land.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs the repo's own analyzers (internal/xoarlint): privilege-audit,
# sim-determinism, shard-layering and error-wrapping invariants. The same
# passes run inside `go test ./...` via xoarlint_test.go, so this target is
# the fast, focused entry point.
lint:
	$(GO) run ./cmd/xoarlint ./...

# matrix regenerates PRIVMATRIX.json, the privilege matrix privflow derives
# from internal/hv. TestPrivMatrixDrift fails until an hv privilege-surface
# change is reflected here, so the diff always shows the widened surface.
matrix:
	$(GO) run ./cmd/xoarlint -matrix > PRIVMATRIX.json

# capmanifest regenerates the per-shard capability manifests that boot
# profiles load their whitelists from (internal/capability/CAPMANIFEST.json).
# Derived from the privilege matrix crossed with the declared shard roles;
# TestCapManifestDrift fails until a surface change is reflected here.
# Written via a temp file: the generator go:embeds the manifest, so a direct
# `>` redirect would truncate the file before the binary compiles against it.
capmanifest:
	$(GO) run ./cmd/xoarlint -capmanifest > internal/capability/CAPMANIFEST.json.tmp
	mv internal/capability/CAPMANIFEST.json.tmp internal/capability/CAPMANIFEST.json

# hotpath regenerates HOTPATH.json, the hot-path allocation artifact the
# hotpath analyzer derives from //xoarlint:hot annotations: per-root
# reachable functions plus the declared allocs/op budget. TestHotPathDrift
# fails until a data-path change is reflected here, and bench-diff
# cross-checks the budgets against measured -benchmem allocs/op.
hotpath:
	$(GO) run ./cmd/xoarlint -hotpath > HOTPATH.json

# race runs the full suite under the race detector (the telemetry layer is
# exercised from parallel goroutines in its tests).
race:
	$(GO) test -race ./...

# bench boots the Xoar profile, drives a workload, and emits the telemetry
# snapshot as JSON — the machine-readable counterpart of `xoarbench` — then
# runs the cluster serverless-churn study at artifact scale.
bench:
	$(GO) run ./cmd/xoarbench -metrics -json
	$(GO) run ./cmd/xoarbench -cluster

# bench-diff is the CI benchmark-regression gate: run the gated benchmarks
# once (the sim is deterministic, so one iteration is exact) and compare
# their custom metrics against the checked-in baseline. After an intentional
# performance change, refresh the baseline with:
#   go run ./cmd/benchdiff -baseline BENCH_baseline.json -update bench.out
bench-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkBootPipeline|BenchmarkTable61_Memory|BenchmarkTable62_Boot|BenchmarkFig61_Postmark|BenchmarkDataPath_TxBatching|BenchmarkDataPath_Saturation10G|BenchmarkMicro_GrantMap|BenchmarkMicro_XenStoreWrite|BenchmarkMicro_RingBatchPop|BenchmarkMicro_SimEventsPerSec|BenchmarkClusterChurn|BenchmarkSec_AttackTaxonomy' -benchtime=1x -benchmem . | tee bench.out
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -hotpath HOTPATH.json bench.out

# fuzz runs the hypercall-sequence fuzzer against the manifest oracle. CI
# uses the default 60s smoke on every PR and FUZZTIME=10m on the nightly
# schedule; new failing inputs land in internal/attack/testdata/fuzz/ —
# minimize them with attack.Minimize and check in the reproducer.
FUZZTIME ?= 60s
fuzz:
	$(GO) test -fuzz=FuzzHypercallSequence -fuzztime=$(FUZZTIME) ./internal/attack

# cover measures enforcement-path coverage: how much of internal/hv's
# statement space the hv unit tests, the seceval probes, and the attack
# suite actually execute, plus the same view of internal/seceval itself.
# The floor is just under the merge-time ratio (94.0% when the gate was
# introduced): falling below it means new privileged surface landed in hv
# without adversarial tests reaching it.
HV_COVER_FLOOR ?= 93.0
cover:
	$(GO) test -coverprofile=cover_hv.out -coverpkg=./internal/hv ./internal/hv/... ./internal/seceval/... ./internal/attack/...
	$(GO) test -coverprofile=cover_seceval.out -coverpkg=./internal/seceval ./internal/seceval/... ./internal/attack/...
	@total=$$($(GO) tool cover -func=cover_hv.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	echo "internal/hv coverage: $$total% (floor: $(HV_COVER_FLOOR)%)"; \
	if awk -v t="$$total" -v f="$(HV_COVER_FLOOR)" 'BEGIN { exit !(t+0 < f+0) }'; then \
		echo "internal/hv coverage $$total% is below the $(HV_COVER_FLOOR)% floor"; exit 1; \
	fi

# check is the tier-1 gate: build + tests, plus vet, gofmt and xoarlint as
# guards.
check: build test vet fmt lint
