GO ?= go

.PHONY: build test vet fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, so regressions can't land.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# check is the tier-1 gate: build + tests, plus vet and gofmt as guards.
check: build test vet fmt
