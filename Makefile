GO ?= go

.PHONY: build test race vet fmt lint matrix capmanifest check bench bench-diff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, so regressions can't land.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs the repo's own analyzers (internal/xoarlint): privilege-audit,
# sim-determinism, shard-layering and error-wrapping invariants. The same
# passes run inside `go test ./...` via xoarlint_test.go, so this target is
# the fast, focused entry point.
lint:
	$(GO) run ./cmd/xoarlint ./...

# matrix regenerates PRIVMATRIX.json, the privilege matrix privflow derives
# from internal/hv. TestPrivMatrixDrift fails until an hv privilege-surface
# change is reflected here, so the diff always shows the widened surface.
matrix:
	$(GO) run ./cmd/xoarlint -matrix > PRIVMATRIX.json

# capmanifest regenerates the per-shard capability manifests that boot
# profiles load their whitelists from (internal/capability/CAPMANIFEST.json).
# Derived from the privilege matrix crossed with the declared shard roles;
# TestCapManifestDrift fails until a surface change is reflected here.
# Written via a temp file: the generator go:embeds the manifest, so a direct
# `>` redirect would truncate the file before the binary compiles against it.
capmanifest:
	$(GO) run ./cmd/xoarlint -capmanifest > internal/capability/CAPMANIFEST.json.tmp
	mv internal/capability/CAPMANIFEST.json.tmp internal/capability/CAPMANIFEST.json

# race runs the full suite under the race detector (the telemetry layer is
# exercised from parallel goroutines in its tests).
race:
	$(GO) test -race ./...

# bench boots the Xoar profile, drives a workload, and emits the telemetry
# snapshot as JSON — the machine-readable counterpart of `xoarbench` — then
# runs the cluster serverless-churn study at artifact scale.
bench:
	$(GO) run ./cmd/xoarbench -metrics -json
	$(GO) run ./cmd/xoarbench -cluster

# bench-diff is the CI benchmark-regression gate: run the gated benchmarks
# once (the sim is deterministic, so one iteration is exact) and compare
# their custom metrics against the checked-in baseline. After an intentional
# performance change, refresh the baseline with:
#   go run ./cmd/benchdiff -baseline BENCH_baseline.json -update bench.out
bench-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkBootPipeline|BenchmarkTable61_Memory|BenchmarkTable62_Boot|BenchmarkFig61_Postmark|BenchmarkDataPath_TxBatching|BenchmarkDataPath_Saturation10G|BenchmarkMicro_RingBatchPop|BenchmarkMicro_SimEventsPerSec|BenchmarkClusterChurn' -benchtime=1x -benchmem . | tee bench.out
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json bench.out

# check is the tier-1 gate: build + tests, plus vet, gofmt and xoarlint as
# guards.
check: build test vet fmt lint
