GO ?= go

.PHONY: build test race vet fmt lint check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, so regressions can't land.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs the repo's own analyzers (internal/xoarlint): privilege-audit,
# sim-determinism, shard-layering and error-wrapping invariants. The same
# passes run inside `go test ./...` via xoarlint_test.go, so this target is
# the fast, focused entry point.
lint:
	$(GO) run ./cmd/xoarlint ./...

# race runs the full suite under the race detector (the telemetry layer is
# exercised from parallel goroutines in its tests).
race:
	$(GO) test -race ./...

# bench boots the Xoar profile, drives a workload, and emits the telemetry
# snapshot as JSON — the machine-readable counterpart of `xoarbench`.
bench:
	$(GO) run ./cmd/xoarbench -metrics -json

# check is the tier-1 gate: build + tests, plus vet, gofmt and xoarlint as
# guards.
check: build test vet fmt lint
