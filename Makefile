GO ?= go

.PHONY: build test race vet fmt check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, so regressions can't land.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# race runs the full suite under the race detector (the telemetry layer is
# exercised from parallel goroutines in its tests).
race:
	$(GO) test -race ./...

# bench boots the Xoar profile, drives a workload, and emits the telemetry
# snapshot as JSON — the machine-readable counterpart of `xoarbench`.
bench:
	$(GO) run ./cmd/xoarbench -metrics -json

# check is the tier-1 gate: build + tests, plus vet and gofmt as guards.
check: build test vet fmt
