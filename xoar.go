// Package xoar is the public API of the Xoar platform reproduction: a
// deterministic model of the Xen virtualization platform in its stock
// monolithic layout and in the paper's disaggregated shard architecture
// ("Breaking Up is Hard to Do: Security and Functionality in a Commodity
// Hypervisor", SOSP 2011).
//
// Quickstart:
//
//	pl, err := xoar.New(xoar.XoarShards, xoar.Config{})
//	g, err := pl.CreateGuest(xoar.GuestSpec{Name: "web", Net: true, Disk: true})
//	res, err := g.Fetch(512<<20, xoar.SinkNull)
//	fmt.Printf("%.1f MB/s\n", res.ThroughputMBps())
//
// The package re-exports the platform surface from internal/core plus the
// workload, simulation-time, and security types examples need.
package xoar

import (
	"xoar/internal/core"
	"xoar/internal/guest"
	"xoar/internal/seceval"
	"xoar/internal/sim"
	"xoar/internal/workload"
	"xoar/internal/xtypes"
)

// Platform is a booted virtualization platform; see core.Platform.
type Platform = core.Platform

// Guest is a running guest VM with workload endpoints.
type Guest = core.Guest

// Profile selects the platform architecture.
type Profile = core.Profile

// Platform profiles.
const (
	// MonolithicDom0 is the stock Xen layout with a single control VM.
	MonolithicDom0 = core.MonolithicDom0
	// XoarShards is the paper's disaggregated architecture.
	XoarShards = core.XoarShards
)

// Config tunes platform assembly.
type Config = core.Config

// GuestSpec describes a guest to create.
type GuestSpec = core.GuestSpec

// RestartPolicy configures component microreboots.
type RestartPolicy = core.RestartPolicy

// New boots a platform.
func New(profile Profile, cfg Config) (*Platform, error) { return core.New(profile, cfg) }

// NewCluster boots n platforms on one shared virtual clock, enabling live
// migration between them via Platform.MigrateGuest.
func NewCluster(profile Profile, cfg Config, n int) ([]*Platform, error) {
	return core.NewCluster(profile, cfg, n)
}

// MigrationResult reports a completed live migration.
type MigrationResult = core.MigrationResult

// DomID identifies a domain.
type DomID = xtypes.DomID

// Duration and Time are virtual-clock types.
type (
	Duration = sim.Duration
	Time     = sim.Time
)

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
)

// Transfer sinks for Guest.Fetch.
const (
	// SinkNull discards fetched data (wget -O /dev/null).
	SinkNull = guest.SinkNull
	// SinkDisk writes fetched data through the guest's virtual disk.
	SinkDisk = guest.SinkDisk
)

// FetchResult reports a bulk transfer.
type FetchResult = guest.FetchResult

// HTTPBenchResult reports an Apache-benchmark run.
type HTTPBenchResult = guest.HTTPBenchResult

// PostmarkConfig parameterizes the Postmark benchmark.
type PostmarkConfig = workload.PostmarkConfig

// BuildConfig parameterizes a kernel build.
type BuildConfig = workload.BuildConfig

// SecurityReport is the §6.2.1 containment analysis output.
type SecurityReport = seceval.Report

// TCBReport is the §6.2 trusted-computing-base accounting.
type TCBReport = seceval.TCBReport
