package xoar

// The benchmarks below regenerate every table and figure in the paper's
// evaluation section (§6), one benchmark per artifact, plus ablations for
// the design choices DESIGN.md calls out. Each iteration runs the full
// experiment on a fresh simulated platform; the reported custom metrics are
// the figures' own units (MB/s, req/s, seconds, ops/s), with the paper's
// values recorded in EXPERIMENTS.md.
//
// The workloads run at a reduced scale to keep `go test -bench=.` quick;
// cmd/xoarbench runs them at the paper's full scale.

import (
	"strings"
	"testing"

	"xoar/internal/boot"
	"xoar/internal/core"
	"xoar/internal/experiments"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/ring"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

// benchScale keeps the -bench=. sweep fast; xoarbench uses 1.0.
const benchScale = 0.05

func findRow(b *testing.B, t experiments.Table, label string) experiments.Row {
	b.Helper()
	for _, r := range t.Rows {
		if r.Label == label {
			return r
		}
	}
	b.Fatalf("row %q missing from %s", label, t.ID)
	return experiments.Row{}
}

// BenchmarkTable61_Memory regenerates Table 6.1: per-shard memory.
func BenchmarkTable61_Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.MemoryOverhead()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(findRow(b, t, "total (full config)").Measured, "MB-total")
		b.ReportMetric(findRow(b, t, "netback").Measured, "MB-netback")
	}
}

// BenchmarkTable62_Boot regenerates Table 6.2: boot-time comparison.
func BenchmarkTable62_Boot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.BootTime()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(findRow(b, t, "console speedup").Measured, "x-console")
		b.ReportMetric(findRow(b, t, "ping speedup").Measured, "x-ping")
	}
}

// BenchmarkBootPipeline measures the SubmitAll build pipeline: makespan of
// an 8-guest fleet built serially (8 Submits) vs as one pipelined batch
// (construct of guest i+1 overlapped with the supervised boot of guest i).
// The pipelined makespan must be strictly below the serial sum — this is
// the metric BENCH_baseline.json gates in CI.
func BenchmarkBootPipeline(b *testing.B) {
	const fleet = 8
	for i := 0; i < b.N; i++ {
		t, err := experiments.BootPipeline(fleet)
		if err != nil {
			b.Fatal(err)
		}
		serial := findRow(b, t, "serial Submit makespan").Measured
		pipelined := findRow(b, t, "pipelined SubmitAll makespan").Measured
		if pipelined >= serial {
			b.Fatalf("pipelined makespan %.3fs not below serial %.3fs", pipelined, serial)
		}
		b.ReportMetric(serial, "s-serial")
		b.ReportMetric(pipelined, "s-pipelined")
		b.ReportMetric(serial/pipelined, "x-speedup")
		b.ReportMetric(findRow(b, t, "construct overlap reclaimed").Measured, "ms-reclaimed")
	}
}

// BenchmarkFig61_Postmark regenerates Figure 6.1: Postmark disk throughput.
func BenchmarkFig61_Postmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Postmark(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		// Row labels carry the scaled transaction count; the first pair is
		// always the 1K-file config on dom0 then xoar.
		b.ReportMetric(t.Rows[0].Measured, "ops/s-dom0")
		b.ReportMetric(t.Rows[1].Measured, "ops/s-xoar")
	}
}

// BenchmarkFig62_Wget regenerates Figure 6.2: wget network throughput.
func BenchmarkFig62_Wget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Wget(experiments.Scale(0.1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(findRow(b, t, "/dev/null (2GB) xoar").Measured, "MB/s-null")
		b.ReportMetric(findRow(b, t, "disk (2GB) xoar").Measured, "MB/s-disk")
		b.ReportMetric(findRow(b, t, "disk (2GB) dom0").Measured, "MB/s-disk-dom0")
	}
}

// BenchmarkFig63_Restarts regenerates Figure 6.3: throughput vs NetBack
// restart interval, slow and fast modes.
func BenchmarkFig63_Restarts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, pts, err := experiments.RestartThroughput(1, []int{1, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		base := findRow(b, t, "baseline (no restarts)").Measured
		b.ReportMetric(base, "MB/s-baseline")
		for _, p := range pts {
			if p.IntervalSec == 1 && !p.Fast {
				b.ReportMetric(p.MBps, "MB/s-slow-1s")
			}
			if p.IntervalSec == 10 && !p.Fast {
				b.ReportMetric(p.MBps, "MB/s-slow-10s")
			}
			if p.IntervalSec == 1 && p.Fast {
				b.ReportMetric(p.MBps, "MB/s-fast-1s")
			}
		}
	}
}

// BenchmarkFig64_KernelBuild regenerates Figure 6.4: kernel build, local and
// NFS, with and without restarts.
func BenchmarkFig64_KernelBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.KernelBuild(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(findRow(b, t, "xoar (local)").Measured, "s-local")
		b.ReportMetric(findRow(b, t, "xoar (nfs)").Measured, "s-nfs")
		b.ReportMetric(findRow(b, t, "xoar (nfs, restarts 5s)").Measured, "s-nfs-r5")
	}
}

// BenchmarkFig65_Apache regenerates Figure 6.5: the Apache benchmark across
// profiles and restart intervals.
func BenchmarkFig65_Apache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Apache(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(findRow(b, t, "dom0 throughput").Measured, "req/s-dom0")
		b.ReportMetric(findRow(b, t, "xoar throughput").Measured, "req/s-xoar")
		b.ReportMetric(findRow(b, t, "restarts 1s throughput").Measured, "req/s-r1")
	}
}

// BenchmarkSec_TCB regenerates the §6.2 TCB-size comparison.
func BenchmarkSec_TCB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TCBSize()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(findRow(b, t, "xoar source LoC").Measured, "LoC-xoar")
		b.ReportMetric(findRow(b, t, "dom0 source LoC").Measured, "LoC-dom0")
	}
}

// BenchmarkSec_Attacks regenerates the §6.2.1 known-attack containment study.
func BenchmarkSec_Attacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.KnownAttacks()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(findRow(b, t, "xoar contained").Measured, "contained")
		b.ReportMetric(findRow(b, t, "xoar whole-host").Measured, "whole-host")
		b.ReportMetric(findRow(b, t, "dom0 whole-host").Measured, "whole-host-dom0")
	}
}

// BenchmarkSec_AttackTaxonomy regenerates the §2.3 attack-taxonomy replay
// and reports the cross-scenario aggregates the baseline gates: total calls
// attempted and denied, oracle escalations (pinned at zero), and the summed
// blast radius with and without the microreboot bound.
func BenchmarkSec_AttackTaxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AttackTaxonomy()
		if err != nil {
			b.Fatal(err)
		}
		sum := func(suffix string) float64 {
			total := 0.0
			for _, r := range t.Rows {
				if strings.HasSuffix(r.Label, suffix) {
					total += r.Measured
				}
			}
			return total
		}
		b.ReportMetric(sum(": calls attempted"), "attack-attempted")
		b.ReportMetric(sum(": calls denied"), "attack-denied")
		b.ReportMetric(sum(": escalations"), "attack-escalations")
		b.ReportMetric(sum(": exposed guests (microreboot)"), "exposed-with-mr")
		b.ReportMetric(sum(": exposed guests (no microreboot)"), "exposed-no-mr")
	}
}

// --- Ablation benchmarks ------------------------------------------------------

// BenchmarkAblation_XenStoreSplit measures the XenStore-Logic microreboot:
// because contents live in XenStore-State, a Logic restart costs microseconds
// — the design rationale for the Logic/State split (§5.1).
func BenchmarkAblation_XenStoreSplit(b *testing.B) {
	env := sim.NewEnv(1)
	logic := xenstore.NewLogic(env, xenstore.NewState())
	c := logic.Connect(0, true)
	for i := 0; i < 500; i++ {
		c.Write(xenstore.TxNone, "/local/domain/7/key", "value")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logic.Restart()
		if _, err := c.Read(xenstore.TxNone, "/local/domain/7/key"); err != nil {
			b.Fatal("state lost across Logic restart")
		}
	}
	b.ReportMetric(float64(logic.Restarts()), "restarts")
}

// BenchmarkAblation_FastVsSlowRestart isolates the recovery-box optimization:
// the downtime difference between renegotiating vif state via XenStore and
// restoring it from the recovery box (Figure 6.3's two curves).
func BenchmarkAblation_FastVsSlowRestart(b *testing.B) {
	measure := func(fast bool) float64 {
		rig, err := experiments.BootRig(experiments.Xoar, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer rig.Close()
		if _, err := rig.NewGuest("g"); err != nil {
			b.Fatal(err)
		}
		eng := snapshot.NewEngine(rig.HV, rig.PL.BuilderDom)
		if err := eng.Manage(rig.PL.NetBacks[0].AsRestartable(), snapshot.Policy{
			Kind: snapshot.PolicyTimer, Interval: sim.Second, Fast: fast,
		}); err != nil {
			b.Fatal(err)
		}
		rig.Env.RunFor(10 * sim.Second)
		st, _ := eng.Stats(rig.PL.NetBacks[0].Dom)
		if st.Restarts == 0 {
			b.Fatal("no restarts")
		}
		return st.TotalDowntime.Seconds() / float64(st.Restarts) * 1000
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(measure(false), "ms-slow")
		b.ReportMetric(measure(true), "ms-fast")
	}
}

// BenchmarkAblation_PCIBackDestroy compares the privileged-component count
// with PCIBack resident versus destroyed after boot (§5.3).
func BenchmarkAblation_PCIBackDestroy(b *testing.B) {
	count := func(destroy bool) float64 {
		env := sim.NewEnv(1)
		h := hv.New(env, hw.NewMachine(env))
		var n float64
		done := false
		env.Spawn("boot", func(p *sim.Proc) {
			pl, err := boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{DestroyPCIBack: destroy})
			if err != nil {
				b.Error(err)
				return
			}
			// Count resident control-plane components: with PCIBack
			// destroyed the steady-state platform runs one fewer domain
			// (and no config-space owner at all).
			n = float64(len(h.Domains()))
			_ = pl
			done = true
		})
		env.RunFor(200 * sim.Second)
		env.Shutdown()
		if !done {
			b.Fatal("boot incomplete")
		}
		return n
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(count(false), "components-resident")
		b.ReportMetric(count(true), "components-destroyed")
	}
}

// BenchmarkAblation_SerializedBoot isolates the parallel-boot win behind
// Table 6.2.
func BenchmarkAblation_SerializedBoot(b *testing.B) {
	bootTime := func(serialize bool) float64 {
		env := sim.NewEnv(1)
		h := hv.New(env, hw.NewMachine(env))
		var secs float64
		env.Spawn("boot", func(p *sim.Proc) {
			pl, err := boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{Serialize: serialize})
			if err != nil {
				b.Error(err)
				return
			}
			secs = pl.Timings.Done.Seconds()
		})
		env.RunFor(300 * sim.Second)
		env.Shutdown()
		return secs
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(bootTime(false), "s-parallel")
		b.ReportMetric(bootTime(true), "s-serialized")
	}
}

// BenchmarkMicro_GrantMap measures the grant-table map/unmap fast path.
// Steady-state allocs/op is gated exactly in BENCH_baseline.json; the
// warm-up loop gets first-use map growth out of the timed region so the
// gate holds at -benchtime=1x.
func BenchmarkMicro_GrantMap(b *testing.B) {
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	shard, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "s", MemMB: 64, Shard: true})
	h.Unpause(hv.SystemCaller, shard.ID)
	g, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "g", MemMB: 64})
	h.Unpause(hv.SystemCaller, g.ID)
	ref, err := h.Grant(g.ID, shard.ID, 0, false)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		m, err := h.MapGrant(shard.ID, g.ID, ref, false)
		if err != nil {
			b.Fatal(err)
		}
		m.Unmap()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := h.MapGrant(shard.ID, g.ID, ref, false)
		if err != nil {
			b.Fatal(err)
		}
		m.Unmap()
	}
}

// BenchmarkMicro_XenStoreWrite measures the XenStore write path including
// watch fan-out. Steady-state allocs/op is gated exactly in
// BENCH_baseline.json; the warm-up loop creates the node and grows the
// event queue before the timed region so the gate holds at -benchtime=1x.
func BenchmarkMicro_XenStoreWrite(b *testing.B) {
	env := sim.NewEnv(1)
	logic := xenstore.NewLogic(env, xenstore.NewState())
	c := logic.Connect(0, true)
	c.Watch("/bench", "tok")
	for i := 0; i < 64; i++ {
		if err := c.Write(xenstore.TxNone, "/bench/key", "v"); err != nil {
			b.Fatal(err)
		}
		c.Events.TryRecv()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write(xenstore.TxNone, "/bench/key", "v"); err != nil {
			b.Fatal(err)
		}
		c.Events.TryRecv()
	}
}

// BenchmarkFeature_LiveMigration measures pre-copy migration of a guest with
// a ~200MB working set between two hosts: total time and blackout.
func BenchmarkFeature_LiveMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hosts, err := core.NewCluster(core.XoarShards, core.Config{Seed: 21}, 2)
		if err != nil {
			b.Fatal(err)
		}
		src, dst := hosts[0], hosts[1]
		g, err := src.CreateGuest(core.GuestSpec{Name: "m", VCPUs: 2, Net: true, Disk: true})
		if err != nil {
			b.Fatal(err)
		}
		d, _ := src.HV.Domain(g.Dom)
		for pfn := 0; pfn < 50000; pfn++ {
			d.Mem.Write(xtypes.PFN(pfn), []byte{byte(pfn)})
		}
		res, err := src.MigrateGuest(g, dst)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Stats.TotalTime.Seconds(), "s-total")
		b.ReportMetric(res.Stats.Downtime.Seconds()*1000, "ms-blackout")
		src.Shutdown()
	}
}

// BenchmarkFeature_PageSharing measures a same-page-sharing scan across a
// densely packed host and the headroom it reclaims.
func BenchmarkFeature_PageSharing(b *testing.B) {
	pl, err := core.New(core.XoarShards, core.Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer pl.Shutdown()
	// Three guests booted from the same image share most of their pages.
	zero := make([]byte, 1024)
	for i := 0; i < 3; i++ {
		g, err := pl.CreateGuest(core.GuestSpec{Name: "tenant" + string(rune('a'+i)), MemMB: 512})
		if err != nil {
			b.Fatal(err)
		}
		d, _ := pl.HV.Domain(g.Dom)
		for pfn := 0; pfn < 20000; pfn++ {
			d.Mem.Write(xtypes.PFN(pfn), zero)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := pl.DedupScan()
		b.ReportMetric(float64(st.SavedPages), "pages-saved")
	}
}

// BenchmarkDataPath_TxBatching measures transmit descriptors serviced per
// NetBack wakeup at saturation: the req_event/rsp_event suppression protocol
// versus the notify-per-descriptor ablation. The gated invariant is the
// batching win itself — at least 4 descriptors per wakeup.
func BenchmarkDataPath_TxBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TxBatching(200)
		if err != nil {
			b.Fatal(err)
		}
		sup := findRow(b, t, "descs/wakeup (suppressed)").Measured
		abl := findRow(b, t, "descs/wakeup (always-notify)").Measured
		if sup < 4*abl {
			b.Fatalf("suppression services %.1f descs/wakeup vs %.1f ablated; want >= 4x", sup, abl)
		}
		b.ReportMetric(sup, "descs-wakeup")
		b.ReportMetric(findRow(b, t, "amortization").Measured, "x-amortized")
	}
}

// BenchmarkDataPath_Saturation10G reruns the Figure 6.2-style bulk transfer
// on a 10GbE machine: with batched rings the NetBack shard must saturate the
// faster wire just like dom0 (overhead within noise).
func BenchmarkDataPath_Saturation10G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Saturation(experiments.Scale(0.1), []hw.NICModel{hw.NICModel10G})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(findRow(b, t, "ixgbe dom0").Measured, "MB/s-dom0")
		b.ReportMetric(findRow(b, t, "ixgbe xoar").Measured, "MB/s-xoar")
		b.ReportMetric(findRow(b, t, "ixgbe shard overhead").Measured, "pct-overhead")
	}
}

// BenchmarkMicro_SimEventsPerSec measures the simulator's event loop under a
// steady wakeup load: 64 ticker processes sleeping 1ms each, 640 scheduled
// events per iteration. With the event free list, recycled timers and the
// buffered proc handoff, the steady-state loop must stay allocation-free —
// allocs/op and B/op are gated at zero; events/op pins the deterministic
// event count, and evts/s reports raw wall-clock throughput (ungated).
func BenchmarkMicro_SimEventsPerSec(b *testing.B) {
	env := sim.NewEnv(1)
	const tickers = 64
	events := 0
	for i := 0; i < tickers; i++ {
		env.Spawn("tick", func(p *sim.Proc) {
			for {
				p.Sleep(sim.Millisecond)
				events++
			}
		})
	}
	// Warm up: let the free list and the run queue reach steady state, and
	// churn some cancels through the stale-compaction path.
	for i := 0; i < 200; i++ {
		cancel := env.After(10*sim.Second, func() {})
		cancel()
	}
	env.RunFor(100 * sim.Millisecond)
	events = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.RunFor(10 * sim.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "evts/s")
	}
	env.Shutdown()
}

// BenchmarkClusterChurn runs the cluster serverless-churn artifact at full
// scale: an 8-host fleet, 5000 micro guests at 1000 arrivals/s. Cold-start
// percentiles, failure and migration counts, and placement spread are all
// deterministic and gated in BENCH_baseline.json.
func BenchmarkClusterChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ClusterChurn(experiments.DefaultClusterChurnConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(findRow(b, t, "cold-start p50").Measured, "ms-p50")
		b.ReportMetric(findRow(b, t, "cold-start p95").Measured, "ms-p95")
		b.ReportMetric(findRow(b, t, "cold-start p99").Measured, "ms-p99")
		b.ReportMetric(findRow(b, t, "launched").Measured, "launched")
		b.ReportMetric(findRow(b, t, "failed").Measured, "failed")
		b.ReportMetric(findRow(b, t, "placement spread").Measured, "spread")
		b.ReportMetric(findRow(b, t, "rebalance migrations").Measured, "migrations")
	}
}

// BenchmarkMicro_RingBatchPop measures the batched ring transfer fast path:
// a full-ring push and drain per iteration. The hot pump path must stay
// allocation-free — allocs/op is gated at zero.
func BenchmarkMicro_RingBatchPop(b *testing.B) {
	env := sim.NewEnv(1)
	r := ring.New[int, int](env, ring.DefaultSlots)
	reqs := make([]int, ring.DefaultSlots)
	acks := make([]int, ring.DefaultSlots)
	buf := make([]int, ring.DefaultSlots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.TryPushRequestBatch(reqs) != len(reqs) {
			b.Fatal("push stalled")
		}
		n := r.TryPopRequestBatch(buf)
		if n != len(reqs) {
			b.Fatalf("popped %d", n)
		}
		if err := r.PushResponseBatch(acks[:n]); err != nil {
			b.Fatal(err)
		}
		if got := r.TryPopResponseBatch(buf); got != n {
			b.Fatalf("acked %d", got)
		}
	}
}
