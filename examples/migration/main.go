// Live migration: two Xoar hosts on one management network. A guest with a
// large dirtied working set moves from host A to host B while (conceptually)
// running: iterative pre-copy keeps the blackout to tens of milliseconds
// while the bulk of memory crosses the wire in the background. Afterwards
// the destination toolstack re-wires the guest's devices through its own
// driver shards and I/O resumes.
//
// This is the enterprise feature the paper leans on when arguing against
// hypervisor-removal designs (§2.3.1): without an interposing platform there
// is no live migration.
package main

import (
	"fmt"
	"log"

	"xoar"
	"xoar/internal/xtypes"
)

func main() {
	hosts, err := xoar.NewCluster(xoar.XoarShards, xoar.Config{Seed: 21}, 2)
	if err != nil {
		log.Fatal(err)
	}
	src, dst := hosts[0], hosts[1]
	defer src.Shutdown()

	g, err := src.CreateGuest(xoar.GuestSpec{Name: "roamer", VCPUs: 2, Net: true, Disk: true})
	if err != nil {
		log.Fatal(err)
	}
	// Give the guest a working set worth moving (~200MB touched).
	d, _ := src.HV.Domain(g.Dom)
	for i := 0; i < 50000; i++ {
		d.Mem.Write(xtypes.PFN(i), []byte{byte(i)})
	}
	fmt.Printf("guest %v on source host, %d pages touched\n", g.Dom, d.Mem.TouchedPages())

	res, err := src.MigrateGuest(g, dst)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("migrated in %d pre-copy rounds: %d pages moved, total %.2fs, blackout %.0fms\n",
		st.Rounds, st.PagesCopied, st.TotalTime.Seconds(), st.Downtime.Seconds()*1000)

	// The guest now runs on the destination with its devices re-wired.
	fmt.Printf("guest is now %v on the destination host\n", res.Guest.Dom)
	fr, err := res.Guest.Fetch(128<<20, xoar.SinkDisk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-migration I/O through the destination's shards: %.1f MB/s\n", fr.ThroughputMBps())

	// Both audit logs tell the story: departure on the source, adoption on
	// the destination.
	fmt.Printf("source audit: destroy records = %d; destination audit: link records = %d\n",
		src.Log.KindCount("destroy"), dst.Log.KindCount("link-shard"))
}
