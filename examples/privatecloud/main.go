// Private cloud scenario (§3.4.2): coarse-grained resource partitioning.
// Each user receives a personal Toolstack with the driver shards'
// administrative privileges delegated to it; the hypervisor audits every
// management call against the parent-toolstack flag, so one user's toolstack
// cannot touch another user's VMs, and per-toolstack quotas bound resource
// consumption.
package main

import (
	"fmt"
	"log"

	"xoar"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
)

func main() {
	// Two management toolstacks: one per user.
	pl, err := xoar.New(xoar.XoarShards, xoar.Config{Seed: 3, Toolstacks: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()

	// User 1's toolstack starts with nothing: creating a networked guest
	// fails until the drivers are delegated to it.
	if _, err := pl.CreateGuest(xoar.GuestSpec{Name: "u1-early", Net: true, Toolstack: 1}); err != nil {
		fmt.Println("user 1 before delegation:", err)
	}
	if err := pl.DelegateDrivers(1); err != nil {
		log.Fatal(err)
	}

	// Quotas: user 1 may run at most 2 VMs / 3GB.
	pl.Boot.Toolstacks[1].SetQuota(toolstack.Quota{MaxVMs: 2, MaxMemMB: 3 * 1024})

	u0, err := pl.CreateGuest(xoar.GuestSpec{Name: "u0-app", Net: true, Disk: true, Toolstack: 0})
	if err != nil {
		log.Fatal(err)
	}
	u1a, err := pl.CreateGuest(xoar.GuestSpec{Name: "u1-app", Net: true, Disk: true, Toolstack: 1})
	if err != nil {
		log.Fatal(err)
	}
	u1b, err := pl.CreateGuest(xoar.GuestSpec{Name: "u1-batch", Disk: true, Toolstack: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 0 runs %v; user 1 runs %v, %v\n", u0.Dom, u1a.Dom, u1b.Dom)

	// Quota enforcement: a third VM for user 1 is refused.
	if _, err := pl.CreateGuest(xoar.GuestSpec{Name: "u1-extra", Toolstack: 1}); err != nil {
		fmt.Println("user 1 quota enforced:", err)
	}

	// Isolation of management rights: user 1's toolstack cannot destroy a
	// VM owned by user 0 — the hypervisor audits the parent-toolstack flag.
	var attackErr error
	done := false
	pl.Env.Spawn("cross-tenant-attack", func(p *sim.Proc) {
		attackErr = pl.Boot.Toolstacks[1].DestroyVM(p, u0.Dom)
		done = true
	})
	pl.Advance(xoar.Second)
	if !done {
		log.Fatal("attack did not run")
	}
	fmt.Println("user 1 toolstack attacking user 0's VM:", attackErr)

	// Each user manages their own slice freely.
	if err := pl.DestroyGuest(u1b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 1 destroyed its own VM fine; user 0's VM still alive: %v\n",
		func() bool { _, err := pl.HV.Domain(u0.Dom); return err == nil }())
}
