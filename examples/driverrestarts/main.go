// Driver restarts: Figure 6.3 live. Sweeps the NetBack microreboot interval
// from 1s to 10s in both restart modes while a guest downloads 2GB, printing
// the throughput curve the paper plots — the cost of a restart is dominated
// by TCP's retransmission timers, not the raw device downtime.
package main

import (
	"fmt"
	"log"

	"xoar"
)

func run(interval xoar.Duration, fast bool) float64 {
	pl, err := xoar.New(xoar.XoarShards, xoar.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(xoar.GuestSpec{Name: "wget", VCPUs: 2, Net: true})
	if err != nil {
		log.Fatal(err)
	}
	if interval > 0 {
		if err := pl.SetNetBackRestartPolicy(xoar.RestartPolicy{Interval: interval, Fast: fast}); err != nil {
			log.Fatal(err)
		}
	}
	res, err := g.Fetch(2<<30, xoar.SinkNull)
	if err != nil {
		log.Fatal(err)
	}
	return res.ThroughputMBps()
}

func main() {
	baseline := run(0, false)
	fmt.Printf("baseline (no restarts): %.1f MB/s\n\n", baseline)
	fmt.Printf("%-10s %-16s %-16s\n", "interval", "slow (260ms)", "fast (140ms)")
	for s := 1; s <= 10; s++ {
		slow := run(xoar.Duration(s)*xoar.Second, false)
		fast := run(xoar.Duration(s)*xoar.Second, true)
		fmt.Printf("%-10s %6.1f MB/s %3.0f%% %6.1f MB/s %3.0f%%\n",
			fmt.Sprintf("%ds", s),
			slow, slow/baseline*100,
			fast, fast/baseline*100)
	}
	fmt.Println("\npaper: ~8% loss at 10s, ~58% at 1s (slow); fast helps most at small intervals")
}
