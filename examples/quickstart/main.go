// Quickstart: boot the disaggregated platform, create one guest with a
// network interface and a disk, download a file through the split network
// driver onto the virtual disk, and look at what the platform did.
package main

import (
	"fmt"
	"log"

	"xoar"
)

func main() {
	// Boot the Xoar profile: Bootstrapper orchestrates XenStore, the
	// Console Manager, the Builder, PCIBack, the driver domains and a
	// toolstack, then destroys itself.
	pl, err := xoar.New(xoar.XoarShards, xoar.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()
	fmt.Printf("platform up in %.1fs of virtual time\n", pl.Boot.Timings.Done.Seconds())

	// Create a guest. The toolstack asks the Builder to construct it, links
	// it to the NetBack and BlkBack shards, and connects the frontends.
	g, err := pl.CreateGuest(xoar.GuestSpec{
		Name:  "quickstart",
		VCPUs: 2,
		Net:   true,
		Disk:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guest %s running as %v\n", g.Name, g.Dom)

	// Download 512MB from the LAN peer straight onto the guest's disk:
	// wire -> NIC -> NetBack -> I/O ring -> netfront -> blkfront -> BlkBack
	// -> disk.
	res, err := g.Fetch(512<<20, xoar.SinkDisk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched %dMB at %.1f MB/s\n", res.Bytes>>20, res.ThroughputMBps())

	// The guest's console is multiplexed by the Console Manager shard.
	if err := g.WriteConsole("quickstart: download complete"); err != nil {
		log.Fatal(err)
	}
	pl.Advance(xoar.Second)
	fmt.Printf("console says: %q\n", g.ConsoleBuffer())

	// Every control-plane action landed in the tamper-evident audit log.
	fmt.Printf("audit log: %d records, verify=%d (-1 means intact)\n",
		pl.Log.Len(), pl.Log.Verify())
}
