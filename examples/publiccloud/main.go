// Public cloud scenario (§3.4.1): densely packed, mutually untrusting
// tenants on one host. The example shows the three Xoar mechanisms working
// together:
//
//  1. sharing constraints — a tenant can refuse to share driver shards with
//     anyone outside its own constraint group, and VM creation fails rather
//     than violating the policy;
//  2. microreboots — NetBack is restored to a known-good state every few
//     seconds, bounding how long a compromise of it can live;
//  3. secure audit — after a compromise is detected, the audit log answers
//     "which tenants were exposed to this shard, and when?".
package main

import (
	"errors"
	"fmt"
	"log"

	"xoar"
)

func main() {
	pl, err := xoar.New(xoar.XoarShards, xoar.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()

	// Tenant A insists on exclusive shards: its constraint tag locks the
	// NetBack/BlkBack it uses to tenant-A guests only.
	a1, err := pl.CreateGuest(xoar.GuestSpec{
		Name: "tenantA-web", Net: true, Disk: true, ConstraintTag: "tenantA",
	})
	if err != nil {
		log.Fatal(err)
	}
	a2, err := pl.CreateGuest(xoar.GuestSpec{
		Name: "tenantA-db", Net: true, Disk: true, ConstraintTag: "tenantA",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant A running: %v, %v (shards locked to tag %q)\n", a1.Dom, a2.Dom, "tenantA")

	// Tenant B cannot be forced into tenant A's shards: with only one NIC
	// on this host, creation fails instead (§3.2.1).
	_, err = pl.CreateGuest(xoar.GuestSpec{
		Name: "tenantB-web", Net: true, ConstraintTag: "tenantB",
	})
	fmt.Printf("tenant B placement refused as expected: %v\n", errors.Unwrap(err) != nil || err != nil)

	// Reduce the temporal attack surface: NetBack microreboots every 5s
	// using the fast (recovery box) path.
	if err := pl.SetNetBackRestartPolicy(xoar.RestartPolicy{Interval: 5 * xoar.Second, Fast: true}); err != nil {
		log.Fatal(err)
	}

	// Tenant A's workload runs across the restarts.
	res, err := a1.Fetch(1<<30, xoar.SinkNull)
	if err != nil {
		log.Fatal(err)
	}
	nb := pl.Boot.NetBacks[0]
	st, _ := pl.RestartStats(nb.Dom)
	fmt.Printf("1GB served at %.1f MB/s across %d NetBack microreboots (%.0fms avg downtime)\n",
		res.ThroughputMBps(), st.Restarts, st.TotalDowntime.Seconds()/float64(st.Restarts)*1000)

	// Suppose NetBack is later found to have been compromised between t1
	// and t2. Who was exposed? The hash-chained audit log knows.
	t1, t2 := xoar.Time(0), pl.Now()
	exposed := pl.DependentsOf(nb.Dom, t1, t2)
	fmt.Printf("forensics: guests exposed to %v during the incident window: %v\n", nb.Dom, exposed)

	// And what would each registry CVE have yielded the attacker?
	rep := pl.SecurityReport(a1.Dom)
	fmt.Println("containment summary for a compromise originating in", a1.Dom, ":")
	for outcome, n := range rep.ByOutcome {
		fmt.Printf("  %-20v %d CVEs\n", outcome, n)
	}
}
