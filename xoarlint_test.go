package xoar

// This test wires xoarlint into tier-1: `go test ./...` fails on any
// violation of the statically enforced invariants (see internal/xoarlint
// and the "Statically enforced invariants" section of DESIGN.md), so the
// linter cannot drift out of CI or local workflows.

import (
	"testing"

	"xoar/internal/xoarlint"
)

func TestXoarlintModuleClean(t *testing.T) {
	pkgs, err := xoarlint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range xoarlint.RunAll(pkgs) {
		t.Errorf("%s", d)
	}
}
