package xoar

// This test wires xoarlint into tier-1: `go test ./...` fails on any
// violation of the statically enforced invariants (see internal/xoarlint
// and the "Statically enforced invariants" section of DESIGN.md), so the
// linter cannot drift out of CI or local workflows.

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"xoar/internal/capability"
	"xoar/internal/xoarlint"
)

func TestXoarlintModuleClean(t *testing.T) {
	pkgs, err := xoarlint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range xoarlint.RunAll(pkgs) {
		t.Errorf("%s", d)
	}
}

// TestPrivMatrixDrift pins PRIVMATRIX.json — the generated map of which
// privilege each hypervisor entry point demands and what state it touches
// — to the source. Any change to hv's privilege surface must regenerate
// the artifact, which puts the widened/narrowed surface in the diff where
// reviewers can see it.
func TestPrivMatrixDrift(t *testing.T) {
	checked, err := os.ReadFile("PRIVMATRIX.json")
	if err != nil {
		t.Fatalf("reading checked-in matrix: %v (regenerate with: make matrix)", err)
	}
	pkgs, err := xoarlint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	built, err := xoarlint.BuildPrivMatrix(pkgs)
	if err != nil {
		t.Fatalf("building matrix: %v", err)
	}
	enc, err := built.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(checked, enc) {
		return
	}
	old, err := xoarlint.DecodePrivMatrix(checked)
	if err != nil {
		t.Fatalf("PRIVMATRIX.json does not parse: %v (regenerate with: make matrix)", err)
	}
	diff := xoarlint.DiffPrivMatrices(old, built)
	if len(diff) == 0 {
		diff = []string{"(formatting only)"}
	}
	t.Errorf("PRIVMATRIX.json is stale — hv's privilege surface changed:\n  %s\nregenerate with: make matrix",
		strings.Join(diff, "\n  "))
}

// TestCapManifestDrift pins internal/capability/CAPMANIFEST.json — the
// per-shard grant sets every boot whitelist is built from — to its
// derivation (privilege matrix × role declarations × ring classification).
// A change to hv's audits, the shard roles, or the ring map must regenerate
// the manifest, surfacing the privilege delta in review.
func TestCapManifestDrift(t *testing.T) {
	checked, err := os.ReadFile("internal/capability/CAPMANIFEST.json")
	if err != nil {
		t.Fatalf("reading checked-in manifest: %v (regenerate with: make capmanifest)", err)
	}
	pkgs, err := xoarlint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	built, err := xoarlint.BuildCapManifest(pkgs)
	if err != nil {
		t.Fatalf("building manifest: %v", err)
	}
	enc, err := built.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(checked, enc) {
		return
	}
	old, err := capability.DecodeManifest(checked)
	if err != nil {
		t.Fatalf("CAPMANIFEST.json does not parse: %v (regenerate with: make capmanifest)", err)
	}
	diff := capability.DiffManifests(old, built)
	if len(diff) == 0 {
		diff = []string{"(formatting only)"}
	}
	t.Errorf("CAPMANIFEST.json is stale — the derived grant sets changed:\n  %s\nregenerate with: make capmanifest",
		strings.Join(diff, "\n  "))
}

// TestHotPathDrift pins HOTPATH.json — the generated hot-path allocation
// artifact: every //xoarlint:hot root with its declared allocs/op budget
// and the functions reachable from it — to the source. Severing an
// annotation, adding a call into a hot loop, or changing a budget must
// regenerate the artifact, so the data-path delta lands in the diff where
// reviewers can see it (and bench-diff re-checks the budgets against
// measured -benchmem numbers).
func TestHotPathDrift(t *testing.T) {
	checked, err := os.ReadFile("HOTPATH.json")
	if err != nil {
		t.Fatalf("reading checked-in hot-path artifact: %v (regenerate with: make hotpath)", err)
	}
	pkgs, err := xoarlint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	built := xoarlint.BuildHotPath(pkgs)
	if len(built.Roots) == 0 {
		t.Fatal("no //xoarlint:hot roots found — the data-path annotations were severed")
	}
	enc := built.EncodeJSON()
	if bytes.Equal(checked, enc) {
		return
	}
	old, err := xoarlint.DecodeHotPath(checked)
	if err != nil {
		t.Fatalf("HOTPATH.json does not parse: %v (regenerate with: make hotpath)", err)
	}
	diff := xoarlint.DiffHotPath(old, built)
	if len(diff) == 0 {
		diff = []string{"(formatting only)"}
	}
	t.Errorf("HOTPATH.json is stale — the hot-path surface changed:\n  %s\nregenerate with: make hotpath",
		strings.Join(diff, "\n  "))
}

// TestArtifactDeterminism generates the golden artifacts twice from
// independent module loads and requires byte identity, so the drift gates
// above can never flake on map iteration order.
func TestArtifactDeterminism(t *testing.T) {
	gen := func() ([]byte, []byte, []byte) {
		pkgs, err := xoarlint.LoadModule(".")
		if err != nil {
			t.Fatalf("loading module: %v", err)
		}
		m, err := xoarlint.BuildPrivMatrix(pkgs)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := m.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		c, err := xoarlint.BuildCapManifest(pkgs)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := c.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		hb := xoarlint.BuildHotPath(pkgs).EncodeJSON()
		return mb, cb, hb
	}
	m1, c1, h1 := gen()
	m2, c2, h2 := gen()
	if !bytes.Equal(m1, m2) {
		t.Error("two -matrix generations differ byte-wise")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("two -capmanifest generations differ byte-wise")
	}
	if !bytes.Equal(h1, h2) {
		t.Error("two -hotpath generations differ byte-wise")
	}
}
