module xoar

go 1.22
