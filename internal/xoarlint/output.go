package xoarlint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Machine-readable diagnostic output, consumed by the CI lint job: -json
// for tooling, SARIF 2.1.0 for code-scanning upload, and GitHub workflow
// commands for inline PR annotations. File paths are relativized against
// root (the invocation directory) so annotations resolve inside the
// repository checkout regardless of the runner's absolute paths.

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// RenderJSON writes diagnostics as a single JSON document.
func RenderJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := struct {
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
	}{Diagnostics: []jsonDiagnostic{}}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RenderSARIF writes diagnostics as a minimal SARIF 2.1.0 log: one run,
// one rule per analyzer, error-level results.
func RenderSARIF(w io.Writer, diags []Diagnostic, root string) error {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
	}
	type sarifArtifactLocation struct {
		URI string `json:"uri"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn"`
	}
	type sarifPhysicalLocation struct {
		ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
		Region           sarifRegion           `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri"`
		Rules          []sarifRule `json:"rules"`
	}
	type sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	type sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}

	var rules []sarifRule
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(relPath(root, d.Pos.Filename))},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	out := struct {
		Schema  string     `json:"$schema"`
		Version string     `json:"version"`
		Runs    []sarifRun `json:"runs"`
	}{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "xoarlint", InformationURI: "https://example.invalid/xoarlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RenderGitHub writes diagnostics as GitHub Actions workflow commands, one
// ::error per finding, which the runner turns into inline PR annotations.
func RenderGitHub(w io.Writer, diags []Diagnostic, root string) {
	for _, d := range diags {
		// Workflow-command property values must escape , : % and newlines.
		msg := githubEscape(d.Message)
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=xoarlint(%s)::%s\n",
			githubEscape(filepath.ToSlash(relPath(root, d.Pos.Filename))), d.Pos.Line, d.Pos.Column, d.Analyzer, msg)
	}
}

func githubEscape(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

func relPath(root, path string) string {
	if root == "" {
		return path
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
