package xoarlint

import (
	"strings"
	"testing"
)

// privflowSrc exercises the dominance analysis: the clean idioms used by
// internal/hv, plus the audit-ordering bugs that pass the syntactic
// privcheck and must be caught here.
const privflowSrc = `package hv

import "xoar/internal/xtypes"

type Domain struct {
	State   int
	clients map[xtypes.DomID]bool
}

type Hypervisor struct {
	domains     map[xtypes.DomID]*Domain
	DeniedCalls int
}

func (h *Hypervisor) check(caller xtypes.DomID, hc xtypes.Hypercall) (*Domain, error) {
	return nil, nil
}
func (h *Hypervisor) controls(caller xtypes.DomID, d *Domain) bool { return true }

// requirePriv is the hoisted audit-helper pattern: check and enforce.
func (h *Hypervisor) requirePriv(caller xtypes.DomID, hc xtypes.Hypercall) error {
	if _, err := h.check(caller, hc); err != nil {
		return err
	}
	return nil
}

func (h *Hypervisor) reap(d *Domain) { d.State = 9 }

// Guard dominates the mutation: clean.
func (h *Hypervisor) Pause(caller, target xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDomctlPause); err != nil {
		return err
	}
	h.domains[target].State = 1
	return nil
}

// Management audit via the bool primitive: clean.
func (h *Hypervisor) Link(caller, shard, guest xtypes.DomID) error {
	d := h.domains[shard]
	if !h.controls(caller, d) {
		return nil
	}
	d.clients[guest] = true
	return nil
}

// Audit hoisted into a helper and enforced by the caller: clean, and the
// helper's specific privilege must land in the matrix.
func (h *Hypervisor) ViaHelper(caller, target xtypes.DomID) error {
	if err := h.requirePriv(caller, xtypes.HyperDomctlCreate); err != nil {
		return err
	}
	h.reap(h.domains[target])
	return nil
}

// Audit after the mutation: passes privcheck, caught by privflow.
func (h *Hypervisor) LateAudit(caller, target xtypes.DomID) error {
	h.domains[target].State = 2
	if _, err := h.check(caller, xtypes.HyperDomctlPause); err != nil {
		return err
	}
	return nil
}

// Audit on one branch only: passes privcheck, caught by privflow.
func (h *Hypervisor) BranchAudit(caller, target xtypes.DomID, hard bool) error {
	if hard {
		if _, err := h.check(caller, xtypes.HyperDomctlDestroy); err != nil {
			return err
		}
	}
	h.domains[target].State = 3
	return nil
}

// Audit result dropped on the floor: never enforced, caught by privflow.
func (h *Hypervisor) Dropped(caller, target xtypes.DomID) error {
	_, _ = h.check(caller, xtypes.HyperDomctlPause)
	h.domains[target].State = 4
	return nil
}

// Mutation buried in an unaudited helper: caught, with the path reported.
func (h *Hypervisor) BadViaHelper(caller, target xtypes.DomID) error {
	h.reap(h.domains[target])
	return nil
}

// The privilege must be a specific constant, not a variable.
func (h *Hypervisor) Dynamic(caller xtypes.DomID, hc xtypes.Hypercall) error {
	if _, err := h.check(caller, hc); err != nil {
		return err
	}
	return nil
}

// Allowlisted entry point: exempt row in the matrix.
func (h *Hypervisor) Compute(caller xtypes.DomID) {}
`

func TestPrivflowDominance(t *testing.T) {
	p := loadSrc(t, "xoar/internal/hv", privflowSrc)
	diags := diagsOf(t, "privflow", p)
	wantDiags(t, diags,
		"hv.BadViaHelper: mutation of Domain.State is not dominated", // in reap, early in the file
		"hv.LateAudit: mutation of domains is not dominated",
		"hv.BranchAudit: mutation of domains is not dominated",
		"hv.Dropped: mutation of domains is not dominated",
		"must name a specific xtypes.Hyper* constant",
	)
	if !strings.Contains(diags[0].Message, "reached via reap") {
		t.Errorf("helper-path diagnostic lacks the inline chain: %q", diags[0].Message)
	}
}

// TestPrivflowCatchesWhatPrivcheckMisses pins the acceptance criterion:
// the ordering bugs (audit after mutation, audit on one branch, dropped
// verdict) all contain an audit call and therefore pass the syntactic
// pass. (privcheck is also blind in the other direction — it flags the
// legitimately helper-audited ViaHelper — which is why privflow, not more
// syntax, is the fix.)
func TestPrivflowCatchesWhatPrivcheckMisses(t *testing.T) {
	p := loadSrc(t, "xoar/internal/hv", privflowSrc)
	wantDiags(t, diagsOf(t, "privcheck", p), "hv.ViaHelper", "hv.BadViaHelper")
}

func TestPrivflowScopedToHV(t *testing.T) {
	p := loadSrc(t, "xoar/internal/other", privflowSrc)
	if diags := diagsOf(t, "privflow", p); len(diags) != 0 {
		t.Fatalf("privflow fired outside internal/hv: %v", diags)
	}
}

func TestPrivflowSuppression(t *testing.T) {
	src := strings.Replace(privflowSrc,
		"h.domains[target].State = 2",
		"h.domains[target].State = 2 //xoarlint:allow(privflow) mutation rolled back below on audit failure", 1)
	p := loadSrc(t, "xoar/internal/hv", src)
	diags := diagsOf(t, "privflow", p)
	for _, d := range diags {
		if strings.Contains(d.Message, "hv.LateAudit") {
			t.Fatalf("suppressed diagnostic still reported: %v", d)
		}
	}
}

// --- privilege matrix --------------------------------------------------------

func TestPrivMatrixRows(t *testing.T) {
	p := loadSrc(t, "xoar/internal/hv", privflowSrc)
	m, err := BuildPrivMatrix([]*Package{p})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]PrivEntry{}
	for _, e := range m.Entrypoints {
		rows[e.Method] = e
	}
	via := rows["ViaHelper"]
	if len(via.Privileges) != 1 || via.Privileges[0] != "HyperDomctlCreate" {
		t.Errorf("ViaHelper privileges = %v, want [HyperDomctlCreate] (credited through requirePriv)", via.Privileges)
	}
	if !rows["Link"].Controls {
		t.Errorf("Link should record a management-rights (controls) audit")
	}
	if got := rows["Pause"].Mutates; len(got) != 1 || got[0] != "domains" {
		t.Errorf("Pause mutates = %v, want [domains]", got)
	}
	if rows["Compute"].Exempt == "" {
		t.Errorf("Compute should carry its allowlist rationale")
	}
	if len(rows) != 9 {
		t.Errorf("matrix has %d rows, want 9: %v", len(rows), sortedMatrixMethods(m))
	}
}

func TestPrivMatrixDiff(t *testing.T) {
	p := loadSrc(t, "xoar/internal/hv", privflowSrc)
	m, err := BuildPrivMatrix([]*Package{p})
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffPrivMatrices(m, m); len(d) != 0 {
		t.Fatalf("identical matrices diff: %v", d)
	}

	// Round-trip through the canonical encoding.
	enc, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePrivMatrix(enc)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffPrivMatrices(back, m); len(d) != 0 {
		t.Fatalf("round-tripped matrix diffs: %v", d)
	}

	// A widened entry point and a removed one both surface readably.
	mod := *back
	mod.Entrypoints = append([]PrivEntry{}, back.Entrypoints...)
	for i := range mod.Entrypoints {
		if mod.Entrypoints[i].Method == "Pause" {
			mod.Entrypoints[i].Privileges = []string{"HyperDomctlCreate", "HyperDomctlPause"}
		}
	}
	var kept []PrivEntry
	for _, e := range mod.Entrypoints {
		if e.Method != "Link" {
			kept = append(kept, e)
		}
	}
	mod.Entrypoints = kept
	diff := DiffPrivMatrices(&mod, m)
	if len(diff) != 2 {
		t.Fatalf("diff = %v, want 2 lines", diff)
	}
	if !strings.Contains(diff[0], "+ Link") {
		t.Errorf("diff[0] = %q, want new-entry-point line for Link", diff[0])
	}
	if !strings.Contains(diff[1], "~ Pause") || !strings.Contains(diff[1], "HyperDomctlCreate") {
		t.Errorf("diff[1] = %q, want changed line for Pause naming the extra privilege", diff[1])
	}
}

func sortedMatrixMethods(m *PrivMatrix) []string {
	var out []string
	for _, e := range m.Entrypoints {
		out = append(out, e.Method)
	}
	return out
}
