package xoarlint

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// errwrap protects the errors.Is contracts the platform's control flow hangs
// off. The xtypes.Err* sentinels are the model's errno surface: seceval's
// containment analysis matches denials with errors.Is(err, xtypes.ErrPerm),
// and the restart engine distinguishes ErrShutdown/ErrNoMicroreboot the same
// way. A fmt.Errorf that embeds a sentinel with %v or %s instead of %w
// silently severs that chain — every errors.Is downstream turns false and a
// denial test starts passing for the wrong reason. errwrap flags any
// fmt.Errorf call whose argument list contains an xtypes.Err* sentinel not
// matched to a %w verb.

func init() {
	Register(&Analyzer{
		Name: "errwrap",
		Doc:  "xtypes.Err* sentinels passed to fmt.Errorf must be wrapped with %w so errors.Is keeps working",
		Run:  runErrwrap,
	})
}

func runErrwrap(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || p.pkgPathOf(f, x) != "fmt" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true // non-literal format: out of scope
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%[") {
				return true // indexed verbs: out of scope
			}
			verbs := formatVerbs(format)
			for i, arg := range call.Args[1:] {
				name := sentinelName(p, f, arg)
				if name == "" {
					continue
				}
				if i >= len(verbs) || verbs[i] != 'w' {
					diags = append(diags, Diagnostic{
						Pos:      p.Fset.Position(arg.Pos()),
						Analyzer: "errwrap",
						Message: fmt.Sprintf("xtypes.%s must be wrapped with %%w (not %%%s) so errors.Is sees it",
							name, verbAt(verbs, i)),
					})
				}
			}
			return true
		})
	}
	return diags
}

// sentinelName returns the Err* name if arg is a selector for an
// xoar/internal/xtypes sentinel, else "".
func sentinelName(p *Package, f *ast.File, arg ast.Expr) string {
	sel, ok := arg.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Err") {
		return ""
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || p.pkgPathOf(f, x) != "xoar/internal/xtypes" {
		return ""
	}
	return sel.Sel.Name
}

// formatVerbs returns the verb letter for each consumed argument, in order.
// Width/precision stars consume an argument slot and are recorded as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

func verbAt(verbs []byte, i int) string {
	if i >= len(verbs) {
		return "<missing verb>"
	}
	return string(verbs[i])
}
