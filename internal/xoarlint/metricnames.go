package xoarlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// metricnames enforces the DESIGN.md §8 telemetry contract at every
// instrumentation site. The metric namespace is an API between components
// and exporters: names follow component_quantity_unit snake_case, the unit
// suffix is canonical (exporters derive display units from it), counters
// end in _total, and labels stay bounded — keys are literals and values
// never come from fmt.Sprintf/strconv, the two ways per-domain identifiers
// leak into label values and blow up registry cardinality. The "host" label
// key is reserved for the fleet exporter (telemetry.Fleet), which injects it
// at export time; instrumentation sites must stay host-unaware.
//
// Names must also be literal at the call site: a variable name means the
// series set is no longer knowable at wiring time, which defeats both this
// check and SetMetrics-style handle pre-resolution.

const telemetryPath = "xoar/internal/telemetry"

// metricNameRE: lowercase snake_case with at least two segments.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// metricUnitAliases maps unit-suffix spellings to the canonical form.
var metricUnitAliases = map[string]string{
	"milliseconds": "ms", "millis": "ms", "msec": "ms", "msecs": "ms",
	"microseconds": "us", "micros": "us", "usec": "us", "usecs": "us",
	"nanoseconds": "ns", "nanos": "ns", "nsec": "ns", "nsecs": "ns",
	"seconds": "ms", "secs": "ms", "sec": "ms",
	"byte": "bytes", "kb": "bytes", "kib": "bytes", "mib": "mb",
}

// metricLabelKeyRE: short lowercase identifiers ("op", "dir", "class").
var metricLabelKeyRE = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

func init() {
	Register(&Analyzer{
		Name: "metricnames",
		Doc:  "telemetry call sites use literal component_quantity_unit names and bounded label vocabularies (DESIGN.md §8)",
		Run:  runMetricnames,
	})
}

func runMetricnames(p *Package) []Diagnostic {
	if p.Path == telemetryPath {
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(pos),
			Analyzer: "metricnames",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		if !importsPath(f, telemetryPath) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := sel.Sel.Name
			switch kind {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			name, lit := stringLit(call.Args[0])
			if !lit {
				report(call.Args[0].Pos(), "%s metric name must be a string literal — a dynamic name hides the series set from wiring-time review (DESIGN.md §8)", kind)
				return true
			}
			checkMetricName(report, call.Args[0].Pos(), kind, name)
			labels := call.Args[1:]
			if kind == "Histogram" && len(call.Args) > 1 {
				labels = call.Args[2:] // skip the buckets argument
			}
			for _, arg := range labels {
				checkLabelArg(report, arg)
			}
			return true
		})
	}
	return diags
}

func checkMetricName(report func(token.Pos, string, ...interface{}), pos token.Pos, kind, name string) {
	if !metricNameRE.MatchString(name) {
		report(pos, "metric name %q is not component_quantity_unit snake_case (DESIGN.md §8)", name)
		return
	}
	segs := strings.Split(name, "_")
	last := segs[len(segs)-1]
	if canon, bad := metricUnitAliases[last]; bad {
		report(pos, "metric name %q uses non-canonical unit suffix %q; use %q (DESIGN.md §8)", name, last, canon)
	}
	switch kind {
	case "Counter":
		if last != "total" {
			report(pos, "counter %q must end in _total (DESIGN.md §8)", name)
		}
	default:
		if last == "total" {
			report(pos, "%s %q must not end in _total — that suffix marks counters (DESIGN.md §8)", strings.ToLower(kind), name)
		}
	}
}

// checkLabelArg vets one label argument: a telemetry.L(key, value) call
// with a literal, well-formed key and a value that cannot be a formatted
// identifier.
func checkLabelArg(report func(token.Pos, string, ...interface{}), arg ast.Expr) {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "L" || len(call.Args) != 2 {
		return
	}
	key, lit := stringLit(call.Args[0])
	if !lit {
		report(call.Args[0].Pos(), "label key must be a string literal (DESIGN.md §8)")
	} else if !metricLabelKeyRE.MatchString(key) {
		report(call.Args[0].Pos(), "label key %q is not a short lowercase identifier (DESIGN.md §8)", key)
	} else if key == "host" {
		report(call.Args[0].Pos(), "label key \"host\" is reserved: telemetry.Fleet injects it at export so fleet metrics don't collide across hosts — instrumentation sites stay host-unaware (DESIGN.md §8)")
	}
	if vc, ok := call.Args[1].(*ast.CallExpr); ok {
		if vs, ok := vc.Fun.(*ast.SelectorExpr); ok {
			if x, ok := vs.X.(*ast.Ident); ok && (x.Name == "fmt" || x.Name == "strconv") {
				report(call.Args[1].Pos(), "label value built with %s.%s is unbounded — label values must come from a small fixed vocabulary (DESIGN.md §8)", x.Name, vs.Sel.Name)
			}
		}
	}
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func importsPath(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}
