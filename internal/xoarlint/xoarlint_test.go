package xoarlint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSrc writes src as a single-file package in a temp dir and loads it
// under the given import path, letting tests present synthetic sources as
// any package identity.
func loadSrc(t *testing.T, importPath, src string) *Package {
	t.Helper()
	return loadSrcFile(t, importPath, "src.go", src)
}

func loadSrcFile(t *testing.T, importPath, filename, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, filename), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d units, want 1", len(pkgs))
	}
	return pkgs[0]
}

// diagsOf runs a single analyzer by name over pkgs with suppressions applied.
func diagsOf(t *testing.T, name string, pkgs ...*Package) []Diagnostic {
	t.Helper()
	var out []Diagnostic
	for _, d := range RunAll(pkgs) {
		if d.Analyzer == name {
			out = append(out, d)
		}
	}
	return out
}

func wantDiags(t *testing.T, diags []Diagnostic, substrs ...string) {
	t.Helper()
	if len(diags) != len(substrs) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(substrs), diags)
	}
	for i, want := range substrs {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diag %d = %q, want substring %q", i, diags[i].Message, want)
		}
	}
}

// --- privcheck ---------------------------------------------------------------

const privcheckSrc = `package hv

import "xoar/internal/xtypes"

type Hypervisor struct{ DeniedCalls int }

func (h *Hypervisor) check(caller xtypes.DomID, hc xtypes.Hypercall) (*int, error) { return nil, nil }
func (h *Hypervisor) controls(caller xtypes.DomID, d *int) bool                    { return true }

// Audited: fine.
func (h *Hypervisor) Destroy(caller, target xtypes.DomID) error {
	if _, err := h.check(caller, 0); err != nil {
		return err
	}
	return nil
}

// Audited via controls: fine.
func (h *Hypervisor) Link(caller, shard xtypes.DomID) error {
	if !h.controls(caller, nil) {
		return nil
	}
	return nil
}

// Forgotten audit: flagged.
func (h *Hypervisor) UnmapEverything(caller, target xtypes.DomID) error {
	return nil
}

// check called on a constant, not the caller parameter: still flagged.
func (h *Hypervisor) Sneaky(caller xtypes.DomID) error {
	_, err := h.check(0, 0)
	return err
}

// Unexported: out of scope.
func (h *Hypervisor) internalOp(caller xtypes.DomID) {}

// No DomID parameter: out of scope.
func (h *Hypervisor) Stats() int { return h.DeniedCalls }

// Allowlisted read-only query.
func (h *Hypervisor) HasIOPorts(dom xtypes.DomID, r string) bool { return false }
`

func TestPrivcheckFlagsForgottenAudit(t *testing.T) {
	p := loadSrc(t, "xoar/internal/hv", privcheckSrc)
	diags := diagsOf(t, "privcheck", p)
	wantDiags(t, diags, "hv.UnmapEverything", "hv.Sneaky")
}

func TestPrivcheckScopedToHV(t *testing.T) {
	p := loadSrc(t, "xoar/internal/other", privcheckSrc)
	if diags := diagsOf(t, "privcheck", p); len(diags) != 0 {
		t.Fatalf("privcheck fired outside internal/hv: %v", diags)
	}
}

func TestPrivcheckSuppression(t *testing.T) {
	src := strings.Replace(privcheckSrc,
		"// Forgotten audit: flagged.",
		"//xoarlint:allow(privcheck) verified audited by dispatcher in review", 1)
	p := loadSrc(t, "xoar/internal/hv", src)
	wantDiags(t, diagsOf(t, "privcheck", p), "hv.Sneaky")
}

// --- simtime -----------------------------------------------------------------

const simtimeSrc = `package netdrv

import (
	"math/rand"
	"time"

	clock "time"
)

func bad() {
	_ = time.Now()
	time.Sleep(time.Second)
	_ = clock.Now() // aliased import: still caught
	_ = rand.Intn(10)
}

func fine() {
	_ = time.Second                       // constants are fine
	_ = rand.New(rand.NewSource(1)).Intn(4) // seeded source is fine
}
`

func TestSimtimeFlagsWallClockAndGlobalRand(t *testing.T) {
	p := loadSrc(t, "xoar/internal/netdrv", simtimeSrc)
	diags := diagsOf(t, "simtime", p)
	wantDiags(t, diags,
		"time.Now breaks simulation determinism",
		"time.Sleep breaks simulation determinism",
		"clock.Now breaks simulation determinism",
		"rand.Intn uses the process-global random source",
	)
}

func TestSimtimeExemptsSimPackage(t *testing.T) {
	p := loadSrc(t, "xoar/internal/sim", simtimeSrc)
	if diags := diagsOf(t, "simtime", p); len(diags) != 0 {
		t.Fatalf("simtime fired inside internal/sim: %v", diags)
	}
}

func TestSimtimeIgnoresNonInternal(t *testing.T) {
	p := loadSrc(t, "xoar/cmd/xoarbench", simtimeSrc)
	if diags := diagsOf(t, "simtime", p); len(diags) != 0 {
		t.Fatalf("simtime fired outside internal/: %v", diags)
	}
}

func TestSimtimeSuppression(t *testing.T) {
	src := strings.Replace(simtimeSrc,
		"_ = time.Now()",
		"_ = time.Now() //xoarlint:allow(simtime) wall-clock needed for log banner only", 1)
	p := loadSrc(t, "xoar/internal/netdrv", src)
	diags := diagsOf(t, "simtime", p)
	wantDiags(t, diags,
		"time.Sleep breaks simulation determinism",
		"clock.Now breaks simulation determinism",
		"rand.Intn uses the process-global random source",
	)
}

// --- layering ----------------------------------------------------------------

const layeringSrc = `package netdrv

import (
	"xoar/internal/blkdrv"
	"xoar/internal/hv"
	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

var (
	_ = blkdrv.X
	_ = hv.X
	_ = sim.X
	_ = xenstore.X
	_ = xtypes.X
)
`

func TestLayeringFlagsCrossServiceImport(t *testing.T) {
	p := loadSrc(t, "xoar/internal/netdrv", layeringSrc)
	diags := diagsOf(t, "layering", p)
	// blkdrv is flagged; hv/sim/xtypes are shared leaves and xenstore is the
	// sanctioned client-library edge.
	wantDiags(t, diags, "service package netdrv imports service package blkdrv")
}

func TestLayeringIgnoresNonServicePackages(t *testing.T) {
	p := loadSrc(t, "xoar/internal/boot", strings.Replace(layeringSrc, "package netdrv", "package boot", 1))
	if diags := diagsOf(t, "layering", p); len(diags) != 0 {
		t.Fatalf("layering fired for a non-service importer: %v", diags)
	}
}

func TestLayeringExemptsTestFiles(t *testing.T) {
	p := loadSrcFile(t, "xoar/internal/netdrv", "wire_test.go", layeringSrc)
	if diags := diagsOf(t, "layering", p); len(diags) != 0 {
		t.Fatalf("layering fired for a test harness: %v", diags)
	}
}

func TestLayeringSuppression(t *testing.T) {
	src := strings.Replace(layeringSrc,
		`"xoar/internal/blkdrv"`,
		`//xoarlint:allow(layering) frontend halves only; no backend state shared
	"xoar/internal/blkdrv"`, 1)
	p := loadSrc(t, "xoar/internal/netdrv", src)
	if diags := diagsOf(t, "layering", p); len(diags) != 0 {
		t.Fatalf("suppressed import still flagged: %v", diags)
	}
}

// --- errwrap -----------------------------------------------------------------

const errwrapSrc = `package toolstack

import (
	"fmt"

	"xoar/internal/xtypes"
)

func bad(dom int) error {
	return fmt.Errorf("attach %d: %v", dom, xtypes.ErrPerm)
}

func alsoBad(dom int) error {
	return fmt.Errorf("attach %d failed", xtypes.ErrNotShard)
}

func fine(dom int) error {
	return fmt.Errorf("attach %d: %w", dom, xtypes.ErrPerm)
}

func fineNonSentinel(err error) error {
	return fmt.Errorf("plain: %v", err)
}
`

func TestErrwrapFlagsUnwrappedSentinels(t *testing.T) {
	p := loadSrc(t, "xoar/internal/toolstack", errwrapSrc)
	diags := diagsOf(t, "errwrap", p)
	wantDiags(t, diags,
		"xtypes.ErrPerm must be wrapped with %w (not %v)",
		"xtypes.ErrNotShard must be wrapped with %w (not %d)",
	)
}

func TestErrwrapSuppression(t *testing.T) {
	src := strings.Replace(errwrapSrc,
		`return fmt.Errorf("attach %d: %v", dom, xtypes.ErrPerm)`,
		`//xoarlint:allow(errwrap) message is for display only, never matched
	return fmt.Errorf("attach %d: %v", dom, xtypes.ErrPerm)`, 1)
	p := loadSrc(t, "xoar/internal/toolstack", src)
	wantDiags(t, diagsOf(t, "errwrap", p), "xtypes.ErrNotShard")
}

// --- suppression policy ------------------------------------------------------

func TestSuppressionRequiresJustification(t *testing.T) {
	src := strings.Replace(simtimeSrc,
		"_ = time.Now()",
		"_ = time.Now() //xoarlint:allow(simtime)", 1)
	p := loadSrc(t, "xoar/internal/netdrv", src)
	policy := diagsOf(t, "xoarlint", p)
	wantDiags(t, policy, "suppression requires a justification")
	// The bare allow comment does not suppress anything.
	if diags := diagsOf(t, "simtime", p); len(diags) != 4 {
		t.Fatalf("unjustified suppression silenced a diagnostic: %v", diags)
	}
}

func TestSuppressionRejectsUnknownAnalyzer(t *testing.T) {
	src := strings.Replace(simtimeSrc,
		"_ = time.Now()",
		"_ = time.Now() //xoarlint:allow(simtiem) typo in the name", 1)
	p := loadSrc(t, "xoar/internal/netdrv", src)
	wantDiags(t, diagsOf(t, "xoarlint", p), `unknown analyzer "simtiem"`)
}

// --- framework ---------------------------------------------------------------

func TestRegisteredAnalyzers(t *testing.T) {
	want := map[string]bool{
		"privcheck": true, "simtime": true, "layering": true, "errwrap": true,
		"gohygiene": true, "privflow": true, "auditlog": true, "metricnames": true,
		"hotpath": true,
	}
	for _, a := range Analyzers() {
		delete(want, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc line", a.Name)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing analyzers: %v", want)
	}
}

func TestLoadModuleFindsThisPackage(t *testing.T) {
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pkgs {
		if p.Path == "xoar/internal/xoarlint" && p.Name == "xoarlint" {
			found = true
		}
	}
	if !found {
		t.Fatal("LoadModule did not surface xoar/internal/xoarlint")
	}
}

// --- gohygiene ---------------------------------------------------------------

func TestGohygieneFlagsBareGoStatement(t *testing.T) {
	p := loadSrc(t, "xoar/internal/widget", `package widget

func work() {}

func start() {
	go work()
}
`)
	wantDiags(t, diagsOf(t, "gohygiene", p), "bare go statement")
}

func TestGohygieneExemptsSimAndTests(t *testing.T) {
	sim := loadSrc(t, "xoar/internal/sim", `package sim

func runner() {}

func schedule() {
	go runner()
}
`)
	wantDiags(t, diagsOf(t, "gohygiene", sim))

	// _test.go files may use real goroutines (e.g. hammering telemetry
	// under -race).
	tst := loadSrcFile(t, "xoar/internal/widget", "widget_test.go", `package widget

func hammer() {}

func TestParallel(t *testingT) {
	go hammer()
}

type testingT interface{}
`)
	wantDiags(t, diagsOf(t, "gohygiene", tst))

	// Non-internal packages (cmd/...) are out of scope.
	cmd := loadSrc(t, "xoar/cmd/tool", `package main

func work() {}

func main() {
	go work()
}
`)
	wantDiags(t, diagsOf(t, "gohygiene", cmd))
}

func TestGohygieneSuppression(t *testing.T) {
	p := loadSrc(t, "xoar/internal/widget", `package widget

func work() {}

func start() {
	//xoarlint:allow(gohygiene) bridging to an external OS resource outside the sim
	go work()
}
`)
	wantDiags(t, diagsOf(t, "gohygiene", p))

	// A suppression without justification is itself a diagnostic.
	bare := loadSrc(t, "xoar/internal/widget", `package widget

func work() {}

func start() {
	//xoarlint:allow(gohygiene)
	go work()
}
`)
	if len(diagsOf(t, "allow", bare))+len(diagsOf(t, "gohygiene", bare)) == 0 {
		t.Fatal("unjustified suppression raised no diagnostics")
	}
}
