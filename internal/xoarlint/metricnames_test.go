package xoarlint

import (
	"strings"
	"testing"
)

const metricnamesSrc = `package netdrv

import (
	"fmt"

	"xoar/internal/telemetry"
	"xoar/internal/xtypes"
)

func wire(reg *telemetry.Registry, dom xtypes.DomID, name string) {
	// Clean sites: canonical names, bounded labels.
	reg.Counter("netback_drops_total", telemetry.L("dir", "rx")).Inc()
	reg.Histogram("netback_ring_rtt_us", nil, telemetry.L("op", "read")).Observe(1)
	reg.Gauge("netback_queue_depth").Set(0)

	// Violations.
	reg.Histogram(name, nil).Observe(1)
	reg.Counter("netback_drops").Inc()
	reg.Gauge("netback_pkts_total").Set(1)
	reg.Histogram("netback_rtt_millis", nil).Observe(1)
	reg.Counter("BadName_total").Inc()
	reg.Counter("netback_sent_total", telemetry.L("guest", fmt.Sprintf("dom%d", dom))).Inc()
	reg.Counter("netback_seen_total", telemetry.L("Dir", "rx")).Inc()
	reg.Counter("netback_rx_total", telemetry.L("host", "h0")).Inc()
}
`

func TestMetricnames(t *testing.T) {
	p := loadSrc(t, "xoar/internal/netdrv", metricnamesSrc)
	wantDiags(t, diagsOf(t, "metricnames", p),
		"Histogram metric name must be a string literal",
		`counter "netback_drops" must end in _total`,
		`gauge "netback_pkts_total" must not end in _total`,
		`non-canonical unit suffix "millis"; use "ms"`,
		`metric name "BadName_total" is not component_quantity_unit snake_case`,
		"label value built with fmt.Sprintf is unbounded",
		`label key "Dir" is not a short lowercase identifier`,
		`label key "host" is reserved`,
	)
}

func TestMetricnamesSkipsTelemetryItself(t *testing.T) {
	p := loadSrc(t, "xoar/internal/telemetry", metricnamesSrc)
	if diags := diagsOf(t, "metricnames", p); len(diags) != 0 {
		t.Fatalf("metricnames fired inside internal/telemetry: %v", diags)
	}
}

func TestMetricnamesIgnoresNonTelemetryFiles(t *testing.T) {
	src := `package other

type fake struct{}

func (fake) Counter(name string) {}

func use(f fake, n string) { f.Counter(n) }
`
	p := loadSrc(t, "xoar/internal/other", src)
	if diags := diagsOf(t, "metricnames", p); len(diags) != 0 {
		t.Fatalf("metricnames fired in a file not importing telemetry: %v", diags)
	}
}

func TestMetricnamesSuppression(t *testing.T) {
	src := strings.Replace(metricnamesSrc,
		`reg.Counter("netback_drops").Inc()`,
		`reg.Counter("netback_drops").Inc() //xoarlint:allow(metricnames) legacy exporter expects this name`, 1)
	p := loadSrc(t, "xoar/internal/netdrv", src)
	for _, d := range diagsOf(t, "metricnames", p) {
		if strings.Contains(d.Message, "netback_drops\"") {
			t.Fatalf("suppressed diagnostic still reported: %v", d)
		}
	}
}
