package xoarlint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// auditlog enforces the §3.2.2 forensic property: the hash-chained audit
// log must witness every change to the privilege topology. A hypercall
// entry point that mutates lifecycle or privilege state — domain tables,
// VIRQ routes, parent-toolstack/delegation/client links, whitelists,
// port grants — without (transitively) appending an event via h.emit is
// invisible to the off-host log: queries like DependentsOf answer from
// stale state and the "notify affected customers" workflow silently lies.
//
// Emission is detected structurally, end to end: an event leaves the
// hypervisor through a func-typed Hypervisor field that accepts the audit
// Event (h.Sink) — the subscriber wiring the log attaches to. A method
// emits if it (transitively) calls through such a sink field; h.emit is
// credited because its body performs the Sink call, not because of its
// name, so severing the emit→Sink wiring re-flags every entry point that
// relied on it.
//
// The check is interprocedural but presence-level (privflow owns
// ordering): the entry point, or some helper it calls, must emit. Pure
// data-path mutations (grant/evtchn tables, memory, Mem images) are out
// of scope — they are high-rate and the paper logs topology changes, not
// traffic. On its first run this pass found four real gaps, fixed in
// internal/hv and regression-tested in internal/seceval:
// UnlinkShardClient (the log's own linkIntervals parser already handled
// "unlink-shard" records no one emitted, so DependentsOf overcounted
// exposure windows), SetParentTool, GrantIOPorts and RouteHardwareVIRQ.

// auditlogDomainFields are *Domain fields whose mutation changes the
// privilege topology and therefore must be logged.
var auditlogDomainFields = map[string]bool{
	"State":         true,
	"parentTool":    true,
	"delegates":     true,
	"privilegedFor": true,
	"clients":       true,
	"priv":          true,
	"ioPorts":       true,
	"Cfg":           true,
}

// auditlogHVFields are the *Hypervisor fields in scope.
var auditlogHVFields = map[string]bool{
	"domains":    true,
	"virqRoutes": true,
}

func init() {
	Register(&Analyzer{
		Name: "auditlog",
		Doc:  "hv entry points mutating lifecycle/privilege state must append a hash-chained audit event through the Hypervisor's Event sink",
		Run:  runAuditlog,
	})
}

type auditSummary struct {
	mutates map[string]bool
	emits   bool
}

func runAuditlog(p *Package) []Diagnostic {
	if p.Path != hvPath {
		return nil
	}
	methods := hypervisorMethods(p)
	sinks := sinkFields(p)
	memo := map[string]*auditSummary{}
	var order []string
	for name, m := range methods {
		if m.fn.Name.IsExported() && len(m.dom) > 0 {
			order = append(order, name)
		}
	}
	sort.Strings(order)
	var diags []Diagnostic
	for _, name := range order {
		s := auditScan(methods, sinks, memo, name, map[string]bool{})
		if len(s.mutates) > 0 && !s.emits {
			m := methods[name]
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(m.fn.Name.Pos()),
				Analyzer: "auditlog",
				Message: fmt.Sprintf("hv.%s mutates lifecycle/privilege state (%s) without appending an audit event through %s's Event sink",
					name, strings.Join(sortedKeys(s.mutates), ", "), m.recv),
			})
		}
	}
	return diags
}

// sinkFields collects the Hypervisor struct's func-typed fields taking the
// audit Event — the structural signature of an audit-log sink. Calling
// through one of them is what counts as emitting.
func sinkFields(p *Package) map[string]bool {
	out := map[string]bool{}
	for _, f := range p.Files {
		if p.Test[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Hypervisor" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				ft, ok := field.Type.(*ast.FuncType)
				if !ok || ft.Params == nil {
					continue
				}
				takesEvent := false
				for _, pf := range ft.Params.List {
					if id, ok := pf.Type.(*ast.Ident); ok && id.Name == "Event" {
						takesEvent = true
					}
				}
				if !takesEvent {
					continue
				}
				for _, name := range field.Names {
					out[name.Name] = true
				}
			}
			return false
		})
	}
	return out
}

// auditScan computes, memoized and cycle-safe, which lifecycle state a
// method (transitively) mutates and whether it (transitively) emits
// through a sink field.
func auditScan(methods map[string]*hvMethod, sinks map[string]bool, memo map[string]*auditSummary, name string, visiting map[string]bool) *auditSummary {
	if s, ok := memo[name]; ok {
		return s
	}
	m := methods[name]
	s := &auditSummary{mutates: map[string]bool{}}
	if m == nil || visiting[name] {
		return s
	}
	visiting[name] = true
	defer delete(visiting, name)

	record := func(e ast.Expr) {
		chain, ok := flattenChain(e)
		if !ok || len(chain) < 2 {
			return
		}
		if chain[0] == m.recv {
			// A write through the domain table to a Domain field
			// (h.domains[id].State = …) is a Domain mutation; a write
			// to the table itself (h.domains[id] = …, delete) is not.
			if last := chain[len(chain)-1]; len(chain) > 2 && auditlogDomainFields[last] {
				s.mutates["Domain."+last] = true
			} else if auditlogHVFields[chain[1]] {
				s.mutates[chain[1]] = true
			}
			return
		}
		if auditlogDomainFields[chain[1]] {
			s.mutates["Domain."+chain[1]] = true
		}
	}
	ast.Inspect(m.fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, l := range v.Lhs {
				if _, isIdent := l.(*ast.Ident); !isIdent {
					record(l)
				}
			}
		case *ast.IncDecStmt:
			record(v.X)
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "delete" && len(v.Args) > 0 {
				record(v.Args[0])
				return true
			}
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || x.Name != m.recv {
				return true
			}
			if sinks[sel.Sel.Name] {
				s.emits = true
				return true
			}
			if _, isHelper := methods[sel.Sel.Name]; isHelper && sel.Sel.Name != name {
				sub := auditScan(methods, sinks, memo, sel.Sel.Name, visiting)
				for k := range sub.mutates {
					s.mutates[k] = true
				}
				if sub.emits {
					s.emits = true
				}
			}
		}
		return true
	})
	memo[name] = s
	return s
}
