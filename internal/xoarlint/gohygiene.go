package xoarlint

import "go/ast"

// gohygiene keeps platform concurrency inside the simulator: components
// under internal/ must spawn workers through sim.Env.Spawn (cooperative
// processes on the deterministic scheduler), never with a bare go
// statement. A raw goroutine runs on the wall-clock scheduler — it races
// the sim's single-runner invariant, is invisible to Env.Shutdown, and
// makes event ordering (and therefore every measured table) depend on the
// host. The pipelined Builder made this rule load-bearing: its batch boot
// supervisor must be a sim.Proc, and this pass turns that from convention
// into a build-time invariant.
//
// internal/sim itself is the designated wrapper (its scheduler runs each
// Proc on a goroutine) and is exempt. Test files are exempt too: tests
// legitimately hammer the thread-safe layers (telemetry, fault injection)
// from real goroutines under -race.

func init() {
	Register(&Analyzer{
		Name: "gohygiene",
		Doc:  "internal/ packages must spawn concurrency via sim.Env.Spawn, not bare go statements (internal/sim and _test.go files exempt)",
		Run:  runGohygiene,
	})
}

func runGohygiene(p *Package) []Diagnostic {
	if !p.Internal() || p.Path == "xoar/internal/sim" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		if p.Test[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(g.Pos()),
				Analyzer: "gohygiene",
				Message:  "bare go statement bypasses the deterministic scheduler; spawn a sim process via sim.Env.Spawn",
			})
			return true
		})
	}
	return diags
}
