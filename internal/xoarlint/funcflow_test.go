package xoarlint

import (
	"strings"
	"testing"
)

// funcflowSrc exercises privilege flow through function values: closures
// stored into callback registries and func-typed fields, method values, and
// immediately invoked literals — the hv.Sink/OnDestroy-shaped surfaces that
// used to be privflow's blind spot.
const funcflowSrc = `package hv

import "xoar/internal/xtypes"

type Event struct {
	Kind string
	Dom  xtypes.DomID
}

type Domain struct {
	State int
}

type Evtchn struct{}

func (e *Evtchn) SetHandler(dom xtypes.DomID, fn func()) {}

type Hypervisor struct {
	domains   map[xtypes.DomID]*Domain
	onDestroy []func(xtypes.DomID)
	Sink      func(Event)
	Evtchn    *Evtchn
}

func (h *Hypervisor) check(caller xtypes.DomID, hc xtypes.Hypercall) (*Domain, error) {
	return nil, nil
}
func (h *Hypervisor) controls(caller xtypes.DomID, d *Domain) bool { return true }

func (h *Hypervisor) emit(kind string, dom xtypes.DomID) {
	if h.Sink != nil {
		h.Sink(Event{Kind: kind, Dom: dom})
	}
}

func (h *Hypervisor) reap(target xtypes.DomID) { h.domains[target].State = 9 }

// A stored destructor that re-audits the domain it is invoked for: the
// deferred execution carries its own guard, so this is clean.
func (h *Hypervisor) DeferredAudited(caller, target xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDomctlDestroy); err != nil {
		return err
	}
	h.onDestroy = append(h.onDestroy, func(id xtypes.DomID) {
		if _, err := h.check(id, xtypes.HyperDomctlDestroy); err != nil {
			return
		}
		h.domains[id].State = 0
	})
	return nil
}

// A locally bound closure invoked before the audit: the mutation runs at
// the call site, where no fact holds yet.
func (h *Hypervisor) EarlyClosure(caller, target xtypes.DomID) error {
	wipe := func() { h.domains[target].State = 1 }
	wipe()
	if _, err := h.check(caller, xtypes.HyperDomctlPause); err != nil {
		return err
	}
	return nil
}

// Immediately invoked literal ahead of the audit: same bug, different
// syntax (and formerly never walked at all).
func (h *Hypervisor) IIFE(caller, target xtypes.DomID) error {
	func() { h.domains[target].State = 2 }()
	if _, err := h.check(caller, xtypes.HyperDomctlPause); err != nil {
		return err
	}
	return nil
}

// Bound closure invoked after the audit: the call site is dominated, clean.
func (h *Hypervisor) LocalClosure(caller, target xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDomctlPause); err != nil {
		return err
	}
	wipe := func() { h.domains[target].State = 3 }
	wipe()
	return nil
}

// Method value called through a local before the audit.
func (h *Hypervisor) MethodValue(caller, target xtypes.DomID) error {
	f := h.reap
	f(target)
	if _, err := h.check(caller, xtypes.HyperDomctlDestroy); err != nil {
		return err
	}
	return nil
}

// A closure handed to a callback registry (Evtchn.SetHandler) runs at an
// unknown later time: the audit performed here does not dominate it, and
// the reap it wraps mutates privileged state unguarded.
func (h *Hypervisor) MethodValueStored(caller, port xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperEvtchnOp); err != nil {
		return err
	}
	h.Evtchn.SetHandler(caller, func() { h.reap(caller) })
	return nil
}

// Audit-log wiring: calls through the func-typed Sink field are external
// subscriber code, not hv state mutation — no audit demanded.
func (h *Hypervisor) Notify(caller xtypes.DomID) {
	h.emit("notify", caller)
}

// A bare method value stored into an OnDestroy-style slice: reap runs
// later with no guard of its own.
func (h *Hypervisor) RegistryMethodValue(caller, target xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDomctlDestroy); err != nil {
		return err
	}
	h.onDestroy = append(h.onDestroy, h.reap)
	return nil
}

// The audit passes, then the mutation hides inside a stored closure over
// the audited target — the seeded acceptance fixture.
func (h *Hypervisor) SneakyDeferred(caller, target xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDomctlDestroy); err != nil {
		return err
	}
	h.onDestroy = append(h.onDestroy, func(id xtypes.DomID) {
		h.domains[target].State = 4
	})
	return nil
}
`

func TestFuncflowStoredClosuresAndMethodValues(t *testing.T) {
	p := loadSrc(t, "xoar/internal/hv", funcflowSrc)
	diags := diagsOf(t, "privflow", p)
	// Position order: the three method-value bugs all surface at reap's
	// mutation (early in the file), then the closures in source order.
	wantDiags(t, diags,
		"hv.MethodValue: mutation of domains is not dominated",
		"hv.MethodValueStored: mutation of domains is not dominated",
		"hv.RegistryMethodValue: mutation of domains is not dominated",
		"hv.EarlyClosure: mutation of domains is not dominated",
		"hv.IIFE: mutation of domains is not dominated",
		"hv.SneakyDeferred: mutation of domains is not dominated",
	)
	for i, want := range []string{
		"reached via reap",                // MethodValue: bound method value, call site
		"reached via stored func literal", // MethodValueStored: deferred closure
		"reached via reap",                // RegistryMethodValue: escaped method value
		"reached via func literal",        // EarlyClosure: bound literal, call site
		"reached via func literal",        // IIFE
		"reached via stored func literal", // SneakyDeferred
	} {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diag %d = %q, want path %q", i, diags[i].Message, want)
		}
	}
	// The stored closure wrapping h.reap reports the full chain.
	if !strings.Contains(diags[1].Message, "-> reap") {
		t.Errorf("MethodValueStored diagnostic lacks the reap hop: %q", diags[1].Message)
	}
}

// TestFuncflowSuppressionInsideClosure pins suppression placement on a line
// inside a function literal body.
func TestFuncflowSuppressionInsideClosure(t *testing.T) {
	src := strings.Replace(funcflowSrc,
		"h.domains[target].State = 4",
		"h.domains[target].State = 4 //xoarlint:allow(privflow) teardown is re-audited by the destroy dispatcher", 1)
	p := loadSrc(t, "xoar/internal/hv", src)
	for _, d := range diagsOf(t, "privflow", p) {
		if strings.Contains(d.Message, "hv.SneakyDeferred") {
			t.Fatalf("suppressed closure-body diagnostic still reported: %v", d)
		}
	}
}

// TestFuncflowMatrixRows: function-value analysis feeds the same matrix —
// audits inside stored closures still land in the entry point's row.
func TestFuncflowMatrixRows(t *testing.T) {
	p := loadSrc(t, "xoar/internal/hv", funcflowSrc)
	m, err := BuildPrivMatrix([]*Package{p})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]PrivEntry{}
	for _, e := range m.Entrypoints {
		rows[e.Method] = e
	}
	if len(rows) != 9 {
		t.Fatalf("matrix has %d rows, want 9: %v", len(rows), sortedMatrixMethods(m))
	}
	da := rows["DeferredAudited"]
	if len(da.Privileges) != 1 || da.Privileges[0] != "HyperDomctlDestroy" {
		t.Errorf("DeferredAudited privileges = %v, want [HyperDomctlDestroy]", da.Privileges)
	}
	if got := rows["SneakyDeferred"].Mutates; len(got) != 2 || got[0] != "domains" || got[1] != "onDestroy" {
		t.Errorf("SneakyDeferred mutates = %v, want [domains onDestroy]", got)
	}
	if got := rows["Notify"].Mutates; len(got) != 0 {
		t.Errorf("Notify mutates = %v, want none (Sink calls are external wiring)", got)
	}
}
