package xoarlint

import (
	"fmt"
	"go/ast"
)

// privcheck enforces the paper's core mechanism (§3, §5.6): every hypercall
// entry point audits its caller. Concretely, an exported *hv.Hypervisor
// method that takes a domain ID — the hypercall surface of the model — must
// consult the privilege state via h.check (whitelist audit) or h.controls
// (management-rights audit) before touching hypervisor or domain state.
// Methods that are read-only queries, or deliberately unprivileged by the
// paper's design, are allowlisted below with their rationale.
//
// This is exactly the "forgotten audit" bug class of the §6.2 CVE study:
// the two violations privcheck found on day one (UnmapForeign and
// RegisterRecoveryBox shipping without any check) are fixed in this tree
// and regression-tested in internal/seceval.

// privcheckAllowed are exported *Hypervisor methods that legitimately skip
// the audit helpers.
var privcheckAllowed = map[string]string{
	// Read-only queries: they reveal only what the caller could observe
	// through its own hypercall results and mutate nothing.
	"Domain":     "lookup; read-only",
	"Domains":    "enumeration; read-only",
	"VIRQRoute":  "route query; read-only",
	"HasIOPorts": "port-range query; read-only",
	// InjectHardwareVIRQ models the hardware interrupt source itself, not a
	// domain-issued hypercall; it has no caller to audit.
	"InjectHardwareVIRQ": "hardware source, no caller",
	// Compute charges simulated CPU time; scheduling one's own work is the
	// unprivileged baseline of any guest.
	"Compute": "CPU accounting; unprivileged by design",
	// SelfExit is the §5.8 hypervisor modification that lets boot-time
	// components (Bootstrapper, PCIBack) destroy themselves: voluntary exit
	// is deliberately unprivileged and only ever targets the caller.
	"SelfExit": "voluntary exit; unprivileged by design (§5.8)",
}

func init() {
	Register(&Analyzer{
		Name: "privcheck",
		Doc:  "exported *hv.Hypervisor methods taking a DomID must audit the caller via h.check or h.controls",
		Run:  runPrivcheck,
	})
}

func runPrivcheck(p *Package) []Diagnostic {
	if p.Path != "xoar/internal/hv" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		if p.Test[f] {
			continue // test helpers are not hypercall entry points
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			recv := receiverName(fn, "Hypervisor")
			if recv == "" {
				continue
			}
			if _, ok := privcheckAllowed[fn.Name.Name]; ok {
				continue
			}
			domParams := domIDParams(p, f, fn)
			if len(domParams) == 0 {
				continue
			}
			if auditsCaller(fn.Body, recv, domParams) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(fn.Name.Pos()),
				Analyzer: "privcheck",
				Message: fmt.Sprintf("hv.%s takes a caller DomID but never calls %s.check or %s.controls before acting",
					fn.Name.Name, recv, recv),
			})
		}
	}
	return diags
}

// receiverName returns the receiver identifier of a method on *typeName (or
// typeName), or "" if the receiver is a different type or anonymous.
func receiverName(fn *ast.FuncDecl, typeName string) string {
	if len(fn.Recv.List) != 1 {
		return ""
	}
	field := fn.Recv.List[0]
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok || id.Name != typeName {
		return ""
	}
	if len(field.Names) != 1 {
		return ""
	}
	return field.Names[0].Name
}

// domIDParams returns the names of parameters typed xtypes.DomID.
func domIDParams(p *Package, f *ast.File, fn *ast.FuncDecl) map[string]bool {
	return domIDFields(p, f, fn.Type.Params)
}

// domIDFields is domIDParams over a bare parameter list — shared with
// privflow's function-literal analysis, where there is no FuncDecl.
func domIDFields(p *Package, f *ast.File, params *ast.FieldList) map[string]bool {
	out := map[string]bool{}
	if params == nil {
		return out
	}
	for _, field := range params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "DomID" {
			continue
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok || p.pkgPathOf(f, x) != "xoar/internal/xtypes" {
			continue
		}
		for _, n := range field.Names {
			out[n.Name] = true
		}
	}
	return out
}

// auditsCaller reports whether body contains a call recv.check(param, …) or
// recv.controls(…). For check, the first argument must be one of the
// method's own DomID parameters — auditing a constant or an unrelated
// domain is still a forgotten audit.
func auditsCaller(body *ast.BlockStmt, recv string, domParams map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok || x.Name != recv {
			return true
		}
		switch sel.Sel.Name {
		case "controls":
			found = true
		case "check":
			if len(call.Args) > 0 {
				if arg, ok := call.Args[0].(*ast.Ident); ok && domParams[arg.Name] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
