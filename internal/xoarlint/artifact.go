package xoarlint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// The privilege matrix is privflow's structured artifact: one row per
// hypercall entry point of internal/hv, listing the specific xtypes.Hyper*
// privileges the caller is checked against, whether management rights
// (h.controls) are consulted, and which state roots the call can mutate.
// It is the Go analogue of the paper's Table 3.1 per-shard hypercall
// whitelists, checked into the repo as PRIVMATRIX.json and guarded by a
// drift test: widening the enforcement surface shows up as a reviewable
// diff, never as a silent change.

// PrivEntry is one row of the privilege matrix.
type PrivEntry struct {
	// Method is the exported *hv.Hypervisor entry point.
	Method string `json:"method"`
	// Privileges are the xtypes.Hyper* constants the caller is checked
	// against on some path through the entry point.
	Privileges []string `json:"privileges,omitempty"`
	// Controls reports whether the entry point consults management rights
	// over a target (h.controls).
	Controls bool `json:"controls,omitempty"`
	// Mutates lists the hypervisor/domain state roots the entry point can
	// mutate (directly or through helpers).
	Mutates []string `json:"mutates,omitempty"`
	// Exempt carries the allowlist rationale for entry points that audit
	// nothing by design; all other fields are empty for such rows.
	Exempt string `json:"exempt,omitempty"`
}

// PrivMatrix is the full artifact.
type PrivMatrix struct {
	// Source names the analyzed package.
	Source string `json:"source"`
	// Entrypoints are the rows, sorted by method name.
	Entrypoints []PrivEntry `json:"entrypoints"`
}

// BuildPrivMatrix runs the privflow analysis over the hv package among
// pkgs and returns the privilege matrix. Diagnostics are not reported here;
// RunAll owns enforcement, this owns the artifact.
func BuildPrivMatrix(pkgs []*Package) (*PrivMatrix, error) {
	for _, p := range pkgs {
		if p.Path != hvPath {
			continue
		}
		_, entries := privflowPackage(p)
		if len(entries) == 0 {
			continue // external-test unit of hv: no methods
		}
		return &PrivMatrix{Source: hvPath, Entrypoints: entries}, nil
	}
	return nil, fmt.Errorf("xoarlint: %s not among the loaded packages", hvPath)
}

// EncodeJSON renders the matrix in its canonical checked-in form:
// two-space indented, trailing newline.
func (m *PrivMatrix) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodePrivMatrix parses a checked-in matrix.
func DecodePrivMatrix(data []byte) (*PrivMatrix, error) {
	var m PrivMatrix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("xoarlint: parsing privilege matrix: %w", err)
	}
	return &m, nil
}

// DiffPrivMatrices compares a checked-in matrix against a freshly built
// one and returns human-readable difference lines, empty when identical.
func DiffPrivMatrices(checked, built *PrivMatrix) []string {
	var out []string
	if checked.Source != built.Source {
		out = append(out, fmt.Sprintf("source: checked in %q, built %q", checked.Source, built.Source))
	}
	want := map[string]PrivEntry{}
	for _, e := range checked.Entrypoints {
		want[e.Method] = e
	}
	got := map[string]PrivEntry{}
	for _, e := range built.Entrypoints {
		got[e.Method] = e
	}
	var names []string
	seen := map[string]bool{}
	for n := range want {
		names = append(names, n)
		seen[n] = true
	}
	for n := range got {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		w, inW := want[n]
		g, inG := got[n]
		switch {
		case !inG:
			out = append(out, fmt.Sprintf("- %s: entry point removed (was %s)", n, describeEntry(w)))
		case !inW:
			out = append(out, fmt.Sprintf("+ %s: new entry point (%s)", n, describeEntry(g)))
		case describeEntry(w) != describeEntry(g):
			out = append(out, fmt.Sprintf("~ %s: checked in {%s}, built {%s}", n, describeEntry(w), describeEntry(g)))
		}
	}
	return out
}

func describeEntry(e PrivEntry) string {
	if e.Exempt != "" {
		return "exempt: " + e.Exempt
	}
	parts := []string{"privileges=[" + strings.Join(e.Privileges, " ") + "]"}
	if e.Controls {
		parts = append(parts, "controls")
	}
	parts = append(parts, "mutates=["+strings.Join(e.Mutates, " ")+"]")
	return strings.Join(parts, " ")
}
