// Package xoarlint is the repo's static-analysis layer: a small analyzer
// framework on the standard library's go/ast, go/parser, go/token and
// go/types, plus the passes that turn Xoar's least-privilege conventions
// into build-time invariants.
//
// The paper's security argument is that privilege boundaries must be
// enforced mechanisms, not conventions (§3, §5.6): every hypercall is
// audited against a per-shard whitelist and shards only communicate over
// explicitly linked channels. The Go model encodes those rules dynamically
// in internal/hv; xoarlint makes them hold *by construction* — a future
// *hv.Hypervisor method that forgets its h.check(caller, …) audit, a shard
// package that grows a side-channel import, or a component that reads the
// wall clock behind the simulator's back fails `go test ./...` before it
// can ship. This is the "forgotten audit" bug class the CVE study in §6.2
// catalogues, caught at the same layer seL4-style work argues for:
// verify the TCB, don't just test it.
//
// Analyzers register themselves in init and run over loaded packages; a
// new pass needs only an Analyzer literal and a Register call (~50 lines,
// see simtime.go for the smallest example). Violations that are genuinely
// intended carry a suppression comment with a mandatory justification:
//
//	//xoarlint:allow(layering) toolstack is the control plane; runtime traffic rides hv-audited rings
//
// on the offending line or the line directly above it. An allow comment
// with no justification, or naming an unknown analyzer, is itself a
// diagnostic.
package xoarlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line presentation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one loaded compilation unit: the files of a package (or of its
// external _test package), parsed with comments and best-effort type-checked.
type Package struct {
	// Name is the package name as declared in source ("hv").
	Name string
	// Path is the import path ("xoar/internal/hv"). External test packages
	// share the path of the package under test.
	Path string
	// Dir is the directory the files were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed files of the unit.
	Files []*ast.File
	// Test marks files belonging to the test build (_test.go), keyed by file.
	Test map[*ast.File]bool
	// Info carries best-effort type information. Imports are resolved against
	// stub packages, so cross-package object info is incomplete by design;
	// analyzers use Info to resolve identifiers to imported package names and
	// fall back to syntactic import tables when checking failed.
	Info *types.Info
	// Src holds the raw source by filename, used to classify suppression
	// comments as standalone or trailing.
	Src map[string][]byte
}

// ShortName returns the last path element ("hv").
func (p *Package) ShortName() string {
	if i := strings.LastIndexByte(p.Path, '/'); i >= 0 {
		return p.Path[i+1:]
	}
	return p.Path
}

// Internal reports whether the package lives under xoar/internal/.
func (p *Package) Internal() bool {
	return strings.HasPrefix(p.Path, "xoar/internal/")
}

// pkgPathOf resolves ident to the import path of the package it names, or ""
// if it does not name a package. Type information is consulted first (which
// also sees through shadowing); if checking failed for this file the syntactic
// import table of the enclosing file is used.
func (p *Package) pkgPathOf(file *ast.File, ident *ast.Ident) string {
	if obj, ok := p.Info.Uses[ident]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // resolved to a non-package object (shadowed)
	}
	// Fallback: match against the file's import declarations.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == ident.Name {
			return path
		}
	}
	return ""
}

// Analyzer is one registered pass.
type Analyzer struct {
	// Name is the key used in diagnostics and //xoarlint:allow comments.
	Name string
	// Doc is a one-line description shown by `xoarlint -list`.
	Doc string
	// Run inspects one package unit and returns its findings. Nil for
	// module-level passes.
	Run func(*Package) []Diagnostic
	// RunModule, when set, is invoked once with every loaded package so the
	// pass can resolve cross-package calls (hotpath walks the whole call
	// graph from its annotated roots). Suppressions apply the same way.
	RunModule func([]*Package) []Diagnostic
}

var registry []*Analyzer

// Register adds an analyzer to the global registry; analyzers call it from
// init so that importing the package wires the full suite.
func Register(a *Analyzer) { registry = append(registry, a) }

// Analyzers returns the registered passes sorted by name.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// suppression is one //xoarlint:allow comment.
type suppression struct {
	pos           token.Position
	analyzers     map[string]bool
	justification string
	// standalone comments (nothing but whitespace before them on the line)
	// cover the next source line; trailing comments cover their own line.
	standalone bool
}

var allowRe = regexp.MustCompile(`^//xoarlint:allow\(([^)]*)\)\s*(.*)$`)

// suppressionsOf collects the allow comments of a package, keyed by
// "file:line". Malformed comments (no justification, unknown analyzer) are
// returned as diagnostics — a suppression is a security decision and must
// carry its reasoning.
func suppressionsOf(pkgs []*Package) (map[string]suppression, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range registry {
		known[a.Name] = true
	}
	sups := map[string]suppression{}
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					s := suppression{
						pos:           pos,
						analyzers:     map[string]bool{},
						justification: strings.TrimSpace(m[2]),
						standalone:    standaloneComment(p.Src[pos.Filename], pos),
					}
					for _, name := range strings.Split(m[1], ",") {
						name = strings.TrimSpace(name)
						if name == "" {
							continue
						}
						if !known[name] {
							diags = append(diags, Diagnostic{Pos: pos, Analyzer: "xoarlint",
								Message: fmt.Sprintf("suppression names unknown analyzer %q", name)})
							continue
						}
						s.analyzers[name] = true
					}
					if s.justification == "" {
						diags = append(diags, Diagnostic{Pos: pos, Analyzer: "xoarlint",
							Message: "suppression requires a justification: //xoarlint:allow(<analyzer>) <why this is safe>"})
						continue
					}
					if len(s.analyzers) == 0 {
						continue
					}
					sups[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = s
				}
			}
		}
	}
	return sups, diags
}

// RunAll runs every registered analyzer over pkgs, applies suppressions, and
// returns the surviving diagnostics sorted by position.
func RunAll(pkgs []*Package) []Diagnostic {
	sups, diags := suppressionsOf(pkgs)
	for _, a := range registry {
		if a.Run != nil {
			for _, p := range pkgs {
				for _, d := range a.Run(p) {
					if suppressed(sups, d) {
						continue
					}
					diags = append(diags, d)
				}
			}
		}
		if a.RunModule != nil {
			for _, d := range a.RunModule(pkgs) {
				if suppressed(sups, d) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	// Total order down to the message: several diagnostics can share a
	// position (one mutation reached through different function values), and
	// output must be byte-stable for drift gates and CI annotation diffs.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// suppressed reports whether d is covered by an allow comment: a trailing
// comment covers the diagnostics of its own line, a standalone comment those
// of the line directly below it.
func suppressed(sups map[string]suppression, d Diagnostic) bool {
	if s, ok := sups[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]; ok &&
		!s.standalone && s.analyzers[d.Analyzer] {
		return true
	}
	if s, ok := sups[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line-1)]; ok &&
		s.standalone && s.analyzers[d.Analyzer] {
		return true
	}
	return false
}

// standaloneComment reports whether only whitespace precedes the comment on
// its line. Without source (synthetic packages loaded piecemeal) a comment is
// treated as standalone.
func standaloneComment(src []byte, pos token.Position) bool {
	if src == nil {
		return true
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return true
	}
	for _, b := range src[start:pos.Offset] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}
