package xoarlint

import (
	"fmt"
	"go/ast"
	"sort"

	"xoar/internal/capability"
	"xoar/internal/xtypes"
)

// capgen derives CAPMANIFEST.json, the per-shard capability manifests, by
// composing three inputs:
//
//   - the privilege matrix privflow builds from internal/hv (which Hyper*
//     constants each entry point demands, what state it mutates),
//   - the declarative shard roles in internal/capability (which entry
//     points each shard class invokes),
//   - the §7.1 ring classification (internal/capability) and the Hyper*
//     constant enumeration read from the internal/xtypes AST.
//
// A shard's grant set is the union of privileges its declared operations
// demand — plus the explicitly-rationalized non-hv grants — so the boot
// whitelists that consume the manifest are provably derived from the
// analyzed source. Generation fails loudly on an op name no matrix row
// carries, on an exempt (unaudited-by-design) op, and on any enumerated
// hypercall constant missing a ring classification: the exhaustiveness
// holes that silent-default maps used to hide.

// xtypesPath is the package whose Hypercall const block is the grant
// universe.
const xtypesPath = "xoar/internal/xtypes"

const (
	riskRing0        = 3
	riskDeprivileged = 1
)

// BuildCapManifest builds the capability manifest from the loaded module.
func BuildCapManifest(pkgs []*Package) (*capability.Manifest, error) {
	matrix, err := BuildPrivMatrix(pkgs)
	if err != nil {
		return nil, err
	}
	consts, err := hyperConstants(pkgs)
	if err != nil {
		return nil, err
	}
	// Exhaustiveness: every enumerated constant must carry an explicit ring
	// classification before it can appear in any grant.
	var unclassified []string
	for name, v := range consts {
		if _, ok := capability.RingOf(v); !ok {
			unclassified = append(unclassified, name)
		}
	}
	if len(unclassified) > 0 {
		sort.Strings(unclassified)
		return nil, fmt.Errorf("xoarlint: hypercalls without a ring classification in internal/capability: %v", unclassified)
	}
	byValue := map[xtypes.Hypercall]string{}
	for name, v := range consts {
		byValue[v] = name
	}

	rows := map[string]PrivEntry{}
	for _, e := range matrix.Entrypoints {
		rows[e.Method] = e
	}

	m := &capability.Manifest{Source: "PRIVMATRIX (privflow over " + hvPath + ") x capability.Roles"}
	for _, role := range capability.Roles {
		shard, err := buildShard(role, rows, consts, byValue)
		if err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, shard)
	}
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Role < m.Shards[j].Role })
	return m, nil
}

// buildShard resolves one role's operations against the matrix rows.
func buildShard(role capability.Role, rows map[string]PrivEntry, consts map[string]xtypes.Hypercall, byValue map[xtypes.Hypercall]string) (capability.ShardManifest, error) {
	type acc struct {
		ops     map[string]bool
		mutates map[string]bool
	}
	grants := map[xtypes.Hypercall]*acc{}
	for _, op := range role.Ops {
		row, ok := rows[op]
		if !ok {
			return capability.ShardManifest{}, fmt.Errorf("xoarlint: role %q op %q has no privilege-matrix row", role.Name, op)
		}
		if row.Exempt != "" {
			return capability.ShardManifest{}, fmt.Errorf("xoarlint: role %q op %q is exempt (%s) — exempt entry points grant nothing", role.Name, op, row.Exempt)
		}
		for _, priv := range row.Privileges {
			v, ok := consts[priv]
			if !ok {
				return capability.ShardManifest{}, fmt.Errorf("xoarlint: matrix names %s, not found among the xtypes Hypercall constants", priv)
			}
			if !v.Privileged() {
				continue // ambient calls available to every guest need no grant
			}
			a := grants[v]
			if a == nil {
				a = &acc{ops: map[string]bool{}, mutates: map[string]bool{}}
				grants[v] = a
			}
			a.ops[op] = true
			for _, root := range row.Mutates {
				a.mutates[root] = true
			}
		}
	}

	shard := capability.ShardManifest{
		Role:    role.Name,
		Doc:     role.Doc,
		IOPorts: append([]string(nil), role.IOPorts...),
	}
	sort.Strings(shard.IOPorts)

	var order []xtypes.Hypercall
	for v := range grants {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	stateRoots := map[string]bool{}
	for _, v := range order {
		a := grants[v]
		ring, _ := capability.RingOf(v)
		g := capability.Grant{
			Hypercall: byValue[v],
			Call:      v.String(),
			Ring:      ring.String(),
			Risk:      riskWeight(ring) + len(a.mutates),
			Ops:       sortedKeys(a.ops),
			Mutates:   sortedKeys(a.mutates),
		}
		for root := range a.mutates {
			stateRoots[root] = true
		}
		shard.Grants = append(shard.Grants, g)
	}
	for _, nh := range role.NonHV {
		if _, held := grants[nh.Hypercall]; held {
			return capability.ShardManifest{}, fmt.Errorf("xoarlint: role %q rationale grant %v is already demanded by its ops — drop the rationale", role.Name, nh.Hypercall)
		}
		ring, ok := capability.RingOf(nh.Hypercall)
		if !ok {
			return capability.ShardManifest{}, fmt.Errorf("xoarlint: role %q rationale grant %v has no ring classification", role.Name, nh.Hypercall)
		}
		name, ok := byValue[nh.Hypercall]
		if !ok {
			return capability.ShardManifest{}, fmt.Errorf("xoarlint: role %q rationale grant %v not among the xtypes Hypercall constants", role.Name, nh.Hypercall)
		}
		shard.Grants = append(shard.Grants, capability.Grant{
			Hypercall: name,
			Call:      nh.Hypercall.String(),
			Ring:      ring.String(),
			Risk:      riskWeight(ring),
			Rationale: nh.Why,
		})
	}
	sort.Slice(shard.Grants, func(i, j int) bool {
		vi, _ := xtypes.HypercallByName(shard.Grants[i].Call)
		vj, _ := xtypes.HypercallByName(shard.Grants[j].Call)
		return vi < vj
	})

	shard.Surface.Grants = len(shard.Grants)
	for _, g := range shard.Grants {
		if g.Ring == capability.Ring0.String() {
			shard.Surface.Ring0Grants++
		}
		shard.Surface.RiskTotal += g.Risk
	}
	shard.Surface.StateRoots = sortedKeys(stateRoots)
	return shard, nil
}

func riskWeight(r capability.Ring) int {
	if r == capability.Ring0 {
		return riskRing0
	}
	return riskDeprivileged
}

// hyperConstants reads the Hypercall const block out of the internal/xtypes
// AST: every identifier in the iota block typed Hypercall, mapped to its
// value, excluding the NumHypercalls sentinel. Enumerating from source —
// rather than hand-maintaining a parallel list — is what lets capgen fail
// generation the moment a new constant lands without a ring classification.
func hyperConstants(pkgs []*Package) (map[string]xtypes.Hypercall, error) {
	for _, p := range pkgs {
		if p.Path != xtypesPath {
			continue
		}
		out := map[string]xtypes.Hypercall{}
		for _, f := range p.Files {
			if p.Test[f] {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok.String() != "const" {
					continue
				}
				if !hypercallBlock(gd) {
					continue
				}
				for i, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != 1 {
						continue
					}
					name := vs.Names[0].Name
					if name == "NumHypercalls" {
						continue
					}
					out[name] = xtypes.Hypercall(i)
				}
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("xoarlint: no Hypercall const block found in %s", xtypesPath)
		}
		// The AST enumeration and the compiled sentinel must agree, or the
		// iota reconstruction above has drifted from the source layout.
		if len(out) != int(xtypes.NumHypercalls) {
			return nil, fmt.Errorf("xoarlint: enumerated %d Hypercall constants, compiled NumHypercalls is %d", len(out), xtypes.NumHypercalls)
		}
		return out, nil
	}
	return nil, fmt.Errorf("xoarlint: %s not among the loaded packages", xtypesPath)
}

// hypercallBlock recognizes the const block whose first spec declares the
// Hypercall type (`HyperSchedOp Hypercall = iota`).
func hypercallBlock(gd *ast.GenDecl) bool {
	if len(gd.Specs) == 0 {
		return false
	}
	vs, ok := gd.Specs[0].(*ast.ValueSpec)
	if !ok {
		return false
	}
	id, ok := vs.Type.(*ast.Ident)
	return ok && id.Name == "Hypercall"
}
