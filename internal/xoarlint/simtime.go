package xoarlint

import (
	"fmt"
	"go/ast"
)

// simtime keeps the platform deterministic and replayable: every component
// under internal/ experiences time only through the discrete-event clock in
// internal/sim, and randomness only through the seeded sim.Env source. A
// stray time.Now or global math/rand call would make boot traces, restart
// schedules and the paper's experiment tables (§6.1) irreproducible — and
// would do so silently, only showing up as flaky numbers much later.
//
// internal/sim itself is the designated wrapper and is exempt; it owns the
// one seeded rand.Rand (constructed with rand.New, which is allowed
// everywhere — only the process-global source is banned).

// bannedCalls lists, per import path, the package-level functions that reach
// for wall-clock time or process-global randomness.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":       "use the sim clock (sim.Env.Now / sim.Proc.Now)",
		"Sleep":     "use sim.Proc.Sleep",
		"After":     "use sim.Env.After",
		"AfterFunc": "use sim.Env.After",
		"Since":     "use sim.Time.Sub on sim timestamps",
		"Until":     "use sim.Time.Sub on sim timestamps",
		"Tick":      "use sim.Env.After in a loop",
		"NewTimer":  "use sim.Env.After",
		"NewTicker": "use sim.Env.After in a loop",
	},
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "",
		"Seed": "", "Read": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "", "N": "",
	},
}

func init() {
	Register(&Analyzer{
		Name: "simtime",
		Doc:  "internal/ packages must take time and randomness from internal/sim, never the wall clock or global math/rand",
		Run:  runSimtime,
	})
}

func runSimtime(p *Package) []Diagnostic {
	if !p.Internal() || p.Path == "xoar/internal/sim" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path := p.pkgPathOf(f, x)
			banned, ok := bannedCalls[path]
			if !ok {
				return true
			}
			hint, ok := banned[sel.Sel.Name]
			if !ok {
				return true
			}
			msg := fmt.Sprintf("%s.%s breaks simulation determinism", x.Name, sel.Sel.Name)
			if path == "math/rand" || path == "math/rand/v2" {
				msg = fmt.Sprintf("%s.%s uses the process-global random source; draw from the seeded sim.Env.Rand()", x.Name, sel.Sel.Name)
			} else if hint != "" {
				msg += "; " + hint
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(sel.Pos()),
				Analyzer: "simtime",
				Message:  msg,
			})
			return true
		})
	}
	return diags
}
