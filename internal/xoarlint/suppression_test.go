package xoarlint

import (
	"strings"
	"testing"
)

// Edge cases of the //xoarlint:allow comment placement rules: a trailing
// comment covers exactly its own line, a standalone comment exactly the
// next line. A suppression is a security decision, so any ambiguity about
// what it covers must resolve to "not suppressed".

func TestSuppressionWrongLineDoesNotApply(t *testing.T) {
	src := `package netdrv

import "time"

func f() {
	//xoarlint:allow(simtime) wall clock needed for the log banner
	x := 1
	_ = x
	_ = time.Now()
}
`
	p := loadSrc(t, "xoar/internal/netdrv", src)
	wantDiags(t, diagsOf(t, "simtime", p), "time.Now breaks simulation determinism")
}

// Stacked standalone allows do not accumulate: each covers only the line
// directly below it, so the upper comment lands on the lower comment and
// suppresses nothing. Covering two analyzers on one line takes the
// comma-list form instead.
func TestSuppressionStackedAllowsOnlyAdjacentApplies(t *testing.T) {
	src := `package netdrv

import (
	"math/rand"
	"time"
)

func f() {
	//xoarlint:allow(simtime) stacked: covers only the comment below
	//xoarlint:allow(simtime) adjacent: covers the Now call
	_ = time.Now()
	_ = rand.Intn(10)
}
`
	p := loadSrc(t, "xoar/internal/netdrv", src)
	wantDiags(t, diagsOf(t, "simtime", p), "rand.Intn uses the process-global random source")
}

func TestSuppressionCommaListCoversMultipleAnalyzers(t *testing.T) {
	src := `package netdrv

import "time"

func f() {
	_ = time.Now() //xoarlint:allow(simtime, errwrap) banner timestamp, never compared
}
`
	p := loadSrc(t, "xoar/internal/netdrv", src)
	if diags := diagsOf(t, "simtime", p); len(diags) != 0 {
		t.Fatalf("comma-list suppression ignored: %v", diags)
	}
}

func TestSuppressionTrailingDoesNotLeakToNextLine(t *testing.T) {
	src := `package netdrv

import "time"

func f() {
	time.Sleep(time.Second) //xoarlint:allow(simtime) startup grace period outside the sim
	_ = time.Now()
}
`
	p := loadSrc(t, "xoar/internal/netdrv", src)
	wantDiags(t, diagsOf(t, "simtime", p), "time.Now breaks simulation determinism")
}

// An unknown name inside a comma list is reported without voiding the
// valid names next to it.
func TestSuppressionUnknownAnalyzerInListStillReported(t *testing.T) {
	src := `package netdrv

import "time"

func f() {
	_ = time.Now() //xoarlint:allow(simtime, simtiem) typo next to a valid name
}
`
	p := loadSrc(t, "xoar/internal/netdrv", src)
	var unknown bool
	for _, d := range RunAll([]*Package{p}) {
		if d.Analyzer == "xoarlint" && strings.Contains(d.Message, `unknown analyzer "simtiem"`) {
			unknown = true
		}
		if d.Analyzer == "simtime" {
			t.Errorf("valid name in the list did not suppress: %v", d)
		}
	}
	if !unknown {
		t.Error("unknown analyzer in comma list not reported")
	}
}
