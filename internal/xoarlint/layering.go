package xoarlint

import (
	"fmt"
	"strings"
)

// layering makes the paper's "no side channels between shards" property
// (§5.6) visible in the import graph. Each service shard runs in its own
// domain and may talk to peers only over channels the hypervisor has
// explicitly linked; the Go packages modelling those shards must mirror
// that: a service package may import shared leaves (xtypes, sim, ring,
// telemetry, hw, and the hv interface they call into) but not one another.
// A new cross-service import is a side channel the hypervisor never
// audited, and fails the build here.
//
// One edge is sanctioned in the DAG itself: every service may import
// xenstore, whose Conn/Logic types are the client wire-protocol library —
// the analogue of libxenstore compiled into each real shard. The import
// carries no shared state; runtime traffic still rides hv-audited IVC.
// The two control-plane packages that hold handles to service objects by
// construction (toolstack orchestrates device attach; qemudm embeds the
// frontend halves of its HVM guest's devices) carry explicit
// //xoarlint:allow(layering) suppressions at each import instead, so every
// exception stays visible and justified at the use site.
//
// Test files are exempt: a _test.go harness legitimately wires several
// shards together the way the boot process does.

// servicePackages are the shard-service packages under xoar/internal/.
var servicePackages = map[string]bool{
	"netdrv":     true,
	"blkdrv":     true,
	"xenstore":   true,
	"consolemgr": true,
	"toolstack":  true,
	"qemudm":     true,
	"pciback":    true,
}

// sanctionedEdges are service→service imports declared legal in the DAG.
var sanctionedEdges = map[string]bool{
	// The xenstore client library: shards bundle the protocol code, data
	// flows over linked rings (see package comment).
	"*->xenstore": true,
}

func init() {
	Register(&Analyzer{
		Name: "layering",
		Doc:  "shard service packages may not import one another; only shared leaves and sanctioned edges",
		Run:  runLayering,
	})
}

func runLayering(p *Package) []Diagnostic {
	if !p.Internal() || !servicePackages[p.ShortName()] {
		return nil
	}
	from := p.ShortName()
	var diags []Diagnostic
	for _, f := range p.Files {
		if p.Test[f] {
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			rest, ok := strings.CutPrefix(path, "xoar/internal/")
			if !ok {
				continue
			}
			to := rest
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				to = rest[:i]
			}
			if !servicePackages[to] || to == from {
				continue
			}
			if sanctionedEdges[from+"->"+to] || sanctionedEdges["*->"+to] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(imp.Pos()),
				Analyzer: "layering",
				Message: fmt.Sprintf("service package %s imports service package %s: shards share no channels the hypervisor has not linked (§5.6)",
					from, to),
			})
		}
	}
	return diags
}
