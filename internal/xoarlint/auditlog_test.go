package xoarlint

import (
	"strings"
	"testing"
)

// auditlogSrc covers the emit-presence analysis: direct emits, emits and
// mutations carried through helpers, delete-based mutations, and the two
// gap shapes (no emit at all, mutation in a helper the entry point calls).
// Emission is wired end to end, as in the real hv: emit forwards through
// the func-typed Sink field, which is what the analyzer actually credits.
const auditlogSrc = `package hv

import "xoar/internal/xtypes"

type Event struct {
	Kind string
	Dom  xtypes.DomID
}

type Domain struct {
	State      int
	parentTool xtypes.DomID
}

type Hypervisor struct {
	domains    map[xtypes.DomID]*Domain
	virqRoutes map[int]xtypes.DomID
	Sink       func(Event)
}

func (h *Hypervisor) emit(kind string, dom xtypes.DomID, arg string) {
	if h.Sink != nil {
		h.Sink(Event{Kind: kind, Dom: dom})
	}
}

func (h *Hypervisor) teardown(d *Domain) {
	d.State = 9
	h.emit("destroy", 0, "")
}

// Direct mutation, direct emit: clean.
func (h *Hypervisor) Pause(caller, target xtypes.DomID) error {
	h.domains[target].State = 1
	h.emit("pause", target, "")
	return nil
}

// Mutation and emit both live in the helper: clean.
func (h *Hypervisor) Destroy(caller, target xtypes.DomID) error {
	h.teardown(h.domains[target])
	delete(h.domains, target)
	return nil
}

// Lifecycle mutation, no emit anywhere: flagged.
func (h *Hypervisor) SetParent(caller, guest, tool xtypes.DomID) error {
	h.domains[guest].parentTool = tool
	return nil
}

// Map delete on hypervisor state, no emit: flagged.
func (h *Hypervisor) DropRoute(caller xtypes.DomID, virq int) error {
	delete(h.virqRoutes, virq)
	return nil
}

// Read-only entry point: out of scope.
func (h *Hypervisor) Lookup(caller, target xtypes.DomID) *Domain {
	return h.domains[target]
}
`

func TestAuditlogGaps(t *testing.T) {
	p := loadSrc(t, "xoar/internal/hv", auditlogSrc)
	wantDiags(t, diagsOf(t, "auditlog", p),
		"hv.SetParent mutates lifecycle/privilege state (Domain.parentTool) without appending an audit event through h's Event sink",
		"hv.DropRoute mutates lifecycle/privilege state (virqRoutes) without appending an audit event through h's Event sink",
	)
}

// TestAuditlogSeveredSinkWiring pins the end-to-end property: emit is
// credited because its body calls through the Sink field, not by name.
// Severing that wiring re-flags every entry point that emitted through it.
func TestAuditlogSeveredSinkWiring(t *testing.T) {
	src := strings.Replace(auditlogSrc,
		`	if h.Sink != nil {
		h.Sink(Event{Kind: kind, Dom: dom})
	}`,
		"\t_ = kind", 1)
	if src == auditlogSrc {
		t.Fatal("fixture replace missed")
	}
	p := loadSrc(t, "xoar/internal/hv", src)
	diags := diagsOf(t, "auditlog", p)
	for _, want := range []string{"hv.Pause", "hv.Destroy", "hv.SetParent", "hv.DropRoute"} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("severed Sink wiring: %s not flagged (emit credited by name, not by wiring?)", want)
		}
	}
}

func TestAuditlogScopedToHV(t *testing.T) {
	p := loadSrc(t, "xoar/internal/other", auditlogSrc)
	if diags := diagsOf(t, "auditlog", p); len(diags) != 0 {
		t.Fatalf("auditlog fired outside internal/hv: %v", diags)
	}
}

func TestAuditlogSuppression(t *testing.T) {
	src := strings.Replace(auditlogSrc,
		"func (h *Hypervisor) SetParent(",
		"//xoarlint:allow(auditlog) reparenting is logged by the caller\nfunc (h *Hypervisor) SetParent(", 1)
	p := loadSrc(t, "xoar/internal/hv", src)
	for _, d := range diagsOf(t, "auditlog", p) {
		if strings.Contains(d.Message, "SetParent") {
			t.Fatalf("suppressed diagnostic still reported: %v", d)
		}
	}
}
