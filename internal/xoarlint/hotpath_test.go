package xoarlint

import (
	"strings"
	"testing"
)

// --- hotpath -----------------------------------------------------------------

const hotpathSrc = `package ring

type Req struct{ ID int }

type Ring struct {
	slots  []Req
	broken bool
	notify func()
}

// Escaping composite literal and slice literal: flagged.
//
//xoarlint:hot
func (r *Ring) Escapes() *Req {
	_ = []int{1, 2, 3}
	return &Req{ID: 1}
}

// Append growth: flagged.
//
//xoarlint:hot
func (r *Ring) Grow(q Req) {
	r.slots = append(r.slots, q)
}

// Closure allocation: flagged.
//
//xoarlint:hot
func (r *Ring) Capture(n int) {
	r.notify = func() { _ = n }
}

// Cold fences: the error branch, the broken-flag branch and the
// panic-terminated branch may allocate freely.
//
//xoarlint:hot
func (r *Ring) Fenced(err error, n int) {
	if err != nil {
		_ = append([]int(nil), 1)
	}
	if r.broken {
		_ = make([]int, n)
	}
	if n > len(r.slots) {
		panic("overrun")
	}
	_ = len(r.slots)
}

// Suppressed inside a hot function: justified growth is accepted.
//
//xoarlint:hot
func (r *Ring) Amortized(q Req) {
	//xoarlint:allow(hotpath) backlog growth is bounded and reuses capacity at steady state
	r.slots = append(r.slots, q)
}

// Value-struct literal and in-place work: clean.
//
//xoarlint:hot
func (r *Ring) Clean(i int) Req {
	q := Req{ID: i}
	r.slots[0] = q
	return r.slots[0]
}

// Not annotated: allocations here are invisible unless reached from a root.
func (r *Ring) cold() *Req { return &Req{} }
`

func TestHotpathFlagsAllocationSites(t *testing.T) {
	p := loadSrc(t, "xoar/internal/ring", hotpathSrc)
	diags := diagsOf(t, "hotpath", p)
	wantDiags(t, diags,
		"slice/map composite literal",
		"&composite literal escapes",
		"append may grow",
		"function literal allocates a closure",
	)
}

func TestHotpathColdFences(t *testing.T) {
	// Fenced must contribute nothing: its only allocations sit behind an
	// err != nil check, a broken flag, and a panic terminator.
	p := loadSrc(t, "xoar/internal/ring", hotpathSrc)
	for _, d := range diagsOf(t, "hotpath", p) {
		if d.Pos.Line >= 44 && d.Pos.Line <= 56 {
			t.Errorf("cold-fenced site flagged: %v", d)
		}
	}
}

func TestHotpathSeveredAnnotationsDropRoots(t *testing.T) {
	// Stripping every //xoarlint:hot silences the analyzer entirely — which
	// is exactly why HOTPATH.json is drift-gated: the artifact diff, not a
	// diagnostic, is what catches a severed annotation.
	stripped := strings.ReplaceAll(hotpathSrc, "//xoarlint:hot", "//")
	p := loadSrc(t, "xoar/internal/ring", stripped)
	if diags := diagsOf(t, "hotpath", p); len(diags) != 0 {
		t.Fatalf("severed fixture still diagnosed: %v", diags)
	}
	old := BuildHotPath([]*Package{loadSrc(t, "xoar/internal/ring", hotpathSrc)})
	now := BuildHotPath([]*Package{p})
	if len(now.Roots) != 0 {
		t.Fatalf("stripped fixture still has roots: %+v", now.Roots)
	}
	diff := DiffHotPath(old, now)
	if len(diff) == 0 {
		t.Fatal("DiffHotPath reported no drift for severed annotations")
	}
	for _, line := range diff {
		if !strings.Contains(line, "no longer annotated") {
			t.Errorf("unexpected diff line %q", line)
		}
	}
}

const hotpathCallSrc = `package dev

type sink interface{ Put(v any) }

type Dev struct {
	s       sink
	counts  map[int]int
	handler func()
	pump    func()
}

func (d *Dev) step() { d.counts = nil }

func put(v any) {}

type point struct{ x int }

//xoarlint:hot
func (d *Dev) Boxes(p point, pp *point) {
	put(p)  // non-pointer into an any parameter: flagged
	put(pp) // pointer: free
	put(nil)
}

//xoarlint:hot
func (d *Dev) MapAndString(k int, s string) {
	d.counts[k] = 1          // map assign: flagged
	_ = s + "x"              // concat: flagged
	_ = []byte(s)            // string -> slice: flagged
	_ = string(rune(k))      // non-string -> string: flagged
	_ = point{x: k}          // value literal: free
}

//xoarlint:hot
func (d *Dev) Spawns() {
	go d.step() // goroutine: flagged
}

func (d *Dev) install() {
	d.pump = d.step
}

// Dynamic call through a field bound once to a named method: resolved and
// walked, so step's map-clear shows up as the only finding.
//
//xoarlint:hot
func (d *Dev) Dispatch() {
	if d.pump != nil {
		d.pump()
	}
}

// SetHandler forwards its parameter into the field; a hot call through it
// cannot be resolved and is itself the diagnostic.
func (d *Dev) SetHandler(h func()) { d.handler = h }

//xoarlint:hot
func (d *Dev) Fire() {
	if d.handler != nil {
		d.handler()
	}
}
`

func TestHotpathBoxingAndBuiltins(t *testing.T) {
	p := loadSrc(t, "xoar/internal/dev", hotpathCallSrc)
	diags := diagsOf(t, "hotpath", p)
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"interface boxing of non-pointer value",
		"map assignment",
		"string concatenation",
		"string to slice conversion",
		"conversion to string",
		"go statement",
		"cannot resolve call through function value xoar/internal/dev.Dev.handler",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing diagnostic %q in:\n%s", want, joined)
		}
	}
	if n := strings.Count(joined, "interface boxing"); n != 1 {
		t.Errorf("boxing flagged %d times, want 1 (pointer and nil args are free)", n)
	}
	if strings.Contains(joined, "Dev.pump") {
		t.Errorf("resolved field call diagnosed as unresolvable:\n%s", joined)
	}
}

func TestHotpathWalksResolvedFieldBindings(t *testing.T) {
	p := loadSrc(t, "xoar/internal/dev", hotpathCallSrc)
	hp := BuildHotPath([]*Package{p})
	var dispatch *HotPathRoot
	for i := range hp.Roots {
		if hp.Roots[i].Root == "xoar/internal/dev.Dev.Dispatch" {
			dispatch = &hp.Roots[i]
		}
	}
	if dispatch == nil {
		t.Fatal("Dispatch root missing from artifact")
	}
	joined := strings.Join(dispatch.Reachable, "\n")
	if !strings.Contains(joined, "xoar/internal/dev.Dev.step") {
		t.Errorf("Dispatch did not walk the field-bound method:\n%s", joined)
	}
}

func TestHotpathAnnotationGrammar(t *testing.T) {
	src := `package ring

//xoarlint:hot bench=BenchmarkMicro_X allocs=2
func Budgeted() {}

//xoarlint:hot turbo=yes
func Bad() {}
`
	p := loadSrc(t, "xoar/internal/ring", src)
	diags := diagsOf(t, "hotpath", p)
	wantDiags(t, diags, `unknown token "turbo=yes"`)
	hp := BuildHotPath([]*Package{p})
	var budgeted *HotPathRoot
	for i := range hp.Roots {
		if hp.Roots[i].Root == "xoar/internal/ring.Budgeted" {
			budgeted = &hp.Roots[i]
		}
	}
	if budgeted == nil {
		t.Fatal("Budgeted root missing")
	}
	if budgeted.Bench != "BenchmarkMicro_X" || budgeted.AllocsPerOp != 2 {
		t.Errorf("parsed bench=%q allocs=%d, want BenchmarkMicro_X/2", budgeted.Bench, budgeted.AllocsPerOp)
	}
}

func TestHotpathStdlibPolicy(t *testing.T) {
	src := `package dev

import (
	"fmt"
	"sort"
	"sync/atomic"
)

var n atomic.Int64

//xoarlint:hot
func Mixed(xs []float64, v float64) {
	n.Add(1)                     // sync/atomic: free
	_ = sort.SearchFloat64s(xs, v) // sort.Search*: free
	fmt.Println(v)               // fmt: flagged
	sort.Float64s(xs)            // unproven stdlib: flagged as unprovable
}
`
	p := loadSrc(t, "xoar/internal/dev", src)
	diags := diagsOf(t, "hotpath", p)
	wantDiags(t, diags,
		"call into fmt allocates",
		"cannot prove sort.Float64s allocation-free",
	)
}

func TestHotpathDecodeRoundTrip(t *testing.T) {
	p := loadSrc(t, "xoar/internal/ring", hotpathSrc)
	hp := BuildHotPath([]*Package{p})
	back, err := DecodeHotPath(hp.EncodeJSON())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Roots) != len(hp.Roots) {
		t.Fatalf("round trip lost roots: %d -> %d", len(hp.Roots), len(back.Roots))
	}
	if diff := DiffHotPath(hp, back); len(diff) != 0 {
		t.Fatalf("round trip drifted: %v", diff)
	}
}
