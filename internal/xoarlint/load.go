package xoarlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule walks the module rooted at (or above) dir and loads every
// package under it. Vendored trees, testdata and dot-directories are skipped.
func LoadModule(dir string) ([]*Package, error) {
	root, modName, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "node_modules") {
			return filepath.SkipDir
		}
		units, err := loadDir(path, importPathFor(root, modName, path))
		if err != nil {
			return err
		}
		pkgs = append(pkgs, units...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// LoadModuleDir loads the package units of a single directory, deriving the
// import path from the enclosing module.
func LoadModuleDir(dir string) ([]*Package, error) {
	root, modName, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return loadDir(dir, importPathFor(root, modName, abs))
}

// LoadDir loads the package units in a single directory under the given
// import path. The path override lets tests present synthetic sources as any
// package identity ("xoar/internal/hv") without living in the module tree.
func LoadDir(dir, importPath string) ([]*Package, error) {
	return loadDir(dir, importPath)
}

// findModule locates go.mod upward from dir and returns the module root and
// module name.
func findModule(dir string) (root, name string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("xoarlint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("xoarlint: no go.mod found above %s", dir)
		}
	}
}

func importPathFor(root, modName, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modName
	}
	return modName + "/" + filepath.ToSlash(rel)
}

// loadDir parses the .go files of one directory into package units: the
// package proper (with its in-package test files) and, when present, the
// external _test package.
func loadDir(dir, importPath string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	type unit struct {
		files []*ast.File
		test  map[*ast.File]bool
		src   map[string][]byte
	}
	units := map[string]*unit{} // by package name
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fpath := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(fpath)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, fpath, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("xoarlint: %w", err)
		}
		name := f.Name.Name
		u := units[name]
		if u == nil {
			u = &unit{test: map[*ast.File]bool{}, src: map[string][]byte{}}
			units[name] = u
			names = append(names, name)
		}
		u.files = append(u.files, f)
		u.src[fpath] = src
		if strings.HasSuffix(e.Name(), "_test.go") {
			u.test[f] = true
		}
	}
	sort.Strings(names)
	var pkgs []*Package
	for _, name := range names {
		u := units[name]
		p := typeCheck(fset, dir, importPath, name, u.files, u.test)
		p.Src = u.src
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typeCheck runs the go/types checker in best-effort mode: imports resolve to
// empty stub packages and every error is swallowed. The point is not full
// type safety (the compiler owns that) but the checker's name resolution —
// Info.Uses distinguishes an identifier that names an imported package from
// one shadowed by a local variable, which keeps the analyzers honest about
// aliased and shadowed imports.
func typeCheck(fset *token.FileSet, dir, importPath, name string, files []*ast.File, test map[*ast.File]bool) *Package {
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:                 &stubImporter{pkgs: map[string]*types.Package{}},
		Error:                    func(error) {}, // incomplete imports make errors inevitable
		DisableUnusedImportCheck: true,
	}
	// The checked package's path must differ from any stub the importer hands
	// back, so external test units keep their ".test" suffix internally.
	checkPath := importPath
	if strings.HasSuffix(name, "_test") {
		checkPath += ".test"
	}
	_, _ = conf.Check(checkPath, fset, files, info)
	return &Package{Name: name, Path: importPath, Dir: dir, Fset: fset, Files: files, Test: test, Info: info}
}

// stubImporter satisfies every import with an empty, complete package of the
// right path and name. Member lookups against it fail (and are ignored), but
// the qualifier identifier still resolves to a *types.PkgName.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (s *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	s.pkgs[path] = p
	return p, nil
}
