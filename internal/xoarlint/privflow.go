package xoarlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// privflow is the flow-sensitive successor to privcheck. Where privcheck
// asks "does the method contain an audit call somewhere?", privflow asks the
// question the §6.2 CVE study actually poses: does an *enforced* audit
// dominate every mutation of hypervisor state reachable from the entry
// point? An audit placed after the mutation, on only one branch, or whose
// error is dropped on the floor passes privcheck and fails privflow.
//
// The analysis is interprocedural over the *Hypervisor method graph: helper
// calls are inlined under the caller's fact set (so a mutation buried in
// h.destroy is checked against the audits its callers performed), and a
// helper that performs and enforces an audit itself — a future
// h.requirePriv — credits its callers once *they* enforce its result.
//
// Facts and enforcement. Calling h.check(caller, xtypes.HyperX) or
// h.controls(caller, d) establishes nothing by itself: the result must be
// acted on. A pending audit bound to an error variable becomes a fact on
// the control-flow edge where that error is nil (the `if err != nil
// { return err }` guard); a bool audit becomes a fact on the edge where it
// is true (`if !h.controls(...) { return ... }`). Branches merge by
// intersection, loops keep only entry facts, and a fact only satisfies
// dominance when the audited identifier is (bound to) one of the entry
// point's own DomID parameters — auditing a constant is still a forgotten
// audit.
//
// Function values (funcflow). Privilege also flows through functions as
// data: closures stored into func-typed fields (h.Sink), callback
// registries (h.onDestroy, Evtchn.SetHandler) and method values (f :=
// h.reap). The walk distinguishes two fates for a function value:
//
//   - locally bound and invoked (f := func(){...}; f(), or an immediately
//     invoked literal): the body is analyzed at the call site under the
//     caller's current facts, like an inlined helper;
//   - escaped (stored into a field or registry, passed as an argument,
//     returned): the body runs at an unknown later time, so it is analyzed
//     under an EMPTY fact state — audits performed before the store do not
//     dominate the deferred execution. The value's own DomID parameters are
//     entry-bound (they are the data the callback receives at invocation,
//     so an audit inside the closure on its own parameter is the legitimate
//     guard), and captured variables keep their entry binding for the same
//     reason.
//
// A privileged mutation hidden behind a stored closure is therefore flagged
// unless the closure re-audits for itself.
//
// The same walk powers the PRIVMATRIX.json artifact (see artifact.go): per
// entry point, the specific xtypes.Hyper* privileges checked, whether
// management rights are consulted, and which state roots are mutated — the
// Go analogue of the paper's Table 3.1 per-shard whitelist surface.

func init() {
	Register(&Analyzer{
		Name: "privflow",
		Doc:  "every hv state mutation must be dominated by an enforced h.check/h.controls audit on the caller (flow-sensitive, interprocedural)",
		Run:  runPrivflow,
	})
}

func runPrivflow(p *Package) []Diagnostic {
	diags, _ := privflowPackage(p)
	return diags
}

// hvPath is the one package whose exported surface is the hypercall ABI.
const hvPath = "xoar/internal/hv"

// exemptCounterFields are *Hypervisor fields that exist purely for
// experiment accounting; h.check itself bumps them before any verdict.
var exemptCounterFields = map[string]bool{
	"HypercallCount": true,
	"DeniedCalls":    true,
}

// hvStateObjects are *Hypervisor fields holding privileged machine state;
// any method call through them is a mutation unless listed read-only.
var hvStateObjects = map[string]bool{
	"MM":      true,
	"Grants":  true,
	"Evtchn":  true,
	"Machine": true,
}

// readOnlyStateCalls are query methods on state objects (and on
// Domain.Mem) that observe without mutating.
var readOnlyStateCalls = map[string]bool{
	"Devices":    true,
	"AssignedTo": true,
	"Snapshot":   true,
	"DirtyPages": true,
	"Read":       true,
	"Pages":      true,
	"FreeMB":     true,
}

// domainStateFields are *Domain fields that carry privilege, lifecycle or
// memory-image state; writing them (or calling through Mem) from a
// hypercall entry point requires a dominating audit.
var domainStateFields = map[string]bool{
	"State":         true,
	"parentTool":    true,
	"delegates":     true,
	"privilegedFor": true,
	"clients":       true,
	"priv":          true,
	"ioPorts":       true,
	"Mem":           true,
	"Cfg":           true,
	"ExitReason":    true,
}

// hvMethod is one method on *hv.Hypervisor, with the file it lives in (for
// import resolution) and its xtypes.DomID parameters.
type hvMethod struct {
	fn   *ast.FuncDecl
	file *ast.File
	recv string
	dom  map[string]bool
}

// hypervisorMethods collects every non-test *Hypervisor method of the
// package, keyed by name — the node set of the privilege-flow call graph.
func hypervisorMethods(p *Package) map[string]*hvMethod {
	out := map[string]*hvMethod{}
	for _, f := range p.Files {
		if p.Test[f] {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			recv := receiverName(fn, "Hypervisor")
			if recv == "" {
				continue
			}
			out[fn.Name.Name] = &hvMethod{fn: fn, file: f, recv: recv, dom: domIDParams(p, f, fn)}
		}
	}
	return out
}

// privflowPackage analyzes every hypercall entry point of the hv package,
// returning the diagnostics and the privilege-matrix rows. Entry points are
// exported *Hypervisor methods taking at least one caller DomID; the
// privcheck allowlist (read-only queries, deliberately unprivileged
// operations) carries over with its rationales.
func privflowPackage(p *Package) ([]Diagnostic, []PrivEntry) {
	if p.Path != hvPath {
		return nil, nil
	}
	methods := hypervisorMethods(p)
	var names []string
	for name, m := range methods {
		if m.fn.Name.IsExported() && len(m.dom) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var diags []Diagnostic
	var entries []PrivEntry
	for _, name := range names {
		if why, ok := privcheckAllowed[name]; ok {
			entries = append(entries, PrivEntry{Method: name, Exempt: why})
			continue
		}
		m := methods[name]
		c := &flow{
			p:        p,
			methods:  methods,
			entry:    name,
			reported: map[string]bool{},
			privs:    map[string]bool{},
			mutates:  map[string]bool{},
		}
		fr := &frame{m: m, binding: map[string]bool{}, hc: map[string]string{}, fns: map[string]fnVal{}}
		for pn := range m.dom {
			fr.binding[pn] = true
		}
		c.stmts(fr, newFlowState(), m.fn.Body.List)
		diags = append(diags, c.diags...)
		entries = append(entries, PrivEntry{
			Method:     name,
			Privileges: sortedKeys(c.privs),
			Controls:   c.controls,
			Mutates:    sortedKeys(c.mutates),
		})
	}
	return diags, entries
}

// fact is one established audit: past this program point the caller has
// been verified against a specific privilege (kind "priv") or against
// management rights over a target (kind "controls"). entry records whether
// the audited identifier is bound to one of the entry point's own DomID
// parameters; only entry facts satisfy dominance.
type fact struct {
	kind  string // "priv" or "controls"
	priv  string // xtypes constant name, kind=="priv" only
	dom   string // audited identifier, frame-local
	entry bool
}

func (f fact) key() string { return f.kind + ":" + f.priv + ":" + f.dom }

// pend holds audit facts awaiting enforcement, bound to the variable the
// audit's verdict was assigned to. boolPol facts hold where the variable is
// true (h.controls); otherwise where it is nil (error results).
type pend struct {
	facts   []fact
	boolPol bool
}

// flowState is the dataflow value: established facts plus pending audits.
type flowState struct {
	facts   map[string]fact
	pending map[string]pend
}

func newFlowState() *flowState {
	return &flowState{facts: map[string]fact{}, pending: map[string]pend{}}
}

func (s *flowState) clone() *flowState {
	out := newFlowState()
	for k, f := range s.facts {
		out.facts[k] = f
	}
	for k, p := range s.pending {
		out.pending[k] = p
	}
	return out
}

func (s *flowState) add(fs ...fact) *flowState {
	for _, f := range fs {
		s.facts[f.key()] = f
	}
	return s
}

// intersectStates merges two branch outcomes: only facts established on
// both paths survive.
func intersectStates(a, b *flowState) *flowState {
	out := newFlowState()
	for k, f := range a.facts {
		if _, ok := b.facts[k]; ok {
			out.facts[k] = f
		}
	}
	for k, p := range a.pending {
		if _, ok := b.pending[k]; ok {
			out.pending[k] = p
		}
	}
	return out
}

// evalRes is the audit outcome of evaluating an expression: facts that
// become pending on whatever variable the result lands in.
type evalRes struct {
	facts   []fact
	boolPol bool
}

// frame is one (possibly inlined) method activation: binding maps the
// method's DomID parameters to whether they carry an entry-point caller;
// hc maps parameters through which the call site passed a specific
// xtypes.Hyper* constant (so h.requirePriv(caller, xtypes.HyperX) audits
// a statically known privilege inside the helper too); fns maps local
// variables bound to function values (literals or method values), so a
// later f() is analyzed at its call site.
type frame struct {
	m       *hvMethod
	binding map[string]bool
	hc      map[string]string
	fns     map[string]fnVal
}

// fnVal is a function value a local variable is bound to.
type fnVal struct {
	lit    *ast.FuncLit // f := func(...){...}
	method *hvMethod    // f := h.reap
}

// flow analyzes one entry point.
type flow struct {
	p        *Package
	methods  map[string]*hvMethod
	entry    string
	diags    []Diagnostic
	reported map[string]bool
	privs    map[string]bool
	controls bool
	mutates  map[string]bool
	stack    []string // inlined helper chain, for cycle guard and messages
}

// --- statement walk ----------------------------------------------------------

// stmts walks a statement list, threading the dataflow state; the bool
// reports whether the list terminates (return/panic/branch) on every path
// that reaches its end.
func (c *flow) stmts(fr *frame, st *flowState, list []ast.Stmt) (*flowState, bool) {
	for _, s := range list {
		var term bool
		st, term = c.stmt(fr, st, s)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *flow) stmt(fr *frame, st *flowState, s ast.Stmt) (*flowState, bool) {
	switch v := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			c.expr(fr, st, r)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				for _, a := range call.Args {
					c.expr(fr, st, a)
				}
				return st, true
			}
		}
		// An audit whose result is discarded establishes nothing.
		c.expr(fr, st, v.X)
		return st, false
	case *ast.AssignStmt:
		return c.assign(fr, st, v), false
	case *ast.IncDecStmt:
		c.lvalue(fr, st, v.X)
		return st, false
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Names) == len(vs.Values) && c.bindFns(fr, vs.Names, vs.Values) {
					continue
				}
				var res *evalRes
				for _, val := range vs.Values {
					if r := c.expr(fr, st, val); r != nil {
						res = r
					}
				}
				var names []string
				for _, n := range vs.Names {
					delete(st.pending, n.Name)
					names = append(names, n.Name)
				}
				c.attach(st, names, res)
			}
		}
		return st, false
	case *ast.IfStmt:
		return c.ifStmt(fr, st, v)
	case *ast.BlockStmt:
		return c.stmts(fr, st, v.List)
	case *ast.ForStmt:
		if v.Init != nil {
			st, _ = c.stmt(fr, st, v.Init)
		}
		body := st.clone()
		if v.Cond != nil {
			pos, _ := c.cond(fr, body, v.Cond)
			body.add(pos...)
		}
		out, _ := c.stmts(fr, body, v.Body.List)
		if v.Post != nil {
			c.stmt(fr, out, v.Post)
		}
		return st, false // the body may run zero times: keep entry facts only
	case *ast.RangeStmt:
		c.expr(fr, st, v.X)
		body := st.clone()
		for _, e := range []ast.Expr{v.Key, v.Value} {
			if id, ok := e.(*ast.Ident); ok {
				delete(body.pending, id.Name)
			}
		}
		c.stmts(fr, body, v.Body.List)
		return st, false
	case *ast.SwitchStmt:
		if v.Init != nil {
			st, _ = c.stmt(fr, st, v.Init)
		}
		if v.Tag != nil {
			c.expr(fr, st, v.Tag)
		}
		return c.caseClauses(fr, st, v.Body.List)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			st, _ = c.stmt(fr, st, v.Init)
		}
		return c.caseClauses(fr, st, v.Body.List)
	case *ast.SelectStmt:
		for _, cl := range v.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok {
				c.stmts(fr, st.clone(), comm.Body)
			}
		}
		return st, false
	case *ast.DeferStmt:
		c.expr(fr, st, v.Call)
		return st, false
	case *ast.GoStmt:
		c.expr(fr, st, v.Call)
		return st, false
	case *ast.SendStmt:
		c.expr(fr, st, v.Chan)
		c.expr(fr, st, v.Value)
		return st, false
	case *ast.LabeledStmt:
		return c.stmt(fr, st, v.Stmt)
	}
	return st, false
}

// caseClauses walks switch bodies: each case starts from the pre-switch
// state and none of its facts escape (the matched case is unknown).
func (c *flow) caseClauses(fr *frame, st *flowState, clauses []ast.Stmt) (*flowState, bool) {
	hasDefault := false
	allTerm := len(clauses) > 0
	for _, cs := range clauses {
		cl, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cl.List == nil {
			hasDefault = true
		}
		for _, e := range cl.List {
			c.expr(fr, st, e)
		}
		if _, term := c.stmts(fr, st.clone(), cl.Body); !term {
			allTerm = false
		}
	}
	return st, hasDefault && allTerm
}

// assign processes RHS audits/mutations, LHS mutations, and rebinds pending
// audits to the variables their verdicts were assigned to. A function value
// assigned to a plain local is *bound*, not escaped — its body is analyzed
// when (and where) the local is invoked.
func (c *flow) assign(fr *frame, st *flowState, v *ast.AssignStmt) *flowState {
	if len(v.Lhs) == len(v.Rhs) && c.bindFnsExpr(fr, v.Lhs, v.Rhs) {
		for _, l := range v.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				delete(st.pending, id.Name)
			}
		}
		return st
	}
	var res *evalRes
	for _, r := range v.Rhs {
		if rr := c.expr(fr, st, r); rr != nil {
			res = rr
		}
	}
	var names []string
	for _, l := range v.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			delete(st.pending, id.Name) // reassignment invalidates the old verdict
			names = append(names, id.Name)
		} else {
			c.lvalue(fr, st, l)
			names = append(names, "")
		}
	}
	c.attach(st, names, res)
	return st
}

// attach binds an audit result to its destination variable: the sole
// variable for bool audits, the last one for error-style results (Go's
// error-last convention).
func (c *flow) attach(st *flowState, names []string, res *evalRes) {
	if res == nil || len(res.facts) == 0 || len(names) == 0 {
		return
	}
	target := names[len(names)-1]
	if res.boolPol && len(names) != 1 {
		return
	}
	if target == "" || target == "_" {
		return
	}
	st.pending[target] = pend{facts: res.facts, boolPol: res.boolPol}
}

// ifStmt is where pending audits become facts: on the branch edge that
// proves enforcement (err == nil, controls == true), and on the
// fall-through edge when the failure branch terminates.
func (c *flow) ifStmt(fr *frame, st *flowState, v *ast.IfStmt) (*flowState, bool) {
	if v.Init != nil {
		st, _ = c.stmt(fr, st, v.Init)
	}
	pos, neg := c.cond(fr, st, v.Cond)
	bOut, bTerm := c.stmts(fr, st.clone().add(pos...), v.Body.List)
	if v.Else == nil {
		skip := st.clone().add(neg...)
		if bTerm {
			return skip, false
		}
		return intersectStates(bOut, skip), false
	}
	elseSt := st.clone().add(neg...)
	var eOut *flowState
	var eTerm bool
	switch e := v.Else.(type) {
	case *ast.BlockStmt:
		eOut, eTerm = c.stmts(fr, elseSt, e.List)
	case *ast.IfStmt:
		eOut, eTerm = c.ifStmt(fr, elseSt, e)
	default:
		eOut = elseSt
	}
	switch {
	case bTerm && eTerm:
		return st, true
	case bTerm:
		return eOut, false
	case eTerm:
		return bOut, false
	default:
		return intersectStates(bOut, eOut), false
	}
}

// cond evaluates a branch condition and returns the facts established on
// its true and false edges.
func (c *flow) cond(fr *frame, st *flowState, e ast.Expr) (pos, neg []fact) {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return c.cond(fr, st, v.X)
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			p, n := c.cond(fr, st, v.X)
			return n, p
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			p1, _ := c.cond(fr, st, v.X)
			p2, _ := c.cond(fr, st, v.Y)
			return append(p1, p2...), nil // which conjunct failed is unknown
		case token.LOR:
			_, n1 := c.cond(fr, st, v.X)
			_, n2 := c.cond(fr, st, v.Y)
			return nil, append(n1, n2...)
		case token.EQL, token.NEQ:
			if isNilExpr(v.Y) {
				if res := c.valueRes(fr, st, v.X); res != nil && !res.boolPol {
					if v.Op == token.EQL {
						return res.facts, nil // err == nil: audit passed
					}
					return nil, res.facts // err != nil: failure edge
				}
				return nil, nil
			}
			c.expr(fr, st, v.X)
			c.expr(fr, st, v.Y)
			return nil, nil
		}
	case *ast.Ident:
		if pe, ok := st.pending[v.Name]; ok && pe.boolPol {
			return pe.facts, nil
		}
		return nil, nil
	case *ast.CallExpr:
		if res := c.expr(fr, st, v); res != nil && res.boolPol {
			return res.facts, nil
		}
		return nil, nil
	}
	c.expr(fr, st, e)
	return nil, nil
}

// valueRes resolves a condition operand to its pending audit, evaluating
// calls in place (`if h.requirePriv(caller, X) != nil`).
func (c *flow) valueRes(fr *frame, st *flowState, e ast.Expr) *evalRes {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return c.valueRes(fr, st, v.X)
	case *ast.Ident:
		if pe, ok := st.pending[v.Name]; ok {
			return &evalRes{facts: pe.facts, boolPol: pe.boolPol}
		}
	case *ast.CallExpr:
		return c.expr(fr, st, v)
	}
	return nil
}

func isNilExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// --- expression walk ---------------------------------------------------------

// expr walks an expression for audits, helper calls and mutations,
// returning the audit result of the outermost call, if any.
func (c *flow) expr(fr *frame, st *flowState, e ast.Expr) *evalRes {
	switch v := e.(type) {
	case nil:
		return nil
	case *ast.CallExpr:
		for _, a := range v.Args {
			c.expr(fr, st, a)
		}
		return c.call(fr, st, v)
	case *ast.ParenExpr:
		return c.expr(fr, st, v.X)
	case *ast.UnaryExpr:
		return c.expr(fr, st, v.X)
	case *ast.StarExpr:
		return c.expr(fr, st, v.X)
	case *ast.BinaryExpr:
		c.expr(fr, st, v.X)
		c.expr(fr, st, v.Y)
	case *ast.KeyValueExpr:
		c.expr(fr, st, v.Value)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			c.expr(fr, st, el)
		}
	case *ast.IndexExpr:
		c.expr(fr, st, v.X)
		c.expr(fr, st, v.Index)
	case *ast.SliceExpr:
		c.expr(fr, st, v.X)
		c.expr(fr, st, v.Low)
		c.expr(fr, st, v.High)
		c.expr(fr, st, v.Max)
	case *ast.SelectorExpr:
		// A method read as a value (h.reap passed to a registry) escapes:
		// it runs later, outside the facts established here.
		if m := c.methodValue(fr, v); m != nil {
			c.escapedMethod(fr, m)
			return nil
		}
		c.expr(fr, st, v.X)
	case *ast.TypeAssertExpr:
		c.expr(fr, st, v.X)
	case *ast.FuncLit:
		// A literal in value position escapes (stored into a field or
		// registry, passed along, returned).
		c.escapedLit(fr, v)
	case *ast.Ident:
		// A bound function value escaping by name: analyze its target as
		// deferred, like the direct escape forms above.
		if fn, ok := fr.fns[v.Name]; ok {
			if fn.lit != nil {
				c.escapedLit(fr, fn.lit)
			} else if fn.method != nil {
				c.escapedMethod(fr, fn.method)
			}
		}
	}
	return nil
}

// methodValue resolves a selector in value position to a *Hypervisor method
// it names (h.reap without the call), or nil.
func (c *flow) methodValue(fr *frame, sel *ast.SelectorExpr) *hvMethod {
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != fr.m.recv {
		return nil
	}
	return c.methods[sel.Sel.Name]
}

// bindFns records function-value bindings for a declaration's name/value
// pairs; true when every pair bound (so the caller skips the normal walk).
func (c *flow) bindFns(fr *frame, names []*ast.Ident, values []ast.Expr) bool {
	vals := make([]fnVal, len(values))
	for i, val := range values {
		fn, ok := c.fnValue(fr, val)
		if !ok {
			return false
		}
		vals[i] = fn
	}
	for i, n := range names {
		if n.Name != "_" {
			fr.fns[n.Name] = vals[i]
		}
	}
	return true
}

// bindFnsExpr is bindFns for assignment statements.
func (c *flow) bindFnsExpr(fr *frame, lhs, rhs []ast.Expr) bool {
	names := make([]*ast.Ident, len(lhs))
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			return false
		}
		names[i] = id
	}
	return c.bindFns(fr, names, rhs)
}

// fnValue resolves an expression to a bindable function value.
func (c *flow) fnValue(fr *frame, e ast.Expr) (fnVal, bool) {
	switch v := e.(type) {
	case *ast.FuncLit:
		return fnVal{lit: v}, true
	case *ast.SelectorExpr:
		if m := c.methodValue(fr, v); m != nil {
			return fnVal{method: m}, true
		}
	case *ast.Ident:
		if fn, ok := fr.fns[v.Name]; ok {
			return fn, true
		}
	}
	return fnVal{}, false
}

// call dispatches one call expression: audit primitives, helper methods
// (inlined), bound function values and immediately invoked literals
// (analyzed at the call site), builtin delete, and mutating calls through
// state objects.
func (c *flow) call(fr *frame, st *flowState, v *ast.CallExpr) *evalRes {
	switch fun := v.Fun.(type) {
	case *ast.FuncLit:
		// Immediately invoked literal: runs here, under the current facts.
		return c.inlineLit(fr, st, fun, v.Args)
	case *ast.Ident:
		if fn, ok := fr.fns[fun.Name]; ok {
			if fn.lit != nil {
				return c.inlineLit(fr, st, fn.lit, v.Args)
			}
			return c.inline(fr, st, fn.method, v.Args)
		}
		if fun.Name == "delete" && len(v.Args) > 0 {
			c.lvalue(fr, st, v.Args[0])
		}
		return nil
	case *ast.SelectorExpr:
		chain, ok := flattenChain(fun)
		if !ok {
			// Call on a computed receiver (d.Mem.Snapshot().Pages()):
			// the inner chain was already walked via the args/X recursion.
			c.expr(fr, st, fun.X)
			return nil
		}
		if chain[0] == fr.m.recv {
			return c.recvCall(fr, st, v, chain)
		}
		if len(chain) >= 3 && chain[1] == "Mem" && !readOnlyStateCalls[chain[len(chain)-1]] {
			c.mutation(v.Pos(), "Domain.Mem", st)
		}
		return nil
	}
	return nil
}

// recvCall handles calls rooted at the Hypervisor receiver.
func (c *flow) recvCall(fr *frame, st *flowState, v *ast.CallExpr, chain []string) *evalRes {
	if len(chain) == 2 {
		switch chain[1] {
		case "check":
			return c.auditCheck(fr, v)
		case "controls":
			return c.auditControls(fr, v)
		}
		if m, ok := c.methods[chain[1]]; ok {
			return c.inline(fr, st, m, v.Args)
		}
		return nil // func-typed field (h.Sink, h.Fault)
	}
	root := chain[1]
	if hvStateObjects[root] && !readOnlyStateCalls[chain[len(chain)-1]] {
		label := root
		if root == "Machine" {
			label = "Machine.Bus"
		}
		c.mutation(v.Pos(), label, st)
	}
	return nil
}

// auditCheck models h.check(caller, xtypes.HyperX): a pending privilege
// fact, error polarity. A privilege argument that is not a specific
// xtypes.Hyper* constant defeats static whitelist review and is flagged.
func (c *flow) auditCheck(fr *frame, v *ast.CallExpr) *evalRes {
	if len(v.Args) != 2 {
		return nil
	}
	priv := c.hyperConstOrBound(fr, v.Args[1])
	if priv == "" {
		c.report(v.Pos(), fmt.Sprintf(
			"hv.%s: %s.check must name a specific xtypes.Hyper* constant so the whitelist surface stays statically auditable",
			c.entry, fr.m.recv))
		return nil
	}
	dom, entry := c.domArg(fr, v.Args[0])
	if entry {
		c.privs[priv] = true
	}
	return &evalRes{facts: []fact{{kind: "priv", priv: priv, dom: dom, entry: entry}}}
}

// auditControls models h.controls(caller, target): a pending management
// fact, bool polarity.
func (c *flow) auditControls(fr *frame, v *ast.CallExpr) *evalRes {
	if len(v.Args) != 2 {
		return nil
	}
	dom, entry := c.domArg(fr, v.Args[0])
	if entry {
		c.controls = true
	}
	return &evalRes{facts: []fact{{kind: "controls", dom: dom, entry: entry}}, boolPol: true}
}

// hyperConstOrBound resolves an expression to the name of an
// xtypes.Hyper* constant — directly, or through a helper parameter the
// current call chain bound a constant to.
func (c *flow) hyperConstOrBound(fr *frame, e ast.Expr) string {
	if pc := c.hyperConst(fr, e); pc != "" {
		return pc
	}
	if id, ok := e.(*ast.Ident); ok {
		return fr.hc[id.Name]
	}
	return ""
}

// hyperConst resolves an expression to the name of an xtypes.Hyper*
// constant, or "".
func (c *flow) hyperConst(fr *frame, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || c.p.pkgPathOf(fr.m.file, x) != "xoar/internal/xtypes" {
		return ""
	}
	if !strings.HasPrefix(sel.Sel.Name, "Hyper") {
		return ""
	}
	return sel.Sel.Name
}

func (c *flow) domArg(fr *frame, e ast.Expr) (string, bool) {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name, fr.binding[id.Name]
	}
	return "", false
}

// inline analyzes a helper method at this call site: its mutations are
// checked under the caller's current facts (context sensitivity), and any
// facts the helper itself establishes and enforces internally are handed
// back as a pending audit for the caller to enforce — this is what credits
// audit helpers like a future h.requirePriv.
func (c *flow) inline(fr *frame, st *flowState, m *hvMethod, args []ast.Expr) *evalRes {
	name := m.fn.Name.Name
	for _, s := range c.stack {
		if s == name {
			return nil // recursion: stop, keep caller facts
		}
	}
	if len(c.stack) >= 8 {
		return nil
	}
	c.stack = append(c.stack, name)
	defer func() { c.stack = c.stack[:len(c.stack)-1] }()

	binding := map[string]bool{}
	hcb := map[string]string{}
	i := 0
	for _, field := range m.fn.Type.Params.List {
		for _, pname := range field.Names {
			if i < len(args) {
				if m.dom[pname.Name] {
					if id, ok := args[i].(*ast.Ident); ok {
						binding[pname.Name] = fr.binding[id.Name]
					}
				}
				if pc := c.hyperConstOrBound(fr, args[i]); pc != "" {
					hcb[pname.Name] = pc
				}
			}
			i++
		}
	}
	sub := newFlowState()
	for k, f := range st.facts {
		sub.facts[k] = f
	}
	out, _ := c.stmts(&frame{m: m, binding: binding, hc: hcb, fns: map[string]fnVal{}}, sub, m.fn.Body.List)
	var fs []fact
	for k, f := range out.facts {
		if _, had := st.facts[k]; !had {
			fs = append(fs, f)
		}
	}
	if len(fs) == 0 {
		return nil
	}
	boolPol, ok := resultPolarity(m.fn)
	if !ok {
		return nil // no error/bool result: the caller cannot enforce it
	}
	return &evalRes{facts: fs, boolPol: boolPol}
}

// inlineLit analyzes a function literal invoked at this program point
// (immediately invoked, or called through the local it was bound to): its
// body runs here, so mutations are checked under the caller's current
// facts. Captured bindings carry over; the literal's own DomID parameters
// bind to whatever the call site passed.
func (c *flow) inlineLit(fr *frame, st *flowState, lit *ast.FuncLit, args []ast.Expr) *evalRes {
	marker := c.litMarker(lit)
	for _, s := range c.stack {
		if s == marker || s == "stored "+marker {
			return nil // self-recursive bound literal: stop
		}
	}
	if len(c.stack) >= 8 {
		return nil
	}
	c.stack = append(c.stack, marker)
	defer func() { c.stack = c.stack[:len(c.stack)-1] }()

	sub := c.litFrame(fr, lit)
	i := 0
	if lit.Type.Params != nil {
		dom := domIDFields(c.p, fr.m.file, lit.Type.Params)
		for _, field := range lit.Type.Params.List {
			for _, pname := range field.Names {
				if i < len(args) {
					if dom[pname.Name] {
						if id, ok := args[i].(*ast.Ident); ok {
							sub.binding[pname.Name] = fr.binding[id.Name]
						} else {
							sub.binding[pname.Name] = false
						}
					}
					if pc := c.hyperConstOrBound(fr, args[i]); pc != "" {
						sub.hc[pname.Name] = pc
					}
				}
				i++
			}
		}
	}
	c.stmts(sub, st.clone(), lit.Body.List)
	return nil
}

// escapedLit analyzes a function literal that escapes the current flow: it
// will run at some later, unknown point, so no fact established here
// dominates its body. Its own DomID parameters are entry-bound — they are
// the caller identity the callback receives, and an audit inside the
// closure against them is the legitimate deferred guard.
func (c *flow) escapedLit(fr *frame, lit *ast.FuncLit) {
	marker := c.litMarker(lit)
	for _, s := range c.stack {
		if s == marker || s == "stored "+marker {
			return
		}
	}
	if len(c.stack) >= 8 {
		return
	}
	c.stack = append(c.stack, "stored "+marker)
	defer func() { c.stack = c.stack[:len(c.stack)-1] }()

	sub := c.litFrame(fr, lit)
	for pn := range domIDFields(c.p, fr.m.file, lit.Type.Params) {
		sub.binding[pn] = true
	}
	c.stmts(sub, newFlowState(), lit.Body.List)
}

// escapedMethod analyzes a method value that escapes (h.reap handed to a
// registry): like escapedLit, under empty facts with its own DomID
// parameters entry-bound.
func (c *flow) escapedMethod(fr *frame, m *hvMethod) {
	name := m.fn.Name.Name
	for _, s := range c.stack {
		if s == name {
			return
		}
	}
	if len(c.stack) >= 8 {
		return
	}
	c.stack = append(c.stack, name)
	defer func() { c.stack = c.stack[:len(c.stack)-1] }()

	binding := map[string]bool{}
	for pn := range m.dom {
		binding[pn] = true
	}
	c.stmts(&frame{m: m, binding: binding, hc: map[string]string{}, fns: map[string]fnVal{}}, newFlowState(), m.fn.Body.List)
}

// litFrame builds the activation frame for a function literal: same method
// context (receiver name, file), captured bindings and function values
// copied from the enclosing frame.
func (c *flow) litFrame(fr *frame, lit *ast.FuncLit) *frame {
	sub := &frame{m: fr.m, binding: map[string]bool{}, hc: map[string]string{}, fns: map[string]fnVal{}}
	for k, v := range fr.binding {
		sub.binding[k] = v
	}
	for k, v := range fr.hc {
		sub.hc[k] = v
	}
	for k, v := range fr.fns {
		sub.fns[k] = v
	}
	return sub
}

// litMarker names a literal for the inline stack (recursion guard and the
// "reached via" chain in diagnostics).
func (c *flow) litMarker(lit *ast.FuncLit) string {
	return fmt.Sprintf("func literal (line %d)", c.p.Fset.Position(lit.Pos()).Line)
}

// resultPolarity classifies a helper's enforceable result: error-last or
// single bool.
func resultPolarity(fn *ast.FuncDecl) (boolPol, ok bool) {
	rs := fn.Type.Results
	if rs == nil || len(rs.List) == 0 {
		return false, false
	}
	last := rs.List[len(rs.List)-1].Type
	id, isIdent := last.(*ast.Ident)
	if !isIdent {
		return false, false
	}
	switch id.Name {
	case "error":
		return false, true
	case "bool":
		return true, true
	}
	return false, false
}

// --- mutation detection ------------------------------------------------------

// lvalue inspects an assignment, delete or ++/-- target and records a
// mutation when it roots in hypervisor or domain privilege state.
func (c *flow) lvalue(fr *frame, st *flowState, e ast.Expr) {
	chain, ok := flattenChain(e)
	if !ok || len(chain) < 2 {
		return
	}
	if chain[0] == fr.m.recv {
		if exemptCounterFields[chain[1]] {
			return
		}
		c.mutation(e.Pos(), chain[1], st)
		return
	}
	if domainStateFields[chain[1]] {
		c.mutation(e.Pos(), "Domain."+chain[1], st)
	}
}

// mutation records a state mutation for the matrix and flags it unless an
// entry-bound audit fact dominates this program point.
func (c *flow) mutation(pos token.Pos, root string, st *flowState) {
	c.mutates[root] = true
	for _, f := range st.facts {
		if f.entry {
			return
		}
	}
	msg := fmt.Sprintf("hv.%s: mutation of %s is not dominated by an enforced h.check/h.controls audit on the caller", c.entry, root)
	if len(c.stack) > 0 {
		msg += " (reached via " + strings.Join(c.stack, " -> ") + ")"
	}
	c.report(pos, msg)
}

func (c *flow) report(pos token.Pos, msg string) {
	key := fmt.Sprintf("%d:%s", pos, c.entry)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.diags = append(c.diags, Diagnostic{Pos: c.p.Fset.Position(pos), Analyzer: "privflow", Message: msg})
}

// flattenChain reduces a selector/index chain to its identifier path:
// h.Machine.Bus -> [h Machine Bus]; d.priv.Hypercalls[hc] -> [d priv
// Hypercalls]. It fails when the chain roots in something other than a
// plain identifier (a call result, a composite literal).
func flattenChain(e ast.Expr) ([]string, bool) {
	var rev []string
	for {
		switch v := e.(type) {
		case *ast.Ident:
			rev = append(rev, v.Name)
			out := make([]string, len(rev))
			for i, s := range rev {
				out[len(rev)-1-i] = s
			}
			return out, true
		case *ast.SelectorExpr:
			rev = append(rev, v.Sel.Name)
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil, false
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
