// Package ring implements Xen-style shared-memory I/O rings (§4.3): a
// bounded, bi-directional channel on which a frontend places requests and a
// backend places responses into the same slot pool, with event-channel
// notifications for wakeups.
//
// As in Xen, all policy lives with the users of the ring: the ring itself
// moves opaque messages and enforces only the slot discipline (a slot is
// consumed by a request and freed when its response is consumed). This is
// deliberately the paper's point about rings being a vector for malformed
// data — backends must validate what they pop.
//
// # Notification suppression
//
// The ring carries Xen's req_event/rsp_event idiom: a producer only fires
// its notify hook when the consumer has asked to be woken. Consumers arm
// the threshold with the RING_FINAL_CHECK_FOR_REQUESTS dance — set the
// event index to cons+1, then re-check for work before sleeping, so a
// racing push is never missed. A consumer that keeps draining (a busy pump
// servicing batches) therefore never re-arms, and the producer's pushes are
// suppressed down to one notify per sleep/wake cycle instead of one per
// descriptor. Stats() exposes the sent/suppressed split so drivers can
// gate the suppression ratio in benchmarks.
//
// Storage is a fixed circular buffer sized at construction — the model of
// the shared ring page — so the batch push/pop hot path allocates nothing.
package ring

import (
	"fmt"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// DefaultSlots is the slot count of a single-page ring with small descriptors,
// matching Xen's RING_SIZE for netif/blkif rings.
const DefaultSlots = 32

// Stats counts ring traffic and notify decisions since construction/Reset.
type Stats struct {
	// NotifiesToBack counts request-push notifies actually delivered to the
	// request consumer; SuppressedToBack counts pushes whose notify was
	// elided because the consumer had not re-armed req_event.
	NotifiesToBack   int64
	SuppressedToBack int64
	// NotifiesToFront / SuppressedToFront are the same split for
	// response-push notifies toward the response consumer.
	NotifiesToFront   int64
	SuppressedToFront int64
	// Descriptor totals, for descriptors-per-wakeup ratios.
	ReqPushed  int64
	ReqPopped  int64
	RespPushed int64
	RespPopped int64
}

// Ring is a shared request/response ring. Req and Resp are the descriptor
// types of the protocol spoken over the ring.
type Ring[Req, Resp any] struct {
	env   *sim.Env
	slots int
	used  int // slots held by in-flight requests or unconsumed responses

	// Circular buffers, both sized slots (responses can never outnumber the
	// slots their requests reserved). Indices are monotonic, as in Xen's
	// shared ring: pending count = prod - cons, buffer position = idx % slots.
	reqs               []Req
	resps              []Resp
	reqProd, reqCons   uint64
	respProd, respCons uint64

	// Event thresholds (Xen's req_event/rsp_event): a producer notifies only
	// when its push moves prod across the threshold. Consumers arm them via
	// the final-check dance in the blocking pops.
	reqEvent, rspEvent uint64

	reqSig   *sim.Signal // new request available
	respSig  *sim.Signal // new response available
	spaceSig *sim.Signal // slot freed

	// NotifyBack and NotifyFront, when set, are invoked after a push that
	// crosses the peer's event threshold; drivers wire them to event-channel
	// notifies so the signalling hop is visible to the security graph and
	// costs virtual time in the drivers.
	NotifyBack  func()
	NotifyFront func()

	// AlwaysNotify disables suppression and fires the notify hooks on every
	// push — the pre-req_event behaviour, kept as the per-descriptor baseline
	// for the batching ablation.
	AlwaysNotify bool

	stats  Stats
	broken bool
}

// New returns a ring with the given slot count bound to env.
func New[Req, Resp any](env *sim.Env, slots int) *Ring[Req, Resp] {
	if slots <= 0 {
		slots = DefaultSlots
	}
	return &Ring[Req, Resp]{
		env:      env,
		slots:    slots,
		reqs:     make([]Req, slots),
		resps:    make([]Resp, slots),
		reqEvent: 1, // notify on the first push, as RING_INIT does
		rspEvent: 1,
		reqSig:   sim.NewSignal(env),
		respSig:  sim.NewSignal(env),
		spaceSig: sim.NewSignal(env),
	}
}

// Slots reports the ring capacity.
func (r *Ring[Req, Resp]) Slots() int { return r.slots }

// Inflight reports slots currently in use.
func (r *Ring[Req, Resp]) Inflight() int { return r.used }

// Full reports whether a request push would block.
func (r *Ring[Req, Resp]) Full() bool { return r.used >= r.slots }

// Broken reports whether the ring has been disconnected.
func (r *Ring[Req, Resp]) Broken() bool { return r.broken }

// Stats returns a snapshot of the ring's traffic counters.
func (r *Ring[Req, Resp]) Stats() Stats { return r.stats }

// Break disconnects the ring: all blocked parties wake and every subsequent
// operation fails. Used when a backend microreboots or a domain dies.
func (r *Ring[Req, Resp]) Break() {
	if r.broken {
		return
	}
	r.broken = true
	r.reqSig.Broadcast()
	r.respSig.Broadcast()
	r.spaceSig.Broadcast()
}

// Reset restores a broken ring to an empty connected state. The reconnection
// handshake (regranting the ring page, rebinding the event channel) is the
// drivers' job; Reset models the fresh ring page that results. Traffic
// counters survive so restart-spanning experiments keep their totals.
func (r *Ring[Req, Resp]) Reset() {
	r.broken = false
	r.used = 0
	r.reqProd, r.reqCons = 0, 0
	r.respProd, r.respCons = 0, 0
	r.reqEvent, r.rspEvent = 1, 1
	clear(r.reqs)
	clear(r.resps)
}

// errBroken is the error returned on a disconnected ring.
func (r *Ring[Req, Resp]) errBroken(op string) error {
	return fmt.Errorf("ring: %s on broken ring: %w", op, xtypes.ErrShutdown)
}

// pushedRequests runs the producer's post-push protocol: wake sim-level
// waiters, then fire the notify hook iff the push crossed req_event
// (RING_PUSH_REQUESTS_AND_CHECK_NOTIFY).
func (r *Ring[Req, Resp]) pushedRequests(oldProd uint64) {
	r.stats.ReqPushed += int64(r.reqProd - oldProd)
	r.reqSig.Broadcast()
	if r.AlwaysNotify || r.reqProd-r.reqEvent < r.reqProd-oldProd {
		r.stats.NotifiesToBack++
		if r.NotifyBack != nil {
			r.NotifyBack()
		}
	} else {
		r.stats.SuppressedToBack++
	}
}

// pushedResponses is the response-side counterpart of pushedRequests.
func (r *Ring[Req, Resp]) pushedResponses(oldProd uint64) {
	r.stats.RespPushed += int64(r.respProd - oldProd)
	r.respSig.Broadcast()
	if r.AlwaysNotify || r.respProd-r.rspEvent < r.respProd-oldProd {
		r.stats.NotifiesToFront++
		if r.NotifyFront != nil {
			r.NotifyFront()
		}
	} else {
		r.stats.SuppressedToFront++
	}
}

// PushRequest places a request on the ring, blocking p while the ring is
// full. It fails if the ring breaks while waiting.
func (r *Ring[Req, Resp]) PushRequest(p *sim.Proc, req Req) error {
	for r.used >= r.slots {
		if r.broken {
			return r.errBroken("push-request")
		}
		r.spaceSig.Wait(p)
	}
	if r.broken {
		return r.errBroken("push-request")
	}
	old := r.reqProd
	r.used++
	r.reqs[int(r.reqProd%uint64(r.slots))] = req
	r.reqProd++
	r.pushedRequests(old)
	return nil
}

// TryPushRequest is PushRequest without blocking; ok is false if full/broken.
func (r *Ring[Req, Resp]) TryPushRequest(req Req) bool {
	if r.broken || r.used >= r.slots {
		return false
	}
	old := r.reqProd
	r.used++
	r.reqs[int(r.reqProd%uint64(r.slots))] = req
	r.reqProd++
	r.pushedRequests(old)
	return true
}

// TryPushRequestBatch pushes as many of reqs as fit, returning the count.
// The whole batch makes at most one notify decision — the batching win the
// split drivers rely on.
//
//xoarlint:hot bench=BenchmarkMicro_RingBatchPop
func (r *Ring[Req, Resp]) TryPushRequestBatch(reqs []Req) int {
	if r.broken || len(reqs) == 0 {
		return 0
	}
	old := r.reqProd
	n := 0
	for n < len(reqs) && r.used < r.slots {
		r.reqs[int(r.reqProd%uint64(r.slots))] = reqs[n]
		r.reqProd++
		r.used++
		n++
	}
	if n > 0 {
		r.pushedRequests(old)
	}
	return n
}

// PushRequestBatch pushes every request in reqs, blocking p while the ring
// is full. Each contiguous burst that fits makes one notify decision.
//
//xoarlint:hot
func (r *Ring[Req, Resp]) PushRequestBatch(p *sim.Proc, reqs []Req) error {
	pushed := 0
	for pushed < len(reqs) {
		n := r.TryPushRequestBatch(reqs[pushed:])
		pushed += n
		if pushed == len(reqs) {
			return nil
		}
		if r.broken {
			return r.errBroken("push-request-batch")
		}
		if n == 0 {
			r.spaceSig.Wait(p)
		}
	}
	return nil
}

// PopRequest removes the next request, blocking p while none are queued.
// Before sleeping it arms req_event (RING_FINAL_CHECK_FOR_REQUESTS), so the
// producer's next push is notified rather than suppressed.
func (r *Ring[Req, Resp]) PopRequest(p *sim.Proc) (Req, error) {
	var zero Req
	for {
		if r.broken {
			return zero, r.errBroken("pop-request")
		}
		if r.reqProd > r.reqCons {
			req := r.reqs[int(r.reqCons%uint64(r.slots))]
			r.reqCons++
			r.stats.ReqPopped++
			return req, nil
		}
		r.reqEvent = r.reqCons + 1
		if r.reqProd > r.reqCons {
			continue // a push raced the final check: don't sleep
		}
		r.reqSig.Wait(p)
	}
}

// TryPopRequest removes the next request without blocking. It does not arm
// req_event: pollers get no notifies.
func (r *Ring[Req, Resp]) TryPopRequest() (Req, bool) {
	var zero Req
	if r.broken || r.reqProd == r.reqCons {
		return zero, false
	}
	req := r.reqs[int(r.reqCons%uint64(r.slots))]
	r.reqCons++
	r.stats.ReqPopped++
	return req, true
}

// TryPopRequestBatch pops up to len(buf) queued requests into buf and
// returns the count, without blocking or arming req_event.
//
//xoarlint:hot bench=BenchmarkMicro_RingBatchPop
func (r *Ring[Req, Resp]) TryPopRequestBatch(buf []Req) int {
	if r.broken {
		return 0
	}
	n := 0
	for n < len(buf) && r.reqProd > r.reqCons {
		buf[n] = r.reqs[int(r.reqCons%uint64(r.slots))]
		r.reqCons++
		n++
	}
	r.stats.ReqPopped += int64(n)
	return n
}

// PopRequestBatch blocks p until at least one request is queued, then drains
// up to len(buf) of them into buf — one wakeup servicing a whole batch.
//
//xoarlint:hot
func (r *Ring[Req, Resp]) PopRequestBatch(p *sim.Proc, buf []Req) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("ring: pop-request-batch with empty buffer: %w", xtypes.ErrInvalid)
	}
	for {
		if r.broken {
			return 0, r.errBroken("pop-request-batch")
		}
		if n := r.TryPopRequestBatch(buf); n > 0 {
			return n, nil
		}
		r.reqEvent = r.reqCons + 1
		if r.reqProd > r.reqCons {
			continue
		}
		r.reqSig.Wait(p)
	}
}

// PushResponse places a response on the ring. The slot stays occupied until
// the frontend consumes the response. Responses never block: the slot was
// reserved by the corresponding request.
//
//xoarlint:hot
func (r *Ring[Req, Resp]) PushResponse(resp Resp) error {
	if r.broken {
		return r.errBroken("push-response")
	}
	old := r.respProd
	r.resps[int(r.respProd%uint64(r.slots))] = resp
	r.respProd++
	r.pushedResponses(old)
	return nil
}

// PushResponseBatch places every response in resps on the ring with a single
// notify decision for the batch.
//
//xoarlint:hot bench=BenchmarkMicro_RingBatchPop
func (r *Ring[Req, Resp]) PushResponseBatch(resps []Resp) error {
	if r.broken {
		return r.errBroken("push-response-batch")
	}
	if len(resps) == 0 {
		return nil
	}
	old := r.respProd
	for _, resp := range resps {
		r.resps[int(r.respProd%uint64(r.slots))] = resp
		r.respProd++
	}
	r.pushedResponses(old)
	return nil
}

// popOneResponse removes the next queued response and frees its slot. The
// caller has checked availability.
func (r *Ring[Req, Resp]) popOneResponse() Resp {
	resp := r.resps[int(r.respCons%uint64(r.slots))]
	r.respCons++
	r.used--
	r.stats.RespPopped++
	return resp
}

// PopResponse removes the next response, blocking p while none are queued,
// and frees the slot. Before sleeping it arms rsp_event so the backend's
// next completion push is notified.
//
//xoarlint:hot
func (r *Ring[Req, Resp]) PopResponse(p *sim.Proc) (Resp, error) {
	var zero Resp
	for {
		if r.broken {
			return zero, r.errBroken("pop-response")
		}
		if r.respProd > r.respCons {
			resp := r.popOneResponse()
			r.spaceSig.Broadcast()
			return resp, nil
		}
		r.rspEvent = r.respCons + 1
		if r.respProd > r.respCons {
			continue
		}
		r.respSig.Wait(p)
	}
}

// TryPopResponse removes the next response without blocking. Like
// TryPopRequest it refuses on a broken ring — a frontend must not keep
// consuming (and freeing slots on) a ring that is mid-microreboot.
//
//xoarlint:hot
func (r *Ring[Req, Resp]) TryPopResponse() (Resp, bool) {
	var zero Resp
	if r.broken || r.respProd == r.respCons {
		return zero, false
	}
	resp := r.popOneResponse()
	r.spaceSig.Broadcast()
	return resp, true
}

// TryPopResponseBatch pops up to len(buf) queued responses into buf and
// returns the count, without blocking or arming rsp_event.
//
//xoarlint:hot bench=BenchmarkMicro_RingBatchPop
func (r *Ring[Req, Resp]) TryPopResponseBatch(buf []Resp) int {
	if r.broken {
		return 0
	}
	n := 0
	for n < len(buf) && r.respProd > r.respCons {
		buf[n] = r.popOneResponse()
		n++
	}
	if n > 0 {
		r.spaceSig.Broadcast()
	}
	return n
}

// PopResponseBatch blocks p until at least one response is queued, then
// drains up to len(buf) of them into buf.
//
//xoarlint:hot
func (r *Ring[Req, Resp]) PopResponseBatch(p *sim.Proc, buf []Resp) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("ring: pop-response-batch with empty buffer: %w", xtypes.ErrInvalid)
	}
	for {
		if r.broken {
			return 0, r.errBroken("pop-response-batch")
		}
		if n := r.TryPopResponseBatch(buf); n > 0 {
			return n, nil
		}
		r.rspEvent = r.respCons + 1
		if r.respProd > r.respCons {
			continue
		}
		r.respSig.Wait(p)
	}
}

// PendingRequests reports queued, un-popped requests.
func (r *Ring[Req, Resp]) PendingRequests() int { return int(r.reqProd - r.reqCons) }

// PendingResponses reports queued, un-popped responses.
func (r *Ring[Req, Resp]) PendingResponses() int { return int(r.respProd - r.respCons) }
