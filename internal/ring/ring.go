// Package ring implements Xen-style shared-memory I/O rings (§4.3): a
// bounded, bi-directional channel on which a frontend places requests and a
// backend places responses into the same slot pool, with event-channel
// notifications for wakeups.
//
// As in Xen, all policy lives with the users of the ring: the ring itself
// moves opaque messages and enforces only the slot discipline (a slot is
// consumed by a request and freed when its response is consumed). This is
// deliberately the paper's point about rings being a vector for malformed
// data — backends must validate what they pop.
package ring

import (
	"fmt"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// DefaultSlots is the slot count of a single-page ring with small descriptors,
// matching Xen's RING_SIZE for netif/blkif rings.
const DefaultSlots = 32

// Ring is a shared request/response ring. Req and Resp are the descriptor
// types of the protocol spoken over the ring.
type Ring[Req, Resp any] struct {
	env   *sim.Env
	slots int
	used  int // slots held by in-flight requests or unconsumed responses

	reqs  []Req
	resps []Resp

	reqSig   *sim.Signal // new request available
	respSig  *sim.Signal // new response available
	spaceSig *sim.Signal // slot freed

	// NotifyBack and NotifyFront, when set, are invoked after a push; drivers
	// wire them to event-channel notifies so the signalling hop is visible to
	// the security graph and costs virtual time in the drivers.
	NotifyBack  func()
	NotifyFront func()

	broken bool
}

// New returns a ring with the given slot count bound to env.
func New[Req, Resp any](env *sim.Env, slots int) *Ring[Req, Resp] {
	if slots <= 0 {
		slots = DefaultSlots
	}
	return &Ring[Req, Resp]{
		env:      env,
		slots:    slots,
		reqSig:   sim.NewSignal(env),
		respSig:  sim.NewSignal(env),
		spaceSig: sim.NewSignal(env),
	}
}

// Slots reports the ring capacity.
func (r *Ring[Req, Resp]) Slots() int { return r.slots }

// Inflight reports slots currently in use.
func (r *Ring[Req, Resp]) Inflight() int { return r.used }

// Full reports whether a request push would block.
func (r *Ring[Req, Resp]) Full() bool { return r.used >= r.slots }

// Broken reports whether the ring has been disconnected.
func (r *Ring[Req, Resp]) Broken() bool { return r.broken }

// Break disconnects the ring: all blocked parties wake and every subsequent
// operation fails. Used when a backend microreboots or a domain dies.
func (r *Ring[Req, Resp]) Break() {
	if r.broken {
		return
	}
	r.broken = true
	r.reqSig.Broadcast()
	r.respSig.Broadcast()
	r.spaceSig.Broadcast()
}

// Reset restores a broken ring to an empty connected state. The reconnection
// handshake (regranting the ring page, rebinding the event channel) is the
// drivers' job; Reset models the fresh ring page that results.
func (r *Ring[Req, Resp]) Reset() {
	r.broken = false
	r.used = 0
	r.reqs = nil
	r.resps = nil
}

// errBroken is the error returned on a disconnected ring.
func (r *Ring[Req, Resp]) errBroken(op string) error {
	return fmt.Errorf("ring: %s on broken ring: %w", op, xtypes.ErrShutdown)
}

// PushRequest places a request on the ring, blocking p while the ring is
// full. It fails if the ring breaks while waiting.
func (r *Ring[Req, Resp]) PushRequest(p *sim.Proc, req Req) error {
	for r.used >= r.slots {
		if r.broken {
			return r.errBroken("push-request")
		}
		r.spaceSig.Wait(p)
	}
	if r.broken {
		return r.errBroken("push-request")
	}
	r.used++
	r.reqs = append(r.reqs, req)
	r.reqSig.Broadcast()
	if r.NotifyBack != nil {
		r.NotifyBack()
	}
	return nil
}

// TryPushRequest is PushRequest without blocking; ok is false if full/broken.
func (r *Ring[Req, Resp]) TryPushRequest(req Req) bool {
	if r.broken || r.used >= r.slots {
		return false
	}
	r.used++
	r.reqs = append(r.reqs, req)
	r.reqSig.Broadcast()
	if r.NotifyBack != nil {
		r.NotifyBack()
	}
	return true
}

// PopRequest removes the next request, blocking p while none are queued.
func (r *Ring[Req, Resp]) PopRequest(p *sim.Proc) (Req, error) {
	var zero Req
	for len(r.reqs) == 0 {
		if r.broken {
			return zero, r.errBroken("pop-request")
		}
		r.reqSig.Wait(p)
	}
	req := r.reqs[0]
	r.reqs = r.reqs[1:]
	return req, nil
}

// TryPopRequest removes the next request without blocking.
func (r *Ring[Req, Resp]) TryPopRequest() (Req, bool) {
	var zero Req
	if r.broken || len(r.reqs) == 0 {
		return zero, false
	}
	req := r.reqs[0]
	r.reqs = r.reqs[1:]
	return req, true
}

// PushResponse places a response on the ring. The slot stays occupied until
// the frontend consumes the response. Responses never block: the slot was
// reserved by the corresponding request.
func (r *Ring[Req, Resp]) PushResponse(resp Resp) error {
	if r.broken {
		return r.errBroken("push-response")
	}
	r.resps = append(r.resps, resp)
	r.respSig.Broadcast()
	if r.NotifyFront != nil {
		r.NotifyFront()
	}
	return nil
}

// PopResponse removes the next response, blocking p while none are queued,
// and frees the slot.
func (r *Ring[Req, Resp]) PopResponse(p *sim.Proc) (Resp, error) {
	var zero Resp
	for len(r.resps) == 0 {
		if r.broken {
			return zero, r.errBroken("pop-response")
		}
		r.respSig.Wait(p)
	}
	resp := r.resps[0]
	r.resps = r.resps[1:]
	r.used--
	r.spaceSig.Broadcast()
	return resp, nil
}

// TryPopResponse removes the next response without blocking.
func (r *Ring[Req, Resp]) TryPopResponse() (Resp, bool) {
	var zero Resp
	if len(r.resps) == 0 {
		return zero, false
	}
	resp := r.resps[0]
	r.resps = r.resps[1:]
	r.used--
	r.spaceSig.Broadcast()
	return resp, true
}

// PendingRequests reports queued, un-popped requests.
func (r *Ring[Req, Resp]) PendingRequests() int { return len(r.reqs) }

// PendingResponses reports queued, un-popped responses.
func (r *Ring[Req, Resp]) PendingResponses() int { return len(r.resps) }
