package ring

import (
	"errors"
	"testing"
	"testing/quick"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

type req struct{ id int }
type resp struct{ id int }

func TestRequestResponseRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 8)
	var got []int
	env.Spawn("backend", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			rq, err := r.PopRequest(p)
			if err != nil {
				t.Error(err)
				return
			}
			p.Sleep(sim.Millisecond) // service time
			r.PushResponse(resp{id: rq.id})
		}
	})
	env.Spawn("frontend", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := r.PushRequest(p, req{id: i}); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 3; i++ {
			rs, err := r.PopResponse(p)
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, rs.id)
		}
	})
	env.RunAll()
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("responses = %v", got)
	}
	if r.Inflight() != 0 {
		t.Fatalf("inflight = %d", r.Inflight())
	}
}

func TestSlotDiscipline(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 2)
	env.Spawn("test", func(p *sim.Proc) {
		if !r.TryPushRequest(req{1}) || !r.TryPushRequest(req{2}) {
			t.Error("pushes failed")
		}
		if r.TryPushRequest(req{3}) {
			t.Error("push into full ring succeeded")
		}
		if !r.Full() {
			t.Error("ring should be full")
		}
		// Backend pops a request: slot is still held (response pending).
		if _, ok := r.TryPopRequest(); !ok {
			t.Error("pop failed")
		}
		if r.TryPushRequest(req{3}) {
			t.Error("slot freed too early: response not yet consumed")
		}
		r.PushResponse(resp{1})
		if _, ok := r.TryPopResponse(); !ok {
			t.Error("pop response failed")
		}
		// Now one slot is free.
		if !r.TryPushRequest(req{3}) {
			t.Error("push after slot free failed")
		}
	})
	env.RunAll()
}

func TestPushBlocksUntilSpace(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 1)
	var pushedAt sim.Time
	env.Spawn("frontend", func(p *sim.Proc) {
		r.PushRequest(p, req{1})
		if err := r.PushRequest(p, req{2}); err != nil { // blocks
			t.Error(err)
		}
		pushedAt = p.Now()
	})
	env.Spawn("backend", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		rq, _ := r.TryPopRequest()
		r.PushResponse(resp{rq.id})
	})
	env.Spawn("reaper", func(p *sim.Proc) {
		r.PopResponse(p)
	})
	env.RunAll()
	if pushedAt != sim.Time(10*sim.Millisecond) {
		t.Fatalf("second push completed at %v", pushedAt)
	}
}

func TestNotifyHooks(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 4)
	backNotified, frontNotified := 0, 0
	r.NotifyBack = func() { backNotified++ }
	r.NotifyFront = func() { frontNotified++ }
	env.Spawn("test", func(p *sim.Proc) {
		r.TryPushRequest(req{1})
		r.PushRequest(p, req{2})
		r.TryPopRequest()
		r.TryPopRequest()
		r.PushResponse(resp{1})
		r.PushResponse(resp{2})
	})
	env.RunAll()
	if backNotified != 2 || frontNotified != 2 {
		t.Fatalf("notifies back=%d front=%d", backNotified, frontNotified)
	}
}

func TestBreakWakesAndFailsAll(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 1)
	var popErr, pushErr error
	env.Spawn("blockedPop", func(p *sim.Proc) {
		_, popErr = r.PopRequest(p)
	})
	env.Spawn("filler", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		// Fill the ring so the next push blocks. The queued request is
		// consumed by blockedPop, but its slot stays held.
		r.TryPushRequest(req{0})
		r.TryPushRequest(req{0})
	})
	env.Spawn("blockedPush", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		pushErr = r.PushRequest(p, req{1})
	})
	env.Spawn("breaker", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		r.Break()
	})
	env.RunAll()
	// blockedPop actually received the filler's request, so it may have
	// succeeded; the blocked push must fail.
	if pushErr == nil || !errors.Is(pushErr, xtypes.ErrShutdown) {
		t.Fatalf("push on broken ring: %v", pushErr)
	}
	_ = popErr
	if !r.Broken() {
		t.Fatal("ring not broken")
	}
	if _, ok := r.TryPopRequest(); ok {
		t.Fatal("pop on broken ring succeeded")
	}
}

func TestResetRestoresService(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 2)
	env.Spawn("test", func(p *sim.Proc) {
		r.TryPushRequest(req{1})
		r.Break()
		r.Reset()
		if r.Broken() || r.Inflight() != 0 {
			t.Error("reset did not clear state")
		}
		if !r.TryPushRequest(req{2}) {
			t.Error("push after reset failed")
		}
		rq, ok := r.TryPopRequest()
		if !ok || rq.id != 2 {
			t.Errorf("pop after reset = %+v %v", rq, ok)
		}
	})
	env.RunAll()
}

// Property: for any interleaving of pushes and pops, in-flight slot count
// equals pushes minus consumed responses and never exceeds capacity.
func TestSlotAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		env := sim.NewEnv(1)
		r := New[req, resp](env, 4)
		pushed, popped, responded, consumed := 0, 0, 0, 0
		okAll := true
		env.Spawn("driver", func(p *sim.Proc) {
			for _, op := range ops {
				switch op % 4 {
				case 0:
					if r.TryPushRequest(req{pushed}) {
						pushed++
					}
				case 1:
					if _, ok := r.TryPopRequest(); ok {
						popped++
					}
				case 2:
					if responded < popped {
						r.PushResponse(resp{responded})
						responded++
					}
				case 3:
					if _, ok := r.TryPopResponse(); ok {
						consumed++
					}
				}
				if r.Inflight() != pushed-consumed || r.Inflight() > r.Slots() {
					okAll = false
					return
				}
			}
		})
		env.RunAll()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
