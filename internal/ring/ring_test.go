package ring

import (
	"errors"
	"testing"
	"testing/quick"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

type req struct{ id int }
type resp struct{ id int }

func TestRequestResponseRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 8)
	var got []int
	env.Spawn("backend", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			rq, err := r.PopRequest(p)
			if err != nil {
				t.Error(err)
				return
			}
			p.Sleep(sim.Millisecond) // service time
			r.PushResponse(resp{id: rq.id})
		}
	})
	env.Spawn("frontend", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := r.PushRequest(p, req{id: i}); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 3; i++ {
			rs, err := r.PopResponse(p)
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, rs.id)
		}
	})
	env.RunAll()
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("responses = %v", got)
	}
	if r.Inflight() != 0 {
		t.Fatalf("inflight = %d", r.Inflight())
	}
}

func TestSlotDiscipline(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 2)
	env.Spawn("test", func(p *sim.Proc) {
		if !r.TryPushRequest(req{1}) || !r.TryPushRequest(req{2}) {
			t.Error("pushes failed")
		}
		if r.TryPushRequest(req{3}) {
			t.Error("push into full ring succeeded")
		}
		if !r.Full() {
			t.Error("ring should be full")
		}
		// Backend pops a request: slot is still held (response pending).
		if _, ok := r.TryPopRequest(); !ok {
			t.Error("pop failed")
		}
		if r.TryPushRequest(req{3}) {
			t.Error("slot freed too early: response not yet consumed")
		}
		r.PushResponse(resp{1})
		if _, ok := r.TryPopResponse(); !ok {
			t.Error("pop response failed")
		}
		// Now one slot is free.
		if !r.TryPushRequest(req{3}) {
			t.Error("push after slot free failed")
		}
	})
	env.RunAll()
}

func TestPushBlocksUntilSpace(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 1)
	var pushedAt sim.Time
	env.Spawn("frontend", func(p *sim.Proc) {
		r.PushRequest(p, req{1})
		if err := r.PushRequest(p, req{2}); err != nil { // blocks
			t.Error(err)
		}
		pushedAt = p.Now()
	})
	env.Spawn("backend", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		rq, _ := r.TryPopRequest()
		r.PushResponse(resp{rq.id})
	})
	env.Spawn("reaper", func(p *sim.Proc) {
		r.PopResponse(p)
	})
	env.RunAll()
	if pushedAt != sim.Time(10*sim.Millisecond) {
		t.Fatalf("second push completed at %v", pushedAt)
	}
}

// Under req_event/rsp_event, the first push after ring init notifies (the
// event indices start armed at 1); subsequent pushes are suppressed until
// the consumer re-arms by blocking in PopRequest/PopResponse. TryPop does
// not arm — pollers get no notifies.
func TestNotifyHooks(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 4)
	backNotified, frontNotified := 0, 0
	r.NotifyBack = func() { backNotified++ }
	r.NotifyFront = func() { frontNotified++ }
	env.Spawn("test", func(p *sim.Proc) {
		r.TryPushRequest(req{1}) // crosses req_event=1: notify
		r.PushRequest(p, req{2}) // consumer never re-armed: suppressed
		r.TryPopRequest()
		r.TryPopRequest()
		r.PushResponse(resp{1}) // crosses rsp_event=1: notify
		r.PushResponse(resp{2}) // suppressed
	})
	env.RunAll()
	if backNotified != 1 || frontNotified != 1 {
		t.Fatalf("notifies back=%d front=%d", backNotified, frontNotified)
	}
	st := r.Stats()
	if st.NotifiesToBack != 1 || st.SuppressedToBack != 1 ||
		st.NotifiesToFront != 1 || st.SuppressedToFront != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// AlwaysNotify restores the per-descriptor baseline: a notify per push.
func TestAlwaysNotifyAblation(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 4)
	r.AlwaysNotify = true
	backNotified, frontNotified := 0, 0
	r.NotifyBack = func() { backNotified++ }
	r.NotifyFront = func() { frontNotified++ }
	env.Spawn("test", func(p *sim.Proc) {
		r.TryPushRequest(req{1})
		r.PushRequest(p, req{2})
		r.TryPopRequest()
		r.TryPopRequest()
		r.PushResponse(resp{1})
		r.PushResponse(resp{2})
	})
	env.RunAll()
	if backNotified != 2 || frontNotified != 2 {
		t.Fatalf("notifies back=%d front=%d", backNotified, frontNotified)
	}
}

// A consumer that blocks in PopRequest arms req_event on its way to sleep
// (RING_FINAL_CHECK_FOR_REQUESTS), so the producer's wake-up push notifies —
// and a racing push between check and sleep is never lost.
func TestFinalCheckArmsNotify(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 4)
	backNotified := 0
	r.NotifyBack = func() { backNotified++ }
	env.Spawn("backend", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := r.PopRequest(p); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.Spawn("frontend", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(sim.Millisecond) // let the backend drain and re-arm
			r.TryPushRequest(req{i})
		}
	})
	env.RunAll()
	// Every push found the backend asleep and armed: all three notify.
	if backNotified != 3 {
		t.Fatalf("backNotified = %d", backNotified)
	}
}

// Batch pushes make one notify decision for the whole burst.
func TestBatchPushSingleNotify(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 8)
	backNotified, frontNotified := 0, 0
	r.NotifyBack = func() { backNotified++ }
	r.NotifyFront = func() { frontNotified++ }
	env.Spawn("test", func(p *sim.Proc) {
		if n := r.TryPushRequestBatch([]req{{1}, {2}, {3}, {4}}); n != 4 {
			t.Errorf("batch push = %d", n)
		}
		buf := make([]req, 8)
		if n := r.TryPopRequestBatch(buf); n != 4 || buf[0].id != 1 || buf[3].id != 4 {
			t.Errorf("batch pop = %d %v", n, buf[:n])
		}
		if err := r.PushResponseBatch([]resp{{1}, {2}, {3}, {4}}); err != nil {
			t.Error(err)
		}
		rbuf := make([]resp, 8)
		if n := r.TryPopResponseBatch(rbuf); n != 4 {
			t.Errorf("batch pop responses = %d", n)
		}
	})
	env.RunAll()
	if backNotified != 1 || frontNotified != 1 {
		t.Fatalf("notifies back=%d front=%d", backNotified, frontNotified)
	}
	if r.Inflight() != 0 {
		t.Fatalf("inflight = %d", r.Inflight())
	}
}

// PushRequestBatch larger than the ring blocks and completes as slots free;
// PopRequestBatch drains whole bursts per wakeup.
func TestBatchBlockingRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 4)
	const total = 10
	var served int
	env.Spawn("backend", func(p *sim.Proc) {
		buf := make([]req, 4)
		rsp := make([]resp, 4)
		for served < total {
			n, err := r.PopRequestBatch(p, buf)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				rsp[i] = resp{buf[i].id}
			}
			if err := r.PushResponseBatch(rsp[:n]); err != nil {
				t.Error(err)
				return
			}
			served += n
		}
	})
	env.Spawn("frontend", func(p *sim.Proc) {
		reqs := make([]req, total)
		for i := range reqs {
			reqs[i] = req{i}
		}
		env.Spawn("reaper", func(p2 *sim.Proc) {
			buf := make([]resp, 4)
			got := 0
			for got < total {
				n, err := r.PopResponseBatch(p2, buf)
				if err != nil {
					t.Error(err)
					return
				}
				got += n
			}
		})
		if err := r.PushRequestBatch(p, reqs); err != nil {
			t.Error(err)
		}
	})
	env.RunAll()
	if served != total {
		t.Fatalf("served = %d", served)
	}
	if r.Inflight() != 0 {
		t.Fatalf("inflight = %d", r.Inflight())
	}
}

func TestBreakWakesAndFailsAll(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 1)
	var popErr, pushErr error
	env.Spawn("blockedPop", func(p *sim.Proc) {
		_, popErr = r.PopRequest(p)
	})
	env.Spawn("filler", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		// Fill the ring so the next push blocks. The queued request is
		// consumed by blockedPop, but its slot stays held.
		r.TryPushRequest(req{0})
		r.TryPushRequest(req{0})
	})
	env.Spawn("blockedPush", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		pushErr = r.PushRequest(p, req{1})
	})
	env.Spawn("breaker", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		r.Break()
	})
	env.RunAll()
	// blockedPop actually received the filler's request, so it may have
	// succeeded; the blocked push must fail.
	if pushErr == nil || !errors.Is(pushErr, xtypes.ErrShutdown) {
		t.Fatalf("push on broken ring: %v", pushErr)
	}
	_ = popErr
	if !r.Broken() {
		t.Fatal("ring not broken")
	}
	if _, ok := r.TryPopRequest(); ok {
		t.Fatal("pop on broken ring succeeded")
	}
}

func TestResetRestoresService(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 2)
	env.Spawn("test", func(p *sim.Proc) {
		r.TryPushRequest(req{1})
		r.Break()
		r.Reset()
		if r.Broken() || r.Inflight() != 0 {
			t.Error("reset did not clear state")
		}
		if !r.TryPushRequest(req{2}) {
			t.Error("push after reset failed")
		}
		rq, ok := r.TryPopRequest()
		if !ok || rq.id != 2 {
			t.Errorf("pop after reset = %+v %v", rq, ok)
		}
	})
	env.RunAll()
}

// Property: for any interleaving of pushes and pops, in-flight slot count
// equals pushes minus consumed responses and never exceeds capacity.
func TestSlotAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		env := sim.NewEnv(1)
		r := New[req, resp](env, 4)
		pushed, popped, responded, consumed := 0, 0, 0, 0
		okAll := true
		env.Spawn("driver", func(p *sim.Proc) {
			for _, op := range ops {
				switch op % 4 {
				case 0:
					if r.TryPushRequest(req{pushed}) {
						pushed++
					}
				case 1:
					if _, ok := r.TryPopRequest(); ok {
						popped++
					}
				case 2:
					if responded < popped {
						r.PushResponse(resp{responded})
						responded++
					}
				case 3:
					if _, ok := r.TryPopResponse(); ok {
						consumed++
					}
				}
				if r.Inflight() != pushed-consumed || r.Inflight() > r.Slots() {
					okAll = false
					return
				}
			}
		})
		env.RunAll()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Satellite regression: every push/pop variant — try, blocking, and batch,
// both directions — must refuse service on a broken ring. TryPopResponse
// historically skipped the broken check and let a frontend consume
// responses (freeing slots) on a ring mid-microreboot.
func TestBrokenRingRefusesAllVariants(t *testing.T) {
	cases := []struct {
		name string
		op   func(p *sim.Proc, r *Ring[req, resp]) bool // true = op succeeded
	}{
		{"TryPushRequest", func(p *sim.Proc, r *Ring[req, resp]) bool {
			return r.TryPushRequest(req{9})
		}},
		{"PushRequest", func(p *sim.Proc, r *Ring[req, resp]) bool {
			return r.PushRequest(p, req{9}) == nil
		}},
		{"TryPushRequestBatch", func(p *sim.Proc, r *Ring[req, resp]) bool {
			return r.TryPushRequestBatch([]req{{9}}) > 0
		}},
		{"PushRequestBatch", func(p *sim.Proc, r *Ring[req, resp]) bool {
			return r.PushRequestBatch(p, []req{{9}}) == nil
		}},
		{"TryPopRequest", func(p *sim.Proc, r *Ring[req, resp]) bool {
			_, ok := r.TryPopRequest()
			return ok
		}},
		{"PopRequest", func(p *sim.Proc, r *Ring[req, resp]) bool {
			_, err := r.PopRequest(p)
			return err == nil
		}},
		{"TryPopRequestBatch", func(p *sim.Proc, r *Ring[req, resp]) bool {
			return r.TryPopRequestBatch(make([]req, 2)) > 0
		}},
		{"PopRequestBatch", func(p *sim.Proc, r *Ring[req, resp]) bool {
			n, err := r.PopRequestBatch(p, make([]req, 2))
			return err == nil && n > 0
		}},
		{"PushResponse", func(p *sim.Proc, r *Ring[req, resp]) bool {
			return r.PushResponse(resp{9}) == nil
		}},
		{"PushResponseBatch", func(p *sim.Proc, r *Ring[req, resp]) bool {
			return r.PushResponseBatch([]resp{{9}}) == nil
		}},
		{"TryPopResponse", func(p *sim.Proc, r *Ring[req, resp]) bool {
			_, ok := r.TryPopResponse()
			return ok
		}},
		{"PopResponse", func(p *sim.Proc, r *Ring[req, resp]) bool {
			_, err := r.PopResponse(p)
			return err == nil
		}},
		{"TryPopResponseBatch", func(p *sim.Proc, r *Ring[req, resp]) bool {
			return r.TryPopResponseBatch(make([]resp, 2)) > 0
		}},
		{"PopResponseBatch", func(p *sim.Proc, r *Ring[req, resp]) bool {
			n, err := r.PopResponseBatch(p, make([]resp, 2))
			return err == nil && n > 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := sim.NewEnv(1)
			r := New[req, resp](env, 4)
			env.Spawn("test", func(p *sim.Proc) {
				// Queue work in both directions so the ops would succeed
				// were the ring healthy, then break it.
				r.TryPushRequest(req{1})
				r.TryPushRequest(req{2})
				r.TryPopRequest()
				r.PushResponse(resp{1})
				before := r.Inflight()
				r.Break()
				if tc.op(p, r) {
					t.Errorf("%s succeeded on broken ring", tc.name)
				}
				if r.Inflight() != before {
					t.Errorf("%s changed slot accounting on broken ring: %d -> %d",
						tc.name, before, r.Inflight())
				}
			})
			env.RunAll()
		})
	}
}

// Stats track descriptor totals across pushes, pops, and Reset (counters
// survive a microreboot so restart-spanning experiments keep totals).
func TestStatsAccounting(t *testing.T) {
	env := sim.NewEnv(1)
	r := New[req, resp](env, 4)
	env.Spawn("test", func(p *sim.Proc) {
		r.TryPushRequestBatch([]req{{1}, {2}, {3}})
		buf := make([]req, 4)
		r.TryPopRequestBatch(buf)
		r.PushResponseBatch([]resp{{1}, {2}, {3}})
		rbuf := make([]resp, 4)
		r.TryPopResponseBatch(rbuf)
		r.Break()
		r.Reset()
		r.TryPushRequest(req{4})
	})
	env.RunAll()
	st := r.Stats()
	if st.ReqPushed != 4 || st.ReqPopped != 3 || st.RespPushed != 3 || st.RespPopped != 3 {
		t.Fatalf("stats = %+v", st)
	}
}
