package hv

import (
	"errors"
	"testing"

	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// newHV builds a hypervisor with Xoar IVC enforcement on.
func newHV(enforce bool) (*sim.Env, *Hypervisor) {
	env := sim.NewEnv(1)
	h := New(env, hw.NewMachine(env))
	h.EnforceShardIVC = enforce
	return env, h
}

// mkDom creates and unpauses a domain as SystemCaller.
func mkDom(t *testing.T, h *Hypervisor, name string, shard bool) *Domain {
	t.Helper()
	d, err := h.CreateDomain(SystemCaller, DomainConfig{Name: name, MemMB: 64, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Unpause(SystemCaller, d.ID); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCreateAssignsSequentialIDs(t *testing.T) {
	_, h := newHV(true)
	a := mkDom(t, h, "a", true)
	b := mkDom(t, h, "b", false)
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("ids = %v %v", a.ID, b.ID)
	}
	if len(h.Domains()) != 2 {
		t.Fatalf("domains = %d", len(h.Domains()))
	}
}

func TestHypercallWhitelist(t *testing.T) {
	_, h := newHV(true)
	builder := mkDom(t, h, "builder", true)
	guest := mkDom(t, h, "guest", false)

	// Unprivileged caller cannot create domains.
	if _, err := h.CreateDomain(guest.ID, DomainConfig{Name: "x", MemMB: 16}); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("create by guest: %v", err)
	}

	// Whitelist the builder for domain creation.
	err := h.AssignPrivileges(SystemCaller, builder.ID, Assignment{
		Hypercalls: []xtypes.Hypercall{xtypes.HyperDomctlCreate, xtypes.HyperDomctlUnpause},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateDomain(builder.ID, DomainConfig{Name: "x", MemMB: 16}); err != nil {
		t.Fatalf("create by whitelisted builder: %v", err)
	}
	// But not destroy: not whitelisted.
	if err := h.DestroyDomain(builder.ID, guest.ID, "test"); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("destroy without whitelist: %v", err)
	}
	if h.DeniedCalls == 0 {
		t.Fatal("denied calls not counted")
	}
}

func TestPrivilegesOnlyForShards(t *testing.T) {
	_, h := newHV(true)
	guest := mkDom(t, h, "guest", false)
	err := h.AssignPrivileges(SystemCaller, guest.ID, Assignment{
		Hypercalls: []xtypes.Hypercall{xtypes.HyperDomctlCreate},
	})
	if !errors.Is(err, xtypes.ErrNotShard) {
		t.Fatalf("privileges for non-shard: %v", err)
	}
}

func TestParentToolstackControls(t *testing.T) {
	_, h := newHV(true)
	tool := mkDom(t, h, "toolstack", true)
	other := mkDom(t, h, "other-tool", true)
	for _, d := range []*Domain{tool, other} {
		err := h.AssignPrivileges(SystemCaller, d.ID, Assignment{
			Hypercalls: []xtypes.Hypercall{
				xtypes.HyperDomctlCreate, xtypes.HyperDomctlDestroy,
				xtypes.HyperDomctlPause, xtypes.HyperDomctlUnpause,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	guest, err := h.CreateDomain(tool.ID, DomainConfig{Name: "guest", MemMB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if guest.ParentTool() != tool.ID {
		t.Fatalf("parent = %v", guest.ParentTool())
	}
	// The parent can manage its guest.
	if err := h.Unpause(tool.ID, guest.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Pause(tool.ID, guest.ID); err != nil {
		t.Fatal(err)
	}
	// Another toolstack, although whitelisted for the hypercalls, is blocked
	// by the parent-toolstack audit (§5.6).
	if err := h.Pause(other.ID, guest.ID); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("foreign toolstack pause: %v", err)
	}
	if err := h.DestroyDomain(other.ID, guest.ID, "attack"); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("foreign toolstack destroy: %v", err)
	}
	if err := h.DestroyDomain(tool.ID, guest.ID, "done"); err != nil {
		t.Fatal(err)
	}
}

func TestDelegation(t *testing.T) {
	_, h := newHV(true)
	shard := mkDom(t, h, "netback", true)
	user := mkDom(t, h, "user-tool", true)
	// Assign delegation via the config-block API.
	if err := h.AssignPrivileges(SystemCaller, shard.ID, Assignment{DelegateTo: []xtypes.DomID{user.ID}}); err != nil {
		t.Fatal(err)
	}
	// The delegate now controls the shard: e.g. pause it (whitelist the call).
	if err := h.AssignPrivileges(SystemCaller, user.ID, Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperDomctlPause}}); err != nil {
		t.Fatal(err)
	}
	if err := h.Pause(user.ID, shard.ID); err != nil {
		t.Fatalf("delegated pause: %v", err)
	}
}

func TestShardIVCPolicy(t *testing.T) {
	_, h := newHV(true)
	netback := mkDom(t, h, "netback", true)
	guestA := mkDom(t, h, "guestA", false)
	guestB := mkDom(t, h, "guestB", false)

	// Guest A is not yet linked: IVC setup fails both directions.
	if _, err := h.Grant(guestA.ID, netback.ID, 0, false); !errors.Is(err, xtypes.ErrNotDelegated) {
		t.Fatalf("grant before link: %v", err)
	}
	if _, err := h.EvtchnAllocUnbound(netback.ID, guestA.ID); !errors.Is(err, xtypes.ErrNotDelegated) {
		t.Fatalf("evtchn before link: %v", err)
	}

	// Two plain guests can never set up IVC directly.
	if _, err := h.Grant(guestA.ID, guestB.ID, 0, false); !errors.Is(err, xtypes.ErrNotShard) {
		t.Fatalf("guest-guest grant: %v", err)
	}

	// Link guest A to the shard (SystemCaller stands in for its toolstack).
	if err := h.LinkShardClient(SystemCaller, netback.ID, guestA.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Grant(guestA.ID, netback.ID, 0, false); err != nil {
		t.Fatalf("grant after link: %v", err)
	}
	// Guest B is still blocked.
	if _, err := h.Grant(guestB.ID, netback.ID, 0, false); !errors.Is(err, xtypes.ErrNotDelegated) {
		t.Fatalf("unlinked guest grant: %v", err)
	}
	// Shard-to-shard IVC is always allowed.
	xs := mkDom(t, h, "xenstore", true)
	if _, err := h.Grant(netback.ID, xs.ID, 1, false); err != nil {
		t.Fatalf("shard-shard grant: %v", err)
	}
}

func TestIVCUnrestrictedInMonolithicProfile(t *testing.T) {
	_, h := newHV(false)
	a := mkDom(t, h, "a", false)
	b := mkDom(t, h, "b", false)
	if _, err := h.Grant(a.ID, b.ID, 0, false); err != nil {
		t.Fatalf("grant in stock profile: %v", err)
	}
}

func TestMapGrantTracksMemory(t *testing.T) {
	_, h := newHV(true)
	shard := mkDom(t, h, "blkback", true)
	guest := mkDom(t, h, "guest", false)
	h.LinkShardClient(SystemCaller, shard.ID, guest.ID)
	ref, err := h.Grant(guest.ID, shard.ID, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.MapGrant(shard.ID, guest.ID, ref, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := h.MM.ForeignMapCount(shard.ID, guest.ID); n != 1 {
		t.Fatalf("map count = %d", n)
	}
	m.Unmap()
	m.Unmap() // idempotent
	if n := h.MM.ForeignMapCount(shard.ID, guest.ID); n != 0 {
		t.Fatalf("map count after unmap = %d", n)
	}
}

func TestMapForeignRequiresControl(t *testing.T) {
	_, h := newHV(true)
	qemu := mkDom(t, h, "qemu", true)
	guest := mkDom(t, h, "guest", false)
	victim := mkDom(t, h, "victim", false)
	h.AssignPrivileges(SystemCaller, qemu.ID, Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperMapForeign}})

	// Without privileged-for, even a whitelisted mapper is rejected.
	if err := h.MapForeign(qemu.ID, guest.ID, 0); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("map without control: %v", err)
	}
	h.SetPrivilegedFor(SystemCaller, qemu.ID, guest.ID)
	if err := h.MapForeign(qemu.ID, guest.ID, 0); err != nil {
		t.Fatalf("map with privileged-for: %v", err)
	}
	// The QemuVM has rights over exactly one guest: the victim is off-limits.
	// This is the §6.2.1 device-emulation containment property.
	if err := h.MapForeign(qemu.ID, victim.ID, 0); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("map of foreign victim: %v", err)
	}
}

func TestCriticalDomainCrashesHost(t *testing.T) {
	_, h := newHV(false)
	dom0, _ := h.CreateDomain(SystemCaller, DomainConfig{Name: "dom0", MemMB: 64, Critical: true})
	h.Unpause(SystemCaller, dom0.ID)
	h.DestroyDomain(SystemCaller, dom0.ID, "oops")
	if !h.CrashedHost {
		t.Fatal("critical domain death did not crash the host")
	}
}

func TestSelfExitIsNotACrash(t *testing.T) {
	_, h := newHV(true)
	boot, _ := h.CreateDomain(SystemCaller, DomainConfig{Name: "bootstrapper", MemMB: 16, Shard: true, Critical: true})
	h.Unpause(SystemCaller, boot.ID)
	if err := h.SelfExit(boot.ID); err != nil {
		t.Fatal(err)
	}
	if h.CrashedHost {
		t.Fatal("voluntary exit crashed the host")
	}
	if _, err := h.Domain(boot.ID); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatal("domain survived self-exit")
	}
}

func TestDestroyCleansIVCState(t *testing.T) {
	_, h := newHV(true)
	shard := mkDom(t, h, "netback", true)
	guest := mkDom(t, h, "guest", false)
	h.LinkShardClient(SystemCaller, shard.ID, guest.ID)
	ref, _ := h.Grant(guest.ID, shard.ID, 0, false)
	m, _ := h.MapGrant(shard.ID, guest.ID, ref, false)
	_ = m
	hooks := 0
	h.OnDestroy(func(id xtypes.DomID) { hooks++ })
	if err := h.DestroyDomain(SystemCaller, guest.ID, "gone"); err != nil {
		t.Fatal(err)
	}
	if hooks != 1 {
		t.Fatal("destroy hook did not run")
	}
	// Shard's grants table access to the dead domain now fails.
	if _, err := h.Grants.Map(shard.ID, guest.ID, ref, false); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("grant map after destroy: %v", err)
	}
}

func TestSnapshotRollbackHypercalls(t *testing.T) {
	_, h := newHV(true)
	shard := mkDom(t, h, "netback", true)
	guest := mkDom(t, h, "guest", false)
	h.AssignPrivileges(SystemCaller, shard.ID, Assignment{
		Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot},
	})
	shard.Mem.Write(0, []byte("init"))
	if err := h.VMSnapshot(shard.ID); err != nil {
		t.Fatal(err)
	}
	shard.Mem.Write(0, []byte("dirty"))

	// A random guest cannot roll the shard back.
	if _, err := h.VMRollback(guest.ID, shard.ID); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("rollback by guest: %v", err)
	}
	// SystemCaller (standing in for the restart engine) can.
	restored, err := h.VMRollback(SystemCaller, shard.ID)
	if err != nil || restored != 1 {
		t.Fatalf("rollback: %d, %v", restored, err)
	}
	data, _ := shard.Mem.Read(0)
	if string(data) != "init" {
		t.Fatalf("memory after rollback: %q", data)
	}
	// Snapshot requires the whitelist: the guest lacks it.
	if err := h.VMSnapshot(guest.ID); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("snapshot by guest: %v", err)
	}
}

func TestRecoveryBoxViaHypercall(t *testing.T) {
	_, h := newHV(true)
	shard := mkDom(t, h, "netback", true)
	h.AssignPrivileges(SystemCaller, shard.ID, Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot}})
	if err := h.RegisterRecoveryBox(shard.ID, 100, 4); err != nil {
		t.Fatal(err)
	}
	h.VMSnapshot(shard.ID)
	shard.Mem.Write(100, []byte("persisted config"))
	shard.Mem.Write(0, []byte("scratch"))
	h.VMRollback(SystemCaller, shard.ID)
	data, _ := shard.Mem.Read(100)
	if string(data) != "persisted config" {
		t.Fatalf("recovery box lost: %q", data)
	}
}

func TestVIRQRouting(t *testing.T) {
	env, h := newHV(true)
	console := mkDom(t, h, "console", true)
	h.AssignPrivileges(SystemCaller, console.ID, Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperSetVIRQ}})
	if err := h.RouteHardwareVIRQ(console.ID, xtypes.VIRQConsole, console.ID); err != nil {
		t.Fatal(err)
	}
	port, _ := h.Evtchn.BindVIRQ(console.ID, xtypes.VIRQConsole)
	got := 0
	h.Evtchn.SetHandler(console.ID, port, func() { got++ })
	env.Spawn("irq", func(p *sim.Proc) {
		h.InjectHardwareVIRQ(xtypes.VIRQConsole)
	})
	env.RunAll()
	if got != 1 {
		t.Fatalf("virq deliveries = %d", got)
	}
}

func TestIOPortGrants(t *testing.T) {
	_, h := newHV(true)
	pciback := mkDom(t, h, "pciback", true)
	if h.HasIOPorts(pciback.ID, "pci") {
		t.Fatal("ports granted by default")
	}
	if err := h.GrantIOPorts(SystemCaller, pciback.ID, "pci"); err != nil {
		t.Fatal(err)
	}
	if !h.HasIOPorts(pciback.ID, "pci") {
		t.Fatal("port grant lost")
	}
}

func TestComputeContention(t *testing.T) {
	env, h := newHV(false)
	// A domain with one vCPU serializes its own work even on an idle machine.
	d := mkDom(t, h, "uni", false)
	var aDone, bDone sim.Time
	env.Spawn("a", func(p *sim.Proc) {
		h.Compute(p, d.ID, 10*sim.Millisecond)
		aDone = p.Now()
	})
	env.Spawn("b", func(p *sim.Proc) {
		h.Compute(p, d.ID, 10*sim.Millisecond)
		bDone = p.Now()
	})
	env.RunAll()
	last := aDone
	if bDone > last {
		last = bDone
	}
	if last < sim.Time(20*sim.Millisecond) {
		t.Fatalf("single-vCPU domain did 20ms of work in %v", sim.Duration(last))
	}
}

func TestComputeParallelAcrossDomains(t *testing.T) {
	env, h := newHV(false)
	a := mkDom(t, h, "a", false)
	b := mkDom(t, h, "b", false)
	var done []sim.Time
	for _, d := range []*Domain{a, b} {
		id := d.ID
		env.Spawn("w", func(p *sim.Proc) {
			h.Compute(p, id, 10*sim.Millisecond)
			done = append(done, p.Now())
		})
	}
	env.RunAll()
	// Two domains, four cores: both finish in ~10ms.
	for _, d := range done {
		if d > sim.Time(12*sim.Millisecond) {
			t.Fatalf("parallel compute finished at %v", sim.Duration(d))
		}
	}
}

func TestDeviceAssignmentViaPrivileges(t *testing.T) {
	_, h := newHV(true)
	netback := mkDom(t, h, "netback", true)
	nicAddr := h.Machine.NICs()[0].Addr()
	err := h.AssignPrivileges(SystemCaller, netback.ID, Assignment{PCIDevices: []xtypes.PCIAddr{nicAddr}})
	if err != nil {
		t.Fatal(err)
	}
	if h.Machine.Bus.AssignedTo(nicAddr) != netback.ID {
		t.Fatal("device not assigned")
	}
	// Second shard cannot take the same NIC.
	blk := mkDom(t, h, "blkback", true)
	err = h.AssignPrivileges(SystemCaller, blk.ID, Assignment{PCIDevices: []xtypes.PCIAddr{nicAddr}})
	if !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("double device assign: %v", err)
	}
}

func TestEventSink(t *testing.T) {
	_, h := newHV(true)
	var kinds []string
	h.Sink = func(e Event) { kinds = append(kinds, e.Kind) }
	d := mkDom(t, h, "a", true)
	h.DestroyDomain(SystemCaller, d.ID, "done")
	want := []string{"create", "unpause", "destroy"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v", kinds)
		}
	}
}

func TestBalloonOwnReservation(t *testing.T) {
	_, h := newHV(false)
	d := mkDom(t, h, "guest", false)
	freeBefore := h.MM.FreeMB()
	// Shrink: returns memory to the free pool.
	if err := h.BalloonTo(d.ID, 32); err != nil {
		t.Fatal(err)
	}
	if h.MM.FreeMB() != freeBefore+32 {
		t.Fatalf("free = %d, want %d", h.MM.FreeMB(), freeBefore+32)
	}
	// Grow back within available memory.
	if err := h.BalloonTo(d.ID, 64); err != nil {
		t.Fatal(err)
	}
	// Growing beyond machine memory fails cleanly.
	if err := h.BalloonTo(d.ID, 1<<20); !errors.Is(err, xtypes.ErrNoMem) {
		t.Fatalf("overgrow: %v", err)
	}
	if err := h.BalloonTo(d.ID, 0); !errors.Is(err, xtypes.ErrInvalid) {
		t.Fatalf("balloon to zero: %v", err)
	}
}

func TestSetMaxMemPaths(t *testing.T) {
	_, h := newHV(true)
	tool := mkDom(t, h, "tool", true)
	h.AssignPrivileges(SystemCaller, tool.ID, Assignment{Hypercalls: []xtypes.Hypercall{
		xtypes.HyperDomctlCreate, xtypes.HyperDomctlMaxMem, xtypes.HyperDomctlUnpause,
	}})
	guest, _ := h.CreateDomain(tool.ID, DomainConfig{Name: "g", MemMB: 64})
	h.Unpause(tool.ID, guest.ID)
	if err := h.SetMaxMem(tool.ID, guest.ID, 128); err != nil {
		t.Fatal(err)
	}
	if guest.Mem.MaxMB() != 128 {
		t.Fatalf("max = %d", guest.Mem.MaxMB())
	}
	// A foreign toolstack is refused.
	other := mkDom(t, h, "other", true)
	h.AssignPrivileges(SystemCaller, other.ID, Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperDomctlMaxMem}})
	if err := h.SetMaxMem(other.ID, guest.ID, 256); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("foreign setmaxmem: %v", err)
	}
	// Missing target.
	if err := h.SetMaxMem(tool.ID, 999, 64); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("setmaxmem on ghost: %v", err)
	}
}

func TestEvtchnNotifyWrapper(t *testing.T) {
	env, h := newHV(true)
	shard := mkDom(t, h, "s", true)
	guest := mkDom(t, h, "g", false)
	h.LinkShardClient(SystemCaller, shard.ID, guest.ID)
	up, err := h.EvtchnAllocUnbound(guest.ID, shard.ID)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := h.EvtchnBind(shard.ID, guest.ID, up)
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	h.Evtchn.SetHandler(guest.ID, up, func() { delivered = true })
	env.Spawn("n", func(p *sim.Proc) {
		if err := h.EvtchnNotify(shard.ID, sp); err != nil {
			t.Error(err)
		}
	})
	env.RunAll()
	if !delivered {
		t.Fatal("notify did not deliver")
	}
}

func TestGrantForRequiresBuilderPrivilege(t *testing.T) {
	_, h := newHV(true)
	a := mkDom(t, h, "a", true)
	b := mkDom(t, h, "b", true)
	if _, err := h.GrantFor(a.ID, b.ID, a.ID, 0, false); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("grant-for without DomctlPriv: %v", err)
	}
	h.AssignPrivileges(SystemCaller, a.ID, Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperDomctlPriv}})
	if _, err := h.GrantFor(a.ID, b.ID, a.ID, 0, false); err != nil {
		t.Fatalf("grant-for with privilege: %v", err)
	}
}

func TestSelfExitOfUnknownDomain(t *testing.T) {
	_, h := newHV(true)
	if err := h.SelfExit(42); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("self-exit of ghost: %v", err)
	}
}

func TestDomainsOrderedByID(t *testing.T) {
	_, h := newHV(true)
	for i := 0; i < 5; i++ {
		mkDom(t, h, "d", true)
	}
	prev := xtypes.DomID(0)
	for i, d := range h.Domains() {
		if i > 0 && d.ID <= prev {
			t.Fatalf("domains out of order: %v", h.Domains())
		}
		prev = d.ID
	}
}

func TestComputeOnDeadDomainPassesTime(t *testing.T) {
	env, h := newHV(true)
	d := mkDom(t, h, "short-lived", true)
	h.DestroyDomain(SystemCaller, d.ID, "gone")
	var elapsed sim.Duration
	env.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		h.Compute(p, d.ID, 5*sim.Millisecond)
		elapsed = p.Now().Sub(t0)
	})
	env.RunAll()
	if elapsed != 5*sim.Millisecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestUnlinkShardClientRevokesIVC(t *testing.T) {
	_, h := newHV(true)
	shard := mkDom(t, h, "s", true)
	guest := mkDom(t, h, "g", false)
	h.LinkShardClient(SystemCaller, shard.ID, guest.ID)
	if _, err := h.Grant(guest.ID, shard.ID, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := h.UnlinkShardClient(SystemCaller, shard.ID, guest.ID); err != nil {
		t.Fatal(err)
	}
	// Fresh IVC setup is blocked again.
	if _, err := h.Grant(guest.ID, shard.ID, 1, false); !errors.Is(err, xtypes.ErrNotDelegated) {
		t.Fatalf("grant after unlink: %v", err)
	}
}

func TestDebugOpDeprivilegedByDefault(t *testing.T) {
	_, h := newHV(true)
	g := mkDom(t, h, "g", false)
	// The platform ships with guests deprivileged: the debug-register
	// interface — the vector of two studied CVEs — is not in the default
	// whitelist (§6.2.1's mitigation posture). An administrator could
	// re-enable it per shard via permit_hypercall.
	if err := h.DebugOp(g.ID); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("debug op for plain guest: %v", err)
	}
	shard := mkDom(t, h, "debugger", true)
	h.AssignPrivileges(SystemCaller, shard.ID, Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperDebugOp}})
	if err := h.DebugOp(shard.ID); err != nil {
		t.Fatalf("whitelisted debug op: %v", err)
	}
}

func TestCreateDomainRollsBackIDOnFailure(t *testing.T) {
	_, h := newHV(true)
	// Exhaust memory so creation fails, then verify the next create reuses
	// the ID (no ID burn on failure).
	if _, err := h.CreateDomain(SystemCaller, DomainConfig{Name: "huge", MemMB: 1 << 20}); !errors.Is(err, xtypes.ErrNoMem) {
		t.Fatal("overcommit accepted")
	}
	d := mkDom(t, h, "after", true)
	if d.ID != 0 {
		t.Fatalf("id after failed create = %v", d.ID)
	}
}
