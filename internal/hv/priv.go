package hv

import (
	"errors"
	"fmt"

	"xoar/internal/grant"
	"xoar/internal/mm"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// Assignment is the Figure 3.1 privilege-assignment block from a shard's
// config file: devices to pass through, privileged hypercalls to whitelist,
// and guests to delegate administration to.
type Assignment struct {
	PCIDevices []xtypes.PCIAddr   // assign_pci_device(domain, bus, slot)
	Hypercalls []xtypes.Hypercall // permit_hypercall(hypercall_id)
	DelegateTo []xtypes.DomID     // allow_delegation(guest_id)
	ControlAll bool               // monolithic Dom0 only
	IOPorts    []string           // named I/O-port ranges ("console", "pci")
}

// AssignPrivileges applies an assignment to target. Requires HyperDomctlPriv
// — held only by the Builder (and Dom0 in the monolithic profile). Extra
// privileges may only be attached to shards; granting them to a plain guest
// fails, which is the heart of the shard abstraction (§3).
func (h *Hypervisor) AssignPrivileges(caller, target xtypes.DomID, a Assignment) error {
	if _, err := h.check(caller, xtypes.HyperDomctlPriv); err != nil {
		return err
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	// Only the Xoar profile restricts privilege to shards; stock Xen has no
	// shard concept and Dom0 takes everything.
	needsPriv := a.ControlAll || len(a.Hypercalls) > 0 || len(a.PCIDevices) > 0 || len(a.DelegateTo) > 0
	if h.EnforceShardIVC && needsPriv && !d.Cfg.Shard {
		h.DeniedCalls++
		return fmt.Errorf("hv: privileges for non-shard %v(%s): %w", target, d.Name, xtypes.ErrNotShard)
	}
	for _, addr := range a.PCIDevices {
		if err := h.Machine.Bus.Assign(addr, target); err != nil {
			return err
		}
		h.emit("assign-device", target, addr.String())
	}
	for _, hc := range a.Hypercalls {
		d.priv.Hypercalls[hc] = true
		h.emit("permit-hypercall", target, hc.String())
	}
	for _, g := range a.DelegateTo {
		d.delegates[g] = true
		h.emit("delegate", target, g.String())
	}
	for _, r := range a.IOPorts {
		d.ioPorts[r] = true
		h.emit("grant-ioports", target, r)
	}
	if a.ControlAll {
		d.priv.ControlAll = true
		h.emit("control-all", target, "")
	}
	return nil
}

// Delegate grants admin rights over shard to grantee at runtime; the caller
// must itself control the shard. Requires HyperDelegateAdmin.
func (h *Hypervisor) Delegate(caller, shard, grantee xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDelegateAdmin); err != nil {
		return err
	}
	d, err := h.Domain(shard)
	if err != nil {
		return err
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: delegate %v by %v: %w", shard, caller, xtypes.ErrPerm)
	}
	if !d.Cfg.Shard {
		h.DeniedCalls++
		return fmt.Errorf("hv: delegate non-shard %v: %w", shard, xtypes.ErrNotShard)
	}
	d.delegates[grantee] = true
	h.emit("delegate", shard, grantee.String())
	return nil
}

// SetParentTool marks tool as the parent toolstack of guest; subsequent
// VM-management hypercalls on guest are audited against this flag (§5.6).
// Requires HyperSetParentTool (Builder only).
func (h *Hypervisor) SetParentTool(caller, guest, tool xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperSetParentTool); err != nil {
		return err
	}
	d, err := h.Domain(guest)
	if err != nil {
		return err
	}
	d.parentTool = tool
	h.emit("set-parent", guest, tool.String())
	return nil
}

// SetPrivilegedFor gives vm limited privileges over target's memory — the
// flag added for QEMU stub domains, which need DMA access to exactly one
// guest (§5.6). Requires HyperDomctlPriv.
func (h *Hypervisor) SetPrivilegedFor(caller, vm, target xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDomctlPriv); err != nil {
		return err
	}
	d, err := h.Domain(vm)
	if err != nil {
		return err
	}
	if _, err := h.Domain(target); err != nil {
		return err
	}
	d.privilegedFor[target] = true
	h.emit("privileged-for", vm, target.String())
	return nil
}

// LinkShardClient authorizes guest to consume shard's service. The caller
// must control the shard (its toolstack, via delegation). The hypervisor
// then permits grant/evtchn setup between the pair. A toolstack can only use
// shards delegated to it (§5.6).
func (h *Hypervisor) LinkShardClient(caller, shard, guest xtypes.DomID) error {
	d, err := h.Domain(shard)
	if err != nil {
		return err
	}
	if h.EnforceShardIVC && !d.Cfg.Shard {
		h.DeniedCalls++
		return fmt.Errorf("hv: link client to non-shard %v: %w", shard, xtypes.ErrNotShard)
	}
	// A shard may not curate its own client list: controls() counts every
	// domain as controlling itself, but link rights belong to an external
	// controller (the parent toolstack, or a delegate). Without this check a
	// compromised shard could link any guest to itself and then pass the IVC
	// policy for grant/evtchn setup against that guest — found by the
	// hypercall-sequence fuzzer. Only meaningful under the Xoar IVC policy:
	// monolithic Dom0 is both toolstack and backend and links to itself.
	if h.EnforceShardIVC && caller == shard && caller != SystemCaller {
		h.DeniedCalls++
		return fmt.Errorf("hv: link %v->%v by the shard itself: %w", guest, shard, xtypes.ErrPerm)
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: link %v->%v by %v: %w", guest, shard, caller, xtypes.ErrNotDelegated)
	}
	d.clients[guest] = true
	h.emit("link-shard", shard, guest.String())
	return nil
}

// UnlinkShardClient revokes a client link.
func (h *Hypervisor) UnlinkShardClient(caller, shard, guest xtypes.DomID) error {
	d, err := h.Domain(shard)
	if err != nil {
		return err
	}
	// Mirror LinkShardClient's shard requirement: unlinking a non-shard is
	// meaningless, but it used to succeed as a no-op and emit a bogus
	// unlink-shard audit record against a plain guest — noise that corrupts
	// DependentsOf interval bookkeeping (found by the hypercall-sequence
	// fuzzer).
	if h.EnforceShardIVC && !d.Cfg.Shard {
		h.DeniedCalls++
		return fmt.Errorf("hv: unlink client from non-shard %v: %w", shard, xtypes.ErrNotShard)
	}
	// Same self-control exclusion as LinkShardClient: a compromised shard
	// unlinking its own clients would close their audit exposure windows,
	// hiding the compromise interval from DependentsOf.
	if h.EnforceShardIVC && caller == shard && caller != SystemCaller {
		h.DeniedCalls++
		return fmt.Errorf("hv: unlink %v->%v by the shard itself: %w", guest, shard, xtypes.ErrPerm)
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: unlink %v->%v by %v: %w", guest, shard, caller, xtypes.ErrPerm)
	}
	delete(d.clients, guest)
	// The log's interval index keys on this record to close the guest's
	// exposure window; without it DependentsOf kept reporting unlinked
	// clients as dependents forever.
	h.emit("unlink-shard", shard, guest.String())
	return nil
}

// ivcAllowed applies the Xoar sharing policy to an IVC pair (§5.6):
// endpoints may communicate when one is a shard and the other is either a
// linked client or another shard. With enforcement off (stock Xen) anything
// goes.
func (h *Hypervisor) ivcAllowed(a, b xtypes.DomID) error {
	if !h.EnforceShardIVC || a == b {
		return nil
	}
	da, err := h.Domain(a)
	if err != nil {
		return err
	}
	db, err := h.Domain(b)
	if err != nil {
		return err
	}
	if da.Cfg.Shard && db.Cfg.Shard {
		return nil
	}
	if da.Cfg.Shard && da.clients[b] {
		return nil
	}
	if db.Cfg.Shard && db.clients[a] {
		return nil
	}
	if !da.Cfg.Shard && !db.Cfg.Shard {
		// Guest↔guest probes are denials too: leaving them uncounted let an
		// adversarial guest sweep the IVC surface without a trace in the
		// denial counter (found by the hypercall-sequence fuzzer).
		h.DeniedCalls++
		return fmt.Errorf("hv: ivc %v<->%v between non-shards: %w", a, b, xtypes.ErrNotShard)
	}
	h.DeniedCalls++
	return fmt.Errorf("hv: ivc %v<->%v: %w", a, b, xtypes.ErrNotDelegated)
}

// RevokeHypercall removes a previously permitted hypercall from target's
// whitelist — the runtime counterpart of permit_hypercall, used when an
// operator narrows a shard's capabilities below what its manifest role
// grants. Requires HyperDomctlPriv and control over the target. Revocation
// wins over the manifest: the whitelist consulted at dispatch time is the
// domain's live privilege set, not the generated artifact.
func (h *Hypervisor) RevokeHypercall(caller, target xtypes.DomID, hc xtypes.Hypercall) error {
	if _, err := h.check(caller, xtypes.HyperDomctlPriv); err != nil {
		return err
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: revoke %v from %v by %v: %w", hc, target, caller, xtypes.ErrPerm)
	}
	delete(d.priv.Hypercalls, hc)
	h.emit("revoke-hypercall", target, hc.String())
	return nil
}

// --- guarded grant operations ---------------------------------------------

// Grant exports one of caller's pages to grantee, subject to the IVC policy.
// countDenied mirrors a subsystem's object-level refusal (mapping someone
// else's grant ref, binding a port reserved for another domain) into the
// hypervisor's denial counter. Before this, such probes were invisible to
// DeniedCalls — an attacker could sweep the grant table and event-channel
// space without a trace in the denial metric (found by the
// hypercall-sequence fuzzer).
func (h *Hypervisor) countDenied(err error) error {
	if err != nil && errors.Is(err, xtypes.ErrPerm) {
		h.DeniedCalls++
	}
	return err
}

func (h *Hypervisor) Grant(caller, grantee xtypes.DomID, pfn xtypes.PFN, readOnly bool) (xtypes.GrantRef, error) {
	if _, err := h.check(caller, xtypes.HyperGrantTableOp); err != nil {
		return xtypes.GrantRefInvalid, err
	}
	if err := h.ivcAllowed(caller, grantee); err != nil {
		return xtypes.GrantRefInvalid, err
	}
	ref, err := h.Grants.Grant(caller, grantee, pfn, readOnly)
	return ref, h.countDenied(err)
}

// GrantFor creates a grant on behalf of owner — the Builder's extra VM-build
// step that pre-creates grant entries so XenStore and the Console Manager
// can run unprivileged (§5.6). Requires HyperDomctlPriv.
func (h *Hypervisor) GrantFor(caller, owner, grantee xtypes.DomID, pfn xtypes.PFN, readOnly bool) (xtypes.GrantRef, error) {
	if _, err := h.check(caller, xtypes.HyperDomctlPriv); err != nil {
		return xtypes.GrantRefInvalid, err
	}
	return h.Grants.Grant(owner, grantee, pfn, readOnly)
}

// MapGrant maps a granted page, subject to the IVC policy.
func (h *Hypervisor) MapGrant(caller, owner xtypes.DomID, ref xtypes.GrantRef, write bool) (*GrantMapping, error) {
	if _, err := h.check(caller, xtypes.HyperGrantTableOp); err != nil {
		return nil, err
	}
	if err := h.ivcAllowed(caller, owner); err != nil {
		return nil, err
	}
	m, err := h.Grants.Map(caller, owner, ref, write)
	if err != nil {
		return nil, h.countDenied(err)
	}
	if err := h.MM.MapForeign(caller, owner, m.Entry().PFN); err != nil {
		m.Unmap()
		return nil, err
	}
	return &GrantMapping{hv: h, mapper: caller, owner: owner, m: m}, nil
}

// GrantMapping couples the grant-table mapping with its mm reference.
type GrantMapping struct {
	hv     *Hypervisor
	mapper xtypes.DomID
	owner  xtypes.DomID
	m      *grant.Mapping
	done   bool
}

// Unmap releases the mapping.
func (g *GrantMapping) Unmap() {
	if g.done {
		return
	}
	g.done = true
	g.m.Unmap()
	// The owner may already be dead; ignore stale unmap errors.
	_ = g.hv.MM.UnmapForeign(g.mapper, g.owner)
}

// --- guarded event-channel operations ---------------------------------------

// EvtchnAllocUnbound creates an unbound port, subject to the IVC policy.
func (h *Hypervisor) EvtchnAllocUnbound(caller, remote xtypes.DomID) (xtypes.Port, error) {
	if _, err := h.check(caller, xtypes.HyperEvtchnOp); err != nil {
		return xtypes.PortInvalid, err
	}
	if err := h.ivcAllowed(caller, remote); err != nil {
		return xtypes.PortInvalid, err
	}
	port, err := h.Evtchn.AllocUnbound(caller, remote)
	return port, h.countDenied(err)
}

// EvtchnBind binds to a remote unbound port, subject to the IVC policy.
func (h *Hypervisor) EvtchnBind(caller, remoteDom xtypes.DomID, remotePort xtypes.Port) (xtypes.Port, error) {
	if _, err := h.check(caller, xtypes.HyperEvtchnOp); err != nil {
		return xtypes.PortInvalid, err
	}
	if err := h.ivcAllowed(caller, remoteDom); err != nil {
		return xtypes.PortInvalid, err
	}
	port, err := h.Evtchn.BindInterdomain(caller, remoteDom, remotePort)
	return port, h.countDenied(err)
}

// EvtchnNotify signals through a bound port.
func (h *Hypervisor) EvtchnNotify(caller xtypes.DomID, port xtypes.Port) error {
	if _, err := h.check(caller, xtypes.HyperEvtchnOp); err != nil {
		return err
	}
	return h.countDenied(h.Evtchn.Notify(caller, port))
}

// --- foreign mapping ---------------------------------------------------------

// MapForeign maps one of target's pages into caller. This is the privileged
// Dom0-style path; it requires HyperMapForeign plus control over the target.
// Deprivileged components use grants instead.
func (h *Hypervisor) MapForeign(caller, target xtypes.DomID, pfn xtypes.PFN) error {
	if _, err := h.check(caller, xtypes.HyperMapForeign); err != nil {
		return err
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: map foreign %v by %v: %w", target, caller, xtypes.ErrPerm)
	}
	return h.MM.MapForeign(caller, target, pfn)
}

// UnmapForeign releases a privileged mapping. Like MapForeign it requires
// HyperMapForeign: a domain that cannot map foreign memory has no business
// tearing down someone else's mappings either (the asymmetry was a forgotten
// audit, caught by privcheck).
func (h *Hypervisor) UnmapForeign(caller, target xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperMapForeign); err != nil {
		return err
	}
	return h.MM.UnmapForeign(caller, target)
}

// --- VIRQ and I/O ports -----------------------------------------------------

// RouteHardwareVIRQ directs a hardware-sourced VIRQ (console input) to dom.
// Requires HyperSetVIRQ. This is one of the hard-coded Dom0 assumptions Xoar
// had to generalize (§5.8).
func (h *Hypervisor) RouteHardwareVIRQ(caller xtypes.DomID, virq xtypes.VIRQ, dom xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperSetVIRQ); err != nil {
		return err
	}
	h.virqRoutes[virq] = dom
	h.emit("route-virq", dom, virq.String())
	return nil
}

// VIRQRoute reports the recipient of a hardware VIRQ.
func (h *Hypervisor) VIRQRoute(virq xtypes.VIRQ) (xtypes.DomID, bool) {
	d, ok := h.virqRoutes[virq]
	return d, ok
}

// InjectHardwareVIRQ delivers a hardware interrupt along its route.
func (h *Hypervisor) InjectHardwareVIRQ(virq xtypes.VIRQ) {
	if dom, ok := h.virqRoutes[virq]; ok {
		h.Evtchn.RaiseVIRQ(dom, virq)
	}
}

// GrantIOPorts gives target access to a named I/O-port range. Requires
// HyperIOPortAccess and control over target.
func (h *Hypervisor) GrantIOPorts(caller, target xtypes.DomID, rangeName string) error {
	if _, err := h.check(caller, xtypes.HyperIOPortAccess); err != nil {
		return err
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: ioports %q to %v by %v: %w", rangeName, target, caller, xtypes.ErrPerm)
	}
	d.ioPorts[rangeName] = true
	h.emit("grant-ioports", target, rangeName)
	return nil
}

// HasIOPorts reports whether dom may touch the named port range.
func (h *Hypervisor) HasIOPorts(dom xtypes.DomID, rangeName string) bool {
	d, err := h.Domain(dom)
	if err != nil {
		return false
	}
	return d.ioPorts[rangeName]
}

// --- snapshot / rollback -----------------------------------------------------

// VMSnapshot captures the calling domain's image (§3.3): the shard calls this
// itself once booted and initialized, before serving external requests.
// Requires HyperVMSnapshot.
func (h *Hypervisor) VMSnapshot(caller xtypes.DomID) error {
	d, err := h.Domain(caller)
	if err != nil {
		return err
	}
	if _, err := h.check(caller, xtypes.HyperVMSnapshot); err != nil {
		return err
	}
	// Snapshots are write-once: §3.3 takes them once, after initialization
	// and before the component serves external requests. Allowing
	// replacement would let a compromised component re-snapshot its
	// corrupted image, after which every microreboot faithfully restores
	// the compromise — found by the hypercall-sequence fuzzer.
	if d.Mem.Snapshot() != nil {
		h.DeniedCalls++
		return fmt.Errorf("hv: re-snapshot of %v(%s): %w", caller, d.Name, xtypes.ErrPerm)
	}
	d.Mem.TakeSnapshot()
	h.emit("snapshot", caller, fmt.Sprintf("%d pages", d.Mem.Snapshot().Pages()))
	return nil
}

// VMRollback rolls target back to its snapshot, returning the number of
// restored pages. Requires HyperVMRollback and control over target.
func (h *Hypervisor) VMRollback(caller, target xtypes.DomID) (int, error) {
	if _, err := h.check(caller, xtypes.HyperVMRollback); err != nil {
		return 0, err
	}
	d, err := h.Domain(target)
	if err != nil {
		return 0, err
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return 0, fmt.Errorf("hv: rollback %v by %v: %w", target, caller, xtypes.ErrPerm)
	}
	if err := h.injectFault("vm_rollback", caller, target); err != nil {
		return 0, fmt.Errorf("hv: rollback %v: %w", target, err)
	}
	restored, err := d.Mem.Rollback()
	if err != nil {
		return 0, err
	}
	h.emit("rollback", target, fmt.Sprintf("%d pages restored", restored))
	return restored, nil
}

// RegisterRecoveryBox marks a persistent region in the caller's memory that
// survives rollback (§3.3). It is part of the snapshot protocol and requires
// HyperVMSnapshot, the same whitelist entry as VMSnapshot itself — a domain
// not enrolled in microreboots has no snapshot for a box to survive (this
// audit was missing; caught by privcheck).
func (h *Hypervisor) RegisterRecoveryBox(caller xtypes.DomID, start xtypes.PFN, count int) error {
	d, err := h.check(caller, xtypes.HyperVMSnapshot)
	if err != nil {
		return err
	}
	if d == nil {
		// SystemCaller bypasses the whitelist but owns no memory image.
		if d, err = h.Domain(caller); err != nil {
			return err
		}
	}
	return d.Mem.RegisterRecoveryBox(mm.RegionOf(start, count))
}

// --- scheduling --------------------------------------------------------------

// Compute charges d of CPU work to dom: the work occupies one of the domain's
// vCPUs and contends for the physical core pool in millisecond quanta. All
// component and guest models route CPU consumption through here, so CPU
// contention between co-located services (the Dom0 case) versus isolated
// shards (the Xoar case) emerges naturally.
func (h *Hypervisor) Compute(p *sim.Proc, dom xtypes.DomID, d sim.Duration) {
	dd, err := h.Domain(dom)
	if err != nil {
		p.Sleep(d) // dying domain: time passes anyway
		return
	}
	dd.vcpu.Acquire(p)
	defer dd.vcpu.Release()
	h.cpuPool.UseChunked(p, d, h.quantum)
}

// BalloonTo adjusts the caller's own memory reservation — the balloon-driver
// path guests use to return memory under pressure, one of the density
// mechanisms the paper's introduction motivates. It is an unprivileged
// operation (HyperMemoryOpOwn) and only ever touches the caller itself;
// growth is bounded by free machine memory.
func (h *Hypervisor) BalloonTo(caller xtypes.DomID, memMB int) error {
	if _, err := h.check(caller, xtypes.HyperMemoryOpOwn); err != nil {
		return err
	}
	if memMB <= 0 {
		return fmt.Errorf("hv: balloon %v to %dMB: %w", caller, memMB, xtypes.ErrInvalid)
	}
	return h.MM.SetMaxMem(caller, memMB)
}

// DebugOp models the debug-register interface — present only because two of
// the studied CVEs target it; deprivileging guests removes it (§6.2.1).
func (h *Hypervisor) DebugOp(caller xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDebugOp); err != nil {
		return err
	}
	return nil
}
