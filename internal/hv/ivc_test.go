package hv

// Edge cases of the §5.6 IVC sharing policy, tested directly against
// ivcAllowed (the single predicate behind Grant/MapGrant/EvtchnAllocUnbound/
// EvtchnBind): endpoints may communicate iff one is a shard and the other is
// a linked client or another shard — with self-IVC always allowed and the
// whole policy vacuous when enforcement is off (stock Xen).

import (
	"errors"
	"testing"

	"xoar/internal/xtypes"
)

func TestIVCAllowedShardToShard(t *testing.T) {
	_, h := newHV(true)
	a := mkDom(t, h, "netback", true)
	b := mkDom(t, h, "blkback", true)
	if err := h.ivcAllowed(a.ID, b.ID); err != nil {
		t.Fatalf("shard<->shard: %v, want nil", err)
	}
}

func TestIVCAllowedGuestToGuestRejected(t *testing.T) {
	_, h := newHV(true)
	a := mkDom(t, h, "guestA", false)
	b := mkDom(t, h, "guestB", false)
	err := h.ivcAllowed(a.ID, b.ID)
	if !errors.Is(err, xtypes.ErrNotShard) {
		t.Fatalf("guest<->guest: %v, want ErrNotShard", err)
	}
}

func TestIVCAllowedUnlinkedGuestRejected(t *testing.T) {
	_, h := newHV(true)
	shard := mkDom(t, h, "netback", true)
	guest := mkDom(t, h, "guest", false)
	before := h.DeniedCalls
	err := h.ivcAllowed(guest.ID, shard.ID)
	if !errors.Is(err, xtypes.ErrNotDelegated) {
		t.Fatalf("unlinked guest<->shard: %v, want ErrNotDelegated", err)
	}
	if h.DeniedCalls != before+1 {
		t.Fatalf("DeniedCalls = %d, want %d", h.DeniedCalls, before+1)
	}
	// Argument order must not matter: the shard initiating toward the
	// unlinked guest is equally blocked.
	if err := h.ivcAllowed(shard.ID, guest.ID); !errors.Is(err, xtypes.ErrNotDelegated) {
		t.Fatalf("shard<->unlinked guest: %v, want ErrNotDelegated", err)
	}
}

func TestIVCAllowedLinkedClient(t *testing.T) {
	_, h := newHV(true)
	shard := mkDom(t, h, "netback", true)
	guest := mkDom(t, h, "guest", false)
	if err := h.LinkShardClient(SystemCaller, shard.ID, guest.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.ivcAllowed(guest.ID, shard.ID); err != nil {
		t.Fatalf("linked guest<->shard: %v, want nil", err)
	}
	if err := h.ivcAllowed(shard.ID, guest.ID); err != nil {
		t.Fatalf("shard<->linked guest: %v, want nil", err)
	}
}

func TestIVCAllowedSelf(t *testing.T) {
	_, h := newHV(true)
	guest := mkDom(t, h, "guest", false)
	if err := h.ivcAllowed(guest.ID, guest.ID); err != nil {
		t.Fatalf("self-IVC: %v, want nil", err)
	}
}

func TestIVCAllowedEnforcementOff(t *testing.T) {
	_, h := newHV(false)
	a := mkDom(t, h, "guestA", false)
	b := mkDom(t, h, "guestB", false)
	if err := h.ivcAllowed(a.ID, b.ID); err != nil {
		t.Fatalf("stock Xen guest<->guest: %v, want nil", err)
	}
}

func TestIVCAllowedDeadEndpoint(t *testing.T) {
	_, h := newHV(true)
	shard := mkDom(t, h, "netback", true)
	guest := mkDom(t, h, "guest", false)
	if err := h.DestroyDomain(SystemCaller, guest.ID, "gone"); err != nil {
		t.Fatal(err)
	}
	if err := h.ivcAllowed(shard.ID, guest.ID); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("shard<->dead: %v, want ErrNoDomain", err)
	}
}
