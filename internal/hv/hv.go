// Package hv models the Xen hypervisor: domain lifecycle, vCPU scheduling
// onto physical cores, hypercall dispatch with per-domain whitelists, VIRQ
// routing, I/O-port and device assignment, and the snapshot/rollback
// primitives that the microreboot engine builds on.
//
// Every privileged operation takes the *caller's* domain ID and is checked
// against that domain's privilege set and its relationship to the target —
// this is the enforcement surface the paper's security argument rests on:
//
//   - a hypercall must be whitelisted for the caller (permit_hypercall);
//   - a management call must target a domain the caller controls: itself,
//     a domain whose parent toolstack it is, or a shard delegated to it
//     (allow_delegation);
//   - in the Xoar profile, grant and event-channel setup between two domains
//     is blocked unless one endpoint is a shard and the other is a client
//     the shard has been linked to (§5.6).
package hv

import (
	"fmt"

	"xoar/internal/evtchn"
	"xoar/internal/grant"
	"xoar/internal/hw"
	"xoar/internal/mm"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// SystemCaller is the pseudo-caller for operations performed by the
// hypervisor itself at boot (creating the first domain). It bypasses all
// checks, as ring-0 code does.
const SystemCaller = xtypes.DomID(0xFFFFFFF0)

// DomainState tracks a domain through its lifecycle.
type DomainState uint8

const (
	StateCreated DomainState = iota
	StateRunning
	StatePaused
	StateDead
)

func (s DomainState) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	default:
		return "dead"
	}
}

// DomainConfig describes a domain to create.
type DomainConfig struct {
	Name  string
	MemMB int
	VCPUs int
	// Shard marks the domain as a Xoar shard: the only kind of VM that may
	// receive extra privileges or serve IVC to guests.
	Shard bool
	// Critical marks a domain whose unexpected death is fatal to the host
	// (Dom0 in stock Xen). Xoar clears this even for Bootstrapper so it can
	// exit after boot (§5.8).
	Critical bool
	// OSImage names the kernel image the domain runs (for TCB accounting).
	OSImage string
}

// Privileges is a domain's assigned capability set, populated through the
// Figure 3.1 API (assign_pci_device / permit_hypercall / allow_delegation).
type Privileges struct {
	// Hypercalls whitelisted beyond the default unprivileged set.
	Hypercalls map[xtypes.Hypercall]bool
	// ControlAll short-circuits all target checks (monolithic Dom0 only).
	ControlAll bool
}

// Domain is a live virtual machine.
type Domain struct {
	ID    xtypes.DomID
	Name  string
	Cfg   DomainConfig
	Mem   *mm.DomainMem
	State DomainState

	priv Privileges
	// parentTool is the toolstack that built this domain and holds
	// VM-management rights over it (§5.6).
	parentTool xtypes.DomID
	// delegates are domains allowed to administer this shard
	// (allow_delegation).
	delegates map[xtypes.DomID]bool
	// privilegedFor lists domains this VM holds limited memory privileges
	// over (a QemuVM over its HVM guest).
	privilegedFor map[xtypes.DomID]bool
	// clients are guests allowed to consume this shard's service.
	clients map[xtypes.DomID]bool

	vcpu *sim.Resource

	// ioPorts are named port ranges the domain may touch ("console", "pci").
	ioPorts map[string]bool

	// ExitCode records why the domain died.
	ExitReason string
}

// Priv returns a copy of the domain's privilege set (read-only view).
func (d *Domain) Priv() Privileges {
	cp := Privileges{ControlAll: d.priv.ControlAll, Hypercalls: make(map[xtypes.Hypercall]bool, len(d.priv.Hypercalls))}
	for h := range d.priv.Hypercalls {
		cp.Hypercalls[h] = true
	}
	return cp
}

// IsShard reports whether the domain is a Xoar shard.
func (d *Domain) IsShard() bool { return d.Cfg.Shard }

// ParentTool returns the toolstack that owns this domain.
func (d *Domain) ParentTool() xtypes.DomID { return d.parentTool }

// Clients returns the guests linked to this shard, in unspecified order.
func (d *Domain) Clients() []xtypes.DomID {
	out := make([]xtypes.DomID, 0, len(d.clients))
	for c := range d.clients {
		out = append(out, c)
	}
	return out
}

// Delegates returns the domains holding delegated admin rights over d.
func (d *Domain) Delegates() []xtypes.DomID {
	out := make([]xtypes.DomID, 0, len(d.delegates))
	for c := range d.delegates {
		out = append(out, c)
	}
	return out
}

// Event is a lifecycle notification emitted to the audit sink.
type Event struct {
	Time sim.Time
	Kind string
	Dom  xtypes.DomID
	Arg  string
}

// Hypervisor is the platform's trust root.
type Hypervisor struct {
	Env     *sim.Env
	Machine *hw.Machine
	MM      *mm.Manager
	Evtchn  *evtchn.Table
	Grants  *grant.Table

	// EnforceShardIVC enables the Xoar policy that IVC endpoints must be
	// shard↔client pairs. Stock Xen leaves grant/evtchn setup unrestricted.
	EnforceShardIVC bool

	// CrashedHost is set when a critical domain died; the "machine" is down.
	CrashedHost bool

	// Sink receives lifecycle events; the audit log subscribes here.
	Sink func(Event)

	// Fault, when set, is consulted before the effects of fault-injectable
	// hypercalls (domain creation, snapshot rollback) are applied; a
	// non-nil return fails the call with that error. This is the test hook
	// for exercising the restart engine's half-recovered cleanup paths.
	Fault FaultFunc

	// OnDestroy hooks run after a domain is destroyed (XenStore cleanup,
	// driver teardown). Keyed by subscriber name for determinism in tests.
	onDestroy []func(xtypes.DomID)

	domains map[xtypes.DomID]*Domain
	nextID  xtypes.DomID

	cpuPool *sim.Resource
	quantum sim.Duration

	// virqRoutes maps hardware-sourced VIRQs to their recipient domain
	// (e.g. the console VIRQ to Dom0 or the Console Manager, §5.8).
	virqRoutes map[xtypes.VIRQ]xtypes.DomID

	// Counters for experiments.
	HypercallCount map[xtypes.Hypercall]int
	DeniedCalls    int
}

// New returns a hypervisor for machine.
func New(env *sim.Env, machine *hw.Machine) *Hypervisor {
	h := &Hypervisor{
		Env:            env,
		Machine:        machine,
		MM:             mm.NewManager(machine.RAMMB),
		Evtchn:         evtchn.NewTable(env),
		Grants:         grant.NewTable(),
		domains:        make(map[xtypes.DomID]*Domain),
		nextID:         0,
		cpuPool:        sim.NewResource(env, len(machine.CPUs)),
		quantum:        sim.Millisecond,
		virqRoutes:     make(map[xtypes.VIRQ]xtypes.DomID),
		HypercallCount: make(map[xtypes.Hypercall]int),
	}
	return h
}

func (h *Hypervisor) emit(kind string, dom xtypes.DomID, arg string) {
	if h.Sink != nil {
		h.Sink(Event{Time: h.Env.Now(), Kind: kind, Dom: dom, Arg: arg})
	}
}

// OnDestroy registers a teardown hook invoked after every domain destruction.
func (h *Hypervisor) OnDestroy(f func(xtypes.DomID)) { h.onDestroy = append(h.onDestroy, f) }

// FaultFunc decides whether a fault-injectable operation should fail.
// op names the operation ("domctl_create", "vm_rollback"); caller and
// target identify the hypercall parties (target is DomIDNone for creates,
// whose domain does not exist yet).
type FaultFunc func(op string, caller, target xtypes.DomID) error

// injectFault consults the installed fault injector, if any.
func (h *Hypervisor) injectFault(op string, caller, target xtypes.DomID) error {
	if h.Fault == nil {
		return nil
	}
	return h.Fault(op, caller, target)
}

// Domain looks up a live domain.
func (h *Hypervisor) Domain(id xtypes.DomID) (*Domain, error) {
	d, ok := h.domains[id]
	if !ok || d.State == StateDead {
		return nil, fmt.Errorf("hv: %v: %w", id, xtypes.ErrNoDomain)
	}
	return d, nil
}

// Domains lists live domains in creation order.
func (h *Hypervisor) Domains() []*Domain {
	var out []*Domain
	for id := xtypes.DomID(0); id < h.nextID; id++ {
		if d, ok := h.domains[id]; ok && d.State != StateDead {
			out = append(out, d)
		}
	}
	return out
}

// check verifies that caller may invoke hc at all.
func (h *Hypervisor) check(caller xtypes.DomID, hc xtypes.Hypercall) (*Domain, error) {
	h.HypercallCount[hc]++
	if caller == SystemCaller {
		return nil, nil
	}
	d, err := h.Domain(caller)
	if err != nil {
		return nil, err
	}
	if !hc.Privileged() {
		return d, nil
	}
	if d.priv.ControlAll || d.priv.Hypercalls[hc] {
		return d, nil
	}
	h.DeniedCalls++
	return nil, fmt.Errorf("hv: %v by %v(%s): %w", hc, caller, d.Name, xtypes.ErrPerm)
}

// controls reports whether caller holds management rights over target:
// itself, ControlAll, parent toolstack, explicit delegation, or a
// privileged-for relationship.
func (h *Hypervisor) controls(caller xtypes.DomID, target *Domain) bool {
	if caller == SystemCaller || caller == target.ID {
		return true
	}
	cd, err := h.Domain(caller)
	if err != nil {
		return false
	}
	if cd.priv.ControlAll {
		return true
	}
	if target.parentTool == caller {
		return true
	}
	if target.delegates[caller] {
		return true
	}
	if cd.privilegedFor[target.ID] {
		return true
	}
	return false
}

// --- lifecycle -------------------------------------------------------------

// CreateDomain creates a paused domain shell. Requires HyperDomctlCreate.
func (h *Hypervisor) CreateDomain(caller xtypes.DomID, cfg DomainConfig) (*Domain, error) {
	if _, err := h.check(caller, xtypes.HyperDomctlCreate); err != nil {
		return nil, err
	}
	if err := h.injectFault("domctl_create", caller, xtypes.DomIDNone); err != nil {
		return nil, fmt.Errorf("hv: create %q: %w", cfg.Name, err)
	}
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 1
	}
	id := h.nextID
	h.nextID++
	dmem, err := h.MM.CreateDomain(id, cfg.MemMB)
	if err != nil {
		h.nextID-- // roll the ID back so failed creates don't burn IDs
		return nil, err
	}
	d := &Domain{
		ID:            id,
		Name:          cfg.Name,
		Cfg:           cfg,
		Mem:           dmem,
		State:         StateCreated,
		priv:          Privileges{Hypercalls: make(map[xtypes.Hypercall]bool)},
		delegates:     make(map[xtypes.DomID]bool),
		privilegedFor: make(map[xtypes.DomID]bool),
		clients:       make(map[xtypes.DomID]bool),
		vcpu:          sim.NewResource(h.Env, cfg.VCPUs),
		ioPorts:       make(map[string]bool),
	}
	if caller != SystemCaller {
		if cd, err := h.Domain(caller); err == nil {
			d.parentTool = cd.ID
		}
	} else {
		d.parentTool = xtypes.DomIDNone
	}
	h.domains[id] = d
	h.Evtchn.AddDomain(id)
	h.Grants.AddDomain(id)
	h.emit("create", id, cfg.Name)
	return d, nil
}

// Unpause starts a created or paused domain.
func (h *Hypervisor) Unpause(caller, target xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDomctlUnpause); err != nil {
		return err
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: unpause %v by %v: %w", target, caller, xtypes.ErrPerm)
	}
	d.State = StateRunning
	h.emit("unpause", target, "")
	return nil
}

// Pause stops a running domain.
func (h *Hypervisor) Pause(caller, target xtypes.DomID) error {
	if _, err := h.check(caller, xtypes.HyperDomctlPause); err != nil {
		return err
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: pause %v by %v: %w", target, caller, xtypes.ErrPerm)
	}
	d.State = StatePaused
	h.emit("pause", target, "")
	return nil
}

// DestroyDomain tears a domain down: event channels close (peers observe
// breaks), grants die, foreign mappings are force-released, memory returns
// to the free pool, and destroy hooks run. If the domain was Critical the
// host crashes — the stock-Xen behaviour Xoar removes for its boot shards.
func (h *Hypervisor) DestroyDomain(caller, target xtypes.DomID, reason string) error {
	if _, err := h.check(caller, xtypes.HyperDomctlDestroy); err != nil {
		return err
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: destroy %v by %v: %w", target, caller, xtypes.ErrPerm)
	}
	return h.destroy(d, reason)
}

func (h *Hypervisor) destroy(d *Domain, reason string) error {
	d.State = StateDead
	d.ExitReason = reason
	h.Evtchn.RemoveDomain(d.ID)
	h.Grants.RemoveDomain(d.ID)
	h.MM.ForceReleaseMappings(d.ID)
	if err := h.MM.DestroyDomain(d.ID); err != nil {
		return err
	}
	delete(h.domains, d.ID)
	// Revoke VIRQ routes pointing at the dead domain.
	for v, dom := range h.virqRoutes {
		if dom == d.ID {
			delete(h.virqRoutes, v)
		}
	}
	// Release passthrough devices so a replacement driver domain can claim
	// them (in-place driver upgrade, §6.2).
	for _, dev := range h.Machine.Bus.Devices() {
		if h.Machine.Bus.AssignedTo(dev.Addr()) == d.ID {
			h.Machine.Bus.Unassign(dev.Addr())
		}
	}
	// A dead guest's shard-client links would dangle: close each shard's
	// exposure window over it exactly as an explicit unlink would, so the
	// audit log's interval index does not report the dead domain as a
	// dependent forever. Shards are visited in ID order for determinism.
	for id := xtypes.DomID(0); id < h.nextID; id++ {
		s, ok := h.domains[id]
		if !ok || !s.Cfg.Shard || !s.clients[d.ID] {
			continue
		}
		delete(s.clients, d.ID)
		h.emit("unlink-shard", s.ID, d.ID.String())
	}
	h.emit("destroy", d.ID, reason)
	for _, f := range h.onDestroy {
		f(d.ID)
	}
	if d.Cfg.Critical && reason != "shutdown" {
		// Stock Xen: a Dom0 failure is critical and reboots the system (§5.8).
		h.CrashedHost = true
		h.emit("host-crash", d.ID, "critical domain died: "+reason)
	}
	return nil
}

// SelfExit is a domain exiting voluntarily (Bootstrapper and PCIBack
// self-destruct after boot, §5.2/5.3). Never crashes the host — the one
// hypervisor modification §5.8 describes for letting boot components quit.
func (h *Hypervisor) SelfExit(caller xtypes.DomID) error {
	d, err := h.Domain(caller)
	if err != nil {
		return err
	}
	d.Cfg.Critical = false
	return h.destroy(d, "shutdown")
}

// SetMaxMem resizes a domain's reservation.
func (h *Hypervisor) SetMaxMem(caller, target xtypes.DomID, memMB int) error {
	if _, err := h.check(caller, xtypes.HyperDomctlMaxMem); err != nil {
		return err
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	if !h.controls(caller, d) {
		h.DeniedCalls++
		return fmt.Errorf("hv: setmaxmem %v by %v: %w", target, caller, xtypes.ErrPerm)
	}
	return h.MM.SetMaxMem(target, memMB)
}
