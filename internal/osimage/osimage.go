// Package osimage catalogs the kernel images components run on: nanOS,
// miniOS, and Linux variants. Each image carries the attributes the
// evaluation depends on — memory footprint (Table 6.1), boot-phase durations
// (Table 6.2), and source/compiled line counts for the TCB-size argument
// (§6.2) — plus the library of "known good images" the Builder is restricted
// to (§5.2).
package osimage

import (
	"fmt"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// Kind classifies an image's kernel.
type Kind uint8

const (
	// NanOS is the NSA's minimal single-threaded kernel: just enough to
	// build VMs. Small enough for static analysis (§5.7).
	NanOS Kind = iota
	// MiniOS is Xen's stub-domain environment: multithreaded, still tiny.
	MiniOS
	// Linux is a paravirtualized Linux (pvops) with a trimmed userspace.
	Linux
	// LinuxFull is the stock server distribution a monolithic Dom0 runs.
	LinuxFull
)

func (k Kind) String() string {
	switch k {
	case NanOS:
		return "nanOS"
	case MiniOS:
		return "miniOS"
	case Linux:
		return "linux"
	default:
		return "linux-full"
	}
}

// Image describes one bootable kernel+userspace image.
type Image struct {
	Name  string
	Kind  Kind
	MemMB int // default reservation, per Table 6.1

	// KernelBoot is time from domain start to kernel init complete.
	KernelBoot sim.Duration
	// ServiceBoot is time from kernel init to the component being ready to
	// serve (userspace bring-up, daemon start). Hardware init is separate
	// and charged by the component that performs it.
	ServiceBoot sim.Duration

	// SourceLoC / CompiledLoC support TCB accounting (§6.2).
	SourceLoC   int
	CompiledLoC int
}

// BootTime is the total software bring-up cost of the image.
func (im Image) BootTime() sim.Duration { return im.KernelBoot + im.ServiceBoot }

// Catalog is the Builder's library of known good images (§5.2): to avoid
// parsing user-provided data, the privileged Builder instantiates only
// images registered here; guest kernels outside the library boot through
// the bootloader image instead.
type Catalog struct {
	images map[string]Image
}

// Lookup finds an image by name.
func (c *Catalog) Lookup(name string) (Image, error) {
	im, ok := c.images[name]
	if !ok {
		return Image{}, fmt.Errorf("osimage: %q not in known-good library: %w", name, xtypes.ErrNotFound)
	}
	return im, nil
}

// Register adds an image to the library.
func (c *Catalog) Register(im Image) { c.images[im.Name] = im }

// Names lists registered image names (unordered).
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.images))
	for n := range c.images {
		out = append(out, n)
	}
	return out
}

// Component image names used throughout the platform.
const (
	ImgBootstrapper = "nanos-bootstrapper"
	ImgBuilder      = "nanos-builder"
	ImgXenStoreL    = "minios-xenstore-logic"
	ImgXenStoreS    = "minios-xenstore-state"
	ImgConsole      = "linux-console"
	ImgPCIBack      = "linux-pciback"
	ImgNetBack      = "linux-netback"
	ImgBlkBack      = "linux-blkback"
	ImgToolstack    = "linux-toolstack"
	ImgQemu         = "minios-qemu"
	ImgDom0         = "linux-dom0"
	ImgGuestPV      = "linux-guest-pv"
	ImgGuestHVM     = "linux-guest-hvm"
	ImgGuestMicro   = "nanos-guest-micro"
	ImgBootloader   = "minios-bootloader"
)

// DefaultCatalog returns the library used by both platform profiles. Memory
// figures are Table 6.1's; the Dom0 image uses XenServer's default 750MB.
// LoC figures follow §6.2: Linux 7.6M source / 400K compiled; the nanOS
// components total 13K/8K; miniOS sits between.
func DefaultCatalog() *Catalog {
	c := &Catalog{images: make(map[string]Image)}
	for _, im := range []Image{
		{Name: ImgBootstrapper, Kind: NanOS, MemMB: 32,
			KernelBoot: 120 * sim.Millisecond, ServiceBoot: 80 * sim.Millisecond,
			SourceLoC: 5_000, CompiledLoC: 3_000},
		{Name: ImgBuilder, Kind: NanOS, MemMB: 64,
			KernelBoot: 120 * sim.Millisecond, ServiceBoot: 180 * sim.Millisecond,
			SourceLoC: 8_000, CompiledLoC: 5_000},
		{Name: ImgXenStoreL, Kind: MiniOS, MemMB: 32,
			KernelBoot: 250 * sim.Millisecond, ServiceBoot: 250 * sim.Millisecond,
			SourceLoC: 32_000, CompiledLoC: 14_000},
		{Name: ImgXenStoreS, Kind: MiniOS, MemMB: 32,
			KernelBoot: 250 * sim.Millisecond, ServiceBoot: 150 * sim.Millisecond,
			SourceLoC: 30_000, CompiledLoC: 13_000},
		{Name: ImgConsole, Kind: Linux, MemMB: 128,
			// Skips PCI enumeration and jumps to I/O-port init (§5.5), so it
			// reaches a login prompt quickly.
			KernelBoot: 3500 * sim.Millisecond, ServiceBoot: 13400 * sim.Millisecond,
			SourceLoC: 7_600_000, CompiledLoC: 400_000},
		{Name: ImgPCIBack, Kind: Linux, MemMB: 256,
			KernelBoot: 4 * sim.Second, ServiceBoot: 5 * sim.Second,
			SourceLoC: 7_600_000, CompiledLoC: 400_000},
		{Name: ImgNetBack, Kind: Linux, MemMB: 128,
			KernelBoot: 4 * sim.Second, ServiceBoot: 3 * sim.Second,
			SourceLoC: 7_600_000, CompiledLoC: 400_000},
		{Name: ImgBlkBack, Kind: Linux, MemMB: 128,
			KernelBoot: 4 * sim.Second, ServiceBoot: 3 * sim.Second,
			SourceLoC: 7_600_000, CompiledLoC: 400_000},
		{Name: ImgToolstack, Kind: Linux, MemMB: 128,
			KernelBoot: 4 * sim.Second, ServiceBoot: 4 * sim.Second,
			SourceLoC: 7_600_000, CompiledLoC: 400_000},
		{Name: ImgQemu, Kind: MiniOS, MemMB: 64,
			KernelBoot: 250 * sim.Millisecond, ServiceBoot: 400 * sim.Millisecond,
			SourceLoC: 450_000, CompiledLoC: 180_000},
		{Name: ImgDom0, Kind: LinuxFull, MemMB: 750,
			// A full server userspace: sequential service bring-up dominates.
			KernelBoot: 9 * sim.Second, ServiceBoot: 15 * sim.Second,
			SourceLoC: 7_600_000, CompiledLoC: 400_000},
		{Name: ImgGuestPV, Kind: Linux, MemMB: 1024,
			KernelBoot: 4 * sim.Second, ServiceBoot: 9 * sim.Second,
			SourceLoC: 7_600_000, CompiledLoC: 400_000},
		{Name: ImgGuestHVM, Kind: Linux, MemMB: 1024,
			KernelBoot: 6 * sim.Second, ServiceBoot: 11 * sim.Second,
			SourceLoC: 7_600_000, CompiledLoC: 400_000},
		{Name: ImgGuestMicro, Kind: NanOS, MemMB: 64,
			// A unikernel-style serverless function image: single-purpose,
			// no userspace bring-up to speak of. Millisecond-class boot is
			// what makes thousands-per-second churn (Nanvix-style density)
			// feasible; the Builder's scrub and construct costs then dominate
			// the cold-start path.
			KernelBoot: 2 * sim.Millisecond, ServiceBoot: 2 * sim.Millisecond,
			SourceLoC: 15_000, CompiledLoC: 9_000},
		{Name: ImgBootloader, Kind: MiniOS, MemMB: 32,
			KernelBoot: 250 * sim.Millisecond, ServiceBoot: 500 * sim.Millisecond,
			SourceLoC: 20_000, CompiledLoC: 9_000},
	} {
		c.Register(im)
	}
	return c
}

// XenLoC is the hypervisor's own code size (§6.2), common to both profiles.
const (
	XenSourceLoC   = 280_000
	XenCompiledLoC = 70_000
)
