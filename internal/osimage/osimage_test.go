package osimage

import (
	"errors"
	"testing"

	"xoar/internal/xtypes"
)

func TestCatalogContainsAllComponents(t *testing.T) {
	c := DefaultCatalog()
	for _, name := range []string{
		ImgBootstrapper, ImgBuilder, ImgXenStoreL, ImgXenStoreS, ImgConsole,
		ImgPCIBack, ImgNetBack, ImgBlkBack, ImgToolstack, ImgQemu, ImgDom0,
		ImgGuestPV, ImgGuestHVM, ImgBootloader,
	} {
		if _, err := c.Lookup(name); err != nil {
			t.Errorf("missing image %q: %v", name, err)
		}
	}
}

func TestUnknownImageRejected(t *testing.T) {
	c := DefaultCatalog()
	if _, err := c.Lookup("user-supplied-kernel"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("unknown image: %v", err)
	}
}

// Table 6.1's memory figures must be encoded exactly.
func TestTable61MemoryFigures(t *testing.T) {
	c := DefaultCatalog()
	want := map[string]int{
		ImgXenStoreL: 32,
		ImgXenStoreS: 32,
		ImgConsole:   128,
		ImgPCIBack:   256,
		ImgNetBack:   128,
		ImgBlkBack:   128,
		ImgBuilder:   64,
		ImgToolstack: 128,
		ImgDom0:      750,
	}
	for name, mb := range want {
		im, err := c.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if im.MemMB != mb {
			t.Errorf("%s memory = %dMB, want %d", name, im.MemMB, mb)
		}
	}
}

// §6.2's TCB line counts: nanOS components total 13K source / 8K compiled;
// Dom0's Linux is 7.6M/400K; Xen itself 280K/70K.
func TestTCBLineCounts(t *testing.T) {
	c := DefaultCatalog()
	boot, _ := c.Lookup(ImgBootstrapper)
	build, _ := c.Lookup(ImgBuilder)
	if got := boot.SourceLoC + build.SourceLoC; got != 13_000 {
		t.Errorf("nanOS source LoC = %d, want 13000", got)
	}
	if got := boot.CompiledLoC + build.CompiledLoC; got != 8_000 {
		t.Errorf("nanOS compiled LoC = %d, want 8000", got)
	}
	dom0, _ := c.Lookup(ImgDom0)
	if dom0.SourceLoC != 7_600_000 || dom0.CompiledLoC != 400_000 {
		t.Errorf("dom0 LoC = %d/%d", dom0.SourceLoC, dom0.CompiledLoC)
	}
	if XenSourceLoC != 280_000 || XenCompiledLoC != 70_000 {
		t.Error("Xen LoC constants changed")
	}
}

func TestBootTimeComposition(t *testing.T) {
	c := DefaultCatalog()
	im, _ := c.Lookup(ImgNetBack)
	if im.BootTime() != im.KernelBoot+im.ServiceBoot {
		t.Fatal("BootTime is not the phase sum")
	}
	// nanOS images must boot orders of magnitude faster than Linux ones.
	nano, _ := c.Lookup(ImgBuilder)
	if nano.BootTime()*10 > im.BootTime() {
		t.Fatalf("nanOS boot %v vs linux %v", nano.BootTime(), im.BootTime())
	}
}

func TestKindString(t *testing.T) {
	if NanOS.String() != "nanOS" || MiniOS.String() != "miniOS" ||
		Linux.String() != "linux" || LinuxFull.String() != "linux-full" {
		t.Fatal("kind names wrong")
	}
}

func TestNames(t *testing.T) {
	c := DefaultCatalog()
	if len(c.Names()) != 15 {
		t.Fatalf("catalog size = %d", len(c.Names()))
	}
}
