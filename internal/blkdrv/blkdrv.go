// Package blkdrv implements the paravirtualized split block driver (§4.5.1,
// §5.4): BlkBack, a driver domain owning a physical disk controller and
// exposing virtual block devices (vbds) to guests, and BlkFront, the
// guest-side disk.
//
// The request path batches the way real blkback does: the worker drains
// whole bursts of descriptors per wakeup under one batch charge plus a
// per-descriptor increment, and the rings suppress notifies the peer did
// not arm. A vbd may carry N rings with segments striped across them
// (multi-queue, as in blk-mq over xen-blkfront) for NVMe-class devices.
//
// BlkBack also hosts the lightweight proxy daemon of §5.4: after the split
// from the Toolstack, guest disk images live with BlkBack, so Toolstack
// requests to create, delete or mount images are proxied to it rather than
// executed on local files.
package blkdrv

import (
	"fmt"

	"xoar/internal/hv"
	"xoar/internal/ring"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"

	hwpkg "xoar/internal/hw"
)

// Op is a block operation type.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// Req is one block request descriptor. Large transfers are segmented by the
// frontend into ring-sized requests, as real blkfront does.
type Req struct {
	Op         Op
	Bytes      int
	Sequential bool
	ID         int64
}

// Resp completes a request.
type Resp struct {
	ID  int64
	Err bool
}

// SegmentBytes is the largest single request (11 pages ≈ Xen's 44KB rounded
// to a power of two for modelling).
const SegmentBytes = 64 * 1024

// perBatchCPU is the fixed cost of one worker wakeup (event upcall,
// scheduling); perDescCPU is the per-descriptor cost of mapping segments
// and queueing. At batch size 1 they sum to the historical 20µs per-request
// charge, so unbatched traffic is priced exactly as before.
const (
	perBatchCPU = 2 * sim.Microsecond
	perDescCPU  = 18 * sim.Microsecond
)

// Image is a guest disk image held by BlkBack's proxy daemon.
type Image struct {
	Name   string
	SizeMB int
	InUse  bool
}

// vbdQueue is one request ring of a vbd.
type vbdQueue struct {
	id   int
	ring *ring.Ring[Req, Resp]
	proc *sim.Proc
}

// vbd is one guest's virtual block device.
type vbd struct {
	guest     xtypes.DomID
	queues    []*vbdQueue
	image     string
	connected bool
}

// Backend is BlkBack: one per physical disk controller.
type Backend struct {
	H    *hv.Hypervisor
	Dom  xtypes.DomID
	Disk *hwpkg.Disk
	XS   *xenstore.Conn

	vbds    map[xtypes.DomID]*vbd
	images  map[string]*Image
	serving *sim.Gate

	// CoLocated marks a backend sharing its domain with other busy services
	// (monolithic Dom0). Scheduling jitter between co-located services
	// breaks request merging, so a small fraction of sequential operations
	// pay a seek — the performance-isolation effect behind Figure 6.2's
	// combined net→disk result (§6.1.2).
	CoLocated bool

	CompletedReqs int64
	RestartCount  int

	// Pre-resolved telemetry handles indexed by Op; nil when disabled.
	rtt [3]*telemetry.Histogram
	// Batch-size histogram and notify split counters (DESIGN.md §8).
	batchSize             *telemetry.Histogram
	notifySentReq, supReq *telemetry.Counter
	notifySentRsp, supRsp *telemetry.Counter
}

// DataPathStats aggregates ring descriptor and notify-decision counters
// across every vbd queue. Req counts the frontends' request pushes, Resp
// the backend's completion pushes.
type DataPathStats struct {
	ReqDescs, ReqNotifies, ReqSuppressed    int64
	RespDescs, RespNotifies, RespSuppressed int64
}

// DataPathStats snapshots the aggregate ring counters.
func (b *Backend) DataPathStats() DataPathStats {
	var s DataPathStats
	for _, v := range b.vbds {
		for _, q := range v.queues {
			st := q.ring.Stats()
			s.ReqDescs += st.ReqPushed
			s.ReqNotifies += st.NotifiesToBack
			s.ReqSuppressed += st.SuppressedToBack
			s.RespDescs += st.RespPushed
			s.RespNotifies += st.NotifiesToFront
			s.RespSuppressed += st.SuppressedToFront
		}
	}
	return s
}

// SetAlwaysNotify switches every vbd ring between suppressed (default) and
// notify-per-push operation, for the per-descriptor ablation baseline.
func (b *Backend) SetAlwaysNotify(on bool) {
	for _, v := range b.vbds {
		for _, q := range v.queues {
			q.ring.AlwaysNotify = on
		}
	}
}

// SetMetrics attaches a telemetry registry (nil = disabled). The ring
// round-trip histograms measure, per request, the time from its batch being
// popped off the vbd ring to pushing its completion; the batch-size
// histogram counts descriptors per worker wakeup, and the notify counters
// split event signals sent versus suppressed per direction (DESIGN.md §8).
func (b *Backend) SetMetrics(reg *telemetry.Registry) {
	for op, name := range map[Op]string{OpRead: "read", OpWrite: "write", OpFlush: "flush"} {
		b.rtt[op] = reg.Histogram("blkback_ring_rtt_us", telemetry.LatencyUSBuckets, telemetry.L("op", name))
	}
	b.batchSize = reg.Histogram("blkback_batch_size", telemetry.DepthBuckets)
	b.notifySentReq = reg.Counter("blkback_notify_sent_total", telemetry.L("dir", "req"))
	b.supReq = reg.Counter("blkback_notify_suppressed_total", telemetry.L("dir", "req"))
	b.notifySentRsp = reg.Counter("blkback_notify_sent_total", telemetry.L("dir", "resp"))
	b.supRsp = reg.Counter("blkback_notify_suppressed_total", telemetry.L("dir", "resp"))
}

// coLocationJitter is the probability a sequential request loses its merge.
const coLocationJitter = 0.005

// NewBackend constructs BlkBack in domain dom, driving disk.
func NewBackend(h *hv.Hypervisor, dom xtypes.DomID, disk *hwpkg.Disk, xs *xenstore.Conn) *Backend {
	return &Backend{
		H:       h,
		Dom:     dom,
		Disk:    disk,
		XS:      xs,
		vbds:    make(map[xtypes.DomID]*vbd),
		images:  make(map[string]*Image),
		serving: sim.NewGate(h.Env),
	}
}

// Start initializes the disk controller and opens for service.
func (b *Backend) Start(p *sim.Proc) {
	if !b.Disk.Initialized() {
		b.Disk.Reset(p)
	}
	b.XS.Write(xenstore.TxNone, b.backendPath()+"/state", "connected")
	b.serving.Open()
}

// Name implements snapshot.Restartable.
func (b *Backend) Name() string { return "blkback" }

func (b *Backend) backendPath() string {
	return fmt.Sprintf("/local/domain/%d/backend/vbd", b.Dom)
}

// Serving reports whether the backend is accepting requests.
func (b *Backend) Serving() bool { return !b.serving.Closed() }

// --- image proxy daemon (§5.4) ---------------------------------------------

// CreateImage provisions a new disk image for a guest. Called by the
// Toolstack through its proxy channel.
func (b *Backend) CreateImage(name string, sizeMB int) error {
	if _, ok := b.images[name]; ok {
		return fmt.Errorf("blkback: image %q: %w", name, xtypes.ErrExists)
	}
	b.images[name] = &Image{Name: name, SizeMB: sizeMB}
	return nil
}

// DeleteImage removes an image not currently mounted.
func (b *Backend) DeleteImage(name string) error {
	img, ok := b.images[name]
	if !ok {
		return fmt.Errorf("blkback: image %q: %w", name, xtypes.ErrNotFound)
	}
	if img.InUse {
		return fmt.Errorf("blkback: image %q mounted: %w", name, xtypes.ErrInUse)
	}
	delete(b.images, name)
	return nil
}

// Images lists image names (unordered).
func (b *Backend) Images() []string {
	out := make([]string, 0, len(b.images))
	for n := range b.images {
		out = append(out, n)
	}
	return out
}

// --- vbd lifecycle ----------------------------------------------------------

// CreateVbd provisions a single-ring vbd for guest backed by the named
// image (the loopback mount now performed in BlkBack rather than Dom0, §5.4).
func (b *Backend) CreateVbd(guest xtypes.DomID, image string) error {
	return b.CreateVbdQueues(guest, image, 1)
}

// CreateVbdQueues provisions a vbd with n request rings. The frontend
// stripes segments across them; each ring gets its own worker, so a
// multi-queue vbd keeps an NVMe-class device's queue depth fed.
func (b *Backend) CreateVbdQueues(guest xtypes.DomID, image string, n int) error {
	img, ok := b.images[image]
	if !ok {
		return fmt.Errorf("blkback: vbd for %v: image %q: %w", guest, image, xtypes.ErrNotFound)
	}
	if img.InUse {
		return fmt.Errorf("blkback: image %q: %w", image, xtypes.ErrInUse)
	}
	if n < 1 {
		n = 1
	}
	img.InUse = true
	v := &vbd{guest: guest, image: image}
	for qi := 0; qi < n; qi++ {
		v.queues = append(v.queues, &vbdQueue{
			id:   qi,
			ring: ring.New[Req, Resp](b.H.Env, ring.DefaultSlots),
		})
	}
	b.vbds[guest] = v
	b.XS.Write(xenstore.TxNone, fmt.Sprintf("%s/%d/state", b.backendPath(), guest), "init")
	return nil
}

// RemoveVbd detaches a guest's vbd and releases its image.
func (b *Backend) RemoveVbd(guest xtypes.DomID) {
	v, ok := b.vbds[guest]
	if !ok {
		return
	}
	for _, q := range v.queues {
		if q.proc != nil {
			q.proc.Kill()
		}
		q.ring.Break()
	}
	if img, ok := b.images[v.image]; ok {
		img.InUse = false
	}
	delete(b.vbds, guest)
	b.XS.Rm(xenstore.TxNone, fmt.Sprintf("%s/%d", b.backendPath(), guest))
}

// queueRefPath is the advertisement key for queue qi; queue 0 keeps the
// legacy single-ring key.
func queueRefPath(guest xtypes.DomID, qi int) string {
	base := fmt.Sprintf("/local/domain/%d/device/vbd/0", guest)
	if qi == 0 {
		return base + "/ring-ref"
	}
	return fmt.Sprintf("%s/ring-ref-%d", base, qi)
}

// AcceptConnection completes the backend half of the handshake.
func (b *Backend) AcceptConnection(p *sim.Proc, guest xtypes.DomID) error {
	v, ok := b.vbds[guest]
	if !ok {
		return fmt.Errorf("blkback: no vbd for %v: %w", guest, xtypes.ErrNotFound)
	}
	for _, q := range v.queues {
		refStr, err := b.XS.Read(xenstore.TxNone, queueRefPath(guest, q.id))
		if err != nil {
			return err
		}
		var ref xtypes.GrantRef
		var port xtypes.Port
		if _, err := fmt.Sscanf(refStr, "%d/%d", &ref, &port); err != nil {
			return fmt.Errorf("blkback: bad ring-ref %q: %w", refStr, xtypes.ErrInvalid)
		}
		if _, err := b.H.MapGrant(b.Dom, guest, ref, true); err != nil {
			return err
		}
		if _, err := b.H.EvtchnBind(b.Dom, guest, port); err != nil {
			return err
		}
	}
	v.connected = true
	b.XS.Write(xenstore.TxNone, fmt.Sprintf("%s/%d/state", b.backendPath(), guest), "connected")
	b.startWorker(v)
	return nil
}

// WatchAndServe runs BlkBack's autonomous event loop, the blkback
// counterpart of netback's (§4.5.1): it watches for frontend vbd
// advertisements in XenStore and completes the handshake when one appears.
func (b *Backend) WatchAndServe(p *sim.Proc) {
	if err := b.XS.Watch("/local", "blkback-frontends"); err != nil {
		return
	}
	for {
		ev, ok := b.XS.WaitWatch(p)
		if !ok {
			return
		}
		var g uint32
		var rest string
		if n, _ := fmt.Sscanf(ev.Path, "/local/domain/%d/device/vbd/0/%s", &g, &rest); n != 2 || rest != "ring-ref" {
			continue
		}
		guest := xtypes.DomID(g)
		v, exists := b.vbds[guest]
		if !exists || v.connected {
			continue
		}
		if err := b.AcceptConnection(p, guest); err != nil {
			continue
		}
	}
}

// startWorker spawns the per-queue request-service loops. Each drains its
// ring in bursts: one batch charge plus a per-descriptor increment, disk
// ops in order, and a completion pushed as each finishes so the frontend
// refills without waiting for the whole batch (suppression elides the
// notifies the frontend did not arm).
func (b *Backend) startWorker(v *vbd) {
	for _, q := range v.queues {
		q := q
		q.proc = b.H.Env.Spawn(fmt.Sprintf("blkback-%v-q%d", v.guest, q.id), func(p *sim.Proc) {
			b.runWorker(q, p, make([]Req, ring.DefaultSlots))
		})
	}
}

// runWorker is one queue's request-service loop — the BlkBack data path.
// The descriptor buffer is allocated by startWorker once per worker
// lifetime; the loop itself must stay allocation-free.
//
//xoarlint:hot
func (b *Backend) runWorker(q *vbdQueue, p *sim.Proc, buf []Req) {
	var prev ring.Stats
	for {
		n, err := q.ring.PopRequestBatch(p, buf)
		if err != nil {
			return // broken: restart or teardown
		}
		start := p.Now()
		b.H.Compute(p, b.Dom, perBatchCPU+sim.Duration(n)*perDescCPU)
		b.batchSize.Observe(float64(n))
		for i := 0; i < n; i++ {
			req := buf[i]
			seq := req.Sequential
			if seq && b.CoLocated && b.H.Env.Rand().Float64() < coLocationJitter {
				seq = false
			}
			switch req.Op {
			case OpRead:
				b.Disk.Read(p, req.Bytes, seq)
			case OpWrite:
				b.Disk.Write(p, req.Bytes, seq)
			case OpFlush:
				b.Disk.Write(p, 0, false) // barrier: a seek-priced no-op
			}
			if q.ring.Broken() {
				return
			}
			q.ring.PushResponse(Resp{ID: req.ID})
			b.CompletedReqs++
			if int(req.Op) < len(b.rtt) {
				b.rtt[req.Op].Observe(float64(p.Now().Sub(start)) / float64(sim.Microsecond))
			}
		}
		cur := q.ring.Stats()
		b.notifySentReq.Add(cur.NotifiesToBack - prev.NotifiesToBack)
		b.supReq.Add(cur.SuppressedToBack - prev.SuppressedToBack)
		b.notifySentRsp.Add(cur.NotifiesToFront - prev.NotifiesToFront)
		b.supRsp.Add(cur.SuppressedToFront - prev.SuppressedToFront)
		prev = cur
	}
}

// Restart implements the microreboot recovery path, mirroring NetBack's.
func (b *Backend) Restart(p *sim.Proc, fast bool) {
	b.RestartCount++
	b.serving.Reset()
	for _, v := range b.vbds {
		for _, q := range v.queues {
			if q.proc != nil {
				q.proc.Kill()
				q.proc = nil
			}
			q.ring.Break()
		}
		v.connected = false
	}
	p.Sleep(60 * sim.Millisecond) // re-attach to controller state
	if fast {
		p.Sleep(80 * sim.Millisecond)
	} else {
		p.Sleep(200 * sim.Millisecond)
	}
	for _, v := range b.vbds {
		for _, q := range v.queues {
			q.ring.Reset()
		}
		v.connected = true
		b.startWorker(v)
	}
	b.serving.Open()
}

// restartableAdapter adapts Backend to snapshot.Restartable.
type restartableAdapter struct{ *Backend }

// Dom implements snapshot.Restartable.
func (a restartableAdapter) Dom() xtypes.DomID { return a.Backend.Dom }

// AsRestartable returns the snapshot.Restartable view of the backend.
func (b *Backend) AsRestartable() interface {
	Dom() xtypes.DomID
	Name() string
	Restart(p *sim.Proc, fast bool)
} {
	return restartableAdapter{b}
}

// --- frontend ---------------------------------------------------------------

// Frontend is BlkFront: the guest-side virtual disk.
type Frontend struct {
	H     *hv.Hypervisor
	Guest xtypes.DomID
	XS    *xenstore.Conn

	back   *Backend
	v      *vbd
	nextID int64

	BytesRead    int64
	BytesWritten int64
}

// NewFrontend constructs the guest-side driver.
func NewFrontend(h *hv.Hypervisor, guest xtypes.DomID, xs *xenstore.Conn) *Frontend {
	return &Frontend{H: h, Guest: guest, XS: xs}
}

// Connect performs the frontend half of the handshake: one ring page and
// event channel per queue, advertised in XenStore with the legacy key last.
func (f *Frontend) Connect(p *sim.Proc, back *Backend) error {
	f.back = back
	v, ok := back.vbds[f.Guest]
	if !ok {
		return fmt.Errorf("blkfront: backend has no vbd for %v: %w", f.Guest, xtypes.ErrNotFound)
	}
	f.v = v
	type adv struct{ path, val string }
	advs := make([]adv, 0, len(v.queues))
	for qi := range v.queues {
		// Ring pages from pfn 12 up (pfns 10/11 belong to the vif rings).
		ref, err := f.H.Grant(f.Guest, back.Dom, 12+xtypes.PFN(qi), false)
		if err != nil {
			return err
		}
		port, err := f.H.EvtchnAllocUnbound(f.Guest, back.Dom)
		if err != nil {
			return err
		}
		advs = append(advs, adv{queueRefPath(f.Guest, qi), fmt.Sprintf("%d/%d", ref, port)})
	}
	for i := len(advs) - 1; i >= 0; i-- {
		if err := f.XS.Write(xenstore.TxNone, advs[i].path, advs[i].val); err != nil {
			return err
		}
		if err := f.XS.SetPerms(advs[i].path, xenstore.Perms{Owner: f.Guest, Read: []xtypes.DomID{back.Dom}}); err != nil {
			return err
		}
	}
	if err := back.AcceptConnection(p, f.Guest); err != nil {
		return err
	}
	f.XS.Write(xenstore.TxNone, fmt.Sprintf("/local/domain/%d/device/vbd/0/state", f.Guest), "connected")
	return nil
}

// Connected reports whether the vbd is usable.
func (f *Frontend) Connected() bool {
	return f.v != nil && f.v.connected && !f.v.queues[0].ring.Broken()
}

// Queues reports the vbd's ring count.
func (f *Frontend) Queues() int {
	if f.v == nil {
		return 0
	}
	return len(f.v.queues)
}

// io issues one segmented, pipelined block operation and waits for all
// completions. Bytes are split into SegmentBytes requests striped across
// the vbd's queues, each filled to its slot count (queue depth = ring
// slots × queues), which is how real blkfront achieves disk bandwidth.
func (f *Frontend) io(p *sim.Proc, op Op, bytes int, sequential bool) error {
	if f.v == nil {
		return fmt.Errorf("blkfront: not connected: %w", xtypes.ErrInvalid)
	}
	queues := f.v.queues
	remaining := bytes
	segIdx := 0
	inflight := make([]int, len(queues))
	totalInflight := 0
	// A flush carries no payload but still issues one barrier request.
	pending := 1
	if bytes > 0 {
		pending = (bytes + SegmentBytes - 1) / SegmentBytes
	}
	for pending > 0 || totalInflight > 0 {
		if pending > 0 {
			qi := segIdx % len(queues)
			q := queues[qi]
			if !q.ring.Full() {
				seg := remaining
				if seg > SegmentBytes {
					seg = SegmentBytes
				}
				f.nextID++
				if !q.ring.TryPushRequest(Req{Op: op, Bytes: seg, Sequential: sequential, ID: f.nextID}) {
					return fmt.Errorf("blkfront: push failed: %w", xtypes.ErrShutdown)
				}
				remaining -= seg
				segIdx++
				pending--
				inflight[qi]++
				totalInflight++
				continue
			}
		}
		// Reap a completion: non-blocking scan first (multi-queue), then
		// block on the queue gating progress.
		reaped := false
		if len(queues) > 1 {
			for qi, q := range queues {
				if inflight[qi] == 0 {
					continue
				}
				if _, ok := q.ring.TryPopResponse(); ok {
					inflight[qi]--
					totalInflight--
					reaped = true
					break
				}
			}
			if reaped {
				continue
			}
		}
		blockQI := segIdx % len(queues)
		if pending == 0 || inflight[blockQI] == 0 {
			for qi := range queues {
				if inflight[qi] > 0 {
					blockQI = qi
					break
				}
			}
		}
		if _, err := queues[blockQI].ring.PopResponse(p); err != nil {
			return err
		}
		inflight[blockQI]--
		totalInflight--
	}
	switch op {
	case OpRead:
		f.BytesRead += int64(bytes)
	case OpWrite:
		f.BytesWritten += int64(bytes)
	}
	return nil
}

// Read performs a read of the given size.
func (f *Frontend) Read(p *sim.Proc, bytes int, sequential bool) error {
	return f.io(p, OpRead, bytes, sequential)
}

// Write performs a write of the given size.
func (f *Frontend) Write(p *sim.Proc, bytes int, sequential bool) error {
	return f.io(p, OpWrite, bytes, sequential)
}

// Flush issues a write barrier.
func (f *Frontend) Flush(p *sim.Proc) error { return f.io(p, OpFlush, 0, false) }

// WaitReconnect blocks until the backend finishes a microreboot, with the
// same polling model as netfront.
func (f *Frontend) WaitReconnect(p *sim.Proc, timeout sim.Duration) bool {
	deadline := f.H.Env.Now().Add(timeout)
	for f.H.Env.Now() < deadline {
		if f.Connected() {
			return true
		}
		p.Sleep(5 * sim.Millisecond)
	}
	return f.Connected()
}
