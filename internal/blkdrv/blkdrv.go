// Package blkdrv implements the paravirtualized split block driver (§4.5.1,
// §5.4): BlkBack, a driver domain owning a physical disk controller and
// exposing virtual block devices (vbds) to guests, and BlkFront, the
// guest-side disk.
//
// BlkBack also hosts the lightweight proxy daemon of §5.4: after the split
// from the Toolstack, guest disk images live with BlkBack, so Toolstack
// requests to create, delete or mount images are proxied to it rather than
// executed on local files.
package blkdrv

import (
	"fmt"

	"xoar/internal/hv"
	"xoar/internal/ring"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"

	hwpkg "xoar/internal/hw"
)

// Op is a block operation type.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// Req is one block request descriptor. Large transfers are segmented by the
// frontend into ring-sized requests, as real blkfront does.
type Req struct {
	Op         Op
	Bytes      int
	Sequential bool
	ID         int64
}

// Resp completes a request.
type Resp struct {
	ID  int64
	Err bool
}

// SegmentBytes is the largest single request (11 pages ≈ Xen's 44KB rounded
// to a power of two for modelling).
const SegmentBytes = 64 * 1024

// perReqCPU is backend CPU per request: mapping segments, queueing.
const perReqCPU = 20 * sim.Microsecond

// Image is a guest disk image held by BlkBack's proxy daemon.
type Image struct {
	Name   string
	SizeMB int
	InUse  bool
}

// vbd is one guest's virtual block device.
type vbd struct {
	guest     xtypes.DomID
	ring      *ring.Ring[Req, Resp]
	image     string
	proc      *sim.Proc
	connected bool
}

// Backend is BlkBack: one per physical disk controller.
type Backend struct {
	H    *hv.Hypervisor
	Dom  xtypes.DomID
	Disk *hwpkg.Disk
	XS   *xenstore.Conn

	vbds    map[xtypes.DomID]*vbd
	images  map[string]*Image
	serving *sim.Gate

	// CoLocated marks a backend sharing its domain with other busy services
	// (monolithic Dom0). Scheduling jitter between co-located services
	// breaks request merging, so a small fraction of sequential operations
	// pay a seek — the performance-isolation effect behind Figure 6.2's
	// combined net→disk result (§6.1.2).
	CoLocated bool

	CompletedReqs int64
	RestartCount  int

	// Pre-resolved telemetry handles indexed by Op; nil when disabled.
	rtt [3]*telemetry.Histogram
}

// SetMetrics attaches a telemetry registry (nil = disabled). The ring
// round-trip histograms measure, per request, the time from popping the
// descriptor off the vbd ring to pushing its completion.
func (b *Backend) SetMetrics(reg *telemetry.Registry) {
	for op, name := range map[Op]string{OpRead: "read", OpWrite: "write", OpFlush: "flush"} {
		b.rtt[op] = reg.Histogram("blkback_ring_rtt_us", telemetry.LatencyUSBuckets, telemetry.L("op", name))
	}
}

// coLocationJitter is the probability a sequential request loses its merge.
const coLocationJitter = 0.005

// NewBackend constructs BlkBack in domain dom, driving disk.
func NewBackend(h *hv.Hypervisor, dom xtypes.DomID, disk *hwpkg.Disk, xs *xenstore.Conn) *Backend {
	return &Backend{
		H:       h,
		Dom:     dom,
		Disk:    disk,
		XS:      xs,
		vbds:    make(map[xtypes.DomID]*vbd),
		images:  make(map[string]*Image),
		serving: sim.NewGate(h.Env),
	}
}

// Start initializes the disk controller and opens for service.
func (b *Backend) Start(p *sim.Proc) {
	if !b.Disk.Initialized() {
		b.Disk.Reset(p)
	}
	b.XS.Write(xenstore.TxNone, b.backendPath()+"/state", "connected")
	b.serving.Open()
}

// Name implements snapshot.Restartable.
func (b *Backend) Name() string { return "blkback" }

func (b *Backend) backendPath() string {
	return fmt.Sprintf("/local/domain/%d/backend/vbd", b.Dom)
}

// Serving reports whether the backend is accepting requests.
func (b *Backend) Serving() bool { return !b.serving.Closed() }

// --- image proxy daemon (§5.4) ---------------------------------------------

// CreateImage provisions a new disk image for a guest. Called by the
// Toolstack through its proxy channel.
func (b *Backend) CreateImage(name string, sizeMB int) error {
	if _, ok := b.images[name]; ok {
		return fmt.Errorf("blkback: image %q: %w", name, xtypes.ErrExists)
	}
	b.images[name] = &Image{Name: name, SizeMB: sizeMB}
	return nil
}

// DeleteImage removes an image not currently mounted.
func (b *Backend) DeleteImage(name string) error {
	img, ok := b.images[name]
	if !ok {
		return fmt.Errorf("blkback: image %q: %w", name, xtypes.ErrNotFound)
	}
	if img.InUse {
		return fmt.Errorf("blkback: image %q mounted: %w", name, xtypes.ErrInUse)
	}
	delete(b.images, name)
	return nil
}

// Images lists image names (unordered).
func (b *Backend) Images() []string {
	out := make([]string, 0, len(b.images))
	for n := range b.images {
		out = append(out, n)
	}
	return out
}

// --- vbd lifecycle ----------------------------------------------------------

// CreateVbd provisions a vbd for guest backed by the named image (the
// loopback mount now performed in BlkBack rather than Dom0, §5.4).
func (b *Backend) CreateVbd(guest xtypes.DomID, image string) error {
	img, ok := b.images[image]
	if !ok {
		return fmt.Errorf("blkback: vbd for %v: image %q: %w", guest, image, xtypes.ErrNotFound)
	}
	if img.InUse {
		return fmt.Errorf("blkback: image %q: %w", image, xtypes.ErrInUse)
	}
	img.InUse = true
	b.vbds[guest] = &vbd{
		guest: guest,
		ring:  ring.New[Req, Resp](b.H.Env, ring.DefaultSlots),
		image: image,
	}
	b.XS.Write(xenstore.TxNone, fmt.Sprintf("%s/%d/state", b.backendPath(), guest), "init")
	return nil
}

// RemoveVbd detaches a guest's vbd and releases its image.
func (b *Backend) RemoveVbd(guest xtypes.DomID) {
	v, ok := b.vbds[guest]
	if !ok {
		return
	}
	if v.proc != nil {
		v.proc.Kill()
	}
	v.ring.Break()
	if img, ok := b.images[v.image]; ok {
		img.InUse = false
	}
	delete(b.vbds, guest)
	b.XS.Rm(xenstore.TxNone, fmt.Sprintf("%s/%d", b.backendPath(), guest))
}

// AcceptConnection completes the backend half of the handshake.
func (b *Backend) AcceptConnection(p *sim.Proc, guest xtypes.DomID) error {
	v, ok := b.vbds[guest]
	if !ok {
		return fmt.Errorf("blkback: no vbd for %v: %w", guest, xtypes.ErrNotFound)
	}
	refStr, err := b.XS.Read(xenstore.TxNone, fmt.Sprintf("/local/domain/%d/device/vbd/0/ring-ref", guest))
	if err != nil {
		return err
	}
	var ref xtypes.GrantRef
	var port xtypes.Port
	if _, err := fmt.Sscanf(refStr, "%d/%d", &ref, &port); err != nil {
		return fmt.Errorf("blkback: bad ring-ref %q: %w", refStr, xtypes.ErrInvalid)
	}
	if _, err := b.H.MapGrant(b.Dom, guest, ref, true); err != nil {
		return err
	}
	if _, err := b.H.EvtchnBind(b.Dom, guest, port); err != nil {
		return err
	}
	v.connected = true
	b.XS.Write(xenstore.TxNone, fmt.Sprintf("%s/%d/state", b.backendPath(), guest), "connected")
	b.startWorker(v)
	return nil
}

// WatchAndServe runs BlkBack's autonomous event loop, the blkback
// counterpart of netback's (§4.5.1): it watches for frontend vbd
// advertisements in XenStore and completes the handshake when one appears.
func (b *Backend) WatchAndServe(p *sim.Proc) {
	if err := b.XS.Watch("/local", "blkback-frontends"); err != nil {
		return
	}
	for {
		ev, ok := b.XS.WaitWatch(p)
		if !ok {
			return
		}
		var g uint32
		var rest string
		if n, _ := fmt.Sscanf(ev.Path, "/local/domain/%d/device/vbd/0/%s", &g, &rest); n != 2 || rest != "ring-ref" {
			continue
		}
		guest := xtypes.DomID(g)
		v, exists := b.vbds[guest]
		if !exists || v.connected {
			continue
		}
		if err := b.AcceptConnection(p, guest); err != nil {
			continue
		}
	}
}

// startWorker spawns the per-vbd request-service loop.
func (b *Backend) startWorker(v *vbd) {
	v.proc = b.H.Env.Spawn(fmt.Sprintf("blkback-%v", v.guest), func(p *sim.Proc) {
		for {
			req, err := v.ring.PopRequest(p)
			if err != nil {
				return // broken: restart or teardown
			}
			start := p.Now()
			b.H.Compute(p, b.Dom, perReqCPU)
			seq := req.Sequential
			if seq && b.CoLocated && b.H.Env.Rand().Float64() < coLocationJitter {
				seq = false
			}
			switch req.Op {
			case OpRead:
				b.Disk.Read(p, req.Bytes, seq)
			case OpWrite:
				b.Disk.Write(p, req.Bytes, seq)
			case OpFlush:
				b.Disk.Write(p, 0, false) // barrier: a seek-priced no-op
			}
			if v.ring.Broken() {
				return
			}
			v.ring.PushResponse(Resp{ID: req.ID})
			b.CompletedReqs++
			if int(req.Op) < len(b.rtt) {
				b.rtt[req.Op].Observe(float64(p.Now().Sub(start)) / float64(sim.Microsecond))
			}
		}
	})
}

// Restart implements the microreboot recovery path, mirroring NetBack's.
func (b *Backend) Restart(p *sim.Proc, fast bool) {
	b.RestartCount++
	b.serving.Reset()
	for _, v := range b.vbds {
		if v.proc != nil {
			v.proc.Kill()
			v.proc = nil
		}
		v.ring.Break()
		v.connected = false
	}
	p.Sleep(60 * sim.Millisecond) // re-attach to controller state
	if fast {
		p.Sleep(80 * sim.Millisecond)
	} else {
		p.Sleep(200 * sim.Millisecond)
	}
	for _, v := range b.vbds {
		v.ring.Reset()
		v.connected = true
		b.startWorker(v)
	}
	b.serving.Open()
}

// restartableAdapter adapts Backend to snapshot.Restartable.
type restartableAdapter struct{ *Backend }

// Dom implements snapshot.Restartable.
func (a restartableAdapter) Dom() xtypes.DomID { return a.Backend.Dom }

// AsRestartable returns the snapshot.Restartable view of the backend.
func (b *Backend) AsRestartable() interface {
	Dom() xtypes.DomID
	Name() string
	Restart(p *sim.Proc, fast bool)
} {
	return restartableAdapter{b}
}

// --- frontend ---------------------------------------------------------------

// Frontend is BlkFront: the guest-side virtual disk.
type Frontend struct {
	H     *hv.Hypervisor
	Guest xtypes.DomID
	XS    *xenstore.Conn

	back   *Backend
	v      *vbd
	nextID int64

	BytesRead    int64
	BytesWritten int64
}

// NewFrontend constructs the guest-side driver.
func NewFrontend(h *hv.Hypervisor, guest xtypes.DomID, xs *xenstore.Conn) *Frontend {
	return &Frontend{H: h, Guest: guest, XS: xs}
}

// Connect performs the frontend half of the handshake.
func (f *Frontend) Connect(p *sim.Proc, back *Backend) error {
	f.back = back
	v, ok := back.vbds[f.Guest]
	if !ok {
		return fmt.Errorf("blkfront: backend has no vbd for %v: %w", f.Guest, xtypes.ErrNotFound)
	}
	f.v = v
	ref, err := f.H.Grant(f.Guest, back.Dom, 12, false)
	if err != nil {
		return err
	}
	port, err := f.H.EvtchnAllocUnbound(f.Guest, back.Dom)
	if err != nil {
		return err
	}
	refPath := fmt.Sprintf("/local/domain/%d/device/vbd/0/ring-ref", f.Guest)
	if err := f.XS.Write(xenstore.TxNone, refPath, fmt.Sprintf("%d/%d", ref, port)); err != nil {
		return err
	}
	if err := f.XS.SetPerms(refPath, xenstore.Perms{Owner: f.Guest, Read: []xtypes.DomID{back.Dom}}); err != nil {
		return err
	}
	if err := back.AcceptConnection(p, f.Guest); err != nil {
		return err
	}
	f.XS.Write(xenstore.TxNone, fmt.Sprintf("/local/domain/%d/device/vbd/0/state", f.Guest), "connected")
	return nil
}

// Connected reports whether the vbd is usable.
func (f *Frontend) Connected() bool { return f.v != nil && f.v.connected && !f.v.ring.Broken() }

// io issues one segmented, pipelined block operation and waits for all
// completions. Bytes are split into SegmentBytes requests that fill the ring
// (queue depth = ring slots), which is how real blkfront achieves disk
// bandwidth.
func (f *Frontend) io(p *sim.Proc, op Op, bytes int, sequential bool) error {
	if f.v == nil {
		return fmt.Errorf("blkfront: not connected: %w", xtypes.ErrInvalid)
	}
	remaining := bytes
	inflight := 0
	// A flush carries no payload but still issues one barrier request.
	pending := 1
	if bytes > 0 {
		pending = (bytes + SegmentBytes - 1) / SegmentBytes
	}
	for pending > 0 || inflight > 0 {
		if pending > 0 && !f.v.ring.Full() {
			seg := remaining
			if seg > SegmentBytes {
				seg = SegmentBytes
			}
			f.nextID++
			if !f.v.ring.TryPushRequest(Req{Op: op, Bytes: seg, Sequential: sequential, ID: f.nextID}) {
				return fmt.Errorf("blkfront: push failed: %w", xtypes.ErrShutdown)
			}
			remaining -= seg
			pending--
			inflight++
			continue
		}
		if _, err := f.v.ring.PopResponse(p); err != nil {
			return err
		}
		inflight--
	}
	switch op {
	case OpRead:
		f.BytesRead += int64(bytes)
	case OpWrite:
		f.BytesWritten += int64(bytes)
	}
	return nil
}

// Read performs a read of the given size.
func (f *Frontend) Read(p *sim.Proc, bytes int, sequential bool) error {
	return f.io(p, OpRead, bytes, sequential)
}

// Write performs a write of the given size.
func (f *Frontend) Write(p *sim.Proc, bytes int, sequential bool) error {
	return f.io(p, OpWrite, bytes, sequential)
}

// Flush issues a write barrier.
func (f *Frontend) Flush(p *sim.Proc) error { return f.io(p, OpFlush, 0, false) }

// WaitReconnect blocks until the backend finishes a microreboot, with the
// same polling model as netfront.
func (f *Frontend) WaitReconnect(p *sim.Proc, timeout sim.Duration) bool {
	deadline := f.H.Env.Now().Add(timeout)
	for f.H.Env.Now() < deadline {
		if f.Connected() {
			return true
		}
		p.Sleep(5 * sim.Millisecond)
	}
	return f.Connected()
}
