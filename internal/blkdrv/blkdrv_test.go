package blkdrv

import (
	"errors"
	"testing"

	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

type harness struct {
	env   *sim.Env
	h     *hv.Hypervisor
	back  *Backend
	front *Frontend
	guest *hv.Domain
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	env := sim.NewEnv(1)
	machine := hw.NewMachine(env)
	h := hv.New(env, machine)
	h.EnforceShardIVC = true

	bb, err := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "blkback", MemMB: 128, Shard: true})
	if err != nil {
		t.Fatal(err)
	}
	h.Unpause(hv.SystemCaller, bb.ID)
	guest, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "guest", MemMB: 256})
	h.Unpause(hv.SystemCaller, guest.ID)
	h.LinkShardClient(hv.SystemCaller, bb.ID, guest.ID)

	logic := xenstore.NewLogic(env, xenstore.NewState())
	back := NewBackend(h, bb.ID, machine.Disks()[0], logic.Connect(bb.ID, true))
	front := NewFrontend(h, guest.ID, logic.Connect(guest.ID, true))
	return &harness{env: env, h: h, back: back, front: front, guest: guest}
}

func (hn *harness) boot(t *testing.T) {
	t.Helper()
	ok := false
	hn.env.Spawn("boot", func(p *sim.Proc) {
		hn.back.Start(p)
		if err := hn.back.CreateImage("guest-disk", 15*1024); err != nil {
			t.Error(err)
			return
		}
		if err := hn.back.CreateVbd(hn.guest.ID, "guest-disk"); err != nil {
			t.Error(err)
			return
		}
		if err := hn.front.Connect(p, hn.back); err != nil {
			t.Error(err)
			return
		}
		ok = true
	})
	hn.env.RunFor(10 * sim.Second)
	if !ok {
		t.Fatal("boot failed")
	}
}

func TestImageProxy(t *testing.T) {
	hn := newHarness(t)
	hn.boot(t)
	if err := hn.back.CreateImage("guest-disk", 10); !errors.Is(err, xtypes.ErrExists) {
		t.Fatalf("duplicate image: %v", err)
	}
	// Mounted image cannot be deleted.
	if err := hn.back.DeleteImage("guest-disk"); !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("delete mounted: %v", err)
	}
	hn.back.CreateImage("spare", 10)
	if err := hn.back.DeleteImage("spare"); err != nil {
		t.Fatal(err)
	}
	if err := hn.back.DeleteImage("spare"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	hn.env.Shutdown()
}

func TestVbdRequiresImage(t *testing.T) {
	hn := newHarness(t)
	if err := hn.back.CreateVbd(hn.guest.ID, "nope"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("vbd without image: %v", err)
	}
	hn.env.Shutdown()
}

func TestImageSingleMount(t *testing.T) {
	hn := newHarness(t)
	hn.boot(t)
	other, _ := hn.h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "other", MemMB: 64})
	hn.h.Unpause(hv.SystemCaller, other.ID)
	if err := hn.back.CreateVbd(other.ID, "guest-disk"); !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("double mount: %v", err)
	}
	hn.env.Shutdown()
}

func TestSequentialWriteBandwidth(t *testing.T) {
	hn := newHarness(t)
	hn.boot(t)
	const size = 110_000_000 // ~1s at disk bandwidth
	var elapsed float64
	hn.env.Spawn("app", func(p *sim.Proc) {
		t0 := p.Now()
		if err := hn.front.Write(p, size, true); err != nil {
			t.Error(err)
			return
		}
		elapsed = p.Now().Sub(t0).Seconds()
	})
	hn.env.RunFor(30 * sim.Second)
	hn.env.Shutdown()
	tput := float64(size) / elapsed / 1e6
	// Pipelined segments should reach near raw disk bandwidth.
	if tput < 95 || tput > 115 {
		t.Fatalf("throughput = %.1f MB/s", tput)
	}
	if hn.front.BytesWritten != size {
		t.Fatalf("bytes written = %d", hn.front.BytesWritten)
	}
}

func TestRandomReadsPaySeeks(t *testing.T) {
	hn := newHarness(t)
	hn.boot(t)
	var elapsed float64
	const ops = 50
	hn.env.Spawn("app", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < ops; i++ {
			if err := hn.front.Read(p, 4096, false); err != nil {
				t.Error(err)
				return
			}
		}
		elapsed = p.Now().Sub(t0).Seconds()
	})
	hn.env.RunFor(30 * sim.Second)
	hn.env.Shutdown()
	// 50 random 4K reads at ~8ms seek each ≈ 0.4s.
	if elapsed < 0.35 || elapsed > 0.6 {
		t.Fatalf("50 random reads took %.3fs", elapsed)
	}
}

func TestRestartBreaksAndRecovers(t *testing.T) {
	hn := newHarness(t)
	hn.boot(t)
	var recovered bool
	hn.env.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if err := hn.front.Write(p, SegmentBytes, true); err != nil {
				if !hn.front.WaitReconnect(p, 5*sim.Second) {
					t.Error("reconnect failed")
					return
				}
				recovered = true
			}
		}
	})
	hn.env.Spawn("restarter", func(p *sim.Proc) {
		p.Sleep(20 * sim.Millisecond)
		hn.back.Restart(p, false)
	})
	hn.env.RunFor(30 * sim.Second)
	hn.env.Shutdown()
	if !recovered {
		t.Fatal("frontend never saw the restart")
	}
	if hn.back.RestartCount != 1 {
		t.Fatalf("restarts = %d", hn.back.RestartCount)
	}
}

func TestFlushBarrier(t *testing.T) {
	hn := newHarness(t)
	hn.boot(t)
	hn.env.Spawn("app", func(p *sim.Proc) {
		if err := hn.front.Flush(p); err != nil {
			t.Error(err)
		}
	})
	hn.env.RunFor(5 * sim.Second)
	hn.env.Shutdown()
	if hn.back.CompletedReqs != 1 {
		t.Fatalf("completed = %d", hn.back.CompletedReqs)
	}
}

func TestRemoveVbdReleasesImage(t *testing.T) {
	hn := newHarness(t)
	hn.boot(t)
	hn.back.RemoveVbd(hn.guest.ID)
	if err := hn.back.DeleteImage("guest-disk"); err != nil {
		t.Fatalf("delete after unmount: %v", err)
	}
	hn.env.Shutdown()
}

// A 4-ring vbd stripes segments across its rings and completes a large
// transfer; the worker batches keep descriptors-per-wakeup well above one.
func TestMultiQueueVbdStriping(t *testing.T) {
	hn := newHarness(t)
	ok := false
	hn.env.Spawn("boot", func(p *sim.Proc) {
		hn.back.Start(p)
		if err := hn.back.CreateImage("guest-disk", 15*1024); err != nil {
			t.Error(err)
			return
		}
		if err := hn.back.CreateVbdQueues(hn.guest.ID, "guest-disk", 4); err != nil {
			t.Error(err)
			return
		}
		if err := hn.front.Connect(p, hn.back); err != nil {
			t.Error(err)
			return
		}
		if hn.front.Queues() != 4 {
			t.Errorf("queues = %d", hn.front.Queues())
		}
		const bytes = 16 * 1024 * 1024
		if err := hn.front.Read(p, bytes, true); err != nil {
			t.Error(err)
			return
		}
		ok = true
	})
	hn.env.RunFor(120 * sim.Second)
	if !ok {
		t.Fatal("striped read did not complete")
	}
	want := int64(16 * 1024 * 1024 / SegmentBytes)
	if hn.back.CompletedReqs != want {
		t.Fatalf("completed %d/%d", hn.back.CompletedReqs, want)
	}
	// Every ring must have carried descriptors.
	for qi, q := range hn.back.vbds[hn.guest.ID].queues {
		if q.ring.Stats().ReqPushed == 0 {
			t.Fatalf("queue %d idle", qi)
		}
	}
}

// Deep pipelined IO amortizes notifies: the frontend keeps the ring full
// while the worker is disk-bound, so request pushes are suppressed.
func TestBlkBatchingAmortizesNotifies(t *testing.T) {
	hn := newHarness(t)
	hn.boot(t)
	done := false
	hn.env.Spawn("io", func(p *sim.Proc) {
		if err := hn.front.Read(p, 32*1024*1024, true); err != nil {
			t.Error(err)
			return
		}
		done = true
	})
	hn.env.RunFor(600 * sim.Second)
	if !done {
		t.Fatal("read did not complete")
	}
	st := hn.back.DataPathStats()
	if st.ReqDescs == 0 || st.ReqNotifies == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if ratio := float64(st.ReqDescs) / float64(st.ReqNotifies); ratio < 4 {
		t.Fatalf("%.1f request descs per notify, want >= 4", ratio)
	}
}
