package seceval

import (
	"xoar/internal/capability"
	"xoar/internal/xtypes"
)

// Hypervisor split analysis — the §7.1 future-work item: "splitting the
// hypervisor into a privileged and non-privileged component, which run in
// different hardware protection rings." Operations like guest page-table
// updates, I/O-port management and trap-and-emulate genuinely need ring-0;
// domain management, profiling and tracing do not. The classification itself
// lives in internal/capability — it is an input to the generated capability
// manifests, and the exhaustiveness test there keeps it total — this file
// computes how much of the surface a split hypervisor would move out of
// ring 0.

// RingRequirement classifies one hypercall's hardware-privilege need.
type RingRequirement = capability.Ring

const (
	Ring0        = capability.Ring0
	Deprivileged = capability.Deprivileged
)

// HVSplitReport summarizes the split.
type HVSplitReport struct {
	Ring0Calls        []xtypes.Hypercall
	DeprivilegedCalls []xtypes.Hypercall
	// Traffic splits observed hypercall invocations by requirement, when
	// invocation counts are supplied.
	Ring0Traffic        int
	DeprivilegedTraffic int
}

// HVSplit classifies the full hypercall surface and, given observed
// invocation counts (hv.HypercallCount), the runtime traffic each half of a
// split hypervisor would carry.
func HVSplit(counts map[xtypes.Hypercall]int) HVSplitReport {
	var rep HVSplitReport
	for h := xtypes.Hypercall(0); h < xtypes.NumHypercalls; h++ {
		req, ok := capability.RingOf(h)
		if !ok {
			req = Ring0 // unclassified calls stay privileged, conservatively
		}
		if req == Ring0 {
			rep.Ring0Calls = append(rep.Ring0Calls, h)
			rep.Ring0Traffic += counts[h]
		} else {
			rep.DeprivilegedCalls = append(rep.DeprivilegedCalls, h)
			rep.DeprivilegedTraffic += counts[h]
		}
	}
	return rep
}
