package seceval

import "xoar/internal/xtypes"

// Hypervisor split analysis — the §7.1 future-work item: "splitting the
// hypervisor into a privileged and non-privileged component, which run in
// different hardware protection rings." Operations like guest page-table
// updates, I/O-port management and trap-and-emulate genuinely need ring-0;
// domain management, profiling and tracing do not. This file classifies the
// model's hypercall surface accordingly and computes how much of it a split
// hypervisor would move out of ring 0.

// RingRequirement classifies one hypercall's hardware-privilege need.
type RingRequirement uint8

const (
	// Ring0 operations manipulate hardware state directly: page tables,
	// interrupt routing, I/O ports, device assignment.
	Ring0 RingRequirement = iota
	// Deprivileged operations "function correctly even when run in a lower
	// privileged hardware protection domain" (§7.1): domain management,
	// registry plumbing, profiling, policy bookkeeping.
	Deprivileged
)

// ringRequirement is the per-hypercall classification.
var ringRequirement = map[xtypes.Hypercall]RingRequirement{
	// Ring-0: memory, interrupts, ports, devices, snapshots of memory.
	xtypes.HyperMapForeign:      Ring0,
	xtypes.HyperGrantTableOp:    Ring0,
	xtypes.HyperEvtchnOp:        Ring0,
	xtypes.HyperPhysdevOp:       Ring0,
	xtypes.HyperAssignDevice:    Ring0,
	xtypes.HyperSetVIRQ:         Ring0,
	xtypes.HyperIOPortAccess:    Ring0,
	xtypes.HyperVMSnapshot:      Ring0,
	xtypes.HyperVMRollback:      Ring0,
	xtypes.HyperMemoryOpOwn:     Ring0,
	xtypes.HyperSetTimerOp:      Ring0,
	xtypes.HyperVCPUOp:          Ring0,
	xtypes.HyperDebugOp:         Ring0,
	xtypes.HyperSchedOp:         Ring0,
	xtypes.HyperConsoleIO:       Ring0,
	xtypes.HyperReadConsoleRing: Ring0,

	// Deprivilegeable: management-plane calls whose work is bookkeeping.
	xtypes.HyperDomctlCreate:     Deprivileged,
	xtypes.HyperDomctlDestroy:    Deprivileged,
	xtypes.HyperDomctlPause:      Deprivileged,
	xtypes.HyperDomctlUnpause:    Deprivileged,
	xtypes.HyperDomctlMaxMem:     Deprivileged,
	xtypes.HyperDomctlPriv:       Deprivileged,
	xtypes.HyperDelegateAdmin:    Deprivileged,
	xtypes.HyperSetParentTool:    Deprivileged,
	xtypes.HyperSetRestartPolicy: Deprivileged,
	xtypes.HyperProfilingOp:      Deprivileged,
	xtypes.HyperXenVersion:       Deprivileged,
}

// HVSplitReport summarizes the split.
type HVSplitReport struct {
	Ring0Calls        []xtypes.Hypercall
	DeprivilegedCalls []xtypes.Hypercall
	// Traffic splits observed hypercall invocations by requirement, when
	// invocation counts are supplied.
	Ring0Traffic        int
	DeprivilegedTraffic int
}

// HVSplit classifies the full hypercall surface and, given observed
// invocation counts (hv.HypercallCount), the runtime traffic each half of a
// split hypervisor would carry.
func HVSplit(counts map[xtypes.Hypercall]int) HVSplitReport {
	var rep HVSplitReport
	for h := xtypes.Hypercall(0); h < xtypes.NumHypercalls; h++ {
		req, ok := ringRequirement[h]
		if !ok {
			req = Ring0 // unclassified calls stay privileged, conservatively
		}
		if req == Ring0 {
			rep.Ring0Calls = append(rep.Ring0Calls, h)
			rep.Ring0Traffic += counts[h]
		} else {
			rep.DeprivilegedCalls = append(rep.DeprivilegedCalls, h)
			rep.DeprivilegedTraffic += counts[h]
		}
	}
	return rep
}
