package seceval

// Proof that the running whitelists are the generated artifact: every shard
// alive after a Xoar boot must hold exactly the hypercall set its role's
// CAPMANIFEST.json entry grants — no more, no fewer. Deleting a grant from
// the manifest (or hand-editing boot to re-add a Hyper* literal) fails here
// before it fails anywhere subtler.

import (
	"sort"
	"strings"
	"testing"

	"xoar/internal/capability"
	"xoar/internal/xtypes"
)

// roleOfShard maps a booted shard's domain name to its manifest role. The
// Bootstrapper and PCIBack are gone by the time the platform is up (§5.3,
// §5.8), so they never appear here.
func roleOfShard(name string) (string, bool) {
	switch {
	case name == "builder":
		return capability.RoleBuilder, true
	case name == "console":
		return capability.RoleConsole, true
	case name == "netback":
		return capability.RoleNetBack, true
	case name == "blkback":
		return capability.RoleBlkBack, true
	case strings.HasPrefix(name, "toolstack-"):
		return capability.RoleToolstack, true
	}
	return "", false
}

func sortedCalls(hcs []xtypes.Hypercall) []xtypes.Hypercall {
	out := append([]xtypes.Hypercall(nil), hcs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestShardWhitelistsDerivedFromManifest(t *testing.T) {
	env, pl, _ := bootPlatform(t, false)
	defer env.Shutdown()

	matched := map[string]int{}
	for _, d := range pl.HV.Domains() {
		if !d.IsShard() {
			continue
		}
		role, ok := roleOfShard(d.Name)
		if !ok {
			// XenStore shards hold no hypercall grants; anything else
			// unmapped that does hold privilege is a hole in the manifest.
			if len(d.Priv().Hypercalls) > 0 {
				t.Errorf("shard %q holds %d hypercall grants but maps to no manifest role", d.Name, len(d.Priv().Hypercalls))
			}
			continue
		}
		matched[role]++

		var live []xtypes.Hypercall
		for hc := range d.Priv().Hypercalls {
			live = append(live, hc)
		}
		live = sortedCalls(live)
		want := sortedCalls(capability.Hypercalls(role))

		if len(live) != len(want) {
			t.Errorf("%s (%s): live whitelist %v, manifest grants %v", d.Name, role, live, want)
			continue
		}
		for i := range want {
			if live[i] != want[i] {
				t.Errorf("%s (%s): live whitelist %v, manifest grants %v", d.Name, role, live, want)
				break
			}
		}
	}

	for _, role := range []string{capability.RoleBuilder, capability.RoleConsole, capability.RoleNetBack, capability.RoleBlkBack, capability.RoleToolstack} {
		if matched[role] == 0 {
			t.Errorf("no live shard matched manifest role %q; boot shape changed?", role)
		}
	}
}

// TestRingClassificationCoversAllHypercalls is the loud replacement for the
// old silent Ring0 fallback: a newly added xtypes.Hyper* constant without an
// explicit entry in the capability ring map fails tier-1 here (and fails
// `make capmanifest` at generation time) instead of being quietly lumped
// into the privileged half of the split.
func TestRingClassificationCoversAllHypercalls(t *testing.T) {
	for h := xtypes.Hypercall(0); h < xtypes.NumHypercalls; h++ {
		if _, ok := capability.RingOf(h); !ok {
			t.Errorf("hypercall %v has no ring classification in internal/capability", h)
		}
	}
}
