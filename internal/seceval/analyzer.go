package seceval

import (
	"fmt"
	"sort"

	"xoar/internal/boot"
	"xoar/internal/osimage"
	"xoar/internal/xtypes"
)

// Outcome classifies an attack's blast radius.
type Outcome uint8

const (
	// OutContained: the attacker gains nothing beyond its own VM (and the
	// per-guest component serving it).
	OutContained Outcome = iota
	// OutSharedClients: the attacker reaches exactly the VMs sharing the
	// compromised shard.
	OutSharedClients
	// OutWholeHost: the entire platform is compromised.
	OutWholeHost
	// OutMitigated: the vulnerable interface is removed by configuration
	// (deprivileged guests for the debug-register bugs).
	OutMitigated
	// OutNotApplicable: the bug is already fixed in this release.
	OutNotApplicable
)

func (o Outcome) String() string {
	switch o {
	case OutContained:
		return "contained"
	case OutSharedClients:
		return "limited-to-sharers"
	case OutWholeHost:
		return "whole-host"
	case OutMitigated:
		return "mitigated"
	default:
		return "not-applicable"
	}
}

// Finding is the analyzer's verdict for one vulnerability.
type Finding struct {
	Vuln      Vuln
	Component xtypes.DomID // the domain hosting the vulnerable component
	Outcome   Outcome
	// Reached lists guest VMs the attacker gains power over (excluding its
	// own), for the shared-clients case.
	Reached []xtypes.DomID
}

// Options tune the analysis.
type Options struct {
	// DeprivilegedGuests removes the debug-register interface from guests,
	// mitigating those CVEs on either platform (§6.2.1).
	DeprivilegedGuests bool
	// Attacker is the guest the attack originates from; DomIDNone picks the
	// first non-shard guest.
	Attacker xtypes.DomID
	// QemuOf maps an HVM attacker to its device-model domain. DomIDNone
	// means PV-only: device-emulation attacks then have no target in Xoar
	// and are treated as contained to a hypothetical per-guest QemuVM.
	QemuOf xtypes.DomID
}

// Analyzer computes containment over a booted platform.
type Analyzer struct {
	PL   *boot.Platform
	Opts Options
}

// NewAnalyzer wraps a platform.
func NewAnalyzer(pl *boot.Platform, opts Options) *Analyzer {
	return &Analyzer{PL: pl, Opts: opts}
}

// componentFor locates the domain hosting the vulnerable component.
func (a *Analyzer) componentFor(vec Vector) xtypes.DomID {
	pl := a.PL
	if pl.Monolithic {
		return pl.Dom0
	}
	switch vec {
	case VecDeviceEmulation:
		if a.Opts.QemuOf != xtypes.DomIDNone {
			return a.Opts.QemuOf
		}
		return xtypes.DomIDNone // per-guest QemuVM, instantiated on demand
	case VecVirtualDevice:
		if len(pl.NetBacks) > 0 {
			return pl.NetBacks[0].Dom
		}
		return xtypes.DomIDNone
	case VecToolstack, VecManagement:
		if len(pl.Toolstacks) > 0 {
			return pl.Toolstacks[0].Dom
		}
		return xtypes.DomIDNone
	case VecXenStore:
		return pl.XSLogicDom
	default:
		return xtypes.DomIDNone
	}
}

// reachOf computes the set of guest VMs a compromised domain gains power
// over, by walking the hypervisor's live privilege state: full control,
// shard-client links, parent-toolstack children, and privileged-for flags.
func (a *Analyzer) reachOf(comp xtypes.DomID) (whole bool, reached []xtypes.DomID) {
	h := a.PL.HV
	d, err := h.Domain(comp)
	if err != nil {
		return false, nil
	}
	if d.Priv().ControlAll {
		return true, nil
	}
	seen := make(map[xtypes.DomID]bool)
	for _, c := range d.Clients() {
		seen[c] = true
	}
	for _, other := range h.Domains() {
		if other.ID != comp && other.ParentTool() == comp {
			seen[other.ID] = true
		}
	}
	// Memory the component currently maps (privileged-for targets show up
	// as live or permitted mappings).
	for _, target := range h.Domains() {
		if target.ID == comp {
			continue
		}
		if h.MM.ForeignMapCount(comp, target.ID) > 0 {
			seen[target.ID] = true
		}
	}
	for id := range seen {
		reached = append(reached, id)
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i] < reached[j] })
	return false, reached
}

// Analyze computes the verdict for one vulnerability.
func (a *Analyzer) Analyze(v Vuln) Finding {
	f := Finding{Vuln: v}
	if v.FixedInVersion {
		f.Outcome = OutNotApplicable
		return f
	}
	if v.Vector == VecDebugRegs && a.Opts.DeprivilegedGuests {
		f.Outcome = OutMitigated
		return f
	}
	if v.Vector == VecHypervisor {
		f.Outcome = OutWholeHost
		return f
	}
	comp := a.componentFor(v.Vector)
	f.Component = comp
	if a.PL.Monolithic {
		// Everything lives in Dom0: ControlAll ⇒ whole host.
		whole, _ := a.reachOf(comp)
		if whole {
			f.Outcome = OutWholeHost
			return f
		}
		f.Outcome = OutWholeHost
		return f
	}
	if v.Vector == VecDeviceEmulation && comp == xtypes.DomIDNone {
		// Per-guest QemuVM: privileged for exactly the attacking guest.
		f.Outcome = OutContained
		return f
	}
	if comp == xtypes.DomIDNone {
		f.Outcome = OutContained
		return f
	}
	whole, reached := a.reachOf(comp)
	if whole {
		f.Outcome = OutWholeHost
		return f
	}
	// Remove the attacker itself from the reach: compromising yourself is
	// not a gain.
	attacker := a.Opts.Attacker
	var rest []xtypes.DomID
	for _, r := range reached {
		if r != attacker {
			rest = append(rest, r)
		}
	}
	f.Reached = rest
	if v.Vector == VecDeviceEmulation {
		f.Outcome = OutContained
		return f
	}
	if len(rest) == 0 {
		f.Outcome = OutContained
		return f
	}
	f.Outcome = OutSharedClients
	return f
}

// Report summarizes the guest-threat-model analysis.
type Report struct {
	Findings []Finding
	// ByOutcome tallies verdicts.
	ByOutcome map[Outcome]int
}

// Run analyzes all guest-sourced vulnerabilities.
func (a *Analyzer) Run() Report {
	rep := Report{ByOutcome: make(map[Outcome]int)}
	for _, v := range GuestSourced() {
		f := a.Analyze(v)
		rep.Findings = append(rep.Findings, f)
		rep.ByOutcome[f.Outcome]++
	}
	return rep
}

// --- TCB accounting (§6.2) ---------------------------------------------------

// TCBReport sums the code trusted with guest-memory access.
type TCBReport struct {
	// Components lists privileged domains and their image sizes.
	Components []TCBComponent
	SourceLoC  int
	CompLoC    int
	// XenSourceLoC / XenCompLoC are the hypervisor's own contribution.
	XenSourceLoC int
	XenCompLoC   int
}

// TCBComponent is one privileged domain's contribution.
type TCBComponent struct {
	Dom     xtypes.DomID
	Name    string
	Image   string
	SrcLoC  int
	CompLoC int
}

// TCB computes the platform's trusted computing base from live privilege
// state: every domain holding arbitrary guest-memory access (ControlAll, or
// the build-time privilege pair MapForeign+DomctlPriv) plus the hypervisor.
// In Xoar's steady state this is exactly the nanOS Builder (§6.2); in the
// monolithic profile it is all of Dom0's Linux.
func TCB(pl *boot.Platform) TCBReport {
	rep := TCBReport{XenSourceLoC: osimage.XenSourceLoC, XenCompLoC: osimage.XenCompiledLoC}
	for _, d := range pl.HV.Domains() {
		priv := d.Priv()
		trusted := priv.ControlAll ||
			(priv.Hypercalls[xtypes.HyperMapForeign] && priv.Hypercalls[xtypes.HyperDomctlPriv])
		if !trusted {
			continue
		}
		img, err := pl.Catalog.Lookup(d.Cfg.OSImage)
		if err != nil {
			continue
		}
		rep.Components = append(rep.Components, TCBComponent{
			Dom: d.ID, Name: d.Name, Image: img.Name,
			SrcLoC: img.SourceLoC, CompLoC: img.CompiledLoC,
		})
		rep.SourceLoC += img.SourceLoC
		rep.CompLoC += img.CompiledLoC
	}
	return rep
}

// String renders the report like the paper's §6.2 sentence.
func (r TCBReport) String() string {
	return fmt.Sprintf("TCB: %d source / %d compiled LoC in control components, atop Xen's %d/%d",
		r.SourceLoC, r.CompLoC, r.XenSourceLoC, r.XenCompLoC)
}
