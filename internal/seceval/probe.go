package seceval

import (
	"xoar/internal/boot"
	"xoar/internal/hv"
	"xoar/internal/xtypes"
)

// CapabilityProbe complements the static analyzer with a *dynamic* check: it
// assumes a component is fully compromised — the attacker executes with that
// domain's identity — and actually attempts a battery of hostile operations
// against the live hypervisor, recording which succeed. Where the analyzer
// reasons over the privilege graph, the probe exercises the enforcement
// paths themselves, so a regression in any check shows up as a capability
// the paper says must not exist.
type CapabilityProbe struct {
	// Component is the compromised domain.
	Component xtypes.DomID

	// Capabilities actually obtained:
	MapVictimMemory  bool // mapped another guest's memory
	CreatedDomain    bool // created a new domain
	DestroyedVictim  bool // destroyed another guest
	GrantedToVictim  bool // set up fresh IVC to an unlinked guest
	RolledBackOthers bool // rolled back another component
	TookPCIDevice    bool // stole a passthrough device
	EscalatedSelf    bool // granted itself new privileges
}

// Probe runs the battery from component against victim on the booted
// platform. Successful state changes are reverted, so probing does not
// perturb later experiments beyond audit-log entries.
func Probe(pl *boot.Platform, component, victim xtypes.DomID) CapabilityProbe {
	h := pl.HV
	res := CapabilityProbe{Component: component}

	if err := h.MapForeign(component, victim, 0); err == nil {
		res.MapVictimMemory = true
		h.UnmapForeign(component, victim)
	}
	if d, err := h.CreateDomain(component, hv.DomainConfig{Name: "implant", MemMB: 16}); err == nil {
		res.CreatedDomain = true
		h.DestroyDomain(component, d.ID, "probe cleanup")
	}
	if err := h.DestroyDomain(component, victim, "probe"); err == nil {
		res.DestroyedVictim = true
	}
	// Fresh IVC to a guest never linked to this component. (A shard's
	// existing clients are legitimate reach, not escalation; the caller
	// passes a victim that is not a client.)
	if _, err := h.Grant(component, victim, 0, false); err == nil {
		d, derr := h.Domain(component)
		if derr != nil || !containsDom(d.Clients(), victim) {
			res.GrantedToVictim = true
		}
	}
	if _, err := h.VMRollback(component, pl.BuilderDom); err == nil {
		res.RolledBackOthers = true
	}
	if len(h.Machine.NICs()) > 0 {
		addr := h.Machine.NICs()[0].Addr()
		owner := h.Machine.Bus.AssignedTo(addr)
		if owner != component {
			if err := h.AssignPrivileges(component, component, hv.Assignment{PCIDevices: []xtypes.PCIAddr{addr}}); err == nil {
				res.TookPCIDevice = true
			}
		}
	}
	if err := h.AssignPrivileges(component, component, hv.Assignment{ControlAll: true}); err == nil {
		res.EscalatedSelf = true
	}
	return res
}

func containsDom(list []xtypes.DomID, d xtypes.DomID) bool {
	for _, x := range list {
		if x == d {
			return true
		}
	}
	return false
}

// Clean reports whether the probe obtained nothing beyond what a shard
// legitimately holds over its linked clients.
func (p CapabilityProbe) Clean() bool {
	return !p.MapVictimMemory && !p.CreatedDomain && !p.DestroyedVictim &&
		!p.GrantedToVictim && !p.RolledBackOthers && !p.TookPCIDevice && !p.EscalatedSelf
}

// Obtained lists the capabilities gained, for reports.
func (p CapabilityProbe) Obtained() []string {
	var out []string
	add := func(b bool, s string) {
		if b {
			out = append(out, s)
		}
	}
	add(p.MapVictimMemory, "map-victim-memory")
	add(p.CreatedDomain, "create-domain")
	add(p.DestroyedVictim, "destroy-victim")
	add(p.GrantedToVictim, "ivc-to-victim")
	add(p.RolledBackOthers, "rollback-others")
	add(p.TookPCIDevice, "steal-pci-device")
	add(p.EscalatedSelf, "self-escalation")
	return out
}
