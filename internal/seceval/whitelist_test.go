package seceval

// Table-driven denial tests generated from the live Figure-3.1 Assignment
// state: after a Xoar boot, every privileged hypercall in every shard's
// whitelist is invoked by a plain guest, and the hypervisor must refuse with
// an ErrPerm-family error while bumping the DeniedCalls audit counter. The
// table is derived from the booted platform's actual privilege state — if a
// future boot sequence widens a shard's whitelist, the new entry is
// exercised automatically (and a whitelisted call without an invoker below
// fails the test loudly rather than silently going untested).

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"xoar/internal/capability"
	"xoar/internal/hv"
	"xoar/internal/xtypes"
)

// hypercallInvokers calls each privileged hypercall's hypervisor entry point
// as caller. Denial happens at the whitelist audit, before target handling,
// so the victim argument only needs to be a live domain.
var hypercallInvokers = map[xtypes.Hypercall]func(h *hv.Hypervisor, caller, victim xtypes.DomID) error{
	xtypes.HyperDomctlCreate: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		_, err := h.CreateDomain(c, hv.DomainConfig{Name: "implant", MemMB: 16})
		return err
	},
	xtypes.HyperDomctlDestroy: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.DestroyDomain(c, v, "attack")
	},
	xtypes.HyperDomctlPause: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.Pause(c, v)
	},
	xtypes.HyperDomctlUnpause: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.Unpause(c, v)
	},
	xtypes.HyperDomctlMaxMem: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.SetMaxMem(c, v, 64)
	},
	xtypes.HyperDomctlPriv: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.AssignPrivileges(c, c, hv.Assignment{ControlAll: true})
	},
	xtypes.HyperMapForeign: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.MapForeign(c, v, 0)
	},
	xtypes.HyperSetVIRQ: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.RouteHardwareVIRQ(c, xtypes.VIRQConsole, c)
	},
	xtypes.HyperVMSnapshot: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.VMSnapshot(c)
	},
	xtypes.HyperVMRollback: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		_, err := h.VMRollback(c, v)
		return err
	},
	xtypes.HyperDelegateAdmin: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.Delegate(c, v, c)
	},
	xtypes.HyperIOPortAccess: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.GrantIOPorts(c, c, "console")
	},
	xtypes.HyperDebugOp: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.DebugOp(c)
	},
	xtypes.HyperSetParentTool: func(h *hv.Hypervisor, c, v xtypes.DomID) error {
		return h.SetParentTool(c, v, c)
	},
}

// noHVEntryPoint lists whitelisted hypercalls enforced outside the
// hypervisor's dispatch surface in this model (device assignment rides
// AssignPrivileges; restart policies are audited by builder.holds). The set
// comes straight from the manifest's rationale grants — the grants capgen
// could not derive from a privilege-matrix row are exactly the ones no
// invoker above can reach.
var noHVEntryPoint = capability.NonHVGrants()

func TestGuestDeniedEveryShardWhitelistedHypercall(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	h := pl.HV
	attacker, victim := guests[0], guests[1]

	shards := 0
	for _, d := range h.Domains() {
		if !d.IsShard() {
			continue
		}
		priv := d.Priv()
		if len(priv.Hypercalls) == 0 {
			continue
		}
		shards++
		var hcs []xtypes.Hypercall
		for hc := range priv.Hypercalls {
			hcs = append(hcs, hc)
		}
		sort.Slice(hcs, func(i, j int) bool { return hcs[i] < hcs[j] })
		for _, hc := range hcs {
			invoke, ok := hypercallInvokers[hc]
			if !ok {
				if noHVEntryPoint[hc] {
					continue
				}
				t.Fatalf("%s whitelists %v but no invoker covers it — extend hypercallInvokers", d.Name, hc)
			}
			t.Run(fmt.Sprintf("%s/%v", d.Name, hc), func(t *testing.T) {
				before := h.DeniedCalls
				err := invoke(h, attacker, victim)
				if err == nil {
					t.Fatalf("guest %v invoked %v without privilege and succeeded", attacker, hc)
				}
				if !errors.Is(err, xtypes.ErrPerm) {
					t.Fatalf("guest %v invoking %v: err = %v, want ErrPerm", attacker, hc, err)
				}
				if h.DeniedCalls <= before {
					t.Fatalf("DeniedCalls did not increment for %v (before=%d after=%d)", hc, before, h.DeniedCalls)
				}
			})
		}
	}
	if shards < 4 {
		t.Fatalf("only %d privileged shards exercised; boot shape changed?", shards)
	}
}

// TestUnmapForeignRequiresMapForeign pins the first privcheck day-one fix:
// releasing a foreign mapping is privileged like creating one. Reverting the
// check in hv.UnmapForeign makes the denial half fail.
func TestUnmapForeignRequiresMapForeign(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	h := pl.HV
	attacker, victim := guests[0], guests[1]

	before := h.DeniedCalls
	err := h.UnmapForeign(attacker, victim)
	if !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("guest UnmapForeign: err = %v, want ErrPerm", err)
	}
	if h.DeniedCalls != before+1 {
		t.Fatalf("DeniedCalls = %d, want %d", h.DeniedCalls, before+1)
	}

	// Positive control: the toolstack holds HyperMapForeign and parents its
	// guests, so its map/unmap pair must keep working.
	ts := pl.Toolstacks[0].Dom
	if err := h.MapForeign(ts, victim, 0); err != nil {
		t.Fatalf("toolstack MapForeign: %v", err)
	}
	if err := h.UnmapForeign(ts, victim); err != nil {
		t.Fatalf("toolstack UnmapForeign: %v", err)
	}
}

// TestRecoveryBoxRequiresSnapshotPrivilege pins the second day-one fix:
// recovery boxes are part of the snapshot protocol (§3.3) and demand the
// same HyperVMSnapshot entry as VMSnapshot.
func TestRecoveryBoxRequiresSnapshotPrivilege(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	h := pl.HV

	before := h.DeniedCalls
	err := h.RegisterRecoveryBox(guests[0], 0, 1)
	if !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("guest RegisterRecoveryBox: err = %v, want ErrPerm", err)
	}
	if h.DeniedCalls != before+1 {
		t.Fatalf("DeniedCalls = %d, want %d", h.DeniedCalls, before+1)
	}

	// Positive control: driver shards are snapshot-enrolled and must still be
	// able to carve out their connection state.
	if len(pl.NetBacks) == 0 {
		t.Fatal("no NetBack shards booted")
	}
	if err := h.RegisterRecoveryBox(pl.NetBacks[0].Dom, 8, 2); err != nil {
		t.Fatalf("NetBack RegisterRecoveryBox: %v", err)
	}
}
