// Package seceval implements the paper's security evaluation (§2.2.1,
// §6.2): an encoded registry of the 44 studied vulnerabilities and a
// containment analyzer that computes each attack's blast radius from the
// platform's *actual* privilege state — hypercall whitelists, shard-client
// links, privileged-for flags and foreign-mapping rights — rather than
// asserting the paper's numbers.
package seceval

import "fmt"

// Vector classifies where a vulnerability lives, following the paper's
// attack-vector taxonomy.
type Vector uint8

const (
	VecDeviceEmulation Vector = iota // QEMU device model
	VecVirtualDevice                 // paravirtual backend (NetBack/BlkBack)
	VecToolstack                     // management toolstack
	VecManagement                    // other management components in the control VM
	VecXenStore                      // XenStore write-access bugs
	VecDebugRegs                     // debug-register handling
	VecHypervisor                    // Xen itself
)

func (v Vector) String() string {
	switch v {
	case VecDeviceEmulation:
		return "device-emulation"
	case VecVirtualDevice:
		return "virtual-device"
	case VecToolstack:
		return "toolstack"
	case VecManagement:
		return "management"
	case VecXenStore:
		return "xenstore"
	case VecDebugRegs:
		return "debug-registers"
	default:
		return "hypervisor"
	}
}

// Class is the vulnerability's effect.
type Class uint8

const (
	ClassCodeExec Class = iota // buffer overflow, arbitrary code execution
	ClassDoS                   // denial of service
)

func (c Class) String() string {
	if c == ClassCodeExec {
		return "code-execution"
	}
	return "denial-of-service"
}

// Source is where the attack originates.
type Source uint8

const (
	SrcGuest    Source = iota // from within a hosted guest VM (the threat model)
	SrcAdminNet               // from the administrative network
	SrcHost                   // requires host/Type-2 access (excluded by the threat model)
)

func (s Source) String() string {
	switch s {
	case SrcGuest:
		return "guest"
	case SrcAdminNet:
		return "admin-network"
	default:
		return "host"
	}
}

// Vuln is one registry entry.
type Vuln struct {
	ID     string
	Source Source
	Class  Class
	Vector Vector
	// FixedInVersion marks bugs already patched in the platform release the
	// paper (and this model) runs — the two XenStore write bugs (§6.2.1).
	FixedInVersion bool
	Note           string
}

// Registry returns all 44 studied vulnerabilities (§2.2.1). The 23
// guest-sourced entries follow the evaluation section's decomposition
// (§6.2.1): 7 device emulation, 6 virtualized device, 1 toolstack, 4 other
// management, 2 debug-register, 2 XenStore, 1 hypervisor; 12 of them are
// code-execution bugs and 11 denial-of-service. The remaining 21 entries are
// admin-network or host-sourced reports outside the guest threat model.
// (§2.2.1 aggregates the emulation/virtual-device counts differently —
// 14/4 — an inconsistency internal to the thesis; we follow the evaluation
// section, which is what the containment results are stated against.)
func Registry() []Vuln {
	var vs []Vuln
	add := func(n int, src Source, class Class, vec Vector, fixed bool, note string) {
		for i := 0; i < n; i++ {
			vs = append(vs, Vuln{
				ID:             fmt.Sprintf("XVR-%03d", len(vs)+1),
				Source:         src,
				Class:          class,
				Vector:         vec,
				FixedInVersion: fixed,
				Note:           note,
			})
		}
	}
	// Guest-sourced, code-execution (12):
	add(5, SrcGuest, ClassCodeExec, VecDeviceEmulation, false, "emulated device buffer overflow")
	add(3, SrcGuest, ClassCodeExec, VecVirtualDevice, false, "PV backend request validation")
	add(1, SrcGuest, ClassCodeExec, VecToolstack, false, "toolstack parsing of guest data")
	add(2, SrcGuest, ClassCodeExec, VecDebugRegs, false, "debug register state corruption")
	add(1, SrcGuest, ClassCodeExec, VecHypervisor, false, "exploit in the security extensions")
	// Guest-sourced, denial-of-service (11):
	add(2, SrcGuest, ClassDoS, VecDeviceEmulation, false, "emulated device crash")
	add(3, SrcGuest, ClassDoS, VecVirtualDevice, false, "PV backend resource exhaustion")
	add(4, SrcGuest, ClassDoS, VecManagement, false, "management component hang")
	add(2, SrcGuest, ClassDoS, VecXenStore, true, "XenStore write-access bug (fixed in this release)")
	// Non-guest-sourced reports (21), excluded by the threat model:
	add(12, SrcHost, ClassCodeExec, VecDeviceEmulation, false, "Type-2 host-OS path")
	add(5, SrcAdminNet, ClassCodeExec, VecManagement, false, "administrative interface")
	add(4, SrcAdminNet, ClassDoS, VecManagement, false, "administrative interface")
	return vs
}

// GuestSourced filters the registry to the threat model's 23 entries.
func GuestSourced() []Vuln {
	var out []Vuln
	for _, v := range Registry() {
		if v.Source == SrcGuest {
			out = append(out, v)
		}
	}
	return out
}
