package seceval

import (
	"testing"

	"xoar/internal/audit"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// Regression tests for the audit-trail gaps found by xoarlint's auditlog
// pass: privilege-topology mutations in hv that never reached the
// hash-chained log. The forensic queries (§3.2.2) are only as good as the
// records underneath them, so each fixed emit is pinned here.

func newAuditedHV(t *testing.T) (*sim.Env, *hv.Hypervisor, *audit.Log) {
	t.Helper()
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	h.EnforceShardIVC = true
	log := audit.NewLog()
	h.Sink = func(e hv.Event) { log.Append(e.Time, e.Kind, e.Dom, e.Arg) }
	return env, h, log
}

func mkAuditedDom(t *testing.T, h *hv.Hypervisor, name string, shard bool) *hv.Domain {
	t.Helper()
	d, err := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: name, MemMB: 64, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Unpause(hv.SystemCaller, d.ID); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestUnlinkClosesExposureWindow is the headline regression: hv never
// emitted "unlink-shard", even though the log's interval index already
// parsed it, so DependentsOf reported unlinked clients as exposed until
// the shard died. With the emit in place the window closes at unlink time.
func TestUnlinkClosesExposureWindow(t *testing.T) {
	env, h, log := newAuditedHV(t)
	shard := mkAuditedDom(t, h, "netback", true)
	guest := mkAuditedDom(t, h, "guest", false)

	env.RunFor(10 * sim.Second)
	if err := h.LinkShardClient(hv.SystemCaller, shard.ID, guest.ID); err != nil {
		t.Fatal(err)
	}
	linked := env.RunFor(10 * sim.Second)
	if err := h.UnlinkShardClient(hv.SystemCaller, shard.ID, guest.ID); err != nil {
		t.Fatal(err)
	}
	unlinked := env.RunFor(10 * sim.Second)

	if got := log.KindCount("unlink-shard"); got != 1 {
		t.Fatalf("unlink-shard records = %d, want 1", got)
	}
	// While linked, the guest is a dependent of the shard.
	if got := log.DependentsOf(shard.ID, 0, linked); len(got) != 1 || got[0] != guest.ID {
		t.Fatalf("dependents while linked = %v, want [%v]", got, guest.ID)
	}
	// After the unlink, a disjoint later window must be empty — this is
	// exactly the query that lied before the fix.
	if got := log.DependentsOf(shard.ID, unlinked, unlinked.Add(sim.Second)); len(got) != 0 {
		t.Fatalf("dependents after unlink = %v, want none", got)
	}
	if i := log.Verify(); i != -1 {
		t.Fatalf("hash chain broken at record %d", i)
	}
}

// TestPrivilegeMutationsAudited pins the remaining emits added for the
// auditlog pass: toolstack reparenting, I/O-port grants, VIRQ rerouting,
// and the Figure 3.1 assignment calls (permit_hypercall et al).
func TestPrivilegeMutationsAudited(t *testing.T) {
	_, h, log := newAuditedHV(t)
	shard := mkAuditedDom(t, h, "blkback", true)
	guest := mkAuditedDom(t, h, "guest", false)

	if err := h.SetParentTool(hv.SystemCaller, guest.ID, shard.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.GrantIOPorts(hv.SystemCaller, shard.ID, "console"); err != nil {
		t.Fatal(err)
	}
	if err := h.RouteHardwareVIRQ(hv.SystemCaller, xtypes.VIRQConsole, shard.ID); err != nil {
		t.Fatal(err)
	}
	err := h.AssignPrivileges(hv.SystemCaller, shard.ID, hv.Assignment{
		Hypercalls: []xtypes.Hypercall{xtypes.HyperGrantTableOp},
		IOPorts:    []string{"pci"},
		ControlAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]int{
		"set-parent":       1,
		"grant-ioports":    2, // GrantIOPorts + AssignPrivileges.IOPorts
		"route-virq":       1,
		"permit-hypercall": 1,
		"control-all":      1,
	}
	for kind, n := range want {
		if got := log.KindCount(kind); got != n {
			t.Errorf("%s records = %d, want %d", kind, got, n)
		}
	}
	if i := log.Verify(); i != -1 {
		t.Fatalf("hash chain broken at record %d", i)
	}
}
