package seceval

import (
	"errors"
	"testing"

	"xoar/internal/boot"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
	"xoar/internal/xtypes"
)

func TestRegistryCounts(t *testing.T) {
	all := Registry()
	if len(all) != 44 {
		t.Fatalf("registry size = %d, want 44", len(all))
	}
	guests := GuestSourced()
	if len(guests) != 23 {
		t.Fatalf("guest-sourced = %d, want 23", len(guests))
	}
	exec, dos := 0, 0
	vec := map[Vector]int{}
	for _, v := range guests {
		if v.Class == ClassCodeExec {
			exec++
		} else {
			dos++
		}
		vec[v.Vector]++
	}
	if exec != 12 || dos != 11 {
		t.Fatalf("class split = %d exec / %d dos, want 12/11", exec, dos)
	}
	want := map[Vector]int{
		VecDeviceEmulation: 7,
		VecVirtualDevice:   6,
		VecToolstack:       1,
		VecManagement:      4,
		VecDebugRegs:       2,
		VecXenStore:        2,
		VecHypervisor:      1,
	}
	for v, n := range want {
		if vec[v] != n {
			t.Errorf("vector %v = %d, want %d", v, vec[v], n)
		}
	}
	// Unique IDs.
	seen := map[string]bool{}
	for _, v := range all {
		if seen[v.ID] {
			t.Fatalf("duplicate id %s", v.ID)
		}
		seen[v.ID] = true
	}
}

// bootPlatform brings up a profile with two guests sharing the driver shards.
func bootPlatform(t *testing.T, monolithic bool) (*sim.Env, *boot.Platform, []xtypes.DomID) {
	t.Helper()
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	var pl *boot.Platform
	var guests []xtypes.DomID
	var err error
	env.Spawn("setup", func(p *sim.Proc) {
		if monolithic {
			pl, err = boot.BootDom0(p, h, osimage.DefaultCatalog(), boot.Options{})
		} else {
			pl, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{})
		}
		if err != nil {
			return
		}
		for _, name := range []string{"victimA", "victimB"} {
			g, cerr := pl.Toolstacks[0].CreateVM(p, toolstack.GuestConfig{
				Name: name, Image: osimage.ImgGuestPV, Net: true, Disk: true,
			})
			if cerr != nil {
				err = cerr
				return
			}
			guests = append(guests, g.Dom)
		}
	})
	env.RunFor(300 * sim.Second)
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	return env, pl, guests
}

func TestXoarContainmentMatchesPaper(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	an := NewAnalyzer(pl, Options{DeprivilegedGuests: true, Attacker: guests[0], QemuOf: xtypes.DomIDNone})
	rep := an.Run()

	// §6.2.1: 7 device-emulation attacks entirely contained; 6 virtual
	// device + 1 toolstack + 4 management limited to sharers; 2 debug-reg
	// mitigated; 2 XenStore fixed; 1 hypervisor unprotected. XenStore-Logic
	// itself holds no privilege over guests, so nothing else reaches
	// whole-host.
	want := map[Outcome]int{
		OutContained:     7,
		OutSharedClients: 11,
		OutMitigated:     2,
		OutNotApplicable: 2,
		OutWholeHost:     1,
	}
	for o, n := range want {
		if rep.ByOutcome[o] != n {
			t.Errorf("outcome %v = %d, want %d (full: %v)", o, rep.ByOutcome[o], n, rep.ByOutcome)
		}
	}

	// The shared-clients findings must reach exactly the co-resident guest,
	// not the platform.
	for _, f := range rep.Findings {
		if f.Outcome != OutSharedClients {
			continue
		}
		for _, r := range f.Reached {
			if r != guests[1] {
				t.Errorf("vuln %s reached unexpected dom %v", f.Vuln.ID, r)
			}
		}
	}
}

func TestDom0EverythingIsWholeHost(t *testing.T) {
	env, pl, guests := bootPlatform(t, true)
	defer env.Shutdown()
	an := NewAnalyzer(pl, Options{DeprivilegedGuests: false, Attacker: guests[0]})
	rep := an.Run()
	// Stock Xen: all 21 live attacks compromise the whole platform
	// (§2.2.1's "security of the entire system is only as good as the
	// weakest component"); only the 2 already-fixed XenStore bugs escape.
	if rep.ByOutcome[OutWholeHost] != 21 {
		t.Fatalf("dom0 whole-host = %d, want 21 (full: %v)", rep.ByOutcome[OutWholeHost], rep.ByOutcome)
	}
	if rep.ByOutcome[OutNotApplicable] != 2 {
		t.Fatalf("dom0 not-applicable = %d", rep.ByOutcome[OutNotApplicable])
	}
}

func TestDebugRegMitigationAppliesToBothPlatforms(t *testing.T) {
	env, pl, guests := bootPlatform(t, true)
	defer env.Shutdown()
	an := NewAnalyzer(pl, Options{DeprivilegedGuests: true, Attacker: guests[0]})
	rep := an.Run()
	if rep.ByOutcome[OutMitigated] != 2 {
		t.Fatalf("mitigated on dom0 = %d", rep.ByOutcome[OutMitigated])
	}
}

// TestMonolithicProfileHasNoMicroreboots asserts the §3.3 capability split:
// microreboots exist only on the disaggregated platform. Stock Xen's Builder
// refuses every restart-engine entry point with a distinct error, while the
// Xoar Builder fails the same probe for ordinary reasons (no snapshot), never
// with that error.
func TestMonolithicProfileHasNoMicroreboots(t *testing.T) {
	env, pl, guests := bootPlatform(t, true)
	defer env.Shutdown()
	var rbErr, rebErr, recErr error
	env.Spawn("probe", func(p *sim.Proc) {
		_, rbErr = pl.Builder.Rollback(p, guests[0])
		_, rebErr = pl.Builder.Rebuild(p, guests[0])
		_, recErr = pl.Builder.Recover(p, guests[0])
	})
	env.RunFor(10 * sim.Second)
	for name, err := range map[string]error{"rollback": rbErr, "rebuild": rebErr, "recover": recErr} {
		if !errors.Is(err, xtypes.ErrNoMicroreboot) {
			t.Errorf("%s on stock Xen: err = %v, want ErrNoMicroreboot", name, err)
		}
	}
	// The probed guest must be untouched by the refusals.
	if _, err := pl.HV.Domain(guests[0]); err != nil {
		t.Fatalf("refusal destroyed the guest: %v", err)
	}

	env2, xoar, xguests := bootPlatform(t, false)
	defer env2.Shutdown()
	var xerr error
	env2.Spawn("probe", func(p *sim.Proc) {
		_, xerr = xoar.Builder.Rollback(p, xguests[0])
	})
	env2.RunFor(10 * sim.Second)
	if errors.Is(xerr, xtypes.ErrNoMicroreboot) {
		t.Fatalf("xoar profile claims no microreboots: %v", xerr)
	}
}

func TestTCBXoarSteadyState(t *testing.T) {
	env, pl, _ := bootPlatform(t, false)
	defer env.Shutdown()
	rep := TCB(pl)
	// Steady state: exactly the nanOS Builder holds guest-memory privilege.
	if len(rep.Components) != 1 || rep.Components[0].Name != "builder" {
		t.Fatalf("TCB components = %+v", rep.Components)
	}
	if rep.SourceLoC != 8_000 {
		t.Fatalf("TCB source LoC = %d", rep.SourceLoC)
	}
	if rep.XenSourceLoC != 280_000 {
		t.Fatalf("Xen LoC = %d", rep.XenSourceLoC)
	}
}

func TestTCBDom0IsLinux(t *testing.T) {
	env, pl, _ := bootPlatform(t, true)
	defer env.Shutdown()
	rep := TCB(pl)
	if rep.SourceLoC != 7_600_000 || rep.CompLoC != 400_000 {
		t.Fatalf("dom0 TCB = %d/%d", rep.SourceLoC, rep.CompLoC)
	}
}

func TestTCBRatio(t *testing.T) {
	env1, xoar, _ := bootPlatform(t, false)
	defer env1.Shutdown()
	env2, dom0, _ := bootPlatform(t, true)
	defer env2.Shutdown()
	x, d := TCB(xoar), TCB(dom0)
	// The paper's headline: 7.6M → 13K source (we measure the steady-state
	// 8K Builder; the Bootstrapper's 5K is boot-time only). Require at
	// least two orders of magnitude.
	if d.SourceLoC < 100*x.SourceLoC {
		t.Fatalf("TCB reduction only %dx", d.SourceLoC/x.SourceLoC)
	}
}

func TestQemuVectorWithExplicitStubDomain(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	// Stand up a QemuVM for guest A, privileged for exactly that guest, and
	// verify the analyzer reports device-emulation attacks as contained with
	// the attacker's own QemuVM as the compromised component.
	h := pl.HV
	var qemuDom xtypes.DomID
	var err error
	env.Spawn("mk-qemu", func(p *sim.Proc) {
		q, cerr := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{
			Name: "qemu-victimA", MemMB: 64, Shard: true, OSImage: osimage.ImgQemu,
		})
		if cerr != nil {
			err = cerr
			return
		}
		h.Unpause(hv.SystemCaller, q.ID)
		h.AssignPrivileges(hv.SystemCaller, q.ID, hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperMapForeign}})
		h.SetPrivilegedFor(hv.SystemCaller, q.ID, guests[0])
		qemuDom = q.ID
	})
	env.RunFor(10 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(pl, Options{DeprivilegedGuests: true, Attacker: guests[0], QemuOf: qemuDom})
	rep := an.Run()
	if rep.ByOutcome[OutContained] != 7 {
		t.Fatalf("contained = %d with explicit QemuVM (full: %v)", rep.ByOutcome[OutContained], rep.ByOutcome)
	}
	for _, f := range rep.Findings {
		if f.Vuln.Vector == VecDeviceEmulation && f.Component != qemuDom {
			t.Fatalf("device-emulation finding not anchored to the QemuVM: %+v", f)
		}
	}
}

// Dynamic probes: assume a component is fully compromised and try actual
// hostile operations against the live hypervisor.
func TestProbeCompromisedNetBackOnXoar(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	nb := pl.NetBacks[0].Dom
	p := Probe(pl, nb, guests[1])
	// NetBack must gain nothing: it cannot map guest memory, build or
	// destroy domains, roll back components, steal devices, or escalate.
	// (Its legitimate power — the traffic of its clients — is not probed.)
	if !p.Clean() {
		t.Fatalf("compromised NetBack obtained: %v", p.Obtained())
	}
}

func TestProbeCompromisedToolstackOnXoar(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	ts := pl.Toolstacks[0].Dom
	p := Probe(pl, ts, guests[1])
	// The toolstack CAN destroy its own guests (that is its job)...
	if !p.DestroyedVictim {
		t.Fatal("toolstack could not manage its own guest")
	}
	// ...but cannot map their memory, escalate, or take devices.
	if p.MapVictimMemory && pl.Monolithic == false {
		// The Xoar toolstack holds MapForeign for migration over its own
		// guests; this is its legitimate (audited) power, not escalation.
		t.Log("toolstack mapped its own guest (legitimate migration path)")
	}
	if p.EscalatedSelf || p.TookPCIDevice || p.RolledBackOthers {
		t.Fatalf("toolstack escalated: %v", p.Obtained())
	}
}

func TestProbeCompromisedDom0TakesEverything(t *testing.T) {
	env, pl, guests := bootPlatform(t, true)
	defer env.Shutdown()
	p := Probe(pl, pl.Dom0, guests[1])
	if !p.MapVictimMemory || !p.CreatedDomain || !p.DestroyedVictim {
		t.Fatalf("dom0 compromise under-powered: %v", p.Obtained())
	}
}

func TestProbeCompromisedGuestGainsNothing(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	p := Probe(pl, guests[0], guests[1])
	if !p.Clean() {
		t.Fatalf("plain guest obtained: %v", p.Obtained())
	}
}

func TestHVSplitCoversAllHypercalls(t *testing.T) {
	rep := HVSplit(nil)
	if len(rep.Ring0Calls)+len(rep.DeprivilegedCalls) != int(xtypes.NumHypercalls) {
		t.Fatalf("split covers %d of %d calls",
			len(rep.Ring0Calls)+len(rep.DeprivilegedCalls), xtypes.NumHypercalls)
	}
	// The §7.1 examples must land on the right sides.
	in := func(list []xtypes.Hypercall, h xtypes.Hypercall) bool {
		for _, x := range list {
			if x == h {
				return true
			}
		}
		return false
	}
	for _, h := range []xtypes.Hypercall{xtypes.HyperMapForeign, xtypes.HyperIOPortAccess, xtypes.HyperGrantTableOp} {
		if !in(rep.Ring0Calls, h) {
			t.Errorf("%v should require ring 0", h)
		}
	}
	for _, h := range []xtypes.Hypercall{xtypes.HyperDomctlCreate, xtypes.HyperProfilingOp} {
		if !in(rep.DeprivilegedCalls, h) {
			t.Errorf("%v should be deprivilegeable", h)
		}
	}
}

func TestHVSplitTrafficFromBootedPlatform(t *testing.T) {
	env, pl, _ := bootPlatform(t, false)
	defer env.Shutdown()
	rep := HVSplit(pl.HV.HypercallCount)
	if rep.Ring0Traffic == 0 || rep.DeprivilegedTraffic == 0 {
		t.Fatalf("traffic split %d/%d — a booted platform exercises both halves",
			rep.Ring0Traffic, rep.DeprivilegedTraffic)
	}
}
