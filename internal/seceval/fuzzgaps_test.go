package seceval

import (
	"errors"
	"testing"

	"xoar/internal/capability"
	"xoar/internal/hv"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/xtypes"
)

// Regression tests for the enforcement gaps surfaced by the hypercall
// sequence fuzzer (internal/attack). Each test pins one fixed hole so a
// future refactor of internal/hv cannot quietly reopen it: the fuzzer would
// eventually rediscover the gap, but these fail immediately and name it.

// TestShardCannotCurateOwnClients: a compromised shard used to be able to
// link arbitrary guests to itself (controls() counts every domain as
// controlling itself) and then pass the IVC policy against them — and,
// symmetrically, to unlink its real clients and close their audit exposure
// windows. Both directions must now be refused and counted.
func TestShardCannotCurateOwnClients(t *testing.T) {
	env, h, _ := newAuditedHV(t)
	defer env.Shutdown()
	shard := mkAuditedDom(t, h, "netback", true)
	guest := mkAuditedDom(t, h, "guest", false)
	if err := h.LinkShardClient(hv.SystemCaller, shard.ID, guest.ID); err != nil {
		t.Fatal(err)
	}

	dc := h.DeniedCalls
	if err := h.LinkShardClient(shard.ID, shard.ID, guest.ID); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("self-link = %v, want ErrPerm", err)
	}
	if err := h.UnlinkShardClient(shard.ID, shard.ID, guest.ID); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("self-unlink = %v, want ErrPerm", err)
	}
	if h.DeniedCalls != dc+2 {
		t.Fatalf("DeniedCalls moved by %d, want 2", h.DeniedCalls-dc)
	}
	// The real client link survived the shard's unlink attempt.
	if got := shard.Clients(); len(got) != 1 || got[0] != guest.ID {
		t.Fatalf("client list after self-unlink = %v, want [%v]", got, guest.ID)
	}
}

// TestUnlinkNonShardDenied: unlinking a plain guest used to succeed as a
// no-op and emit a bogus unlink-shard audit record against it, corrupting
// DependentsOf interval bookkeeping. It must now fail with ErrNotShard and
// leave no topology record.
func TestUnlinkNonShardDenied(t *testing.T) {
	env, h, log := newAuditedHV(t)
	defer env.Shutdown()
	ts := mkAuditedDom(t, h, "toolstack", true)
	guestA := mkAuditedDom(t, h, "guestA", false)
	guestB := mkAuditedDom(t, h, "guestB", false)

	dc := h.DeniedCalls
	if err := h.UnlinkShardClient(ts.ID, guestA.ID, guestB.ID); !errors.Is(err, xtypes.ErrNotShard) {
		t.Fatalf("unlink from non-shard = %v, want ErrNotShard", err)
	}
	if err := h.LinkShardClient(ts.ID, guestA.ID, guestB.ID); !errors.Is(err, xtypes.ErrNotShard) {
		t.Fatalf("link to non-shard = %v, want ErrNotShard", err)
	}
	if h.DeniedCalls != dc+2 {
		t.Fatalf("DeniedCalls moved by %d, want 2", h.DeniedCalls-dc)
	}
	if n := log.KindCount("unlink-shard") + log.KindCount("link-shard"); n != 0 {
		t.Fatalf("refused link ops left %d topology records", n)
	}
}

// TestObjectLevelDenialsAreCounted: refusals raised below the hypercall
// whitelist — the IVC policy, the grant table's grantee check, event-channel
// port reservations — used to return ErrPerm without ticking DeniedCalls,
// so the fuzzer's attempted/denied accounting (and any rate alarm built on
// it) missed them entirely.
func TestObjectLevelDenialsAreCounted(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	h := pl.HV
	nb := pl.NetBacks[0].Dom
	bb := pl.BlkBacks[0].Dom

	// IVC policy: two plain guests may not share pages.
	dc := h.DeniedCalls
	if _, err := h.Grant(guests[0], guests[1], 0, false); !errors.Is(err, xtypes.ErrNotShard) {
		t.Fatalf("guest-to-guest grant = %v, want ErrNotShard", err)
	}
	if h.DeniedCalls == dc {
		t.Fatal("IVC denial did not tick DeniedCalls")
	}

	// Grant table: mapping a ref issued to a different grantee. Both
	// backends serve the guest, so the IVC layer passes and the refusal
	// comes from the grant table itself.
	ref, err := h.Grant(guests[0], nb, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	dc = h.DeniedCalls
	if _, err := h.MapGrant(bb, guests[0], ref, false); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("wrong-grantee map = %v, want ErrPerm", err)
	}
	if h.DeniedCalls == dc {
		t.Fatal("grant-table denial did not tick DeniedCalls")
	}

	// Event channels: binding a port reserved for another domain.
	port, err := h.EvtchnAllocUnbound(nb, guests[0])
	if err != nil {
		t.Fatal(err)
	}
	dc = h.DeniedCalls
	if _, err := h.EvtchnBind(guests[1], nb, port); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("reserved-port bind = %v, want ErrPerm", err)
	}
	if h.DeniedCalls == dc {
		t.Fatal("evtchn denial did not tick DeniedCalls")
	}
}

// TestSnapshotWriteOnce: a compromised driver shard could re-snapshot its
// corrupted image, after which every microreboot faithfully restored the
// compromise. Snapshots are taken once at boot (§3.3); a second attempt
// must be refused and counted.
func TestSnapshotWriteOnce(t *testing.T) {
	env, pl, _ := bootPlatform(t, false)
	defer env.Shutdown()
	h := pl.HV
	nb := pl.NetBacks[0].Dom

	dc := h.DeniedCalls
	if err := h.VMSnapshot(nb); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("re-snapshot = %v, want ErrPerm", err)
	}
	if h.DeniedCalls == dc {
		t.Fatal("re-snapshot denial did not tick DeniedCalls")
	}
}

// TestRuntimeRevocationOverridesManifest: the capability manifest is the
// boot-time whitelist, not a floor. After RevokeHypercall the runtime
// refusal must win even though capability.Hypercalls still lists the call
// for the role — the static surface describes what the shard was built
// with, the privilege table what it holds now.
func TestRuntimeRevocationOverridesManifest(t *testing.T) {
	env, pl, _ := bootPlatform(t, false)
	defer env.Shutdown()
	h := pl.HV
	builder := pl.BuilderDom

	// A fresh shard, granted HyperVMSnapshot and then revoked before it
	// ever snapshots, isolates the revocation path from the write-once
	// rule (the boot-time shards already hold snapshots).
	s, err := h.CreateDomain(builder, hv.DomainConfig{Name: "probe-shard", MemMB: 16, Shard: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Unpause(builder, s.ID); err != nil {
		t.Fatal(err)
	}
	grant := hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot}}
	if err := h.AssignPrivileges(builder, s.ID, grant); err != nil {
		t.Fatal(err)
	}
	if err := h.RevokeHypercall(builder, s.ID, xtypes.HyperVMSnapshot); err != nil {
		t.Fatal(err)
	}
	dc := h.DeniedCalls
	if err := h.VMSnapshot(s.ID); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("revoked snapshot = %v, want ErrPerm", err)
	}
	if h.DeniedCalls == dc {
		t.Fatal("revoked-hypercall denial did not tick DeniedCalls")
	}
	// Re-granting restores the call: the revocation, not some other gate,
	// was the decisive refusal.
	if err := h.AssignPrivileges(builder, s.ID, grant); err != nil {
		t.Fatal(err)
	}
	if err := h.VMSnapshot(s.ID); err != nil {
		t.Fatalf("re-granted snapshot = %v, want success", err)
	}

	// Revoking from the live netback leaves the static manifest untouched:
	// the role still lists the call.
	nb := pl.NetBacks[0].Dom
	if err := h.RevokeHypercall(builder, nb, xtypes.HyperVMSnapshot); err != nil {
		t.Fatal(err)
	}
	listed := false
	for _, hc := range capability.Hypercalls(capability.RoleNetBack) {
		if hc == xtypes.HyperVMSnapshot {
			listed = true
		}
	}
	if !listed {
		t.Fatal("manifest dropped HyperVMSnapshot for netback — revocation must be runtime-only")
	}
}

// --- Probe edge cases --------------------------------------------------------

// TestProbeMidMicroreboot: the dynamic probe run while a netback microreboot
// is in flight must still come back clean — rollback must not leave a window
// where enforcement is relaxed — and the restart must complete normally
// afterwards.
func TestProbeMidMicroreboot(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	nb := pl.NetBacks[0].Dom
	eng := snapshot.NewEngine(pl.HV, pl.BuilderDom)
	if err := eng.Manage(pl.NetBacks[0].AsRestartable(), snapshot.Policy{Kind: snapshot.PolicyPerRequest}); err != nil {
		t.Fatal(err)
	}
	env.Spawn("mr", func(p *sim.Proc) {
		if err := eng.RequestRestart(p, nb); err != nil {
			t.Errorf("restart: %v", err)
		}
	})
	// Advance just past the rollback so the component is mid-recovery.
	env.RunFor(2 * sim.Microsecond)
	p := Probe(pl, nb, guests[1])
	if !p.Clean() {
		t.Fatalf("netback escalated mid-microreboot: %v", p.Obtained())
	}
	env.RunFor(30 * sim.Second)
	st, ok := eng.Stats(nb)
	if !ok || st.Restarts != 1 || st.Errors != 0 {
		t.Fatalf("restart did not complete cleanly: %+v (managed=%v)", st, ok)
	}
}

// TestProbeAfterUnlink: once a guest is unlinked from the netback, the
// shard's residual reach over it is gone — a fresh grant toward the
// ex-client must be refused (GrantedToVictim stays false) and counted.
func TestProbeAfterUnlink(t *testing.T) {
	env, pl, guests := bootPlatform(t, false)
	defer env.Shutdown()
	h := pl.HV
	nb := pl.NetBacks[0].Dom
	if err := h.UnlinkShardClient(hv.SystemCaller, nb, guests[1]); err != nil {
		t.Fatal(err)
	}
	dc := h.DeniedCalls
	p := Probe(pl, nb, guests[1])
	if p.GrantedToVictim {
		t.Fatal("netback granted to an unlinked ex-client")
	}
	if !p.Clean() {
		t.Fatalf("netback obtained after unlink: %v", p.Obtained())
	}
	if h.DeniedCalls == dc {
		t.Fatal("probe denials were not counted")
	}
}
