package migrate

import (
	"errors"
	"testing"

	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// twoHosts builds two hypervisors in one simulation: a source with a
// privileged orchestrator and a guest, and an empty destination with a
// builder-role domain.
func twoHosts(t *testing.T) (*sim.Env, *hv.Hypervisor, *hv.Hypervisor, *hv.Domain, *hv.Domain, *hv.Domain) {
	t.Helper()
	env := sim.NewEnv(1)
	src := hv.New(env, hw.NewMachine(env))
	dst := hv.New(env, hw.NewMachine(env))

	orch, _ := src.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "toolstack", MemMB: 128, Shard: true})
	src.Unpause(hv.SystemCaller, orch.ID)
	src.AssignPrivileges(hv.SystemCaller, orch.ID, hv.Assignment{Hypercalls: []xtypes.Hypercall{
		xtypes.HyperMapForeign, xtypes.HyperDomctlPause, xtypes.HyperDomctlUnpause,
		xtypes.HyperDomctlDestroy,
	}})

	guest, _ := src.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "app", MemMB: 1024})
	src.Unpause(hv.SystemCaller, guest.ID)
	// The orchestrator must control the guest: make it the parent toolstack.
	srcBuilderish := hv.SystemCaller
	_ = srcBuilderish
	srcSetParent(t, src, guest.ID, orch.ID)

	dstBuilder, _ := dst.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "builder", MemMB: 64, Shard: true})
	dst.Unpause(hv.SystemCaller, dstBuilder.ID)
	dst.AssignPrivileges(hv.SystemCaller, dstBuilder.ID, hv.Assignment{Hypercalls: []xtypes.Hypercall{
		xtypes.HyperDomctlCreate, xtypes.HyperDomctlUnpause,
	}})
	return env, src, dst, orch, guest, dstBuilder
}

func srcSetParent(t *testing.T, h *hv.Hypervisor, guest, tool xtypes.DomID) {
	t.Helper()
	if err := h.SetParentTool(hv.SystemCaller, guest, tool); err != nil {
		t.Fatal(err)
	}
}

func TestLiveMigrationMovesMemory(t *testing.T) {
	env, src, dst, orch, guest, dstBuilder := twoHosts(t)
	// Populate guest memory with recognizable contents — enough pages that
	// the pre-copy needs several rounds to converge.
	for i := 0; i < 20000; i++ {
		guest.Mem.Write(xtypes.PFN(i), []byte{byte(i), byte(i >> 3)})
	}

	var dstDom xtypes.DomID
	var res Result
	var err error
	env.Spawn("migrate", func(p *sim.Proc) {
		dstDom, res, err = LiveMigrate(p, src, orch.ID, guest.ID, dst, dstBuilder.ID, DefaultLink(), DefaultOptions())
	})
	env.RunFor(300 * sim.Second)
	env.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	// Gone from the source.
	if _, err := src.Domain(guest.ID); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatal("guest survived on source")
	}
	// Running on the destination with identical contents.
	dd, err := dst.Domain(dstDom)
	if err != nil {
		t.Fatal(err)
	}
	if dd.State != hv.StateRunning {
		t.Fatalf("dst state = %v", dd.State)
	}
	for i := 0; i < 20000; i++ {
		data, _ := dd.Mem.Read(xtypes.PFN(i))
		if len(data) != 2 || data[0] != byte(i) {
			t.Fatalf("page %d content mismatch: %v", i, data)
		}
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, expected iterative pre-copy", res.Rounds)
	}
	if res.PagesCopied < 20000 {
		t.Fatalf("pages copied = %d", res.PagesCopied)
	}
}

func TestDowntimeFarBelowTotalTime(t *testing.T) {
	env, src, dst, orch, guest, dstBuilder := twoHosts(t)
	// A large touched set makes the full copy expensive.
	for i := 0; i < 50000; i++ {
		guest.Mem.Write(xtypes.PFN(i), []byte{1})
	}
	var res Result
	var err error
	env.Spawn("migrate", func(p *sim.Proc) {
		_, res, err = LiveMigrate(p, src, orch.ID, guest.ID, dst, dstBuilder.ID, DefaultLink(), DefaultOptions())
	})
	env.RunFor(600 * sim.Second)
	env.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	// 50000 pages ≈ 200MB ≈ 1.75s on the wire; downtime must be a tiny
	// fraction of it — the whole point of pre-copy.
	if res.TotalTime < sim.Second {
		t.Fatalf("total = %v, expected over a second", res.TotalTime)
	}
	if res.Downtime > 100*sim.Millisecond {
		t.Fatalf("downtime = %v, want well under 100ms", res.Downtime)
	}
	if res.Downtime <= activationCost/2 {
		t.Fatalf("downtime = %v suspiciously low", res.Downtime)
	}
}

func TestMigrationRequiresSourcePrivileges(t *testing.T) {
	env, src, dst, _, guest, dstBuilder := twoHosts(t)
	// An unprivileged sibling guest tries to steal the VM.
	rogue, _ := src.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "rogue", MemMB: 64})
	src.Unpause(hv.SystemCaller, rogue.ID)
	var err error
	env.Spawn("migrate", func(p *sim.Proc) {
		_, _, err = LiveMigrate(p, src, rogue.ID, guest.ID, dst, dstBuilder.ID, DefaultLink(), DefaultOptions())
	})
	env.RunFor(60 * sim.Second)
	env.Shutdown()
	if !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("rogue migration: %v", err)
	}
	// The guest is untouched.
	if _, derr := src.Domain(guest.ID); derr != nil {
		t.Fatal("guest harmed by failed migration")
	}
}

func TestMigrationRequiresDestinationPrivileges(t *testing.T) {
	env, src, dst, orch, guest, _ := twoHosts(t)
	// A destination domain without domain-creation rights.
	weak, _ := dst.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "weak", MemMB: 64, Shard: true})
	dst.Unpause(hv.SystemCaller, weak.ID)
	var err error
	env.Spawn("migrate", func(p *sim.Proc) {
		_, _, err = LiveMigrate(p, src, orch.ID, guest.ID, dst, weak.ID, DefaultLink(), DefaultOptions())
	})
	env.RunFor(60 * sim.Second)
	env.Shutdown()
	if !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("unprivileged destination: %v", err)
	}
}

func TestHighDirtyRateForcesMaxRounds(t *testing.T) {
	env, src, dst, orch, guest, dstBuilder := twoHosts(t)
	for i := 0; i < 30000; i++ {
		guest.Mem.Write(xtypes.PFN(i), []byte{1})
	}
	opts := DefaultOptions()
	opts.DirtyPagesPerSec = 10_000_000 // dirties faster than the link copies
	opts.MaxRounds = 6
	var res Result
	var err error
	env.Spawn("migrate", func(p *sim.Proc) {
		_, res, err = LiveMigrate(p, src, orch.ID, guest.ID, dst, dstBuilder.ID, DefaultLink(), opts)
	})
	env.RunFor(600 * sim.Second)
	env.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != opts.MaxRounds {
		t.Fatalf("rounds = %d, want forced cutoff at %d", res.Rounds, opts.MaxRounds)
	}
	// A non-converging pre-copy pays for it in downtime.
	if res.Downtime < 50*sim.Millisecond {
		t.Fatalf("downtime = %v, expected large residual copy", res.Downtime)
	}
}

func TestMigrationToFullDestinationFails(t *testing.T) {
	env, src, dst, orch, guest, dstBuilder := twoHosts(t)
	// Exhaust destination memory first.
	hog, err := dst.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "hog", MemMB: 3900})
	if err != nil {
		t.Fatal(err)
	}
	dst.Unpause(hv.SystemCaller, hog.ID)
	var merr error
	env.Spawn("migrate", func(p *sim.Proc) {
		_, _, merr = LiveMigrate(p, src, orch.ID, guest.ID, dst, dstBuilder.ID, DefaultLink(), DefaultOptions())
	})
	env.RunFor(60 * sim.Second)
	env.Shutdown()
	if !errors.Is(merr, xtypes.ErrNoMem) {
		t.Fatalf("migration to full host: %v", merr)
	}
	if _, err := src.Domain(guest.ID); err != nil {
		t.Fatal("guest lost after failed migration")
	}
}
