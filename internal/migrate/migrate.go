// Package migrate implements pre-copy live migration of guest VMs between
// hosts, the enterprise feature the paper repeatedly names as the reason a
// virtualization platform cannot simply delete its control plane (§1,
// §2.3.1: NoHype "could no longer be used for interposition, which is
// necessary for live migration").
//
// The algorithm is the classic iterative pre-copy of Clark et al. (NSDI'05),
// which Xen implements and Xoar preserves: copy all memory while the guest
// runs, then repeatedly copy the pages dirtied during the previous round,
// and finally pause the guest for a brief stop-and-copy of the residual
// dirty set. Migration requires exactly the privileges the paper's model
// assigns: the orchestrating component must hold foreign-mapping rights over
// the guest on the source host and domain-building rights on the
// destination.
package migrate

import (
	"fmt"

	"xoar/internal/hv"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// Link models the migration network between two hosts.
type Link struct {
	// Bandwidth in bytes/second (a dedicated Gigabit management link by
	// default).
	Bandwidth float64
	// RTT is the per-round control handshake cost.
	RTT sim.Duration
}

// DefaultLink is a Gigabit management network.
func DefaultLink() Link { return Link{Bandwidth: 117e6, RTT: 200 * sim.Microsecond} }

// Options tune the pre-copy loop.
type Options struct {
	// MaxRounds bounds the iterative phase before forcing stop-and-copy.
	MaxRounds int
	// StopThresholdPages: when the dirty set shrinks below this, stop.
	StopThresholdPages int
	// DirtyPagesPerSec models the guest's writable-working-set rate; real
	// Xen measures this with shadow page tables, which the memory model
	// stands in for.
	DirtyPagesPerSec int
}

// DefaultOptions matches Xen's defaults in spirit.
func DefaultOptions() Options {
	return Options{MaxRounds: 29, StopThresholdPages: 50, DirtyPagesPerSec: 2000}
}

// Result reports a migration's metrics.
type Result struct {
	Rounds      int
	PagesCopied int
	// Downtime is the stop-and-copy blackout the guest observes.
	Downtime sim.Duration
	// TotalTime is wall-clock from start to resume on the destination.
	TotalTime sim.Duration
}

// activationCost is the destination-side unpause plus gratuitous-ARP delay.
const activationCost = 30 * sim.Millisecond

// transfer charges link time for n pages.
func (l Link) transfer(p *sim.Proc, pages int) {
	bytes := float64(pages * xtypes.PageSize)
	p.Sleep(sim.Duration(bytes/l.Bandwidth*float64(sim.Second)) + l.RTT)
}

// LiveMigrate moves guest from src to dst.
//
// caller is the orchestrating domain on the source (a Toolstack in the Xoar
// profile, Dom0 in the stock one); it must hold HyperMapForeign plus control
// over the guest — the hypervisor enforces both. dstCaller plays the Builder
// role on the destination and must hold domain-creation rights there.
//
// On success the guest is destroyed on src and a running domain with
// identical memory contents exists on dst; its ID there is returned. Device
// connections are *not* migrated — exactly as in Xen, the destination
// toolstack re-wires vifs and vbds and the frontends renegotiate, the same
// protocol recovery path microreboots use (§3.3).
func LiveMigrate(p *sim.Proc, src *hv.Hypervisor, caller, guest xtypes.DomID,
	dst *hv.Hypervisor, dstCaller xtypes.DomID, link Link, opts Options) (xtypes.DomID, Result, error) {

	var res Result
	start := p.Now()

	d, err := src.Domain(guest)
	if err != nil {
		return xtypes.DomIDNone, res, err
	}
	// Privilege probe: mapping the guest's memory is exactly what the
	// copying loop needs; if this fails the caller has no business migrating
	// the VM.
	if err := src.MapForeign(caller, guest, 0); err != nil {
		return xtypes.DomIDNone, res, fmt.Errorf("migrate: source privileges: %w", err)
	}
	defer src.UnmapForeign(caller, guest)

	// Destination reservation: same configuration, paused.
	dstShell, err := dst.CreateDomain(dstCaller, d.Cfg)
	if err != nil {
		return xtypes.DomIDNone, res, fmt.Errorf("migrate: destination: %w", err)
	}
	dstDom := dstShell.ID
	// abort reverses partial state when the migration fails after the shell
	// exists: the destination reservation is reaped so a failed migration
	// does not strand memory there (best-effort — the Builder-role dstCaller
	// holds destroy rights in every profile; if a test caller does not, the
	// shell stays paused and harmless), and the source guest, if we paused
	// it for stop-and-copy, is resumed. The contract is: a failed migration
	// leaves the guest running on the source, untouched.
	srcPaused := false
	abort := func() {
		_ = dst.DestroyDomain(dstCaller, dstDom, "migration aborted")
		if srcPaused {
			_ = src.Unpause(caller, guest)
		}
	}

	// Round 0: the full touched set, while the guest keeps running.
	pending := d.Mem.TouchedPages()
	if pending == 0 {
		pending = 1
	}
	for {
		res.Rounds++
		res.PagesCopied += pending
		roundStart := p.Now()
		link.transfer(p, pending)
		// The guest runs during pre-copy and can die under us (crash, or an
		// operator destroy racing the migration). Surface that between
		// rounds instead of pushing stale pages until stop-and-copy.
		if _, derr := src.Domain(guest); derr != nil {
			abort()
			return xtypes.DomIDNone, res, fmt.Errorf("migrate: source lost mid-transfer: %w", derr)
		}
		roundSecs := p.Now().Sub(roundStart).Seconds()
		// Pages dirtied while this round was on the wire become the next
		// round's work — bounded by the guest's reservation, since a VM
		// cannot dirty more pages than it has.
		pending = int(float64(opts.DirtyPagesPerSec) * roundSecs)
		if pending > d.Mem.MaxPages() {
			pending = d.Mem.MaxPages()
		}
		if pending <= opts.StopThresholdPages || res.Rounds >= opts.MaxRounds {
			break
		}
	}

	// Stop-and-copy: pause, move the residual set plus the actual page
	// contents, hand over, resume.
	if err := src.Pause(caller, guest); err != nil {
		abort()
		return xtypes.DomIDNone, res, err
	}
	srcPaused = true
	blackoutStart := p.Now()
	if pending > 0 {
		res.PagesCopied += pending
		link.transfer(p, pending)
	}
	// Contents move with the VM: replicate every touched page verbatim.
	dd, err := dst.Domain(dstDom)
	if err != nil {
		abort()
		return xtypes.DomIDNone, res, err
	}
	for pfn := xtypes.PFN(0); pfn < xtypes.PFN(d.Mem.MaxPages()); pfn++ {
		data, rerr := d.Mem.Read(pfn)
		if rerr != nil || data == nil {
			continue
		}
		if werr := dd.Mem.Write(pfn, data); werr != nil {
			abort()
			return xtypes.DomIDNone, res, werr
		}
	}
	p.Sleep(activationCost)
	if err := dst.Unpause(dstCaller, dstDom); err != nil {
		abort()
		return xtypes.DomIDNone, res, err
	}
	res.Downtime = p.Now().Sub(blackoutStart)

	// The source copy is gone; its devices tear down through the normal
	// destroy path.
	if err := src.DestroyDomain(caller, guest, "migrated"); err != nil {
		return xtypes.DomIDNone, res, err
	}
	res.TotalTime = p.Now().Sub(start)
	return dstDom, res, nil
}
