package migrate

import (
	"errors"
	"testing"

	"xoar/internal/hv"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/xtypes"
)

// Failure-path contract, pinned by the tests below: a migration that fails at
// any point after the destination shell exists (1) leaves the guest alive and
// running on the source — if stop-and-copy had already paused it, it is
// resumed — and (2) reaps the destination reservation so the failed attempt
// does not strand memory on the target host.

// grantDestroy upgrades the destination builder-role domain with the destroy
// right the real Builder holds, so abort's shell cleanup can be observed.
func grantDestroy(t *testing.T, h *hv.Hypervisor, dom xtypes.DomID) {
	t.Helper()
	if err := h.AssignPrivileges(hv.SystemCaller, dom, hv.Assignment{Hypercalls: []xtypes.Hypercall{
		xtypes.HyperDomctlCreate, xtypes.HyperDomctlUnpause, xtypes.HyperDomctlDestroy,
	}}); err != nil {
		t.Fatal(err)
	}
}

// domainNamed reports whether the hypervisor has a live domain with the name.
func domainNamed(h *hv.Hypervisor, name string) bool {
	for _, d := range h.Domains() {
		if d.Cfg.Name == name {
			return true
		}
	}
	return false
}

func TestSourceDestroyedMidTransferCleansDestination(t *testing.T) {
	env, src, dst, orch, guest, dstBuilder := twoHosts(t)
	grantDestroy(t, dst, dstBuilder.ID)
	// Enough touched pages that pre-copy stays on the wire for seconds.
	for i := 0; i < 100_000; i++ {
		guest.Mem.Write(xtypes.PFN(i), []byte{1})
	}
	var merr error
	env.Spawn("migrate", func(p *sim.Proc) {
		_, _, merr = LiveMigrate(p, src, orch.ID, guest.ID, dst, dstBuilder.ID, DefaultLink(), DefaultOptions())
	})
	// The guest dies mid-transfer (crash or operator destroy racing us).
	env.Spawn("killer", func(p *sim.Proc) {
		p.Sleep(500 * sim.Millisecond)
		if err := src.DestroyDomain(hv.SystemCaller, guest.ID, "crashed"); err != nil {
			t.Errorf("destroy: %v", err)
		}
	})
	env.RunFor(600 * sim.Second)
	env.Shutdown()
	if !errors.Is(merr, xtypes.ErrNoDomain) {
		t.Fatalf("migration of dying guest: %v, want ErrNoDomain", merr)
	}
	// The destination reservation must not be stranded.
	if domainNamed(dst, "app") {
		t.Fatal("failed migration leaked the destination shell")
	}
}

func TestDestinationLostMidTransferResumesSource(t *testing.T) {
	env, src, dst, orch, guest, dstBuilder := twoHosts(t)
	grantDestroy(t, dst, dstBuilder.ID)
	for i := 0; i < 100_000; i++ {
		guest.Mem.Write(xtypes.PFN(i), []byte{1})
	}
	var merr error
	env.Spawn("migrate", func(p *sim.Proc) {
		_, _, merr = LiveMigrate(p, src, orch.ID, guest.ID, dst, dstBuilder.ID, DefaultLink(), DefaultOptions())
	})
	// The destination host reaps the shell mid-transfer (admission control,
	// host eviction — anything that kills the reservation under us).
	env.Spawn("evictor", func(p *sim.Proc) {
		p.Sleep(500 * sim.Millisecond)
		for _, d := range dst.Domains() {
			if d.Cfg.Name == "app" {
				if err := dst.DestroyDomain(hv.SystemCaller, d.ID, "evicted"); err != nil {
					t.Errorf("evict: %v", err)
				}
			}
		}
	})
	env.RunFor(600 * sim.Second)
	env.Shutdown()
	if merr == nil {
		t.Fatal("migration into a dead reservation must fail")
	}
	// The guest survives on the source — and is running, not left paused by
	// the aborted stop-and-copy.
	d, err := src.Domain(guest.ID)
	if err != nil {
		t.Fatalf("guest lost on source: %v", err)
	}
	if d.State != hv.StateRunning {
		t.Fatalf("guest state after aborted migration = %v, want running", d.State)
	}
}

func TestPauseFailureReapsDestinationShell(t *testing.T) {
	env, src, dst, _, guest, dstBuilder := twoHosts(t)
	grantDestroy(t, dst, dstBuilder.ID)
	// An orchestrator that can map the guest but not pause it: pre-copy runs,
	// stop-and-copy fails — after the destination shell exists.
	weak, _ := src.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "weak-orch", MemMB: 64, Shard: true})
	src.Unpause(hv.SystemCaller, weak.ID)
	src.AssignPrivileges(hv.SystemCaller, weak.ID, hv.Assignment{Hypercalls: []xtypes.Hypercall{
		xtypes.HyperMapForeign,
	}})
	srcSetParent(t, src, guest.ID, weak.ID)
	for i := 0; i < 10_000; i++ {
		guest.Mem.Write(xtypes.PFN(i), []byte{1})
	}
	var merr error
	env.Spawn("migrate", func(p *sim.Proc) {
		_, _, merr = LiveMigrate(p, src, weak.ID, guest.ID, dst, dstBuilder.ID, DefaultLink(), DefaultOptions())
	})
	env.RunFor(600 * sim.Second)
	env.Shutdown()
	if !errors.Is(merr, xtypes.ErrPerm) {
		t.Fatalf("pause without rights: %v, want ErrPerm", merr)
	}
	if domainNamed(dst, "app") {
		t.Fatal("failed migration leaked the destination shell")
	}
	if d, err := src.Domain(guest.ID); err != nil || d.State != hv.StateRunning {
		t.Fatalf("guest must stay running on source (err=%v)", err)
	}
}

// stubShard is a minimal Restartable driver shard for the microreboot race.
type stubShard struct {
	dom      xtypes.DomID
	restarts int
}

func (s *stubShard) Dom() xtypes.DomID { return s.dom }
func (s *stubShard) Name() string      { return "netback-stub" }
func (s *stubShard) Restart(p *sim.Proc, fast bool) {
	s.restarts++
	p.Sleep(50 * sim.Millisecond)
}

// TestMigrateGuestWhoseShardIsMicrorebooting pins the interaction the paper's
// design implies but nothing tested: device connections are never migrated
// (the destination re-wires and frontends renegotiate, §3.3), so a microreboot
// of the guest's serving shard concurrent with the migration must neither
// block the migration nor be blocked by it. Afterwards the source-side client
// link is gone — torn down by the source destroy — so the shard's exposure
// window over the departed guest has closed.
func TestMigrateGuestWhoseShardIsMicrorebooting(t *testing.T) {
	env, src, dst, orch, guest, dstBuilder := twoHosts(t)
	grantDestroy(t, dst, dstBuilder.ID)

	shard, err := src.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "netback", MemMB: 64, Shard: true})
	if err != nil {
		t.Fatal(err)
	}
	src.Unpause(hv.SystemCaller, shard.ID)
	src.AssignPrivileges(hv.SystemCaller, shard.ID, hv.Assignment{Hypercalls: []xtypes.Hypercall{
		xtypes.HyperVMSnapshot,
	}})
	if err := src.VMSnapshot(shard.ID); err != nil {
		t.Fatal(err)
	}
	if err := src.LinkShardClient(hv.SystemCaller, shard.ID, guest.ID); err != nil {
		t.Fatal(err)
	}

	eng := snapshot.NewEngine(src, hv.SystemCaller)
	stub := &stubShard{dom: shard.ID}
	if err := eng.Manage(stub, snapshot.Policy{Kind: snapshot.PolicyPerRequest}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100_000; i++ {
		guest.Mem.Write(xtypes.PFN(i), []byte{1})
	}
	var merr error
	env.Spawn("migrate", func(p *sim.Proc) {
		_, _, merr = LiveMigrate(p, src, orch.ID, guest.ID, dst, dstBuilder.ID, DefaultLink(), DefaultOptions())
	})
	// The shard restart lands squarely inside the pre-copy window.
	env.Spawn("rebooter", func(p *sim.Proc) {
		p.Sleep(500 * sim.Millisecond)
		if err := eng.RequestRestart(p, shard.ID); err != nil {
			t.Errorf("restart during migration: %v", err)
		}
	})
	env.RunFor(600 * sim.Second)
	env.Shutdown()
	if merr != nil {
		t.Fatalf("migration concurrent with shard microreboot: %v", merr)
	}
	if stub.restarts != 1 {
		t.Fatalf("shard restarts = %d, want 1", stub.restarts)
	}
	st, ok := eng.Stats(shard.ID)
	if !ok || st.Errors != 0 {
		t.Fatalf("restart stats: %+v", st)
	}
	// Source copy destroyed by the migration; its shard link went with it.
	sd, err := src.Domain(shard.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sd.Clients() {
		if c == guest.ID {
			t.Fatal("departed guest still linked to source shard")
		}
	}
}
