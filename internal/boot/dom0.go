package boot

import (
	"fmt"

	"xoar/internal/blkdrv"
	"xoar/internal/builder"
	"xoar/internal/consolemgr"
	"xoar/internal/hv"
	"xoar/internal/netdrv"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

// BootDom0 boots the stock monolithic platform: one control VM hosting
// every service, with full privilege over the system. The same component
// objects are instantiated as in Xoar — but all homed in the single Dom0
// domain, co-located on its two vCPUs (the XenServer default, §6.1), inside
// one trust boundary, and brought up strictly sequentially.
func BootDom0(p *sim.Proc, h *hv.Hypervisor, cat *osimage.Catalog, opts Options) (*Platform, error) {
	h.EnforceShardIVC = false
	pl := &Platform{HV: h, Catalog: cat, Monolithic: true}

	bootSpan := opts.Telemetry.StartSpan("boot", "boot:dom0", p.Now())
	defer func() { bootSpan.EndAt(p.Now()) }()

	p.Sleep(xenBoot)

	img, err := cat.Lookup(osimage.ImgDom0)
	if err != nil {
		return nil, err
	}
	d0, err := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{
		Name: "dom0", MemMB: img.MemMB, VCPUs: 2, Critical: true, OSImage: img.Name,
	})
	if err != nil {
		return nil, err
	}
	if err := h.AssignPrivileges(hv.SystemCaller, d0.ID, hv.Assignment{
		ControlAll: true,
		IOPorts:    []string{"console", "pci"},
	}); err != nil {
		return nil, err
	}
	if err := h.Unpause(hv.SystemCaller, d0.ID); err != nil {
		return nil, err
	}
	pl.Dom0 = d0.ID
	pl.BuilderDom = d0.ID
	pl.ConsoleDom = d0.ID
	pl.PCIBackDom = d0.ID
	pl.XSLogicDom = d0.ID
	pl.XSStateDom = d0.ID
	pl.BootstrapperDom = d0.ID
	h.RouteHardwareVIRQ(d0.ID, xtypes.VIRQConsole, d0.ID)

	// Kernel boot, then in-kernel hardware bring-up: PCI enumeration plus
	// every controller's init, strictly in sequence.
	p.Sleep(img.KernelBoot)
	h.Machine.Bus.ClaimConfigSpace(d0.ID)
	if _, err := h.Machine.Bus.Enumerate(p, d0.ID); err != nil {
		return nil, err
	}
	for _, nic := range h.Machine.NICs() {
		h.Machine.Bus.Assign(nic.Addr(), d0.ID)
		nic.Reset(p)
	}
	for _, disk := range h.Machine.Disks() {
		h.Machine.Bus.Assign(disk.Addr(), d0.ID)
		disk.Reset(p)
	}

	// Userspace services: xenstored, xenconsoled, udev, the toolstack, and
	// the distribution's init scripts.
	pl.XenStoreState = xenstore.NewState()
	pl.XenStoreLogic = xenstore.NewLogic(h.Env, pl.XenStoreState)
	pl.XenStoreLogic.SetMetrics(opts.Telemetry)
	xs := pl.XenStoreLogic.Connect(d0.ID, true)
	// Same XenStore reaping as the Xoar profile: xenstored cleans up after
	// dead domains regardless of how the control plane is packaged.
	h.OnDestroy(func(id xtypes.DomID) {
		pl.XenStoreLogic.Disconnect(id)
		xs.Rm(xenstore.TxNone, fmt.Sprintf("/local/domain/%d", id))
	})

	pl.Console = consolemgr.New(h, d0.ID, h.Machine.Serial, xs)
	if err := pl.Console.Start(p); err != nil {
		return nil, err
	}
	for _, nic := range h.Machine.NICs() {
		b := netdrv.NewBackend(h, d0.ID, nic, xs)
		b.SetMetrics(opts.Telemetry)
		b.Start(p)
		pl.NetBacks = append(pl.NetBacks, b)
	}
	for _, disk := range h.Machine.Disks() {
		b := blkdrv.NewBackend(h, d0.ID, disk, xs)
		b.CoLocated = true
		b.SetMetrics(opts.Telemetry)
		b.Start(p)
		pl.BlkBacks = append(pl.BlkBacks, b)
	}
	p.Sleep(img.ServiceBoot)
	pl.Timings.ConsoleReady = p.Now()

	// The monolithic profile builds no shards through the Builder during
	// boot — everything above came up in-process inside Dom0 — so there is
	// no batch to SubmitAll here; the Builder exists only for post-boot
	// guest creation (where toolstacks may still batch via SubmitAll).
	pl.Builder = builder.New(h, d0.ID, cat, xs)
	// Stock Xen has no microreboot machinery: Rollback/Rebuild/Recover on
	// this profile refuse with xtypes.ErrNoMicroreboot (§3.3 is Xoar-only).
	pl.Builder.Monolithic = true
	pl.Builder.SetMetrics(opts.Telemetry)
	h.Env.Spawn("dom0-builder-serve", pl.Builder.Serve)
	ts := toolstack.New(h, d0.ID, pl.XenStoreLogic, pl.Builder)
	ts.Console = pl.Console
	ts.NetBacks = pl.NetBacks
	ts.BlkBacks = pl.BlkBacks
	pl.Toolstacks = []*toolstack.Toolstack{ts}

	// Late network negotiation (DHCP, bridge setup) delays ping response
	// past the login prompt, as the paper's measurement notes.
	p.Sleep(3300 * sim.Millisecond)
	pl.Timings.PingReady = p.Now()
	pl.Timings.Done = p.Now()
	return pl, nil
}
