package boot

import (
	"errors"
	"fmt"
	"testing"

	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/toolstack"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

func bootXoar(t *testing.T, opts Options) (*sim.Env, *hv.Hypervisor, *Platform) {
	t.Helper()
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	var pl *Platform
	var err error
	env.Spawn("boot", func(p *sim.Proc) {
		pl, err = BootXoar(p, h, osimage.DefaultCatalog(), opts)
	})
	env.RunFor(120 * sim.Second)
	if err != nil {
		t.Fatalf("xoar boot: %v", err)
	}
	if pl == nil {
		t.Fatal("boot did not finish in 120s")
	}
	return env, h, pl
}

func bootDom0(t *testing.T) (*sim.Env, *hv.Hypervisor, *Platform) {
	t.Helper()
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	var pl *Platform
	var err error
	env.Spawn("boot", func(p *sim.Proc) {
		pl, err = BootDom0(p, h, osimage.DefaultCatalog(), Options{})
	})
	env.RunFor(120 * sim.Second)
	if err != nil {
		t.Fatalf("dom0 boot: %v", err)
	}
	if pl == nil {
		t.Fatal("boot did not finish")
	}
	return env, h, pl
}

func TestXoarBootBringsUpAllComponents(t *testing.T) {
	env, h, pl := bootXoar(t, Options{})
	defer env.Shutdown()
	if pl.Console == nil || !pl.Console.Serving() {
		t.Fatal("console not serving")
	}
	if len(pl.NetBacks) != 1 || !pl.NetBacks[0].Serving() {
		t.Fatal("netback not serving")
	}
	if len(pl.BlkBacks) != 1 || !pl.BlkBacks[0].Serving() {
		t.Fatal("blkback not serving")
	}
	if len(pl.Toolstacks) != 1 {
		t.Fatal("no toolstack")
	}
	// The bootstrapper is gone and the host is fine.
	if _, err := h.Domain(pl.BootstrapperDom); err == nil {
		t.Fatal("bootstrapper survived boot")
	}
	if h.CrashedHost {
		t.Fatal("host crashed during boot")
	}
	// Every live control-plane domain is a shard.
	for _, d := range h.Domains() {
		if !d.IsShard() {
			t.Fatalf("non-shard control domain %s", d.Name)
		}
	}
}

func TestXoarBootTimingsOrdering(t *testing.T) {
	env, _, pl := bootXoar(t, Options{})
	defer env.Shutdown()
	tm := pl.Timings
	if tm.ConsoleReady <= 0 || tm.PingReady < tm.ConsoleReady || tm.Done < tm.PingReady {
		t.Fatalf("timings out of order: %+v", tm)
	}
}

func TestBootComparisonMatchesPaperShape(t *testing.T) {
	env1, _, xoar := bootXoar(t, Options{})
	defer env1.Shutdown()
	env2, _, dom0 := bootDom0(t)
	defer env2.Shutdown()

	consoleSpeedup := dom0.Timings.ConsoleReady.Seconds() / xoar.Timings.ConsoleReady.Seconds()
	pingSpeedup := dom0.Timings.PingReady.Seconds() / xoar.Timings.PingReady.Seconds()
	// Paper: 1.5x console, 1.15x ping. Accept the shape with slack.
	if consoleSpeedup < 1.25 || consoleSpeedup > 1.8 {
		t.Errorf("console speedup = %.2f (xoar %.1fs, dom0 %.1fs)", consoleSpeedup,
			xoar.Timings.ConsoleReady.Seconds(), dom0.Timings.ConsoleReady.Seconds())
	}
	if pingSpeedup < 1.02 || pingSpeedup > 1.4 {
		t.Errorf("ping speedup = %.2f (xoar %.1fs, dom0 %.1fs)", pingSpeedup,
			xoar.Timings.PingReady.Seconds(), dom0.Timings.PingReady.Seconds())
	}
	// Console must come up faster than ping in both profiles.
	if xoar.Timings.ConsoleReady > xoar.Timings.PingReady {
		t.Error("xoar console after ping")
	}
}

func TestSerializedBootSlower(t *testing.T) {
	env1, _, par := bootXoar(t, Options{})
	defer env1.Shutdown()
	env2, _, ser := bootXoar(t, Options{Serialize: true})
	defer env2.Shutdown()
	if ser.Timings.Done <= par.Timings.Done {
		t.Fatalf("serialized boot (%.1fs) not slower than parallel (%.1fs)",
			ser.Timings.Done.Seconds(), par.Timings.Done.Seconds())
	}
}

func TestDestroyPCIBackShrinksTCB(t *testing.T) {
	env, h, pl := bootXoar(t, Options{DestroyPCIBack: true})
	defer env.Shutdown()
	if _, err := h.Domain(pl.PCIBackDom); err == nil {
		t.Fatal("pciback survived")
	}
	if h.Machine.Bus.ConfigOwner() != xtypes.DomIDNone {
		t.Fatal("config space still owned")
	}
	// Devices stay with their driver domains.
	if h.Machine.Bus.AssignedTo(h.Machine.NICs()[0].Addr()) != pl.NetBacks[0].Dom {
		t.Fatal("NIC lost its assignment")
	}
}

func TestGuestLifecycleOnXoar(t *testing.T) {
	env, h, pl := bootXoar(t, Options{})
	defer env.Shutdown()
	ts := pl.Toolstacks[0]
	var g *toolstack.Guest
	var err error
	env.Spawn("ops", func(p *sim.Proc) {
		g, err = ts.CreateVM(p, toolstack.GuestConfig{
			Name: "web", Image: osimage.ImgGuestPV, Net: true, Disk: true,
		})
		if err != nil {
			return
		}
		// Use both devices, then destroy.
		if werr := g.Blk.Write(p, 1<<20, true); werr != nil {
			err = werr
			return
		}
		err = ts.DestroyVM(p, g.Dom)
	})
	env.RunFor(120 * sim.Second)
	if err != nil {
		t.Fatalf("guest lifecycle: %v", err)
	}
	if _, derr := h.Domain(g.Dom); derr == nil {
		t.Fatal("guest survived destroy")
	}
	if ts.Created != 1 || ts.Destroyed != 1 {
		t.Fatalf("counters: %d/%d", ts.Created, ts.Destroyed)
	}
}

func TestGuestLifecycleOnDom0(t *testing.T) {
	env, _, pl := bootDom0(t)
	defer env.Shutdown()
	ts := pl.Toolstacks[0]
	var err error
	env.Spawn("ops", func(p *sim.Proc) {
		g, cerr := ts.CreateVM(p, toolstack.GuestConfig{
			Name: "web", Image: osimage.ImgGuestPV, Net: true, Disk: true,
		})
		if cerr != nil {
			err = cerr
			return
		}
		err = g.Blk.Write(p, 1<<20, true)
	})
	env.RunFor(120 * sim.Second)
	if err != nil {
		t.Fatalf("dom0 guest lifecycle: %v", err)
	}
}

func TestConstraintGroupsEnforced(t *testing.T) {
	env, _, pl := bootXoar(t, Options{})
	defer env.Shutdown()
	ts := pl.Toolstacks[0]
	var err2 error
	env.Spawn("ops", func(p *sim.Proc) {
		if _, err := ts.CreateVM(p, toolstack.GuestConfig{
			Name: "tenantA-1", Image: osimage.ImgGuestPV, Net: true, ConstraintTag: "tenantA",
		}); err != nil {
			err2 = err
			return
		}
		// One NetBack, already locked to tenantA: a tenantB VM must fail.
		_, err2 = ts.CreateVM(p, toolstack.GuestConfig{
			Name: "tenantB-1", Image: osimage.ImgGuestPV, Net: true, ConstraintTag: "tenantB",
		})
	})
	env.RunFor(120 * sim.Second)
	if err2 == nil {
		t.Fatal("constraint violation allowed")
	}
}

func TestCustomKernelUsesBootloader(t *testing.T) {
	env, h, pl := bootXoar(t, Options{})
	defer env.Shutdown()
	ts := pl.Toolstacks[0]
	var dom xtypes.DomID
	var err error
	env.Spawn("ops", func(p *sim.Proc) {
		g, cerr := ts.CreateVM(p, toolstack.GuestConfig{
			Name: "byok", Image: "my-own-kernel", CustomKernel: true,
		})
		if cerr != nil {
			err = cerr
			return
		}
		dom = g.Dom
	})
	env.RunFor(120 * sim.Second)
	if err != nil {
		t.Fatalf("custom kernel build: %v", err)
	}
	d, derr := h.Domain(dom)
	if derr != nil {
		t.Fatal(derr)
	}
	if d.Cfg.OSImage != osimage.ImgBootloader {
		t.Fatalf("custom kernel booted image %q", d.Cfg.OSImage)
	}
}

func TestUnknownImageRejectedWithoutCustomFlag(t *testing.T) {
	env, _, pl := bootXoar(t, Options{})
	defer env.Shutdown()
	ts := pl.Toolstacks[0]
	var err error
	env.Spawn("ops", func(p *sim.Proc) {
		_, err = ts.CreateVM(p, toolstack.GuestConfig{Name: "bad", Image: "evil-kernel"})
	})
	env.RunFor(60 * sim.Second)
	if err == nil {
		t.Fatal("unknown image accepted")
	}
}

// TestDestroyReapsXenStoreTree exercises the OnDestroy reaping hook:
// destroying a guest removes its /local/domain/<id> subtree, and the watch
// events the reap fires at NetBack's autonomous hotplug loop do not perturb
// a later microreboot-and-reconnect of the surviving guest.
func TestDestroyReapsXenStoreTree(t *testing.T) {
	env, h, pl := bootXoar(t, Options{})
	defer env.Shutdown()
	ts := pl.Toolstacks[0]
	nb := pl.NetBacks[0]

	var g1, g2 *toolstack.Guest
	var err error
	env.Spawn("guests", func(p *sim.Proc) {
		if g1, err = ts.CreateVM(p, toolstack.GuestConfig{
			Name: "web1", Image: osimage.ImgGuestPV, Net: true, Disk: true,
		}); err != nil {
			return
		}
		g2, err = ts.CreateVM(p, toolstack.GuestConfig{
			Name: "web2", Image: osimage.ImgGuestPV, Net: true, Disk: true,
		})
	})
	env.RunFor(120 * sim.Second)
	if err != nil {
		t.Fatalf("guests: %v", err)
	}

	// The hotplug loop watches all of /local: the reap below fires deletion
	// events straight at it.
	env.Spawn("netback-hotplug", nb.WatchAndServe)

	base := fmt.Sprintf("/local/domain/%d", g1.Dom)
	admin := pl.XenStoreLogic.Connect(pl.XSLogicDom, true)
	if _, rerr := admin.Read(xenstore.TxNone, base+"/name"); rerr != nil {
		t.Fatalf("guest tree missing before destroy: %v", rerr)
	}
	env.Spawn("destroy", func(p *sim.Proc) { err = ts.DestroyVM(p, g1.Dom) })
	env.RunFor(30 * sim.Second)
	if err != nil {
		t.Fatalf("destroy: %v", err)
	}
	if _, rerr := admin.Read(xenstore.TxNone, base+"/name"); !errors.Is(rerr, xtypes.ErrNotFound) {
		t.Fatalf("guest tree survived destroy: %v", rerr)
	}

	// Microreboot NetBack; the surviving guest must renegotiate and move
	// traffic, reap noise notwithstanding.
	if merr := pl.Engine.Manage(nb.AsRestartable(), snapshot.Policy{Kind: snapshot.PolicyPerRequest}); merr != nil {
		t.Fatal(merr)
	}
	var res guest.FetchResult
	env.Spawn("reconnect", func(p *sim.Proc) {
		if err = pl.Engine.RequestRestart(p, nb.Dom); err != nil {
			return
		}
		vm := &guest.VM{H: h, Dom: g2.Dom, Net: g2.Net, Blk: g2.Blk, NetB: g2.NetB, BlkB: g2.BlkB}
		res = vm.Fetch(p, 8<<20, guest.SinkNull)
	})
	env.RunFor(120 * sim.Second)
	if err != nil {
		t.Fatalf("restart+fetch: %v", err)
	}
	if res.Bytes != 8<<20 {
		t.Fatalf("fetch moved %d bytes, want %d", res.Bytes, 8<<20)
	}
	if st, ok := pl.Engine.Stats(nb.Dom); !ok || st.Restarts != 1 || st.Errors != 0 {
		t.Fatalf("restart stats: %+v (managed=%v)", st, ok)
	}
}

func TestBootTimesPrinted(t *testing.T) {
	env1, _, xoar := bootXoar(t, Options{})
	defer env1.Shutdown()
	env2, _, dom0 := bootDom0(t)
	defer env2.Shutdown()
	t.Logf("Table 6.2 — boot: dom0 console %.1fs ping %.1fs | xoar console %.1fs ping %.1fs",
		dom0.Timings.ConsoleReady.Seconds(), dom0.Timings.PingReady.Seconds(),
		xoar.Timings.ConsoleReady.Seconds(), xoar.Timings.PingReady.Seconds())
}
