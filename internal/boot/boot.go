// Package boot assembles and boots the platform in its two profiles:
//
//   - BootXoar: the §5.2 sequence. Xen creates the Bootstrapper, which
//     starts XenStore (State then Logic), the Console Manager, the Builder,
//     and PCIBack; PCIBack enumerates the bus and udev-style rules request
//     NetBack/BlkBack driver domains from the Builder for each controller;
//     finally the Toolstacks come up and the Bootstrapper destroys itself.
//     Components boot in parallel where the dependency order allows, which
//     is where the Table 6.2 speedup comes from.
//
//   - BootDom0: the stock sequence. Xen creates a single monolithic control
//     VM that initializes hardware, starts every service in order, and
//     holds full privilege over the system.
package boot

import (
	"fmt"

	"xoar/internal/blkdrv"
	"xoar/internal/builder"
	"xoar/internal/capability"
	"xoar/internal/consolemgr"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/netdrv"
	"xoar/internal/osimage"
	"xoar/internal/pciback"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/telemetry"
	"xoar/internal/toolstack"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

// xenBoot is firmware + bootloader + hypervisor bring-up, common to both
// profiles (power-on to first domain).
const xenBoot = 8 * sim.Second

// Timings records the boot milestones Table 6.2 reports.
type Timings struct {
	// ConsoleReady is when a login prompt appears on the console.
	ConsoleReady sim.Time
	// PingReady is when the host answers network traffic.
	PingReady sim.Time
	// Done is when the full platform (toolstacks included) is up.
	Done sim.Time
}

// Options configure a boot.
type Options struct {
	// Toolstacks is the number of management toolstacks (Xoar profile).
	Toolstacks int
	// DestroyPCIBack removes PCIBack after boot (§5.3). Ignored by Dom0.
	DestroyPCIBack bool
	// KeepBootstrapper suppresses the Bootstrapper's self-destruction, for
	// tests that inspect it.
	KeepBootstrapper bool
	// Serialize disables parallel component boot (Table 6.2 ablation).
	Serialize bool
	// NoConsole omits the Console Manager — "in commercial hosting
	// solutions, console access is largely absent rendering the Console
	// Manager redundant" (§6.1.1); with DestroyPCIBack this is the paper's
	// 512MB minimal configuration.
	NoConsole bool
	// Telemetry, when non-nil, is wired into every instrumented component
	// (Builder, restart engine, XenStore, driver backends). Nil disables the
	// whole layer at negligible cost.
	Telemetry *telemetry.Registry
	// GuestQuota raises each Toolstack's MaxVMs above the conservative
	// default, for high-density hosts (serverless churn packs hundreds of
	// short-lived guests behind one toolstack). Zero keeps the default.
	GuestQuota int
}

// Platform is the assembled system, either profile.
type Platform struct {
	HV      *hv.Hypervisor
	Catalog *osimage.Catalog

	XenStoreState *xenstore.State
	XenStoreLogic *xenstore.Logic
	Console       *consolemgr.Manager
	Builder       *builder.Builder
	PCIBack       *pciback.PCIBack
	NetBacks      []*netdrv.Backend
	BlkBacks      []*blkdrv.Backend
	Toolstacks    []*toolstack.Toolstack
	Engine        *snapshot.Engine

	// Domain IDs of the control-plane components, for the security graph.
	BootstrapperDom xtypes.DomID
	XSStateDom      xtypes.DomID
	XSLogicDom      xtypes.DomID
	ConsoleDom      xtypes.DomID
	BuilderDom      xtypes.DomID
	PCIBackDom      xtypes.DomID
	Dom0            xtypes.DomID // monolithic profile only

	// Monolithic reports which profile booted.
	Monolithic bool

	Timings Timings
}

// bootShardDirect creates and boots a component domain directly (the
// Bootstrapper's own privilege path, before the Builder serves).
func bootShardDirect(p *sim.Proc, h *hv.Hypervisor, caller xtypes.DomID, cat *osimage.Catalog,
	name, image string, priv hv.Assignment) (xtypes.DomID, error) {
	img, err := cat.Lookup(image)
	if err != nil {
		return xtypes.DomIDNone, err
	}
	d, err := h.CreateDomain(caller, hv.DomainConfig{
		Name: name, MemMB: img.MemMB, Shard: true, OSImage: img.Name,
	})
	if err != nil {
		return xtypes.DomIDNone, err
	}
	if err := h.AssignPrivileges(caller, d.ID, priv); err != nil {
		return xtypes.DomIDNone, err
	}
	if err := h.Unpause(caller, d.ID); err != nil {
		return xtypes.DomIDNone, err
	}
	p.Sleep(img.BootTime())
	return d.ID, nil
}

// Shard whitelists come from the generated capability manifest
// (internal/capability/CAPMANIFEST.json): capgen derives each role's grant
// set from the privilege matrix privflow builds out of internal/hv, and the
// drift gates keep the artifact in lockstep with both the analyzer and this
// file. Boot never names a Hyper* constant for a shard directly.
func shardAssignment(role string) hv.Assignment {
	return hv.Assignment{
		Hypercalls: capability.Hypercalls(role),
		IOPorts:    capability.IOPorts(role),
	}
}

// BootXoar boots the disaggregated platform. Call from a sim process.
func BootXoar(p *sim.Proc, h *hv.Hypervisor, cat *osimage.Catalog, opts Options) (*Platform, error) {
	if opts.Toolstacks <= 0 {
		opts.Toolstacks = 1
	}
	h.EnforceShardIVC = true
	pl := &Platform{HV: h, Catalog: cat}

	bootSpan := opts.Telemetry.StartSpan("boot", "boot:xoar", p.Now())
	defer func() { bootSpan.EndAt(p.Now()) }()

	p.Sleep(xenBoot)

	// Xen creates the Bootstrapper. It is Critical in stock Xen terms, but
	// Xoar modifies the hypervisor to let it exit (§5.8) — SelfExit encodes
	// that, so Critical stays false here.
	bootImg, err := cat.Lookup(osimage.ImgBootstrapper)
	if err != nil {
		return nil, err
	}
	bs, err := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{
		Name: "bootstrapper", MemMB: bootImg.MemMB, Shard: true, OSImage: bootImg.Name,
	})
	if err != nil {
		return nil, err
	}
	if err := h.AssignPrivileges(hv.SystemCaller, bs.ID, shardAssignment(capability.RoleBootstrapper)); err != nil {
		return nil, err
	}
	if err := h.Unpause(hv.SystemCaller, bs.ID); err != nil {
		return nil, err
	}
	pl.BootstrapperDom = bs.ID
	p.Sleep(bootImg.BootTime())

	// --- XenStore first: everything else depends on it (§5.2). -------------
	pl.XSStateDom, err = bootShardDirect(p, h, bs.ID, cat, "xenstore-state", osimage.ImgXenStoreS, hv.Assignment{})
	if err != nil {
		return nil, err
	}
	pl.XSLogicDom, err = bootShardDirect(p, h, bs.ID, cat, "xenstore-logic", osimage.ImgXenStoreL, hv.Assignment{})
	if err != nil {
		return nil, err
	}
	pl.XenStoreState = xenstore.NewState()
	pl.XenStoreLogic = xenstore.NewLogic(h.Env, pl.XenStoreState)
	pl.XenStoreLogic.SetMetrics(opts.Telemetry)
	// Figure 5.1: XenStore-Logic is restarted on each request; contents and
	// watches live in XenStore-State, so the policy costs nothing.
	pl.XenStoreLogic.RestartPerRequest = true
	// xenstored's internal connection, used to hand each directly-booted
	// shard ownership of its /local/domain/<id> subtree (the Builder does
	// the same for domains it builds).
	xsAdmin := pl.XenStoreLogic.Connect(pl.XSLogicDom, true)
	// Reap a destroyed domain's XenStore footprint: its connection (watches,
	// in-flight transactions, event queue) and its /local/domain/<id>
	// subtree. Disconnect must come first — removing the subtree fires watch
	// events, and the dead domain's own event queue is already closed.
	h.OnDestroy(func(id xtypes.DomID) {
		pl.XenStoreLogic.Disconnect(id)
		// Domains without a registered tree (the Bootstrapper) make this a
		// harmless not-found.
		xsAdmin.Rm(xenstore.TxNone, fmt.Sprintf("/local/domain/%d", id))
	})
	grantTree := func(dom xtypes.DomID) {
		base := fmt.Sprintf("/local/domain/%d", dom)
		xsAdmin.Mkdir(xenstore.TxNone, base)
		xsAdmin.SetPerms(base, xenstore.Perms{Owner: dom, Read: []xtypes.DomID{xtypes.DomIDNone}})
	}

	// --- Console Manager: boots in parallel with the rest (it is a Linux
	// image and dominates the console-ready milestone). ---------------------
	consoleDone := sim.NewGate(h.Env)
	if opts.NoConsole {
		consoleDone.Open()
	}
	bootConsole := func(cp *sim.Proc) {
		dom, cerr := bootShardDirect(cp, h, bs.ID, cat, "console", osimage.ImgConsole, shardAssignment(capability.RoleConsole))
		if cerr != nil {
			err = cerr
			consoleDone.Open()
			return
		}
		pl.ConsoleDom = dom
		grantTree(dom)
		h.RouteHardwareVIRQ(dom, xtypes.VIRQConsole, dom)
		pl.Console = consolemgr.New(h, dom, h.Machine.Serial, pl.XenStoreLogic.Connect(dom, false))
		if cerr := pl.Console.Start(cp); cerr != nil {
			err = cerr
			consoleDone.Open()
			return
		}
		pl.Timings.ConsoleReady = cp.Now()
		consoleDone.Open()
	}
	switch {
	case opts.NoConsole:
		// No console: the login-prompt milestone coincides with the network.
	case opts.Serialize:
		bootConsole(p)
	default:
		h.Env.Spawn("boot-console", bootConsole)
	}

	// --- Builder. -----------------------------------------------------------
	pl.BuilderDom, err = bootShardDirect(p, h, bs.ID, cat, "builder", osimage.ImgBuilder, shardAssignment(capability.RoleBuilder))
	if err != nil {
		return nil, err
	}
	pl.Builder = builder.New(h, pl.BuilderDom, cat, pl.XenStoreLogic.Connect(pl.BuilderDom, true))
	pl.Builder.XenStoreDom = pl.XSLogicDom
	pl.Builder.Authorize(bs.ID)
	pl.Builder.SetMetrics(opts.Telemetry)
	h.Env.Spawn("builder-serve", pl.Builder.Serve)
	pl.Engine = snapshot.NewEngine(h, pl.BuilderDom)
	pl.Engine.SetMetrics(opts.Telemetry)

	// --- PCIBack: hardware init and enumeration. ----------------------------
	pl.PCIBackDom, err = bootShardDirect(p, h, bs.ID, cat, "pciback", osimage.ImgPCIBack, shardAssignment(capability.RolePCIBack))
	if err != nil {
		return nil, err
	}
	grantTree(pl.PCIBackDom)
	pl.PCIBack = pciback.New(h, pl.PCIBackDom, h.Machine.Bus, pl.XenStoreLogic.Connect(pl.PCIBackDom, false))
	if err := pl.PCIBack.Start(p); err != nil {
		return nil, err
	}

	// --- udev: a driver domain per network and disk controller (§5.2). ------
	type backendResult struct {
		nb *netdrv.Backend
		bb *blkdrv.Backend
	}
	results := sim.NewChan[backendResult](h.Env)
	backendReq := func(dev hw.Device) builder.Request {
		name, role := "netback", capability.RoleNetBack
		image := osimage.ImgNetBack
		if dev.Class() == xtypes.DevDisk {
			name, role, image = "blkback", capability.RoleBlkBack, osimage.ImgBlkBack
		}
		priv := shardAssignment(role)
		priv.PCIDevices = []xtypes.PCIAddr{dev.Addr()}
		return builder.Request{
			Requester:  bs.ID,
			Name:       name,
			Image:      image,
			Shard:      true,
			Privileges: priv,
		}
	}
	startBackend := func(dev hw.Device, dom xtypes.DomID) func(*sim.Proc) {
		return func(bp *sim.Proc) {
			xs := pl.XenStoreLogic.Connect(dom, false)
			switch dev.Class() {
			case xtypes.DevNIC:
				b := netdrv.NewBackend(h, dom, findNIC(h, dev.Addr()), xs)
				b.Start(bp)
				h.VMSnapshot(dom)
				results.Send(backendResult{nb: b})
			case xtypes.DevDisk:
				b := blkdrv.NewBackend(h, dom, findDisk(h, dev.Addr()), xs)
				b.Start(bp)
				h.VMSnapshot(dom)
				results.Send(backendResult{bb: b})
			}
		}
	}
	var bdevs []hw.Device
	for _, dev := range pl.PCIBack.Devices() {
		if dev.Class() == xtypes.DevNIC || dev.Class() == xtypes.DevDisk {
			bdevs = append(bdevs, dev)
		}
	}
	expected := len(bdevs)
	if opts.Serialize {
		for _, dev := range bdevs {
			dom, berr := pl.Builder.Submit(p, backendReq(dev))
			if berr != nil {
				return nil, berr
			}
			startBackend(dev, dom)(p)
		}
	} else if expected > 0 {
		// One batch for the whole driver fleet: the Builder validates every
		// udev request before scrubbing the first page, then pipelines
		// construction of shard i+1 with the supervised boot of shard i.
		reqs := make([]builder.Request, expected)
		for i, dev := range bdevs {
			reqs[i] = backendReq(dev)
		}
		doms, errs := pl.Builder.SubmitAll(p, reqs)
		for _, berr := range errs {
			if berr != nil {
				return nil, berr
			}
		}
		for i, dev := range bdevs {
			h.Env.Spawn("boot-"+dev.Name(), startBackend(dev, doms[i]))
		}
	}
	for i := 0; i < expected; i++ {
		res, _ := results.Recv(p)
		if res.nb != nil {
			res.nb.SetMetrics(opts.Telemetry)
			pl.NetBacks = append(pl.NetBacks, res.nb)
			// The Builder (which hosts the restart engine) administers the
			// driver shards: it must be able to roll them back.
			if err := h.Delegate(bs.ID, res.nb.Dom, pl.BuilderDom); err != nil {
				return nil, err
			}
		}
		if res.bb != nil {
			res.bb.SetMetrics(opts.Telemetry)
			pl.BlkBacks = append(pl.BlkBacks, res.bb)
			if err := h.Delegate(bs.ID, res.bb.Dom, pl.BuilderDom); err != nil {
				return nil, err
			}
		}
	}
	pl.Timings.PingReady = p.Now()

	// --- Toolstacks. ----------------------------------------------------------
	tsReqs := make([]builder.Request, opts.Toolstacks)
	for i := range tsReqs {
		tsReqs[i] = builder.Request{
			Requester:  bs.ID,
			Name:       fmt.Sprintf("toolstack-%d", i),
			Image:      osimage.ImgToolstack,
			Shard:      true,
			Privileges: shardAssignment(capability.RoleToolstack),
		}
	}
	var tsDoms []xtypes.DomID
	if opts.Serialize {
		for _, req := range tsReqs {
			dom, terr := pl.Builder.Submit(p, req)
			if terr != nil {
				return nil, terr
			}
			tsDoms = append(tsDoms, dom)
		}
	} else {
		// The management fleet is also one pipelined batch.
		doms, errs := pl.Builder.SubmitAll(p, tsReqs)
		for _, terr := range errs {
			if terr != nil {
				return nil, terr
			}
		}
		tsDoms = doms
	}
	for i, dom := range tsDoms {
		ts := toolstack.New(h, dom, pl.XenStoreLogic, pl.Builder)
		ts.Console = pl.Console
		if opts.GuestQuota > 0 {
			ts.SetQuota(toolstack.Quota{MaxVMs: opts.GuestQuota, MaxMemMB: 1 << 20})
		}
		// Delegate every driver shard to the first toolstack by default;
		// additional toolstacks receive delegations explicitly (private
		// cloud scenario, §3.4.2).
		if i == 0 {
			for _, nb := range pl.NetBacks {
				h.Delegate(bs.ID, nb.Dom, dom)
				ts.NetBacks = append(ts.NetBacks, nb)
			}
			for _, bb := range pl.BlkBacks {
				h.Delegate(bs.ID, bb.Dom, dom)
				ts.BlkBacks = append(ts.BlkBacks, bb)
			}
		}
		pl.Toolstacks = append(pl.Toolstacks, ts)
	}

	// Wait for the console before declaring boot complete.
	consoleDone.Wait(p)
	if err != nil {
		return nil, err
	}
	if opts.NoConsole {
		pl.Timings.ConsoleReady = pl.Timings.PingReady
	}
	if pl.Timings.PingReady < pl.Timings.ConsoleReady {
		// The host answers pings only once both the network path and the
		// console's login services are up.
		pl.Timings.PingReady = pl.Timings.ConsoleReady
	}

	// --- Steady state: shrink the TCB (§5.2, §5.3). --------------------------
	pl.Builder.Revoke(bs.ID)
	// The Builder itself remains authorized to rebuild shards: in-place
	// driver upgrades replace a dead driver domain with a fresh one.
	pl.Builder.Authorize(pl.BuilderDom)
	if opts.DestroyPCIBack {
		if err := pl.PCIBack.SelfDestruct(p); err != nil {
			return nil, err
		}
	}
	if !opts.KeepBootstrapper {
		if err := h.SelfExit(bs.ID); err != nil {
			return nil, err
		}
	}
	pl.Timings.Done = p.Now()
	return pl, nil
}

func findNIC(h *hv.Hypervisor, addr xtypes.PCIAddr) *hw.NIC {
	for _, n := range h.Machine.NICs() {
		if n.Addr() == addr {
			return n
		}
	}
	return nil
}

func findDisk(h *hv.Hypervisor, addr xtypes.PCIAddr) *hw.Disk {
	for _, d := range h.Machine.Disks() {
		if d.Addr() == addr {
			return d
		}
	}
	return nil
}
