package sim

import "testing"

// TestScheduleCancelBoundedQueue is the regression test for stale-event
// compaction: a workload that arms and immediately cancels timers in a loop
// (the shape left behind by short-lived guests tearing down their watchdogs)
// must not grow the event heap without bound.
func TestScheduleCancelBoundedQueue(t *testing.T) {
	env := NewEnv(1)
	const rounds = 100_000
	for i := 0; i < rounds; i++ {
		cancel := env.After(Second, func() {})
		cancel()
	}
	if n := env.QueueLen(); n > 4*compactMinQueue {
		t.Fatalf("queue holds %d entries after %d schedule-and-cancel rounds; compaction should bound it near %d", n, rounds, compactMinQueue)
	}
	if env.Compactions() == 0 {
		t.Fatalf("no compaction passes ran under pure cancel churn")
	}
	env.RunAll()
}

// TestKilledProcWakeupsCompacted covers the other stale-event source: sleeping
// processes killed mid-sleep leave orphaned wakeups behind, and those must be
// reclaimed too.
func TestKilledProcWakeupsCompacted(t *testing.T) {
	env := NewEnv(1)
	var procs []*Proc
	for i := 0; i < 2000; i++ {
		procs = append(procs, env.Spawn("sleeper", func(p *Proc) {
			p.Sleep(Minute)
		}))
	}
	env.RunFor(Millisecond) // let every proc start and go to sleep
	for _, p := range procs {
		p.Kill()
	}
	env.RunFor(Millisecond) // unwind the kills
	if n := env.QueueLen(); n > 4*compactMinQueue {
		t.Fatalf("queue holds %d entries after killing %d sleepers; orphaned wakeups were not compacted", n, len(procs))
	}
	if got := env.LiveProcs(); got != 0 {
		t.Fatalf("%d processes still live after kill", got)
	}
}

// TestCompactionPreservesLiveEvents pins that compaction only drops stale
// entries: live timers scheduled before heavy cancel churn must still fire,
// in order, at their original times.
func TestCompactionPreservesLiveEvents(t *testing.T) {
	env := NewEnv(1)
	var fired []int
	for i := 0; i < 64; i++ {
		i := i
		env.After(Duration(i+1)*Millisecond, func() { fired = append(fired, i) })
	}
	for i := 0; i < 50_000; i++ {
		cancel := env.After(Second, func() {})
		cancel()
	}
	if env.Compactions() == 0 {
		t.Fatalf("test did not exercise compaction")
	}
	env.RunFor(Second)
	if len(fired) != 64 {
		t.Fatalf("%d of 64 live timers fired after compaction", len(fired))
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("timers fired out of order: %v", fired)
		}
	}
}

// TestCancelAfterRecycleIsNoOp pins the generation guard on cancel tokens: a
// cancel called after its timer already fired must not cancel an unrelated
// timer that recycled the same event struct.
func TestCancelAfterRecycleIsNoOp(t *testing.T) {
	env := NewEnv(1)
	fired := 0
	var cancels []func()
	for i := 0; i < 64; i++ {
		cancels = append(cancels, env.After(Microsecond, func() { fired++ }))
	}
	env.RunFor(Millisecond)
	if fired != 64 {
		t.Fatalf("first batch: %d of 64 fired", fired)
	}
	// The second batch reuses the recycled structs of the first.
	for i := 0; i < 64; i++ {
		env.After(Microsecond, func() { fired++ })
	}
	for _, c := range cancels {
		c() // stale tokens: must not touch the recycled events
	}
	env.RunFor(Millisecond)
	if fired != 128 {
		t.Fatalf("second batch lost timers to stale cancel tokens: fired=%d, want 128", fired)
	}
}

// TestEventReuseKeepsOrderDeterministic replays a mixed sleep/cancel/kill
// workload twice and requires identical wake orders — free-list reuse and
// compaction must not perturb the (time, seq) total order.
func TestEventReuseKeepsOrderDeterministic(t *testing.T) {
	run := func() []int {
		env := NewEnv(7)
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			d := Duration(env.Rand().Intn(1000)+1) * Microsecond
			env.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				order = append(order, i)
			})
			if i%3 == 0 {
				cancel := env.After(d, func() {})
				cancel()
			}
		}
		env.RunAll()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 200 {
		t.Fatalf("runs incomplete: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wake order diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
