package sim

import (
	"testing"
)

func TestClockAdvances(t *testing.T) {
	env := NewEnv(1)
	var at Time
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		at = p.Now()
	})
	env.RunAll()
	if at != Time(5*Second) {
		t.Fatalf("woke at %v, want 5s", at.Seconds())
	}
	if env.Now() != Time(5*Second) {
		t.Fatalf("clock at %v, want 5s", env.Now().Seconds())
	}
}

func TestSpawnOrderDeterministic(t *testing.T) {
	run := func() []int {
		env := NewEnv(42)
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			env.Spawn("p", func(p *Proc) {
				p.Sleep(Duration(10-i) * Millisecond)
				order = append(order, i)
			})
		}
		env.RunAll()
		return order
	}
	a, b := run(), run()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("runs incomplete: %v %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order: %v vs %v", a, b)
		}
		if a[i] != 9-i {
			t.Fatalf("wrong wake order: %v", a)
		}
	}
}

func TestEqualTimeEventsFIFO(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Spawn("p", func(p *Proc) {
			p.Sleep(Millisecond)
			order = append(order, i)
		})
	}
	env.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestAfterCallbackAndCancel(t *testing.T) {
	env := NewEnv(1)
	fired := 0
	env.After(Second, func() { fired++ })
	cancel := env.After(2*Second, func() { fired += 100 })
	cancel()
	env.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (canceled callback must not run)", fired)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	env := NewEnv(1)
	ticks := 0
	env.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(Second)
			ticks++
		}
	})
	env.Run(Time(4*Second + Millisecond))
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4", ticks)
	}
	env.Shutdown()
	if env.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", env.LiveProcs())
	}
}

func TestKillUnwindsProcess(t *testing.T) {
	env := NewEnv(1)
	reached := false
	p := env.Spawn("victim", func(p *Proc) {
		p.Sleep(10 * Second)
		reached = true
	})
	env.Spawn("killer", func(q *Proc) {
		q.Sleep(Second)
		p.Kill()
	})
	env.RunAll()
	if reached {
		t.Fatal("killed process kept running")
	}
	if !p.Done() {
		t.Fatal("killed process not marked done")
	}
}

func TestWaitDone(t *testing.T) {
	env := NewEnv(1)
	var joinedAt Time
	worker := env.Spawn("worker", func(p *Proc) { p.Sleep(3 * Second) })
	env.Spawn("joiner", func(p *Proc) {
		p.WaitDone(worker)
		joinedAt = p.Now()
	})
	env.RunAll()
	if joinedAt != Time(3*Second) {
		t.Fatalf("joined at %vs, want 3s", joinedAt.Seconds())
	}
}

func TestChanFIFOAndBlocking(t *testing.T) {
	env := NewEnv(1)
	ch := NewChan[int](env)
	var got []int
	var recvAt Time
	env.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := ch.Recv(p)
			if !ok {
				t.Error("unexpected close")
				return
			}
			got = append(got, v)
		}
		recvAt = p.Now()
	})
	env.Spawn("send", func(p *Proc) {
		p.Sleep(Second)
		ch.Send(1)
		ch.Send(2)
		p.Sleep(Second)
		ch.Send(3)
	})
	env.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if recvAt != Time(2*Second) {
		t.Fatalf("last recv at %vs, want 2s", recvAt.Seconds())
	}
}

func TestChanClose(t *testing.T) {
	env := NewEnv(1)
	ch := NewChan[int](env)
	var sawClose bool
	env.Spawn("recv", func(p *Proc) {
		ch.Send(7)
		ch.Close()
		if v, ok := ch.Recv(p); !ok || v != 7 {
			t.Errorf("Recv = %d,%v; want 7,true", v, ok)
		}
		if _, ok := ch.Recv(p); ok {
			t.Error("Recv on closed drained chan returned ok")
		}
		sawClose = true
	})
	env.RunAll()
	if !sawClose {
		t.Fatal("receiver never ran")
	}
}

func TestChanRecvTimeout(t *testing.T) {
	env := NewEnv(1)
	ch := NewChan[int](env)
	var ok1, ok2 bool
	var t1 Time
	env.Spawn("recv", func(p *Proc) {
		_, ok1 = ch.RecvTimeout(p, 2*Second)
		t1 = p.Now()
		_, ok2 = ch.RecvTimeout(p, 5*Second)
	})
	env.Spawn("send", func(p *Proc) {
		p.Sleep(3 * Second)
		ch.Send(9)
	})
	env.RunAll()
	if ok1 {
		t.Fatal("first recv should have timed out")
	}
	if t1 != Time(2*Second) {
		t.Fatalf("timeout at %vs, want 2s", t1.Seconds())
	}
	if !ok2 {
		t.Fatal("second recv should have succeeded")
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv(1)
	cpu := NewResource(env, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		env.Spawn("user", func(p *Proc) {
			cpu.Use(p, Second)
			finish = append(finish, p.Now())
		})
	}
	env.RunAll()
	want := []Time{Time(Second), Time(2 * Second), Time(3 * Second)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		env.Spawn("user", func(p *Proc) {
			r.Use(p, Second)
			finish = append(finish, p.Now())
		})
	}
	env.RunAll()
	// Two run in [0,1], two in [1,2].
	if finish[1] != Time(Second) || finish[3] != Time(2*Second) {
		t.Fatalf("finish times %v", finish)
	}
}

func TestUseChunkedInterleaves(t *testing.T) {
	env := NewEnv(1)
	cpu := NewResource(env, 1)
	var aDone, bDone Time
	env.Spawn("a", func(p *Proc) {
		cpu.UseChunked(p, 10*Millisecond, Millisecond)
		aDone = p.Now()
	})
	env.Spawn("b", func(p *Proc) {
		cpu.UseChunked(p, 10*Millisecond, Millisecond)
		bDone = p.Now()
	})
	env.RunAll()
	// Both should finish near 20ms (fair interleave), not one at 10ms.
	if aDone < Time(18*Millisecond) || bDone != Time(20*Millisecond) {
		t.Fatalf("aDone=%v bDone=%v; want both near 20ms", aDone, bDone)
	}
}

func TestResourceUtilization(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 1)
	env.Spawn("u", func(p *Proc) {
		r.Use(p, 3*Second)
		p.Sleep(Second)
	})
	env.RunAll()
	if r.BusyTime() != 3*Second {
		t.Fatalf("busy = %v, want 3s", r.BusyTime())
	}
}

func TestGate(t *testing.T) {
	env := NewEnv(1)
	g := NewGate(env)
	var passedAt []Time
	for i := 0; i < 2; i++ {
		env.Spawn("waiter", func(p *Proc) {
			g.Wait(p)
			passedAt = append(passedAt, p.Now())
		})
	}
	env.Spawn("opener", func(p *Proc) {
		p.Sleep(2 * Second)
		g.Open()
	})
	env.Spawn("late", func(p *Proc) {
		p.Sleep(3 * Second)
		g.Wait(p) // already open: passes immediately
		passedAt = append(passedAt, p.Now())
	})
	env.RunAll()
	if len(passedAt) != 3 {
		t.Fatalf("passed %d waiters, want 3", len(passedAt))
	}
	if passedAt[0] != Time(2*Second) || passedAt[2] != Time(3*Second) {
		t.Fatalf("pass times %v", passedAt)
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	env := NewEnv(1)
	s := NewSignal(env)
	woke := 0
	for i := 0; i < 5; i++ {
		env.Spawn("w", func(p *Proc) {
			s.Wait(p)
			woke++
		})
	}
	env.Spawn("b", func(p *Proc) {
		p.Sleep(Second)
		s.Broadcast()
	})
	env.RunAll()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEnv(7).Rand().Int63()
	b := NewEnv(7).Rand().Int63()
	if a != b {
		t.Fatal("same seed produced different values")
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		2 * Second:           "2.000s",
		250 * Millisecond:    "250.000ms",
		3 * Microsecond:      "3µs",
		Duration(5):          "5ns",
		1500 * Millisecond:   "1.500s",
		Duration(900) * 1000: "900µs",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(d), got, want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(Second)
	t1 := t0.Add(500 * Millisecond)
	if t1.Sub(t0) != 500*Millisecond {
		t.Fatalf("Sub = %v", t1.Sub(t0))
	}
	if t1.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", t1.Seconds())
	}
}

// Regression: a canceled timer sitting at the heap root must not let Run
// execute events beyond its deadline (it once did, skewing every
// RunFor-driven loop that raced a RecvTimeout cancellation).
func TestRunRespectsDeadlineWithCanceledRoot(t *testing.T) {
	env := NewEnv(1)
	cancel := env.After(Second, func() { t.Error("canceled callback ran") })
	cancel()
	late := false
	env.After(10*Second, func() { late = true })
	env.Run(Time(2 * Second))
	if late {
		t.Fatal("event beyond deadline executed")
	}
	if env.Now() != Time(2*Second) {
		t.Fatalf("now = %v", env.Now())
	}
	env.RunAll()
	if !late {
		t.Fatal("event never ran")
	}
}

func TestTraceHook(t *testing.T) {
	env := NewEnv(1)
	var got []TraceEvent
	env.SetTrace(func(ev TraceEvent) { got = append(got, ev) })
	p := env.Spawn("worker", func(p *Proc) { p.Sleep(Second) })
	env.After(Millisecond, func() {})
	env.Spawn("killer", func(q *Proc) { p.Kill() })
	env.RunAll()
	kinds := map[string]int{}
	for _, ev := range got {
		kinds[ev.Kind]++
	}
	if kinds["spawn"] != 2 || kinds["resume"] < 2 || kinds["callback"] != 1 || kinds["kill"] != 1 {
		t.Fatalf("trace = %v", got)
	}
	// Removing the hook stops events.
	env.SetTrace(nil)
	n := len(got)
	env.Spawn("late", func(p *Proc) {})
	env.RunAll()
	if len(got) != n {
		t.Fatal("trace fired after removal")
	}
	if got[0].String() == "" {
		t.Fatal("empty trace rendering")
	}
}
