package sim

// Signal is a broadcast condition variable for sim processes. Waiters block
// until the next Broadcast; there is no stored state, so callers must re-check
// their predicate in a loop, exactly as with sync.Cond.
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal returns a signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	// The waiter list retains its capacity across Broadcast, so in steady
	// state (bounded concurrent waiters) this append never grows the slice.
	//xoarlint:allow(hotpath) waiter list growth is bounded by concurrent waiters; steady state reuses capacity retained by Broadcast
	s.waiters = append(s.waiters, p)
	p.block()
}

// Broadcast wakes every process currently waiting. The wakeups are scheduled
// at the current instant in FIFO order. The waiter slice's capacity is
// retained (entries are nilled for GC) so the Wait/Broadcast cycle is
// allocation-free in steady state. No user code runs during the loop — the
// scheduler only enqueues wakeups — so truncating before iterating is safe.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = s.waiters[:0]
	for i, w := range ws {
		ws[i] = nil
		if !w.done {
			s.env.schedule(s.env.now, w, nil)
		}
	}
}

// Chan is an unbounded FIFO queue carrying values between sim processes.
// Receives block while the queue is empty; sends never block.
//
// Dequeues advance a head index instead of re-slicing items[1:], which would
// permanently strand the popped element's capacity; whenever the queue
// drains, the backing array is reset and reused, so a steady-state
// send/receive cycle (the netback rx inbox, xenstore watch events) performs
// no allocation.
type Chan[T any] struct {
	env    *Env
	items  []T
	head   int
	sig    *Signal
	closed bool
}

// NewChan returns an empty queue bound to env.
func NewChan[T any](env *Env) *Chan[T] {
	return &Chan[T]{env: env, sig: NewSignal(env)}
}

// Send enqueues v and wakes any blocked receivers. Sending on a closed
// channel panics, mirroring Go channel semantics.
func (c *Chan[T]) Send(v T) {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	//xoarlint:allow(hotpath) queue growth is bounded by backlog; pop resets the backing array on drain so steady state reuses capacity
	c.items = append(c.items, v)
	c.sig.Broadcast()
}

// pop removes and returns the head element. Callers must ensure the queue is
// non-empty. The vacated slot is zeroed so queued pointers do not outlive
// their dequeue, and a drained queue resets to the start of its backing
// array so future sends reuse the capacity.
func (c *Chan[T]) pop() T {
	v := c.items[c.head]
	var zero T
	c.items[c.head] = zero
	c.head++
	if c.head == len(c.items) {
		c.items = c.items[:0]
		c.head = 0
	}
	return v
}

// Close marks the channel closed; blocked and future receivers observe
// ok == false once the queue drains.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.sig.Broadcast()
}

// Recv dequeues the next value, blocking p while the queue is empty. It
// returns ok == false when the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	for c.Len() == 0 {
		if c.closed {
			var zero T
			return zero, false
		}
		c.sig.Wait(p)
	}
	return c.pop(), true
}

// TryRecv dequeues the next value without blocking. ok is false when the
// queue is empty.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if c.Len() == 0 {
		var zero T
		return zero, false
	}
	return c.pop(), true
}

// RecvTimeout dequeues the next value, giving up after d. ok is false on
// timeout or close.
func (c *Chan[T]) RecvTimeout(p *Proc, d Duration) (v T, ok bool) {
	deadline := p.env.now.Add(d)
	timedOut := false
	cancel := p.env.After(d, func() {
		timedOut = true
		c.sig.Broadcast() // wake the waiter so it re-checks
	})
	defer cancel()
	for c.Len() == 0 {
		if c.closed {
			var zero T
			return zero, false
		}
		if timedOut || p.env.now >= deadline {
			var zero T
			return zero, false
		}
		c.sig.Wait(p)
	}
	return c.pop(), true
}

// Len reports the number of queued values.
func (c *Chan[T]) Len() int { return len(c.items) - c.head }

// Resource models a server with fixed capacity (a CPU, a disk arm, a bus).
// Acquire blocks while all slots are busy; requests are served FIFO, which
// under small work quanta approximates processor sharing closely enough for
// the throughput experiments.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	sig      *Signal

	// busy accumulates total busy slot-time for utilization reporting.
	busy      Duration
	lastCheck Time
}

// NewResource returns a resource with the given number of slots.
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, capacity: capacity, sig: NewSignal(env)}
}

func (r *Resource) account() {
	now := r.env.now
	r.busy += Duration(int64(now-r.lastCheck) * int64(r.inUse))
	r.lastCheck = now
}

// Acquire blocks p until a slot is free, then claims it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.sig.Wait(p)
	}
	r.account()
	r.inUse++
}

// Release frees a slot claimed by Acquire.
func (r *Resource) Release() {
	if r.inUse == 0 {
		panic("sim: release of idle resource")
	}
	r.account()
	r.inUse--
	r.sig.Broadcast()
}

// Use occupies one slot for duration d: acquire, hold, release. The release
// is deferred so a process killed while holding the slot (a driver pump torn
// down mid-transfer by a microreboot) does not leak it.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	defer r.Release()
	p.Sleep(d)
}

// UseChunked occupies one slot for total duration d, but releases and
// re-acquires the slot every quantum so competing users interleave. This is
// how vCPUs share a physical CPU in the platform model.
func (r *Resource) UseChunked(p *Proc, d, quantum Duration) {
	if quantum <= 0 {
		quantum = Millisecond
	}
	for d > 0 {
		step := d
		if step > quantum {
			step = quantum
		}
		r.Use(p, step)
		d -= step
		if d > 0 {
			// Let processes woken by the release acquire the slot before we
			// re-acquire it; otherwise one user would monopolize the resource.
			p.Yield()
		}
	}
}

// InUse reports the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// BusyTime reports accumulated busy slot-time.
func (r *Resource) BusyTime() Duration {
	r.account()
	return r.busy
}

// Gate is a binary latch: processes wait until it opens. Once opened it stays
// open and waiters pass immediately. Used for "device ready" conditions.
type Gate struct {
	open bool
	sig  *Signal
}

// NewGate returns a closed gate bound to env.
func NewGate(env *Env) *Gate { return &Gate{sig: NewSignal(env)} }

// Open opens the gate and releases all waiters.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	g.sig.Broadcast()
}

// Closed reports whether the gate has not yet opened.
func (g *Gate) Closed() bool { return !g.open }

// Reset closes the gate again; subsequent waiters block until the next Open.
func (g *Gate) Reset() { g.open = false }

// Wait blocks p until the gate opens.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.sig.Wait(p)
	}
}
