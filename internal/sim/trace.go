package sim

import "fmt"

// TraceEvent describes one scheduler action for the tracing hook.
type TraceEvent struct {
	At Time
	// Kind is "resume" for process resumptions, "callback" for After
	// callbacks, "spawn" and "kill" for lifecycle actions.
	Kind string
	// Proc is the affected process's name ("" for callbacks).
	Proc string
}

func (t TraceEvent) String() string {
	if t.Proc == "" {
		return fmt.Sprintf("%.6fs %s", t.At.Seconds(), t.Kind)
	}
	return fmt.Sprintf("%.6fs %s %s", t.At.Seconds(), t.Kind, t.Proc)
}

// SetTrace installs a scheduler tracing hook, or removes it when fn is nil.
// Tracing exists for debugging model timing (it is how this repository's own
// clock-overrun bug was found); it has no effect on simulation behaviour.
func (e *Env) SetTrace(fn func(TraceEvent)) { e.trace = fn }

// emitTrace reports a scheduler action to the hook, if installed.
func (e *Env) emitTrace(kind, proc string) {
	if e.trace != nil {
		//xoarlint:allow(hotpath) trace sinks are diagnostic instrumentation, never installed in production runs
		e.trace(TraceEvent{At: e.now, Kind: kind, Proc: proc})
	}
}
