// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives cooperative processes: each process is a goroutine, but
// exactly one process runs at any moment. A process yields control by
// sleeping, waiting on a synchronization primitive, or terminating; the
// scheduler then advances the virtual clock to the next pending event and
// resumes its owner. Because execution is serialized and the event queue is
// ordered by (time, sequence), every run with the same seed is bit-for-bit
// reproducible.
//
// The rest of the repository models a virtualization platform on top of this
// kernel: virtual machines, device backends, and workloads are all sim
// processes, and throughput/latency results arise from their interleaving on
// the virtual clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Time is a point on the virtual clock, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants so model code reads
// naturally without importing the real time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%dµs", int64(d)/int64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds reports the instant as a floating-point number of seconds since
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two instants.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled resumption of a process or a callback. Events are
// recycled through Env.free once they fire or are compacted away, so model
// code that schedules millions of timers (fleet-scale churn) does not allocate
// per event.
type event struct {
	at   Time
	seq  uint64 // tie-break so equal-time events fire in schedule order
	gen  uint64 // bumped on recycle; cancel tokens for old incarnations no-op
	proc *Proc  // process to resume (nil for fn events)
	fn   func() // callback to invoke (nil for proc events)
	// canceled events stay in the heap but are skipped when popped (or
	// removed wholesale by compaction).
	canceled bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

//xoarlint:allow(hotpath) heap growth is amortized: steady state pops as often as it pushes, so capacity is reused
func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock, an event queue, and the
// set of processes driven by them. An Env is not safe for concurrent use by
// real OS threads; all model code runs inside sim processes.
type Env struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	procs   map[*Proc]struct{}
	lastEv  string
	trace   func(TraceEvent)
	running *Proc // process currently executing, nil when scheduler runs
	nextID  int

	// free holds recycled event structs for reuse by schedule.
	free []*event
	// stale counts canceled events still sitting in the queue; once they
	// outnumber live entries the queue is compacted.
	stale       int
	compactions int

	// yield is signalled by the running process when it blocks or exits.
	yield chan struct{}

	stopped bool
}

// NewEnv returns a fresh environment whose random source is seeded with seed.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// schedule enqueues an event at absolute time at, reusing a recycled event
// struct when one is available.
func (e *Env) schedule(at Time, p *Proc, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.proc, ev.fn, ev.canceled = at, e.seq, p, fn, false
	} else {
		//xoarlint:allow(hotpath) free-list miss is warm-up only; steady state recycles fired events
		ev = &event{at: at, seq: e.seq, proc: p, fn: fn}
	}
	if p != nil {
		p.pending = ev
	}
	heap.Push(&e.queue, ev)
	return ev
}

// recycle returns a fired or discarded event to the free list. Bumping gen
// invalidates any outstanding cancel token for this incarnation.
func (e *Env) recycle(ev *event) {
	ev.gen++
	ev.proc, ev.fn = nil, nil
	ev.canceled = false
	//xoarlint:allow(hotpath) free-list growth is bounded by peak in-flight events; steady state reuses capacity
	e.free = append(e.free, ev)
}

// discard removes a stale (canceled or dead-owner) event that has been taken
// out of the queue, updating the bookkeeping that schedule maintains.
func (e *Env) discard(ev *event) {
	if ev.canceled {
		e.stale--
	}
	if ev.proc != nil && ev.proc.pending == ev {
		ev.proc.pending = nil
	}
	e.recycle(ev)
}

// After schedules fn to run after delay d. The returned cancel function
// removes the callback if it has not fired yet; calling it after the callback
// ran (or canceling twice) is a harmless no-op, even though the underlying
// event struct may since have been recycled for an unrelated timer.
func (e *Env) After(d Duration, fn func()) (cancel func()) {
	ev := e.schedule(e.now.Add(d), nil, fn)
	gen := ev.gen
	return func() {
		if ev.gen != gen || ev.canceled {
			return
		}
		ev.canceled = true
		e.stale++
		e.maybeCompact()
	}
}

// Post schedules fn to run at the current instant, after already-queued
// events for this instant. Unlike After it returns no cancel token and so
// allocates nothing: this is the delivery primitive for the event-channel
// upcall path, where a handler fires on every notification.
//
//xoarlint:hot
func (e *Env) Post(fn func()) {
	e.schedule(e.now, nil, fn)
}

// compactMinQueue is the queue size below which compaction is never worth it;
// peekLive already discards stale roots lazily.
const compactMinQueue = 128

// maybeCompact rebuilds the event heap without stale entries once more than
// half of a non-trivial queue is dead weight — canceled timers and wakeups
// owned by finished processes. Without this, a workload that arms and cancels
// timers per guest (churn at fleet scale) grows the heap without bound. The
// rebuild cannot perturb determinism: pop order is the strict total order
// (at, seq), independent of the heap's internal layout.
func (e *Env) maybeCompact() {
	if len(e.queue) < compactMinQueue || e.stale*2 <= len(e.queue) {
		return
	}
	live := e.queue[:0]
	for _, ev := range e.queue {
		if ev.canceled || (ev.proc != nil && ev.proc.done) {
			e.discard(ev)
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live
	e.stale = 0
	heap.Init(&e.queue)
	e.compactions++
}

// Proc is a cooperative simulation process.
type Proc struct {
	env    *Env
	name   string
	id     int
	resume chan struct{}
	done   bool
	killed bool
	// pending is the queued wakeup for this process, if any. A live process
	// has at most one (it is blocked on exactly one thing); tracking it lets
	// Kill cancel the orphaned wakeup instead of leaving it to bloat the heap.
	pending *event
	// doneWatchers are signalled when the process terminates.
	doneSig *Signal
}

// Spawn starts a new process running fn. fn begins executing at the current
// virtual time, after the currently running process next yields.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{
		env:  e,
		name: name,
		id:   e.nextID,
		// A one-slot buffer lets the scheduler hand off without blocking on
		// the resumed goroutine's wakeup; at most one resume is ever
		// outstanding because a process has at most one pending event.
		resume: make(chan struct{}, 1),
	}
	p.doneSig = NewSignal(e)
	e.procs[p] = struct{}{}
	e.emitTrace("spawn", name)
	go func() {
		<-p.resume // wait for first scheduling
		if !p.killed {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(procKilled); ok {
							return // normal termination via Kill
						}
						panic(r)
					}
				}()
				fn(p)
			}()
		}
		p.done = true
		delete(e.procs, p)
		p.doneSig.Broadcast()
		e.yield <- struct{}{}
	}()
	e.schedule(e.now, p, nil)
	return p
}

// procKilled is the panic payload used to unwind a killed process.
type procKilled struct{}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Done reports whether the process has terminated.
func (p *Proc) Done() bool { return p.done }

// block suspends the calling process until the scheduler resumes it.
// Must only be called from within the process's own goroutine.
func (p *Proc) block() {
	p.env.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d Duration) {
	p.env.schedule(p.env.now.Add(d), p, nil)
	p.block()
}

// Yield relinquishes the processor without advancing time; other processes
// scheduled at the current instant run before this one resumes.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill terminates the target process the next time it would run. A process
// must not kill itself; it should simply return instead.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	p.env.emitTrace("kill", p.name)
	// The process's queued wakeup (a sleep, say) is orphaned by the kill:
	// cancel it so compaction can reclaim it instead of letting dead guests'
	// timers accumulate in the heap.
	if ev := p.pending; ev != nil && !ev.canceled {
		ev.canceled = true
		p.env.stale++
	}
	// Schedule a resumption so the goroutine unwinds promptly.
	p.env.schedule(p.env.now, p, nil)
	p.env.maybeCompact()
}

// WaitDone blocks the calling process until target terminates.
func (p *Proc) WaitDone(target *Proc) {
	for !target.done {
		target.doneSig.Wait(p)
	}
}

// peekLive discards stale events — canceled timers and wakeups for finished
// processes — from the heap root and returns the next live event without
// removing it, or nil when the queue is drained. Run and step must agree on
// the live root: skipping stale events only at pop time once let a
// deadline-bounded Run execute an event beyond its deadline.
func (e *Env) peekLive() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.canceled || (ev.proc != nil && ev.proc.done) {
			heap.Pop(&e.queue)
			e.discard(ev)
			continue
		}
		return ev
	}
	return nil
}

// step runs the next live event from the queue. It reports false when the
// queue is exhausted. This is the dispatch loop every simulated nanosecond
// flows through, so it must stay allocation-free in steady state.
//
//xoarlint:hot
func (e *Env) step() bool {
	ev := e.peekLive()
	if ev == nil {
		return false
	}
	heap.Pop(&e.queue)
	if ev.at > e.now {
		e.now = ev.at
	}
	if ev.fn != nil {
		fn := ev.fn
		e.recycle(ev)
		e.lastEv = "fn-callback"
		e.emitTrace("callback", "")
		//xoarlint:allow(hotpath) scheduled callback bodies are charged to their own hot roots (evtchn upcalls, driver pumps); the dispatcher only invokes them
		fn()
		return true
	}
	p := ev.proc
	if p.pending == ev {
		p.pending = nil
	}
	e.recycle(ev)
	e.lastEv = p.name
	e.emitTrace("resume", p.name)
	e.running = p
	p.resume <- struct{}{}
	<-e.yield
	e.running = nil
	return true
}

// Run processes events until the queue is empty or the virtual clock would
// pass until. It returns the virtual time at which it stopped.
//
//xoarlint:hot bench=BenchmarkMicro_SimEventsPerSec
func (e *Env) Run(until Time) Time {
	for {
		ev := e.peekLive()
		if ev == nil {
			break
		}
		if ev.at > until {
			e.now = until
			return e.now
		}
		e.step()
		if e.now > until {
			panic(fmt.Sprintf("sim: clock overran Run(until=%d): now=%d lastEv=%q", until, e.now, e.lastEv))
		}
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// RunFor processes events for up to duration d of virtual time from now.
func (e *Env) RunFor(d Duration) Time { return e.Run(e.now.Add(d)) }

// RunAll processes events until no more remain. Processes blocked forever on
// empty channels are abandoned (their goroutines are killed).
func (e *Env) RunAll() Time {
	for e.step() {
	}
	return e.now
}

// Shutdown kills every live process so their goroutines exit. Call when a
// simulation ends with processes still blocked (e.g. servers in accept
// loops); it keeps long test runs from accumulating goroutines.
func (e *Env) Shutdown() {
	// Kill in a stable order for determinism.
	procs := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		p.Kill()
	}
	for e.step() {
	}
	e.stopped = true
}

// LiveProcs returns the number of processes that have started but not
// terminated. Used by tests to detect leaks.
func (e *Env) LiveProcs() int { return len(e.procs) }

// QueueLen reports the number of events currently in the heap, including
// stale entries that compaction has not yet reclaimed. Diagnostic only.
func (e *Env) QueueLen() int { return len(e.queue) }

// Compactions reports how many stale-event compaction passes have run.
// Diagnostic only.
func (e *Env) Compactions() int { return e.compactions }
