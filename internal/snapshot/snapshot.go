// Package snapshot implements the microreboot engine of §3.3: components
// snapshot themselves once booted and initialized, and a restart controller
// rolls them back to that image on a configurable policy — on a timer for
// driver domains, or after every request for XenStore-Logic (Figure 5.1).
//
// The engine separates mechanism from component knowledge: each restartable
// component implements Restartable and performs its own device reinit and
// ring renegotiation inside Restart; the engine drives the schedule, issues
// the hypervisor rollback, and accounts downtime.
package snapshot

import (
	"fmt"

	"xoar/internal/hv"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/xtypes"
)

// PolicyKind selects when a component microreboots.
type PolicyKind uint8

const (
	// PolicyNone disables restarts.
	PolicyNone PolicyKind = iota
	// PolicyTimer restarts at a fixed interval.
	PolicyTimer
	// PolicyPerRequest restarts after every request the component serves;
	// the component calls Engine.RequestRestart itself.
	PolicyPerRequest
)

// Policy configures a component's restart behaviour.
type Policy struct {
	Kind     PolicyKind
	Interval sim.Duration
	// Fast selects the optimized restart path: device hardware state is left
	// intact and negotiated configuration is restored from the recovery box
	// rather than renegotiated via XenStore (Figure 6.3's "fast" mode).
	Fast bool
}

// Restartable is a component the engine can microreboot.
type Restartable interface {
	// Dom is the domain the component runs in.
	Dom() xtypes.DomID
	// Name identifies the component in stats and logs.
	Name() string
	// Restart performs the component's rollback-and-recover sequence. The
	// engine has already issued the memory rollback; Restart does device
	// reinit and connection renegotiation and returns when the component is
	// serving again.
	Restart(p *sim.Proc, fast bool)
}

// Stats accumulates restart accounting for one component.
type Stats struct {
	Restarts      int
	TotalDowntime sim.Duration
	LastDowntime  sim.Duration
	PagesRestored int
	// Errors counts restart attempts the hypervisor refused (no snapshot,
	// missing privilege). A non-zero value means the policy is misconfigured.
	Errors int
}

// Engine is the restart controller. It runs with Builder-level privileges
// (it must invoke VMRollback on other domains), which is why it lives beside
// the Builder in the trust analysis.
type Engine struct {
	hv     *hv.Hypervisor
	caller xtypes.DomID // domain identity the engine acts as

	entries map[xtypes.DomID]*entry
	tel     *telemetry.Registry
}

// SetMetrics attaches a telemetry registry (nil = disabled).
func (e *Engine) SetMetrics(reg *telemetry.Registry) { e.tel = reg }

type entry struct {
	comp   Restartable
	policy Policy
	stats  Stats
	timer  *sim.Proc
	// restarting guards against overlapping restarts.
	restarting bool
}

// NewEngine returns an engine acting with the identity caller (the Builder
// domain, or hv.SystemCaller in tests).
func NewEngine(h *hv.Hypervisor, caller xtypes.DomID) *Engine {
	return &Engine{hv: h, caller: caller, entries: make(map[xtypes.DomID]*entry)}
}

// Manage registers a component under a policy. With PolicyTimer a timer
// process is spawned immediately.
func (e *Engine) Manage(c Restartable, policy Policy) error {
	if _, ok := e.entries[c.Dom()]; ok {
		return fmt.Errorf("snapshot: %v already managed: %w", c.Dom(), xtypes.ErrExists)
	}
	ent := &entry{comp: c, policy: policy}
	e.entries[c.Dom()] = ent
	if policy.Kind == PolicyTimer {
		ent.timer = e.hv.Env.Spawn("restart-timer-"+c.Name(), func(p *sim.Proc) {
			for {
				p.Sleep(policy.Interval)
				if _, ok := e.entries[c.Dom()]; !ok {
					return
				}
				e.restart(p, ent)
			}
		})
	}
	return nil
}

// Unmanage stops restarting a component.
func (e *Engine) Unmanage(dom xtypes.DomID) {
	ent, ok := e.entries[dom]
	if !ok {
		return
	}
	if ent.timer != nil {
		ent.timer.Kill()
	}
	delete(e.entries, dom)
}

// SetPolicy replaces a component's policy, restarting the timer process.
// The administrator tunes this to trade security for performance (§6.1.2).
func (e *Engine) SetPolicy(dom xtypes.DomID, policy Policy) error {
	ent, ok := e.entries[dom]
	if !ok {
		return fmt.Errorf("snapshot: %v not managed: %w", dom, xtypes.ErrNotFound)
	}
	comp := ent.comp
	e.Unmanage(dom)
	// Preserve accumulated stats across the policy change.
	stats := ent.stats
	if err := e.Manage(comp, policy); err != nil {
		return err
	}
	e.entries[dom].stats = stats
	return nil
}

// RequestRestart triggers an immediate restart from the calling process —
// the per-request policy hook used by XenStore-Logic.
func (e *Engine) RequestRestart(p *sim.Proc, dom xtypes.DomID) error {
	ent, ok := e.entries[dom]
	if !ok {
		return fmt.Errorf("snapshot: %v not managed: %w", dom, xtypes.ErrNotFound)
	}
	e.restart(p, ent)
	return nil
}

// restart performs one microreboot cycle: memory rollback, then the
// component's own recovery. Downtime is measured from rollback start to the
// component reporting ready.
func (e *Engine) restart(p *sim.Proc, ent *entry) {
	if ent.restarting {
		return
	}
	ent.restarting = true
	defer func() { ent.restarting = false }()

	start := p.Now()
	// Rollback cost: proportional to the dirty page set, at copy-on-write
	// restore speed (~1µs per 4K page: a memcpy at memory bandwidth).
	dom, err := e.hv.Domain(ent.comp.Dom())
	if err != nil {
		return
	}
	dirty := dom.Mem.DirtyPages()
	restored, err := e.hv.VMRollback(e.caller, ent.comp.Dom())
	if err != nil {
		ent.stats.Errors++
		e.tel.Counter("restart_errors_total", telemetry.L("comp", ent.comp.Name())).Inc()
		return
	}
	p.Sleep(sim.Duration(dirty+1) * sim.Microsecond)
	ent.comp.Restart(p, ent.policy.Fast)
	ent.stats.Restarts++
	ent.stats.PagesRestored += restored
	ent.stats.LastDowntime = p.Now().Sub(start)
	ent.stats.TotalDowntime += ent.stats.LastDowntime
	e.tel.Histogram("restart_downtime_ms", telemetry.LatencyMSBuckets,
		telemetry.L("comp", ent.comp.Name())).Observe(ent.stats.LastDowntime.Milliseconds())
}

// Stats reports a component's accumulated restart accounting.
func (e *Engine) Stats(dom xtypes.DomID) (Stats, bool) {
	ent, ok := e.entries[dom]
	if !ok {
		return Stats{}, false
	}
	return ent.stats, true
}

// Managed lists the domains under restart management.
func (e *Engine) Managed() []xtypes.DomID {
	out := make([]xtypes.DomID, 0, len(e.entries))
	for d := range e.entries {
		out = append(out, d)
	}
	return out
}
