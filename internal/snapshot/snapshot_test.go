package snapshot

import (
	"testing"

	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// fakeComp is a minimal restartable component whose Restart costs a fixed
// recovery time and re-dirties one page (a component always touches memory
// while recovering).
type fakeComp struct {
	h        *hv.Hypervisor
	dom      *hv.Domain
	recovery sim.Duration
	restarts int
	lastFast bool
}

func (f *fakeComp) Dom() xtypes.DomID { return f.dom.ID }
func (f *fakeComp) Name() string      { return f.dom.Name }
func (f *fakeComp) Restart(p *sim.Proc, fast bool) {
	f.restarts++
	f.lastFast = fast
	p.Sleep(f.recovery)
	f.dom.Mem.Write(1, []byte("recovered"))
}

func setup(t *testing.T) (*sim.Env, *hv.Hypervisor, *Engine, *fakeComp) {
	t.Helper()
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	d, err := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "netback", MemMB: 64, Shard: true})
	if err != nil {
		t.Fatal(err)
	}
	h.Unpause(hv.SystemCaller, d.ID)
	h.AssignPrivileges(hv.SystemCaller, d.ID, hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot}})
	d.Mem.Write(0, []byte("init"))
	if err := h.VMSnapshot(d.ID); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(h, hv.SystemCaller)
	return env, h, eng, &fakeComp{h: h, dom: d, recovery: 100 * sim.Millisecond}
}

func TestTimerPolicyRestarts(t *testing.T) {
	env, _, eng, comp := setup(t)
	if err := eng.Manage(comp, Policy{Kind: PolicyTimer, Interval: sim.Second}); err != nil {
		t.Fatal(err)
	}
	// Each cycle is interval + recovery (the timer re-arms after recovery),
	// so five restarts complete by 5×(1s+0.1s) + ε.
	env.Run(sim.Time(5700 * sim.Millisecond))
	env.Shutdown()
	if comp.restarts != 5 {
		t.Fatalf("restarts = %d, want 5", comp.restarts)
	}
	st, ok := eng.Stats(comp.Dom())
	if !ok || st.Restarts != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalDowntime < 5*comp.recovery {
		t.Fatalf("downtime = %v", st.TotalDowntime)
	}
}

func TestRollbackRestoresMemoryEachCycle(t *testing.T) {
	env, _, eng, comp := setup(t)
	comp.dom.Mem.Write(0, []byte("attacker implant"))
	eng.Manage(comp, Policy{Kind: PolicyTimer, Interval: sim.Second})
	env.Run(sim.Time(1500 * sim.Millisecond))
	env.Shutdown()
	data, _ := comp.dom.Mem.Read(0)
	if string(data) != "init" {
		t.Fatalf("memory after microreboot = %q", data)
	}
	if comp.dom.Mem.SnapEpoch() != 1 {
		t.Fatalf("epoch = %d", comp.dom.Mem.SnapEpoch())
	}
}

func TestPerRequestPolicy(t *testing.T) {
	env, _, eng, comp := setup(t)
	eng.Manage(comp, Policy{Kind: PolicyPerRequest})
	env.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			// serve a request...
			p.Sleep(10 * sim.Millisecond)
			// ...then restart ourselves.
			if err := eng.RequestRestart(p, comp.Dom()); err != nil {
				t.Error(err)
			}
		}
	})
	env.RunAll()
	if comp.restarts != 3 {
		t.Fatalf("restarts = %d", comp.restarts)
	}
}

func TestFastFlagPropagates(t *testing.T) {
	env, _, eng, comp := setup(t)
	eng.Manage(comp, Policy{Kind: PolicyTimer, Interval: sim.Second, Fast: true})
	env.Run(sim.Time(1200 * sim.Millisecond))
	env.Shutdown()
	if !comp.lastFast {
		t.Fatal("fast flag not propagated")
	}
}

func TestSetPolicyPreservesStats(t *testing.T) {
	env, _, eng, comp := setup(t)
	eng.Manage(comp, Policy{Kind: PolicyTimer, Interval: sim.Second})
	env.Run(sim.Time(2500 * sim.Millisecond))
	if err := eng.SetPolicy(comp.Dom(), Policy{Kind: PolicyTimer, Interval: 10 * sim.Second}); err != nil {
		t.Fatal(err)
	}
	st, _ := eng.Stats(comp.Dom())
	if st.Restarts != 2 {
		t.Fatalf("stats lost on policy change: %+v", st)
	}
	env.Shutdown()
}

func TestUnmanageStopsTimer(t *testing.T) {
	env, _, eng, comp := setup(t)
	eng.Manage(comp, Policy{Kind: PolicyTimer, Interval: sim.Second})
	env.Run(sim.Time(1500 * sim.Millisecond))
	eng.Unmanage(comp.Dom())
	env.Run(sim.Time(10 * sim.Second))
	env.Shutdown()
	if comp.restarts != 1 {
		t.Fatalf("restarts after unmanage = %d", comp.restarts)
	}
	if len(eng.Managed()) != 0 {
		t.Fatal("still managed")
	}
}

func TestDoubleManageRejected(t *testing.T) {
	_, _, eng, comp := setup(t)
	if err := eng.Manage(comp, Policy{Kind: PolicyNone}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Manage(comp, Policy{Kind: PolicyNone}); err == nil {
		t.Fatal("double manage accepted")
	}
}

func TestDowntimeMeasurement(t *testing.T) {
	env, _, eng, comp := setup(t)
	comp.recovery = 260 * sim.Millisecond
	eng.Manage(comp, Policy{Kind: PolicyTimer, Interval: 2 * sim.Second})
	env.Run(sim.Time(2500 * sim.Millisecond))
	env.Shutdown()
	st, _ := eng.Stats(comp.Dom())
	if st.LastDowntime < 260*sim.Millisecond || st.LastDowntime > 300*sim.Millisecond {
		t.Fatalf("downtime = %v, want ~260ms", st.LastDowntime)
	}
}
