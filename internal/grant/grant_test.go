package grant

import (
	"errors"
	"testing"
	"testing/quick"

	"xoar/internal/xtypes"
)

func newTable() *Table {
	t := NewTable()
	t.AddDomain(1)
	t.AddDomain(2)
	t.AddDomain(3)
	return t
}

func TestGrantMapUnmap(t *testing.T) {
	tbl := newTable()
	ref, err := tbl.Grant(1, 2, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tbl.Map(2, 1, ref, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Entry().Active() != 1 {
		t.Fatalf("active = %d", m.Entry().Active())
	}
	m.Unmap()
	m.Unmap() // idempotent
	if m.Entry().Active() != 0 {
		t.Fatalf("active after unmap = %d", m.Entry().Active())
	}
}

func TestMapByNonGranteeDenied(t *testing.T) {
	tbl := newTable()
	ref, _ := tbl.Grant(1, 2, 10, false)
	if _, err := tbl.Map(3, 1, ref, false); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("foreign map: %v", err)
	}
}

func TestReadOnlyGrant(t *testing.T) {
	tbl := newTable()
	ref, _ := tbl.Grant(1, 2, 10, true)
	if _, err := tbl.Map(2, 1, ref, true); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("rw map of ro grant: %v", err)
	}
	if _, err := tbl.Map(2, 1, ref, false); err != nil {
		t.Fatalf("ro map of ro grant: %v", err)
	}
	if err := tbl.Copy(2, 1, ref, true); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("write copy through ro grant: %v", err)
	}
	if err := tbl.Copy(2, 1, ref, false); err != nil {
		t.Fatalf("read copy: %v", err)
	}
}

func TestEndAccessBlockedWhileMapped(t *testing.T) {
	tbl := newTable()
	ref, _ := tbl.Grant(1, 2, 10, false)
	m, _ := tbl.Map(2, 1, ref, false)
	if err := tbl.EndAccess(1, ref); !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("revoke while mapped: %v", err)
	}
	m.Unmap()
	if err := tbl.EndAccess(1, ref); err != nil {
		t.Fatal(err)
	}
	// Revoked references are dead.
	if _, err := tbl.Map(2, 1, ref, false); !errors.Is(err, xtypes.ErrBadGrant) {
		t.Fatalf("map after revoke: %v", err)
	}
	if err := tbl.EndAccess(1, ref); !errors.Is(err, xtypes.ErrBadGrant) {
		t.Fatalf("double revoke: %v", err)
	}
}

func TestCopyRequiresEndpoint(t *testing.T) {
	tbl := newTable()
	ref, _ := tbl.Grant(1, 2, 10, false)
	if err := tbl.Copy(3, 1, ref, false); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("third-party copy: %v", err)
	}
	if err := tbl.Copy(1, 1, ref, true); err != nil {
		t.Fatalf("owner copy: %v", err)
	}
	if err := tbl.Copy(2, 1, ref, true); err != nil {
		t.Fatalf("grantee copy: %v", err)
	}
}

func TestBadRefAndBadDomain(t *testing.T) {
	tbl := newTable()
	if _, err := tbl.Map(2, 1, 999, false); !errors.Is(err, xtypes.ErrBadGrant) {
		t.Fatalf("bad ref: %v", err)
	}
	if _, err := tbl.Grant(99, 2, 0, false); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("bad owner: %v", err)
	}
	if _, err := tbl.Map(2, 99, 1, false); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("bad owner domain on map: %v", err)
	}
}

func TestSharingEnumeration(t *testing.T) {
	tbl := newTable()
	tbl.Grant(1, 2, 10, false)
	tbl.Grant(1, 2, 11, false)
	r3, _ := tbl.Grant(1, 3, 12, false)
	if n := tbl.GrantsBetween(1, 2); n != 2 {
		t.Fatalf("grants 1->2 = %d", n)
	}
	if g := tbl.GranteesOf(1); len(g) != 2 {
		t.Fatalf("grantees = %v", g)
	}
	if n := tbl.ActiveEntries(1); n != 3 {
		t.Fatalf("active entries = %d", n)
	}
	tbl.EndAccess(1, r3)
	if g := tbl.GranteesOf(1); len(g) != 1 || g[0] != 2 {
		t.Fatalf("grantees after revoke = %v", g)
	}
}

func TestRemoveDomainDropsTable(t *testing.T) {
	tbl := newTable()
	ref, _ := tbl.Grant(1, 2, 10, false)
	tbl.RemoveDomain(1)
	if _, err := tbl.Map(2, 1, ref, false); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("map after owner removal: %v", err)
	}
}

// Property: active mapping count equals maps minus unmaps for any interleaving,
// and EndAccess succeeds exactly when the count is zero.
func TestMappingCountProperty(t *testing.T) {
	f := func(ops []bool) bool {
		tbl := newTable()
		ref, _ := tbl.Grant(1, 2, 10, false)
		var live []*Mapping
		for _, doMap := range ops {
			if doMap {
				m, err := tbl.Map(2, 1, ref, false)
				if err != nil {
					return false
				}
				live = append(live, m)
			} else if len(live) > 0 {
				live[len(live)-1].Unmap()
				live = live[:len(live)-1]
			}
			err := tbl.EndAccess(1, ref)
			if len(live) > 0 {
				if !errors.Is(err, xtypes.ErrInUse) {
					return false
				}
			} else {
				if err != nil {
					return false
				}
				// Re-grant for the next iteration since EndAccess succeeded.
				ref, _ = tbl.Grant(1, 2, 10, false)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
