// Package grant implements Xen-style grant tables (§4.3): page-granularity,
// capability-like sharing of memory between specific, possibly unprivileged
// domains. A domain exports one of its own pages to a named grantee; the
// grantee maps or copies through the grant reference, and every use is
// audited against the table by the hypervisor.
//
// Grant tables are the mechanism Xoar uses to deprivilege XenStore and the
// Console Manager (§5.6): instead of Dom0-style forcible foreign mapping,
// the Builder pre-creates grant entries for the shared rings so these
// services run with no special privilege at all.
package grant

import (
	"fmt"

	"xoar/internal/xtypes"
)

// Entry is one grant-table entry: owner shares pfn with grantee.
type Entry struct {
	Owner    xtypes.DomID
	Grantee  xtypes.DomID
	PFN      xtypes.PFN
	ReadOnly bool

	active  int // live mappings through this entry
	revoked bool
	copies  int // completed grant-copy operations, for the audit trail
}

// Active reports the number of live mappings of the entry.
func (e *Entry) Active() int { return e.active }

// Revoked reports whether the owner has ended access.
func (e *Entry) Revoked() bool { return e.revoked }

type domainTable struct {
	entries map[xtypes.GrantRef]*Entry
	nextRef xtypes.GrantRef
}

// Table is the system-wide grant state, owned by the hypervisor.
type Table struct {
	domains map[xtypes.DomID]*domainTable
}

// NewTable returns an empty grant table.
func NewTable() *Table {
	return &Table{domains: make(map[xtypes.DomID]*domainTable)}
}

// AddDomain registers a domain. Called at domain creation.
func (t *Table) AddDomain(id xtypes.DomID) {
	if _, ok := t.domains[id]; !ok {
		t.domains[id] = &domainTable{entries: make(map[xtypes.GrantRef]*Entry), nextRef: 1}
	}
}

// RemoveDomain drops a domain's table. Any mappings through its entries are
// implicitly dead (the memory is gone); mappers discover this on next use.
func (t *Table) RemoveDomain(id xtypes.DomID) {
	delete(t.domains, id)
}

func (t *Table) domain(id xtypes.DomID) (*domainTable, error) {
	dt, ok := t.domains[id]
	if !ok {
		return nil, fmt.Errorf("grant: %v: %w", id, xtypes.ErrNoDomain)
	}
	return dt, nil
}

func (t *Table) lookup(owner xtypes.DomID, ref xtypes.GrantRef) (*Entry, error) {
	dt, err := t.domain(owner)
	if err != nil {
		return nil, err
	}
	e, ok := dt.entries[ref]
	if !ok || e.revoked {
		return nil, fmt.Errorf("grant: %v ref %d: %w", owner, ref, xtypes.ErrBadGrant)
	}
	return e, nil
}

// Grant exports owner's page pfn to grantee and returns the new reference.
// This corresponds to gnttab_grant_foreign_access.
func (t *Table) Grant(owner, grantee xtypes.DomID, pfn xtypes.PFN, readOnly bool) (xtypes.GrantRef, error) {
	dt, err := t.domain(owner)
	if err != nil {
		return xtypes.GrantRefInvalid, err
	}
	ref := dt.nextRef
	dt.nextRef++
	dt.entries[ref] = &Entry{Owner: owner, Grantee: grantee, PFN: pfn, ReadOnly: readOnly}
	return ref, nil
}

// Mapping is a live grant mapping held by a grantee.
type Mapping struct {
	table *Table
	entry *Entry
	Ref   xtypes.GrantRef
	ended bool
}

// Entry returns the grant entry backing the mapping.
func (m *Mapping) Entry() *Entry { return m.entry }

// Unmap releases the mapping.
func (m *Mapping) Unmap() {
	if m.ended {
		return
	}
	m.ended = true
	m.entry.active--
}

// Map validates that mapper is the designated grantee of (owner, ref) and
// records a live mapping. Mapping for write through a read-only grant fails.
func (t *Table) Map(mapper, owner xtypes.DomID, ref xtypes.GrantRef, write bool) (*Mapping, error) {
	e, err := t.lookup(owner, ref)
	if err != nil {
		return nil, err
	}
	if e.Grantee != mapper {
		return nil, fmt.Errorf("grant: map by %v of %v ref %d (grantee %v): %w", mapper, owner, ref, e.Grantee, xtypes.ErrPerm)
	}
	if write && e.ReadOnly {
		return nil, fmt.Errorf("grant: rw map of ro grant %v ref %d: %w", owner, ref, xtypes.ErrPerm)
	}
	e.active++
	return &Mapping{table: t, entry: e, Ref: ref}, nil
}

// Copy performs a grant-copy: caller moves up to one page of data through the
// entry without establishing a mapping. direction write=true means caller
// writes into the granted page.
func (t *Table) Copy(caller, owner xtypes.DomID, ref xtypes.GrantRef, write bool) error {
	e, err := t.lookup(owner, ref)
	if err != nil {
		return err
	}
	if e.Grantee != caller && e.Owner != caller {
		return fmt.Errorf("grant: copy by %v of %v ref %d: %w", caller, owner, ref, xtypes.ErrPerm)
	}
	if write && e.ReadOnly && caller != e.Owner {
		return fmt.Errorf("grant: write copy through ro grant: %w", xtypes.ErrPerm)
	}
	e.copies++
	return nil
}

// EndAccess revokes a grant. It fails with ErrInUse while mappings are live,
// matching gnttab_end_foreign_access semantics.
func (t *Table) EndAccess(owner xtypes.DomID, ref xtypes.GrantRef) error {
	e, err := t.lookup(owner, ref)
	if err != nil {
		return err
	}
	if e.active > 0 {
		return fmt.Errorf("grant: end access %v ref %d with %d live mappings: %w", owner, ref, e.active, xtypes.ErrInUse)
	}
	e.revoked = true
	return nil
}

// GrantsBetween counts non-revoked entries owner has extended to grantee.
// The audit log and security evaluation use this to weigh sharing edges.
func (t *Table) GrantsBetween(owner, grantee xtypes.DomID) int {
	dt, ok := t.domains[owner]
	if !ok {
		return 0
	}
	n := 0
	for _, e := range dt.entries {
		if !e.revoked && e.Grantee == grantee {
			n++
		}
	}
	return n
}

// GranteesOf lists domains that currently hold grants from owner.
func (t *Table) GranteesOf(owner xtypes.DomID) []xtypes.DomID {
	dt, ok := t.domains[owner]
	if !ok {
		return nil
	}
	seen := make(map[xtypes.DomID]bool)
	var out []xtypes.DomID
	for _, e := range dt.entries {
		if !e.revoked && !seen[e.Grantee] {
			seen[e.Grantee] = true
			out = append(out, e.Grantee)
		}
	}
	return out
}

// ActiveEntries counts non-revoked entries owned by id.
func (t *Table) ActiveEntries(id xtypes.DomID) int {
	dt, ok := t.domains[id]
	if !ok {
		return 0
	}
	n := 0
	for _, e := range dt.entries {
		if !e.revoked {
			n++
		}
	}
	return n
}
