// Package builder implements the Xoar Builder: the one component that keeps
// domain-construction privileges after boot (§5.4). Everything else asks it.
//
// The Builder is deliberately tiny — the paper's nanOS image is ~8K lines of
// source (Table 6.1) — because it is the whole steady-state TCB: it is the
// only domain holding both HyperMapForeign and HyperDomctlPriv, the pair the
// security analyzer treats as "can touch anything" (§6.2). Its job splits in
// two:
//
//   - VM construction. Requests arrive over a queue and are served one at a
//     time, so every build is audited against the requester's standing
//     before any privileged hypercall is issued. Images come from a
//     known-good catalog; untrusted kernels are never mapped by the Builder
//     itself but handed to a bootloader domain that loads them from inside
//     (§5.5). A toolstack may request plain guests and a QemuVM for guests
//     it parents — nothing else.
//
//   - Shard administration. Driver shards are delegated to the Builder at
//     boot (boot.go), which hosts the microreboot engine: it snapshots
//     replacements, rolls shards back to their boot-time image, and rebuilds
//     them from the recorded request when rollback is impossible (§3.3).
package builder

import (
	"fmt"

	"xoar/internal/hv"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/telemetry"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

// Build CPU cost: hypercall work plus scrubbing the new domain's pages,
// charged to the Builder's own vCPU.
const (
	buildCompute = 2 * sim.Millisecond
	scrubPerMB   = 4 * sim.Microsecond
)

// Request describes one domain the Builder should construct.
type Request struct {
	// Requester is the domain (or boot-time principal) asking for the
	// build. All privilege checks are made against it, and it becomes the
	// new domain's parent toolstack (§5.6).
	Requester xtypes.DomID
	// Name of the new domain.
	Name string
	// Image names an entry in the known-good catalog. Ignored when
	// CustomKernel or QemuFor is set.
	Image string
	// CustomKernel requests a guest-supplied kernel. The Builder refuses to
	// map untrusted code and instead boots the bootloader image, which
	// loads the kernel from inside the new domain (§5.5).
	CustomKernel bool
	// MemMB overrides the image's default reservation (0 = default).
	MemMB int
	// VCPUs for the new domain (0 = 1).
	VCPUs int
	// Shard marks the domain as a Xoar shard. Only authorized requesters
	// may ask for shards.
	Shard bool
	// QemuFor requests a device-model stub domain for the named HVM guest.
	// The Builder fixes the image and privilege block itself and checks the
	// requester parents the guest. DomID 0 never identifies a qemu target.
	QemuFor xtypes.DomID
	// Privileges to assign to the new domain. Only authorized requesters
	// may ask for a non-empty assignment.
	Privileges hv.Assignment
}

// qemu reports whether the request is a device-model build. The Request
// zero value leaves QemuFor at 0 (= the bootstrapper / Dom0), which can
// never be an HVM guest, so 0 means "unset".
func (r Request) qemu() bool {
	return r.QemuFor != 0 && r.QemuFor != xtypes.DomIDNone
}

// Builder is the domain-building service. Create with New, then run Serve
// in its own process; Submit requests from any other process.
type Builder struct {
	// XenStoreDom, when set, receives a pre-created grant entry on every
	// new domain — the extra VM-build step that lets XenStore-Logic run
	// without foreign-mapping privilege (§5.4). DomIDNone disables it.
	XenStoreDom xtypes.DomID

	// Builds counts completed constructions; Denied counts refused
	// requests; Rebuilds counts shard replacements by the restart engine.
	Builds   int
	Denied   int
	Rebuilds int

	// Monolithic marks the stock-Xen Dom0 profile: the Builder identity is
	// Dom0 itself and there is no microreboot machinery, so Rollback and
	// Rebuild refuse with xtypes.ErrNoMicroreboot (§3.3 is Xoar-only).
	Monolithic bool

	hv    *hv.Hypervisor
	dom   xtypes.DomID
	cat   *osimage.Catalog
	xs    *xenstore.Conn
	queue *sim.Chan[*job]
	eng   *snapshot.Engine

	// tel is the telemetry registry (nil = disabled); m holds pre-resolved
	// metric handles so the hot path pays one nil check per observation.
	tel *telemetry.Registry
	m   builderMetrics

	// authorized lists principals allowed privileged builds (the
	// Bootstrapper during boot; the Builder itself afterwards).
	authorized map[xtypes.DomID]bool
	// records remembers each build so a failed shard can be reconstructed.
	records map[xtypes.DomID]record
}

type record struct {
	req  Request
	boot sim.Duration
}

// builderMetrics are the Builder's pre-resolved telemetry handles; all nil
// when telemetry is disabled (every method no-ops on nil).
type builderMetrics struct {
	queueDepth *telemetry.Histogram // depth seen by each Submit at enqueue
	queueWait  *telemetry.Histogram // ms a job waited before service
	buildMS    *telemetry.Histogram // ms from service start to booted
	builds     *telemetry.Counter
	denied     *telemetry.Counter
}

type job struct {
	req   Request
	reply *sim.Chan[jobResult]
	enq   sim.Time // when Submit enqueued the job
}

type jobResult struct {
	dom xtypes.DomID
	err error
}

// New returns a Builder bound to the given domain. xs must be a privileged
// XenStore connection: the Builder registers every newcomer in the store.
func New(h *hv.Hypervisor, dom xtypes.DomID, cat *osimage.Catalog, xs *xenstore.Conn) *Builder {
	return &Builder{
		XenStoreDom: xtypes.DomIDNone,
		hv:          h,
		dom:         dom,
		cat:         cat,
		xs:          xs,
		queue:       sim.NewChan[*job](h.Env),
		eng:         snapshot.NewEngine(h, dom),
		authorized:  make(map[xtypes.DomID]bool),
		records:     make(map[xtypes.DomID]record),
	}
}

// Dom returns the domain the Builder runs in.
func (b *Builder) Dom() xtypes.DomID { return b.dom }

// SetMetrics attaches a telemetry registry to the Builder and its restart
// engine. Safe with nil (telemetry disabled); call before Serve starts.
func (b *Builder) SetMetrics(reg *telemetry.Registry) {
	b.tel = reg
	b.eng.SetMetrics(reg)
	b.m = builderMetrics{
		queueDepth: reg.Histogram("builder_queue_depth", telemetry.DepthBuckets),
		queueWait:  reg.Histogram("builder_queue_wait_ms", telemetry.LatencyMSBuckets),
		buildMS:    reg.Histogram("builder_build_latency_ms", telemetry.LatencyMSBuckets),
		builds:     reg.Counter("builder_builds_total"),
		denied:     reg.Counter("builder_denied_total"),
	}
}

// Authorize allows dom to request privileged builds (shards, device
// passthrough, hypercall whitelists).
func (b *Builder) Authorize(dom xtypes.DomID) { b.authorized[dom] = true }

// Revoke withdraws a principal's privileged-build standing — how the
// Bootstrapper is dropped from the trust set once boot completes (§5.2).
func (b *Builder) Revoke(dom xtypes.DomID) { delete(b.authorized, dom) }

// Serve processes build requests one at a time. Serialization is part of
// the security argument — every privileged hypercall the Builder issues is
// attributable to exactly one validated request — and part of the paper's
// boot-time story: domains built through the Builder come up one after
// another, which is why Xoar's ping-ready speedup (1.15x, through the
// Builder) trails its console speedup (1.5x, direct parallel boot) in
// Table 6.2.
func (b *Builder) Serve(p *sim.Proc) {
	for {
		j, ok := b.queue.Recv(p)
		if !ok {
			return
		}
		b.m.queueWait.Observe(p.Now().Sub(j.enq).Milliseconds())
		start := p.Now()
		sp := b.tel.StartSpan("builder", "build:"+j.req.Name, start)
		csp := sp.StartChild("construct", start)
		dom, boot, err := b.build(p, j.req)
		csp.EndAt(p.Now())
		if err == nil {
			// The Builder supervises the newcomer's bring-up before
			// acknowledging the request.
			bsp := sp.StartChild("boot", p.Now())
			p.Sleep(boot)
			bsp.EndAt(p.Now())
			b.m.buildMS.Observe(p.Now().Sub(start).Milliseconds())
		}
		sp.EndAt(p.Now())
		j.reply.Send(jobResult{dom: dom, err: err})
	}
}

// Submit enqueues a request and waits until the new domain is built and
// booted. Safe to call from any process except the Builder's own serve
// loop (which would deadlock — internal callers use BuildDirect).
func (b *Builder) Submit(p *sim.Proc, req Request) (xtypes.DomID, error) {
	j := &job{req: req, reply: sim.NewChan[jobResult](b.hv.Env), enq: b.hv.Env.Now()}
	b.queue.Send(j)
	b.m.queueDepth.Observe(float64(b.queue.Len()))
	res, ok := j.reply.Recv(p)
	if !ok {
		return xtypes.DomIDNone, fmt.Errorf("builder: %w", xtypes.ErrShutdown)
	}
	if res.err != nil {
		return xtypes.DomIDNone, res.err
	}
	return res.dom, nil
}

// BuildDirect performs a build synchronously in the caller's process,
// bypassing the queue. Used by the rolling-upgrade path, which runs with
// the Builder's own identity and must not deadlock the serve loop.
func (b *Builder) BuildDirect(p *sim.Proc, req Request) (xtypes.DomID, error) {
	start := p.Now()
	sp := b.tel.StartSpan("builder", "build-direct:"+req.Name, start)
	defer func() { sp.EndAt(p.Now()) }()
	dom, boot, err := b.build(p, req)
	if err != nil {
		return xtypes.DomIDNone, err
	}
	p.Sleep(boot)
	b.m.buildMS.Observe(p.Now().Sub(start).Milliseconds())
	return dom, nil
}

// trusted reports whether dom may request privileged builds: the Builder
// itself (rebuilding its wards) or a principal on the authorized list.
func (b *Builder) trusted(dom xtypes.DomID) bool {
	return dom == b.dom || b.authorized[dom]
}

// resolve validates req against the requester's standing and pins down the
// image and privilege block to apply. It returns the (possibly rewritten)
// request alongside the image.
func (b *Builder) resolve(req Request) (osimage.Image, Request, error) {
	// The requester must be a live domain, or a principal on the
	// authorized list (the Bootstrapper exists only during boot).
	if !b.trusted(req.Requester) {
		if _, err := b.hv.Domain(req.Requester); err != nil {
			return osimage.Image{}, req, fmt.Errorf("builder: requester %v unknown: %w", req.Requester, xtypes.ErrPerm)
		}
	}

	if req.qemu() {
		target, err := b.hv.Domain(req.QemuFor)
		if err != nil {
			return osimage.Image{}, req, fmt.Errorf("builder: qemu target %v: %w", req.QemuFor, err)
		}
		if !b.trusted(req.Requester) && target.ParentTool() != req.Requester {
			return osimage.Image{}, req, fmt.Errorf("builder: qemu for foreign guest %v requested by %v: %w",
				req.QemuFor, req.Requester, xtypes.ErrPerm)
		}
		// Device-model builds carry a fixed image and privilege block: a
		// stub-domain QEMU with foreign-map rights over exactly its guest
		// (§5.6). The requester has no say in either.
		img, err := b.cat.Lookup(osimage.ImgQemu)
		if err != nil {
			return osimage.Image{}, req, err
		}
		req.Image = img.Name
		req.CustomKernel = false
		req.Shard = true
		req.Privileges = hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperMapForeign}}
		return img, req, nil
	}

	// Shards and privilege assignments are reserved for authorized
	// principals; a toolstack may only ask for plain guests.
	if (req.Shard || !assignmentEmpty(req.Privileges)) && !b.trusted(req.Requester) {
		return osimage.Image{}, req, fmt.Errorf("builder: privileged build %q by %v: %w",
			req.Name, req.Requester, xtypes.ErrPerm)
	}

	if req.CustomKernel {
		img, err := b.cat.Lookup(osimage.ImgBootloader)
		if err != nil {
			return osimage.Image{}, req, err
		}
		if req.MemMB <= 0 {
			// The bootloader's own footprint is not the guest's: default
			// to the standard guest reservation.
			if gi, gerr := b.cat.Lookup(osimage.ImgGuestPV); gerr == nil {
				req.MemMB = gi.MemMB
			}
		}
		req.Image = img.Name
		return img, req, nil
	}

	img, err := b.cat.Lookup(req.Image)
	if err != nil {
		return osimage.Image{}, req, fmt.Errorf("builder: image %q: %w", req.Image, err)
	}
	return img, req, nil
}

// build validates, constructs and releases one domain, returning its ID and
// the boot time the caller should charge.
func (b *Builder) build(p *sim.Proc, req Request) (xtypes.DomID, sim.Duration, error) {
	img, req, err := b.resolve(req)
	if err != nil {
		b.Denied++
		b.m.denied.Inc()
		return xtypes.DomIDNone, 0, err
	}
	memMB := req.MemMB
	if memMB <= 0 {
		memMB = img.MemMB
	}
	// Page-table setup and scrubbing run on the Builder's own vCPU.
	b.hv.Compute(p, b.dom, buildCompute+sim.Duration(memMB)*scrubPerMB)

	d, err := b.hv.CreateDomain(b.dom, hv.DomainConfig{
		Name: req.Name, MemMB: memMB, VCPUs: req.VCPUs,
		Shard: req.Shard, OSImage: img.Name,
	})
	if err != nil {
		return xtypes.DomIDNone, 0, fmt.Errorf("builder: create %q: %w", req.Name, err)
	}
	if err := b.setup(d.ID, req); err != nil {
		// Abort cleanly: a half-privileged domain must not survive.
		b.hv.DestroyDomain(b.dom, d.ID, "builder: aborted build")
		return xtypes.DomIDNone, 0, err
	}
	b.Builds++
	b.m.builds.Inc()
	b.records[d.ID] = record{req: req, boot: img.BootTime()}
	return d.ID, img.BootTime(), nil
}

// setup applies privileges, registers the newcomer and releases it.
func (b *Builder) setup(id xtypes.DomID, req Request) error {
	if !assignmentEmpty(req.Privileges) {
		if err := b.hv.AssignPrivileges(b.dom, id, req.Privileges); err != nil {
			return fmt.Errorf("builder: privileges for %q: %w", req.Name, err)
		}
	}
	if req.qemu() {
		if err := b.hv.SetPrivilegedFor(b.dom, id, req.QemuFor); err != nil {
			return err
		}
	}
	if err := b.register(id, req); err != nil {
		return err
	}
	if b.XenStoreDom != xtypes.DomIDNone {
		// The extra VM-build step that lets XenStore run deprivileged: the
		// Builder pre-creates the grant entry for the store ring so the
		// Logic never needs to map foreign memory itself (§5.4).
		if _, err := b.hv.GrantFor(b.dom, id, b.XenStoreDom, 0, false); err != nil {
			return err
		}
	}
	if err := b.hv.Unpause(b.dom, id); err != nil {
		return err
	}
	// Handoff comes last: once the requester is recorded as parent
	// toolstack, VM-management rights over the newcomer are its — the
	// Builder keeps nothing it does not need (§5.6).
	return b.hv.SetParentTool(b.dom, id, req.Requester)
}

// register creates the domain's XenStore tree and hands it over: the domain
// owns its tree, the world may read it (device discovery).
func (b *Builder) register(id xtypes.DomID, req Request) error {
	base := fmt.Sprintf("/local/domain/%d", id)
	if err := b.xs.Mkdir(xenstore.TxNone, base); err != nil {
		return err
	}
	if err := b.xs.Write(xenstore.TxNone, base+"/name", req.Name); err != nil {
		return err
	}
	return b.xs.SetPerms(base, xenstore.Perms{Owner: id, Read: []xtypes.DomID{xtypes.DomIDNone}})
}

func assignmentEmpty(a hv.Assignment) bool {
	return !a.ControlAll && len(a.PCIDevices) == 0 && len(a.Hypercalls) == 0 &&
		len(a.DelegateTo) == 0 && len(a.IOPorts) == 0
}
