// Package builder implements the Xoar Builder: the one component that keeps
// domain-construction privileges after boot (§5.4). Everything else asks it.
//
// The Builder is deliberately tiny — the paper's nanOS image is ~8K lines of
// source (Table 6.1) — because it is the whole steady-state TCB: it is the
// only domain holding both HyperMapForeign and HyperDomctlPriv, the pair the
// security analyzer treats as "can touch anything" (§6.2). Its job splits in
// two:
//
//   - VM construction. Requests arrive over a queue and are served one at a
//     time, so every build is audited against the requester's standing
//     before any privileged hypercall is issued. Images come from a
//     known-good catalog; untrusted kernels are never mapped by the Builder
//     itself but handed to a bootloader domain that loads them from inside
//     (§5.5). A toolstack may request plain guests and a QemuVM for guests
//     it parents — nothing else.
//
//   - Shard administration. Driver shards are delegated to the Builder at
//     boot (boot.go), which hosts the microreboot engine: it snapshots
//     replacements, rolls shards back to their boot-time image, and rebuilds
//     them from the recorded request when rollback is impossible (§3.3).
package builder

import (
	"fmt"

	"xoar/internal/hv"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/telemetry"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

// Build CPU cost: hypercall work plus scrubbing the new domain's pages,
// charged to the Builder's own vCPU.
const (
	buildCompute = 2 * sim.Millisecond
	scrubPerMB   = 4 * sim.Microsecond
)

// Request describes one domain the Builder should construct.
type Request struct {
	// Requester is the domain (or boot-time principal) asking for the
	// build. All privilege checks are made against it, and it becomes the
	// new domain's parent toolstack (§5.6).
	Requester xtypes.DomID
	// Name of the new domain.
	Name string
	// Image names an entry in the known-good catalog. Ignored when
	// CustomKernel or QemuFor is set.
	Image string
	// CustomKernel requests a guest-supplied kernel. The Builder refuses to
	// map untrusted code and instead boots the bootloader image, which
	// loads the kernel from inside the new domain (§5.5).
	CustomKernel bool
	// MemMB overrides the image's default reservation (0 = default).
	MemMB int
	// VCPUs for the new domain (0 = 1).
	VCPUs int
	// Shard marks the domain as a Xoar shard. Only authorized requesters
	// may ask for shards.
	Shard bool
	// QemuFor requests a device-model stub domain for the named HVM guest.
	// The Builder fixes the image and privilege block itself and checks the
	// requester parents the guest. DomID 0 never identifies a qemu target.
	QemuFor xtypes.DomID
	// Privileges to assign to the new domain. Only authorized requesters
	// may ask for a non-empty assignment.
	Privileges hv.Assignment
}

// qemu reports whether the request is a device-model build. The Request
// zero value leaves QemuFor at 0 (= the bootstrapper / Dom0), which can
// never be an HVM guest, so 0 means "unset".
func (r Request) qemu() bool {
	return r.QemuFor != 0 && r.QemuFor != xtypes.DomIDNone
}

// Builder is the domain-building service. Create with New, then run Serve
// in its own process; Submit requests from any other process.
type Builder struct {
	// XenStoreDom, when set, receives a pre-created grant entry on every
	// new domain — the extra VM-build step that lets XenStore-Logic run
	// without foreign-mapping privilege (§5.4). DomIDNone disables it.
	XenStoreDom xtypes.DomID

	// Builds counts completed constructions; Denied counts refused
	// requests; Rebuilds counts shard replacements by the restart engine.
	Builds   int
	Denied   int
	Rebuilds int

	// Monolithic marks the stock-Xen Dom0 profile: the Builder identity is
	// Dom0 itself and there is no microreboot machinery, so Rollback and
	// Rebuild refuse with xtypes.ErrNoMicroreboot (§3.3 is Xoar-only).
	Monolithic bool

	hv    *hv.Hypervisor
	dom   xtypes.DomID
	cat   *osimage.Catalog
	xs    *xenstore.Conn
	queue *sim.Chan[*job]
	eng   *snapshot.Engine

	// tel is the telemetry registry (nil = disabled); m holds pre-resolved
	// metric handles so the hot path pays one nil check per observation.
	tel *telemetry.Registry
	m   builderMetrics

	// authorized lists principals allowed privileged builds (the
	// Bootstrapper during boot; the Builder itself afterwards).
	authorized map[xtypes.DomID]bool
	// records remembers each build so a failed shard can be reconstructed.
	records map[xtypes.DomID]record
}

type record struct {
	req  Request
	boot sim.Duration
}

// builderMetrics are the Builder's pre-resolved telemetry handles; all nil
// when telemetry is disabled (every method no-ops on nil).
type builderMetrics struct {
	queueDepth    *telemetry.Histogram // depth seen by each Submit at enqueue
	queueWait     *telemetry.Histogram // ms a job waited before service
	buildMS       *telemetry.Histogram // ms from service start to booted
	builds        *telemetry.Counter
	denied        *telemetry.Counter
	batches       *telemetry.Counter   // SubmitAll batches served
	batchSize     *telemetry.Histogram // requests per batch
	batchMakespan *telemetry.Histogram // ms from batch service start to last boot
}

// job is one queue entry: either a single request (req/reply) or a whole
// SubmitAll batch (batch/batchReply). Exactly one of the two reply channels
// is set.
type job struct {
	req   Request
	reply *sim.Chan[jobResult]

	batch      []Request
	batchReply *sim.Chan[batchResult]

	enq sim.Time // when Submit/SubmitAll enqueued the job
}

type jobResult struct {
	dom xtypes.DomID
	err error
}

// batchResult carries per-slot outcomes for a SubmitAll batch; doms and errs
// are index-aligned with the submitted requests.
type batchResult struct {
	doms []xtypes.DomID
	errs []error
}

// bootJob hands a freshly constructed domain to the batch boot supervisor.
type bootJob struct {
	name string
	boot sim.Duration
}

// New returns a Builder bound to the given domain. xs must be a privileged
// XenStore connection: the Builder registers every newcomer in the store.
func New(h *hv.Hypervisor, dom xtypes.DomID, cat *osimage.Catalog, xs *xenstore.Conn) *Builder {
	return &Builder{
		XenStoreDom: xtypes.DomIDNone,
		hv:          h,
		dom:         dom,
		cat:         cat,
		xs:          xs,
		queue:       sim.NewChan[*job](h.Env),
		eng:         snapshot.NewEngine(h, dom),
		authorized:  make(map[xtypes.DomID]bool),
		records:     make(map[xtypes.DomID]record),
	}
}

// Dom returns the domain the Builder runs in.
func (b *Builder) Dom() xtypes.DomID { return b.dom }

// SetMetrics attaches a telemetry registry to the Builder and its restart
// engine. Safe with nil (telemetry disabled); call before Serve starts.
func (b *Builder) SetMetrics(reg *telemetry.Registry) {
	b.tel = reg
	b.eng.SetMetrics(reg)
	b.m = builderMetrics{
		queueDepth: reg.Histogram("builder_queue_depth", telemetry.DepthBuckets),
		queueWait:  reg.Histogram("builder_queue_wait_ms", telemetry.LatencyMSBuckets),
		buildMS:    reg.Histogram("builder_build_latency_ms", telemetry.LatencyMSBuckets),
		builds:     reg.Counter("builder_builds_total"),
		denied:     reg.Counter("builder_denied_total"),

		batches:       reg.Counter("builder_batches_total"),
		batchSize:     reg.Histogram("builder_batch_size", telemetry.DepthBuckets),
		batchMakespan: reg.Histogram("builder_batch_makespan_ms", telemetry.LatencyMSBuckets),
	}
}

// Authorize allows dom to request privileged builds (shards, device
// passthrough, hypercall whitelists).
func (b *Builder) Authorize(dom xtypes.DomID) { b.authorized[dom] = true }

// Revoke withdraws a principal's privileged-build standing — how the
// Bootstrapper is dropped from the trust set once boot completes (§5.2).
func (b *Builder) Revoke(dom xtypes.DomID) { delete(b.authorized, dom) }

// Serve processes build requests one at a time. Serialization is part of
// the security argument — every privileged hypercall the Builder issues is
// attributable to exactly one validated request — and part of the paper's
// boot-time story: domains built through the Builder come up one after
// another, which is why Xoar's ping-ready speedup (1.15x, through the
// Builder) trails its console speedup (1.5x, direct parallel boot) in
// Table 6.2.
func (b *Builder) Serve(p *sim.Proc) {
	for {
		j, ok := b.queue.Recv(p)
		if !ok {
			return
		}
		b.m.queueWait.Observe(p.Now().Sub(j.enq).Milliseconds())
		if j.batch != nil {
			b.serveBatch(p, j)
			continue
		}
		start := p.Now()
		sp := b.tel.StartSpan("builder", "build:"+j.req.Name, start)
		csp := sp.StartChild("construct", start)
		dom, boot, err := b.build(p, j.req)
		csp.EndAt(p.Now())
		if err == nil {
			// The Builder supervises the newcomer's bring-up before
			// acknowledging the request.
			bsp := sp.StartChild("boot", p.Now())
			p.Sleep(boot)
			bsp.EndAt(p.Now())
			b.m.buildMS.Observe(p.Now().Sub(start).Milliseconds())
		}
		sp.EndAt(p.Now())
		j.reply.Send(jobResult{dom: dom, err: err})
	}
}

// serveBatch runs one SubmitAll batch as a two-stage pipeline.
//
// Stage 0 (validation, hoisted): every request is resolved before the first
// page is scrubbed. A malformed or unprivileged request rejects the whole
// batch — its slot carries the resolve error, every other slot carries
// xtypes.ErrBatchAborted — and no build compute is consumed. Hoisting keeps
// the fail-fast property of Submit while making the batch atomic: callers
// never receive a half-built fleet because request k was misauthorized.
//
// Stage 1/2 (construct ∥ boot): construction stays on the Builder's vCPU,
// one domain at a time, exactly as the single-request path — every
// privileged hypercall remains attributable to one validated request. But
// supervised boots move to a dedicated supervisor process, so while domain
// i sleeps through bring-up the Builder is already computing page tables
// and scrubbing pages for domain i+1. Boots themselves stay strictly
// serialized (the supervisor sleeps them one after another, in FIFO
// order), preserving the paper's one-at-a-time bring-up through the
// Builder (Table 6.2): the pipeline overlaps scrub cost with boot latency,
// it does not parallelize boots.
//
// The batch occupies the serve loop until its last boot completes, so
// concurrent Submit callers keep the FIFO guarantees they had before.
func (b *Builder) serveBatch(p *sim.Proc, j *job) {
	n := len(j.batch)
	doms := make([]xtypes.DomID, n)
	errs := make([]error, n)
	imgs := make([]osimage.Image, n)
	resolved := make([]Request, n)
	for i := range doms {
		doms[i] = xtypes.DomIDNone
	}

	// Stage 0: validate everything up front; no compute spent on failure.
	invalid := false
	for i, req := range j.batch {
		img, rr, err := b.resolve(req)
		if err != nil {
			errs[i] = err
			invalid = true
			b.Denied++
			b.m.denied.Inc()
			continue
		}
		imgs[i], resolved[i] = img, rr
	}
	if invalid {
		for i := range errs {
			if errs[i] == nil {
				errs[i] = fmt.Errorf("builder: request %q: %w", j.batch[i].Name, xtypes.ErrBatchAborted)
			}
		}
		j.batchReply.Send(batchResult{doms: doms, errs: errs})
		return
	}

	start := p.Now()
	sp := b.tel.StartSpan("builder", fmt.Sprintf("build-batch[%d]", n), start)
	b.m.batches.Inc()
	b.m.batchSize.Observe(float64(n))

	// The boot supervisor serializes bring-up off the Builder's vCPU.
	bootQ := sim.NewChan[bootJob](b.hv.Env)
	bootsDone := sim.NewChan[struct{}](b.hv.Env)
	b.hv.Env.Spawn("builder-batch-boot", func(bp *sim.Proc) {
		for {
			bj, ok := bootQ.Recv(bp)
			if !ok {
				break
			}
			bsp := sp.StartChild("boot:"+bj.name, bp.Now())
			bp.Sleep(bj.boot)
			bsp.EndAt(bp.Now())
		}
		bootsDone.Send(struct{}{})
	})

	for i := range resolved {
		csp := sp.StartChild("construct:"+resolved[i].Name, p.Now())
		dom, boot, err := b.construct(p, imgs[i], resolved[i])
		csp.EndAt(p.Now())
		if err != nil {
			errs[i] = err
			continue
		}
		doms[i] = dom
		bootQ.Send(bootJob{name: resolved[i].Name, boot: boot})
	}
	bootQ.Close()
	if _, ok := bootsDone.Recv(p); !ok {
		return
	}
	sp.EndAt(p.Now())
	b.m.batchMakespan.Observe(p.Now().Sub(start).Milliseconds())
	j.batchReply.Send(batchResult{doms: doms, errs: errs})
}

// Submit enqueues a request and waits until the new domain is built and
// booted. Safe to call from any process except the Builder's own serve
// loop (which would deadlock — internal callers use BuildDirect).
func (b *Builder) Submit(p *sim.Proc, req Request) (xtypes.DomID, error) {
	j := &job{req: req, reply: sim.NewChan[jobResult](b.hv.Env), enq: b.hv.Env.Now()}
	b.queue.Send(j)
	b.m.queueDepth.Observe(float64(b.queue.Len()))
	res, ok := j.reply.Recv(p)
	if !ok {
		return xtypes.DomIDNone, fmt.Errorf("builder: %w", xtypes.ErrShutdown)
	}
	if res.err != nil {
		return xtypes.DomIDNone, res.err
	}
	return res.dom, nil
}

// SubmitAll enqueues a batch of requests as one unit of Builder work and
// waits until every domain is built and booted (or the batch is rejected).
// Results are index-aligned with reqs: doms[i] is the new domain for
// reqs[i] (DomIDNone on failure) and errs[i] its error (nil on success).
//
// The batch is validated in full before any build compute is spent; one
// invalid request fails the whole batch, with the remaining slots carrying
// xtypes.ErrBatchAborted. Valid batches run as a two-stage pipeline (see
// serveBatch): scrubbing of domain i+1 overlaps the supervised boot of
// domain i, so the batch makespan is strictly below the serial Submit sum
// while boots — and the FIFO order seen by concurrent Submit callers —
// remain exactly as serialized as before.
func (b *Builder) SubmitAll(p *sim.Proc, reqs []Request) ([]xtypes.DomID, []error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	batch := make([]Request, len(reqs))
	copy(batch, reqs)
	j := &job{batch: batch, batchReply: sim.NewChan[batchResult](b.hv.Env), enq: b.hv.Env.Now()}
	b.queue.Send(j)
	b.m.queueDepth.Observe(float64(b.queue.Len()))
	res, ok := j.batchReply.Recv(p)
	if !ok {
		doms := make([]xtypes.DomID, len(reqs))
		errs := make([]error, len(reqs))
		for i := range errs {
			doms[i] = xtypes.DomIDNone
			errs[i] = fmt.Errorf("builder: %w", xtypes.ErrShutdown)
		}
		return doms, errs
	}
	return res.doms, res.errs
}

// BuildDirect performs a build synchronously in the caller's process,
// bypassing the queue. Used by the rolling-upgrade path, which runs with
// the Builder's own identity and must not deadlock the serve loop.
func (b *Builder) BuildDirect(p *sim.Proc, req Request) (xtypes.DomID, error) {
	start := p.Now()
	sp := b.tel.StartSpan("builder", "build-direct:"+req.Name, start)
	defer func() { sp.EndAt(p.Now()) }()
	dom, boot, err := b.build(p, req)
	if err != nil {
		return xtypes.DomIDNone, err
	}
	p.Sleep(boot)
	b.m.buildMS.Observe(p.Now().Sub(start).Milliseconds())
	return dom, nil
}

// trusted reports whether dom may request privileged builds: the Builder
// itself (rebuilding its wards) or a principal on the authorized list.
func (b *Builder) trusted(dom xtypes.DomID) bool {
	return dom == b.dom || b.authorized[dom]
}

// resolve validates req against the requester's standing and pins down the
// image and privilege block to apply. It returns the (possibly rewritten)
// request alongside the image.
func (b *Builder) resolve(req Request) (osimage.Image, Request, error) {
	// The requester must be a live domain, or a principal on the
	// authorized list (the Bootstrapper exists only during boot).
	if !b.trusted(req.Requester) {
		if _, err := b.hv.Domain(req.Requester); err != nil {
			return osimage.Image{}, req, fmt.Errorf("builder: requester %v unknown: %w", req.Requester, xtypes.ErrPerm)
		}
	}

	if req.qemu() {
		target, err := b.hv.Domain(req.QemuFor)
		if err != nil {
			return osimage.Image{}, req, fmt.Errorf("builder: qemu target %v: %w", req.QemuFor, err)
		}
		if !b.trusted(req.Requester) && target.ParentTool() != req.Requester {
			return osimage.Image{}, req, fmt.Errorf("builder: qemu for foreign guest %v requested by %v: %w",
				req.QemuFor, req.Requester, xtypes.ErrPerm)
		}
		// Device-model builds carry a fixed image and privilege block: a
		// stub-domain QEMU with foreign-map rights over exactly its guest
		// (§5.6). The requester has no say in either.
		img, err := b.cat.Lookup(osimage.ImgQemu)
		if err != nil {
			return osimage.Image{}, req, err
		}
		req.Image = img.Name
		req.CustomKernel = false
		req.Shard = true
		req.Privileges = hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperMapForeign}}
		return img, req, nil
	}

	// Shards and privilege assignments are reserved for authorized
	// principals; a toolstack may only ask for plain guests.
	if (req.Shard || !assignmentEmpty(req.Privileges)) && !b.trusted(req.Requester) {
		return osimage.Image{}, req, fmt.Errorf("builder: privileged build %q by %v: %w",
			req.Name, req.Requester, xtypes.ErrPerm)
	}

	if req.CustomKernel {
		img, err := b.cat.Lookup(osimage.ImgBootloader)
		if err != nil {
			return osimage.Image{}, req, err
		}
		if req.MemMB <= 0 {
			// The bootloader's own footprint is not the guest's: default
			// to the standard guest reservation.
			if gi, gerr := b.cat.Lookup(osimage.ImgGuestPV); gerr == nil {
				req.MemMB = gi.MemMB
			}
		}
		req.Image = img.Name
		return img, req, nil
	}

	img, err := b.cat.Lookup(req.Image)
	if err != nil {
		return osimage.Image{}, req, fmt.Errorf("builder: image %q: %w", req.Image, err)
	}
	return img, req, nil
}

// build validates, constructs and releases one domain, returning its ID and
// the boot time the caller should charge.
func (b *Builder) build(p *sim.Proc, req Request) (xtypes.DomID, sim.Duration, error) {
	img, req, err := b.resolve(req)
	if err != nil {
		b.Denied++
		b.m.denied.Inc()
		return xtypes.DomIDNone, 0, err
	}
	return b.construct(p, img, req)
}

// construct spends the build compute and creates one domain from an
// already-resolved request. Split from build so serveBatch can validate a
// whole batch before the first page is scrubbed.
func (b *Builder) construct(p *sim.Proc, img osimage.Image, req Request) (xtypes.DomID, sim.Duration, error) {
	memMB := req.MemMB
	if memMB <= 0 {
		memMB = img.MemMB
	}
	// Page-table setup and scrubbing run on the Builder's own vCPU.
	b.hv.Compute(p, b.dom, buildCompute+sim.Duration(memMB)*scrubPerMB)

	d, err := b.hv.CreateDomain(b.dom, hv.DomainConfig{
		Name: req.Name, MemMB: memMB, VCPUs: req.VCPUs,
		Shard: req.Shard, OSImage: img.Name,
	})
	if err != nil {
		return xtypes.DomIDNone, 0, fmt.Errorf("builder: create %q: %w", req.Name, err)
	}
	if err := b.setup(d.ID, req); err != nil {
		// Abort cleanly: a half-privileged domain must not survive.
		b.hv.DestroyDomain(b.dom, d.ID, "builder: aborted build")
		return xtypes.DomIDNone, 0, err
	}
	b.Builds++
	b.m.builds.Inc()
	b.records[d.ID] = record{req: req, boot: img.BootTime()}
	return d.ID, img.BootTime(), nil
}

// setup applies privileges, registers the newcomer and releases it.
func (b *Builder) setup(id xtypes.DomID, req Request) error {
	if !assignmentEmpty(req.Privileges) {
		if err := b.hv.AssignPrivileges(b.dom, id, req.Privileges); err != nil {
			return fmt.Errorf("builder: privileges for %q: %w", req.Name, err)
		}
	}
	if req.qemu() {
		if err := b.hv.SetPrivilegedFor(b.dom, id, req.QemuFor); err != nil {
			return err
		}
	}
	if err := b.register(id, req); err != nil {
		return err
	}
	if b.XenStoreDom != xtypes.DomIDNone {
		// The extra VM-build step that lets XenStore run deprivileged: the
		// Builder pre-creates the grant entry for the store ring so the
		// Logic never needs to map foreign memory itself (§5.4).
		if _, err := b.hv.GrantFor(b.dom, id, b.XenStoreDom, 0, false); err != nil {
			return err
		}
	}
	if err := b.hv.Unpause(b.dom, id); err != nil {
		return err
	}
	// Handoff comes last: once the requester is recorded as parent
	// toolstack, VM-management rights over the newcomer are its — the
	// Builder keeps nothing it does not need (§5.6).
	return b.hv.SetParentTool(b.dom, id, req.Requester)
}

// register creates the domain's XenStore tree and hands it over: the domain
// owns its tree, the world may read it (device discovery).
func (b *Builder) register(id xtypes.DomID, req Request) error {
	base := fmt.Sprintf("/local/domain/%d", id)
	if err := b.xs.Mkdir(xenstore.TxNone, base); err != nil {
		return err
	}
	if err := b.xs.Write(xenstore.TxNone, base+"/name", req.Name); err != nil {
		return err
	}
	return b.xs.SetPerms(base, xenstore.Perms{Owner: id, Read: []xtypes.DomID{xtypes.DomIDNone}})
}

func assignmentEmpty(a hv.Assignment) bool {
	return !a.ControlAll && len(a.PCIDevices) == 0 && len(a.Hypercalls) == 0 &&
		len(a.DelegateTo) == 0 && len(a.IOPorts) == 0
}
