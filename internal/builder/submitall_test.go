// SubmitAll edge cases: empty batches, hoisted whole-batch validation,
// pipelined makespan vs serial Submit, FIFO fairness against concurrent
// Submit callers, and restart-engine rebuilds of batch-built shards.

package builder_test

import (
	"errors"
	"fmt"
	"testing"

	"xoar/internal/builder"
	"xoar/internal/hv"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

func TestSubmitAllEmptyBatch(t *testing.T) {
	env, _, b := newRig(t)
	defer env.Shutdown()
	run(t, env, sim.Second, func(p *sim.Proc) {
		doms, errs := b.SubmitAll(p, nil)
		if doms != nil || errs != nil {
			t.Errorf("empty batch: doms=%v errs=%v", doms, errs)
		}
		doms, errs = b.SubmitAll(p, []builder.Request{})
		if doms != nil || errs != nil {
			t.Errorf("zero-length batch: doms=%v errs=%v", doms, errs)
		}
	})
	if b.Builds != 0 || b.Denied != 0 {
		t.Fatalf("empty batch altered state: builds=%d denied=%d", b.Builds, b.Denied)
	}
}

// One invalid request rejects the whole batch before any build compute is
// spent: no domains exist afterwards, the valid slots carry ErrBatchAborted,
// and the reply arrives at the submission instant (validation costs no sim
// time — nothing was scrubbed, nothing booted).
func TestSubmitAllInvalidRejectsWholeBatch(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	ts := newShard(t, h, "ts")

	domsBefore := len(h.Domains())
	run(t, env, 10*sim.Second, func(p *sim.Proc) {
		start := p.Now()
		doms, errs := b.SubmitAll(p, []builder.Request{
			{Requester: ts, Name: "ok-0", Image: osimage.ImgQemu},
			{Requester: ts, Name: "bad", Image: "evil-kernel"},
			{Requester: ts, Name: "ok-1", Image: osimage.ImgQemu},
		})
		if len(doms) != 3 || len(errs) != 3 {
			t.Fatalf("result shape: doms=%v errs=%v", doms, errs)
		}
		for i, d := range doms {
			if d != xtypes.DomIDNone {
				t.Errorf("slot %d built %v despite batch rejection", i, d)
			}
		}
		if !errors.Is(errs[1], xtypes.ErrNotFound) {
			t.Errorf("invalid slot error: %v", errs[1])
		}
		for _, i := range []int{0, 2} {
			if !errors.Is(errs[i], xtypes.ErrBatchAborted) {
				t.Errorf("valid slot %d error: %v", i, errs[i])
			}
		}
		if p.Now() != start {
			t.Errorf("rejected batch consumed %v of build time", p.Now().Sub(start))
		}
	})
	if b.Builds != 0 {
		t.Fatalf("rejected batch built %d domains", b.Builds)
	}
	if b.Denied != 1 {
		t.Fatalf("denied = %d, want 1 (only the invalid request)", b.Denied)
	}
	if got := len(h.Domains()); got != domsBefore {
		t.Fatalf("domain count changed: %d -> %d", domsBefore, got)
	}
}

// The pipelined batch finishes strictly sooner than the same requests
// submitted serially — construction of domain i+1 overlaps the supervised
// boot of domain i — while boots stay serialized (the makespan is never
// below the sum of the boot times).
func TestSubmitAllPipelinesBoots(t *testing.T) {
	const n = 4
	reqs := func(ts xtypes.DomID) []builder.Request {
		rs := make([]builder.Request, n)
		for i := range rs {
			// 512MB reservations make the scrub stage worth overlapping.
			rs[i] = builder.Request{
				Requester: ts, Name: fmt.Sprintf("fleet-%d", i),
				Image: osimage.ImgQemu, MemMB: 512,
			}
		}
		return rs
	}
	bootSum := func() sim.Duration {
		img, err := osimage.DefaultCatalog().Lookup(osimage.ImgQemu)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Duration(n) * img.BootTime()
	}()

	// Serial baseline: one Submit per request, on its own same-seed rig.
	var serial sim.Duration
	{
		env, h, b := newRig(t)
		ts := newShard(t, h, "ts")
		run(t, env, 60*sim.Second, func(p *sim.Proc) {
			start := p.Now()
			for _, req := range reqs(ts) {
				if _, err := b.Submit(p, req); err != nil {
					t.Errorf("serial submit: %v", err)
				}
			}
			serial = p.Now().Sub(start)
		})
		env.Shutdown()
	}

	env, h, b := newRig(t)
	defer env.Shutdown()
	ts := newShard(t, h, "ts")
	var pipelined sim.Duration
	run(t, env, 60*sim.Second, func(p *sim.Proc) {
		start := p.Now()
		doms, errs := b.SubmitAll(p, reqs(ts))
		pipelined = p.Now().Sub(start)
		for i, err := range errs {
			if err != nil {
				t.Errorf("batch slot %d: %v", i, err)
			}
		}
		for i := 1; i < n; i++ {
			// Construction order follows batch order: ascending DomIDs.
			if doms[i] <= doms[i-1] {
				t.Errorf("batch built out of order: %v", doms)
			}
		}
	})

	if pipelined >= serial {
		t.Fatalf("pipelined makespan %v not below serial %v", pipelined, serial)
	}
	if pipelined < bootSum {
		t.Fatalf("pipelined makespan %v below boot sum %v: boots overlapped", pipelined, bootSum)
	}
	if b.Builds != n {
		t.Fatalf("builds = %d, want %d", b.Builds, n)
	}
}

// A batch occupies the serve loop until its last boot completes, so a
// Submit enqueued behind it completes after every batch member, and a
// Submit enqueued ahead of it completes before any — FIFO is preserved
// across the two entry points.
func TestSubmitAllInterleavedWithSubmitFIFO(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	ts := newShard(t, h, "ts")

	const n = 3
	var (
		beforeDone, batchDone, afterDone sim.Time
		batchDoms                        []xtypes.DomID
		afterDom                         xtypes.DomID
	)
	env.Spawn("submit-before", func(p *sim.Proc) {
		if _, err := b.Submit(p, builder.Request{Requester: ts, Name: "before", Image: osimage.ImgQemu}); err != nil {
			t.Errorf("before: %v", err)
		}
		beforeDone = p.Now()
	})
	env.Spawn("submit-batch", func(p *sim.Proc) {
		// Yield once so the single Submit is enqueued first.
		p.Sleep(sim.Microsecond)
		reqs := make([]builder.Request, n)
		for i := range reqs {
			reqs[i] = builder.Request{Requester: ts, Name: fmt.Sprintf("b-%d", i), Image: osimage.ImgQemu}
		}
		doms, errs := b.SubmitAll(p, reqs)
		for i, err := range errs {
			if err != nil {
				t.Errorf("batch slot %d: %v", i, err)
			}
		}
		batchDoms = doms
		batchDone = p.Now()
	})
	env.Spawn("submit-after", func(p *sim.Proc) {
		p.Sleep(2 * sim.Microsecond)
		dom, err := b.Submit(p, builder.Request{Requester: ts, Name: "after", Image: osimage.ImgQemu})
		if err != nil {
			t.Errorf("after: %v", err)
		}
		afterDom = dom
		afterDone = p.Now()
	})
	env.RunFor(60 * sim.Second)

	if !(beforeDone < batchDone && batchDone < afterDone) {
		t.Fatalf("FIFO violated: before=%v batch=%v after=%v", beforeDone, batchDone, afterDone)
	}
	for _, d := range batchDoms {
		if afterDom <= d {
			t.Fatalf("queued Submit built %v before batch member %v", afterDom, d)
		}
	}
	if b.Builds != n+2 {
		t.Fatalf("builds = %d, want %d", b.Builds, n+2)
	}
}

// Batch-built shards land in the Builder's build records exactly like
// Submit-built ones: the restart engine can rebuild them after a crash.
func TestRebuildOfBatchBuiltShard(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	bs := newShard(t, h, "bootstrap", xtypes.HyperDelegateAdmin)
	b.Authorize(bs)

	var doms []xtypes.DomID
	run(t, env, 60*sim.Second, func(p *sim.Proc) {
		var errs []error
		doms, errs = b.SubmitAll(p, []builder.Request{
			{Requester: bs, Name: "netback", Image: osimage.ImgNetBack, Shard: true,
				Privileges: hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot}}},
			{Requester: bs, Name: "blkback", Image: osimage.ImgBlkBack, Shard: true,
				Privileges: hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot}}},
		})
		for i, err := range errs {
			if err != nil {
				t.Errorf("batch slot %d: %v", i, err)
			}
		}
	})
	shard := doms[0]
	if err := h.Delegate(bs, shard, b.Dom()); err != nil {
		t.Fatal(err)
	}
	if err := h.VMSnapshot(shard); err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyDomain(hv.SystemCaller, shard, "driver crash"); err != nil {
		t.Fatal(err)
	}

	var newDom xtypes.DomID
	run(t, env, 30*sim.Second, func(p *sim.Proc) {
		var err error
		newDom, err = b.Recover(p, shard)
		if err != nil {
			t.Errorf("recover of batch-built shard: %v", err)
		}
	})
	if newDom == shard || newDom == xtypes.DomIDNone {
		t.Fatalf("recover returned %v", newDom)
	}
	nd, err := h.Domain(newDom)
	if err != nil {
		t.Fatal(err)
	}
	if !nd.IsShard() || nd.Name != "netback" || nd.ParentTool() != b.Dom() {
		t.Fatalf("rebuilt shard=%v name=%q parent=%v", nd.IsShard(), nd.Name, nd.ParentTool())
	}
	if b.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d", b.Rebuilds)
	}
}
