package builder_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"xoar/internal/builder"
	"xoar/internal/hv"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/xtypes"
)

var errInjected = errors.New("injected fault")

// buildManagedShard builds a snapshotted netback-style shard delegated to
// the Builder, the starting state for every recovery scenario.
func buildManagedShard(t *testing.T, env *sim.Env, h *hv.Hypervisor, b *builder.Builder, bs xtypes.DomID, name string) xtypes.DomID {
	t.Helper()
	var shard xtypes.DomID
	run(t, env, 30*sim.Second, func(p *sim.Proc) {
		var err error
		shard, err = b.Submit(p, builder.Request{
			Requester: bs, Name: name, Image: osimage.ImgNetBack, Shard: true,
			Privileges: hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot}},
		})
		if err != nil {
			t.Errorf("shard build: %v", err)
		}
	})
	if err := h.Delegate(bs, shard, b.Dom()); err != nil {
		t.Fatal(err)
	}
	if err := h.VMSnapshot(shard); err != nil {
		t.Fatal(err)
	}
	return shard
}

func TestRecoverRebuildsWhenRollbackFaulted(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	bs := newShard(t, h, "bootstrap", xtypes.HyperDelegateAdmin)
	b.Authorize(bs)
	shard := buildManagedShard(t, env, h, b, bs, "netback")

	h.Fault = func(op string, caller, target xtypes.DomID) error {
		if op == "vm_rollback" && target == shard {
			return errInjected
		}
		return nil
	}
	var newDom xtypes.DomID
	run(t, env, 30*sim.Second, func(p *sim.Proc) {
		var err error
		newDom, err = b.Recover(p, shard)
		if err != nil {
			t.Errorf("recover with faulted rollback: %v", err)
		}
	})
	h.Fault = nil
	if newDom == shard || newDom == xtypes.DomIDNone {
		t.Fatalf("recover did not rebuild: new=%v old=%v", newDom, shard)
	}
	if _, err := h.Domain(shard); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("old shard survived the rebuild: %v", err)
	}
	if b.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", b.Rebuilds)
	}
}

func TestRecoverRetainsRecordWhenCreateFaulted(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	bs := newShard(t, h, "bootstrap", xtypes.HyperDelegateAdmin)
	b.Authorize(bs)
	shard := buildManagedShard(t, env, h, b, bs, "netback")

	// Both recovery mechanisms fail mid-flight: rollback is refused and the
	// rebuild's domain creation faults after the old domain is torn down.
	h.Fault = func(op string, caller, target xtypes.DomID) error {
		if op == "vm_rollback" || op == "domctl_create" {
			return errInjected
		}
		return nil
	}
	run(t, env, 30*sim.Second, func(p *sim.Proc) {
		if _, err := b.Recover(p, shard); !errors.Is(err, errInjected) {
			t.Errorf("recover with both paths faulted: %v", err)
		}
	})
	// No half-recovered domain is left serving.
	if _, err := h.Domain(shard); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("half-recovered shard leaked: %v", err)
	}
	// The build record survived the failed rebuild: once the fault clears,
	// the same shard ID is still recoverable.
	h.Fault = nil
	var newDom xtypes.DomID
	run(t, env, 30*sim.Second, func(p *sim.Proc) {
		var err error
		newDom, err = b.Recover(p, shard)
		if err != nil {
			t.Errorf("recover after fault cleared: %v", err)
		}
	})
	if newDom == xtypes.DomIDNone {
		t.Fatal("retry did not produce a replacement")
	}
	if d, err := h.Domain(newDom); err != nil || d.ParentTool() != b.Dom() {
		t.Fatalf("replacement not a Builder ward: %v %v", d, err)
	}
}

func TestRecoverDestroysRecordlessHalfRecoveredShard(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	// A shard the Builder administers but did not build (no build record):
	// when rollback faults mid-recover, rebuild cannot help, and the
	// half-recovered domain must be destroyed, not left serving.
	ext := newShard(t, h, "external", xtypes.HyperVMSnapshot)
	if err := h.Delegate(hv.SystemCaller, ext, b.Dom()); err != nil {
		t.Fatal(err)
	}
	if err := h.VMSnapshot(ext); err != nil {
		t.Fatal(err)
	}
	h.Fault = func(op string, caller, target xtypes.DomID) error {
		if op == "vm_rollback" && target == ext {
			return errInjected
		}
		return nil
	}
	defer func() { h.Fault = nil }()
	run(t, env, 10*sim.Second, func(p *sim.Proc) {
		if _, err := b.Recover(p, ext); err == nil {
			t.Error("recover of recordless shard succeeded unexpectedly")
		}
	})
	if _, err := h.Domain(ext); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("half-recovered shard leaked: %v", err)
	}
}

func TestMonolithicProfileRefusesMicroreboots(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	bs := newShard(t, h, "bootstrap", xtypes.HyperDelegateAdmin)
	b.Authorize(bs)
	shard := buildManagedShard(t, env, h, b, bs, "netback")

	b.Monolithic = true
	run(t, env, 10*sim.Second, func(p *sim.Proc) {
		if _, err := b.Rollback(p, shard); !errors.Is(err, xtypes.ErrNoMicroreboot) {
			t.Errorf("monolithic rollback: %v", err)
		}
		if _, err := b.Rebuild(p, shard); !errors.Is(err, xtypes.ErrNoMicroreboot) {
			t.Errorf("monolithic rebuild: %v", err)
		}
		if _, err := b.Recover(p, shard); !errors.Is(err, xtypes.ErrNoMicroreboot) {
			t.Errorf("monolithic recover: %v", err)
		}
	})
	// The refusal is a policy error, not a teardown: the shard is untouched.
	if _, err := h.Domain(shard); err != nil {
		t.Fatalf("monolithic refusal touched the shard: %v", err)
	}
}

// runSubmitScenario executes a fixed, seeded build workload against a fresh
// rig with reg attached and returns the builder. Two calls with equal
// arguments produce identical telemetry (the simulation is deterministic).
func runSubmitScenario(t *testing.T, reg *telemetry.Registry) *builder.Builder {
	t.Helper()
	env, h, b := newRig(t)
	defer env.Shutdown()
	b.SetMetrics(reg)
	ts := newShard(t, h, "ts")
	const n = 6
	for i := 0; i < n; i++ {
		i := i
		env.Spawn(fmt.Sprintf("req-%d", i), func(p *sim.Proc) {
			if _, err := b.Submit(p, builder.Request{
				Requester: ts, Name: fmt.Sprintf("g-%d", i), Image: osimage.ImgQemu,
			}); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		})
	}
	env.RunFor(120 * sim.Second)
	return b
}

// TestTelemetryExactUnderConcurrentHammer checks that histogram counts and
// sums stay exact when real goroutines hammer the same histogram the
// builder's serve loop observes into. Run with -race (the CI race shard
// does) to also validate the synchronization.
func TestTelemetryExactUnderConcurrentHammer(t *testing.T) {
	// Baseline: the same scenario without the hammer gives the expected
	// simulation-side observations.
	base := telemetry.New()
	bb := runSubmitScenario(t, base)
	baseHist := base.Histogram("builder_queue_wait_ms", telemetry.LatencyMSBuckets)
	baseCount, baseSum := baseHist.Count(), baseHist.Sum()
	if baseCount == 0 || bb.Builds == 0 {
		t.Fatalf("baseline scenario recorded nothing: count=%d builds=%d", baseCount, bb.Builds)
	}

	reg := telemetry.New()
	shared := reg.Histogram("builder_queue_wait_ms", telemetry.LatencyMSBuckets)
	side := reg.Histogram("hammer_only", telemetry.LatencyMSBuckets)
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Observe 0 into the shared histogram: x + 0.0 == x in IEEE
				// arithmetic, so the serve loop's sum must come out exactly
				// equal to the baseline regardless of interleaving.
				shared.Observe(0)
				side.Observe(2)
			}
		}()
	}
	b := runSubmitScenario(t, reg)
	wg.Wait()

	if b.Builds != bb.Builds {
		t.Fatalf("scenario diverged: builds %d vs %d", b.Builds, bb.Builds)
	}
	if got := shared.Count(); got != baseCount+workers*per {
		t.Fatalf("shared count = %d, want %d (lost updates)", got, baseCount+workers*per)
	}
	if got := shared.Sum(); got != baseSum {
		t.Fatalf("shared sum = %g, want %g", got, baseSum)
	}
	if side.Count() != workers*per || side.Sum() != float64(workers*per*2) {
		t.Fatalf("side histogram inexact: n=%d sum=%g", side.Count(), side.Sum())
	}
}
