package builder_test

import (
	"errors"
	"fmt"
	"testing"

	"xoar/internal/builder"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

// newRig assembles a minimal platform around a Builder domain carrying the
// boot.go privilege set. The boot package cannot be imported here (it
// imports builder), so the rig mirrors its construction path by hand.
func newRig(t *testing.T) (*sim.Env, *hv.Hypervisor, *builder.Builder) {
	t.Helper()
	env := sim.NewEnv(42)
	h := hv.New(env, hw.NewMachine(env))
	h.EnforceShardIVC = true
	logic := xenstore.NewLogic(env, xenstore.NewState())

	bd, err := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{
		Name: "builder", MemMB: 64, Shard: true, OSImage: osimage.ImgBuilder,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = h.AssignPrivileges(hv.SystemCaller, bd.ID, hv.Assignment{
		Hypercalls: []xtypes.Hypercall{
			xtypes.HyperDomctlCreate, xtypes.HyperDomctlDestroy,
			xtypes.HyperDomctlPause, xtypes.HyperDomctlUnpause,
			xtypes.HyperDomctlMaxMem, xtypes.HyperDomctlPriv,
			xtypes.HyperMapForeign, xtypes.HyperSetParentTool,
			xtypes.HyperVMRollback, xtypes.HyperSetRestartPolicy,
			xtypes.HyperDelegateAdmin,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Unpause(hv.SystemCaller, bd.ID); err != nil {
		t.Fatal(err)
	}
	b := builder.New(h, bd.ID, osimage.DefaultCatalog(), logic.Connect(bd.ID, true))
	env.Spawn("builder-serve", b.Serve)
	return env, h, b
}

// newShard creates an unpaused shard domain outside the Builder, standing
// in for a toolstack or the Bootstrapper.
func newShard(t *testing.T, h *hv.Hypervisor, name string, hcs ...xtypes.Hypercall) xtypes.DomID {
	t.Helper()
	d, err := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{
		Name: name, MemMB: 128, Shard: true, OSImage: osimage.ImgToolstack,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hcs) > 0 {
		if err := h.AssignPrivileges(hv.SystemCaller, d.ID, hv.Assignment{Hypercalls: hcs}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Unpause(hv.SystemCaller, d.ID); err != nil {
		t.Fatal(err)
	}
	return d.ID
}

// run executes fn in a sim process and fails the test if it does not
// complete within d of virtual time.
func run(t *testing.T, env *sim.Env, d sim.Duration, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	env.Spawn("test-step", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	env.RunFor(d)
	if !done {
		t.Fatal("sim step did not complete")
	}
}

func TestQemuForForeignGuestRefused(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	ts0 := newShard(t, h, "ts0")
	ts1 := newShard(t, h, "ts1")

	var g xtypes.DomID
	run(t, env, 60*sim.Second, func(p *sim.Proc) {
		var err error
		g, err = b.Submit(p, builder.Request{Requester: ts0, Name: "g", Image: osimage.ImgGuestPV})
		if err != nil {
			t.Errorf("guest build: %v", err)
		}
	})

	// ts1 asks for DMA rights over ts0's guest: refused, nothing built.
	before := b.Builds
	run(t, env, 10*sim.Second, func(p *sim.Proc) {
		_, err := b.Submit(p, builder.Request{Requester: ts1, Name: "evil-qemu", QemuFor: g})
		if !errors.Is(err, xtypes.ErrPerm) {
			t.Errorf("foreign qemu build: %v", err)
		}
	})
	if b.Builds != before || b.Denied == 0 {
		t.Fatalf("denied build altered state: builds %d denied %d", b.Builds, b.Denied)
	}

	// The parenting toolstack gets its device model, wired to exactly its
	// guest.
	var q xtypes.DomID
	run(t, env, 10*sim.Second, func(p *sim.Proc) {
		var err error
		q, err = b.Submit(p, builder.Request{Requester: ts0, Name: "g-qemu", QemuFor: g})
		if err != nil {
			t.Errorf("qemu build: %v", err)
		}
	})
	qd, err := h.Domain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !qd.IsShard() || qd.ParentTool() != ts0 {
		t.Fatalf("qemu shard=%v parent=%v", qd.IsShard(), qd.ParentTool())
	}
	if err := h.MapForeign(q, g, 0); err != nil {
		t.Fatalf("qemu mapping its guest: %v", err)
	}
	if err := h.MapForeign(q, ts1, 0); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("qemu mapping a foreign domain: %v", err)
	}
}

func TestUnknownImageRejected(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	ts := newShard(t, h, "ts")
	run(t, env, 10*sim.Second, func(p *sim.Proc) {
		_, err := b.Submit(p, builder.Request{Requester: ts, Name: "bad", Image: "evil-kernel"})
		if !errors.Is(err, xtypes.ErrNotFound) {
			t.Errorf("unknown image: %v", err)
		}
	})
}

func TestPrivilegedBuildRequiresAuthorization(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	ts := newShard(t, h, "ts")
	run(t, env, 30*sim.Second, func(p *sim.Proc) {
		_, err := b.Submit(p, builder.Request{
			Requester: ts, Name: "rogue-shard", Image: osimage.ImgNetBack, Shard: true,
		})
		if !errors.Is(err, xtypes.ErrPerm) {
			t.Errorf("unauthorized shard build: %v", err)
		}
	})
	b.Authorize(ts)
	run(t, env, 30*sim.Second, func(p *sim.Proc) {
		dom, err := b.Submit(p, builder.Request{
			Requester: ts, Name: "shard", Image: osimage.ImgNetBack, Shard: true,
		})
		if err != nil {
			t.Errorf("authorized shard build: %v", err)
			return
		}
		if d, derr := h.Domain(dom); derr != nil || !d.IsShard() {
			t.Errorf("built domain not a shard: %v %v", d, derr)
		}
	})
}

func TestSubmitSerializedFIFO(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	ts := newShard(t, h, "ts")

	const n = 4
	doms := make([]xtypes.DomID, n)
	times := make([]sim.Time, n)
	for i := 0; i < n; i++ {
		i := i
		env.Spawn(fmt.Sprintf("req-%d", i), func(p *sim.Proc) {
			dom, err := b.Submit(p, builder.Request{
				Requester: ts, Name: fmt.Sprintf("g-%d", i), Image: osimage.ImgQemu,
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			doms[i] = dom
			times[i] = p.Now()
		})
	}
	env.RunFor(60 * sim.Second)
	for i := 1; i < n; i++ {
		// DomIDs are allocated in build order: FIFO means ascending.
		if doms[i] <= doms[i-1] {
			t.Fatalf("builds out of submission order: %v", doms)
		}
		// Serve is serialized: completions are strictly spaced, never
		// batched at one instant.
		if times[i] <= times[i-1] {
			t.Fatalf("concurrent builds overlapped: %v", times)
		}
	}
	if b.Builds != n {
		t.Fatalf("builds = %d, want %d", b.Builds, n)
	}
}

// fakeComp is a minimal Restartable for engine tests.
type fakeComp struct {
	dom      xtypes.DomID
	restarts int
}

func (c *fakeComp) Dom() xtypes.DomID              { return c.dom }
func (c *fakeComp) Name() string                   { return "fake" }
func (c *fakeComp) Restart(p *sim.Proc, fast bool) { c.restarts++ }

func TestRestartEngineRollsBackDelegatedShard(t *testing.T) {
	env, h, b := newRig(t)
	defer env.Shutdown()
	bs := newShard(t, h, "bootstrap", xtypes.HyperDelegateAdmin)
	b.Authorize(bs)

	var shard xtypes.DomID
	run(t, env, 30*sim.Second, func(p *sim.Proc) {
		var err error
		shard, err = b.Submit(p, builder.Request{
			Requester: bs, Name: "netback", Image: osimage.ImgNetBack, Shard: true,
			Privileges: hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot}},
		})
		if err != nil {
			t.Errorf("shard build: %v", err)
		}
	})
	// Boot-sequence handoff: the shard is delegated to the Builder, then
	// checkpoints itself once initialized.
	if err := h.Delegate(bs, shard, b.Dom()); err != nil {
		t.Fatal(err)
	}
	if !b.Administers(shard) {
		t.Fatal("builder does not administer the delegated shard")
	}
	if err := h.VMSnapshot(shard); err != nil {
		t.Fatal(err)
	}

	// Scribble on the shard's memory, then roll it back.
	d, err := h.Domain(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Mem.Write(3, []byte("corrupted state")); err != nil {
		t.Fatal(err)
	}
	if d.Mem.DirtyPages() == 0 {
		t.Fatal("write did not dirty the shard")
	}
	run(t, env, sim.Second, func(p *sim.Proc) {
		restored, rerr := b.Rollback(p, shard)
		if rerr != nil || restored == 0 {
			t.Errorf("rollback: restored=%d err=%v", restored, rerr)
		}
	})
	if d.Mem.DirtyPages() != 0 {
		t.Fatal("rollback left dirty pages")
	}

	// A shard never delegated to the Builder cannot be touched.
	other := newShard(t, h, "other")
	run(t, env, sim.Second, func(p *sim.Proc) {
		if _, rerr := b.Rollback(p, other); !errors.Is(rerr, xtypes.ErrPerm) {
			t.Errorf("rollback of foreign shard: %v", rerr)
		}
	})
	if err := b.SetRestartPolicy(&fakeComp{dom: other}, snapshot.Policy{
		Kind: snapshot.PolicyTimer, Interval: sim.Second,
	}); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("policy on foreign shard: %v", err)
	}

	// Under a timer policy the engine microreboots the shard on its own.
	comp := &fakeComp{dom: shard}
	if err := b.SetRestartPolicy(comp, snapshot.Policy{
		Kind: snapshot.PolicyTimer, Interval: sim.Second,
	}); err != nil {
		t.Fatal(err)
	}
	env.RunFor(5 * sim.Second)
	stats, ok := b.RestartStats(shard)
	if !ok || stats.Restarts < 3 || comp.restarts < 3 {
		t.Fatalf("timer restarts: stats=%+v comp=%d", stats, comp.restarts)
	}

	// Crash-and-rebuild: the domain is gone, Recover builds a fresh one
	// from the recorded request, parented and snapshotted by the Builder.
	if err := h.DestroyDomain(hv.SystemCaller, shard, "driver crash"); err != nil {
		t.Fatal(err)
	}
	var newDom xtypes.DomID
	run(t, env, 30*sim.Second, func(p *sim.Proc) {
		var rerr error
		newDom, rerr = b.Recover(p, shard)
		if rerr != nil {
			t.Errorf("recover: %v", rerr)
		}
	})
	if newDom == shard {
		t.Fatal("recover returned the dead domain")
	}
	nd, err := h.Domain(newDom)
	if err != nil {
		t.Fatal(err)
	}
	if !nd.IsShard() || nd.ParentTool() != b.Dom() {
		t.Fatalf("rebuilt shard=%v parent=%v", nd.IsShard(), nd.ParentTool())
	}
	// The replacement was snapshotted on build: it can roll back at once.
	run(t, env, sim.Second, func(p *sim.Proc) {
		if _, rerr := b.Rollback(p, newDom); rerr != nil {
			t.Errorf("rollback of rebuilt shard: %v", rerr)
		}
	})
	if b.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d", b.Rebuilds)
	}
}
