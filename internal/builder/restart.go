// Shard administration: the Builder hosts the microreboot engine (§3.3).
// Driver shards are delegated to it at boot; from then on it may roll them
// back to their boot-time snapshot or, when the domain is gone entirely,
// rebuild them from the recorded request.

package builder

import (
	"errors"
	"fmt"

	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/telemetry"
	"xoar/internal/xtypes"
)

// Administers reports whether the Builder may administer dom: it parents
// the domain, or admin rights over it were delegated to the Builder.
func (b *Builder) Administers(dom xtypes.DomID) bool {
	d, err := b.hv.Domain(dom)
	if err != nil {
		return false
	}
	if d.ParentTool() == b.dom {
		return true
	}
	for _, g := range d.Delegates() {
		if g == b.dom {
			return true
		}
	}
	return false
}

// holds reports whether the Builder's own hypercall whitelist includes hc.
// The engine honors the same Figure 3.1 assignments as everything else: a
// Builder booted without HyperSetRestartPolicy cannot install policies.
func (b *Builder) holds(hc xtypes.Hypercall) bool {
	d, err := b.hv.Domain(b.dom)
	if err != nil {
		return false
	}
	pr := d.Priv()
	return pr.ControlAll || pr.Hypercalls[hc]
}

// SetRestartPolicy places a delegated shard under the Builder's microreboot
// engine, or updates its policy if already managed.
func (b *Builder) SetRestartPolicy(comp snapshot.Restartable, pol snapshot.Policy) error {
	if !b.holds(xtypes.HyperSetRestartPolicy) {
		b.Denied++
		return fmt.Errorf("builder: set_restart_policy not whitelisted for %v: %w", b.dom, xtypes.ErrPerm)
	}
	if !b.Administers(comp.Dom()) {
		b.Denied++
		return fmt.Errorf("builder: shard %v not delegated to the Builder: %w", comp.Dom(), xtypes.ErrPerm)
	}
	if _, ok := b.eng.Stats(comp.Dom()); ok {
		return b.eng.SetPolicy(comp.Dom(), pol)
	}
	return b.eng.Manage(comp, pol)
}

// RestartStats reports the engine's accounting for a managed shard.
func (b *Builder) RestartStats(dom xtypes.DomID) (snapshot.Stats, bool) {
	return b.eng.Stats(dom)
}

// shardClass names the shard for restart-metric labels: the live domain's
// name, the recorded request's name when the domain is already gone, or
// "unknown". Class names are a small fixed set, so label cardinality stays
// bounded (DESIGN.md §8) even though restarts target specific domains.
func (b *Builder) shardClass(dom xtypes.DomID) string {
	if d, err := b.hv.Domain(dom); err == nil && d.Name != "" {
		return d.Name
	}
	if rec, ok := b.records[dom]; ok && rec.req.Name != "" {
		return rec.req.Name
	}
	return "unknown"
}

// observeRestart records one restart-path duration under the shard's class.
// It takes the handle rather than a name: metric names stay literal at the
// call sites so the series set is reviewable there (DESIGN.md §8).
func (b *Builder) observeRestart(h *telemetry.Histogram, d sim.Duration) {
	h.Observe(d.Milliseconds())
}

// Rollback rolls a shard back to its snapshot. The hypervisor audits the
// call against the Builder's HyperVMRollback whitelist and its standing
// over the target; restore time is proportional to the dirty page set.
func (b *Builder) Rollback(p *sim.Proc, dom xtypes.DomID) (int, error) {
	if b.Monolithic {
		return 0, fmt.Errorf("builder: rollback of %v: %w", dom, xtypes.ErrNoMicroreboot)
	}
	start := p.Now()
	class := b.shardClass(dom)
	d, err := b.hv.Domain(dom)
	if err != nil {
		return 0, err
	}
	dirty := d.Mem.DirtyPages()
	restored, err := b.hv.VMRollback(b.dom, dom)
	if err != nil {
		return 0, err
	}
	p.Sleep(sim.Duration(dirty+1) * sim.Microsecond)
	b.observeRestart(b.tel.Histogram("restart_rollback_ms", telemetry.LatencyMSBuckets, telemetry.L("class", class)), p.Now().Sub(start))
	return restored, nil
}

// Rebuild replaces a shard with a fresh build of its recorded request —
// the recovery path when the domain is dead or its snapshot unusable, and
// the mechanism behind in-place driver upgrades. The replacement is the
// Builder's own ward (it becomes the parent) and is re-snapshotted so it
// can microreboot in turn.
func (b *Builder) Rebuild(p *sim.Proc, dom xtypes.DomID) (xtypes.DomID, error) {
	if b.Monolithic {
		return xtypes.DomIDNone, fmt.Errorf("builder: rebuild of %v: %w", dom, xtypes.ErrNoMicroreboot)
	}
	start := p.Now()
	rec, ok := b.records[dom]
	if !ok {
		return xtypes.DomIDNone, fmt.Errorf("builder: no build record for %v: %w", dom, xtypes.ErrNotFound)
	}
	class := b.shardClass(dom)
	if err := b.hv.DestroyDomain(b.dom, dom, "builder: rebuild"); err != nil && !errors.Is(err, xtypes.ErrNoDomain) {
		return xtypes.DomIDNone, err
	}
	b.eng.Unmanage(dom)
	delete(b.records, dom)

	req := rec.req
	req.Requester = b.dom
	newDom, err := b.BuildDirect(p, req)
	if err != nil {
		// Keep the record: the old domain is gone, but a later Rebuild of
		// the same shard (e.g. once an injected fault clears) must still
		// know what to construct.
		b.records[dom] = rec
		return xtypes.DomIDNone, err
	}
	b.Rebuilds++
	if d, derr := b.hv.Domain(newDom); derr == nil {
		pr := d.Priv()
		if pr.ControlAll || pr.Hypercalls[xtypes.HyperVMSnapshot] {
			b.hv.VMSnapshot(newDom)
		}
	}
	b.observeRestart(b.tel.Histogram("restart_rebuild_ms", telemetry.LatencyMSBuckets, telemetry.L("class", class)), p.Now().Sub(start))
	return newDom, nil
}

// Recover restores a failed shard: roll back to its snapshot if the domain
// is still alive, rebuild from the recorded request otherwise. Returns the
// serving domain, which differs from dom on the rebuild path.
//
// When both paths fail, the shard may be half-recovered — alive but with
// its snapshot refused mid-restore. Leaving it serving in that state would
// be worse than losing it (§3.3's whole point is a known-good image), so
// Recover destroys the leftover domain instead of leaking it.
func (b *Builder) Recover(p *sim.Proc, dom xtypes.DomID) (xtypes.DomID, error) {
	if b.Monolithic {
		// Refusal is policy, not failure: do not tear the shard down.
		return xtypes.DomIDNone, fmt.Errorf("builder: recover of %v: %w", dom, xtypes.ErrNoMicroreboot)
	}
	start := p.Now()
	class := b.shardClass(dom)
	sp := b.tel.StartSpan("builder", "recover:"+class, start)
	defer func() { sp.EndAt(p.Now()) }()
	if _, err := b.Rollback(p, dom); err == nil {
		b.observeRestart(b.tel.Histogram("restart_recover_ms", telemetry.LatencyMSBuckets, telemetry.L("class", class)), p.Now().Sub(start))
		return dom, nil
	}
	newDom, err := b.Rebuild(p, dom)
	if err != nil {
		if _, derr := b.hv.Domain(dom); derr == nil {
			b.eng.Unmanage(dom)
			b.hv.DestroyDomain(b.dom, dom, "builder: failed recover")
		}
		return xtypes.DomIDNone, err
	}
	b.observeRestart(b.tel.Histogram("restart_recover_ms", telemetry.LatencyMSBuckets, telemetry.L("class", class)), p.Now().Sub(start))
	return newDom, nil
}
