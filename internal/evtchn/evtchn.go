// Package evtchn implements Xen-style event channels: the data-free
// signalling mechanism used for inter-VM notification and virtualized
// interrupt (VIRQ) delivery (§4.2 of the paper).
//
// A channel endpoint is a port within a domain. Ports are created unbound
// (naming the single remote domain allowed to bind), bound interdomain
// (connecting two ports), or bound to a VIRQ. Notification sets a pending bit
// on the remote endpoint and delivers an upcall; the receiving side either
// registers a handler or blocks a sim process in Wait, mirroring how real
// backends either take interrupts or sleep in their event loops.
package evtchn

import (
	"fmt"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

type chanState uint8

const (
	stateFree chanState = iota
	stateUnbound
	stateInterdomain
	stateVIRQ
)

type channel struct {
	state      chanState
	remoteDom  xtypes.DomID // for unbound: the domain allowed to bind
	remotePort xtypes.Port  // valid in stateInterdomain
	virq       xtypes.VIRQ  // valid in stateVIRQ

	pending bool
	masked  bool
	sig     *sim.Signal
	handler func()
	// upcall is the scheduled-delivery closure, bound once per channel when a
	// handler is first registered. It reads ch.handler at fire time, so the
	// per-delivery dispatch path passes a pre-existing func value to sim.Post
	// instead of allocating a fresh closure (and cancel token) per event.
	upcall func()

	// notifyCount counts deliveries, for tests and the audit trail.
	notifyCount int
}

type domainPorts struct {
	ports    map[xtypes.Port]*channel
	nextPort xtypes.Port
}

// Table is the system-wide event-channel state, owned by the hypervisor.
type Table struct {
	env     *sim.Env
	domains map[xtypes.DomID]*domainPorts
}

// NewTable returns an empty event-channel table.
func NewTable(env *sim.Env) *Table {
	return &Table{env: env, domains: make(map[xtypes.DomID]*domainPorts)}
}

// AddDomain registers a domain with the table. Called at domain creation.
func (t *Table) AddDomain(id xtypes.DomID) {
	if _, ok := t.domains[id]; !ok {
		t.domains[id] = &domainPorts{ports: make(map[xtypes.Port]*channel), nextPort: 1}
	}
}

// RemoveDomain closes all of a domain's ports and unregisters it. Peer
// endpoints of interdomain channels revert to unbound-broken state, which
// readers observe as spurious wakeups with no pending bit — exactly the
// disconnection split drivers must renegotiate around.
func (t *Table) RemoveDomain(id xtypes.DomID) {
	dp, ok := t.domains[id]
	if !ok {
		return
	}
	for port := range dp.ports {
		t.close(id, port)
	}
	delete(t.domains, id)
}

func (t *Table) domain(id xtypes.DomID) (*domainPorts, error) {
	dp, ok := t.domains[id]
	if !ok {
		return nil, fmt.Errorf("evtchn: %v: %w", id, xtypes.ErrNoDomain)
	}
	return dp, nil
}

func (t *Table) lookup(id xtypes.DomID, port xtypes.Port) (*channel, error) {
	dp, err := t.domain(id)
	if err != nil {
		return nil, err
	}
	ch, ok := dp.ports[port]
	if !ok || ch.state == stateFree {
		return nil, fmt.Errorf("evtchn: %v port %d: %w", id, port, xtypes.ErrBadPort)
	}
	return ch, nil
}

func (dp *domainPorts) alloc(env *sim.Env) (xtypes.Port, *channel) {
	port := dp.nextPort
	dp.nextPort++
	ch := &channel{sig: sim.NewSignal(env)}
	dp.ports[port] = ch
	return port, ch
}

// AllocUnbound creates a new unbound port in owner that remote may later bind
// to. This is the first half of the split-driver connection handshake.
func (t *Table) AllocUnbound(owner, remote xtypes.DomID) (xtypes.Port, error) {
	dp, err := t.domain(owner)
	if err != nil {
		return xtypes.PortInvalid, err
	}
	port, ch := dp.alloc(t.env)
	ch.state = stateUnbound
	ch.remoteDom = remote
	return port, nil
}

// BindInterdomain connects a new port in local to remotePort in remoteDom.
// The remote port must be unbound and must name local as its allowed binder.
func (t *Table) BindInterdomain(local, remoteDom xtypes.DomID, remotePort xtypes.Port) (xtypes.Port, error) {
	ldp, err := t.domain(local)
	if err != nil {
		return xtypes.PortInvalid, err
	}
	rch, err := t.lookup(remoteDom, remotePort)
	if err != nil {
		return xtypes.PortInvalid, err
	}
	if rch.state != stateUnbound {
		return xtypes.PortInvalid, fmt.Errorf("evtchn: bind %v->%v:%d: not unbound: %w", local, remoteDom, remotePort, xtypes.ErrInUse)
	}
	if rch.remoteDom != local {
		return xtypes.PortInvalid, fmt.Errorf("evtchn: bind %v->%v:%d: reserved for %v: %w", local, remoteDom, remotePort, rch.remoteDom, xtypes.ErrPerm)
	}
	port, lch := ldp.alloc(t.env)
	lch.state = stateInterdomain
	lch.remoteDom = remoteDom
	lch.remotePort = remotePort
	rch.state = stateInterdomain
	rch.remoteDom = local
	rch.remotePort = port
	return port, nil
}

// BindVIRQ binds a new port in dom to the given virtual IRQ. Only one port
// per (domain, VIRQ) pair may exist, as in Xen.
func (t *Table) BindVIRQ(dom xtypes.DomID, virq xtypes.VIRQ) (xtypes.Port, error) {
	dp, err := t.domain(dom)
	if err != nil {
		return xtypes.PortInvalid, err
	}
	for _, ch := range dp.ports {
		if ch.state == stateVIRQ && ch.virq == virq {
			return xtypes.PortInvalid, fmt.Errorf("evtchn: %v virq %v: %w", dom, virq, xtypes.ErrInUse)
		}
	}
	port, ch := dp.alloc(t.env)
	ch.state = stateVIRQ
	ch.virq = virq
	return port, nil
}

// deliver records one event arrival and dispatches it. The count happens
// here exactly once per arrival — a masked event that is later unmasked is
// still one event, so the redelivery path goes through dispatch directly.
func (t *Table) deliver(ch *channel) {
	ch.notifyCount++
	t.dispatch(ch)
}

// dispatch marks a channel pending and fires its upcall (or defers under
// mask). It does not count: Unmask reuses it to redeliver a deferred event.
func (t *Table) dispatch(ch *channel) {
	ch.pending = true
	if ch.masked {
		return
	}
	ch.sig.Broadcast()
	if ch.handler != nil {
		// Handlers run as scheduled callbacks so a notifier never executes
		// receiver code in its own stack frame. The upcall closure was bound
		// at SetHandler time and Post carries no cancel token, so delivering
		// an event allocates nothing.
		t.env.Post(ch.upcall)
	}
}

// Notify signals the remote end of an interdomain channel.
//
//xoarlint:hot
func (t *Table) Notify(dom xtypes.DomID, port xtypes.Port) error {
	ch, err := t.lookup(dom, port)
	if err != nil {
		return err
	}
	if ch.state != stateInterdomain {
		return fmt.Errorf("evtchn: notify %v:%d: not interdomain: %w", dom, port, xtypes.ErrBadPort)
	}
	rch, err := t.lookup(ch.remoteDom, ch.remotePort)
	if err != nil {
		// Peer vanished (mid-microreboot): drop the event, as hardware would.
		return nil
	}
	t.deliver(rch)
	return nil
}

// RaiseVIRQ delivers a virtual IRQ to dom, if it has bound the VIRQ.
// Unbound VIRQs are dropped silently, matching Xen.
//
//xoarlint:hot
func (t *Table) RaiseVIRQ(dom xtypes.DomID, virq xtypes.VIRQ) {
	dp, ok := t.domains[dom]
	if !ok {
		return
	}
	for _, ch := range dp.ports {
		if ch.state == stateVIRQ && ch.virq == virq {
			t.deliver(ch)
			return
		}
	}
}

// SetHandler registers an upcall invoked on delivery. Passing nil removes it.
func (t *Table) SetHandler(dom xtypes.DomID, port xtypes.Port, h func()) error {
	ch, err := t.lookup(dom, port)
	if err != nil {
		return err
	}
	ch.handler = h
	if h != nil && ch.upcall == nil {
		ch.upcall = func() {
			if !ch.pending || ch.masked {
				return
			}
			handler := ch.handler
			if handler == nil {
				return
			}
			ch.pending = false
			//xoarlint:allow(hotpath) handler bodies are charged to the registering driver's own hot roots; the upcall trampoline only invokes them
			handler()
		}
	}
	return nil
}

// Mask suppresses upcalls for the port; events arriving while masked leave
// the pending bit set.
func (t *Table) Mask(dom xtypes.DomID, port xtypes.Port) error {
	ch, err := t.lookup(dom, port)
	if err != nil {
		return err
	}
	ch.masked = true
	return nil
}

// Unmask re-enables delivery; a pending event fires immediately.
func (t *Table) Unmask(dom xtypes.DomID, port xtypes.Port) error {
	ch, err := t.lookup(dom, port)
	if err != nil {
		return err
	}
	ch.masked = false
	if ch.pending {
		ch.pending = false
		t.dispatch(ch)
	}
	return nil
}

// Pending reports (without clearing) the port's pending bit.
func (t *Table) Pending(dom xtypes.DomID, port xtypes.Port) (bool, error) {
	ch, err := t.lookup(dom, port)
	if err != nil {
		return false, err
	}
	return ch.pending, nil
}

// Wait blocks the calling process until the port has a pending event, then
// clears the pending bit. It returns false if the port was closed while
// waiting.
func (t *Table) Wait(p *sim.Proc, dom xtypes.DomID, port xtypes.Port) bool {
	for {
		ch, err := t.lookup(dom, port)
		if err != nil {
			return false
		}
		if ch.pending {
			ch.pending = false
			return true
		}
		ch.sig.Wait(p)
	}
}

// WaitTimeout is Wait with a deadline; it returns false on timeout or close.
func (t *Table) WaitTimeout(p *sim.Proc, dom xtypes.DomID, port xtypes.Port, d sim.Duration) bool {
	deadline := t.env.Now().Add(d)
	ch0, err := t.lookup(dom, port)
	if err != nil {
		return false
	}
	cancel := t.env.After(d, func() { ch0.sig.Broadcast() })
	defer cancel()
	for {
		ch, err := t.lookup(dom, port)
		if err != nil {
			return false
		}
		if ch.pending {
			ch.pending = false
			return true
		}
		if t.env.Now() >= deadline {
			return false
		}
		ch.sig.Wait(p)
	}
}

// close tears down one endpoint, reverting its peer to unbound-broken.
func (t *Table) close(dom xtypes.DomID, port xtypes.Port) {
	dp, ok := t.domains[dom]
	if !ok {
		return
	}
	ch, ok := dp.ports[port]
	if !ok {
		return
	}
	if ch.state == stateInterdomain {
		if rch, err := t.lookup(ch.remoteDom, ch.remotePort); err == nil {
			rch.state = stateUnbound
			rch.remoteDom = dom
			// Scrub connection state: a stale remotePort or pending bit
			// from the dead connection would surface as a phantom event
			// after the driver rebinds post-microreboot.
			rch.remotePort = xtypes.PortInvalid
			rch.pending = false
			rch.sig.Broadcast() // wake waiters so they observe the break
		}
	}
	ch.state = stateFree
	ch.sig.Broadcast()
	delete(dp.ports, port)
}

// Close tears down a port.
func (t *Table) Close(dom xtypes.DomID, port xtypes.Port) error {
	if _, err := t.lookup(dom, port); err != nil {
		return err
	}
	t.close(dom, port)
	return nil
}

// Peer reports the remote endpoint of an interdomain channel.
func (t *Table) Peer(dom xtypes.DomID, port xtypes.Port) (xtypes.DomID, xtypes.Port, error) {
	ch, err := t.lookup(dom, port)
	if err != nil {
		return xtypes.DomIDNone, xtypes.PortInvalid, err
	}
	if ch.state != stateInterdomain {
		return xtypes.DomIDNone, xtypes.PortInvalid, fmt.Errorf("evtchn: peer %v:%d: %w", dom, port, xtypes.ErrBadPort)
	}
	return ch.remoteDom, ch.remotePort, nil
}

// Connections lists the interdomain peers of dom. The security evaluation
// uses this to build signalling-exposure edges of the component graph.
func (t *Table) Connections(dom xtypes.DomID) []xtypes.DomID {
	dp, ok := t.domains[dom]
	if !ok {
		return nil
	}
	seen := make(map[xtypes.DomID]bool)
	var out []xtypes.DomID
	for _, ch := range dp.ports {
		if ch.state == stateInterdomain && !seen[ch.remoteDom] {
			seen[ch.remoteDom] = true
			out = append(out, ch.remoteDom)
		}
	}
	return out
}

// NotifyCount reports how many events were ever delivered to the port.
func (t *Table) NotifyCount(dom xtypes.DomID, port xtypes.Port) int {
	ch, err := t.lookup(dom, port)
	if err != nil {
		return 0
	}
	return ch.notifyCount
}
