package evtchn

import (
	"errors"
	"testing"
	"testing/quick"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

func newTable() (*sim.Env, *Table) {
	env := sim.NewEnv(1)
	t := NewTable(env)
	t.AddDomain(1)
	t.AddDomain(2)
	return env, t
}

// pair builds a connected interdomain channel 1<->2 and returns both ports.
func pair(t *testing.T, tbl *Table) (p1, p2 xtypes.Port) {
	t.Helper()
	p2, err := tbl.AllocUnbound(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	p1, err = tbl.BindInterdomain(1, 2, p2)
	if err != nil {
		t.Fatal(err)
	}
	return p1, p2
}

func TestBindHandshake(t *testing.T) {
	_, tbl := newTable()
	p1, p2 := pair(t, tbl)
	rd, rp, err := tbl.Peer(1, p1)
	if err != nil || rd != 2 || rp != p2 {
		t.Fatalf("peer(1) = %v:%d, %v", rd, rp, err)
	}
	rd, rp, err = tbl.Peer(2, p2)
	if err != nil || rd != 1 || rp != p1 {
		t.Fatalf("peer(2) = %v:%d, %v", rd, rp, err)
	}
}

func TestBindReservedForOtherDomain(t *testing.T) {
	_, tbl := newTable()
	tbl.AddDomain(3)
	p2, _ := tbl.AllocUnbound(2, 1) // reserved for dom1
	if _, err := tbl.BindInterdomain(3, 2, p2); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("foreign bind: %v", err)
	}
}

func TestDoubleBindRefused(t *testing.T) {
	_, tbl := newTable()
	tbl.AddDomain(3)
	p2, _ := tbl.AllocUnbound(2, 1)
	if _, err := tbl.BindInterdomain(1, 2, p2); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.BindInterdomain(1, 2, p2); !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("double bind: %v", err)
	}
}

func TestNotifyWakesWaiter(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	var wokeAt sim.Time
	env.Spawn("waiter", func(p *sim.Proc) {
		if !tbl.Wait(p, 2, p2) {
			t.Error("wait failed")
		}
		wokeAt = p.Now()
	})
	env.Spawn("notifier", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		if err := tbl.Notify(1, p1); err != nil {
			t.Error(err)
		}
	})
	env.RunAll()
	if wokeAt != sim.Time(5*sim.Millisecond) {
		t.Fatalf("woke at %v", wokeAt)
	}
}

func TestPendingConsumedByWait(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	env.Spawn("test", func(p *sim.Proc) {
		tbl.Notify(1, p1)
		if ok, _ := tbl.Pending(2, p2); !ok {
			t.Error("not pending after notify")
		}
		if !tbl.Wait(p, 2, p2) {
			t.Error("wait failed")
		}
		if ok, _ := tbl.Pending(2, p2); ok {
			t.Error("still pending after wait")
		}
	})
	env.RunAll()
}

func TestHandlerUpcall(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	calls := 0
	tbl.SetHandler(2, p2, func() { calls++ })
	env.Spawn("notifier", func(p *sim.Proc) {
		tbl.Notify(1, p1)
		p.Sleep(sim.Millisecond)
		tbl.Notify(1, p1)
	})
	env.RunAll()
	if calls != 2 {
		t.Fatalf("handler calls = %d", calls)
	}
}

func TestMaskDefersDelivery(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	calls := 0
	tbl.SetHandler(2, p2, func() { calls++ })
	env.Spawn("test", func(p *sim.Proc) {
		tbl.Mask(2, p2)
		tbl.Notify(1, p1)
		p.Sleep(sim.Millisecond)
		if calls != 0 {
			t.Error("handler ran while masked")
		}
		if ok, _ := tbl.Pending(2, p2); !ok {
			t.Error("pending bit lost while masked")
		}
		tbl.Unmask(2, p2)
	})
	env.RunAll()
	if calls != 1 {
		t.Fatalf("handler calls after unmask = %d", calls)
	}
}

func TestVIRQDelivery(t *testing.T) {
	env, tbl := newTable()
	port, err := tbl.BindVIRQ(1, xtypes.VIRQConsole)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.BindVIRQ(1, xtypes.VIRQConsole); !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("double virq bind: %v", err)
	}
	got := 0
	tbl.SetHandler(1, port, func() { got++ })
	env.Spawn("hv", func(p *sim.Proc) {
		tbl.RaiseVIRQ(1, xtypes.VIRQConsole)
		tbl.RaiseVIRQ(1, xtypes.VIRQTimer) // unbound: dropped
		tbl.RaiseVIRQ(99, xtypes.VIRQConsole)
	})
	env.RunAll()
	if got != 1 {
		t.Fatalf("virq deliveries = %d", got)
	}
}

func TestCloseBreaksPeer(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	var waiterResult bool
	var waiterDone bool
	env.Spawn("waiter", func(p *sim.Proc) {
		waiterResult = tbl.Wait(p, 2, p2)
		// After the break, the endpoint reverts to unbound: a second wait on
		// a never-signalled unbound port would block forever, so instead just
		// check Notify now fails from side 2.
		waiterDone = true
	})
	env.Spawn("closer", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		tbl.Close(1, p1)
		// Port 2 reverted to unbound; notifying through it must error.
		if err := tbl.Notify(2, p2); !errors.Is(err, xtypes.ErrBadPort) {
			t.Errorf("notify after peer close: %v", err)
		}
		// The broken endpoint can be rebound by the original peer domain,
		// which is how reconnection after a microreboot works.
		if _, err := tbl.BindInterdomain(1, 2, p2); err != nil {
			t.Errorf("rebind after break: %v", err)
		}
	})
	env.Run(sim.Time(sim.Second))
	if waiterDone && waiterResult {
		t.Fatal("waiter saw a pending event from a close")
	}
	env.Shutdown()
}

func TestRemoveDomainClosesEverything(t *testing.T) {
	_, tbl := newTable()
	p1, _ := pair(t, tbl)
	tbl.RemoveDomain(2)
	// The surviving endpoint reverts to unbound; notifying through it fails
	// just as EVTCHNOP_send on an unbound port returns EINVAL in Xen.
	if err := tbl.Notify(1, p1); !errors.Is(err, xtypes.ErrBadPort) {
		t.Fatalf("notify to dead peer: %v", err)
	}
	if _, err := tbl.AllocUnbound(2, 1); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("alloc on removed domain: %v", err)
	}
}

func TestWaitTimeout(t *testing.T) {
	env, tbl := newTable()
	_, p2 := pair(t, tbl)
	var ok bool
	var at sim.Time
	env.Spawn("waiter", func(p *sim.Proc) {
		ok = tbl.WaitTimeout(p, 2, p2, 10*sim.Millisecond)
		at = p.Now()
	})
	env.RunAll()
	if ok || at != sim.Time(10*sim.Millisecond) {
		t.Fatalf("timeout wait: ok=%v at=%v", ok, at)
	}
}

func TestConnectionsEnumeration(t *testing.T) {
	_, tbl := newTable()
	tbl.AddDomain(3)
	pair(t, tbl)
	p3u, _ := tbl.AllocUnbound(3, 1)
	if _, err := tbl.BindInterdomain(1, 3, p3u); err != nil {
		t.Fatal(err)
	}
	conns := tbl.Connections(1)
	if len(conns) != 2 {
		t.Fatalf("connections = %v", conns)
	}
}

func TestNotifyCount(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	env.Spawn("n", func(p *sim.Proc) {
		for i := 0; i < 7; i++ {
			tbl.Notify(1, p1)
		}
	})
	env.RunAll()
	if n := tbl.NotifyCount(2, p2); n != 7 {
		t.Fatalf("notify count = %d", n)
	}
}

// Property: for any interleaving of alloc/bind/notify/close operations, a
// delivered event implies a live interdomain pair, and closing always leaves
// both endpoints unusable for notification.
func TestEvtchnLifecycleProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		env := sim.NewEnv(1)
		tbl := NewTable(env)
		tbl.AddDomain(1)
		tbl.AddDomain(2)
		type pair struct{ p1, p2 xtypes.Port }
		var unbound []xtypes.Port
		var pairs []pair
		okAll := true
		env.Spawn("driver", func(p *sim.Proc) {
			for _, op := range ops {
				switch op % 4 {
				case 0:
					if port, err := tbl.AllocUnbound(2, 1); err == nil {
						unbound = append(unbound, port)
					}
				case 1:
					if len(unbound) > 0 {
						p2 := unbound[0]
						unbound = unbound[1:]
						p1, err := tbl.BindInterdomain(1, 2, p2)
						if err != nil {
							okAll = false
							return
						}
						pairs = append(pairs, pair{p1, p2})
					}
				case 2:
					if len(pairs) > 0 {
						pr := pairs[0]
						if err := tbl.Notify(1, pr.p1); err != nil {
							okAll = false
							return
						}
						pending, err := tbl.Pending(2, pr.p2)
						if err != nil || !pending {
							okAll = false
							return
						}
						// Consume so later checks are clean.
						if !tbl.Wait(p, 2, pr.p2) {
							okAll = false
							return
						}
					}
				case 3:
					if len(pairs) > 0 {
						pr := pairs[0]
						pairs = pairs[1:]
						tbl.Close(1, pr.p1)
						// The peer reverted to unbound: notify must fail.
						if err := tbl.Notify(2, pr.p2); err == nil {
							okAll = false
							return
						}
					}
				}
			}
		})
		env.RunAll()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Satellite regression: close must scrub the surviving endpoint's pending
// bit and stale remote port. Pre-fix, an event notified just before the
// peer closed survived the teardown and surfaced as a phantom event on the
// rebound connection after a microreboot.
func TestCloseClearsStalePeerState(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	env.Spawn("test", func(p *sim.Proc) {
		tbl.Notify(1, p1) // event in flight, never consumed
		tbl.Close(1, p1)  // backend dies mid-event (microreboot)
		if ok, _ := tbl.Pending(2, p2); ok {
			t.Error("pending bit survived close: phantom event")
			return
		}
		// Reconnect: dom1 rebinds to the surviving unbound endpoint.
		np1, err := tbl.BindInterdomain(1, 2, p2)
		if err != nil {
			t.Error(err)
			return
		}
		// The fresh connection must not observe an event it never sent.
		if tbl.WaitTimeout(p, 2, p2, 5*sim.Millisecond) {
			t.Error("phantom event delivered on rebound channel")
			return
		}
		// And real traffic on the new binding still flows.
		if err := tbl.Notify(1, np1); err != nil {
			t.Error(err)
			return
		}
		if ok, _ := tbl.Pending(2, p2); !ok {
			t.Error("real notify lost after rebind")
		}
	})
	env.RunAll()
}

// Satellite regression: one event arrival is one count, masked or not.
// Pre-fix, deliver counted when it set the pending bit under mask and then
// Unmask ran deliver again for the same event, double-counting it.
func TestNotifyCountMaskedCountsOnce(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	env.Spawn("test", func(p *sim.Proc) {
		tbl.Mask(2, p2)
		tbl.Notify(1, p1) // arrives under mask: counts once
		if n := tbl.NotifyCount(2, p2); n != 1 {
			t.Errorf("count under mask = %d", n)
		}
		tbl.Unmask(2, p2) // redelivery of the deferred event, not a new one
		if n := tbl.NotifyCount(2, p2); n != 1 {
			t.Errorf("count after unmask = %d", n)
		}
		if !tbl.Wait(p, 2, p2) {
			t.Error("deferred event lost")
		}
		// Interleave unmasked and masked notifies: three arrivals total.
		tbl.Notify(1, p1)
		tbl.Mask(2, p2)
		tbl.Notify(1, p1)
		tbl.Unmask(2, p2)
		if n := tbl.NotifyCount(2, p2); n != 3 {
			t.Errorf("count after mask/notify/unmask sequence = %d", n)
		}
		if !tbl.Wait(p, 2, p2) {
			t.Error("event lost after sequence")
		}
	})
	env.RunAll()
}

// WaitTimeout with a deadline exactly at Now must not block: it consumes an
// already-pending event or fails immediately.
func TestWaitTimeoutZeroDeadline(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	env.Spawn("test", func(p *sim.Proc) {
		if tbl.WaitTimeout(p, 2, p2, 0) {
			t.Error("zero-deadline wait returned true with no event")
		}
		if p.Now() != 0 {
			t.Errorf("zero-deadline wait blocked until %v", p.Now())
		}
		tbl.Notify(1, p1)
		if !tbl.WaitTimeout(p, 2, p2, 0) {
			t.Error("pending event not consumed at zero deadline")
		}
	})
	env.RunAll()
}

// Closing the port while a WaitTimeout deadline timer is armed must wake the
// waiter with false at close time, not strand it until the deadline.
func TestWaitTimeoutPortClosedWhileArmed(t *testing.T) {
	env, tbl := newTable()
	_, p2 := pair(t, tbl)
	var ok, done bool
	var at sim.Time
	env.Spawn("waiter", func(p *sim.Proc) {
		ok = tbl.WaitTimeout(p, 2, p2, 100*sim.Millisecond)
		at = p.Now()
		done = true
	})
	env.Spawn("closer", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		tbl.Close(2, p2)
	})
	env.RunAll()
	if !done || ok {
		t.Fatalf("wait after close: done=%v ok=%v", done, ok)
	}
	if at != sim.Time(5*sim.Millisecond) {
		t.Fatalf("waiter returned at %v, want the close time", at)
	}
}

// Two waiters on one port: a single event wakes both (broadcast), exactly
// one consumes it, and the spuriously-woken loser re-sleeps and times out
// at its own deadline rather than returning a false success.
func TestWaitTimeoutSpuriousWakeupSecondWaiter(t *testing.T) {
	env, tbl := newTable()
	p1, p2 := pair(t, tbl)
	results := make([]bool, 2)
	times := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("waiter", func(p *sim.Proc) {
			results[i] = tbl.WaitTimeout(p, 2, p2, 20*sim.Millisecond)
			times[i] = p.Now()
		})
	}
	env.Spawn("notifier", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		tbl.Notify(1, p1)
	})
	env.RunAll()
	if results[0] == results[1] {
		t.Fatalf("exactly one waiter must consume the event: %v", results)
	}
	for i := 0; i < 2; i++ {
		if results[i] && times[i] != sim.Time(5*sim.Millisecond) {
			t.Fatalf("winner returned at %v", times[i])
		}
		if !results[i] && times[i] != sim.Time(20*sim.Millisecond) {
			t.Fatalf("loser returned at %v, want its deadline", times[i])
		}
	}
}
