// Package xenstore implements the hierarchical key-value registry at the
// heart of the Xen control plane (§4.4): a tree of small values with
// per-node permissions, transactions, and a watch mechanism that notifies
// listeners of changes. The toolstack and every split driver use it for
// inter-VM synchronization and device negotiation.
//
// Following the paper's decomposition (§5.1), the package is split in two:
//
//   - State — the in-memory contents: the tree, node permissions, and the
//     watch registry. Long-lived; the XenStore-State shard hosts exactly this.
//   - Logic — request processing: path resolution, permission checks,
//     transactions. Stateless and restartable; the XenStore-Logic shard hosts
//     this, and after every microreboot it reattaches to the same State.
//
// The interface between the two is the narrow, key-value based protocol the
// paper describes; in the platform model it is the StateAccess interface so
// the Xoar profile can interpose a cross-VM latency adapter on it.
package xenstore

import (
	"fmt"
	"sort"
	"strings"

	"xoar/internal/xtypes"
)

// node is one tree node.
type node struct {
	value    []byte
	children map[string]*node
	owner    xtypes.DomID
	readACL  map[xtypes.DomID]bool
	writeACL map[xtypes.DomID]bool
	gen      uint64 // generation of last mutation, for transaction conflicts
}

func newNode(owner xtypes.DomID) *node {
	return &node{
		children: make(map[string]*node),
		owner:    owner,
		readACL:  make(map[xtypes.DomID]bool),
		writeACL: make(map[xtypes.DomID]bool),
	}
}

// Perms describes a node's access control state.
type Perms struct {
	Owner xtypes.DomID
	Read  []xtypes.DomID
	Write []xtypes.DomID
}

// WatchEvent is delivered to a watcher when a watched subtree changes.
type WatchEvent struct {
	Path  string
	Token string
}

// watch is one registration. Watches live in State so they survive Logic
// microreboots — they are contents, not processing.
type watch struct {
	dom   xtypes.DomID
	path  string
	token string
	// deliver enqueues the event with the owning connection.
	deliver func(WatchEvent)
	// canSee gates delivery by the watcher's read permission on the mutated
	// path, as xenstored does — watches must not leak activity on nodes the
	// watcher cannot read. Nil means unrestricted (privileged connections).
	canSee func(path string) bool
}

// State is the XenStore contents: tree plus watch registry.
type State struct {
	root    *node
	gen     uint64
	watches []*watch

	// mutations counts committed writes, for tests and stats.
	mutations int
}

// NewState returns a State holding only the root node, owned by no one
// (readable by all, writable only by privileged connections).
func NewState() *State {
	s := &State{root: newNode(xtypes.DomIDNone)}
	return s
}

// SplitPath normalizes and splits a store path. Empty components are
// rejected; the root is the empty slice.
func SplitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("xenstore: path %q: %w", path, xtypes.ErrInvalid)
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("xenstore: path %q: %w", path, xtypes.ErrInvalid)
		}
	}
	return parts, nil
}

// lookup walks to the node at parts, returning nil if absent.
func (s *State) lookup(parts []string) *node {
	n := s.root
	for _, p := range parts {
		n = n.children[p]
		if n == nil {
			return nil
		}
	}
	return n
}

// lookupParent returns the parent node of parts and the final component.
func (s *State) lookupParent(parts []string) (*node, string) {
	if len(parts) == 0 {
		return nil, ""
	}
	parent := s.lookup(parts[:len(parts)-1])
	return parent, parts[len(parts)-1]
}

// fireWatches delivers events for a mutation at path. A watch fires when its
// registered path is the mutated path or an ancestor directory of it, and —
// as in real xenstored — when the mutated path is an ancestor of the watched
// path (covers deletion of a whole subtree above the watch point).
func (s *State) fireWatches(path string) {
	for _, w := range s.watches {
		if !pathCovers(w.path, path) && !pathCovers(path, w.path) {
			continue
		}
		if w.canSee != nil && !w.canSee(path) {
			continue
		}
		w.deliver(WatchEvent{Path: path, Token: w.token})
	}
}

// pathCovers reports whether ancestor equals p or is a directory prefix of p.
func pathCovers(ancestor, p string) bool {
	if ancestor == p {
		return true
	}
	if ancestor == "/" {
		return true
	}
	return strings.HasPrefix(p, ancestor+"/")
}

// addWatch registers a watch. Registration is idempotent per (dom, path,
// token) as in xenstored.
func (s *State) addWatch(dom xtypes.DomID, path, token string, deliver func(WatchEvent), canSee func(string) bool) {
	for _, w := range s.watches {
		if w.dom == dom && w.path == path && w.token == token {
			return
		}
	}
	s.watches = append(s.watches, &watch{dom: dom, path: path, token: token, deliver: deliver, canSee: canSee})
}

// removeWatch drops a registration.
func (s *State) removeWatch(dom xtypes.DomID, path, token string) {
	out := s.watches[:0]
	for _, w := range s.watches {
		if !(w.dom == dom && w.path == path && w.token == token) {
			out = append(out, w)
		}
	}
	s.watches = out
}

// removeDomainWatches drops all of a domain's registrations (domain death).
func (s *State) removeDomainWatches(dom xtypes.DomID) {
	out := s.watches[:0]
	for _, w := range s.watches {
		if w.dom != dom {
			out = append(out, w)
		}
	}
	s.watches = out
}

// WatchCount reports live registrations, used by quota enforcement and tests.
func (s *State) WatchCount(dom xtypes.DomID) int {
	n := 0
	for _, w := range s.watches {
		if w.dom == dom {
			n++
		}
	}
	return n
}

// Mutations reports the number of committed writes since creation.
func (s *State) Mutations() int { return s.mutations }

// Dump returns all paths and values in sorted order. The XenStore-State
// shard uses this to hand contents back to a rebooted Logic, and tests use
// it to compare trees.
func (s *State) Dump() []struct{ Path, Value string } {
	var out []struct{ Path, Value string }
	var walk func(prefix string, n *node)
	walk = func(prefix string, n *node) {
		if prefix != "" {
			out = append(out, struct{ Path, Value string }{prefix, string(n.value)})
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			walk(prefix+"/"+name, n.children[name])
		}
	}
	walk("", s.root)
	return out
}
