package xenstore

import (
	"fmt"

	"xoar/internal/ring"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/xtypes"
)

// The XenStore wire protocol (§4.4): every VM sets up an I/O ring at boot
// for XenStore communication and exchanges small request/reply messages over
// it, with watch events delivered asynchronously on a companion ring. This
// file implements that transport — a Server pump running in the
// XenStore-Logic domain that charges CPU per operation, and a Client stub
// for the guest side.
//
// The in-process Conn interface remains the store's core; the wire layer
// marshals onto it, exactly as xenstored's connection handler dispatches
// parsed messages onto its internal tree operations.

// MsgType enumerates wire operations, mirroring xs_wire.h.
type MsgType uint8

const (
	MsgRead MsgType = iota
	MsgWrite
	MsgMkdir
	MsgRm
	MsgDirectory
	MsgGetPerms
	MsgSetPerms
	MsgWatch
	MsgUnwatch
	MsgTxStart
	MsgTxEnd
	MsgReply
	MsgError
	MsgWatchEvent
)

func (m MsgType) String() string {
	names := [...]string{"read", "write", "mkdir", "rm", "directory", "get-perms",
		"set-perms", "watch", "unwatch", "tx-start", "tx-end", "reply", "error", "watch-event"}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("msg(%d)", uint8(m))
}

// Msg is one wire message. Requests and replies share the struct, as in the
// real protocol's fixed header + payload.
type Msg struct {
	Type  MsgType
	Tx    TxID
	Path  string
	Value string
	// Values carries directory listings.
	Values []string
	// Perms carries get/set-perms payloads.
	Perms Perms
	// Commit selects commit vs abort for MsgTxEnd.
	Commit bool
	// Token identifies watches.
	Token string
	// Err is the errno string on MsgError replies.
	Err string
}

// wireOpCPU is xenstored's per-request processing cost.
const wireOpCPU = 8 * sim.Microsecond

// Computer abstracts CPU accounting so the wire layer does not import hv.
type Computer interface {
	Compute(p *sim.Proc, dom xtypes.DomID, d sim.Duration)
}

// Server pumps one connection's request ring inside the XenStore-Logic
// domain.
type Server struct {
	logic    *Logic
	dom      xtypes.DomID // the serving (Logic) domain
	cpu      Computer
	Handled  int64
	procs    []*sim.Proc
	eventing bool
}

// NewServer returns a wire server for logic running in dom.
func NewServer(logic *Logic, dom xtypes.DomID, cpu Computer) *Server {
	return &Server{logic: logic, dom: dom, cpu: cpu}
}

// Transport is a connected client/server ring pair for one domain.
type Transport struct {
	// req carries client requests and server replies.
	req *ring.Ring[Msg, Msg]
	// events carries unsolicited watch events (server produces).
	events *ring.Ring[Msg, struct{}]
}

// Serve attaches the server to a new transport for client domain dom and
// starts its pump processes. The returned Client is the guest-side stub.
func (s *Server) Serve(env *sim.Env, client xtypes.DomID, privileged bool) *Client {
	tr := &Transport{
		req:    ring.New[Msg, Msg](env, ring.DefaultSlots),
		events: ring.New[Msg, struct{}](env, ring.DefaultSlots),
	}
	conn := s.logic.Connect(client, privileged)

	// Request pump: pop, charge CPU, dispatch, reply.
	s.procs = append(s.procs, env.Spawn(fmt.Sprintf("xenstored-%v", client), func(p *sim.Proc) {
		for {
			req, err := tr.req.PopRequest(p)
			if err != nil {
				return
			}
			start := p.Now()
			if s.cpu != nil {
				s.cpu.Compute(p, s.dom, wireOpCPU)
			}
			reply := s.dispatch(conn, req)
			if tr.req.Broken() {
				return
			}
			tr.req.PushResponse(reply)
			s.Handled++
			if s.logic.tel != nil {
				// Service latency = CPU charge + dispatch, i.e. the time the
				// request occupied xenstored, excluding ring wait.
				s.logic.tel.Histogram("xenstore_service_us", telemetry.LatencyUSBuckets,
					telemetry.L("op", req.Type.String())).
					Observe(float64(p.Now().Sub(start)) / float64(sim.Microsecond))
			}
		}
	}))
	// Event pump: forward watch firings as unsolicited messages.
	s.procs = append(s.procs, env.Spawn(fmt.Sprintf("xenstored-events-%v", client), func(p *sim.Proc) {
		for {
			ev, ok := conn.Events.Recv(p)
			if !ok {
				return
			}
			for {
				if _, ok := tr.events.TryPopResponse(); !ok {
					break
				}
			}
			for !tr.events.TryPushRequest(Msg{Type: MsgWatchEvent, Path: ev.Path, Token: ev.Token}) {
				if _, err := tr.events.PopResponse(p); err != nil {
					return
				}
			}
		}
	}))
	return &Client{dom: client, tr: tr, env: env}
}

// Stop kills the server pumps (all connections).
func (s *Server) Stop() {
	for _, p := range s.procs {
		p.Kill()
	}
}

// dispatch executes one request against the connection.
func (s *Server) dispatch(c *Conn, m Msg) Msg {
	fail := func(err error) Msg { return Msg{Type: MsgError, Err: err.Error()} }
	switch m.Type {
	case MsgRead:
		v, err := c.Read(m.Tx, m.Path)
		if err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply, Value: v}
	case MsgWrite:
		if err := c.Write(m.Tx, m.Path, m.Value); err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply}
	case MsgMkdir:
		if err := c.Mkdir(m.Tx, m.Path); err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply}
	case MsgRm:
		if err := c.Rm(m.Tx, m.Path); err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply}
	case MsgDirectory:
		names, err := c.Directory(m.Tx, m.Path)
		if err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply, Values: names}
	case MsgGetPerms:
		perms, err := c.GetPerms(m.Path)
		if err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply, Perms: perms}
	case MsgSetPerms:
		if err := c.SetPerms(m.Path, m.Perms); err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply}
	case MsgWatch:
		if err := c.Watch(m.Path, m.Token); err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply}
	case MsgUnwatch:
		c.Unwatch(m.Path, m.Token)
		return Msg{Type: MsgReply}
	case MsgTxStart:
		id, err := c.TxStart()
		if err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply, Tx: id}
	case MsgTxEnd:
		if err := c.TxEnd(m.Tx, m.Commit); err != nil {
			return fail(err)
		}
		return Msg{Type: MsgReply}
	default:
		return fail(fmt.Errorf("xenstore: wire: bad message %v: %w", m.Type, xtypes.ErrInvalid))
	}
}

// Client is the guest-side protocol stub.
type Client struct {
	dom xtypes.DomID
	tr  *Transport
	env *sim.Env
}

// call performs one synchronous request/reply exchange.
func (c *Client) call(p *sim.Proc, req Msg) (Msg, error) {
	if err := c.tr.req.PushRequest(p, req); err != nil {
		return Msg{}, err
	}
	reply, err := c.tr.req.PopResponse(p)
	if err != nil {
		return Msg{}, err
	}
	if reply.Type == MsgError {
		return reply, fmt.Errorf("xenstore: wire %v: %s", req.Type, reply.Err)
	}
	return reply, nil
}

// Read fetches a value.
func (c *Client) Read(p *sim.Proc, tx TxID, path string) (string, error) {
	r, err := c.call(p, Msg{Type: MsgRead, Tx: tx, Path: path})
	return r.Value, err
}

// Write stores a value.
func (c *Client) Write(p *sim.Proc, tx TxID, path, value string) error {
	_, err := c.call(p, Msg{Type: MsgWrite, Tx: tx, Path: path, Value: value})
	return err
}

// Rm removes a subtree.
func (c *Client) Rm(p *sim.Proc, tx TxID, path string) error {
	_, err := c.call(p, Msg{Type: MsgRm, Tx: tx, Path: path})
	return err
}

// Directory lists children.
func (c *Client) Directory(p *sim.Proc, tx TxID, path string) ([]string, error) {
	r, err := c.call(p, Msg{Type: MsgDirectory, Tx: tx, Path: path})
	return r.Values, err
}

// Watch registers for events on path.
func (c *Client) Watch(p *sim.Proc, path, token string) error {
	_, err := c.call(p, Msg{Type: MsgWatch, Path: path, Token: token})
	return err
}

// TxStart opens a transaction.
func (c *Client) TxStart(p *sim.Proc) (TxID, error) {
	r, err := c.call(p, Msg{Type: MsgTxStart})
	return r.Tx, err
}

// TxEnd commits or aborts a transaction.
func (c *Client) TxEnd(p *sim.Proc, tx TxID, commit bool) error {
	_, err := c.call(p, Msg{Type: MsgTxEnd, Tx: tx, Commit: commit})
	return err
}

// NextEvent blocks until an unsolicited watch event arrives.
func (c *Client) NextEvent(p *sim.Proc) (WatchEvent, error) {
	m, err := c.tr.events.PopRequest(p)
	if err != nil {
		return WatchEvent{}, err
	}
	c.tr.events.PushResponse(struct{}{})
	return WatchEvent{Path: m.Path, Token: m.Token}, nil
}
