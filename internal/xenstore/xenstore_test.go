package xenstore

import (
	"errors"
	"testing"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

func newLogic() (*sim.Env, *Logic) {
	env := sim.NewEnv(1)
	return env, NewLogic(env, NewState())
}

func TestReadWriteBasic(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	if err := c.Write(TxNone, "/local/domain/1/name", "guest1"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(TxNone, "/local/domain/1/name")
	if err != nil || v != "guest1" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if _, err := c.Read(TxNone, "/no/such"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("missing read: %v", err)
	}
}

func TestPathValidation(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	for _, bad := range []string{"", "relative/path", "/a//b", "/trailing/"} {
		if err := c.Write(TxNone, bad, "x"); !errors.Is(err, xtypes.ErrInvalid) {
			t.Errorf("path %q accepted: %v", bad, err)
		}
	}
}

func TestDirectoryListing(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	c.Write(TxNone, "/dev/vif/0", "a")
	c.Write(TxNone, "/dev/vif/1", "b")
	c.Write(TxNone, "/dev/vbd/0", "c")
	names, err := c.Directory(TxNone, "/dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "vbd" || names[1] != "vif" {
		t.Fatalf("directory = %v", names)
	}
}

func TestRmRemovesSubtree(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	c.Write(TxNone, "/a/b/c", "1")
	c.Write(TxNone, "/a/b/d", "2")
	if err := c.Rm(TxNone, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(TxNone, "/a/b/c"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("subtree survived rm: %v", err)
	}
	if _, err := c.Read(TxNone, "/a"); err != nil {
		t.Fatalf("parent removed: %v", err)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	_, l := newLogic()
	priv := l.Connect(0, true)
	guest := l.Connect(5, false)
	other := l.Connect(6, false)

	// Toolstack creates the guest's subtree and hands it over.
	priv.Write(TxNone, "/local/domain/5/name", "guest5")
	if err := priv.SetPerms("/local/domain/5/name", Perms{Owner: 5}); err != nil {
		t.Fatal(err)
	}

	// The owner can read and write its node.
	if _, err := guest.Read(TxNone, "/local/domain/5/name"); err != nil {
		t.Fatalf("owner read: %v", err)
	}
	if err := guest.Write(TxNone, "/local/domain/5/name", "renamed"); err != nil {
		t.Fatalf("owner write: %v", err)
	}

	// A third party can do neither.
	if _, err := other.Read(TxNone, "/local/domain/5/name"); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("foreign read: %v", err)
	}
	if err := other.Write(TxNone, "/local/domain/5/name", "pwned"); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("foreign write: %v", err)
	}

	// ACL grants work.
	guest.SetPerms("/local/domain/5/name", Perms{Owner: 5, Read: []xtypes.DomID{6}})
	if _, err := other.Read(TxNone, "/local/domain/5/name"); err != nil {
		t.Fatalf("ACL read: %v", err)
	}
	if err := other.Write(TxNone, "/local/domain/5/name", "x"); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("ACL write without grant: %v", err)
	}
}

func TestUnprivilegedCannotCreateAtRoot(t *testing.T) {
	_, l := newLogic()
	guest := l.Connect(5, false)
	if err := guest.Write(TxNone, "/evil", "x"); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("root create by guest: %v", err)
	}
}

func TestSetPermsOnlyOwnerOrPrivileged(t *testing.T) {
	_, l := newLogic()
	priv := l.Connect(0, true)
	guest := l.Connect(5, false)
	priv.Write(TxNone, "/node", "v")
	if err := guest.SetPerms("/node", Perms{Owner: 5}); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("setperms by non-owner: %v", err)
	}
}

func TestWatchFiresOnWriteAndDescendants(t *testing.T) {
	env, l := newLogic()
	c := l.Connect(0, true)
	var events []WatchEvent
	env.Spawn("watcher", func(p *sim.Proc) {
		c.Watch("/dev", "tok")
		// Initial synthetic event.
		ev, _ := c.WaitWatch(p)
		events = append(events, ev)
		for i := 0; i < 2; i++ {
			ev, ok := c.WaitWatch(p)
			if !ok {
				return
			}
			events = append(events, ev)
		}
	})
	env.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		c.Write(TxNone, "/dev/vif/0/state", "1")
		c.Write(TxNone, "/other/path", "x") // must not fire
		c.Rm(TxNone, "/dev/vif")
	})
	env.RunAll()
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	if events[1].Path != "/dev/vif/0/state" || events[1].Token != "tok" {
		t.Fatalf("event[1] = %+v", events[1])
	}
	if events[2].Path != "/dev/vif" {
		t.Fatalf("event[2] = %+v", events[2])
	}
}

func TestWatchFiresOnAncestorDeletion(t *testing.T) {
	env, l := newLogic()
	c := l.Connect(0, true)
	c.Write(TxNone, "/a/b/c", "v")
	fired := 0
	env.Spawn("watcher", func(p *sim.Proc) {
		c.Watch("/a/b/c", "t")
		c.WaitWatch(p) // initial
		c.WaitWatch(p) // deletion of /a
		fired++
	})
	env.Spawn("rm", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		c.Rm(TxNone, "/a")
	})
	env.RunAll()
	if fired != 1 {
		t.Fatal("watch did not fire on ancestor deletion")
	}
}

func TestUnwatchStopsEvents(t *testing.T) {
	env, l := newLogic()
	c := l.Connect(0, true)
	env.Spawn("t", func(p *sim.Proc) {
		c.Watch("/x", "t")
		c.Events.Recv(p) // initial
		c.Unwatch("/x", "t")
		c.Write(TxNone, "/x", "v")
		if _, ok := c.Events.TryRecv(); ok {
			t.Error("event after unwatch")
		}
	})
	env.RunAll()
}

func TestTransactionCommit(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	id, err := c.TxStart()
	if err != nil {
		t.Fatal(err)
	}
	c.Write(id, "/vm/1/a", "1")
	c.Write(id, "/vm/1/b", "2")
	// Uncommitted writes invisible outside the transaction...
	if _, err := c.Read(TxNone, "/vm/1/a"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("dirty read: %v", err)
	}
	// ...but visible inside.
	if v, err := c.Read(id, "/vm/1/a"); err != nil || v != "1" {
		t.Fatalf("tx read = %q, %v", v, err)
	}
	if err := c.TxEnd(id, true); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Read(TxNone, "/vm/1/b"); v != "2" {
		t.Fatalf("post-commit read = %q", v)
	}
}

func TestTransactionAbort(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	id, _ := c.TxStart()
	c.Write(id, "/vm/2/a", "1")
	if err := c.TxEnd(id, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(TxNone, "/vm/2/a"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("aborted write visible: %v", err)
	}
}

func TestTransactionConflict(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	c.Write(TxNone, "/counter", "0")
	id, _ := c.TxStart()
	if _, err := c.Read(id, "/counter"); err != nil {
		t.Fatal(err)
	}
	// A concurrent committed write invalidates the transaction.
	c.Write(TxNone, "/counter", "7")
	c2, _ := c.TxStart()
	_ = c2
	err := c.TxEnd(id, true)
	if !errors.Is(err, xtypes.ErrAgain) {
		t.Fatalf("conflicting commit: %v", err)
	}
}

func TestTransactionDeleteInTx(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	c.Write(TxNone, "/gone", "v")
	id, _ := c.TxStart()
	c.Rm(id, "/gone")
	if _, err := c.Read(id, "/gone"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("tx read of tx-deleted node: %v", err)
	}
	if err := c.TxEnd(id, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(TxNone, "/gone"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("node survived committed delete: %v", err)
	}
}

func TestLogicRestartAbortsTransactionsKeepsData(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	c.Write(TxNone, "/persist", "yes")
	c.Watch("/persist", "tok")
	id, _ := c.TxStart()
	c.Write(id, "/persist", "tx-write")

	l.Restart()

	// Transaction is gone: operations on it fail with ErrShutdown.
	if err := c.TxEnd(id, true); !errors.Is(err, xtypes.ErrShutdown) {
		t.Fatalf("tx after restart: %v", err)
	}
	// Data survived (it lives in State).
	if v, _ := c.Read(TxNone, "/persist"); v != "yes" {
		t.Fatalf("data lost across Logic restart: %q", v)
	}
	// Watches survived too.
	if l.State().WatchCount(0) != 1 {
		t.Fatal("watch registry lost across Logic restart")
	}
	if l.Restarts() != 1 {
		t.Fatalf("restarts = %d", l.Restarts())
	}
}

func TestQuotas(t *testing.T) {
	_, l := newLogic()
	l.SetQuota(Quota{MaxNodes: 3, MaxWatches: 1, MaxTransactions: 1})
	priv := l.Connect(0, true)
	priv.Write(TxNone, "/guest", "")
	priv.SetPerms("/guest", Perms{Owner: 5, Write: []xtypes.DomID{5}})
	g := l.Connect(5, false)

	if err := g.Write(TxNone, "/guest/a/b/c", "x"); !errors.Is(err, xtypes.ErrQuota) {
		t.Fatalf("node quota: %v", err)
	}
	if err := g.Write(TxNone, "/guest/a", "x"); err != nil {
		t.Fatalf("within quota: %v", err)
	}

	if err := g.Watch("/guest", "t1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Watch("/guest", "t2"); !errors.Is(err, xtypes.ErrQuota) {
		t.Fatalf("watch quota: %v", err)
	}

	if _, err := g.TxStart(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TxStart(); !errors.Is(err, xtypes.ErrQuota) {
		t.Fatalf("tx quota: %v", err)
	}
}

func TestDisconnectCleansUp(t *testing.T) {
	_, l := newLogic()
	g := l.Connect(5, false)
	priv := l.Connect(0, true)
	priv.Write(TxNone, "/g", "")
	priv.SetPerms("/g", Perms{Owner: 5, Write: []xtypes.DomID{5}, Read: []xtypes.DomID{5}})
	g.Watch("/g", "tok")
	id, _ := g.TxStart()
	l.Disconnect(5)
	if l.State().WatchCount(5) != 0 {
		t.Fatal("watches survived disconnect")
	}
	g2 := l.Connect(5, false)
	if err := g2.TxEnd(id, true); !errors.Is(err, xtypes.ErrShutdown) {
		t.Fatalf("tx survived disconnect: %v", err)
	}
}

func TestForeignTransactionRejected(t *testing.T) {
	_, l := newLogic()
	a := l.Connect(1, true)
	b := l.Connect(2, true)
	id, _ := a.TxStart()
	if _, err := b.Read(id, "/x"); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("foreign tx use: %v", err)
	}
}

func TestWaitValue(t *testing.T) {
	env, l := newLogic()
	c := l.Connect(0, true)
	var connectedAt sim.Time
	env.Spawn("backend", func(p *sim.Proc) {
		c.Watch("/fe/state", "s")
		if !c.WaitValue(p, "/fe/state", "connected") {
			t.Error("WaitValue failed")
			return
		}
		connectedAt = p.Now()
	})
	env.Spawn("frontend", func(p *sim.Proc) {
		p.Sleep(3 * sim.Millisecond)
		c.Write(TxNone, "/fe/state", "initializing")
		p.Sleep(3 * sim.Millisecond)
		c.Write(TxNone, "/fe/state", "connected")
	})
	env.RunAll()
	if connectedAt != sim.Time(6*sim.Millisecond) {
		t.Fatalf("connected at %v", connectedAt)
	}
}

func TestWaitValueTimeout(t *testing.T) {
	env, l := newLogic()
	c := l.Connect(0, true)
	var ok bool
	env.Spawn("b", func(p *sim.Proc) {
		c.Watch("/never", "s")
		ok = c.WaitValueTimeout(p, "/never", "x", 5*sim.Millisecond)
	})
	env.RunAll()
	if ok {
		t.Fatal("WaitValueTimeout should have timed out")
	}
}

func TestDump(t *testing.T) {
	_, l := newLogic()
	c := l.Connect(0, true)
	c.Write(TxNone, "/b", "2")
	c.Write(TxNone, "/a/x", "1")
	d := l.State().Dump()
	if len(d) != 3 {
		t.Fatalf("dump = %v", d)
	}
	if d[0].Path != "/a" || d[1].Path != "/a/x" || d[1].Value != "1" || d[2].Path != "/b" {
		t.Fatalf("dump order = %v", d)
	}
}

func TestWatchRespectsReadPermissions(t *testing.T) {
	env, l := newLogic()
	priv := l.Connect(0, true)
	spy := l.Connect(6, false)
	var events []WatchEvent
	env.Spawn("spy", func(p *sim.Proc) {
		// The spy watches the whole /local tree...
		if err := spy.Watch("/local", "spy"); err != nil {
			t.Error(err)
			return
		}
		spy.Events.Recv(p) // initial synthetic event
		for {
			ev, ok := spy.Events.Recv(p)
			if !ok {
				return
			}
			events = append(events, ev)
		}
	})
	env.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		// ...but dom5's private nodes must not leak to it.
		priv.Write(TxNone, "/local/domain/5/secret", "hidden")
		priv.SetPerms("/local/domain/5/secret", Perms{Owner: 5})
		priv.Write(TxNone, "/local/domain/5/secret", "hidden2")
		// World-readable nodes do fire.
		priv.Write(TxNone, "/local/public", "visible")
		priv.SetPerms("/local/public", Perms{Owner: 0, Read: []xtypes.DomID{xtypes.DomIDNone}})
		priv.Write(TxNone, "/local/public", "visible2")
	})
	env.RunFor(sim.Second)
	env.Shutdown()
	for _, ev := range events {
		if ev.Path == "/local/domain/5/secret" {
			t.Fatalf("unreadable path leaked through watch: %v", events)
		}
	}
	sawPublic := false
	for _, ev := range events {
		if ev.Path == "/local/public" {
			sawPublic = true
		}
	}
	if !sawPublic {
		t.Fatalf("readable event suppressed: %v", events)
	}
}
