package xenstore

import (
	"fmt"
	"sort"
	"strings"

	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/xtypes"
)

// TxID identifies a transaction. TxNone means "no transaction".
type TxID uint32

// TxNone is the null transaction, used for standalone operations.
const TxNone TxID = 0

// Quota bounds a domain's resource consumption in the store, modelling the
// DoS exposure the paper notes in §4.4: without quotas a single VM can
// monopolize XenStore.
type Quota struct {
	MaxNodes        int // nodes owned by the domain
	MaxWatches      int
	MaxTransactions int
}

// DefaultQuota matches xenstored's defaults in spirit.
var DefaultQuota = Quota{MaxNodes: 1000, MaxWatches: 128, MaxTransactions: 10}

// Conn is one domain's connection to XenStore. In the platform it sits on a
// shared ring; here it carries the caller identity for permission checks and
// the queue watch events are delivered to.
type Conn struct {
	logic      *Logic
	dom        xtypes.DomID
	privileged bool

	// Events receives watch firings for this connection.
	Events *sim.Chan[WatchEvent]
}

// Dom returns the connection's domain.
func (c *Conn) Dom() xtypes.DomID { return c.dom }

// Privileged reports whether the connection bypasses node permissions.
func (c *Conn) Privileged() bool { return c.privileged }

// tx is an in-flight transaction: an overlay of uncommitted writes plus the
// set of paths read, for conflict detection at commit.
type tx struct {
	id       TxID
	dom      xtypes.DomID
	startGen uint64
	writes   map[string]*string // nil value = delete
	reads    map[string]bool
}

// Logic is the XenStore request processor. It is deliberately stateless
// beyond in-flight transactions: Restart drops those and the Logic reattaches
// to the same State, which is exactly the XenStore-Logic microreboot.
type Logic struct {
	state  *State
	env    *sim.Env
	conns  map[xtypes.DomID]*Conn
	txs    map[TxID]*tx
	nextTx TxID
	quota  Quota
	owned  map[xtypes.DomID]int // nodes owned per domain, for quota

	// RestartPerRequest microreboots the Logic after every committed
	// mutation, the policy Figure 5.1 assigns to XenStore-Logic. Restarts
	// are deferred while transactions are in flight so clients never see a
	// mid-transaction abort from the policy itself.
	RestartPerRequest bool

	restarts int

	// tel is the telemetry registry (nil = disabled); ops holds one
	// pre-resolved counter per operation kind so the per-request cost is a
	// map lookup plus an atomic add.
	tel *telemetry.Registry
	ops map[string]*telemetry.Counter
}

// opKinds is the fixed operation vocabulary for xenstore_requests_total.
var opKinds = []string{
	"read", "write", "mkdir", "rm", "directory",
	"get-perms", "set-perms", "watch", "unwatch", "tx-start", "tx-end",
}

// SetMetrics attaches a telemetry registry (nil = disabled) and resolves
// the per-operation request counters.
func (l *Logic) SetMetrics(reg *telemetry.Registry) {
	l.tel = reg
	if reg == nil {
		l.ops = nil
		return
	}
	l.ops = make(map[string]*telemetry.Counter, len(opKinds))
	for _, op := range opKinds {
		l.ops[op] = reg.Counter("xenstore_requests_total", telemetry.L("op", op))
	}
}

// countOp records one request of the given kind.
func (l *Logic) countOp(op string) {
	if l.ops == nil {
		return
	}
	l.ops[op].Inc()
}

// NewLogic returns a Logic attached to state.
func NewLogic(env *sim.Env, state *State) *Logic {
	return &Logic{
		state:  state,
		env:    env,
		conns:  make(map[xtypes.DomID]*Conn),
		txs:    make(map[TxID]*tx),
		nextTx: 1,
		quota:  DefaultQuota,
		owned:  make(map[xtypes.DomID]int),
	}
}

// SetQuota replaces the per-domain quota.
func (l *Logic) SetQuota(q Quota) { l.quota = q }

// State returns the attached State.
func (l *Logic) State() *State { return l.state }

// Connect returns the connection for dom, creating it if needed.
func (l *Logic) Connect(dom xtypes.DomID, privileged bool) *Conn {
	if c, ok := l.conns[dom]; ok {
		c.privileged = privileged
		return c
	}
	c := &Conn{logic: l, dom: dom, privileged: privileged, Events: sim.NewChan[WatchEvent](l.env)}
	l.conns[dom] = c
	return c
}

// Disconnect tears down a domain's connection: its watches and in-flight
// transactions are dropped. Called on domain destruction.
func (l *Logic) Disconnect(dom xtypes.DomID) {
	l.state.removeDomainWatches(dom)
	for id, t := range l.txs {
		if t.dom == dom {
			delete(l.txs, id)
		}
	}
	if c, ok := l.conns[dom]; ok {
		c.Events.Close()
		delete(l.conns, dom)
	}
}

// Restart microreboots the Logic: every in-flight transaction aborts, the
// watch registry and tree (which live in State) survive. Clients see aborted
// transactions as ErrShutdown on their next operation and retry.
func (l *Logic) Restart() {
	l.txs = make(map[TxID]*tx)
	l.restarts++
}

// Restarts reports how many times the Logic has microrebooted.
func (l *Logic) Restarts() int { return l.restarts }

// maybeAutoRestart applies the per-request restart policy after a committed
// mutation. Because the Logic is stateless apart from in-flight
// transactions, the restart is free of observable effects: the tree and
// watch registry live in State.
func (l *Logic) maybeAutoRestart() {
	if l.RestartPerRequest && len(l.txs) == 0 {
		l.Restart()
	}
}

// --- permission checks -------------------------------------------------

func (c *Conn) canRead(n *node) bool {
	if c.privileged || n.owner == c.dom {
		return true
	}
	return n.readACL[c.dom] || n.readACL[xtypes.DomIDNone]
}

func (c *Conn) canWrite(n *node) bool {
	if c.privileged || n.owner == c.dom {
		return true
	}
	return n.writeACL[c.dom] || n.writeACL[xtypes.DomIDNone]
}

// writableAncestor finds the deepest existing node on the path and reports
// whether the connection may create children beneath it.
func (c *Conn) writableAncestor(parts []string) (*node, int, bool) {
	n := c.logic.state.root
	depth := 0
	for _, p := range parts {
		next := n.children[p]
		if next == nil {
			break
		}
		n = next
		depth++
	}
	return n, depth, c.canWrite(n)
}

// --- transactions --------------------------------------------------------

// TxStart opens a transaction for the connection.
func (c *Conn) TxStart() (TxID, error) {
	l := c.logic
	l.countOp("tx-start")
	inFlight := 0
	for _, t := range l.txs {
		if t.dom == c.dom {
			inFlight++
		}
	}
	if !c.privileged && inFlight >= l.quota.MaxTransactions {
		return TxNone, fmt.Errorf("xenstore: %v transactions: %w", c.dom, xtypes.ErrQuota)
	}
	id := l.nextTx
	l.nextTx++
	l.txs[id] = &tx{
		id:       id,
		dom:      c.dom,
		startGen: l.state.gen,
		writes:   make(map[string]*string),
		reads:    make(map[string]bool),
	}
	return id, nil
}

func (c *Conn) getTx(id TxID) (*tx, error) {
	if id == TxNone {
		return nil, nil
	}
	t, ok := c.logic.txs[id]
	if !ok {
		// Either a bogus ID or the Logic restarted underneath the client.
		return nil, fmt.Errorf("xenstore: tx %d: %w", id, xtypes.ErrShutdown)
	}
	if t.dom != c.dom {
		return nil, fmt.Errorf("xenstore: tx %d of %v used by %v: %w", id, t.dom, c.dom, xtypes.ErrPerm)
	}
	return t, nil
}

// TxEnd commits (commit=true) or aborts a transaction. Commit fails with
// ErrAgain when any path the transaction touched changed since TxStart; the
// caller retries, as in the real protocol.
func (c *Conn) TxEnd(id TxID, commit bool) error {
	c.logic.countOp("tx-end")
	t, err := c.getTx(id)
	if err != nil {
		return err
	}
	if t == nil {
		return fmt.Errorf("xenstore: txend without tx: %w", xtypes.ErrInvalid)
	}
	l := c.logic
	defer delete(l.txs, id)
	if !commit {
		return nil
	}
	// Conflict detection over everything touched.
	touched := make([]string, 0, len(t.reads)+len(t.writes))
	for p := range t.reads {
		touched = append(touched, p)
	}
	for p := range t.writes {
		touched = append(touched, p)
	}
	for _, p := range touched {
		parts, err := SplitPath(p)
		if err != nil {
			continue
		}
		if n := l.state.lookup(parts); n != nil && n.gen > t.startGen {
			return fmt.Errorf("xenstore: tx %d conflict on %s: %w", id, p, xtypes.ErrAgain)
		}
	}
	// Apply writes in path order so parents are created before children.
	paths := make([]string, 0, len(t.writes))
	for p := range t.writes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		v := t.writes[p]
		if v == nil {
			if err := c.rmCommitted(p); err != nil && !isNotFound(err) {
				return err
			}
		} else {
			if err := c.writeCommitted(p, *v); err != nil {
				return err
			}
		}
	}
	return nil
}

func isNotFound(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not found")
}

// --- core operations -----------------------------------------------------

// Read returns the value at path.
func (c *Conn) Read(id TxID, path string) (string, error) {
	c.logic.countOp("read")
	t, err := c.getTx(id)
	if err != nil {
		return "", err
	}
	parts, err := SplitPath(path)
	if err != nil {
		return "", err
	}
	if t != nil {
		t.reads[path] = true
		if v, ok := t.writes[path]; ok {
			if v == nil {
				return "", fmt.Errorf("xenstore: read %s: %w", path, xtypes.ErrNotFound)
			}
			return *v, nil
		}
	}
	n := c.logic.state.lookup(parts)
	if n == nil {
		return "", fmt.Errorf("xenstore: read %s: %w", path, xtypes.ErrNotFound)
	}
	if !c.canRead(n) {
		return "", fmt.Errorf("xenstore: read %s by %v: %w", path, c.dom, xtypes.ErrPerm)
	}
	return string(n.value), nil
}

// writeCommitted applies a write directly to the tree, firing watches.
func (c *Conn) writeCommitted(path, value string) error {
	l := c.logic
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("xenstore: write to root: %w", xtypes.ErrInvalid)
	}
	anc, depth, ok := c.writableAncestor(parts)
	if !ok {
		return fmt.Errorf("xenstore: write %s by %v: %w", path, c.dom, xtypes.ErrPerm)
	}
	// Creating (len(parts)-depth) nodes; enforce the ownership quota.
	creating := len(parts) - depth
	if creating > 0 && !c.privileged && l.owned[c.dom]+creating > l.quota.MaxNodes {
		return fmt.Errorf("xenstore: %v node quota: %w", c.dom, xtypes.ErrQuota)
	}
	n := anc
	for _, p := range parts[depth:] {
		child := newNode(c.dom)
		n.children[p] = child
		n = child
		l.owned[c.dom]++
	}
	if creating == 0 {
		// Node existed: need write perm on it specifically.
		n = l.state.lookup(parts)
		if !c.canWrite(n) {
			return fmt.Errorf("xenstore: write %s by %v: %w", path, c.dom, xtypes.ErrPerm)
		}
	}
	n.value = []byte(value)
	l.state.gen++
	n.gen = l.state.gen
	l.state.mutations++
	l.state.fireWatches(path)
	return nil
}

// Write stores value at path, creating intermediate nodes as needed.
func (c *Conn) Write(id TxID, path, value string) error {
	c.logic.countOp("write")
	return c.write(id, path, value)
}

// Mkdir creates an empty node at path.
func (c *Conn) Mkdir(id TxID, path string) error {
	c.logic.countOp("mkdir")
	return c.write(id, path, "")
}

func (c *Conn) write(id TxID, path, value string) error {
	t, err := c.getTx(id)
	if err != nil {
		return err
	}
	if t != nil {
		v := value
		t.writes[path] = &v
		return nil
	}
	err = c.writeCommitted(path, value)
	c.logic.maybeAutoRestart()
	return err
}

// rmCommitted removes the subtree at path.
func (c *Conn) rmCommitted(path string) error {
	l := c.logic
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("xenstore: rm of root: %w", xtypes.ErrInvalid)
	}
	parent, leaf := l.state.lookupParent(parts)
	if parent == nil || parent.children[leaf] == nil {
		return fmt.Errorf("xenstore: rm %s: %w", path, xtypes.ErrNotFound)
	}
	target := parent.children[leaf]
	if !c.canWrite(target) && !c.canWrite(parent) {
		return fmt.Errorf("xenstore: rm %s by %v: %w", path, c.dom, xtypes.ErrPerm)
	}
	// Account owned nodes of the removed subtree.
	var countOwned func(n *node)
	countOwned = func(n *node) {
		l.owned[n.owner]--
		for _, ch := range n.children {
			countOwned(ch)
		}
	}
	countOwned(target)
	delete(parent.children, leaf)
	l.state.gen++
	parent.gen = l.state.gen
	l.state.mutations++
	l.state.fireWatches(path)
	return nil
}

// Rm removes the subtree at path.
func (c *Conn) Rm(id TxID, path string) error {
	c.logic.countOp("rm")
	t, err := c.getTx(id)
	if err != nil {
		return err
	}
	if t != nil {
		t.writes[path] = nil
		return nil
	}
	err = c.rmCommitted(path)
	c.logic.maybeAutoRestart()
	return err
}

// Directory lists the children of path in sorted order.
func (c *Conn) Directory(id TxID, path string) ([]string, error) {
	c.logic.countOp("directory")
	t, err := c.getTx(id)
	if err != nil {
		return nil, err
	}
	if t != nil {
		t.reads[path] = true
	}
	parts, err := SplitPath(path)
	if err != nil {
		return nil, err
	}
	n := c.logic.state.lookup(parts)
	if n == nil {
		return nil, fmt.Errorf("xenstore: directory %s: %w", path, xtypes.ErrNotFound)
	}
	if !c.canRead(n) {
		return nil, fmt.Errorf("xenstore: directory %s by %v: %w", path, c.dom, xtypes.ErrPerm)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// GetPerms returns the permissions of the node at path.
func (c *Conn) GetPerms(path string) (Perms, error) {
	c.logic.countOp("get-perms")
	parts, err := SplitPath(path)
	if err != nil {
		return Perms{}, err
	}
	n := c.logic.state.lookup(parts)
	if n == nil {
		return Perms{}, fmt.Errorf("xenstore: getperms %s: %w", path, xtypes.ErrNotFound)
	}
	if !c.canRead(n) {
		return Perms{}, fmt.Errorf("xenstore: getperms %s by %v: %w", path, c.dom, xtypes.ErrPerm)
	}
	p := Perms{Owner: n.owner}
	for d := range n.readACL {
		p.Read = append(p.Read, d)
	}
	for d := range n.writeACL {
		p.Write = append(p.Write, d)
	}
	sort.Slice(p.Read, func(i, j int) bool { return p.Read[i] < p.Read[j] })
	sort.Slice(p.Write, func(i, j int) bool { return p.Write[i] < p.Write[j] })
	return p, nil
}

// SetPerms replaces the permissions of the node at path. Only the owner or a
// privileged connection may do so.
func (c *Conn) SetPerms(path string, perms Perms) error {
	c.logic.countOp("set-perms")
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	n := c.logic.state.lookup(parts)
	if n == nil {
		return fmt.Errorf("xenstore: setperms %s: %w", path, xtypes.ErrNotFound)
	}
	if !c.privileged && n.owner != c.dom {
		return fmt.Errorf("xenstore: setperms %s by %v: %w", path, c.dom, xtypes.ErrPerm)
	}
	if n.owner != perms.Owner {
		c.logic.owned[n.owner]--
		c.logic.owned[perms.Owner]++
	}
	n.owner = perms.Owner
	n.readACL = make(map[xtypes.DomID]bool)
	n.writeACL = make(map[xtypes.DomID]bool)
	for _, d := range perms.Read {
		n.readACL[d] = true
	}
	for _, d := range perms.Write {
		n.writeACL[d] = true
	}
	return nil
}

// Watch registers for change events on path (and its subtree). Per protocol,
// a synthetic initial event fires immediately on registration.
func (c *Conn) Watch(path, token string) error {
	c.logic.countOp("watch")
	if _, err := SplitPath(path); err != nil {
		return err
	}
	if !c.privileged && c.logic.state.WatchCount(c.dom) >= c.logic.quota.MaxWatches {
		return fmt.Errorf("xenstore: %v watch quota: %w", c.dom, xtypes.ErrQuota)
	}
	var canSee func(string) bool
	if !c.privileged {
		canSee = func(mutated string) bool {
			parts, err := SplitPath(mutated)
			if err != nil {
				return false
			}
			n := c.logic.state.lookup(parts)
			if n == nil {
				// Deletions: visible, as the node (and its ACL) are gone;
				// the event carries no contents.
				return true
			}
			return c.canRead(n)
		}
	}
	c.logic.state.addWatch(c.dom, path, token, func(ev WatchEvent) { c.Events.Send(ev) }, canSee)
	c.Events.Send(WatchEvent{Path: path, Token: token})
	return nil
}

// Unwatch removes a registration.
func (c *Conn) Unwatch(path, token string) {
	c.logic.countOp("unwatch")
	c.logic.state.removeWatch(c.dom, path, token)
}

// WaitWatch blocks p until the next watch event arrives on the connection.
func (c *Conn) WaitWatch(p *sim.Proc) (WatchEvent, bool) {
	return c.Events.Recv(p)
}

// WaitValue blocks p until path holds want, consuming watch events for the
// connection. The caller must have registered a watch covering path. This is
// the idiom split drivers use to wait for state transitions.
func (c *Conn) WaitValue(p *sim.Proc, path, want string) bool {
	for {
		if v, err := c.Read(TxNone, path); err == nil && v == want {
			return true
		}
		if _, ok := c.Events.Recv(p); !ok {
			return false
		}
	}
}

// WaitValueTimeout is WaitValue with a deadline.
func (c *Conn) WaitValueTimeout(p *sim.Proc, path, want string, d sim.Duration) bool {
	deadline := c.logic.env.Now().Add(d)
	for {
		if v, err := c.Read(TxNone, path); err == nil && v == want {
			return true
		}
		remain := deadline.Sub(c.logic.env.Now())
		if remain <= 0 {
			return false
		}
		if _, ok := c.Events.RecvTimeout(p, remain); !ok {
			// Timed out or closed; loop once more to re-check the value.
			if v, err := c.Read(TxNone, path); err == nil && v == want {
				return true
			}
			return false
		}
	}
}
