package xenstore

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	l := NewLogic(env, NewState())
	c := l.Connect(0, true)
	c.Write(TxNone, "/local/domain/5/name", "guest5")
	c.Write(TxNone, "/local/domain/5/device/vif/0/state", "connected")
	c.Write(TxNone, "/tool/version", "4.1.0")
	c.SetPerms("/local/domain/5/name", Perms{Owner: 5, Read: []xtypes.DomID{7, xtypes.DomIDNone}})

	var buf bytes.Buffer
	if err := l.State().Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Identical dumps.
	a, b := l.State().Dump(), restored.Dump()
	if len(a) != len(b) {
		t.Fatalf("dump sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}

	// Permissions survive: a fresh Logic on the restored state enforces the
	// same ACLs.
	l2 := NewLogic(env, restored)
	g7 := l2.Connect(7, false)
	if _, err := g7.Read(TxNone, "/local/domain/5/name"); err != nil {
		t.Fatalf("ACL read after restore: %v", err)
	}
	g9 := l2.Connect(9, false)
	if err := g9.Write(TxNone, "/local/domain/5/name", "x"); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("write after restore: %v", err)
	}
	owner := l2.Connect(5, false)
	if err := owner.Write(TxNone, "/local/domain/5/name", "renamed"); err != nil {
		t.Fatalf("owner write after restore: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadState(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadState(strings.NewReader(`{"version":9,"nodes":[]}`)); !errors.Is(err, xtypes.ErrInvalid) {
		t.Fatalf("future version accepted: %v", err)
	}
}

// Property: Save→Load is an identity on the dump for arbitrary small trees.
func TestSaveLoadProperty(t *testing.T) {
	f := func(keys []uint8, vals []uint8) bool {
		env := sim.NewEnv(1)
		l := NewLogic(env, NewState())
		c := l.Connect(0, true)
		for i, k := range keys {
			path := "/k" + string(rune('a'+k%8)) + "/v" + string(rune('a'+k%5))
			v := "x"
			if len(vals) > 0 {
				v = string(rune('0' + vals[i%len(vals)]%10))
			}
			if err := c.Write(TxNone, path, v); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := l.State().Save(&buf); err != nil {
			return false
		}
		restored, err := LoadState(&buf)
		if err != nil {
			return false
		}
		a, b := l.State().Dump(), restored.Dump()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPerRequestRestartPolicy(t *testing.T) {
	env := sim.NewEnv(1)
	l := NewLogic(env, NewState())
	l.RestartPerRequest = true
	c := l.Connect(0, true)
	c.Watch("/svc", "tok")
	for i := 0; i < 5; i++ {
		if err := c.Write(TxNone, "/svc/key", "v"); err != nil {
			t.Fatal(err)
		}
	}
	if l.Restarts() != 5 {
		t.Fatalf("restarts = %d, want one per mutation", l.Restarts())
	}
	// Contents and watches survive every restart.
	if v, err := c.Read(TxNone, "/svc/key"); err != nil || v != "v" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if l.State().WatchCount(0) != 1 {
		t.Fatal("watch lost")
	}
	// Rm also triggers a restart.
	if err := c.Rm(TxNone, "/svc/key"); err != nil {
		t.Fatal(err)
	}
	if l.Restarts() != 6 {
		t.Fatalf("restarts after rm = %d", l.Restarts())
	}
}

func TestPerRequestRestartDeferredDuringTransactions(t *testing.T) {
	env := sim.NewEnv(1)
	l := NewLogic(env, NewState())
	l.RestartPerRequest = true
	c := l.Connect(0, true)
	id, err := c.TxStart()
	if err != nil {
		t.Fatal(err)
	}
	// A concurrent non-transactional write must not restart the Logic while
	// the transaction is open — that would abort it spuriously.
	if err := c.Write(TxNone, "/other", "x"); err != nil {
		t.Fatal(err)
	}
	if l.Restarts() != 0 {
		t.Fatal("restarted with a transaction in flight")
	}
	c.Write(id, "/tx/key", "v")
	if err := c.TxEnd(id, true); err != nil {
		t.Fatal(err)
	}
	// The next standalone mutation restarts as usual.
	c.Write(TxNone, "/after", "x")
	if l.Restarts() != 1 {
		t.Fatalf("restarts = %d", l.Restarts())
	}
}
