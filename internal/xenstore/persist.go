package xenstore

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"xoar/internal/xtypes"
)

// Persistence implements the §7.1 future-work item: "XenStore could
// potentially be restarted by persisting its state to disk, and checking and
// recovering that state on restart." Save serializes the full tree —
// values, ownership and ACLs — and Load reconstructs an equivalent State, so
// even the long-lived XenStore-State shard becomes replaceable. Watches are
// deliberately not persisted: they are connection-scoped, and reconnecting
// clients re-register them, exactly as they re-negotiate rings.

// persistNode is the serialized form of one tree node.
type persistNode struct {
	Path  string   `json:"path"`
	Value string   `json:"value"`
	Owner uint32   `json:"owner"`
	Read  []uint32 `json:"read,omitempty"`
	Write []uint32 `json:"write,omitempty"`
	Gen   uint64   `json:"gen"`
}

// persistImage is the on-disk format.
type persistImage struct {
	Version   int           `json:"version"`
	Gen       uint64        `json:"gen"`
	Mutations int           `json:"mutations"`
	Nodes     []persistNode `json:"nodes"`
}

// Save writes the State's contents to w.
func (s *State) Save(w io.Writer) error {
	img := persistImage{Version: 1, Gen: s.gen, Mutations: s.mutations}
	var walk func(prefix string, n *node)
	walk = func(prefix string, n *node) {
		if prefix != "" {
			pn := persistNode{Path: prefix, Value: string(n.value), Owner: uint32(n.owner), Gen: n.gen}
			for d := range n.readACL {
				pn.Read = append(pn.Read, uint32(d))
			}
			for d := range n.writeACL {
				pn.Write = append(pn.Write, uint32(d))
			}
			sort.Slice(pn.Read, func(i, j int) bool { return pn.Read[i] < pn.Read[j] })
			sort.Slice(pn.Write, func(i, j int) bool { return pn.Write[i] < pn.Write[j] })
			img.Nodes = append(img.Nodes, pn)
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			walk(prefix+"/"+name, n.children[name])
		}
	}
	walk("", s.root)
	enc := json.NewEncoder(w)
	return enc.Encode(img)
}

// LoadState reconstructs a State from a Save image.
func LoadState(r io.Reader) (*State, error) {
	var img persistImage
	if err := json.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("xenstore: load: %w", err)
	}
	if img.Version != 1 {
		return nil, fmt.Errorf("xenstore: load: image version %d: %w", img.Version, xtypes.ErrInvalid)
	}
	s := NewState()
	s.gen = img.Gen
	s.mutations = img.Mutations
	for _, pn := range img.Nodes {
		parts, err := SplitPath(pn.Path)
		if err != nil {
			return nil, err
		}
		n := s.root
		for _, p := range parts {
			child := n.children[p]
			if child == nil {
				child = newNode(xtypes.DomID(pn.Owner))
				n.children[p] = child
			}
			n = child
		}
		n.value = []byte(pn.Value)
		n.owner = xtypes.DomID(pn.Owner)
		n.gen = pn.Gen
		for _, d := range pn.Read {
			n.readACL[xtypes.DomID(d)] = true
		}
		for _, d := range pn.Write {
			n.writeACL[xtypes.DomID(d)] = true
		}
	}
	return s, nil
}
