package xenstore

import (
	"strings"
	"testing"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// nullComputer satisfies Computer without a hypervisor.
type nullComputer struct{ charged sim.Duration }

func (n *nullComputer) Compute(p *sim.Proc, dom xtypes.DomID, d sim.Duration) {
	n.charged += d
	p.Sleep(d)
}

func wireRig(t *testing.T) (*sim.Env, *Server, *Client, *nullComputer) {
	t.Helper()
	env, srv, cl, cpu, _ := wireRigFull(t)
	return env, srv, cl, cpu
}

func wireRigFull(t *testing.T) (*sim.Env, *Server, *Client, *nullComputer, *Logic) {
	t.Helper()
	env := sim.NewEnv(1)
	logic := NewLogic(env, NewState())
	cpu := &nullComputer{}
	srv := NewServer(logic, 2, cpu)
	cl := srv.Serve(env, 0, true) // privileged client, like a toolstack
	return env, srv, cl, cpu, logic
}

func TestWireReadWriteRoundTrip(t *testing.T) {
	env, srv, cl, cpu := wireRig(t)
	env.Spawn("client", func(p *sim.Proc) {
		if err := cl.Write(p, TxNone, "/local/domain/5/name", "g5"); err != nil {
			t.Error(err)
			return
		}
		v, err := cl.Read(p, TxNone, "/local/domain/5/name")
		if err != nil || v != "g5" {
			t.Errorf("read = %q, %v", v, err)
		}
		names, err := cl.Directory(p, TxNone, "/local/domain")
		if err != nil || len(names) != 1 || names[0] != "5" {
			t.Errorf("directory = %v, %v", names, err)
		}
	})
	env.RunFor(sim.Second)
	env.Shutdown()
	if srv.Handled != 3 {
		t.Fatalf("handled = %d", srv.Handled)
	}
	if cpu.charged != 3*wireOpCPU {
		t.Fatalf("cpu charged = %v", cpu.charged)
	}
}

func TestWireErrorsCrossTheRing(t *testing.T) {
	env, _, cl, _ := wireRig(t)
	env.Spawn("client", func(p *sim.Proc) {
		_, err := cl.Read(p, TxNone, "/missing")
		if err == nil || !strings.Contains(err.Error(), "not found") {
			t.Errorf("missing read over wire: %v", err)
		}
		if err := cl.Rm(p, TxNone, "bad-path"); err == nil {
			t.Error("bad path accepted over wire")
		}
	})
	env.RunFor(sim.Second)
	env.Shutdown()
}

func TestWireTransactions(t *testing.T) {
	env, _, cl, _ := wireRig(t)
	env.Spawn("client", func(p *sim.Proc) {
		tx, err := cl.TxStart(p)
		if err != nil || tx == TxNone {
			t.Errorf("txstart: %v %v", tx, err)
			return
		}
		cl.Write(p, tx, "/a", "1")
		if v, _ := cl.Read(p, TxNone, "/a"); v != "" {
			t.Error("dirty read over wire")
		}
		if err := cl.TxEnd(p, tx, true); err != nil {
			t.Error(err)
		}
		if v, _ := cl.Read(p, TxNone, "/a"); v != "1" {
			t.Error("commit lost over wire")
		}
	})
	env.RunFor(sim.Second)
	env.Shutdown()
}

func TestWireWatchEvents(t *testing.T) {
	env, _, cl, _ := wireRig(t)
	var events []WatchEvent
	env.Spawn("watcher", func(p *sim.Proc) {
		if err := cl.Watch(p, "/dev", "tok"); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 2; i++ { // initial synthetic + one real
			ev, err := cl.NextEvent(p)
			if err != nil {
				t.Error(err)
				return
			}
			events = append(events, ev)
		}
	})
	env.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		cl.Write(p, TxNone, "/dev/vif/0", "up")
	})
	env.RunFor(sim.Second)
	env.Shutdown()
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if events[1].Path != "/dev/vif/0" || events[1].Token != "tok" {
		t.Fatalf("event = %+v", events[1])
	}
}

func TestWireUnprivilegedClientEnforced(t *testing.T) {
	env := sim.NewEnv(1)
	logic := NewLogic(env, NewState())
	srv := NewServer(logic, 2, nil)
	priv := srv.Serve(env, 0, true)
	guest := srv.Serve(env, 5, false)
	env.Spawn("test", func(p *sim.Proc) {
		priv.Write(p, TxNone, "/secret", "root-only")
		if _, err := guest.Read(p, TxNone, "/secret"); err == nil {
			t.Error("unprivileged wire client read a private node")
		}
	})
	env.RunFor(sim.Second)
	env.Shutdown()
}

func TestWireSurvivesLogicRestart(t *testing.T) {
	env, _, cl, _, logic := wireRigFull(t)
	env.Spawn("client", func(p *sim.Proc) {
		cl.Write(p, TxNone, "/persist", "v")
		tx, _ := cl.TxStart(p)
		// Logic microreboots under the live connection.
		logic.Restart()
		// The transaction is gone; the data is not; the ring still works.
		if err := cl.TxEnd(p, tx, true); err == nil {
			t.Error("transaction survived a Logic restart")
		}
		if v, err := cl.Read(p, TxNone, "/persist"); err != nil || v != "v" {
			t.Errorf("data after restart = %q, %v", v, err)
		}
	})
	env.RunFor(sim.Second)
	env.Shutdown()
}
