// Package netdrv implements the paravirtualized split network driver (§4.5.1,
// §5.4): NetBack, a driver domain owning a physical NIC and exposing virtual
// interfaces (vifs) to guests, and NetFront, the guest-side virtual device.
//
// The connection handshake follows Xen's: the frontend allocates ring pages,
// grants them to the backend, allocates an unbound event channel, and
// advertises (ring-ref, event-channel) in XenStore; the backend watches for
// the entries, maps the grants, binds the channel and flips its state to
// connected. Data then flows directly between the two over the rings — the
// toolstack and XenStore are out of the data path, which is why
// disaggregation costs so little throughput (§6.1.4).
//
// The data path amortizes the way real netback does: pumps drain whole
// bursts of descriptors per wakeup (one fixed batch charge plus a
// per-descriptor increment), rings suppress notifies the peer did not ask
// for (req_event/rsp_event), and a vif may carry N queues with flows hashed
// across them so a backend scales past a single ring's slot count.
//
// NetBack is restartable (Figure 5.1): on a microreboot it breaks every vif,
// rolls back, re-attaches to the NIC, and either renegotiates with frontends
// via XenStore ("slow", ~260ms downtime) or restores the negotiated
// configuration from its recovery box ("fast", ~140ms), reproducing the two
// curves of Figure 6.3.
package netdrv

import (
	"fmt"

	"xoar/internal/hv"
	"xoar/internal/ring"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"

	hwpkg "xoar/internal/hw"
)

// Packet is a batch of payload bytes moving through the virtual network.
// Real rings carry page-sized segments; batching keeps event counts sane
// without changing the queueing structure. Seq doubles as the flow key for
// multi-queue vifs: packets with equal Seq always land on the same queue.
type Packet struct {
	Bytes int
	Seq   int64
}

// ack is the empty response completing a ring slot.
type ack struct{}

// Tunables of the backend model.
const (
	// ChunkBytes is the modelling batch size (matches a 16-segment TSO batch).
	ChunkBytes = 64 * 1024
	// perBatchCPU is the fixed cost of one pump wakeup: the event upcall and
	// scheduling. perDescCPU is the per-descriptor cost: copy, bridge hop,
	// grant ops. At batch size 1 they sum to the historical 18µs per-chunk
	// charge, so single-descriptor traffic (RPCs, pings) is priced as before.
	perBatchCPU = 6 * sim.Microsecond
	perDescCPU  = 12 * sim.Microsecond
	// frontChunkCPU is frontend CPU per chunk.
	frontChunkCPU = 12 * sim.Microsecond

	// reattachTime re-binds the snapshot image to live device state after a
	// rollback (interrupts, DMA rings). Paid by every restart flavour.
	reattachTime = 60 * sim.Millisecond
	// renegotiateTime is the XenStore round of re-publishing backend state
	// and re-validating every frontend's ring-refs ("slow" restarts).
	renegotiateTime = 200 * sim.Millisecond
	// recoveryBoxRestoreTime re-installs persisted vif configuration from
	// the recovery box ("fast" restarts), replacing renegotiation.
	recoveryBoxRestoreTime = 80 * sim.Millisecond
)

// vifQueue is one ring pair of a vif. Single-queue vifs (the default) have
// exactly one; multi-queue vifs spread flows across several, each with its
// own event channel and pump pair, as Linux xen-netback's queues do.
type vifQueue struct {
	id int

	// rx carries wire→guest packets: the backend produces, the guest consumes.
	rx *ring.Ring[Packet, ack]
	// tx carries guest→wire packets.
	tx *ring.Ring[Packet, ack]

	// inbox queues packets demuxed off the wire for this queue.
	inbox *sim.Chan[Packet]

	// Grant references and event-channel ports from the handshake; retained
	// for auditability (the security graph reads the tables, not these).
	rxRef, txRef xtypes.GrantRef
	backPort     xtypes.Port

	rxPump, txPump *sim.Proc
}

// vif is one guest's virtual interface, shared between back and front.
type vif struct {
	guest  xtypes.DomID
	queues []*vifQueue

	// rxSig wakes the frontend's multi-queue receive path whenever any
	// queue's rx ring gains a packet or breaks. (A single-queue frontend
	// blocks directly on its ring instead, which also arms rsp/req events.)
	rxSig *sim.Signal

	connected bool
}

// queueFor hashes a flow id onto one of the vif's queues. Fibonacci
// multiplicative hashing keeps adjacent flow ids well spread.
func (v *vif) queueFor(seq int64) *vifQueue {
	if len(v.queues) == 1 {
		return v.queues[0]
	}
	mix := uint64(seq) * 0x9E3779B97F4A7C15
	return v.queues[mix%uint64(len(v.queues))]
}

// Backend is NetBack: one per physical NIC (§5.4).
type Backend struct {
	H   *hv.Hypervisor
	Dom xtypes.DomID
	NIC *hwpkg.NIC
	XS  *xenstore.Conn

	vifs    map[xtypes.DomID]*vif
	serving *sim.Gate

	// TxSink, when set, receives every packet after it leaves the wire —
	// the workload models use it to route guest responses back to their
	// simulated LAN peers.
	TxSink func(guest xtypes.DomID, pkt Packet)

	// Counters for the experiments.
	DroppedPackets int64
	ForwardedRx    int64
	ForwardedTx    int64
	RestartCount   int

	// Pre-resolved telemetry handles; nil when telemetry is disabled.
	rttRx, rttTx              *telemetry.Histogram
	batchRx, batchTx          *telemetry.Histogram
	notifySentRx, notifySupRx *telemetry.Counter
	notifySentTx, notifySupTx *telemetry.Counter
}

// DataPathStats aggregates ring descriptor and notify-decision counters
// across every vif queue of the backend. The tx direction counts the
// frontends' request pushes (guest→wire), rx the backend's (wire→guest);
// Descs/Notifies is the descriptors-per-wakeup ratio of Figure 6.1's
// amortization argument.
type DataPathStats struct {
	TxDescs, TxNotifies, TxSuppressed int64
	RxDescs, RxNotifies, RxSuppressed int64
}

// DataPathStats snapshots the aggregate ring counters.
func (b *Backend) DataPathStats() DataPathStats {
	var s DataPathStats
	for _, v := range b.vifs {
		for _, q := range v.queues {
			tst := q.tx.Stats()
			s.TxDescs += tst.ReqPushed
			s.TxNotifies += tst.NotifiesToBack
			s.TxSuppressed += tst.SuppressedToBack
			rst := q.rx.Stats()
			s.RxDescs += rst.ReqPushed
			s.RxNotifies += rst.NotifiesToBack
			s.RxSuppressed += rst.SuppressedToBack
		}
	}
	return s
}

// SetAlwaysNotify switches every vif ring between suppressed (default) and
// notify-per-push operation. The ablation arm of the batching benchmarks
// uses it to measure the per-descriptor baseline.
func (b *Backend) SetAlwaysNotify(on bool) {
	for _, v := range b.vifs {
		for _, q := range v.queues {
			q.rx.AlwaysNotify = on
			q.tx.AlwaysNotify = on
		}
	}
}

// SetMetrics attaches a telemetry registry (nil = disabled). The ring
// round-trip histograms measure, per batch, the time from entering the
// backend (wire inbox / tx ring pop) to completion (pushed to the guest
// ring / handed to the NIC and acked). Batch-size histograms count
// descriptors serviced per pump wakeup; the notify counters split the
// event-channel signals the rings sent versus suppressed (DESIGN.md §8).
func (b *Backend) SetMetrics(reg *telemetry.Registry) {
	b.rttRx = reg.Histogram("netback_ring_rtt_us", telemetry.LatencyUSBuckets, telemetry.L("dir", "rx"))
	b.rttTx = reg.Histogram("netback_ring_rtt_us", telemetry.LatencyUSBuckets, telemetry.L("dir", "tx"))
	b.batchRx = reg.Histogram("netback_batch_size", telemetry.DepthBuckets, telemetry.L("dir", "rx"))
	b.batchTx = reg.Histogram("netback_batch_size", telemetry.DepthBuckets, telemetry.L("dir", "tx"))
	b.notifySentRx = reg.Counter("netback_notify_sent_total", telemetry.L("dir", "rx"))
	b.notifySupRx = reg.Counter("netback_notify_suppressed_total", telemetry.L("dir", "rx"))
	b.notifySentTx = reg.Counter("netback_notify_sent_total", telemetry.L("dir", "tx"))
	b.notifySupTx = reg.Counter("netback_notify_suppressed_total", telemetry.L("dir", "tx"))
}

// NewBackend constructs NetBack in domain dom, driving nic.
func NewBackend(h *hv.Hypervisor, dom xtypes.DomID, nic *hwpkg.NIC, xs *xenstore.Conn) *Backend {
	b := &Backend{
		H:       h,
		Dom:     dom,
		NIC:     nic,
		XS:      xs,
		vifs:    make(map[xtypes.DomID]*vif),
		serving: sim.NewGate(h.Env),
	}
	return b
}

// Start initializes the physical NIC and opens for service. Run inside a sim
// process during boot; the NIC init cost is the dominant term.
func (b *Backend) Start(p *sim.Proc) {
	if !b.NIC.Initialized() {
		b.NIC.Reset(p)
	}
	b.XS.Write(xenstore.TxNone, b.backendPath(), "")
	b.XS.Write(xenstore.TxNone, b.backendPath()+"/state", "connected")
	b.serving.Open()
}

// Name implements snapshot.Restartable.
func (b *Backend) Name() string { return "netback" }

// DomID implements snapshot.Restartable (method name Dom is taken by field).
func (b *Backend) domID() xtypes.DomID { return b.Dom }

func (b *Backend) backendPath() string {
	return fmt.Sprintf("/local/domain/%d/backend/vif", b.Dom)
}

func (b *Backend) vifPath(guest xtypes.DomID) string {
	return fmt.Sprintf("%s/%d", b.backendPath(), guest)
}

func frontPath(guest xtypes.DomID) string {
	return fmt.Sprintf("/local/domain/%d/device/vif/0", guest)
}

// queueRefPath is the advertisement key for queue qi. Queue 0 keeps the
// legacy single-queue key so pre-multi-queue backends and watches still
// match; extra queues get suffixed keys, like xen-netback's queue-N dirs.
func queueRefPath(guest xtypes.DomID, qi int) string {
	if qi == 0 {
		return frontPath(guest) + "/ring-ref"
	}
	return fmt.Sprintf("%s/ring-ref-%d", frontPath(guest), qi)
}

// Serving reports whether the backend is accepting traffic.
func (b *Backend) Serving() bool { return !b.serving.Closed() }

// AcceptConnection completes the backend half of the split-driver handshake
// for guest: map the granted ring pages of every queue, bind the event
// channels, mark the vif connected, and start the pumps. Called from the
// backend's event loop when the frontend's XenStore entries appear.
func (b *Backend) AcceptConnection(p *sim.Proc, guest xtypes.DomID) error {
	v, ok := b.vifs[guest]
	if !ok {
		return fmt.Errorf("netback: no vif for %v: %w", guest, xtypes.ErrNotFound)
	}
	for _, q := range v.queues {
		// Read the frontend's advertised ring grants and event channel.
		refStr, err := b.XS.Read(xenstore.TxNone, queueRefPath(guest, q.id))
		if err != nil {
			return err
		}
		var rxRef, txRef xtypes.GrantRef
		var port xtypes.Port
		if _, err := fmt.Sscanf(refStr, "%d/%d/%d", &rxRef, &txRef, &port); err != nil {
			return fmt.Errorf("netback: bad ring-ref %q: %w", refStr, xtypes.ErrInvalid)
		}
		// Map the ring pages through the grant mechanism: this is where the
		// IVC policy bites if the guest was never linked to this shard.
		rxMap, err := b.H.MapGrant(b.Dom, guest, rxRef, true)
		if err != nil {
			return err
		}
		txMap, err := b.H.MapGrant(b.Dom, guest, txRef, true)
		if err != nil {
			rxMap.Unmap()
			return err
		}
		backPort, err := b.H.EvtchnBind(b.Dom, guest, port)
		if err != nil {
			rxMap.Unmap()
			txMap.Unmap()
			return err
		}
		q.rxRef, q.txRef, q.backPort = rxRef, txRef, backPort
	}
	v.connected = true
	b.XS.Write(xenstore.TxNone, b.vifPath(guest)+"/state", "connected")
	b.startPumps(v)
	return nil
}

// WatchAndServe runs the backend's autonomous event loop (§4.5.1): it
// registers a XenStore watch over the frontends' advertisement paths and
// completes the connection handshake whenever a frontend publishes its
// ring-refs — the backend needs no call from the frontend's side, exactly as
// netback's hotplug path works. Spawn it in a sim process; it exits when the
// connection's event stream closes.
//
// The synchronous path (Frontend.Connect calling AcceptConnection directly)
// remains for callers that drive both ends themselves.
func (b *Backend) WatchAndServe(p *sim.Proc) {
	if err := b.XS.Watch("/local", "netback-frontends"); err != nil {
		return
	}
	for {
		ev, ok := b.XS.WaitWatch(p)
		if !ok {
			return
		}
		// A frontend advertisement looks like
		// /local/domain/<g>/device/vif/0/ring-ref. Multi-queue frontends
		// publish their extra ring-ref-<n> keys first and the legacy key
		// last, so matching on it sees a complete advertisement.
		var g uint32
		var rest string
		if n, _ := fmt.Sscanf(ev.Path, "/local/domain/%d/device/vif/0/%s", &g, &rest); n != 2 || rest != "ring-ref" {
			continue
		}
		guest := xtypes.DomID(g)
		v, exists := b.vifs[guest]
		if !exists || v.connected {
			continue
		}
		if err := b.AcceptConnection(p, guest); err != nil {
			// Frontends linked to other backends, or malformed entries:
			// leave them for whichever backend owns the vif.
			continue
		}
	}
}

// CreateVif provisions a single-queue vif for guest. The toolstack calls
// this (through its XenStore writes) when attaching a network device.
func (b *Backend) CreateVif(guest xtypes.DomID) *vif {
	return b.CreateVifQueues(guest, 1)
}

// CreateVifQueues provisions a vif with n ring pairs. Flows are hashed
// across the queues; each queue gets its own pump pair, so a multi-queue
// vif scales past a single ring's slot count at 10G+ line rates.
func (b *Backend) CreateVifQueues(guest xtypes.DomID, n int) *vif {
	if n < 1 {
		n = 1
	}
	v := &vif{
		guest: guest,
		rxSig: sim.NewSignal(b.H.Env),
	}
	for qi := 0; qi < n; qi++ {
		v.queues = append(v.queues, &vifQueue{
			id:    qi,
			rx:    ring.New[Packet, ack](b.H.Env, ring.DefaultSlots),
			tx:    ring.New[Packet, ack](b.H.Env, ring.DefaultSlots),
			inbox: sim.NewChan[Packet](b.H.Env),
		})
	}
	b.vifs[guest] = v
	b.XS.Write(xenstore.TxNone, b.vifPath(guest)+"/state", "init")
	return v
}

// RemoveVif tears down a guest's vif (guest destroyed or detached).
func (b *Backend) RemoveVif(guest xtypes.DomID) {
	v, ok := b.vifs[guest]
	if !ok {
		return
	}
	b.stopPumps(v)
	for _, q := range v.queues {
		q.rx.Break()
		q.tx.Break()
	}
	v.rxSig.Broadcast()
	delete(b.vifs, guest)
	b.XS.Rm(xenstore.TxNone, b.vifPath(guest))
}

// startPumps spawns the per-queue forwarding processes. The descriptor
// buffers are allocated here, once per pump lifetime; the loops themselves
// (runRxPump/runTxPump) are declared hot and stay allocation-free.
func (b *Backend) startPumps(v *vif) {
	for _, q := range v.queues {
		q := q
		// rxPump: wire inbox -> rx ring, a burst per wakeup.
		q.rxPump = b.H.Env.Spawn(fmt.Sprintf("netback-rx-%v-q%d", v.guest, q.id), func(p *sim.Proc) {
			b.runRxPump(v, q, p, make([]Packet, ring.DefaultSlots))
		})
		// txPump: tx ring -> wire, draining the ring per wakeup.
		q.txPump = b.H.Env.Spawn(fmt.Sprintf("netback-tx-%v-q%d", v.guest, q.id), func(p *sim.Proc) {
			b.runTxPump(v, q, p, make([]Packet, ring.DefaultSlots), make([]ack, ring.DefaultSlots))
		})
	}
}

// runRxPump forwards wire-delivered packets from the queue's inbox onto the
// guest-facing rx ring, a burst per wakeup. This is the NetBack receive data
// path: steady state must not allocate.
//
//xoarlint:hot
func (b *Backend) runRxPump(v *vif, q *vifQueue, p *sim.Proc, buf []Packet) {
	for {
		pkt, ok := q.inbox.Recv(p)
		if !ok {
			return
		}
		// Drain whatever else the wire delivered while we slept:
		// the whole burst is serviced under one batch charge.
		buf[0] = pkt
		n := 1
		for n < len(buf) {
			more, ok := q.inbox.TryRecv()
			if !ok {
				break
			}
			buf[n] = more
			n++
		}
		start := p.Now()
		// Reap pending acks to free rx slots.
		for {
			if _, ok := q.rx.TryPopResponse(); !ok {
				break
			}
		}
		b.H.Compute(p, b.Dom, perBatchCPU+sim.Duration(n)*perDescCPU)
		before := q.rx.Stats()
		pushed := 0
		for pushed < n {
			k := q.rx.TryPushRequestBatch(buf[pushed:n])
			pushed += k
			if pushed == n {
				break
			}
			if k == 0 {
				// Ring full: the free slots are held by unconsumed
				// acks, so block on the next ack rather than raw
				// space.
				if _, err := q.rx.PopResponse(p); err != nil {
					// Ring broken mid-batch (restart): the in-hand
					// descriptor is the counted drop; the rest of
					// the burst is accounted like inbox residue
					// drained by Restart.
					b.DroppedPackets++
					return
				}
			}
		}
		after := q.rx.Stats()
		b.notifySentRx.Add(after.NotifiesToBack - before.NotifiesToBack)
		b.notifySupRx.Add(after.SuppressedToBack - before.SuppressedToBack)
		b.batchRx.Observe(float64(n))
		v.rxSig.Broadcast()
		b.ForwardedRx += int64(n)
		b.rttRx.Observe(float64(p.Now().Sub(start)) / float64(sim.Microsecond))
		// The ring's notify hook models the event-channel signal; the
		// hypercall itself is charged above.
	}
}

// runTxPump drains the guest-facing tx ring onto the wire, a batch per
// wakeup. This is the NetBack transmit data path: steady state must not
// allocate.
//
//xoarlint:hot
func (b *Backend) runTxPump(v *vif, q *vifQueue, p *sim.Proc, buf []Packet, acks []ack) {
	var prev ring.Stats
	for {
		n, err := q.tx.PopRequestBatch(p, buf)
		if err != nil {
			return // broken
		}
		start := p.Now()
		b.H.Compute(p, b.Dom, perBatchCPU+sim.Duration(n)*perDescCPU)
		for i := 0; i < n; i++ {
			b.NIC.Transmit(p, buf[i].Bytes)
		}
		if q.tx.Broken() {
			return
		}
		q.tx.PushResponseBatch(acks[:n])
		b.ForwardedTx += int64(n)
		b.batchTx.Observe(float64(n))
		cur := q.tx.Stats()
		b.notifySentTx.Add(cur.NotifiesToBack - prev.NotifiesToBack)
		b.notifySupTx.Add(cur.SuppressedToBack - prev.SuppressedToBack)
		prev = cur
		b.rttTx.Observe(float64(p.Now().Sub(start)) / float64(sim.Microsecond))
		if b.TxSink != nil {
			for i := 0; i < n; i++ {
				b.TxSink(v.guest, buf[i])
			}
		}
	}
}

func (b *Backend) stopPumps(v *vif) {
	for _, q := range v.queues {
		if q.rxPump != nil {
			q.rxPump.Kill()
			q.rxPump = nil
		}
		if q.txPump != nil {
			q.txPump.Kill()
			q.txPump = nil
		}
	}
}

// WireDeliver models a packet arriving from the physical wire for guest. It
// charges NIC receive time, then hands the packet to the flow's queue. It
// returns false — the packet is dropped — when the backend is mid-microreboot
// or the guest's vif is not connected; the sender's transport sees this as
// loss.
//
//xoarlint:hot
func (b *Backend) WireDeliver(p *sim.Proc, guest xtypes.DomID, bytes int, seq int64) bool {
	b.NIC.Receive(p, bytes)
	if b.serving.Closed() {
		b.DroppedPackets++
		return false
	}
	v, ok := b.vifs[guest]
	if !ok || !v.connected {
		b.DroppedPackets++
		return false
	}
	v.queueFor(seq).inbox.Send(Packet{Bytes: bytes, Seq: seq})
	return true
}

// Restart implements snapshot.Restartable: the microreboot recovery path.
// The engine has already rolled back memory; this re-attaches the NIC and
// re-establishes every vif.
func (b *Backend) Restart(p *sim.Proc, fast bool) {
	b.RestartCount++
	b.serving.Reset()
	// Break every ring: frontends observe the disconnect.
	for _, v := range b.vifs {
		b.stopPumps(v)
		for _, q := range v.queues {
			q.rx.Break()
			q.tx.Break()
			// Drain stale wire packets queued for the dead instance.
			for {
				if _, ok := q.inbox.TryRecv(); !ok {
					break
				}
			}
		}
		v.connected = false
		v.rxSig.Broadcast()
		b.XS.Write(xenstore.TxNone, b.vifPath(v.guest)+"/state", "init")
	}
	// Re-attach to live hardware (device state was left intact).
	p.Sleep(reattachTime)
	if fast {
		// Negotiated vif configuration survives in the recovery box.
		p.Sleep(recoveryBoxRestoreTime)
	} else {
		// Full XenStore renegotiation with every frontend.
		p.Sleep(renegotiateTime)
	}
	for _, v := range b.vifs {
		for _, q := range v.queues {
			q.rx.Reset()
			q.tx.Reset()
		}
		v.connected = true
		b.XS.Write(xenstore.TxNone, b.vifPath(v.guest)+"/state", "connected")
		b.startPumps(v)
	}
	b.XS.Write(xenstore.TxNone, b.backendPath()+"/state", "connected")
	b.serving.Open()
}

// restartableAdapter lets Backend satisfy snapshot.Restartable without
// renaming its exported Dom field.
type restartableAdapter struct{ *Backend }

// Dom implements snapshot.Restartable.
func (a restartableAdapter) Dom() xtypes.DomID { return a.domID() }

// AsRestartable returns the snapshot.Restartable view of the backend.
func (b *Backend) AsRestartable() interface {
	Dom() xtypes.DomID
	Name() string
	Restart(p *sim.Proc, fast bool)
} {
	return restartableAdapter{b}
}
