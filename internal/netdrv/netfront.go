package netdrv

import (
	"fmt"

	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"

	hvpkg "xoar/internal/hv"
)

// Frontend is NetFront: the guest-side virtual network device.
type Frontend struct {
	H     *hvpkg.Hypervisor
	Guest xtypes.DomID
	XS    *xenstore.Conn

	back *Backend
	v    *vif

	// ReceivedBytes counts payload delivered to the guest.
	ReceivedBytes int64
	SentBytes     int64
}

// NewFrontend constructs the guest-side driver.
func NewFrontend(h *hvpkg.Hypervisor, guest xtypes.DomID, xs *xenstore.Conn) *Frontend {
	return &Frontend{H: h, Guest: guest, XS: xs}
}

// advertise grants every queue's ring pages, allocates the event channels,
// and publishes the per-queue (ring-refs, port) tuples in XenStore. Extra
// queues are written before the legacy queue-0 key so a backend triggered
// by the legacy key always sees a complete advertisement.
func (f *Frontend) advertise(back *Backend) error {
	v, ok := back.vifs[f.Guest]
	if !ok {
		return fmt.Errorf("netfront: backend has no vif for %v: %w", f.Guest, xtypes.ErrNotFound)
	}
	f.back = back
	f.v = v
	type adv struct {
		path, val string
	}
	advs := make([]adv, 0, len(v.queues))
	for qi := range v.queues {
		// Two ring pages per queue (rx then tx), laid out from pfn 10 of
		// the guest's space.
		rxRef, err := f.H.Grant(f.Guest, back.Dom, 10+2*xtypes.PFN(qi), false)
		if err != nil {
			return err
		}
		txRef, err := f.H.Grant(f.Guest, back.Dom, 11+2*xtypes.PFN(qi), false)
		if err != nil {
			return err
		}
		port, err := f.H.EvtchnAllocUnbound(f.Guest, back.Dom)
		if err != nil {
			return err
		}
		advs = append(advs, adv{queueRefPath(f.Guest, qi), fmt.Sprintf("%d/%d/%d", rxRef, txRef, port)})
	}
	// Publish in reverse so the legacy queue-0 key lands last.
	for i := len(advs) - 1; i >= 0; i-- {
		if err := f.XS.Write(xenstore.TxNone, advs[i].path, advs[i].val); err != nil {
			return err
		}
		// Let the backend (and only it) read the advertisement.
		if err := f.XS.SetPerms(advs[i].path, xenstore.Perms{Owner: f.Guest, Read: []xtypes.DomID{back.Dom}}); err != nil {
			return err
		}
	}
	f.XS.Write(xenstore.TxNone, frontPath(f.Guest)+"/state", "initialised")
	return nil
}

// Connect performs the frontend half of the handshake against back:
// grant the ring pages, allocate the event channels, advertise everything
// in XenStore, then wait for the backend to flip to connected.
func (f *Frontend) Connect(p *sim.Proc, back *Backend) error {
	if err := f.advertise(back); err != nil {
		return err
	}
	if err := back.AcceptConnection(p, f.Guest); err != nil {
		return err
	}
	f.XS.Write(xenstore.TxNone, frontPath(f.Guest)+"/state", "connected")
	return nil
}

// Advertise performs only the frontend's half of the handshake and then
// waits for the backend's autonomous event loop (Backend.WatchAndServe) to
// pick the advertisement up and flip the vif to connected, as the real
// hotplug flow works. It fails after timeout if no backend reacts.
func (f *Frontend) Advertise(p *sim.Proc, back *Backend, timeout sim.Duration) error {
	if err := f.advertise(back); err != nil {
		return err
	}
	if !f.WaitReconnect(p, timeout) {
		return fmt.Errorf("netfront: no backend reacted to advertisement: %w", xtypes.ErrShutdown)
	}
	f.XS.Write(xenstore.TxNone, frontPath(f.Guest)+"/state", "connected")
	return nil
}

// Connected reports whether the vif is currently usable.
func (f *Frontend) Connected() bool {
	return f.v != nil && f.v.connected && !f.v.queues[0].rx.Broken()
}

// Queues reports the vif's queue count.
func (f *Frontend) Queues() int {
	if f.v == nil {
		return 0
	}
	return len(f.v.queues)
}

// recvOne charges guest CPU for a popped packet and acks its ring slot.
func (f *Frontend) recvOne(p *sim.Proc, q *vifQueue, pkt Packet) {
	f.H.Compute(p, f.Guest, frontChunkCPU)
	// Ack may race a Break between pop and push; a failed ack is harmless
	// (the whole ring is being reset).
	if !q.rx.Broken() {
		q.rx.PushResponse(ack{})
	}
	f.ReceivedBytes += int64(pkt.Bytes)
}

// Recv blocks until the next packet arrives on any queue, charges guest
// CPU, and acknowledges the ring slot. It returns an error when the backend
// disconnects mid-receive (microreboot); the caller should WaitReconnect.
func (f *Frontend) Recv(p *sim.Proc) (Packet, error) {
	if f.v == nil {
		return Packet{}, fmt.Errorf("netfront: not connected: %w", xtypes.ErrInvalid)
	}
	if len(f.v.queues) == 1 {
		// Single queue: block on the ring itself, which also arms
		// req_event so the backend's wake-up push notifies.
		q := f.v.queues[0]
		pkt, err := q.rx.PopRequest(p)
		if err != nil {
			return Packet{}, err
		}
		f.recvOne(p, q, pkt)
		return pkt, nil
	}
	for {
		for _, q := range f.v.queues {
			if q.rx.Broken() {
				return Packet{}, fmt.Errorf("netfront: rx ring broken: %w", xtypes.ErrShutdown)
			}
			if pkt, ok := q.rx.TryPopRequest(); ok {
				f.recvOne(p, q, pkt)
				return pkt, nil
			}
		}
		f.v.rxSig.Wait(p)
	}
}

// TryRecv is Recv without blocking, scanning every queue once.
func (f *Frontend) TryRecv(p *sim.Proc) (Packet, bool) {
	if f.v == nil {
		return Packet{}, false
	}
	for _, q := range f.v.queues {
		if q.rx.Broken() {
			return Packet{}, false
		}
		if pkt, ok := q.rx.TryPopRequest(); ok {
			f.recvOne(p, q, pkt)
			return pkt, true
		}
	}
	return Packet{}, false
}

// Send transmits a packet on its flow's queue, blocking while that tx ring
// is full and reaping acknowledgements. Returns an error on disconnect.
func (f *Frontend) Send(p *sim.Proc, bytes int, seq int64) error {
	if f.v == nil {
		return fmt.Errorf("netfront: not connected: %w", xtypes.ErrInvalid)
	}
	q := f.v.queueFor(seq)
	// Reap completions to free slots.
	for {
		if _, ok := q.tx.TryPopResponse(); !ok {
			break
		}
	}
	f.H.Compute(p, f.Guest, frontChunkCPU)
	// A full ring means completions are outstanding: harvest them (blocking)
	// instead of waiting on raw space, which only frees via this very loop.
	for !q.tx.TryPushRequest(Packet{Bytes: bytes, Seq: seq}) {
		if _, err := q.tx.PopResponse(p); err != nil {
			return err
		}
	}
	f.SentBytes += int64(bytes)
	return nil
}

// WaitReconnect blocks until the backend finishes a microreboot and the vif
// is connected again, or the timeout expires. Frontends call this after a
// Recv/Send error — virtual machine protocols are designed to renegotiate
// (§3.3), which is what makes driver VMs the ideal reboot container.
func (f *Frontend) WaitReconnect(p *sim.Proc, timeout sim.Duration) bool {
	deadline := f.H.Env.Now().Add(timeout)
	for f.H.Env.Now() < deadline {
		if f.Connected() {
			return true
		}
		// Poll on the backend's serving gate; the gate reopens when Restart
		// completes. A small poll interval stands in for the XenStore watch
		// wakeup without registering per-wait watches.
		p.Sleep(5 * sim.Millisecond)
	}
	return f.Connected()
}
