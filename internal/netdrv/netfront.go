package netdrv

import (
	"fmt"

	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"

	hvpkg "xoar/internal/hv"
)

// Frontend is NetFront: the guest-side virtual network device.
type Frontend struct {
	H     *hvpkg.Hypervisor
	Guest xtypes.DomID
	XS    *xenstore.Conn

	back *Backend
	v    *vif

	// ReceivedBytes counts payload delivered to the guest.
	ReceivedBytes int64
	SentBytes     int64
}

// NewFrontend constructs the guest-side driver.
func NewFrontend(h *hvpkg.Hypervisor, guest xtypes.DomID, xs *xenstore.Conn) *Frontend {
	return &Frontend{H: h, Guest: guest, XS: xs}
}

// Connect performs the frontend half of the handshake against back:
// grant the ring pages, allocate the event channel, advertise both in
// XenStore, then wait for the backend to flip to connected.
func (f *Frontend) Connect(p *sim.Proc, back *Backend) error {
	f.back = back
	v, ok := back.vifs[f.Guest]
	if !ok {
		return fmt.Errorf("netfront: backend has no vif for %v: %w", f.Guest, xtypes.ErrNotFound)
	}
	f.v = v

	// Grant two ring pages (rx at pfn 10, tx at pfn 11 of the guest's space)
	// to the backend domain. Fails unless the toolstack linked this guest to
	// the shard.
	rxRef, err := f.H.Grant(f.Guest, back.Dom, 10, false)
	if err != nil {
		return err
	}
	txRef, err := f.H.Grant(f.Guest, back.Dom, 11, false)
	if err != nil {
		return err
	}
	port, err := f.H.EvtchnAllocUnbound(f.Guest, back.Dom)
	if err != nil {
		return err
	}
	refPath := frontPath(f.Guest) + "/ring-ref"
	if err := f.XS.Write(xenstore.TxNone, refPath, fmt.Sprintf("%d/%d/%d", rxRef, txRef, port)); err != nil {
		return err
	}
	// Let the backend (and only it) read the advertisement.
	if err := f.XS.SetPerms(refPath, xenstore.Perms{Owner: f.Guest, Read: []xtypes.DomID{back.Dom}}); err != nil {
		return err
	}
	f.XS.Write(xenstore.TxNone, frontPath(f.Guest)+"/state", "initialised")

	if err := back.AcceptConnection(p, f.Guest); err != nil {
		return err
	}
	f.XS.Write(xenstore.TxNone, frontPath(f.Guest)+"/state", "connected")
	return nil
}

// Advertise performs only the frontend's half of the handshake — grant the
// ring pages, allocate the event channel, publish (ring-refs, port) in
// XenStore — and then waits for the backend's autonomous event loop
// (Backend.WatchAndServe) to pick the advertisement up and flip the vif to
// connected, as the real hotplug flow works. It fails after timeout if no
// backend reacts.
func (f *Frontend) Advertise(p *sim.Proc, back *Backend, timeout sim.Duration) error {
	f.back = back
	v, ok := back.vifs[f.Guest]
	if !ok {
		return fmt.Errorf("netfront: backend has no vif for %v: %w", f.Guest, xtypes.ErrNotFound)
	}
	f.v = v
	rxRef, err := f.H.Grant(f.Guest, back.Dom, 10, false)
	if err != nil {
		return err
	}
	txRef, err := f.H.Grant(f.Guest, back.Dom, 11, false)
	if err != nil {
		return err
	}
	port, err := f.H.EvtchnAllocUnbound(f.Guest, back.Dom)
	if err != nil {
		return err
	}
	refPath := frontPath(f.Guest) + "/ring-ref"
	if err := f.XS.Write(xenstore.TxNone, refPath, fmt.Sprintf("%d/%d/%d", rxRef, txRef, port)); err != nil {
		return err
	}
	if err := f.XS.SetPerms(refPath, xenstore.Perms{Owner: f.Guest, Read: []xtypes.DomID{back.Dom}}); err != nil {
		return err
	}
	f.XS.Write(xenstore.TxNone, frontPath(f.Guest)+"/state", "initialised")
	if !f.WaitReconnect(p, timeout) {
		return fmt.Errorf("netfront: no backend reacted to advertisement: %w", xtypes.ErrShutdown)
	}
	f.XS.Write(xenstore.TxNone, frontPath(f.Guest)+"/state", "connected")
	return nil
}

// Connected reports whether the vif is currently usable.
func (f *Frontend) Connected() bool { return f.v != nil && f.v.connected && !f.v.rx.Broken() }

// Recv blocks until the next packet arrives, charges guest CPU, and
// acknowledges the ring slot. It returns an error when the backend
// disconnects mid-receive (microreboot); the caller should WaitReconnect.
func (f *Frontend) Recv(p *sim.Proc) (Packet, error) {
	if f.v == nil {
		return Packet{}, fmt.Errorf("netfront: not connected: %w", xtypes.ErrInvalid)
	}
	pkt, err := f.v.rx.PopRequest(p)
	if err != nil {
		return Packet{}, err
	}
	f.H.Compute(p, f.Guest, frontChunkCPU)
	// Ack may race a Break between pop and push; a failed ack is harmless
	// (the whole ring is being reset).
	if !f.v.rx.Broken() {
		f.v.rx.PushResponse(ack{})
	}
	f.ReceivedBytes += int64(pkt.Bytes)
	return pkt, nil
}

// TryRecv is Recv without blocking.
func (f *Frontend) TryRecv(p *sim.Proc) (Packet, bool) {
	if f.v == nil || f.v.rx.Broken() {
		return Packet{}, false
	}
	pkt, ok := f.v.rx.TryPopRequest()
	if !ok {
		return Packet{}, false
	}
	f.H.Compute(p, f.Guest, frontChunkCPU)
	if !f.v.rx.Broken() {
		f.v.rx.PushResponse(ack{})
	}
	f.ReceivedBytes += int64(pkt.Bytes)
	return pkt, true
}

// Send transmits a packet, blocking while the tx ring is full and reaping
// acknowledgements. Returns an error on disconnect.
func (f *Frontend) Send(p *sim.Proc, bytes int, seq int64) error {
	if f.v == nil {
		return fmt.Errorf("netfront: not connected: %w", xtypes.ErrInvalid)
	}
	// Reap completions to free slots.
	for {
		if _, ok := f.v.tx.TryPopResponse(); !ok {
			break
		}
	}
	f.H.Compute(p, f.Guest, frontChunkCPU)
	// A full ring means completions are outstanding: harvest them (blocking)
	// instead of waiting on raw space, which only frees via this very loop.
	for !f.v.tx.TryPushRequest(Packet{Bytes: bytes, Seq: seq}) {
		if _, err := f.v.tx.PopResponse(p); err != nil {
			return err
		}
	}
	f.SentBytes += int64(bytes)
	return nil
}

// WaitReconnect blocks until the backend finishes a microreboot and the vif
// is connected again, or the timeout expires. Frontends call this after a
// Recv/Send error — virtual machine protocols are designed to renegotiate
// (§3.3), which is what makes driver VMs the ideal reboot container.
func (f *Frontend) WaitReconnect(p *sim.Proc, timeout sim.Duration) bool {
	deadline := f.H.Env.Now().Add(timeout)
	for f.H.Env.Now() < deadline {
		if f.Connected() {
			return true
		}
		// Poll on the backend's serving gate; the gate reopens when Restart
		// completes. A small poll interval stands in for the XenStore watch
		// wakeup without registering per-wait watches.
		p.Sleep(5 * sim.Millisecond)
	}
	return f.Connected()
}
