package netdrv

import (
	"errors"
	"math"
	"testing"

	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

type harness struct {
	env   *sim.Env
	h     *hv.Hypervisor
	back  *Backend
	front *Frontend
	guest *hv.Domain
	nb    *hv.Domain
}

func newHarness(t *testing.T, link bool) *harness {
	t.Helper()
	env := sim.NewEnv(1)
	machine := hw.NewMachine(env)
	h := hv.New(env, machine)
	h.EnforceShardIVC = true

	nb, err := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "netback", MemMB: 128, Shard: true})
	if err != nil {
		t.Fatal(err)
	}
	h.Unpause(hv.SystemCaller, nb.ID)
	h.AssignPrivileges(hv.SystemCaller, nb.ID, hv.Assignment{
		PCIDevices: []xtypes.PCIAddr{machine.NICs()[0].Addr()},
		Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot},
	})
	guest, err := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "guest", MemMB: 256})
	if err != nil {
		t.Fatal(err)
	}
	h.Unpause(hv.SystemCaller, guest.ID)

	logic := xenstore.NewLogic(env, xenstore.NewState())
	backXS := logic.Connect(nb.ID, true)
	frontXS := logic.Connect(guest.ID, true)

	back := NewBackend(h, nb.ID, machine.NICs()[0], backXS)
	front := NewFrontend(h, guest.ID, frontXS)
	if link {
		if err := h.LinkShardClient(hv.SystemCaller, nb.ID, guest.ID); err != nil {
			t.Fatal(err)
		}
	}
	return &harness{env: env, h: h, back: back, front: front, guest: guest, nb: nb}
}

func (hn *harness) startAndConnect(t *testing.T) {
	t.Helper()
	done := false
	hn.env.Spawn("boot", func(p *sim.Proc) {
		hn.back.Start(p)
		hn.back.CreateVif(hn.guest.ID)
		if err := hn.front.Connect(p, hn.back); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		done = true
	})
	hn.env.RunFor(10 * sim.Second)
	if !done {
		t.Fatal("handshake did not complete")
	}
}

func TestHandshakeRequiresShardLink(t *testing.T) {
	hn := newHarness(t, false)
	var connectErr error
	hn.env.Spawn("boot", func(p *sim.Proc) {
		hn.back.Start(p)
		hn.back.CreateVif(hn.guest.ID)
		connectErr = hn.front.Connect(p, hn.back)
	})
	hn.env.RunFor(10 * sim.Second)
	hn.env.Shutdown()
	if !errors.Is(connectErr, xtypes.ErrNotDelegated) {
		t.Fatalf("connect without link: %v", connectErr)
	}
}

func TestHandshakeAndXenStoreStates(t *testing.T) {
	hn := newHarness(t, true)
	hn.startAndConnect(t)
	st, err := hn.back.XS.Read(xenstore.TxNone, "/local/domain/0/backend/vif/1/state")
	if err != nil || st != "connected" {
		t.Fatalf("backend vif state = %q, %v", st, err)
	}
	st, _ = hn.front.XS.Read(xenstore.TxNone, "/local/domain/1/device/vif/0/state")
	if st != "connected" {
		t.Fatalf("frontend state = %q", st)
	}
	if !hn.front.Connected() {
		t.Fatal("frontend not connected")
	}
	hn.env.Shutdown()
}

func TestRxPathThroughput(t *testing.T) {
	hn := newHarness(t, true)
	hn.startAndConnect(t)

	const total = 117_000_000 // ~1s at line rate
	var start, end sim.Time
	var received int64
	// Remote peer pushes chunks onto the wire.
	hn.env.Spawn("remote", func(p *sim.Proc) {
		start = p.Now()
		var seq int64
		for sent := 0; sent < total; sent += ChunkBytes {
			hn.back.WireDeliver(p, hn.guest.ID, ChunkBytes, seq)
			seq++
		}
	})
	// Guest consumes.
	hn.env.Spawn("guest-app", func(p *sim.Proc) {
		for received < total {
			pkt, err := hn.front.Recv(p)
			if err != nil {
				t.Error(err)
				return
			}
			received += int64(pkt.Bytes)
			end = p.Now()
		}
	})
	hn.env.RunFor(30 * sim.Second)
	hn.env.Shutdown()
	if received < total {
		t.Fatalf("received %d of %d", received, total)
	}
	elapsed := end.Sub(start).Seconds()
	tput := float64(received) / elapsed / 1e6
	// The virtual path should sustain near line rate (>100MB/s).
	if tput < 100 || tput > 120 {
		t.Fatalf("throughput = %.1f MB/s", tput)
	}
	if hn.back.ForwardedRx == 0 {
		t.Fatal("no forwarding accounted")
	}
}

func TestTxPath(t *testing.T) {
	hn := newHarness(t, true)
	hn.startAndConnect(t)
	const chunks = 100
	hn.env.Spawn("guest-app", func(p *sim.Proc) {
		for i := 0; i < chunks; i++ {
			if err := hn.front.Send(p, ChunkBytes, int64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	hn.env.RunFor(10 * sim.Second)
	hn.env.Shutdown()
	if hn.back.NIC.TxBytes != chunks*ChunkBytes {
		t.Fatalf("tx bytes = %d", hn.back.NIC.TxBytes)
	}
	if hn.front.SentBytes != chunks*ChunkBytes {
		t.Fatalf("front sent = %d", hn.front.SentBytes)
	}
}

func TestRestartDowntimes(t *testing.T) {
	for _, tc := range []struct {
		fast bool
		want sim.Duration
	}{
		{fast: false, want: 260 * sim.Millisecond},
		{fast: true, want: 140 * sim.Millisecond},
	} {
		hn := newHarness(t, true)
		hn.startAndConnect(t)
		var downtime sim.Duration
		hn.env.Spawn("restarter", func(p *sim.Proc) {
			t0 := p.Now()
			hn.back.Restart(p, tc.fast)
			downtime = p.Now().Sub(t0)
		})
		hn.env.RunFor(20 * sim.Second)
		hn.env.Shutdown()
		if math.Abs(downtime.Seconds()-tc.want.Seconds()) > 0.005 {
			t.Errorf("fast=%v downtime = %v, want %v", tc.fast, downtime, tc.want)
		}
		if !hn.back.Serving() {
			t.Errorf("fast=%v backend not serving after restart", tc.fast)
		}
	}
}

func TestPacketsDroppedDuringRestart(t *testing.T) {
	hn := newHarness(t, true)
	hn.startAndConnect(t)
	var delivered, dropped int
	hn.env.Spawn("restarter", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		hn.back.Restart(p, false)
	})
	hn.env.Spawn("remote", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if hn.back.WireDeliver(p, hn.guest.ID, ChunkBytes, int64(i)) {
				delivered++
			} else {
				dropped++
			}
			p.Sleep(5 * sim.Millisecond)
		}
	})
	hn.env.Spawn("guest-app", func(p *sim.Proc) {
		for {
			if _, err := hn.front.Recv(p); err != nil {
				if !hn.front.WaitReconnect(p, 5*sim.Second) {
					return
				}
			}
		}
	})
	hn.env.RunFor(5 * sim.Second)
	hn.env.Shutdown()
	if dropped == 0 {
		t.Fatal("no packets dropped during a 260ms outage with 5ms spacing")
	}
	// Roughly 260ms/5ms ≈ 52 drops; allow slack for pipeline effects.
	if dropped < 40 || dropped > 70 {
		t.Fatalf("dropped = %d, want ~52", dropped)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestFrontendReconnectAfterRestart(t *testing.T) {
	hn := newHarness(t, true)
	hn.startAndConnect(t)
	var sawBreak, reconnected bool
	var resumedBytes int64
	hn.env.Spawn("guest-app", func(p *sim.Proc) {
		for {
			pkt, err := hn.front.Recv(p)
			if err != nil {
				sawBreak = true
				if !hn.front.WaitReconnect(p, 5*sim.Second) {
					t.Error("reconnect timed out")
					return
				}
				reconnected = true
				continue
			}
			resumedBytes += int64(pkt.Bytes)
			if reconnected {
				return // received data after reconnect: done
			}
		}
	})
	hn.env.Spawn("restarter", func(p *sim.Proc) {
		p.Sleep(50 * sim.Millisecond)
		hn.back.Restart(p, false)
	})
	hn.env.Spawn("remote", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			hn.back.WireDeliver(p, hn.guest.ID, ChunkBytes, int64(i))
			p.Sleep(10 * sim.Millisecond)
		}
	})
	hn.env.RunFor(10 * sim.Second)
	hn.env.Shutdown()
	if !sawBreak {
		t.Fatal("frontend never observed the disconnect")
	}
	if !reconnected || resumedBytes == 0 {
		t.Fatalf("reconnected=%v resumedBytes=%d", reconnected, resumedBytes)
	}
	if hn.back.RestartCount != 1 {
		t.Fatalf("restart count = %d", hn.back.RestartCount)
	}
}

func TestBackendIsRestartable(t *testing.T) {
	hn := newHarness(t, true)
	hn.startAndConnect(t)
	hn.guest.Mem.Write(0, []byte("x")) // unrelated guest write
	hn.nb.Mem.Write(0, []byte("netback init state"))
	if err := hn.h.VMSnapshot(hn.nb.ID); err != nil {
		t.Fatal(err)
	}
	eng := snapshot.NewEngine(hn.h, hv.SystemCaller)
	if err := eng.Manage(hn.back.AsRestartable(), snapshot.Policy{Kind: snapshot.PolicyTimer, Interval: sim.Second}); err != nil {
		t.Fatal(err)
	}
	hn.env.RunFor(3500 * sim.Millisecond)
	hn.env.Shutdown()
	st, ok := eng.Stats(hn.nb.ID)
	if !ok || st.Restarts < 2 {
		t.Fatalf("engine stats = %+v", st)
	}
	// Downtime per restart must be ~260ms (slow mode).
	avg := st.TotalDowntime.Seconds() / float64(st.Restarts)
	if math.Abs(avg-0.26) > 0.02 {
		t.Fatalf("avg downtime = %.3fs", avg)
	}
}

func TestRemoveVif(t *testing.T) {
	hn := newHarness(t, true)
	hn.startAndConnect(t)
	hn.back.RemoveVif(hn.guest.ID)
	hn.env.Spawn("remote", func(p *sim.Proc) {
		if hn.back.WireDeliver(p, hn.guest.ID, ChunkBytes, 0) {
			t.Error("delivery to removed vif succeeded")
		}
	})
	hn.env.RunFor(sim.Second)
	hn.env.Shutdown()
	if _, err := hn.back.XS.Read(xenstore.TxNone, "/local/domain/0/backend/vif/1/state"); err == nil {
		t.Fatal("vif xenstore node survived removal")
	}
}

// The watch-driven flow: the backend's autonomous event loop notices the
// frontend's XenStore advertisement and connects, with no direct call from
// the frontend side (§4.5.1).
func TestWatchDrivenHandshake(t *testing.T) {
	hn := newHarness(t, true)
	var connErr error
	hn.env.Spawn("backend-boot", func(p *sim.Proc) {
		hn.back.Start(p)
		hn.back.CreateVif(hn.guest.ID)
	})
	hn.env.Spawn("backend-loop", func(p *sim.Proc) {
		hn.back.WatchAndServe(p)
	})
	hn.env.Spawn("frontend", func(p *sim.Proc) {
		p.Sleep(5 * sim.Second) // after backend is up
		connErr = hn.front.Advertise(p, hn.back, 10*sim.Second)
	})
	hn.env.RunFor(30 * sim.Second)
	if connErr != nil {
		t.Fatalf("watch-driven connect: %v", connErr)
	}
	if !hn.front.Connected() {
		t.Fatal("not connected")
	}
	// Traffic flows normally afterwards.
	var got int
	hn.env.Spawn("remote", func(p *sim.Proc) {
		hn.back.WireDeliver(p, hn.guest.ID, ChunkBytes, 1)
	})
	hn.env.Spawn("guest", func(p *sim.Proc) {
		if pkt, err := hn.front.Recv(p); err == nil {
			got = pkt.Bytes
		}
	})
	hn.env.RunFor(5 * sim.Second)
	hn.env.Shutdown()
	if got != ChunkBytes {
		t.Fatalf("got %d bytes", got)
	}
}

// Without a vif provisioned by the toolstack, the backend's event loop must
// ignore the advertisement (no vif record = guest not attached here).
func TestWatchLoopIgnoresUnknownFrontends(t *testing.T) {
	hn := newHarness(t, true)
	var connErr error
	hn.env.Spawn("backend-boot", func(p *sim.Proc) { hn.back.Start(p) })
	hn.env.Spawn("backend-loop", func(p *sim.Proc) { hn.back.WatchAndServe(p) })
	hn.env.Spawn("frontend", func(p *sim.Proc) {
		p.Sleep(5 * sim.Second)
		connErr = hn.front.Advertise(p, hn.back, 3*sim.Second)
	})
	hn.env.RunFor(20 * sim.Second)
	hn.env.Shutdown()
	if connErr == nil {
		t.Fatal("connected without a provisioned vif")
	}
}

// A 4-queue vif spreads flows across its rings and still delivers every
// packet in both directions.
func TestMultiQueueVifRoundTrip(t *testing.T) {
	hn := newHarness(t, true)
	done := false
	hn.env.Spawn("boot", func(p *sim.Proc) {
		hn.back.Start(p)
		hn.back.CreateVifQueues(hn.guest.ID, 4)
		if err := hn.front.Connect(p, hn.back); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if hn.front.Queues() != 4 {
			t.Errorf("queues = %d", hn.front.Queues())
		}
		done = true
	})
	hn.env.RunFor(10 * sim.Second)
	if !done {
		t.Fatal("handshake did not complete")
	}
	const flows = 64
	received := 0
	hn.env.Spawn("guest-recv", func(p *sim.Proc) {
		for i := 0; i < flows; i++ {
			if _, err := hn.front.Recv(p); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			received++
		}
	})
	hn.env.Spawn("wire", func(p *sim.Proc) {
		for i := 0; i < flows; i++ {
			if !hn.back.WireDeliver(p, hn.guest.ID, ChunkBytes, int64(i)) {
				t.Errorf("wire deliver %d dropped", i)
				return
			}
		}
	})
	hn.env.Spawn("guest-send", func(p *sim.Proc) {
		for i := 0; i < flows; i++ {
			if err := hn.front.Send(p, ChunkBytes, int64(i)); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	})
	hn.env.RunFor(30 * sim.Second)
	if received != flows {
		t.Fatalf("received %d/%d", received, flows)
	}
	if hn.back.ForwardedTx != flows || hn.back.ForwardedRx != flows {
		t.Fatalf("forwarded tx=%d rx=%d", hn.back.ForwardedTx, hn.back.ForwardedRx)
	}
	// Distinct flow ids must actually spread across queues.
	used := 0
	for _, q := range hn.back.vifs[hn.guest.ID].queues {
		if q.tx.Stats().ReqPushed > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("flows hashed onto %d queue(s)", used)
	}
}

// At tx saturation the frontend queues descriptors far faster than the wire
// drains them, so the backend services multi-descriptor batches and nearly
// every push is notify-suppressed; with suppression ablated (AlwaysNotify)
// the ratio collapses to one descriptor per notify.
func TestTxBatchingAmortizesNotifies(t *testing.T) {
	run := func(alwaysNotify bool) (descs, notifies int64) {
		hn := newHarness(t, true)
		hn.startAndConnect(t)
		hn.back.SetAlwaysNotify(alwaysNotify)
		const chunks = 200
		hn.env.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < chunks; i++ {
				if err := hn.front.Send(p, ChunkBytes, 1); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		})
		hn.env.RunFor(60 * sim.Second)
		st := hn.back.DataPathStats()
		if st.TxDescs != chunks {
			t.Fatalf("tx descs = %d", st.TxDescs)
		}
		return st.TxDescs, st.TxNotifies
	}
	descs, suppressed := run(false)
	if ratio := float64(descs) / float64(suppressed); ratio < 4 {
		t.Fatalf("suppressed run: %.1f descs/notify, want >= 4", ratio)
	}
	baseDescs, baseNotifies := run(true)
	if baseDescs != baseNotifies {
		t.Fatalf("ablated run: %d descs vs %d notifies, want 1:1", baseDescs, baseNotifies)
	}
}
