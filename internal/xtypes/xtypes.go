// Package xtypes defines the identifiers, hypercall numbers, privilege flags
// and error values shared across the platform model. It sits at the bottom of
// the dependency graph so that the hypervisor, device substrates and control
// components can interoperate without import cycles.
package xtypes

import "fmt"

// DomID identifies a domain (virtual machine). DomID 0 is reserved: in the
// monolithic profile it is the control VM (Dom0); in Xoar no running domain
// keeps ID 0 after boot, which is itself one of the paper's points — several
// Xen code paths hard-code trust in domain 0 (§5.8).
type DomID uint32

// DomIDNone is the sentinel "no domain" value, used where Xen uses DOMID_INVALID.
const DomIDNone DomID = 0x7FFFFFFF

// Dom0 is the well-known ID of the monolithic control VM.
const Dom0 DomID = 0

func (d DomID) String() string {
	if d == DomIDNone {
		return "dom-none"
	}
	return fmt.Sprintf("dom%d", uint32(d))
}

// GrantRef names an entry in a domain's grant table.
type GrantRef uint32

// GrantRefInvalid is the sentinel invalid grant reference.
const GrantRefInvalid GrantRef = 0xFFFFFFFF

// Port names an event-channel endpoint within a domain.
type Port uint32

// PortInvalid is the sentinel invalid event-channel port.
const PortInvalid Port = 0xFFFFFFFF

// PageSize is the machine page granularity of the memory model, in bytes.
const PageSize = 4096

// PFN is a physical frame number in the machine memory model.
type PFN uint64

// Hypercall enumerates the hypervisor entry points. The set deliberately
// mirrors Xen's: roughly forty calls, several of which multiplex
// sub-operations (the paper notes this widening of the interface in §4.1).
type Hypercall uint32

const (
	// Unprivileged calls available to every guest.
	HyperSchedOp      Hypercall = iota // yield / block / shutdown
	HyperEvtchnOp                      // event-channel operations on own ports
	HyperGrantTableOp                  // grant own pages, map granted pages
	HyperConsoleIO                     // write to own virtual console
	HyperXenVersion                    // version probe
	HyperSetTimerOp                    // virtual timer
	HyperMemoryOpOwn                   // balloon own reservation
	HyperVCPUOp                        // manage own vCPUs

	// Privileged calls; each shard is whitelisted for the minimal subset.
	HyperDomctlCreate     // create a domain shell
	HyperDomctlDestroy    // destroy a domain
	HyperDomctlPause      // pause a domain
	HyperDomctlUnpause    // unpause a domain
	HyperDomctlMaxMem     // set a domain's memory reservation
	HyperDomctlPriv       // assign privileges to a domain (Builder only)
	HyperMapForeign       // map another domain's memory
	HyperPhysdevOp        // PCI config space / IRQ routing
	HyperAssignDevice     // give a domain direct device access
	HyperSetVIRQ          // route a VIRQ to a domain
	HyperVMSnapshot       // snapshot own memory image for microreboots
	HyperVMRollback       // roll a domain back to its snapshot
	HyperDelegateAdmin    // delegate admin privilege over a shard
	HyperIOPortAccess     // grant I/O-port ranges (console, PCI)
	HyperDebugOp          // debug-register access (attack surface, §6.2.1)
	HyperProfilingOp      // profiling/tracing (candidate for deprivileging, §7.1)
	HyperSetParentTool    // mark the parent toolstack of a new guest
	HyperReadConsoleRing  // read the physical console ring
	HyperSetRestartPolicy // configure microreboot policy for a shard

	NumHypercalls // sentinel: number of hypercall identifiers
)

var hypercallNames = map[Hypercall]string{
	HyperSchedOp:          "sched_op",
	HyperEvtchnOp:         "evtchn_op",
	HyperGrantTableOp:     "grant_table_op",
	HyperConsoleIO:        "console_io",
	HyperXenVersion:       "xen_version",
	HyperSetTimerOp:       "set_timer_op",
	HyperMemoryOpOwn:      "memory_op",
	HyperVCPUOp:           "vcpu_op",
	HyperDomctlCreate:     "domctl_create",
	HyperDomctlDestroy:    "domctl_destroy",
	HyperDomctlPause:      "domctl_pause",
	HyperDomctlUnpause:    "domctl_unpause",
	HyperDomctlMaxMem:     "domctl_max_mem",
	HyperDomctlPriv:       "domctl_set_privilege",
	HyperMapForeign:       "map_foreign",
	HyperPhysdevOp:        "physdev_op",
	HyperAssignDevice:     "assign_device",
	HyperSetVIRQ:          "set_virq",
	HyperVMSnapshot:       "vm_snapshot",
	HyperVMRollback:       "vm_rollback",
	HyperDelegateAdmin:    "delegate_admin",
	HyperIOPortAccess:     "ioport_access",
	HyperDebugOp:          "debug_op",
	HyperProfilingOp:      "profiling_op",
	HyperSetParentTool:    "set_parent_toolstack",
	HyperReadConsoleRing:  "read_console_ring",
	HyperSetRestartPolicy: "set_restart_policy",
}

func (h Hypercall) String() string {
	if s, ok := hypercallNames[h]; ok {
		return s
	}
	return fmt.Sprintf("hypercall(%d)", uint32(h))
}

// HypercallByName resolves a hypercall's wire name (its String form, e.g.
// "domctl_create") back to the identifier. This is the decode side of the
// generated capability manifests: grants are stored by wire name so the
// artifact survives renumbering.
func HypercallByName(name string) (Hypercall, bool) {
	for h, s := range hypercallNames {
		if s == name {
			return h, true
		}
	}
	return 0, false
}

// Privileged reports whether the hypercall requires an explicit whitelist
// entry. The first eight calls are the default unprivileged set available to
// all guests (§3.1: "in addition to the default unprivileged ones").
func (h Hypercall) Privileged() bool { return h >= HyperDomctlCreate && h < NumHypercalls }

// UnprivilegedSet returns the hypercalls available to every guest.
func UnprivilegedSet() []Hypercall {
	var out []Hypercall
	for h := Hypercall(0); h < NumHypercalls; h++ {
		if !h.Privileged() {
			out = append(out, h)
		}
	}
	return out
}

// VIRQ enumerates virtual interrupt lines delivered by the hypervisor.
type VIRQ uint32

const (
	VIRQTimer   VIRQ = iota // periodic timer tick
	VIRQConsole             // physical serial console input
	VIRQDom                 // domain lifecycle events (for toolstacks)
	VIRQDebug
	NumVIRQs
)

func (v VIRQ) String() string {
	switch v {
	case VIRQTimer:
		return "virq-timer"
	case VIRQConsole:
		return "virq-console"
	case VIRQDom:
		return "virq-dom"
	case VIRQDebug:
		return "virq-debug"
	default:
		return fmt.Sprintf("virq(%d)", uint32(v))
	}
}

// PCIAddr identifies a device on the PCI bus, mirroring the
// assign_pci_device(PCI domain, bus, slot) API of Figure 3.1.
type PCIAddr struct {
	Domain uint16
	Bus    uint8
	Slot   uint8
}

func (a PCIAddr) String() string {
	return fmt.Sprintf("%04x:%02x:%02x", a.Domain, a.Bus, a.Slot)
}

// DeviceClass categorizes PCI peripherals in the hardware model.
type DeviceClass uint8

const (
	DevNIC DeviceClass = iota
	DevDisk
	DevSerial
	DevOther
)

func (c DeviceClass) String() string {
	switch c {
	case DevNIC:
		return "nic"
	case DevDisk:
		return "disk"
	case DevSerial:
		return "serial"
	default:
		return "other"
	}
}
