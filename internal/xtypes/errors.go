package xtypes

import "errors"

// Error values shared across the platform. They correspond to the errno
// values Xen returns from hypercalls; components test them with errors.Is.
var (
	// ErrPerm is returned when a domain invokes a hypercall it is not
	// whitelisted for, or targets a domain it has no privilege over.
	ErrPerm = errors.New("xen: operation not permitted")

	// ErrNoDomain is returned when the target domain does not exist.
	ErrNoDomain = errors.New("xen: no such domain")

	// ErrBadGrant is returned for invalid, revoked, or foreign-owner grant
	// references.
	ErrBadGrant = errors.New("xen: bad grant reference")

	// ErrBadPort is returned for invalid or closed event-channel ports.
	ErrBadPort = errors.New("xen: bad event-channel port")

	// ErrInUse is returned when a resource (device, port, grant) is already
	// bound elsewhere.
	ErrInUse = errors.New("xen: resource in use")

	// ErrNoMem is returned when a reservation cannot be satisfied.
	ErrNoMem = errors.New("xen: out of memory")

	// ErrNotFound is returned by lookup operations (XenStore paths, devices).
	ErrNotFound = errors.New("xen: not found")

	// ErrExists is returned when creating something that already exists.
	ErrExists = errors.New("xen: already exists")

	// ErrInvalid is returned for malformed arguments.
	ErrInvalid = errors.New("xen: invalid argument")

	// ErrAgain is returned when an operation would block or should be retried
	// (e.g. a transaction conflict in XenStore).
	ErrAgain = errors.New("xen: try again")

	// ErrShutdown is returned when the target component is shutting down or
	// mid-microreboot.
	ErrShutdown = errors.New("xen: component shutting down")

	// ErrConstraint is returned when VM creation would violate a sharing
	// constraint (§3.2.1: creation fails rather than forcing an undesired
	// sharing configuration).
	ErrConstraint = errors.New("xoar: sharing constraint violated")

	// ErrNotShard is returned when IVC setup names a plain guest as a service
	// provider (§5.6: requests are blocked if at least one VM is not a shard).
	ErrNotShard = errors.New("xoar: provider is not a shard")

	// ErrNotDelegated is returned when a toolstack uses a shard that has not
	// been delegated to it (§5.6).
	ErrNotDelegated = errors.New("xoar: shard not delegated to caller")

	// ErrQuota is returned when a resource-usage quota would be exceeded
	// (§3.4.2: quotas enforced by the virtualization platform).
	ErrQuota = errors.New("xoar: resource quota exceeded")

	// ErrNoMicroreboot is returned when rollback/rebuild is requested under
	// the monolithic Dom0 profile: stock Xen has no microreboot mechanism
	// (§3.3 is Xoar-only), and seceval asserts the refusal.
	ErrNoMicroreboot = errors.New("xoar: microreboots unavailable in the monolithic profile")

	// ErrBatchAborted is returned for the valid requests of a SubmitAll
	// batch whose validation failed elsewhere: the Builder validates a
	// whole batch before spending any build compute, and one malformed or
	// unprivileged request rejects the batch outright. The invalid request
	// itself carries its own error (ErrPerm, ErrNotFound, ...).
	ErrBatchAborted = errors.New("xoar: build batch aborted by invalid sibling request")
)
