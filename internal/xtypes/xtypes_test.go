package xtypes

import (
	"errors"
	"fmt"
	"testing"
)

func TestDomIDString(t *testing.T) {
	if DomID(7).String() != "dom7" {
		t.Fatalf("DomID(7) = %q", DomID(7).String())
	}
	if DomIDNone.String() != "dom-none" {
		t.Fatalf("DomIDNone = %q", DomIDNone.String())
	}
	if Dom0.String() != "dom0" {
		t.Fatalf("Dom0 = %q", Dom0.String())
	}
}

func TestHypercallNamesComplete(t *testing.T) {
	for h := Hypercall(0); h < NumHypercalls; h++ {
		s := h.String()
		if s == "" || s == fmt.Sprintf("hypercall(%d)", uint32(h)) {
			t.Errorf("hypercall %d has no name", h)
		}
	}
	// Out-of-range formats generically.
	if Hypercall(999).String() != "hypercall(999)" {
		t.Fatalf("unknown hypercall = %q", Hypercall(999).String())
	}
}

func TestPrivilegeSplit(t *testing.T) {
	unpriv := UnprivilegedSet()
	if len(unpriv) != 8 {
		t.Fatalf("unprivileged set = %d calls", len(unpriv))
	}
	for _, h := range unpriv {
		if h.Privileged() {
			t.Errorf("%v in unprivileged set but Privileged()", h)
		}
	}
	// The Figure 3.1 privilege-assignment calls must all be privileged.
	for _, h := range []Hypercall{HyperDomctlPriv, HyperMapForeign, HyperAssignDevice, HyperDelegateAdmin, HyperVMRollback} {
		if !h.Privileged() {
			t.Errorf("%v should be privileged", h)
		}
	}
	// The narrow interface: roughly forty calls, like Xen's (§4.1).
	if NumHypercalls < 20 || NumHypercalls > 60 {
		t.Fatalf("hypercall count = %d, implausible for the Xen model", NumHypercalls)
	}
}

func TestVIRQAndPCIStrings(t *testing.T) {
	if VIRQConsole.String() != "virq-console" || VIRQTimer.String() != "virq-timer" {
		t.Fatal("virq names wrong")
	}
	if VIRQ(99).String() != "virq(99)" {
		t.Fatal("unknown virq format")
	}
	a := PCIAddr{Domain: 0, Bus: 2, Slot: 0}
	if a.String() != "0000:02:00" {
		t.Fatalf("pci addr = %q", a.String())
	}
	if DevNIC.String() != "nic" || DevDisk.String() != "disk" || DevSerial.String() != "serial" || DeviceClass(9).String() != "other" {
		t.Fatal("device class names wrong")
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{
		ErrPerm, ErrNoDomain, ErrBadGrant, ErrBadPort, ErrInUse, ErrNoMem,
		ErrNotFound, ErrExists, ErrInvalid, ErrAgain, ErrShutdown,
		ErrConstraint, ErrNotShard, ErrNotDelegated, ErrQuota,
	}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Errorf("errors %d and %d alias", i, j)
			}
		}
		// Wrapping preserves identity.
		if !errors.Is(fmt.Errorf("ctx: %w", a), a) {
			t.Errorf("error %d does not survive wrapping", i)
		}
	}
}
