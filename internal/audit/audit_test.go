package audit

import (
	"bytes"
	"strings"
	"testing"

	"xoar/internal/sim"
)

func s(sec int) sim.Time { return sim.Time(sec) * sim.Time(sim.Second) }

func TestHashChainVerify(t *testing.T) {
	l := NewLog()
	l.Append(s(1), "create", 1, "netback")
	l.Append(s(2), "link-shard", 1, "dom5")
	l.Append(s(3), "destroy", 5, "done")
	if got := l.Verify(); got != -1 {
		t.Fatalf("fresh log corrupt at %d", got)
	}
	l.Tamper(1, "dom6")
	if got := l.Verify(); got != 1 {
		t.Fatalf("tamper detected at %d, want 1", got)
	}
}

func TestDependentsOfWindow(t *testing.T) {
	l := NewLog()
	const shard = 2
	l.Append(s(0), "create", shard, "netback")
	l.Append(s(10), "link-shard", shard, "dom5")
	l.Append(s(20), "link-shard", shard, "dom6")
	l.Append(s(30), "destroy", 5, "gone") // closes dom5's window
	l.Append(s(40), "link-shard", shard, "dom7")

	// Window [32,35]: only dom6 (open) — dom5 closed at 30, dom7 starts at 40.
	got := l.DependentsOf(shard, s(32), s(35))
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("dependents[32,35] = %v", got)
	}
	// Window [0,100]: everyone.
	got = l.DependentsOf(shard, s(0), s(100))
	if len(got) != 3 {
		t.Fatalf("dependents[0,100] = %v", got)
	}
	// Window [25,29]: dom5 and dom6.
	got = l.DependentsOf(shard, s(25), s(29))
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("dependents[25,29] = %v", got)
	}
}

func TestUnlinkClosesWindow(t *testing.T) {
	l := NewLog()
	l.Append(s(0), "link-shard", 2, "dom5")
	l.Append(s(10), "unlink-shard", 2, "dom5")
	if got := l.DependentsOf(2, s(11), s(20)); len(got) != 0 {
		t.Fatalf("dependents after unlink = %v", got)
	}
	if got := l.DependentsOf(2, s(5), s(20)); len(got) != 1 {
		t.Fatalf("dependents across unlink = %v", got)
	}
}

func TestShardDestroyClosesAll(t *testing.T) {
	l := NewLog()
	l.Append(s(0), "link-shard", 2, "dom5")
	l.Append(s(1), "link-shard", 2, "dom6")
	l.Append(s(5), "destroy", 2, "restart")
	if got := l.DependentsOf(2, s(6), s(10)); len(got) != 0 {
		t.Fatalf("dependents after shard destroy = %v", got)
	}
}

func TestServicedBy(t *testing.T) {
	l := NewLog()
	l.Append(s(0), "link-shard", 2, "dom5")
	l.Append(s(0), "link-shard", 3, "dom5")
	l.Append(s(0), "link-shard", 4, "dom6")
	got := l.ServicedBy(5)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("servicedBy(5) = %v", got)
	}
}

func TestDotExport(t *testing.T) {
	l := NewLog()
	l.Append(s(0), "link-shard", 2, "dom5")
	l.Append(s(1), "link-shard", 2, "dom5") // duplicate edge collapsed
	dot := l.Dot()
	if strings.Count(dot, "->") != 1 {
		t.Fatalf("dot = %q", dot)
	}
	if !strings.Contains(dot, `"dom2" -> "dom5"`) {
		t.Fatalf("dot = %q", dot)
	}
}

func TestKindCount(t *testing.T) {
	l := NewLog()
	l.Append(s(0), "rollback", 2, "")
	l.Append(s(1), "rollback", 2, "")
	if l.KindCount("rollback") != 2 || l.KindCount("create") != 0 {
		t.Fatal("kind counts wrong")
	}
}

func TestSaveLoadPreservesChain(t *testing.T) {
	l := NewLog()
	l.Append(s(1), "create", 1, "netback")
	l.Append(s(2), "link-shard", 1, "dom5")
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, bad, err := LoadLog(&buf)
	if err != nil || bad != -1 {
		t.Fatalf("load: %v (bad=%d)", err, bad)
	}
	if restored.Len() != 2 || restored.Verify() != -1 {
		t.Fatal("restored log broken")
	}
	// Forensic queries work on the restored copy.
	if deps := restored.DependentsOf(1, s(0), s(10)); len(deps) != 1 || deps[0] != 5 {
		t.Fatalf("dependents on restored log = %v", deps)
	}
}

func TestLoadRejectsTamperedImage(t *testing.T) {
	l := NewLog()
	l.Append(s(1), "create", 1, "x")
	l.Append(s(2), "destroy", 1, "y")
	l.Tamper(0, "forged")
	var buf bytes.Buffer
	l.Save(&buf)
	if _, bad, err := LoadLog(&buf); err == nil || bad != 0 {
		t.Fatalf("tampered image accepted: bad=%d err=%v", bad, err)
	}
	if _, _, err := LoadLog(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
