// Package audit implements the secure audit log of §3.2.2: an append-only,
// hash-chained record of platform events — VM creation and destruction,
// shard linkage, microreboots, compromises — stored "off host" (outside any
// domain's reach in the model). Queries over the log answer the forensic
// questions the paper motivates: which guests depended on a compromised
// shard during an exposure window, and which shards serviced a given guest.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// Record is one immutable log entry.
type Record struct {
	Seq  int
	Time sim.Time
	Kind string
	Dom  xtypes.DomID
	Arg  string

	// PrevHash/Hash chain the log: tampering with any record breaks
	// verification of every later one.
	PrevHash string
	Hash     string
}

func (r Record) hashInput() string {
	return fmt.Sprintf("%s|%d|%d|%s|%v|%s", r.PrevHash, r.Seq, int64(r.Time), r.Kind, r.Dom, r.Arg)
}

func digest(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// Log is the append-only audit store.
type Log struct {
	records []Record
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append adds a record, extending the hash chain.
func (l *Log) Append(t sim.Time, kind string, dom xtypes.DomID, arg string) {
	prev := ""
	if n := len(l.records); n > 0 {
		prev = l.records[n-1].Hash
	}
	r := Record{Seq: len(l.records), Time: t, Kind: kind, Dom: dom, Arg: arg, PrevHash: prev}
	r.Hash = digest(r.hashInput())
	l.records = append(l.records, r)
}

// Len reports the number of records.
func (l *Log) Len() int { return len(l.records) }

// Records returns a copy of the log contents.
func (l *Log) Records() []Record {
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Verify checks the hash chain, returning the index of the first corrupted
// record, or -1 if intact.
func (l *Log) Verify() int {
	prev := ""
	for i, r := range l.records {
		if r.PrevHash != prev || r.Hash != digest(r.hashInput()) || r.Seq != i {
			return i
		}
		prev = r.Hash
	}
	return -1
}

// Tamper overwrites a record's argument, for demonstrating Verify in tests
// and examples. A real off-host log would not expose this.
func (l *Log) Tamper(i int, arg string) {
	if i >= 0 && i < len(l.records) {
		l.records[i].Arg = arg
	}
}

// parseDomArg parses the DomID rendered by xtypes.DomID.String ("dom7").
func parseDomArg(arg string) (xtypes.DomID, bool) {
	if !strings.HasPrefix(arg, "dom") {
		return 0, false
	}
	var n uint32
	if _, err := fmt.Sscanf(arg, "dom%d", &n); err != nil {
		return 0, false
	}
	return xtypes.DomID(n), true
}

// interval is a [from, to) dependency window; to < 0 means still open.
type interval struct {
	guest    xtypes.DomID
	from, to sim.Time
}

// linkIntervals reconstructs, for one shard, the windows during which each
// guest was linked to it, from link-shard and destroy events.
func (l *Log) linkIntervals(shard xtypes.DomID) []interval {
	var out []interval
	open := make(map[xtypes.DomID]int) // guest -> index in out
	for _, r := range l.records {
		switch r.Kind {
		case "link-shard":
			if r.Dom != shard {
				continue
			}
			if g, ok := parseDomArg(r.Arg); ok {
				if _, dup := open[g]; !dup {
					open[g] = len(out)
					out = append(out, interval{guest: g, from: r.Time, to: -1})
				}
			}
		case "unlink-shard":
			if r.Dom != shard {
				continue
			}
			if g, ok := parseDomArg(r.Arg); ok {
				if i, live := open[g]; live {
					out[i].to = r.Time
					delete(open, g)
				}
			}
		case "destroy":
			// Destruction of the guest or the shard closes windows.
			if r.Dom == shard {
				for g, i := range open {
					out[i].to = r.Time
					delete(open, g)
				}
			} else if i, live := open[r.Dom]; live {
				out[i].to = r.Time
				delete(open, r.Dom)
			}
		}
	}
	return out
}

// DependentsOf lists guests that were linked to shard at any point within
// [from, to] — the "identify and notify potentially affected customers"
// query of §3.2.2.
func (l *Log) DependentsOf(shard xtypes.DomID, from, to sim.Time) []xtypes.DomID {
	seen := make(map[xtypes.DomID]bool)
	var out []xtypes.DomID
	for _, iv := range l.linkIntervals(shard) {
		end := iv.to
		if end < 0 {
			end = to
		}
		if iv.from <= to && end >= from && !seen[iv.guest] {
			seen[iv.guest] = true
			out = append(out, iv.guest)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ServicedBy lists the shards that ever serviced guest — the "which release
// of which component touched this VM" query used for retroactive
// vulnerability assessment.
func (l *Log) ServicedBy(guest xtypes.DomID) []xtypes.DomID {
	seen := make(map[xtypes.DomID]bool)
	var out []xtypes.DomID
	for _, r := range l.records {
		if r.Kind != "link-shard" {
			continue
		}
		if g, ok := parseDomArg(r.Arg); ok && g == guest && !seen[r.Dom] {
			seen[r.Dom] = true
			out = append(out, r.Dom)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dot renders the shard→guest dependency graph in Graphviz format.
func (l *Log) Dot() string {
	var b strings.Builder
	b.WriteString("digraph deps {\n")
	edges := make(map[string]bool)
	for _, r := range l.records {
		if r.Kind != "link-shard" {
			continue
		}
		if g, ok := parseDomArg(r.Arg); ok {
			e := fmt.Sprintf("  \"%v\" -> \"%v\";\n", r.Dom, g)
			if !edges[e] {
				edges[e] = true
				b.WriteString(e)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// KindCount tallies records by kind, for tests and reports.
func (l *Log) KindCount(kind string) int {
	n := 0
	for _, r := range l.records {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

// Save serializes the log (the "off-host, append-only" store of §3.2.2
// materialized), preserving the hash chain so the reader can re-verify.
func (l *Log) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(l.records)
}

// LoadLog reads a saved log and verifies its hash chain before returning it;
// a tampered image is rejected with the corrupt record's index.
func LoadLog(r io.Reader) (*Log, int, error) {
	var recs []Record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, -1, fmt.Errorf("audit: load: %w", err)
	}
	l := &Log{records: recs}
	if i := l.Verify(); i != -1 {
		return nil, i, fmt.Errorf("audit: load: record %d fails verification", i)
	}
	return l, -1, nil
}
