// Package guest models guest virtual machines as traffic endpoints: a
// TCP-flavoured bulk-transfer flow (wget), an HTTP server with concurrent
// LAN clients (the Apache benchmark), and the plumbing that routes simulated
// wire traffic through the split drivers.
//
// The transport model captures what the paper's Figures 6.3 and 6.5 actually
// measure: when NetBack microreboots, in-flight segments are lost, the
// sender's retransmission timer backs off exponentially, and throughput
// recovers through a short ramp — so the cost of a restart is the RTO
// schedule, not just the raw device downtime.
package guest

import (
	"xoar/internal/blkdrv"
	"xoar/internal/hv"
	"xoar/internal/netdrv"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// TCP model constants.
const (
	// rtoInitial is the first retransmission timeout after a loss.
	rtoInitial = 200 * sim.Millisecond
	// rtoMax caps exponential backoff; combined with repeated outages this
	// produces the 3000–7000ms tail latencies of Figure 6.5.
	rtoMax = 3200 * sim.Millisecond
	// rampChunks is the slow-start recovery length after an outage: the
	// sender paces the first chunks while the window reopens.
	rampChunks = 16
)

// VM is a guest wired into the platform's drivers.
type VM struct {
	H   *hv.Hypervisor
	Dom xtypes.DomID

	Net  *netdrv.Frontend
	Blk  *blkdrv.Frontend
	NetB *netdrv.Backend
	BlkB *blkdrv.Backend
}

// FetchResult reports a bulk transfer's outcome.
type FetchResult struct {
	Bytes   int64
	Elapsed sim.Duration
	// Retransmits counts RTO-driven resends.
	Retransmits int
	// Stalls counts distinct loss episodes.
	Stalls int
}

// ThroughputMBps is the transfer's goodput in MB/s.
func (r FetchResult) ThroughputMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e6
}

// Sink selects where fetched data goes.
type Sink uint8

const (
	// SinkNull discards data (wget -O /dev/null).
	SinkNull Sink = iota
	// SinkDisk writes data through the guest's block device.
	SinkDisk
)

// Fetch downloads total bytes from a directly-attached LAN peer through the
// guest's vif, writing them to sink. It blocks the calling process until the
// transfer completes and models TCP loss recovery across NetBack restarts.
func (vm *VM) Fetch(p *sim.Proc, total int64, sink Sink) FetchResult {
	start := p.Now()
	var received int64
	res := FetchResult{}

	// Receiver: the guest application consuming from the vif.
	recvDone := sim.NewGate(vm.H.Env)
	receiver := vm.H.Env.Spawn("wget-recv", func(rp *sim.Proc) {
		defer recvDone.Open()
		for received < total {
			pkt, err := vm.Net.Recv(rp)
			if err != nil {
				if !vm.Net.WaitReconnect(rp, 30*sim.Second) {
					return
				}
				continue
			}
			if sink == SinkDisk {
				if werr := vm.Blk.Write(rp, pkt.Bytes, true); werr != nil {
					if !vm.Blk.WaitReconnect(rp, 30*sim.Second) {
						return
					}
					vm.Blk.Write(rp, pkt.Bytes, true)
				}
			}
			received += int64(pkt.Bytes)
		}
	})

	// Sender: the remote LAN peer pushing segments onto the wire.
	chunk := netdrv.ChunkBytes
	rto := rtoInitial
	inStall := false
	recovery := 0
	var seq int64
	sent := int64(0)
	for sent < total {
		if vm.NetB.WireDeliver(p, vm.Dom, chunk, seq) {
			seq++
			sent += int64(chunk)
			rto = rtoInitial
			if inStall {
				inStall = false
				recovery = rampChunks
			}
			if recovery > 0 {
				// Slow-start ramp: extra pacing that decays linearly.
				p.Sleep(sim.Duration(recovery) * chunkWire(vm, chunk) / rampChunks)
				recovery--
			}
			continue
		}
		// Loss: back off and retransmit.
		if !inStall {
			inStall = true
			res.Stalls++
		}
		res.Retransmits++
		p.Sleep(rto)
		rto *= 2
		if rto > rtoMax {
			rto = rtoMax
		}
	}

	// Tail: segments accepted onto the wire can still be lost if a restart
	// drains the backend queues; retransmit until the receiver has
	// everything (or it gave up).
	for received < total && !receiver.Done() {
		before := received
		if vm.NetB.WireDeliver(p, vm.Dom, chunk, seq) {
			seq++
		} else {
			res.Retransmits++
			p.Sleep(rto)
		}
		if received == before {
			p.Sleep(5 * sim.Millisecond)
		}
	}
	recvDone.Wait(p)
	res.Bytes = received
	res.Elapsed = p.Now().Sub(start)
	return res
}

func chunkWire(vm *VM, chunk int) sim.Duration {
	return sim.Duration(float64(chunk) / vm.NetB.NIC.LineRate * float64(sim.Second))
}

// rpcSeq numbers NetRPC exchanges per VM.
var rpcSeqBase int64 = 1 << 40

// NetRPC performs one request/response exchange with a LAN server (an NFS
// call, say): send the request through the vif, charge server think time,
// then receive the response off the wire. It returns false on loss — the
// caller owns retransmission policy.
func (vm *VM) NetRPC(p *sim.Proc, sendBytes, recvBytes int, serverTime sim.Duration) bool {
	rpcSeqBase++
	seq := rpcSeqBase
	if err := vm.Net.Send(p, sendBytes, seq); err != nil {
		return false
	}
	p.Sleep(serverTime + vm.NetB.NIC.LANLatency)
	if !vm.NetB.WireDeliver(p, vm.Dom, recvBytes, seq) {
		return false
	}
	if _, err := vm.Net.Recv(p); err != nil {
		return false
	}
	return true
}

// NetRPCRetry is NetRPC with TCP-style RTO retransmission until success or
// the attempt budget runs out.
func (vm *VM) NetRPCRetry(p *sim.Proc, sendBytes, recvBytes int, serverTime sim.Duration) (retries int, ok bool) {
	rto := rtoInitial
	for attempts := 0; attempts < 10; attempts++ {
		if vm.NetRPC(p, sendBytes, recvBytes, serverTime) {
			return retries, true
		}
		retries++
		if !vm.Net.Connected() {
			vm.Net.WaitReconnect(p, 30*sim.Second)
		}
		p.Sleep(rto)
		rto *= 2
		if rto > rtoMax {
			rto = rtoMax
		}
	}
	return retries, false
}
