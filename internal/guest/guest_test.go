package guest

import (
	"testing"

	"xoar/internal/boot"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/toolstack"
)

// platform boots Xoar and creates one PV guest with net+disk.
func platform(t *testing.T) (*sim.Env, *boot.Platform, *VM) {
	t.Helper()
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	var pl *boot.Platform
	var vm *VM
	var err error
	env.Spawn("setup", func(p *sim.Proc) {
		pl, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{})
		if err != nil {
			return
		}
		var g *toolstack.Guest
		g, err = pl.Toolstacks[0].CreateVM(p, toolstack.GuestConfig{
			Name: "guest", Image: osimage.ImgGuestPV, VCPUs: 2, Net: true, Disk: true,
		})
		if err != nil {
			return
		}
		vm = &VM{H: h, Dom: g.Dom, Net: g.Net, Blk: g.Blk, NetB: g.NetB, BlkB: g.BlkB}
	})
	env.RunFor(200 * sim.Second)
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	if vm == nil {
		t.Fatal("setup incomplete")
	}
	return env, pl, vm
}

func TestFetchToNullNearLineRate(t *testing.T) {
	env, _, vm := platform(t)
	var res FetchResult
	env.Spawn("wget", func(p *sim.Proc) {
		res = vm.Fetch(p, 512<<20, SinkNull)
	})
	env.RunFor(60 * sim.Second)
	env.Shutdown()
	if res.Bytes < 512<<20 {
		t.Fatalf("fetched %d", res.Bytes)
	}
	if got := res.ThroughputMBps(); got < 105 || got > 120 {
		t.Fatalf("throughput = %.1f MB/s", got)
	}
	if res.Stalls != 0 {
		t.Fatalf("stalls on idle platform: %d", res.Stalls)
	}
}

func TestFetchToDiskBoundByDisk(t *testing.T) {
	env, _, vm := platform(t)
	var res FetchResult
	env.Spawn("wget", func(p *sim.Proc) {
		res = vm.Fetch(p, 256<<20, SinkDisk)
	})
	env.RunFor(60 * sim.Second)
	env.Shutdown()
	got := res.ThroughputMBps()
	// The 110MB/s disk is the bottleneck; allow pipeline slack.
	if got < 85 || got > 112 {
		t.Fatalf("to-disk throughput = %.1f MB/s", got)
	}
}

func TestFetchAcrossRestartsLosesThroughput(t *testing.T) {
	env, pl, vm := platform(t)
	nb := pl.NetBacks[0]
	eng := snapshot.NewEngine(pl.HV, hv.SystemCaller)
	if err := eng.Manage(nb.AsRestartable(), snapshot.Policy{Kind: snapshot.PolicyTimer, Interval: sim.Second}); err != nil {
		t.Fatal(err)
	}
	var res FetchResult
	env.Spawn("wget", func(p *sim.Proc) {
		res = vm.Fetch(p, 512<<20, SinkNull)
	})
	env.RunFor(300 * sim.Second)
	env.Shutdown()
	if res.Bytes < 512<<20 {
		t.Fatalf("transfer did not complete: %d bytes", res.Bytes)
	}
	got := res.ThroughputMBps()
	// Figure 6.3: 1s restarts cost over half the throughput.
	if got > 70 {
		t.Fatalf("throughput with 1s restarts = %.1f MB/s, expected heavy loss", got)
	}
	if res.Stalls == 0 || res.Retransmits == 0 {
		t.Fatalf("no TCP recovery observed: %+v", res)
	}
}

func TestHTTPBenchBaseline(t *testing.T) {
	env, _, vm := platform(t)
	var res HTTPBenchResult
	env.Spawn("ab", func(p *sim.Proc) {
		srv := vm.StartHTTPServer(11 * 1024)
		defer srv.Stop()
		res = vm.RunHTTPBench(p, 5000, 5, 11*1024)
	})
	env.RunFor(120 * sim.Second)
	env.Shutdown()
	rps := res.RequestsPerSecond()
	if rps < 2500 || rps > 4200 {
		t.Fatalf("req/s = %.0f", rps)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	// No restarts: worst request under ~20ms.
	if res.MaxLatency > 20*sim.Millisecond {
		t.Fatalf("max latency = %v", res.MaxLatency)
	}
}

func TestHTTPBenchWithRestartsShowsTails(t *testing.T) {
	env, pl, vm := platform(t)
	eng := snapshot.NewEngine(pl.HV, hv.SystemCaller)
	eng.Manage(pl.NetBacks[0].AsRestartable(), snapshot.Policy{Kind: snapshot.PolicyTimer, Interval: 2 * sim.Second})
	var res HTTPBenchResult
	env.Spawn("ab", func(p *sim.Proc) {
		srv := vm.StartHTTPServer(11 * 1024)
		defer srv.Stop()
		res = vm.RunHTTPBench(p, 15000, 5, 11*1024)
	})
	env.RunFor(300 * sim.Second)
	env.Shutdown()
	if res.MaxLatency < 500*sim.Millisecond {
		t.Fatalf("max latency = %v, expected an RTO-driven outlier", res.MaxLatency)
	}
	if res.RequestsPerSecond() > 3200 {
		t.Fatalf("restarts did not reduce throughput: %.0f req/s", res.RequestsPerSecond())
	}
}

func TestNetRPC(t *testing.T) {
	env, _, vm := platform(t)
	var ok bool
	var elapsed sim.Duration
	env.Spawn("rpc", func(p *sim.Proc) {
		t0 := p.Now()
		ok = vm.NetRPC(p, 256, 8192, 250*sim.Microsecond)
		elapsed = p.Now().Sub(t0)
	})
	env.RunFor(10 * sim.Second)
	env.Shutdown()
	if !ok {
		t.Fatal("rpc failed on idle platform")
	}
	if elapsed < 250*sim.Microsecond || elapsed > 5*sim.Millisecond {
		t.Fatalf("rpc latency = %v", elapsed)
	}
}
