package guest

import (
	"fmt"

	"xoar/internal/netdrv"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// HTTP model constants, calibrated so an idle platform serves ~3200 req/s at
// concurrency 5, matching Figure 6.5's absolute scale.
const (
	requestBytes = 512
	// serverCPUPerReq is Apache's per-request work (accept, parse, sendfile).
	serverCPUPerReq = 550 * sim.Microsecond
	// serverWorkers bounds in-flight request handling (Apache's MPM).
	serverWorkers = 4
)

// HTTPServer is the guest-side web server consuming requests from the vif.
type HTTPServer struct {
	vm        *VM
	pageBytes int
	workQ     *sim.Chan[int64]
	procs     []*sim.Proc
	Served    int64
}

// StartHTTPServer spawns the server processes inside the guest: an acceptor
// that drains the vif and a worker pool that computes and responds.
func (vm *VM) StartHTTPServer(pageBytes int) *HTTPServer {
	s := &HTTPServer{vm: vm, pageBytes: pageBytes, workQ: sim.NewChan[int64](vm.H.Env)}
	acceptor := vm.H.Env.Spawn(fmt.Sprintf("httpd-accept-%v", vm.Dom), func(p *sim.Proc) {
		for {
			pkt, err := vm.Net.Recv(p)
			if err != nil {
				if !vm.Net.WaitReconnect(p, 60*sim.Second) {
					return
				}
				continue
			}
			s.workQ.Send(pkt.Seq)
		}
	})
	s.procs = append(s.procs, acceptor)
	for i := 0; i < serverWorkers; i++ {
		w := vm.H.Env.Spawn(fmt.Sprintf("httpd-worker-%v-%d", vm.Dom, i), func(p *sim.Proc) {
			for {
				seq, ok := s.workQ.Recv(p)
				if !ok {
					return
				}
				vm.H.Compute(p, vm.Dom, serverCPUPerReq)
				// Send the response; on disconnect, wait out the microreboot
				// and retry once (the client retransmits anyway).
				if err := vm.Net.Send(p, s.pageBytes, seq); err != nil {
					if vm.Net.WaitReconnect(p, 60*sim.Second) {
						vm.Net.Send(p, s.pageBytes, seq)
					}
				}
				s.Served++
			}
		})
		s.procs = append(s.procs, w)
	}
	return s
}

// Stop kills the server processes.
func (s *HTTPServer) Stop() {
	for _, p := range s.procs {
		p.Kill()
	}
	s.workQ.Close()
}

// HTTPBenchResult mirrors the Apache benchmark's report (Figure 6.5).
type HTTPBenchResult struct {
	Requests    int
	Concurrency int
	TotalTime   sim.Duration
	// MeanLatency is time-per-request at the given concurrency.
	MeanLatency sim.Duration
	// MaxLatency is the longest single request (the 3000–7000ms outliers
	// under restarts).
	MaxLatency sim.Duration
	// Errors counts requests abandoned after repeated timeouts.
	Errors int
	Bytes  int64
}

// RequestsPerSecond is the benchmark's throughput.
func (r HTTPBenchResult) RequestsPerSecond() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.Requests-r.Errors) / r.TotalTime.Seconds()
}

// TransferRateMBps is payload moved per second.
func (r HTTPBenchResult) TransferRateMBps() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.TotalTime.Seconds() / 1e6
}

// RunHTTPBench drives totalRequests requests from concurrency LAN clients
// against the guest's HTTP server and blocks until they complete. The
// caller must have started the server with StartHTTPServer.
func (vm *VM) RunHTTPBench(p *sim.Proc, totalRequests, concurrency, pageBytes int) HTTPBenchResult {
	env := vm.H.Env
	res := HTTPBenchResult{Requests: totalRequests, Concurrency: concurrency}

	// Response dispatch: TxSink routes each transmitted response to the
	// waiting client by sequence number.
	waiters := make(map[int64]*sim.Chan[int])
	prevSink := vm.NetB.TxSink
	vm.NetB.TxSink = func(g xtypes.DomID, pkt netdrv.Packet) {
		if prevSink != nil {
			prevSink(g, pkt)
		}
		if g != vm.Dom {
			return
		}
		if ch, ok := waiters[pkt.Seq]; ok {
			ch.Send(pkt.Bytes)
		}
	}
	defer func() { vm.NetB.TxSink = prevSink }()

	remaining := totalRequests
	var nextSeq int64
	done := sim.NewChan[struct{}](env)

	// synRTO is Linux's initial SYN retransmission timeout (3s in the
	// 2.6-series kernels of the paper's era): a connection attempt whose SYN
	// lands in a NetBack outage stalls for 3 seconds (then 6) — the source
	// of the paper's 3000–7000ms outliers. Most requests caught by an outage
	// are mid-connection, though: the NIC's DMA state survives the
	// microreboot, so their segments recover on the ordinary data-RTO chain;
	// only the fraction at connection establishment pays the SYN timeout.
	const synRTO = 3 * sim.Second
	const synLossFraction = 0.8

	client := func(cp *sim.Proc) {
		for remaining > 0 {
			remaining--
			nextSeq++
			seq := nextSeq
			respCh := sim.NewChan[int](env)
			waiters[seq] = respCh
			start := cp.Now()
			dataRTO := rtoInitial
			connRTO := synRTO
			attempts := 0
			for {
				if vm.NetB.WireDeliver(cp, vm.Dom, requestBytes, seq) {
					// Connection established; wait for the response with
					// ordinary data-RTO retransmission.
					if n, ok := respCh.RecvTimeout(cp, dataRTO); ok {
						res.Bytes += int64(n)
						break
					}
					dataRTO *= 2
					if dataRTO > rtoMax {
						dataRTO = rtoMax
					}
				} else if env.Rand().Float64() < synLossFraction {
					// SYN lost: long connection-establishment backoff.
					cp.Sleep(connRTO)
					connRTO *= 2
				} else {
					// Segment lost mid-connection: ordinary retransmission.
					cp.Sleep(dataRTO)
					dataRTO *= 2
					if dataRTO > rtoMax {
						dataRTO = rtoMax
					}
				}
				attempts++
				if attempts > 8 {
					res.Errors++
					break
				}
			}
			delete(waiters, seq)
			lat := cp.Now().Sub(start)
			if lat > res.MaxLatency {
				res.MaxLatency = lat
			}
		}
		done.Send(struct{}{})
	}

	start := p.Now()
	for i := 0; i < concurrency; i++ {
		env.Spawn(fmt.Sprintf("ab-client-%d", i), client)
	}
	for i := 0; i < concurrency; i++ {
		done.Recv(p)
	}
	res.TotalTime = p.Now().Sub(start)
	if n := res.Requests - res.Errors; n > 0 {
		res.MeanLatency = sim.Duration(int64(res.TotalTime) * int64(concurrency) / int64(n))
	}
	return res
}
