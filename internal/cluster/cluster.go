// Package cluster runs a fleet of simulated Xoar hosts — each its own
// hw.Machine and hv.Hypervisor booted through the standard profile — inside
// one deterministic sim.Env, under a cluster scheduler.
//
// The paper's security argument (§2.3 blast radius, §5 microreboot exposure
// windows) is made per host; this layer is where it becomes
// production-relevant: guest specs are placed across hosts by a pluggable
// policy, hot hosts shed load through live migration over a modeled
// management network (reusing internal/migrate), and per-host shard
// microreboots are coordinated fleet-wide so restart storms never take down
// more than a configured fraction of netback/blkback capacity at once.
//
// Determinism model: all hosts share one virtual clock and one seeded random
// source. Hosts boot sequentially; every scheduler decision iterates hosts in
// index order; workload randomness is drawn in arrival order from the shared
// env. Same seed, same config — bit-identical fleet metrics.
package cluster

import (
	"fmt"

	"xoar/internal/boot"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/migrate"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/toolstack"
	"xoar/internal/xtypes"
)

// Config sizes and parameterizes a fleet.
type Config struct {
	// Hosts is the number of simulated machines (>= 1).
	Hosts int
	// Seed seeds the shared simulation environment.
	Seed int64
	// Machine configures each host's hardware; the zero value uses the
	// default testbed machine.
	Machine hw.MachineConfig
	// Policy places incoming guests; nil defaults to Spread.
	Policy Policy
	// Link models the inter-host management network migrations ride on; the
	// zero value uses migrate.DefaultLink (dedicated GigE).
	Link migrate.Link
	// Fleet, when non-nil, gives every host its own telemetry registry
	// (merged with host labels at export) plus a "cluster" registry for
	// scheduler-level metrics.
	Fleet *telemetry.Fleet
	// GuestQuota is each host toolstack's MaxVMs; 0 defaults to 1024, far
	// above the per-host residency a churn workload reaches.
	GuestQuota int
	// HeadroomMB is per-host memory the scheduler refuses to commit,
	// covering transient build-time allocations. Default 64.
	HeadroomMB int
}

// Host is one machine of the fleet.
type Host struct {
	Index int
	Name  string
	HV    *hv.Hypervisor
	PL    *boot.Platform

	// capacityMB is the schedulable guest memory, fixed after boot.
	capacityMB int
	// committedMB is capacity the scheduler has promised to placed guests,
	// maintained from placement to destroy (creation lag included, so two
	// placements cannot race past the same free page).
	committedMB int
	// Placed counts every guest ever placed here — the cumulative counter
	// placement-quality metrics compare across hosts.
	Placed int

	guests map[xtypes.DomID]*Guest
}

// FreeMB is the scheduler's view of placeable memory on this host.
func (h *Host) FreeMB() int { return h.capacityMB - h.committedMB }

// GuestCount reports the guests currently placed on this host.
func (h *Host) GuestCount() int { return len(h.guests) }

// Guest is the cluster's record of one placed guest.
type Guest struct {
	Name  string
	Dom   xtypes.DomID
	MemMB int

	host      *Host
	migrating bool
	gone      bool
}

// Host returns the host currently running the guest.
func (g *Guest) Host() *Host { return g.host }

// Cluster is a fleet of hosts under one scheduler.
type Cluster struct {
	Env   *sim.Env
	Hosts []*Host

	cfg     Config
	policy  Policy
	link    migrate.Link
	m       *telemetry.Registry // cluster-level scheduler metrics
	migDone *sim.Signal         // broadcast after each migration completes

	// Scheduler counters, all deterministic.
	Placements        int
	PlacementFailures int
	Migrations        int
	MigrationFailures int
}

// New boots a fleet. Hosts come up sequentially on the shared clock — fleet
// bring-up is not the benchmark — with the console omitted, as in the
// paper's hosting configuration (§6.1.1).
func New(cfg Config) (*Cluster, error) {
	if cfg.Hosts < 1 {
		return nil, fmt.Errorf("cluster: need at least one host: %w", xtypes.ErrInvalid)
	}
	if cfg.Policy == nil {
		cfg.Policy = Spread{}
	}
	if cfg.Link == (migrate.Link{}) {
		cfg.Link = migrate.DefaultLink()
	}
	if cfg.GuestQuota <= 0 {
		cfg.GuestQuota = 1024
	}
	if cfg.HeadroomMB <= 0 {
		cfg.HeadroomMB = 64
	}
	mcfg := cfg.Machine
	if mcfg == (hw.MachineConfig{}) {
		mcfg = hw.DefaultMachineConfig()
	}

	env := sim.NewEnv(cfg.Seed)
	c := &Cluster{
		Env:     env,
		cfg:     cfg,
		policy:  cfg.Policy,
		link:    cfg.Link,
		m:       cfg.Fleet.Host("cluster"),
		migDone: sim.NewSignal(env),
	}
	for i := 0; i < cfg.Hosts; i++ {
		name := fmt.Sprintf("host-%d", i)
		h := hv.New(env, hw.NewMachineWith(env, mcfg))
		host := &Host{Index: i, Name: name, HV: h, guests: make(map[xtypes.DomID]*Guest)}

		var bootErr error
		done := false
		env.Spawn("boot-"+name, func(p *sim.Proc) {
			host.PL, bootErr = boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{
				Toolstacks: 1,
				NoConsole:  true,
				Telemetry:  cfg.Fleet.Host(name),
				GuestQuota: cfg.GuestQuota,
			})
			done = true
		})
		for t := 0; t < 300 && !done; t++ {
			env.RunFor(sim.Second)
		}
		if bootErr != nil {
			return nil, fmt.Errorf("cluster: %s: %w", name, bootErr)
		}
		if !done {
			return nil, fmt.Errorf("cluster: %s did not finish booting", name)
		}
		host.capacityMB = h.MM.FreeMB() - cfg.HeadroomMB
		c.Hosts = append(c.Hosts, host)
	}
	return c, nil
}

// place runs the policy over current loads and commits memory on the chosen
// host. Hosts are presented in index order, so ties break deterministically.
func (c *Cluster) place(memMB int) *Host {
	loads := make([]Load, len(c.Hosts))
	for i, h := range c.Hosts {
		loads[i] = Load{FreeMB: h.FreeMB(), Guests: h.GuestCount()}
	}
	i := c.policy.Choose(loads, memMB)
	if i < 0 || i >= len(c.Hosts) {
		return nil
	}
	h := c.Hosts[i]
	if h.FreeMB() < memMB {
		return nil // policy bug; refuse to over-commit
	}
	h.committedMB += memMB
	return h
}

// Launch places and boots one micro guest, returning a destroy function. The
// signature is what workload generators consume: cold-start latency is the
// caller's submit-to-return interval, which spans placement, the Builder's
// queue and construct phases, and the image's boot.
func (c *Cluster) Launch(p *sim.Proc, name string, memMB int) (destroy func(*sim.Proc) error, err error) {
	if memMB <= 0 {
		memMB = 64
	}
	host := c.place(memMB)
	if host == nil {
		c.PlacementFailures++
		c.m.Counter("cluster_placement_failures_total").Inc()
		return nil, fmt.Errorf("cluster: no host fits %dMB guest %q: %w", memMB, name, xtypes.ErrNoMem)
	}
	ts := host.PL.Toolstacks[0]
	rec, cerr := ts.CreateVM(p, toolstack.GuestConfig{
		Name: name, Image: osimage.ImgGuestMicro, MemMB: memMB,
	})
	if cerr != nil {
		host.committedMB -= memMB
		c.PlacementFailures++
		c.m.Counter("cluster_placement_failures_total").Inc()
		return nil, cerr
	}
	g := &Guest{Name: name, Dom: rec.Dom, MemMB: memMB, host: host}
	host.guests[g.Dom] = g
	host.Placed++
	c.Placements++
	c.m.Counter("cluster_placements_total", telemetry.L("policy", c.policy.Name())).Inc()
	return func(p *sim.Proc) error { return c.destroy(p, g) }, nil
}

// destroy tears the guest down on whichever host currently runs it, waiting
// out an in-flight migration first (the guest's identity moves mid-flight).
func (c *Cluster) destroy(p *sim.Proc, g *Guest) error {
	for g.migrating {
		c.migDone.Wait(p)
	}
	if g.gone {
		return nil
	}
	g.gone = true
	host := g.host
	err := host.PL.Toolstacks[0].DestroyVM(p, g.Dom)
	delete(host.guests, g.Dom)
	host.committedMB -= g.MemMB
	return err
}
