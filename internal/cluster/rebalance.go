package cluster

import (
	"fmt"

	"xoar/internal/migrate"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/toolstack"
)

// RebalanceConfig tunes the fleet rebalancer.
type RebalanceConfig struct {
	// Interval between rebalance scans. Default 5s.
	Interval sim.Duration
	// MinGapMB is the smallest free-memory gap between the fullest and
	// emptiest host worth a migration; below it the fleet is considered
	// balanced. Default 512.
	MinGapMB int
}

// RebalanceOnce scans the fleet and, if the fullest and emptiest hosts differ
// by at least minGapMB of free memory, live-migrates one guest from the hot
// host to the cold one. It reports whether a migration was attempted.
//
// Victim selection is the lowest DomID on the hot host that fits the cold
// host — deterministic, and biased toward long-lived guests (low IDs), which
// amortize the migration cost over more remaining lifetime.
func (c *Cluster) RebalanceOnce(p *sim.Proc, minGapMB int) (bool, error) {
	if minGapMB <= 0 {
		minGapMB = 512
	}
	hot, cold := -1, -1
	for i, h := range c.Hosts {
		if hot < 0 || h.FreeMB() < c.Hosts[hot].FreeMB() {
			hot = i
		}
		if cold < 0 || h.FreeMB() > c.Hosts[cold].FreeMB() {
			cold = i
		}
	}
	if hot == cold || c.Hosts[cold].FreeMB()-c.Hosts[hot].FreeMB() < minGapMB {
		return false, nil
	}
	src, dst := c.Hosts[hot], c.Hosts[cold]
	var victim *Guest
	for id, g := range src.guests {
		if g.migrating || g.gone || g.MemMB > dst.FreeMB() {
			continue
		}
		if victim == nil || id < victim.Dom {
			victim = g
		}
	}
	if victim == nil {
		return false, nil
	}
	return true, c.migrateGuest(p, victim, dst)
}

// migrateGuest moves g to dst with the standard orchestration: the source
// toolstack drives the pre-copy, the destination Builder constructs the
// receiving shell, and the destination toolstack adopts the result. The
// guest record is updated in place so the caller's destroy closure follows
// the guest to its new host.
func (c *Cluster) migrateGuest(p *sim.Proc, g *Guest, dst *Host) error {
	src := g.host
	g.migrating = true
	dst.committedMB += g.MemMB // reserve before the pre-copy starts
	defer func() {
		g.migrating = false
		c.migDone.Broadcast()
	}()

	srcTS := src.PL.Toolstacks[0]
	dstTS := dst.PL.Toolstacks[0]
	newDom, res, err := migrate.LiveMigrate(
		p, src.HV, srcTS.Dom, g.Dom,
		dst.HV, dst.PL.BuilderDom,
		c.link, migrate.DefaultOptions())
	if err != nil {
		dst.committedMB -= g.MemMB
		c.MigrationFailures++
		c.m.Counter("cluster_migration_failures_total").Inc()
		return err
	}
	srcTS.Forget(g.Dom)
	delete(src.guests, g.Dom)
	src.committedMB -= g.MemMB

	if err := dst.HV.SetParentTool(dst.PL.BuilderDom, newDom, dstTS.Dom); err != nil {
		return fmt.Errorf("cluster: handoff of migrated %q: %w", g.Name, err)
	}
	if _, err := dstTS.Adopt(p, newDom, toolstack.GuestConfig{Name: g.Name, MemMB: g.MemMB}); err != nil {
		return fmt.Errorf("cluster: adopt of migrated %q: %w", g.Name, err)
	}
	g.Dom = newDom
	g.host = dst
	dst.guests[newDom] = g
	c.Migrations++
	c.m.Counter("cluster_migrations_total").Inc()
	c.m.Histogram("cluster_migration_downtime_ms", telemetry.LatencyMSBuckets).
		Observe(float64(res.Downtime) / float64(sim.Millisecond))
	return nil
}

// StartRebalancer spawns the periodic rebalance loop; the returned proc runs
// until killed or env shutdown.
func (c *Cluster) StartRebalancer(cfg RebalanceConfig) *sim.Proc {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * sim.Second
	}
	return c.Env.Spawn("cluster-rebalancer", func(p *sim.Proc) {
		for {
			p.Sleep(cfg.Interval)
			if _, err := c.RebalanceOnce(p, cfg.MinGapMB); err != nil {
				// A lost race with guest churn (destroyed mid-selection) is
				// normal under load; the next scan re-evaluates from scratch.
				continue
			}
		}
	})
}
