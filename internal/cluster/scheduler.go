package cluster

// Load is one host's state as presented to a placement policy. Hosts appear
// in index order, so any policy that breaks ties by slice position is
// deterministic for free.
type Load struct {
	// FreeMB is uncommitted schedulable memory.
	FreeMB int
	// Guests is the number of guests currently placed.
	Guests int
}

// Policy chooses a host for an incoming guest.
type Policy interface {
	// Name identifies the policy in metrics and reports.
	Name() string
	// Choose returns the index of the host to place a memMB guest on, or -1
	// when no host fits. Implementations must be pure functions of their
	// arguments: placement is on the simulation's hot path and replay
	// determinism depends on it.
	Choose(loads []Load, memMB int) int
}

// BinPack fills the fullest feasible host first, concentrating load so whole
// hosts stay empty (the policy an operator uses to power down spare
// capacity). Ties break toward the lowest index.
type BinPack struct{}

// Name implements Policy.
func (BinPack) Name() string { return "binpack" }

// Choose implements Policy.
func (BinPack) Choose(loads []Load, memMB int) int {
	best := -1
	for i, l := range loads {
		if l.FreeMB < memMB {
			continue
		}
		if best < 0 || l.FreeMB < loads[best].FreeMB {
			best = i
		}
	}
	return best
}

// Spread places on the emptiest host, balancing load so every guest sees the
// least-contended Builder queue (the policy that minimizes cold-start tails).
// Ties break toward the lowest index.
type Spread struct{}

// Name implements Policy.
func (Spread) Name() string { return "spread" }

// Choose implements Policy.
func (Spread) Choose(loads []Load, memMB int) int {
	best := -1
	for i, l := range loads {
		if l.FreeMB < memMB {
			continue
		}
		if best < 0 || l.FreeMB > loads[best].FreeMB {
			best = i
		}
	}
	return best
}

// PolicyByName maps a CLI flag value to a policy; unknown names fall back to
// Spread.
func PolicyByName(name string) Policy {
	if name == "binpack" {
		return BinPack{}
	}
	return Spread{}
}
