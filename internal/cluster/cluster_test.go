package cluster

import (
	"errors"
	"testing"

	"xoar/internal/sim"
	"xoar/internal/telemetry"
	"xoar/internal/xtypes"
)

// run drives env until fn (spawned as a proc) finishes, failing on timeout.
func run(t *testing.T, c *Cluster, name string, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	c.Env.Spawn(name, func(p *sim.Proc) {
		fn(p)
		done = true
	})
	for i := 0; i < 600 && !done; i++ {
		c.Env.RunFor(sim.Second)
	}
	if !done {
		t.Fatalf("%s did not finish", name)
	}
}

func TestClusterBootsHosts(t *testing.T) {
	c, err := New(Config{Hosts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Hosts) != 2 {
		t.Fatalf("hosts = %d", len(c.Hosts))
	}
	for i, h := range c.Hosts {
		if h.PL == nil || len(h.PL.Toolstacks) != 1 {
			t.Fatalf("host %d not booted", i)
		}
		if h.FreeMB() < 2000 {
			t.Fatalf("host %d free = %dMB, control plane ate the machine", i, h.FreeMB())
		}
		// All hosts share one clock but none shares a hypervisor.
		if h.HV.Env != c.Env {
			t.Fatalf("host %d on a different clock", i)
		}
		if i > 0 && h.HV == c.Hosts[0].HV {
			t.Fatal("hosts share a hypervisor")
		}
	}
}

func TestPolicyChoose(t *testing.T) {
	loads := []Load{{FreeMB: 500}, {FreeMB: 2000}, {FreeMB: 100}, {FreeMB: 2000}}
	if got := (Spread{}).Choose(loads, 64); got != 1 {
		t.Fatalf("spread chose %d, want 1 (emptiest, lowest-index tie)", got)
	}
	if got := (BinPack{}).Choose(loads, 64); got != 2 {
		t.Fatalf("binpack chose %d, want 2 (fullest feasible)", got)
	}
	// 100MB free can't fit 256MB: binpack must skip to the next fullest.
	if got := (BinPack{}).Choose(loads, 256); got != 0 {
		t.Fatalf("binpack chose %d, want 0", got)
	}
	if got := (Spread{}).Choose(loads, 4096); got != -1 {
		t.Fatalf("spread chose %d for an unplaceable guest, want -1", got)
	}
}

func TestSpreadLaunchBalancesAndDestroyReleases(t *testing.T) {
	c, err := New(Config{Hosts: 2, Seed: 1, Policy: Spread{}})
	if err != nil {
		t.Fatal(err)
	}
	free0 := []int{c.Hosts[0].FreeMB(), c.Hosts[1].FreeMB()}
	var destroys []func(*sim.Proc) error
	run(t, c, "launch", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			d, err := c.Launch(p, "fn", 64)
			if err != nil {
				t.Errorf("launch %d: %v", i, err)
				return
			}
			destroys = append(destroys, d)
		}
	})
	if g0, g1 := c.Hosts[0].GuestCount(), c.Hosts[1].GuestCount(); g0 != 3 || g1 != 3 {
		t.Fatalf("spread placed %d/%d, want 3/3", g0, g1)
	}
	if c.Placements != 6 {
		t.Fatalf("placements = %d", c.Placements)
	}
	run(t, c, "destroy", func(p *sim.Proc) {
		for _, d := range destroys {
			if err := d(p); err != nil {
				t.Errorf("destroy: %v", err)
			}
		}
	})
	for i, h := range c.Hosts {
		if h.GuestCount() != 0 || h.FreeMB() != free0[i] {
			t.Fatalf("host %d did not return to idle: %d guests, %dMB free (was %dMB)",
				i, h.GuestCount(), h.FreeMB(), free0[i])
		}
	}
	// Destroy is idempotent.
	run(t, c, "redestroy", func(p *sim.Proc) {
		if err := destroys[0](p); err != nil {
			t.Errorf("second destroy: %v", err)
		}
	})
}

func TestBinPackConcentrates(t *testing.T) {
	c, err := New(Config{Hosts: 3, Seed: 1, Policy: BinPack{}})
	if err != nil {
		t.Fatal(err)
	}
	run(t, c, "launch", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := c.Launch(p, "fn", 64); err != nil {
				t.Errorf("launch %d: %v", i, err)
				return
			}
		}
	})
	if g0 := c.Hosts[0].GuestCount(); g0 != 5 {
		t.Fatalf("binpack scattered: host0 has %d of 5 guests", g0)
	}
}

func TestPlacementFailsWhenFleetFull(t *testing.T) {
	c, err := New(Config{Hosts: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	launched := 0
	run(t, c, "fill", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if _, err := c.Launch(p, "big", 1024); err != nil {
				lastErr = err
				return
			}
			launched++
		}
	})
	if !errors.Is(lastErr, xtypes.ErrNoMem) {
		t.Fatalf("err = %v, want ErrNoMem", lastErr)
	}
	if launched < 2 {
		t.Fatalf("only %d guests fit before exhaustion", launched)
	}
	if c.PlacementFailures != 1 {
		t.Fatalf("failures = %d", c.PlacementFailures)
	}
}

func TestRebalanceMovesGuestOffHotHost(t *testing.T) {
	fleet := telemetry.NewFleet()
	// BinPack deliberately piles everything on host 0.
	c, err := New(Config{Hosts: 2, Seed: 1, Policy: BinPack{}, Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	var destroys []func(*sim.Proc) error
	run(t, c, "launch", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			d, err := c.Launch(p, "svc", 256)
			if err != nil {
				t.Errorf("launch: %v", err)
				return
			}
			destroys = append(destroys, d)
		}
	})
	if c.Hosts[0].GuestCount() != 4 {
		t.Fatalf("setup: host0 has %d guests", c.Hosts[0].GuestCount())
	}
	run(t, c, "rebalance", func(p *sim.Proc) {
		moved, err := c.RebalanceOnce(p, 512)
		if err != nil {
			t.Errorf("rebalance: %v", err)
		}
		if !moved {
			t.Error("rebalance declined an obviously imbalanced fleet")
		}
	})
	if g0, g1 := c.Hosts[0].GuestCount(), c.Hosts[1].GuestCount(); g0 != 3 || g1 != 1 {
		t.Fatalf("after rebalance: %d/%d, want 3/1", g0, g1)
	}
	if c.Migrations != 1 {
		t.Fatalf("migrations = %d", c.Migrations)
	}
	// The destroy closures must follow migrated guests to their new host:
	// tear all four down and verify both hosts drain.
	run(t, c, "drain", func(p *sim.Proc) {
		for _, d := range destroys {
			if err := d(p); err != nil {
				t.Errorf("destroy after migration: %v", err)
			}
		}
	})
	if g0, g1 := c.Hosts[0].GuestCount(), c.Hosts[1].GuestCount(); g0 != 0 || g1 != 0 {
		t.Fatalf("after drain: %d/%d guests left", g0, g1)
	}
	// The migration surfaced in cluster-level telemetry.
	snap := fleet.Snapshot()
	found := false
	for _, pt := range snap.Counters {
		if pt.Name == "cluster_migrations_total{host=cluster}" && pt.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cluster_migrations_total missing from fleet snapshot: %+v", snap.Counters)
	}
}

func TestBalancedFleetDoesNotThrash(t *testing.T) {
	c, err := New(Config{Hosts: 2, Seed: 1, Policy: Spread{}})
	if err != nil {
		t.Fatal(err)
	}
	run(t, c, "launch", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if _, err := c.Launch(p, "svc", 128); err != nil {
				t.Errorf("launch: %v", err)
			}
		}
	})
	run(t, c, "rebalance", func(p *sim.Proc) {
		moved, err := c.RebalanceOnce(p, 512)
		if err != nil {
			t.Errorf("rebalance: %v", err)
		}
		if moved {
			t.Error("rebalancer migrated on a balanced fleet")
		}
	})
	if c.Migrations != 0 {
		t.Fatalf("migrations = %d", c.Migrations)
	}
}

func TestRestartStormRespectsFleetCap(t *testing.T) {
	c, err := New(Config{Hosts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 hosts x (netback + blkback) = 4 backends; a 30% cap rounds down to
	// a single restart slot fleet-wide.
	g := c.StartMicroreboots(StormConfig{Interval: 100 * sim.Millisecond, MaxDownFraction: 0.3})
	if g.Backends != 4 {
		t.Fatalf("backends = %d, want 4", g.Backends)
	}
	if g.Slots != 1 {
		t.Fatalf("slots = %d, want 1", g.Slots)
	}
	c.Env.RunFor(5 * sim.Second)
	g.Stop()
	if g.Restarts < 10 {
		t.Fatalf("restarts = %d, storm never ran", g.Restarts)
	}
	if g.MaxInflight > g.Slots {
		t.Fatalf("max inflight %d exceeded cap %d", g.MaxInflight, g.Slots)
	}
	// Every backend kept restarting — the cap throttles, it must not starve.
	for _, h := range c.Hosts {
		for _, nb := range h.PL.NetBacks {
			st, ok := h.PL.Engine.Stats(nb.AsRestartable().Dom())
			if !ok || st.Restarts == 0 {
				t.Fatalf("%s netback never restarted", h.Name)
			}
			if st.Errors != 0 {
				t.Fatalf("%s netback restart errors: %d", h.Name, st.Errors)
			}
		}
	}
}

func TestStormGuardAllowsWiderCap(t *testing.T) {
	c, err := New(Config{Hosts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := c.StartMicroreboots(StormConfig{Interval: 50 * sim.Millisecond, MaxDownFraction: 0.5})
	if g.Slots != 2 {
		t.Fatalf("slots = %d, want 2", g.Slots)
	}
	c.Env.RunFor(5 * sim.Second)
	g.Stop()
	if g.MaxInflight > 2 {
		t.Fatalf("max inflight %d exceeded cap 2", g.MaxInflight)
	}
	if g.MaxInflight < 2 {
		t.Fatalf("max inflight %d: a 50ms period over 4 backends should overlap", g.MaxInflight)
	}
}
