package cluster

import (
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/xtypes"
)

// StormConfig tunes coordinated fleet-wide driver microreboots.
type StormConfig struct {
	// Interval is each backend's restart period. Default 10s (the paper's
	// §6.1.3 refresh cadence is configurable down to seconds).
	Interval sim.Duration
	// MaxDownFraction caps the fraction of the fleet's netback/blkback
	// shards allowed to be mid-restart at once. The guard always permits at
	// least one restart so a tiny fleet still refreshes. Default 0.25.
	MaxDownFraction float64
	// Fast selects copy-on-write rollback instead of full reboot.
	Fast bool
}

// StormGuard coordinates per-host shard microreboots so a fleet-wide restart
// storm degrades I/O capacity gradually instead of all at once. Every backend
// restarts on its own staggered period, but must hold one of a fixed pool of
// restart slots while down; the pool is sized from MaxDownFraction.
type StormGuard struct {
	cluster *Cluster
	slots   *sim.Resource

	// Slots is the concurrent-restart cap the guard enforces.
	Slots int
	// Backends is the number of shards under management fleet-wide.
	Backends int

	// Restarts counts completed microreboots.
	Restarts int
	// inflight tracks restarts currently holding a slot; MaxInflight is its
	// high-water mark, which tests pin against Slots.
	inflight    int
	MaxInflight int

	procs []*sim.Proc
}

// backendRef is one shard under storm management.
type backendRef struct {
	host *Host
	dom  xtypes.DomID
}

// StartMicroreboots places every netback and blkback on every host under
// per-request restart management and spawns one staggered restart loop per
// shard. Stagger offsets divide the interval evenly across the fleet in
// (host, shard) order, so with an honest guard the load is already smeared;
// the slot pool is what keeps correlated slips (every host rebooting after a
// fleet-wide config push) from stacking.
func (c *Cluster) StartMicroreboots(cfg StormConfig) *StormGuard {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * sim.Second
	}
	if cfg.MaxDownFraction <= 0 {
		cfg.MaxDownFraction = 0.25
	}

	var backends []backendRef
	for _, h := range c.Hosts {
		pol := snapshot.Policy{Kind: snapshot.PolicyPerRequest, Fast: cfg.Fast}
		for _, nb := range h.PL.NetBacks {
			r := nb.AsRestartable()
			_ = h.PL.Engine.Manage(r, pol) // ErrExists when already managed is fine
			backends = append(backends, backendRef{host: h, dom: r.Dom()})
		}
		for _, bb := range h.PL.BlkBacks {
			r := bb.AsRestartable()
			_ = h.PL.Engine.Manage(r, pol)
			backends = append(backends, backendRef{host: h, dom: r.Dom()})
		}
	}
	slots := int(cfg.MaxDownFraction * float64(len(backends)))
	if slots < 1 {
		slots = 1
	}
	g := &StormGuard{
		cluster:  c,
		slots:    sim.NewResource(c.Env, slots),
		Slots:    slots,
		Backends: len(backends),
	}
	for i, b := range backends {
		b := b
		offset := sim.Duration(int64(cfg.Interval) * int64(i) / int64(len(backends)))
		proc := c.Env.Spawn("storm-"+b.host.Name+"-"+b.dom.String(), func(p *sim.Proc) {
			p.Sleep(offset)
			for {
				g.slots.Acquire(p)
				g.inflight++
				if g.inflight > g.MaxInflight {
					g.MaxInflight = g.inflight
				}
				err := b.host.PL.Engine.RequestRestart(p, b.dom)
				g.inflight--
				g.slots.Release()
				if err == nil {
					g.Restarts++
				}
				p.Sleep(cfg.Interval)
			}
		})
		g.procs = append(g.procs, proc)
	}
	return g
}

// Stop kills the restart loops; in-flight restarts finish via the engine.
func (g *StormGuard) Stop() {
	for _, p := range g.procs {
		p.Kill()
	}
	g.procs = nil
}
