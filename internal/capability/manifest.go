package capability

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"xoar/internal/xtypes"
)

// The capability manifest is the generated, checked-in contract between the
// static analysis and the running system: per shard role, the exact
// hypercall grant set, where each grant comes from (the matrix entry points
// that demand it, or a rationale for the two non-hv enforcement points), its
// ring classification, and a risk score. `cmd/xoarlint -capmanifest`
// regenerates it; TestCapManifestDrift pins it byte-for-byte; the boot
// profiles read their whitelists out of the embedded copy below. Editing the
// JSON by hand therefore changes what the system actually grants — and
// immediately fails both the drift gate and the seceval whitelist tests.

// Grant is one hypercall in a shard's whitelist.
type Grant struct {
	// Hypercall is the xtypes constant name, e.g. "HyperDomctlCreate".
	Hypercall string `json:"hypercall"`
	// Call is the wire name (xtypes.Hypercall.String), the decode key.
	Call string `json:"call"`
	// Ring is the §7.1 classification: "ring0" or "deprivileged".
	Ring string `json:"ring"`
	// Risk scores the grant: ring weight (ring0=3, deprivileged=1) plus the
	// number of distinct state roots mutable through the entry points that
	// demand it (mutation breadth, from PRIVMATRIX `mutates`).
	Risk int `json:"risk"`
	// Ops are the privilege-matrix entry points that demand this grant;
	// empty only for rationale grants.
	Ops []string `json:"ops,omitempty"`
	// Mutates is the union of state roots reachable through Ops.
	Mutates []string `json:"mutates,omitempty"`
	// Rationale justifies grants no hv entry point demands (enforced
	// outside hv dispatch).
	Rationale string `json:"rationale,omitempty"`
}

// Surface is a shard's attack-surface summary.
type Surface struct {
	// Grants is the whitelist size.
	Grants int `json:"grants"`
	// Ring0Grants counts grants that keep ring-0 work reachable.
	Ring0Grants int `json:"ring0_grants"`
	// RiskTotal sums the per-grant risk scores.
	RiskTotal int `json:"risk_total"`
	// StateRoots is the union of hypervisor/domain state roots the shard
	// can mutate through its whitelist.
	StateRoots []string `json:"state_roots,omitempty"`
}

// ShardManifest is one shard role's capability manifest.
type ShardManifest struct {
	Role    string   `json:"role"`
	Doc     string   `json:"doc,omitempty"`
	IOPorts []string `json:"io_ports,omitempty"`
	Grants  []Grant  `json:"grants,omitempty"`
	Surface Surface  `json:"surface"`
}

// Manifest is the full artifact.
type Manifest struct {
	// Source names the derivation.
	Source string `json:"source"`
	// Shards are the per-role manifests, sorted by role name.
	Shards []ShardManifest `json:"shards"`
}

// EncodeJSON renders the manifest in its canonical checked-in form:
// two-space indented, trailing newline. All slices are sorted at build
// time, so encoding the same derivation twice is byte-identical.
func (m *Manifest) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeManifest parses a checked-in manifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("capability: parsing manifest: %w", err)
	}
	return &m, nil
}

// DiffManifests compares a checked-in manifest against a freshly built one
// and returns human-readable difference lines, empty when identical.
func DiffManifests(checked, built *Manifest) []string {
	var out []string
	if checked.Source != built.Source {
		out = append(out, fmt.Sprintf("source: checked in %q, built %q", checked.Source, built.Source))
	}
	want := map[string]ShardManifest{}
	for _, s := range checked.Shards {
		want[s.Role] = s
	}
	got := map[string]ShardManifest{}
	for _, s := range built.Shards {
		got[s.Role] = s
	}
	var names []string
	seen := map[string]bool{}
	for n := range want {
		names = append(names, n)
		seen[n] = true
	}
	for n := range got {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		w, inW := want[n]
		g, inG := got[n]
		switch {
		case !inG:
			out = append(out, fmt.Sprintf("- %s: shard removed (was %s)", n, describeShard(w)))
		case !inW:
			out = append(out, fmt.Sprintf("+ %s: new shard (%s)", n, describeShard(g)))
		case describeShard(w) != describeShard(g):
			out = append(out, fmt.Sprintf("~ %s: checked in {%s}, built {%s}", n, describeShard(w), describeShard(g)))
		}
	}
	return out
}

func describeShard(s ShardManifest) string {
	var grants []string
	for _, g := range s.Grants {
		grants = append(grants, g.Hypercall)
	}
	parts := []string{"grants=[" + strings.Join(grants, " ") + "]"}
	if len(s.IOPorts) > 0 {
		parts = append(parts, "ioports=["+strings.Join(s.IOPorts, " ")+"]")
	}
	parts = append(parts, fmt.Sprintf("risk=%d", s.Surface.RiskTotal))
	return strings.Join(parts, " ")
}

// SurfaceReport renders the generated attack-surface report: one line per
// shard with its whitelist size, residual ring-0 exposure, total risk and
// reachable state roots — the reviewable answer to "what can this shard do
// to the hypervisor if compromised" (§2.3).
func (m *Manifest) SurfaceReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attack surface per shard (derived from %s)\n", m.Source)
	fmt.Fprintf(&b, "%-14s %6s %6s %5s  %s\n", "shard", "grants", "ring0", "risk", "mutable state roots")
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "%-14s %6d %6d %5d  %s\n",
			s.Role, s.Surface.Grants, s.Surface.Ring0Grants, s.Surface.RiskTotal,
			strings.Join(s.Surface.StateRoots, " "))
	}
	return b.String()
}

// --- embedded runtime copy ---------------------------------------------------

//go:embed CAPMANIFEST.json
var embeddedManifest []byte

var (
	embedded       *Manifest
	embeddedByRole map[string]*ShardManifest
	embeddedGrants map[string][]xtypes.Hypercall
)

// init parses the checked-in manifest once. A corrupt or unresolvable
// manifest fails fast: every boot in the tree depends on it, and the drift
// gate means the only way to reach this panic is editing the artifact by
// hand without regenerating.
func init() {
	m, err := DecodeManifest(embeddedManifest)
	if err != nil {
		panic(fmt.Sprintf("capability: embedded CAPMANIFEST.json: %v (regenerate with: make capmanifest)", err))
	}
	embedded = m
	embeddedByRole = map[string]*ShardManifest{}
	embeddedGrants = map[string][]xtypes.Hypercall{}
	for i := range m.Shards {
		s := &m.Shards[i]
		embeddedByRole[s.Role] = s
		var hcs []xtypes.Hypercall
		for _, g := range s.Grants {
			hc, ok := xtypes.HypercallByName(g.Call)
			if !ok {
				panic(fmt.Sprintf("capability: CAPMANIFEST.json grant %q of shard %q names unknown hypercall %q (regenerate with: make capmanifest)",
					g.Hypercall, s.Role, g.Call))
			}
			hcs = append(hcs, hc)
		}
		embeddedGrants[s.Role] = hcs
	}
}

// Embedded returns the checked-in manifest the runtime consumes.
func Embedded() *Manifest { return embedded }

// Lookup returns one shard's manifest from the embedded artifact.
func Lookup(role string) (*ShardManifest, bool) {
	s, ok := embeddedByRole[role]
	return s, ok
}

// Hypercalls returns the hypercall whitelist the manifest grants a shard
// role, in manifest (ascending hypercall) order. Unknown roles panic: role
// names are compile-time constants and the manifest is drift-gated, so a
// miss is a wiring bug, not an input error.
func Hypercalls(role string) []xtypes.Hypercall {
	hcs, ok := embeddedGrants[role]
	if !ok {
		panic(fmt.Sprintf("capability: no manifest entry for shard role %q", role))
	}
	return append([]xtypes.Hypercall(nil), hcs...)
}

// IOPorts returns the named I/O-port ranges the manifest assigns a shard
// role.
func IOPorts(role string) []string {
	s, ok := embeddedByRole[role]
	if !ok {
		panic(fmt.Sprintf("capability: no manifest entry for shard role %q", role))
	}
	return append([]string(nil), s.IOPorts...)
}

// NonHVGrants returns the hypercalls the manifest grants a role without an
// hv dispatch derivation (rationale grants) — whitelist entries the seceval
// denial table must not expect an hv entry point for.
func NonHVGrants() map[xtypes.Hypercall]bool {
	out := map[xtypes.Hypercall]bool{}
	for _, s := range embedded.Shards {
		for _, g := range s.Grants {
			if g.Rationale == "" {
				continue
			}
			if hc, ok := xtypes.HypercallByName(g.Call); ok {
				out[hc] = true
			}
		}
	}
	return out
}
