// Package capability is the runtime half of the generated capability
// pipeline (DESIGN.md §13):
//
//	internal/hv source → privflow/funcflow → PRIVMATRIX → capgen → CAPMANIFEST → boot whitelists
//
// It declares the two hand-maintained inputs — the ring classification of
// each hypercall (§7.1) and the per-shard *functional* roles (which hv
// operations each shard class performs) — and serves the generated
// CAPMANIFEST.json artifact that `cmd/xoarlint -capmanifest` derives from
// those inputs plus the privilege matrix. Boot profiles and seceval consume
// the manifest, never hand-written Hyper* lists: the privilege a shard is
// granted is exactly the privilege the static analysis proves its declared
// operations demand.
package capability

import "xoar/internal/xtypes"

// Ring classifies one hypercall's hardware-privilege need, the §7.1
// future-work split: "splitting the hypervisor into a privileged and
// non-privileged component, which run in different hardware protection
// rings."
type Ring uint8

const (
	// Ring0 operations manipulate hardware state directly: page tables,
	// interrupt routing, I/O ports, device assignment.
	Ring0 Ring = iota
	// Deprivileged operations "function correctly even when run in a lower
	// privileged hardware protection domain" (§7.1): domain management,
	// registry plumbing, profiling, policy bookkeeping.
	Deprivileged
)

func (r Ring) String() string {
	if r == Ring0 {
		return "ring0"
	}
	return "deprivileged"
}

// rings is the per-hypercall classification. TestRingClassificationCovers-
// AllHypercalls (and capgen, at generation time) require an explicit entry
// for every xtypes.Hyper* constant — a newly added hypercall fails tier-1
// until it is classified here, instead of silently defaulting.
var rings = map[xtypes.Hypercall]Ring{
	// Ring-0: memory, interrupts, ports, devices, snapshots of memory.
	xtypes.HyperMapForeign:      Ring0,
	xtypes.HyperGrantTableOp:    Ring0,
	xtypes.HyperEvtchnOp:        Ring0,
	xtypes.HyperPhysdevOp:       Ring0,
	xtypes.HyperAssignDevice:    Ring0,
	xtypes.HyperSetVIRQ:         Ring0,
	xtypes.HyperIOPortAccess:    Ring0,
	xtypes.HyperVMSnapshot:      Ring0,
	xtypes.HyperVMRollback:      Ring0,
	xtypes.HyperMemoryOpOwn:     Ring0,
	xtypes.HyperSetTimerOp:      Ring0,
	xtypes.HyperVCPUOp:          Ring0,
	xtypes.HyperDebugOp:         Ring0,
	xtypes.HyperSchedOp:         Ring0,
	xtypes.HyperConsoleIO:       Ring0,
	xtypes.HyperReadConsoleRing: Ring0,

	// Deprivilegeable: management-plane calls whose work is bookkeeping.
	xtypes.HyperDomctlCreate:     Deprivileged,
	xtypes.HyperDomctlDestroy:    Deprivileged,
	xtypes.HyperDomctlPause:      Deprivileged,
	xtypes.HyperDomctlUnpause:    Deprivileged,
	xtypes.HyperDomctlMaxMem:     Deprivileged,
	xtypes.HyperDomctlPriv:       Deprivileged,
	xtypes.HyperDelegateAdmin:    Deprivileged,
	xtypes.HyperSetParentTool:    Deprivileged,
	xtypes.HyperSetRestartPolicy: Deprivileged,
	xtypes.HyperProfilingOp:      Deprivileged,
	xtypes.HyperXenVersion:       Deprivileged,
}

// RingOf returns the explicit ring classification of a hypercall. The
// second result is false for unclassified calls; callers choose their own
// conservative default, and the tier-1 exhaustiveness test keeps that
// branch dead.
func RingOf(h xtypes.Hypercall) (Ring, bool) {
	r, ok := rings[h]
	return r, ok
}

// Shard role names, the manifest keys boot profiles look up.
const (
	RoleBootstrapper = "bootstrapper"
	RoleBuilder      = "builder"
	RoleConsole      = "console"
	RolePCIBack      = "pciback"
	RoleNetBack      = "netback"
	RoleBlkBack      = "blkback"
	RoleToolstack    = "toolstack"
)

// GrantRationale is a whitelist entry that no hv dispatch entry point
// demands — privileges enforced elsewhere (device assignment rides
// AssignPrivileges; restart policy is probed by builder.holds). Each carries
// its justification into the generated manifest, where it is the only kind
// of grant without a derivation from the privilege matrix.
type GrantRationale struct {
	Hypercall xtypes.Hypercall
	Why       string
}

// Role declares what one shard class *does*: the hv entry points it
// invokes. capgen resolves each operation against the privilege matrix rows
// privflow generated and unions the demanded Hyper* constants into the
// shard's grant set — the whitelist is derived, not asserted. Ops must name
// non-exempt PRIVMATRIX entry points; typos fail generation.
type Role struct {
	Name string
	Doc  string
	// Ops are the hv entry points this shard invokes; the matrix maps them
	// to the privileges the grant set must contain.
	Ops []string
	// NonHV are whitelist entries enforced outside hv dispatch, with the
	// rationale the manifest records.
	NonHV []GrantRationale
	// IOPorts are the named I/O-port ranges the shard drives.
	IOPorts []string
}

// nonHVAssignDevice and nonHVRestartPolicy are the two enforcement points
// that live outside the hypervisor's dispatch surface in this model.
var (
	nonHVAssignDevice = GrantRationale{
		Hypercall: xtypes.HyperAssignDevice,
		Why:       "device assignment rides AssignPrivileges (HyperDomctlPriv); no separate hv dispatch entry",
	}
	nonHVRestartPolicy = GrantRationale{
		Hypercall: xtypes.HyperSetRestartPolicy,
		Why:       "restart policy is audited by builder.holds against this whitelist, not by hv dispatch",
	}
)

// Roles is the declarative shard inventory, Table 3.1's rows. The
// Bootstrapper and Builder share the domain-building operation set (§5.2:
// the Bootstrapper constructs the boot-time service shards directly, before
// the Builder serves); the Builder keeps it for the lifetime of the system
// and adds snapshot enrollment for the shards it microreboots.
var Roles = []Role{
	{
		Name: RoleBootstrapper,
		Doc:  "boots the service shards directly, then self-destructs (§5.2, §5.8)",
		Ops: []string{
			"AssignPrivileges", "CreateDomain", "Delegate", "DestroyDomain",
			"GrantIOPorts", "MapForeign", "Pause", "RouteHardwareVIRQ",
			"SetMaxMem", "SetParentTool", "Unpause", "VMRollback",
		},
		NonHV: []GrantRationale{nonHVAssignDevice, nonHVRestartPolicy},
	},
	{
		Name: RoleBuilder,
		Doc:  "the single fully-privileged component left after boot (§6.2): builds, scrubs and microreboots domains",
		Ops: []string{
			"AssignPrivileges", "CreateDomain", "Delegate", "DestroyDomain",
			"GrantIOPorts", "MapForeign", "Pause", "RevokeHypercall",
			"SetMaxMem", "SetParentTool", "Unpause", "VMRollback",
			"VMSnapshot",
		},
		NonHV: []GrantRationale{nonHVAssignDevice, nonHVRestartPolicy},
	},
	{
		Name:    RoleConsole,
		Doc:     "serial console shard: owns the console ports and its input VIRQ",
		Ops:     []string{"RouteHardwareVIRQ"},
		IOPorts: []string{"console"},
	},
	{
		Name:    RolePCIBack,
		Doc:     "PCI bus enumeration at boot; destroyed afterwards (§5.3) — port access only, no hypercall grants",
		IOPorts: []string{"pci"},
	},
	{
		Name: RoleNetBack,
		Doc:  "network driver domain: snapshot-enrolled for microreboots, no management rights",
		Ops:  []string{"RegisterRecoveryBox", "VMSnapshot"},
	},
	{
		Name: RoleBlkBack,
		Doc:  "block driver domain: snapshot-enrolled for microreboots, no management rights",
		Ops:  []string{"RegisterRecoveryBox", "VMSnapshot"},
	},
	{
		Name: RoleToolstack,
		Doc:  "guest management shard: lifecycle of its own guests plus live-migration memory copies",
		Ops: []string{
			"Delegate", "DestroyDomain", "MapForeign", "Pause",
			"SetMaxMem", "UnmapForeign", "Unpause",
		},
	},
}

// RoleByName returns the declared role, if any.
func RoleByName(name string) (Role, bool) {
	for _, r := range Roles {
		if r.Name == name {
			return r, true
		}
	}
	return Role{}, false
}
