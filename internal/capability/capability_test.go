package capability

import (
	"testing"

	"xoar/internal/xtypes"
)

// TestEmbeddedManifestMatchesRoles pins the embedded artifact to the role
// inventory: every declared role has a shard entry and vice versa, every
// grant decodes to a real hypercall, and only privileged hypercalls appear
// as grants (ambient calls need no whitelist entry).
func TestEmbeddedManifestMatchesRoles(t *testing.T) {
	m := Embedded()
	if m == nil {
		t.Fatal("no embedded manifest")
	}
	byRole := map[string]bool{}
	for _, s := range m.Shards {
		byRole[s.Role] = true
		if _, ok := RoleByName(s.Role); !ok {
			t.Errorf("manifest shard %q matches no declared role", s.Role)
		}
		for _, g := range s.Grants {
			hc, ok := xtypes.HypercallByName(g.Call)
			if !ok {
				t.Errorf("shard %q grant %q: wire name %q does not decode", s.Role, g.Hypercall, g.Call)
				continue
			}
			if !hc.Privileged() {
				t.Errorf("shard %q grants unprivileged hypercall %v", s.Role, hc)
			}
			if g.Ring != Ring0.String() && g.Ring != Deprivileged.String() {
				t.Errorf("shard %q grant %q: unknown ring %q", s.Role, g.Hypercall, g.Ring)
			}
			if len(g.Ops) == 0 && g.Rationale == "" {
				t.Errorf("shard %q grant %q has neither deriving ops nor a rationale", s.Role, g.Hypercall)
			}
		}
	}
	for _, r := range Roles {
		if !byRole[r.Name] {
			t.Errorf("declared role %q has no manifest shard", r.Name)
		}
	}
}

// TestSurfaceTotalsConsistent recomputes each shard's surface summary from
// its grant list.
func TestSurfaceTotalsConsistent(t *testing.T) {
	for _, s := range Embedded().Shards {
		ring0, risk := 0, 0
		for _, g := range s.Grants {
			if g.Ring == Ring0.String() {
				ring0++
			}
			risk += g.Risk
		}
		if s.Surface.Grants != len(s.Grants) || s.Surface.Ring0Grants != ring0 || s.Surface.RiskTotal != risk {
			t.Errorf("%s: surface {grants=%d ring0=%d risk=%d}, recomputed {%d %d %d}",
				s.Role, s.Surface.Grants, s.Surface.Ring0Grants, s.Surface.RiskTotal, len(s.Grants), ring0, risk)
		}
	}
}

// TestNonHVGrantsAreTheRationaleGrants ties the seceval denial-table
// exemption set to the role declarations.
func TestNonHVGrantsAreTheRationaleGrants(t *testing.T) {
	got := NonHVGrants()
	want := map[xtypes.Hypercall]bool{}
	for _, r := range Roles {
		for _, nh := range r.NonHV {
			want[nh.Hypercall] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("NonHVGrants = %v, want %v", got, want)
	}
	for hc := range want {
		if !got[hc] {
			t.Errorf("NonHVGrants missing %v", hc)
		}
	}
}

// TestHypercallsReturnsCopies guards the accessor against callers mutating
// the embedded whitelist.
func TestHypercallsReturnsCopies(t *testing.T) {
	a := Hypercalls(RoleToolstack)
	if len(a) == 0 {
		t.Fatal("toolstack manifest has no grants")
	}
	a[0] = xtypes.NumHypercalls
	if b := Hypercalls(RoleToolstack); b[0] == xtypes.NumHypercalls {
		t.Fatal("Hypercalls returned shared backing storage")
	}
}
