package workload

import (
	"sort"

	"xoar/internal/sim"
)

// --- Serverless churn (cluster cold-start study) -----------------------------
//
// A serverless platform's defining load is not a single guest's throughput
// but the arrival process: thousands of short-lived VMs per second, each
// billed from submit to first instruction. On Xoar this path crosses the
// cluster scheduler, the per-host Builder queue, the scrubber, and the
// guest image's own boot — so the cold-start distribution is the end-to-end
// probe of the whole disaggregated control plane under churn.

// Launcher places and boots one guest somewhere in a fleet, returning a
// function that tears it down. cluster.Cluster satisfies this; so does any
// single-host adapter. Launch's blocking time IS the guest's cold start.
type Launcher interface {
	Launch(p *sim.Proc, name string, memMB int) (destroy func(*sim.Proc) error, err error)
}

// ChurnConfig parameterizes the arrival process.
type ChurnConfig struct {
	// ArrivalsPerSec is the Poisson arrival rate across the fleet.
	ArrivalsPerSec float64
	// Total is the number of guests submitted before arrivals stop.
	Total int
	// MeanLifetime is the exponential mean of a guest's useful life after
	// boot completes. Default 150ms — function-invocation scale.
	MeanLifetime sim.Duration
	// MemMB sizes each guest. Default 64 (the micro image's reservation).
	MemMB int
}

// ChurnStats is the workload's report. Percentiles are exact order
// statistics over every successful launch — not histogram interpolations —
// so equal seeds reproduce them bit for bit.
type ChurnStats struct {
	Submitted int
	Launched  int
	Failed    int
	// PeakResident is the high-water mark of concurrently live guests.
	PeakResident int
	// Makespan is first submit to last teardown.
	Makespan sim.Duration

	ColdStartP50 sim.Duration
	ColdStartP95 sim.Duration
	ColdStartP99 sim.Duration
	ColdStartMax sim.Duration
}

// ServerlessChurn drives the arrival process from p until every submitted
// guest has run its lifetime and been torn down. All randomness — both
// inter-arrival gaps and lifetimes — is drawn in submission order from the
// environment's seeded source, so the sample sequence (and therefore every
// statistic) is a pure function of seed and config regardless of how the
// per-guest processes interleave.
func ServerlessChurn(p *sim.Proc, l Launcher, cfg ChurnConfig) ChurnStats {
	env := p.Env()
	rng := env.Rand()
	if cfg.ArrivalsPerSec <= 0 {
		cfg.ArrivalsPerSec = 100
	}
	if cfg.Total <= 0 {
		cfg.Total = 1000
	}
	if cfg.MeanLifetime <= 0 {
		cfg.MeanLifetime = 150 * sim.Millisecond
	}
	if cfg.MemMB <= 0 {
		cfg.MemMB = 64
	}

	var (
		stats      ChurnStats
		coldStarts []sim.Duration
		resident   int
		finished   int
		done       = sim.NewSignal(env)
	)
	start := p.Now()
	for i := 0; i < cfg.Total; i++ {
		gap := sim.Duration(rng.ExpFloat64() / cfg.ArrivalsPerSec * float64(sim.Second))
		life := sim.Duration(rng.ExpFloat64() * float64(cfg.MeanLifetime))
		p.Sleep(gap)
		stats.Submitted++
		name := "fn-" + itoa(i)
		env.Spawn(name, func(gp *sim.Proc) {
			defer func() {
				finished++
				done.Broadcast()
			}()
			t0 := gp.Now()
			destroy, err := l.Launch(gp, name, cfg.MemMB)
			if err != nil {
				stats.Failed++
				return
			}
			stats.Launched++
			coldStarts = append(coldStarts, gp.Now().Sub(t0))
			resident++
			if resident > stats.PeakResident {
				stats.PeakResident = resident
			}
			gp.Sleep(life)
			resident--
			_ = destroy(gp)
		})
	}
	for finished < cfg.Total {
		done.Wait(p)
	}
	stats.Makespan = p.Now().Sub(start)

	sort.Slice(coldStarts, func(a, b int) bool { return coldStarts[a] < coldStarts[b] })
	stats.ColdStartP50 = percentile(coldStarts, 50)
	stats.ColdStartP95 = percentile(coldStarts, 95)
	stats.ColdStartP99 = percentile(coldStarts, 99)
	if n := len(coldStarts); n > 0 {
		stats.ColdStartMax = coldStarts[n-1]
	}
	return stats
}

// percentile returns the exact pth order statistic (nearest-rank method) of
// sorted samples.
func percentile(sorted []sim.Duration, pct int) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (pct*len(sorted) + 99) / 100 // ceil(pct/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
