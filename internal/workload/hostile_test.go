package workload

import (
	"testing"

	"xoar/internal/sim"
	"xoar/internal/toolstack"

	"xoar/internal/osimage"
)

// On the Xoar profile a hostile tenant's probes are all denied while its
// legitimate traffic keeps flowing: the platform degrades the attacker to
// an ordinary (noisy) customer.
func TestHostileWorkloadFullyDeniedOnXoar(t *testing.T) {
	env, pl, vm := platform(t, false)
	defer env.Shutdown()
	var victim *toolstack.Guest
	var res HostileResult
	var err error
	env.Spawn("hostile", func(p *sim.Proc) {
		victim, err = pl.Toolstacks[0].CreateVM(p, toolstack.GuestConfig{
			Name: "victim", Image: osimage.ImgGuestPV, MemMB: 256, Net: true, Disk: true,
		})
		if err != nil {
			return
		}
		res, err = Hostile(p, vm, victim.Dom, HostileConfig{Seed: 7, Probes: 16, LegitPerProbe: 3})
	})
	env.RunFor(600 * sim.Second)
	if err != nil {
		t.Fatalf("hostile: %v", err)
	}
	if res.Escalations != 0 {
		t.Fatalf("hostile guest escalated %d times", res.Escalations)
	}
	if res.Denied != res.Attempted || res.Attempted != 16 {
		t.Fatalf("attempted=%d denied=%d, want 16/16", res.Attempted, res.Denied)
	}
	if res.LegitOps != 48 {
		t.Fatalf("legit ops = %d, want 48", res.LegitOps)
	}
	// Determinism: the same seed replays the same mix.
	var res2 HostileResult
	env.Spawn("hostile-2", func(p *sim.Proc) {
		res2, err = Hostile(p, vm, victim.Dom, HostileConfig{Seed: 7, Probes: 16, LegitPerProbe: 3})
	})
	env.RunFor(600 * sim.Second)
	if err != nil {
		t.Fatalf("hostile replay: %v", err)
	}
	if res2.Attempted != res.Attempted || res2.Denied != res.Denied || res2.LegitOps != res.LegitOps {
		t.Fatalf("replay diverged: %+v vs %+v", res2, res)
	}
}
