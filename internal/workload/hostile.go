package workload

import (
	"math/rand"

	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// HostileConfig parameterizes a tenant that behaves normally most of the
// time — disk transactions, small network RPCs — but interleaves privilege
// probes against the platform, the traffic shape of a compromised-but-
// stealthy guest. The mix is fully seeded so a run is reproducible.
type HostileConfig struct {
	Seed int64
	// Probes is the number of hostile hypervisor calls to issue.
	Probes int
	// LegitPerProbe is how many ordinary service operations separate
	// consecutive probes (the camouflage ratio).
	LegitPerProbe int
}

// HostileResult accounts both halves of the mix. On the Xoar profile every
// probe must be denied and Escalations must be zero; on stock Xen the same
// sequence leaks successes, which is what the drift tests pin.
type HostileResult struct {
	LegitOps    int
	Attempted   int
	Denied      int
	Escalations int
	Elapsed     sim.Duration
}

// Hostile drives the mix from vm against victim. Legitimate traffic uses
// the guest's real driver paths (so backend load stays plausible); probes
// go straight at the hypervisor's privileged surface.
func Hostile(p *sim.Proc, vm *guest.VM, victim xtypes.DomID, cfg HostileConfig) (HostileResult, error) {
	if cfg.Probes <= 0 {
		cfg.Probes = 8
	}
	if cfg.LegitPerProbe <= 0 {
		cfg.LegitPerProbe = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := vm.H
	probes := []func() error{
		func() error { return h.MapForeign(vm.Dom, victim, xtypes.PFN(rng.Intn(64))) },
		func() error { _, err := h.Grant(vm.Dom, victim, xtypes.PFN(rng.Intn(64)), false); return err },
		func() error { _, err := h.EvtchnAllocUnbound(vm.Dom, victim); return err },
		func() error {
			_, err := h.CreateDomain(vm.Dom, hv.DomainConfig{Name: "implant", MemMB: 16})
			return err
		},
		func() error { return h.DestroyDomain(vm.Dom, victim, "hostile") },
		func() error { return h.AssignPrivileges(vm.Dom, vm.Dom, hv.Assignment{ControlAll: true}) },
		func() error { _, err := h.VMRollback(vm.Dom, victim); return err },
		func() error { return h.DebugOp(vm.Dom) },
	}

	var res HostileResult
	start := p.Now()
	for i := 0; i < cfg.Probes; i++ {
		for j := 0; j < cfg.LegitPerProbe; j++ {
			if rng.Intn(2) == 0 {
				if err := vm.Blk.Write(p, 16*1024, false); err != nil {
					return res, err
				}
			} else {
				vm.NetRPC(p, 1024, 1024, 100*sim.Microsecond)
			}
			res.LegitOps++
		}
		res.Attempted++
		if err := probes[rng.Intn(len(probes))](); err != nil {
			res.Denied++
		} else {
			res.Escalations++
		}
		p.Sleep(10 * sim.Millisecond)
	}
	res.Elapsed = p.Now().Sub(start)
	return res, nil
}
