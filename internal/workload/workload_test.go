package workload

import (
	"testing"

	"xoar/internal/boot"
	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
)

// platform boots the requested profile and creates one PV guest.
func platform(t *testing.T, monolithic bool) (*sim.Env, *boot.Platform, *guest.VM) {
	t.Helper()
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	var pl *boot.Platform
	var vm *guest.VM
	var err error
	env.Spawn("setup", func(p *sim.Proc) {
		if monolithic {
			pl, err = boot.BootDom0(p, h, osimage.DefaultCatalog(), boot.Options{})
		} else {
			pl, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{})
		}
		if err != nil {
			return
		}
		var g *toolstack.Guest
		g, err = pl.Toolstacks[0].CreateVM(p, toolstack.GuestConfig{
			Name: "guest", Image: osimage.ImgGuestPV, VCPUs: 2, Net: true, Disk: true,
		})
		if err != nil {
			return
		}
		vm = VMOf(h, g)
	})
	env.RunFor(200 * sim.Second)
	if err != nil || vm == nil {
		t.Fatalf("platform: %v", err)
	}
	return env, pl, vm
}

func runPostmark(t *testing.T, monolithic bool, cfg PostmarkConfig) PostmarkResult {
	t.Helper()
	env, _, vm := platform(t, monolithic)
	defer env.Shutdown()
	var res PostmarkResult
	var err error
	env.Spawn("postmark", func(p *sim.Proc) {
		res, err = Postmark(p, vm, cfg)
	})
	env.RunFor(600 * sim.Second)
	if err != nil {
		t.Fatalf("postmark: %v", err)
	}
	return res
}

func TestPostmarkConfigNames(t *testing.T) {
	cfgs := Figure61Configs()
	want := []string{"1Kx50K", "20Kx50K", "20Kx100K", "20Kx100Kx100"}
	for i, c := range cfgs {
		if c.String() != want[i] {
			t.Errorf("config %d = %q, want %q", i, c, want[i])
		}
	}
}

func TestPostmarkMoreFilesSlower(t *testing.T) {
	small := runPostmark(t, false, PostmarkConfig{Files: 1000, Transactions: 20000})
	big := runPostmark(t, false, PostmarkConfig{Files: 20000, Transactions: 20000})
	if small.OpsPerSec <= big.OpsPerSec {
		t.Fatalf("1K files %.0f ops/s not faster than 20K files %.0f ops/s",
			small.OpsPerSec, big.OpsPerSec)
	}
}

func TestPostmarkDom0VsXoarParity(t *testing.T) {
	cfg := PostmarkConfig{Files: 20000, Transactions: 20000}
	xoar := runPostmark(t, false, cfg)
	dom0 := runPostmark(t, true, cfg)
	ratio := xoar.OpsPerSec / dom0.OpsPerSec
	// Figure 6.1: disk throughput "more or less unchanged".
	if ratio < 0.93 || ratio > 1.07 {
		t.Fatalf("xoar/dom0 postmark ratio = %.3f (xoar %.0f, dom0 %.0f)",
			ratio, xoar.OpsPerSec, dom0.OpsPerSec)
	}
}

func TestPostmarkSubdirsHelp(t *testing.T) {
	flat := runPostmark(t, false, PostmarkConfig{Files: 20000, Transactions: 20000})
	sub := runPostmark(t, false, PostmarkConfig{Files: 20000, Transactions: 20000, Subdirs: 100})
	if sub.OpsPerSec <= flat.OpsPerSec {
		t.Fatalf("subdirs %.0f ops/s not faster than flat %.0f ops/s", sub.OpsPerSec, flat.OpsPerSec)
	}
}

func runBuild(t *testing.T, monolithic bool, cfg BuildConfig) BuildResult {
	t.Helper()
	env, _, vm := platform(t, monolithic)
	defer env.Shutdown()
	var res BuildResult
	var err error
	env.Spawn("make", func(p *sim.Proc) {
		res, err = KernelBuild(p, vm, cfg)
	})
	env.RunFor(1000 * sim.Second)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return res
}

func TestKernelBuildLocalDuration(t *testing.T) {
	res := runBuild(t, false, BuildConfig{Steps: 400, Jobs: 2})
	// 400 steps × 0.4s / 2 jobs ≈ 80s plus I/O.
	if res.Elapsed.Seconds() < 75 || res.Elapsed.Seconds() > 100 {
		t.Fatalf("local build = %.1fs", res.Elapsed.Seconds())
	}
}

func TestKernelBuildNFSSlower(t *testing.T) {
	local := runBuild(t, false, BuildConfig{Steps: 200, Jobs: 2})
	nfs := runBuild(t, false, BuildConfig{Steps: 200, Jobs: 2, NFS: true})
	if nfs.Elapsed <= local.Elapsed {
		t.Fatalf("NFS build %.1fs not slower than local %.1fs",
			nfs.Elapsed.Seconds(), local.Elapsed.Seconds())
	}
	// But not catastrophically: NFS overhead is a modest fraction.
	if nfs.Elapsed.Seconds() > local.Elapsed.Seconds()*1.6 {
		t.Fatalf("NFS build %.1fs too slow vs local %.1fs",
			nfs.Elapsed.Seconds(), local.Elapsed.Seconds())
	}
}

func TestKernelBuildDom0VsXoarParity(t *testing.T) {
	cfg := BuildConfig{Steps: 200, Jobs: 2}
	xoar := runBuild(t, false, cfg)
	dom0 := runBuild(t, true, cfg)
	ratio := xoar.Elapsed.Seconds() / dom0.Elapsed.Seconds()
	// Figure 6.4: overhead much less than 1%; allow small model noise.
	if ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("xoar/dom0 build ratio = %.3f", ratio)
	}
}

func TestVMOfWiresEverything(t *testing.T) {
	env, _, vm := platform(t, false)
	defer env.Shutdown()
	if vm.Net == nil || vm.Blk == nil || vm.NetB == nil || vm.BlkB == nil {
		t.Fatal("VMOf left fields nil")
	}
}
