package workload

import (
	"errors"
	"testing"

	"xoar/internal/sim"
)

// stubLauncher models a fleet with a fixed boot cost and a capacity limit.
type stubLauncher struct {
	bootCost sim.Duration
	capacity int
	resident int
}

func (s *stubLauncher) Launch(p *sim.Proc, name string, memMB int) (func(*sim.Proc) error, error) {
	if s.resident >= s.capacity {
		return nil, errors.New("stub: full")
	}
	s.resident++
	p.Sleep(s.bootCost)
	return func(*sim.Proc) error { s.resident--; return nil }, nil
}

func TestServerlessChurnAccounting(t *testing.T) {
	env := sim.NewEnv(7)
	l := &stubLauncher{bootCost: 10 * sim.Millisecond, capacity: 1 << 30}
	var st ChurnStats
	env.Spawn("churn", func(p *sim.Proc) {
		st = ServerlessChurn(p, l, ChurnConfig{
			ArrivalsPerSec: 500, Total: 400, MeanLifetime: 100 * sim.Millisecond,
		})
	})
	env.RunFor(60 * sim.Second)
	env.Shutdown()
	if st.Submitted != 400 || st.Launched != 400 || st.Failed != 0 {
		t.Fatalf("submitted/launched/failed = %d/%d/%d", st.Submitted, st.Launched, st.Failed)
	}
	// The stub boots in exactly 10ms, so every percentile is exactly 10ms.
	if st.ColdStartP50 != 10*sim.Millisecond || st.ColdStartP99 != 10*sim.Millisecond {
		t.Fatalf("cold start p50=%v p99=%v, want 10ms", st.ColdStartP50, st.ColdStartP99)
	}
	// ~500/s arrivals with ~110ms submit-to-teardown: tens resident.
	if st.PeakResident < 10 || st.PeakResident > 200 {
		t.Fatalf("peak resident = %d", st.PeakResident)
	}
	if l.resident != 0 {
		t.Fatalf("stub still hosts %d guests", l.resident)
	}
}

func TestServerlessChurnCountsFailures(t *testing.T) {
	env := sim.NewEnv(7)
	l := &stubLauncher{bootCost: sim.Millisecond, capacity: 5}
	var st ChurnStats
	env.Spawn("churn", func(p *sim.Proc) {
		st = ServerlessChurn(p, l, ChurnConfig{
			ArrivalsPerSec: 10000, Total: 100, MeanLifetime: sim.Second,
		})
	})
	env.RunFor(120 * sim.Second)
	env.Shutdown()
	if st.Failed == 0 {
		t.Fatal("overload produced no failures")
	}
	if st.Launched+st.Failed != 100 {
		t.Fatalf("launched %d + failed %d != 100", st.Launched, st.Failed)
	}
	if st.PeakResident > 5 {
		t.Fatalf("peak resident %d exceeded capacity 5", st.PeakResident)
	}
}

func TestServerlessChurnDeterministic(t *testing.T) {
	runOnce := func() ChurnStats {
		env := sim.NewEnv(11)
		l := &stubLauncher{bootCost: 3 * sim.Millisecond, capacity: 1 << 30}
		var st ChurnStats
		env.Spawn("churn", func(p *sim.Proc) {
			st = ServerlessChurn(p, l, ChurnConfig{ArrivalsPerSec: 800, Total: 500})
		})
		env.RunFor(60 * sim.Second)
		env.Shutdown()
		return st
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := []sim.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(s, 50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(s, 99); got != 10 {
		t.Fatalf("p99 = %v", got)
	}
	if got := percentile(s[:1], 99); got != 1 {
		t.Fatalf("p99 of singleton = %v", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %v", got)
	}
}
