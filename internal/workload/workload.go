// Package workload implements the paper's benchmark workloads (§6.1):
// Postmark (Figure 6.1), wget transfers (Figures 6.2/6.3), kernel builds on
// local and NFS filesystems (Figure 6.4), and the Apache benchmark (Figure
// 6.5). Each generator drives a guest.VM through the platform's real driver
// paths and returns the metric the paper's figure reports.
package workload

import (
	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
)

// VMOf adapts a toolstack guest record to a workload endpoint.
func VMOf(h *hv.Hypervisor, g *toolstack.Guest) *guest.VM {
	return &guest.VM{H: h, Dom: g.Dom, Net: g.Net, Blk: g.Blk, NetB: g.NetB, BlkB: g.BlkB}
}

// --- Postmark (Figure 6.1) ---------------------------------------------------

// PostmarkConfig mirrors Postmark's parameters: a pool of small files, a
// transaction count, and an optional subdirectory fan-out.
type PostmarkConfig struct {
	Files        int
	Transactions int
	Subdirs      int
}

// String renders the config the way the figure labels it ("20Kx100Kx100").
func (c PostmarkConfig) String() string {
	s := shortK(c.Files) + "x" + shortK(c.Transactions)
	if c.Subdirs > 0 {
		s += "x" + shortK(c.Subdirs)
	}
	return s
}

func shortK(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return itoa(n/1000) + "K"
	}
	return itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Figure61Configs are the four configurations the paper plots.
func Figure61Configs() []PostmarkConfig {
	return []PostmarkConfig{
		{Files: 1000, Transactions: 50000},
		{Files: 20000, Transactions: 50000},
		{Files: 20000, Transactions: 100000},
		{Files: 20000, Transactions: 100000, Subdirs: 100},
	}
}

// PostmarkResult reports transaction throughput.
type PostmarkResult struct {
	Config    PostmarkConfig
	Elapsed   sim.Duration
	OpsPerSec float64
}

// Postmark transaction cost model: each transaction (create/delete/read/
// append on small files) is mostly page-cache work; the probability of
// touching the disk grows with the size of the file set (cache pressure and
// metadata churn), and a subdirectory fan-out relieves directory-entry
// contention slightly.
const (
	pmCPUPerTx   = 25 * sim.Microsecond
	pmTxBytes    = 4096
	pmBaseMiss   = 0.006
	pmMissPer20K = 0.014
)

// Postmark runs the benchmark's transaction phase against the guest's disk.
func Postmark(p *sim.Proc, vm *guest.VM, cfg PostmarkConfig) (PostmarkResult, error) {
	rng := vm.H.Env.Rand()
	missProb := pmBaseMiss + pmMissPer20K*float64(cfg.Files)/20000
	if cfg.Subdirs > 0 {
		missProb *= 0.85
	}
	// Setup: create the file pool (sequential-ish small writes, batched by
	// the page cache into one large flush).
	if err := vm.Blk.Write(p, cfg.Files*2048, true); err != nil {
		return PostmarkResult{}, err
	}

	start := p.Now()
	for i := 0; i < cfg.Transactions; i++ {
		vm.H.Compute(p, vm.Dom, pmCPUPerTx)
		if rng.Float64() < missProb {
			if err := vm.Blk.Write(p, pmTxBytes, false); err != nil {
				return PostmarkResult{}, err
			}
		}
	}
	elapsed := p.Now().Sub(start)
	return PostmarkResult{
		Config:    cfg,
		Elapsed:   elapsed,
		OpsPerSec: float64(cfg.Transactions) / elapsed.Seconds(),
	}, nil
}

// --- Kernel build (Figure 6.4) -------------------------------------------------

// BuildConfig describes a kernel compile.
type BuildConfig struct {
	// Steps is the number of compilation units.
	Steps int
	// Jobs is make's parallelism (the guests have 2 vCPUs).
	Jobs int
	// NFS selects a remote source/object tree over the network instead of
	// the local ext3 volume.
	NFS bool
}

// DefaultBuild is a calibrated 2.6-series kernel build: ~330s locally on the
// 2-vCPU guest.
func DefaultBuild(nfs bool) BuildConfig {
	return BuildConfig{Steps: 1650, Jobs: 2, NFS: nfs}
}

// Build-cost model.
const (
	kbCPUPerStep    = 400 * sim.Millisecond
	kbLocalIOProb   = 0.08 // most source/object I/O hits the page cache
	kbLocalIOBytes  = 64 * 1024
	kbNFSOpsPerStep = 40
	kbNFSOpBytes    = 8 * 1024
	kbNFSServerTime = 250 * sim.Microsecond
)

// BuildResult reports a compile's wall-clock time.
type BuildResult struct {
	Config     BuildConfig
	Elapsed    sim.Duration
	NFSRetries int
}

// KernelBuild compiles the tree with cfg.Jobs parallel workers inside the
// guest, touching the local disk or the NFS server per step.
func KernelBuild(p *sim.Proc, vm *guest.VM, cfg BuildConfig) (BuildResult, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2
	}
	env := vm.H.Env
	rng := env.Rand()
	start := p.Now()
	steps := sim.NewChan[int](env)
	for i := 0; i < cfg.Steps; i++ {
		steps.Send(i)
	}
	steps.Close()

	var firstErr error
	retries := 0
	done := sim.NewChan[struct{}](env)
	for w := 0; w < cfg.Jobs; w++ {
		env.Spawn("make-job", func(wp *sim.Proc) {
			defer done.Send(struct{}{})
			for {
				if _, ok := steps.Recv(wp); !ok {
					return
				}
				vm.H.Compute(wp, vm.Dom, kbCPUPerStep)
				if cfg.NFS {
					// Metadata and data RPCs to the NFS server.
					for op := 0; op < kbNFSOpsPerStep; op++ {
						r, ok := vm.NetRPCRetry(wp, 256, kbNFSOpBytes, kbNFSServerTime)
						retries += r
						if !ok {
							firstErr = errNFS
							return
						}
					}
				} else if rng.Float64() < kbLocalIOProb {
					if err := vm.Blk.Write(wp, kbLocalIOBytes, false); err != nil {
						if !vm.Blk.WaitReconnect(wp, 30*sim.Second) {
							firstErr = err
							return
						}
					}
				}
			}
		})
	}
	for w := 0; w < cfg.Jobs; w++ {
		done.Recv(p)
	}
	if firstErr != nil {
		return BuildResult{}, firstErr
	}
	return BuildResult{Config: cfg, Elapsed: p.Now().Sub(start), NFSRetries: retries}, nil
}

// errNFS signals an abandoned NFS transfer.
var errNFS = errNFSType{}

type errNFSType struct{}

func (errNFSType) Error() string { return "workload: NFS transfer abandoned after retries" }
