package attack

import (
	"errors"
	"fmt"

	"xoar/internal/audit"
	"xoar/internal/boot"
	"xoar/internal/capability"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/toolstack"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

// Finding is one oracle violation: a call that succeeded without manifest
// coverage, a denial that left no audit trace, or a broken platform
// invariant. Findings are deterministic — replaying the same sequence on a
// fresh harness reproduces them exactly.
type Finding struct {
	// Index is the offending call's position, or -1 for end-of-run
	// invariant violations.
	Index int
	Call  Call
	// Kind classifies the violation.
	Kind   string
	Detail string
}

// Finding kinds.
const (
	KindEscalation   = "escalation"     // success not covered by the manifest model
	KindSilentDenial = "silent-denial"  // ErrPerm-class refusal without a DeniedCalls tick
	KindMissingAudit = "missing-audit"  // topology change without its audit record
	KindAuditChain   = "audit-chain"    // hash chain no longer verifies
	KindHostCrash    = "host-crash"     // a persona took the whole host down
	KindOrphanedTree = "orphan-subtree" // /local/domain/<id> survived its domain
	KindPanic        = "panic"          // the hypervisor model panicked
)

func (f Finding) String() string {
	return fmt.Sprintf("[%s] call %d %v: %s", f.Kind, f.Index, f.Call, f.Detail)
}

// Result is the outcome of running one sequence.
type Result struct {
	Seq       Sequence
	Findings  []Finding
	Attempted int // hv calls issued
	Denied    int // hv calls refused with a permission-class error
}

// Harness is a freshly booted Xoar platform wired for attack replay: full
// shard fleet, two victim guests and the adversarial guest "mallory", an
// audit log on the hypervisor sink, and a restart engine managing the first
// netback so sequences can race calls against a live microreboot.
type Harness struct {
	Env    *sim.Env
	PL     *boot.Platform
	H      *hv.Hypervisor
	Log    *audit.Log
	Engine *snapshot.Engine

	VictimA, VictimB, Mallory xtypes.DomID
	Guests                    []*toolstack.Guest

	destroyed []xtypes.DomID
	probe     *xenstore.Conn
	bogusID   xtypes.DomID
}

// NewHarness boots the platform. Each sequence should run on its own harness
// — sequences mutate privilege state by design.
func NewHarness() (*Harness, error) {
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	log := audit.NewLog()
	h.Sink = func(e hv.Event) { log.Append(e.Time, e.Kind, e.Dom, e.Arg) }
	ha := &Harness{Env: env, H: h, Log: log}
	h.OnDestroy(func(id xtypes.DomID) { ha.destroyed = append(ha.destroyed, id) })

	var err error
	env.Spawn("attack-setup", func(p *sim.Proc) {
		ha.PL, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{})
		if err != nil {
			return
		}
		for _, name := range []string{"victimA", "victimB", "mallory"} {
			g, cerr := ha.PL.Toolstacks[0].CreateVM(p, toolstack.GuestConfig{
				Name: name, Image: osimage.ImgGuestPV, MemMB: 256,
				Net: true, Disk: true,
			})
			if cerr != nil {
				err = cerr
				return
			}
			ha.Guests = append(ha.Guests, g)
		}
	})
	env.RunFor(300 * sim.Second)
	if err != nil {
		env.Shutdown()
		return nil, fmt.Errorf("attack: boot: %w", err)
	}
	ha.VictimA = ha.Guests[0].Dom
	ha.VictimB = ha.Guests[1].Dom
	ha.Mallory = ha.Guests[2].Dom
	ha.Engine = snapshot.NewEngine(h, ha.PL.BuilderDom)
	if err := ha.Engine.Manage(ha.PL.NetBacks[0].AsRestartable(), snapshot.Policy{
		Kind: snapshot.PolicyPerRequest,
	}); err != nil {
		env.Shutdown()
		return nil, err
	}
	if err := ha.Engine.Manage(ha.PL.BlkBacks[0].AsRestartable(), snapshot.Policy{
		Kind: snapshot.PolicyPerRequest,
	}); err != nil {
		env.Shutdown()
		return nil, err
	}
	// The probe connection audits XenStore state after the run; it uses the
	// hypervisor's own identity so no component connection is disturbed.
	ha.probe = ha.PL.XenStoreLogic.Connect(hv.SystemCaller, true)
	// A DomID the platform has never allocated: "foreign DomID" probes.
	ha.bogusID = xtypes.DomID(4096)
	return ha, nil
}

// Close shuts the simulation down.
func (ha *Harness) Close() { ha.Env.Shutdown() }

// model is the oracle's view of what the persona may legitimately do. It is
// built from the capability manifest and from boot-time relationship state —
// deliberately NOT from hv.controls, whose bugs are what we are hunting. The
// model advances only on calls it itself judged legitimate, so an hv bug
// cannot launder new rights into the oracle.
type model struct {
	persona Persona
	dom     xtypes.DomID
	isShard bool

	grants     map[xtypes.Hypercall]bool
	controlAll bool
	controlled map[xtypes.DomID]bool // legitimately managed domains (never self for link ops)
	clients    map[xtypes.DomID]bool // if shard: guests linked to the persona
	serves     map[xtypes.DomID]bool // shards the persona is a linked client of
	shards     map[xtypes.DomID]bool
	snapshot   bool // persona already holds its write-once snapshot
	created    xtypes.DomID

	// resolvedGuest is the concrete guest the current link/unlink call names;
	// the harness sets it before expectAllowed/noteSuccess run.
	resolvedGuest xtypes.DomID
}

func (ha *Harness) newModel(p Persona) *model {
	m := &model{
		persona:    p,
		dom:        ha.personaDom(p),
		grants:     make(map[xtypes.Hypercall]bool),
		controlled: make(map[xtypes.DomID]bool),
		clients:    make(map[xtypes.DomID]bool),
		serves:     make(map[xtypes.DomID]bool),
		shards:     make(map[xtypes.DomID]bool),
		created:    xtypes.DomIDNone,
	}
	// Every domain may issue the unprivileged calls; shard personas add
	// their manifest role's grant set on top. A plain guest has no role.
	for hc := xtypes.Hypercall(0); hc < xtypes.NumHypercalls; hc++ {
		if !hc.Privileged() {
			m.grants[hc] = true
		}
	}
	if role := p.Role(); role != "" {
		for _, hc := range capability.Hypercalls(role) {
			m.grants[hc] = true
		}
	}
	for _, d := range ha.H.Domains() {
		if d.IsShard() {
			m.shards[d.ID] = true
		}
		if d.ID == m.dom {
			m.isShard = d.IsShard()
			m.controlAll = d.Priv().ControlAll
			m.snapshot = d.Mem.Snapshot() != nil
			for _, c := range d.Clients() {
				m.clients[c] = true
			}
			continue
		}
		if d.ParentTool() == m.dom {
			m.controlled[d.ID] = true
		}
		for _, del := range d.Delegates() {
			if del == m.dom {
				m.controlled[d.ID] = true
			}
		}
		if d.IsShard() {
			for _, c := range d.Clients() {
				if c == m.dom {
					m.serves[d.ID] = true
				}
			}
		}
	}
	return m
}

func (ha *Harness) personaDom(p Persona) xtypes.DomID {
	switch p {
	case PersonaNetBack:
		return ha.PL.NetBacks[0].Dom
	case PersonaBlkBack:
		return ha.PL.BlkBacks[0].Dom
	case PersonaBuilder:
		return ha.PL.BuilderDom
	case PersonaToolstack:
		return ha.PL.Toolstacks[0].Dom
	default:
		return ha.Mallory
	}
}

// ivcOK is the model's §5.6 sharing policy: self, shard↔shard, or a
// shard↔linked-client pair.
func (m *model) ivcOK(target xtypes.DomID) bool {
	return target == m.dom ||
		(m.isShard && (m.shards[target] || m.clients[target])) ||
		m.serves[target]
}

// can mirrors hv.check legitimacy: the manifest grants the hypercall, or the
// model legitimately holds ControlAll (boot-time, or acquired through a
// manifest-covered AssignPrivileges on itself).
func (m *model) can(hc xtypes.Hypercall) bool {
	return m.controlAll || m.grants[hc]
}

// mgmtOK is the model's management rule: the caller may issue the hypercall
// and the target is self or a legitimately controlled domain.
func (m *model) mgmtOK(hc xtypes.Hypercall, target xtypes.DomID) bool {
	return m.can(hc) && (m.controlAll || target == m.dom || m.controlled[target])
}

// expectAllowed reports whether a success would be legitimate. claims=false
// means the oracle makes no judgment for this op (it still runs, for state
// scrambling, but success is not a finding).
func (m *model) expectAllowed(c Call, target xtypes.DomID) (allowed, claims bool) {
	switch c.Op {
	case OpGrant, OpMapGrant, OpEvtchnAlloc, OpEvtchnBind:
		return m.ivcOK(target), true
	case OpMapForeign:
		return m.mgmtOK(xtypes.HyperMapForeign, target), true
	case OpUnmapForeign:
		return m.can(xtypes.HyperMapForeign), true
	case OpCreateDomain:
		return m.can(xtypes.HyperDomctlCreate), true
	case OpDestroyDomain:
		return m.mgmtOK(xtypes.HyperDomctlDestroy, target), true
	case OpPause:
		return m.mgmtOK(xtypes.HyperDomctlPause, target), true
	case OpUnpause:
		return m.mgmtOK(xtypes.HyperDomctlUnpause, target), true
	case OpSetMaxMem:
		return m.mgmtOK(xtypes.HyperDomctlMaxMem, target), true
	case OpPermitHypercall, OpControlAll, OpAssignDevice:
		// AssignPrivileges is the Builder's role: DomctlPriv plus a shard
		// target (privilege may never attach to a plain guest, §3).
		return m.can(xtypes.HyperDomctlPriv) && m.shards[target], true
	case OpRevokeHypercall:
		return m.mgmtOK(xtypes.HyperDomctlPriv, target), true
	case OpDelegateToSelf:
		return m.mgmtOK(xtypes.HyperDelegateAdmin, target), true
	case OpSetParentSelf:
		return m.can(xtypes.HyperSetParentTool), true
	case OpLinkClient, OpUnlinkClient:
		// Link rights require an *external* controller: the self-control
		// shortcut is exactly the hole the fuzzer found, so the model never
		// grants it — not even under ControlAll.
		return (m.controlAll || m.controlled[target]) &&
			m.shards[target] && target != m.dom, true
	case OpPrivilegedFor, OpGrantFor:
		return m.can(xtypes.HyperDomctlPriv), true
	case OpVMSnapshot:
		return m.can(xtypes.HyperVMSnapshot) && !m.snapshot, true
	case OpVMRollback:
		return m.mgmtOK(xtypes.HyperVMRollback, target), true
	case OpRecoveryBox:
		return m.can(xtypes.HyperVMSnapshot), true
	case OpGrantIOPorts:
		return m.mgmtOK(xtypes.HyperIOPortAccess, target), true
	case OpRouteVIRQ:
		return m.can(xtypes.HyperSetVIRQ), true
	case OpDebugOp:
		return m.can(xtypes.HyperDebugOp), true
	case OpXSWrite:
		// Guests own nothing outside their subtree; shard backends hold
		// legitimate ACLs on client device paths, so no claim for them.
		if m.persona == PersonaGuest {
			return target == m.dom, true
		}
		return true, false
	default: // OpBalloon, OpSelfExit, OpMicroreboot: own-domain or legit ops
		return true, true
	}
}

// noteSuccess advances the model after a call it judged legitimate, so
// legitimately acquired rights (a created domain, a self-granted hypercall
// by the Builder) do not produce false findings later.
func (m *model) noteSuccess(c Call, target, created xtypes.DomID, shardFlag bool) {
	switch c.Op {
	case OpCreateDomain:
		m.created = created
		m.controlled[created] = true
		if shardFlag {
			m.shards[created] = true
		}
	case OpControlAll:
		if target == m.dom {
			m.controlAll = true
		}
	case OpPermitHypercall:
		if target == m.dom {
			m.grants[argHypercall(c.Arg)] = true
		}
	case OpRevokeHypercall:
		if target == m.dom {
			delete(m.grants, argHypercall(c.Arg))
		}
	case OpSetParentSelf, OpPrivilegedFor, OpDelegateToSelf:
		m.controlled[target] = true
	case OpVMSnapshot:
		m.snapshot = true
	case OpLinkClient:
		if m.resolvedGuest == m.dom {
			m.serves[target] = true
		}
	case OpUnlinkClient:
		if m.resolvedGuest == m.dom {
			delete(m.serves, target)
		}
	case OpDestroyDomain, OpSelfExit:
		dead := target
		if c.Op == OpSelfExit {
			dead = m.dom
		}
		delete(m.controlled, dead)
		delete(m.shards, dead)
		delete(m.clients, dead)
		delete(m.serves, dead)
	}
}

func argHypercall(arg uint8) xtypes.Hypercall {
	return xtypes.Hypercall(uint32(arg) % uint32(xtypes.NumHypercalls))
}

func (ha *Harness) resolveTarget(m *model, t Target) xtypes.DomID {
	switch t {
	case TSelf:
		return m.dom
	case TVictimA:
		return ha.VictimA
	case TVictimB:
		return ha.VictimB
	case TNetBack:
		return ha.PL.NetBacks[0].Dom
	case TBlkBack:
		return ha.PL.BlkBacks[0].Dom
	case TBuilder:
		return ha.PL.BuilderDom
	case TToolstack:
		return ha.PL.Toolstacks[0].Dom
	case TCreated:
		return m.created
	default:
		return ha.bogusID
	}
}

// guestArg maps the raw argument byte of link/unlink ops to a concrete guest.
func (ha *Harness) guestArg(m *model, arg uint8) xtypes.DomID {
	switch arg % 4 {
	case 0:
		return ha.Mallory
	case 1:
		return ha.VictimA
	case 2:
		return ha.VictimB
	default:
		return m.dom
	}
}

// Run executes the sequence on the harness and returns all findings. The
// calls run inside a sim process with small gaps between them, so spawned
// microreboots genuinely overlap later calls; afterwards the clock runs on to
// let restarts settle before end-of-run invariants are checked.
func (ha *Harness) Run(seq Sequence) Result {
	m := ha.newModel(seq.Persona)
	res := Result{Seq: seq}
	ha.Env.Spawn("attack-seq", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				res.Findings = append(res.Findings, Finding{
					Index: -1, Kind: KindPanic, Detail: fmt.Sprint(r),
				})
			}
		}()
		for i, c := range seq.Calls {
			ha.exec(p, m, i, c, &res)
			p.Sleep(10 * sim.Millisecond)
		}
	})
	ha.Env.RunFor(120 * sim.Second)

	if ha.H.CrashedHost {
		res.Findings = append(res.Findings, Finding{
			Index: -1, Kind: KindHostCrash,
			Detail: fmt.Sprintf("persona %v crashed the host", seq.Persona),
		})
	}
	if i := ha.Log.Verify(); i != -1 {
		res.Findings = append(res.Findings, Finding{
			Index: -1, Kind: KindAuditChain,
			Detail: fmt.Sprintf("audit hash chain breaks at record %d", i),
		})
	}
	for _, id := range ha.destroyed {
		path := fmt.Sprintf("/local/domain/%d", id)
		if _, err := ha.probe.Directory(xenstore.TxNone, path); err == nil {
			res.Findings = append(res.Findings, Finding{
				Index: -1, Kind: KindOrphanedTree,
				Detail: path + " survived its domain's destruction",
			})
		}
	}
	return res
}

// isDenial classifies permission-class refusals, which the audit invariant
// says must tick hv.DeniedCalls.
func isDenial(err error) bool {
	return errors.Is(err, xtypes.ErrPerm) ||
		errors.Is(err, xtypes.ErrNotDelegated) ||
		errors.Is(err, xtypes.ErrNotShard)
}

func (ha *Harness) exec(p *sim.Proc, m *model, idx int, c Call, res *Result) {
	h := ha.H
	target := ha.resolveTarget(m, c.Target)
	m.resolvedGuest = ha.guestArg(m, c.Arg)
	allowed, claims := m.expectAllowed(c, target)

	deniedBefore := h.DeniedCalls
	linksBefore := ha.Log.KindCount("link-shard")
	unlinksBefore := ha.Log.KindCount("unlink-shard")
	hvCall := true // ops that go through hypercall dispatch obey the denial-count invariant
	var created xtypes.DomID
	shardFlag := c.Arg&1 == 1

	var err error
	switch c.Op {
	case OpGrant:
		_, err = h.Grant(m.dom, target, xtypes.PFN(c.Arg), c.Arg&1 == 1)
	case OpMapGrant:
		var gm *hv.GrantMapping
		gm, err = h.MapGrant(m.dom, target, xtypes.GrantRef(c.Arg%16), false)
		if err == nil {
			gm.Unmap()
		}
	case OpEvtchnAlloc:
		_, err = h.EvtchnAllocUnbound(m.dom, target)
	case OpEvtchnBind:
		_, err = h.EvtchnBind(m.dom, target, xtypes.Port(c.Arg%8))
	case OpMapForeign:
		err = h.MapForeign(m.dom, target, xtypes.PFN(c.Arg))
		if err == nil {
			h.UnmapForeign(m.dom, target)
		}
	case OpUnmapForeign:
		err = h.UnmapForeign(m.dom, target)
	case OpCreateDomain:
		var d *hv.Domain
		d, err = h.CreateDomain(m.dom, hv.DomainConfig{
			Name: fmt.Sprintf("implant-%d", idx), MemMB: 16, Shard: shardFlag,
		})
		if err == nil {
			created = d.ID
		}
	case OpDestroyDomain:
		err = h.DestroyDomain(m.dom, target, "attack")
	case OpPause:
		err = h.Pause(m.dom, target)
	case OpUnpause:
		err = h.Unpause(m.dom, target)
	case OpSetMaxMem:
		err = h.SetMaxMem(m.dom, target, 16+int(c.Arg)%64)
	case OpPermitHypercall:
		err = h.AssignPrivileges(m.dom, target, hv.Assignment{
			Hypercalls: []xtypes.Hypercall{argHypercall(c.Arg)},
		})
	case OpRevokeHypercall:
		err = h.RevokeHypercall(m.dom, target, argHypercall(c.Arg))
	case OpControlAll:
		err = h.AssignPrivileges(m.dom, target, hv.Assignment{ControlAll: true})
	case OpAssignDevice:
		if nics := h.Machine.NICs(); len(nics) > 0 {
			err = h.AssignPrivileges(m.dom, target, hv.Assignment{
				PCIDevices: []xtypes.PCIAddr{nics[0].Addr()},
			})
		} else {
			return
		}
	case OpDelegateToSelf:
		err = h.Delegate(m.dom, target, m.dom)
	case OpSetParentSelf:
		err = h.SetParentTool(m.dom, target, m.dom)
	case OpLinkClient:
		err = h.LinkShardClient(m.dom, target, m.resolvedGuest)
	case OpUnlinkClient:
		err = h.UnlinkShardClient(m.dom, target, m.resolvedGuest)
	case OpPrivilegedFor:
		err = h.SetPrivilegedFor(m.dom, m.dom, target)
	case OpGrantFor:
		_, err = h.GrantFor(m.dom, target, m.dom, xtypes.PFN(c.Arg), false)
	case OpVMSnapshot:
		err = h.VMSnapshot(m.dom)
	case OpVMRollback:
		_, err = h.VMRollback(m.dom, target)
	case OpRecoveryBox:
		err = h.RegisterRecoveryBox(m.dom, xtypes.PFN(c.Arg), 4)
	case OpGrantIOPorts:
		err = h.GrantIOPorts(m.dom, target, "console")
	case OpRouteVIRQ:
		err = h.RouteHardwareVIRQ(m.dom, xtypes.VIRQ(uint32(c.Arg)%uint32(xtypes.NumVIRQs)), target)
	case OpBalloon:
		err = h.BalloonTo(m.dom, int(c.Arg))
	case OpDebugOp:
		err = h.DebugOp(m.dom)
	case OpXSWrite:
		hvCall = false
		switch m.persona {
		case PersonaToolstack, PersonaBuilder:
			// Their boot-time connections are privileged control-plane
			// state; reusing them would clobber legitimate wiring, so the
			// op is a no-op for these personas.
			return
		}
		conn := ha.PL.XenStoreLogic.Connect(m.dom, false)
		err = conn.Write(xenstore.TxNone, fmt.Sprintf("/local/domain/%d/attack", target), "owned")
	case OpSelfExit:
		err = h.SelfExit(m.dom)
	case OpMicroreboot:
		hvCall = false
		nb := ha.PL.NetBacks[0].Dom
		eng := ha.Engine
		ha.Env.Spawn("attack-mr", func(p2 *sim.Proc) { eng.RequestRestart(p2, nb) })
		p.Sleep(sim.Millisecond) // let the restart begin; later calls race it
	}

	res.Attempted++
	if err != nil && isDenial(err) {
		res.Denied++
		if hvCall && h.DeniedCalls == deniedBefore {
			res.Findings = append(res.Findings, Finding{
				Index: idx, Call: c, Kind: KindSilentDenial,
				Detail: fmt.Sprintf("refused with %v but DeniedCalls did not move", err),
			})
		}
	}
	if err == nil {
		if claims && !allowed {
			res.Findings = append(res.Findings, Finding{
				Index: idx, Call: c, Kind: KindEscalation,
				Detail: fmt.Sprintf("%v as %v on %v succeeded outside manifest coverage",
					c.Op, m.persona, target),
			})
		}
		// Topology mutations must land in the hash-chained log.
		if c.Op == OpLinkClient && ha.Log.KindCount("link-shard") == linksBefore {
			res.Findings = append(res.Findings, Finding{
				Index: idx, Call: c, Kind: KindMissingAudit,
				Detail: "link succeeded without a link-shard audit record",
			})
		}
		if c.Op == OpUnlinkClient && ha.Log.KindCount("unlink-shard") == unlinksBefore {
			res.Findings = append(res.Findings, Finding{
				Index: idx, Call: c, Kind: KindMissingAudit,
				Detail: "unlink succeeded without an unlink-shard audit record",
			})
		}
		m.noteSuccess(c, target, created, shardFlag)
	}
	if h.CrashedHost {
		res.Findings = append(res.Findings, Finding{
			Index: idx, Call: c, Kind: KindHostCrash,
			Detail: "host crashed during the sequence",
		})
	}
	if i := ha.Log.Verify(); i != -1 {
		res.Findings = append(res.Findings, Finding{
			Index: idx, Call: c, Kind: KindAuditChain,
			Detail: fmt.Sprintf("audit hash chain breaks at record %d", i),
		})
	}
}

// RunSequence boots a fresh harness, runs seq, and shuts down — the
// one-call entry point the fuzzer and CLI use.
func RunSequence(seq Sequence) (Result, error) {
	ha, err := NewHarness()
	if err != nil {
		return Result{}, err
	}
	defer ha.Close()
	return ha.Run(seq), nil
}
