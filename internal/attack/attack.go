// Package attack is the adversarial scenario suite: a seeded
// hypercall-sequence fuzzer and a CVE-replay harness that drive hostile call
// sequences against a booted Xoar platform and check every outcome against
// the generated capability manifests (§2.3, §6.2.1).
//
// The sim is fully deterministic, so every sequence is a replayable artifact:
// a failing finding carries its encoded byte form, `go test -fuzz` explores
// the same space through FuzzHypercallSequence, and minimized reproducers are
// checked in under testdata/fuzz/ where plain `go test` replays them forever.
//
// The oracle is success-sided and independent of the hypervisor's own
// enforcement code: a call that *succeeds* must be covered by the caller's
// CAPMANIFEST.json role grants plus a relationship model (parent toolstack,
// delegation, linked clients) captured from boot-time state — not by
// hv.controls itself, whose bugs are exactly what the fuzzer hunts. Denials
// are never findings; undenied privilege is.
package attack

import (
	"fmt"
	"math/rand"

	"xoar/internal/capability"
)

// Persona is the compromised identity a sequence executes as (§2.3: the
// paper's attack sources are a hostile guest and each service component an
// attacker may have taken over).
type Persona uint8

const (
	PersonaGuest Persona = iota // adversarial tenant VM ("mallory")
	PersonaNetBack
	PersonaBlkBack
	PersonaBuilder
	PersonaToolstack
	NumPersonas
)

func (p Persona) String() string {
	switch p {
	case PersonaGuest:
		return "guest"
	case PersonaNetBack:
		return "netback"
	case PersonaBlkBack:
		return "blkback"
	case PersonaBuilder:
		return "builder"
	case PersonaToolstack:
		return "toolstack"
	default:
		return fmt.Sprintf("persona(%d)", uint8(p))
	}
}

// Role is the capability-manifest role the persona's grants are read from;
// empty for a plain guest, which holds only the unprivileged set.
func (p Persona) Role() string {
	switch p {
	case PersonaNetBack:
		return capability.RoleNetBack
	case PersonaBlkBack:
		return capability.RoleBlkBack
	case PersonaBuilder:
		return capability.RoleBuilder
	case PersonaToolstack:
		return capability.RoleToolstack
	default:
		return ""
	}
}

// Op enumerates the hostile operations a sequence may issue. Together they
// cover every xtypes.Hyper* call with an hv dispatch entry point (PhysdevOp,
// ProfilingOp and ReadConsoleRing have none to attack), plus XenStore writes
// and a concurrent microreboot to race calls against.
type Op uint8

const (
	OpGrant           Op = iota // Grant a page to the target (IVC policy)
	OpMapGrant                  // map a (possibly stale) grant ref of the target
	OpEvtchnAlloc               // allocate an unbound port toward the target
	OpEvtchnBind                // bind to a guessed remote port on the target
	OpMapForeign                // privileged foreign mapping of target memory
	OpUnmapForeign              // tear down a foreign mapping
	OpCreateDomain              // create a domain (arg bit 0 marks it a shard)
	OpDestroyDomain             // destroy the target
	OpPause                     // pause the target
	OpUnpause                   // unpause the target
	OpSetMaxMem                 // resize the target's reservation
	OpPermitHypercall           // whitelist hypercall(arg) on the target
	OpRevokeHypercall           // revoke hypercall(arg) from the target
	OpControlAll                // grant the target ControlAll
	OpAssignDevice              // seize the first NIC for the target
	OpDelegateToSelf            // delegate the target shard to the persona
	OpSetParentSelf             // reparent the target under the persona
	OpLinkClient                // link guest(arg) as a client of the target shard
	OpUnlinkClient              // unlink guest(arg) from the target shard
	OpPrivilegedFor             // make the persona privileged-for the target
	OpGrantFor                  // forge a grant owned by the target to the persona
	OpVMSnapshot                // (re-)snapshot the persona's own image
	OpVMRollback                // roll the target back to its snapshot
	OpRecoveryBox               // register a recovery box at pfn(arg)
	OpGrantIOPorts              // grant the target the console port range
	OpRouteVIRQ                 // route virq(arg) to the target
	OpBalloon                   // balloon own reservation to arg MB
	OpDebugOp                   // debug-register interface (§6.2.1)
	OpXSWrite                   // write into /local/domain/<target> via XenStore
	OpSelfExit                  // voluntary exit of the persona's domain
	OpMicroreboot               // kick a netback microreboot; later calls race it
	NumOps
)

var opNames = [NumOps]string{
	"grant", "map-grant", "evtchn-alloc", "evtchn-bind", "map-foreign",
	"unmap-foreign", "create-domain", "destroy-domain", "pause", "unpause",
	"set-max-mem", "permit-hypercall", "revoke-hypercall", "control-all",
	"assign-device", "delegate-to-self", "set-parent-self", "link-client",
	"unlink-client", "privileged-for", "grant-for", "vm-snapshot",
	"vm-rollback", "recovery-box", "grant-ioports", "route-virq", "balloon",
	"debug-op", "xs-write", "self-exit", "microreboot",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Target selects the victim of a call symbolically, so sequences stay valid
// across runs even though concrete DomIDs are assigned at boot.
type Target uint8

const (
	TSelf      Target = iota // the persona's own domain
	TVictimA                 // first co-tenant guest
	TVictimB                 // second co-tenant guest
	TNetBack                 // network driver shard
	TBlkBack                 // block driver shard
	TBuilder                 // the Builder (the TCB)
	TToolstack               // guest-management shard
	TCreated                 // most recent domain the sequence created
	TBogus                   // a DomID that has never existed
	NumTargets
)

var targetNames = [NumTargets]string{
	"self", "victimA", "victimB", "netback", "blkback", "builder",
	"toolstack", "created", "bogus",
}

func (t Target) String() string {
	if int(t) < len(targetNames) {
		return targetNames[t]
	}
	return fmt.Sprintf("target(%d)", uint8(t))
}

// Call is one hostile operation: an op, a symbolic target, and a raw argument
// byte whose meaning depends on the op (pfn, grant ref, hypercall number,
// guest selector, memory size...).
type Call struct {
	Op     Op
	Target Target
	Arg    uint8
}

func (c Call) String() string {
	return fmt.Sprintf("%v(%v, arg=%d)", c.Op, c.Target, c.Arg)
}

// Sequence is a full attack scenario: a persona and the calls it issues.
type Sequence struct {
	Persona Persona
	Calls   []Call
}

// MaxCalls bounds decoded sequences so fuzz inputs stay cheap to execute.
const MaxCalls = 48

// Encode serializes the sequence to the byte form the fuzzer mutates:
// persona byte, then (op, target, arg) triples.
func (s Sequence) Encode() []byte {
	out := make([]byte, 0, 1+3*len(s.Calls))
	out = append(out, byte(s.Persona))
	for _, c := range s.Calls {
		out = append(out, byte(c.Op), byte(c.Target), c.Arg)
	}
	return out
}

// DecodeSequence is the inverse of Encode, tolerant of arbitrary fuzz bytes:
// out-of-range personas, ops and targets wrap around, a trailing partial
// triple is dropped, and sequences are truncated to MaxCalls. Only an empty
// input fails to decode.
func DecodeSequence(data []byte) (Sequence, bool) {
	if len(data) == 0 {
		return Sequence{}, false
	}
	s := Sequence{Persona: Persona(data[0] % byte(NumPersonas))}
	rest := data[1:]
	for len(rest) >= 3 && len(s.Calls) < MaxCalls {
		s.Calls = append(s.Calls, Call{
			Op:     Op(rest[0] % byte(NumOps)),
			Target: Target(rest[1] % byte(NumTargets)),
			Arg:    rest[2],
		})
		rest = rest[3:]
	}
	return s, true
}

// opWeights biases the generator toward interesting interleavings: lifecycle
// destruction and self-exit are rare (they end the fun early), microreboots
// common enough to race other calls against.
var opWeights = func() []Op {
	var w []Op
	for op := Op(0); op < NumOps; op++ {
		n := 4
		switch op {
		case OpSelfExit:
			n = 1
		case OpDestroyDomain, OpCreateDomain:
			n = 2
		case OpMicroreboot:
			n = 3
		}
		for i := 0; i < n; i++ {
			w = append(w, op)
		}
	}
	return w
}()

// Generate derives a hostile sequence deterministically from seed: same seed,
// same sequence, on every platform. The generator and the native fuzzer
// explore the same space — FuzzHypercallSequence decodes raw bytes into
// exactly the shape Generate emits.
func Generate(seed int64) Sequence {
	r := rand.New(rand.NewSource(seed))
	s := Sequence{Persona: Persona(r.Intn(int(NumPersonas)))}
	n := 8 + r.Intn(MaxCalls-8)
	for i := 0; i < n; i++ {
		s.Calls = append(s.Calls, Call{
			Op:     opWeights[r.Intn(len(opWeights))],
			Target: Target(r.Intn(int(NumTargets))),
			Arg:    uint8(r.Intn(256)),
		})
	}
	return s
}
