package attack

import (
	"xoar/internal/capability"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
	"xoar/internal/xtypes"
)

// Scenario is one executable entry of the paper's §2.3 attack taxonomy: a
// compromised component (the persona), the escalation it attempts (the
// sequence), and the service shard whose blast radius the replay measures.
type Scenario struct {
	Name string
	// Class is the §2.3 attack-vector class the scenario reproduces.
	Class string
	Seq   Sequence
	// Shard selects the component whose dependent-guest exposure is
	// measured via audit.DependentsOf.
	Shard Target
}

// ScenarioResult is the per-scenario artifact row: how much the attacker
// attempted, how much the whitelists refused, and how many guests were
// inside the compromise window with and without the microreboot bound.
type ScenarioResult struct {
	Scenario    Scenario
	Attempted   int
	Denied      int
	Escalations int
	Findings    int
	// ExposedWithMR counts guests dependent on the shard during
	// [compromise, microreboot] — the §3.2.2 notification set when the
	// component is restored from its clean snapshot.
	ExposedWithMR int
	// ExposedWithoutMR extends the window to the end of the run, as on a
	// platform that never reboots the component: tenants arriving after the
	// compromise keep falling inside it.
	ExposedWithoutMR int
	// RiskTotal / Ring0Grants are the xoarlint -surface scores of the
	// compromised persona's manifest role (zero for a plain guest).
	RiskTotal   int
	Ring0Grants int
}

// Taxonomy is the canonical scenario list. Together the classes cover the
// §2.3 vectors: the management API (from a shard and from a guest), the
// virtual-device backends and their IVC client surface, XenStore, the debug
// interface, foreign memory mapping, and snapshot replay.
func Taxonomy() []Scenario {
	return []Scenario{
		{
			Name:  "netback-compromise",
			Class: "virtual device (net backend)",
			Shard: TNetBack,
			Seq: Sequence{Persona: PersonaNetBack, Calls: []Call{
				{Op: OpLinkClient, Target: TSelf, Arg: 1},
				{Op: OpGrant, Target: TVictimA, Arg: 3},
				{Op: OpMapGrant, Target: TVictimA, Arg: 1},
				{Op: OpEvtchnBind, Target: TVictimB, Arg: 2},
				{Op: OpMapForeign, Target: TVictimA, Arg: 8},
				{Op: OpDestroyDomain, Target: TVictimB},
				{Op: OpVMSnapshot, Target: TSelf},
			}},
		},
		{
			Name:  "blkback-compromise",
			Class: "virtual device (block backend)",
			Shard: TBlkBack,
			Seq: Sequence{Persona: PersonaBlkBack, Calls: []Call{
				{Op: OpMapGrant, Target: TVictimA, Arg: 11},
				{Op: OpMapGrant, Target: TVictimB, Arg: 14},
				{Op: OpEvtchnAlloc, Target: TToolstack},
				{Op: OpVMSnapshot, Target: TSelf},
				{Op: OpVMRollback, Target: TSelf},
				{Op: OpUnlinkClient, Target: TSelf, Arg: 1},
			}},
		},
		{
			Name:  "toolstack-compromise",
			Class: "management API (toolstack shard)",
			Shard: TToolstack,
			Seq: Sequence{Persona: PersonaToolstack, Calls: []Call{
				{Op: OpControlAll, Target: TSelf},
				{Op: OpPermitHypercall, Target: TSelf, Arg: 13},
				{Op: OpDebugOp, Target: TSelf},
				{Op: OpMapForeign, Target: TBuilder, Arg: 2},
				{Op: OpAssignDevice, Target: TSelf},
				{Op: OpPause, Target: TVictimA},
				{Op: OpUnpause, Target: TVictimA},
				{Op: OpSetMaxMem, Target: TVictimB, Arg: 4},
			}},
		},
		{
			Name:  "guest-management-probe",
			Class: "management API (from guest)",
			Shard: TNetBack,
			Seq: Sequence{Persona: PersonaGuest, Calls: []Call{
				{Op: OpControlAll, Target: TSelf},
				{Op: OpPermitHypercall, Target: TSelf, Arg: 13},
				{Op: OpCreateDomain, Target: TSelf},
				{Op: OpDestroyDomain, Target: TNetBack},
				{Op: OpMapForeign, Target: TVictimA, Arg: 5},
				{Op: OpMapForeign, Target: TBogus, Arg: 5},
				{Op: OpSetMaxMem, Target: TVictimB, Arg: 20},
			}},
		},
		{
			Name:  "guest-ivc-sweep",
			Class: "virtual device client (IVC sharing policy)",
			Shard: TNetBack,
			Seq: Sequence{Persona: PersonaGuest, Calls: []Call{
				{Op: OpGrant, Target: TVictimA},
				{Op: OpGrant, Target: TVictimB},
				{Op: OpMapGrant, Target: TVictimA, Arg: 6},
				{Op: OpEvtchnAlloc, Target: TVictimB},
				{Op: OpEvtchnBind, Target: TVictimA, Arg: 1},
				{Op: OpGrant, Target: TNetBack, Arg: 2},
			}},
		},
		{
			Name:  "xenstore-poison",
			Class: "XenStore",
			Shard: TNetBack,
			Seq: Sequence{Persona: PersonaGuest, Calls: []Call{
				{Op: OpXSWrite, Target: TNetBack},
				{Op: OpXSWrite, Target: TToolstack},
				{Op: OpXSWrite, Target: TVictimA},
				{Op: OpXSWrite, Target: TSelf},
			}},
		},
		{
			Name:  "debug-interface",
			Class: "debug / hardware interface (CVE-2007-4993 class)",
			Shard: TBuilder,
			Seq: Sequence{Persona: PersonaGuest, Calls: []Call{
				{Op: OpDebugOp, Target: TSelf},
				{Op: OpGrantIOPorts, Target: TSelf, Arg: 1},
				{Op: OpRouteVIRQ, Target: TSelf, Arg: 1},
				{Op: OpAssignDevice, Target: TSelf},
			}},
		},
		{
			Name:  "rollback-replay",
			Class: "snapshot replay / microreboot race",
			Shard: TNetBack,
			Seq: Sequence{Persona: PersonaBuilder, Calls: []Call{
				{Op: OpMicroreboot, Target: TSelf},
				{Op: OpVMRollback, Target: TNetBack},
				{Op: OpPause, Target: TNetBack},
				{Op: OpUnpause, Target: TNetBack},
				{Op: OpVMRollback, Target: TBlkBack},
			}},
		},
	}
}

// shardDom resolves a scenario's measured shard to its live DomID.
func (ha *Harness) shardDom(t Target) xtypes.DomID {
	switch t {
	case TBlkBack:
		return ha.PL.BlkBacks[0].Dom
	case TBuilder:
		return ha.PL.BuilderDom
	case TToolstack:
		return ha.PL.Toolstacks[0].Dom
	default:
		return ha.PL.NetBacks[0].Dom
	}
}

// RunTaxonomy executes every scenario on a fresh platform and returns the
// per-scenario artifact. Deterministic end to end: the drift test pins the
// exact counts.
func RunTaxonomy() ([]ScenarioResult, error) {
	var out []ScenarioResult
	for _, sc := range Taxonomy() {
		r, err := runScenario(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func runScenario(sc Scenario) (ScenarioResult, error) {
	ha, err := NewHarness()
	if err != nil {
		return ScenarioResult{}, err
	}
	defer ha.Close()

	start := ha.Env.Now()
	res := ha.Run(sc.Seq)

	// Recovery: microreboot the measured shard where it is snapshot-enrolled
	// (the driver backends). Management shards are not restartable in this
	// model; for them the window simply closes at the end of the attack.
	shard := ha.shardDom(sc.Shard)
	if sc.Shard == TNetBack || sc.Shard == TBlkBack {
		eng := ha.Engine
		ha.Env.Spawn("taxonomy-mr", func(p *sim.Proc) { eng.RequestRestart(p, shard) })
		ha.Env.RunFor(10 * sim.Second)
	}
	mrTime := ha.Env.Now()

	// A tenant arriving after recovery: with the microreboot bounding the
	// compromise window it is NOT in the notification set; on a platform
	// that never restores the component it is.
	var lateErr error
	ha.Env.Spawn("late-tenant", func(p *sim.Proc) {
		_, lateErr = ha.PL.Toolstacks[0].CreateVM(p, toolstack.GuestConfig{
			Name: "late-tenant", Image: osimage.ImgGuestPV, MemMB: 256,
			Net: true, Disk: true,
		})
	})
	ha.Env.RunFor(60 * sim.Second)
	if lateErr != nil {
		return ScenarioResult{}, lateErr
	}
	end := ha.Env.Now()

	r := ScenarioResult{
		Scenario:         sc,
		Attempted:        res.Attempted,
		Denied:           res.Denied,
		Findings:         len(res.Findings),
		ExposedWithMR:    len(ha.Log.DependentsOf(shard, start, mrTime)),
		ExposedWithoutMR: len(ha.Log.DependentsOf(shard, start, end)),
	}
	for _, f := range res.Findings {
		if f.Kind == KindEscalation {
			r.Escalations++
		}
	}
	if role := sc.Seq.Persona.Role(); role != "" {
		if sm, ok := capability.Lookup(role); ok {
			r.RiskTotal = sm.Surface.RiskTotal
			r.Ring0Grants = sm.Surface.Ring0Grants
		}
	}
	return r, nil
}
