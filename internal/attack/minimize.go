package attack

// Minimize greedily shrinks a failing sequence: it tries removing each call
// in turn (re-running the remainder on a fresh harness) and keeps the removal
// whenever any finding survives. The result is the reproducer that gets
// checked into testdata/fuzz/ — small enough to read, still failing.
//
// Each probe boots a full platform, so minimization is the expensive path;
// it only runs when the fuzzer has already found a counterexample.
func Minimize(seq Sequence) (Sequence, error) {
	fails := func(s Sequence) (bool, error) {
		res, err := RunSequence(s)
		if err != nil {
			return false, err
		}
		return len(res.Findings) > 0, nil
	}
	bad, err := fails(seq)
	if err != nil || !bad {
		return seq, err
	}
	cur := seq
	for {
		shrunk := false
		for i := 0; i < len(cur.Calls); i++ {
			cand := Sequence{Persona: cur.Persona}
			cand.Calls = append(cand.Calls, cur.Calls[:i]...)
			cand.Calls = append(cand.Calls, cur.Calls[i+1:]...)
			if len(cand.Calls) == 0 {
				continue
			}
			bad, err := fails(cand)
			if err != nil {
				return cur, err
			}
			if bad {
				cur = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return cur, nil
		}
	}
}
