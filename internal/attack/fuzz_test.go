package attack

import (
	"reflect"
	"testing"
)

// FuzzHypercallSequence is the native-fuzzing entry point: raw fuzz bytes
// decode into (persona, calls) sequences — the same space Generate explores —
// and every finding the oracle raises fails the run. The sim is
// deterministic, so any crasher the fuzzer saves replays exactly under plain
// `go test` via the seed-corpus mechanism.
func FuzzHypercallSequence(f *testing.F) {
	for seed := int64(1); seed <= 16; seed++ {
		f.Add(Generate(seed).Encode())
	}
	for _, seq := range regressionSequences() {
		f.Add(seq.Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, ok := DecodeSequence(data)
		if !ok {
			t.Skip("undecodable input")
		}
		res, err := RunSequence(seq)
		if err != nil {
			t.Fatalf("harness boot: %v", err)
		}
		for _, finding := range res.Findings {
			t.Errorf("%v", finding)
		}
	})
}

// regressionSequences are the minimized reproducers for every hole the
// fuzzer has surfaced so far, kept both here (as fuzz seeds) and encoded in
// testdata/fuzz/ (as the corpus plain `go test` replays). Each rode an hv
// fix; the comments name it.
func regressionSequences() []Sequence {
	return []Sequence{
		// A compromised netback linked a guest to itself (controls() counts
		// self-control), opening IVC to an arbitrary co-tenant. Fixed by the
		// EnforceShardIVC self-link check in LinkShardClient.
		{Persona: PersonaNetBack, Calls: []Call{
			{Op: OpLinkClient, Target: TSelf, Arg: 1},
			{Op: OpGrant, Target: TVictimA},
			{Op: OpMapGrant, Target: TVictimA, Arg: 1},
		}},
		// A compromised netback unlinked its own clients, closing their
		// DependentsOf exposure windows and hiding the compromise interval.
		// Fixed by the matching self-unlink check in UnlinkShardClient.
		{Persona: PersonaNetBack, Calls: []Call{
			{Op: OpUnlinkClient, Target: TSelf, Arg: 1},
			{Op: OpUnlinkClient, Target: TSelf, Arg: 2},
		}},
		// Guest↔guest IVC probes were refused without ticking DeniedCalls,
		// so an adversarial tenant could sweep co-tenants invisibly. Fixed
		// by counting the non-shard branch of ivcAllowed.
		{Persona: PersonaGuest, Calls: []Call{
			{Op: OpGrant, Target: TVictimA},
			{Op: OpEvtchnAlloc, Target: TVictimB},
			{Op: OpMapGrant, Target: TVictimA, Arg: 3},
			{Op: OpEvtchnBind, Target: TVictimB, Arg: 2},
		}},
		// A snapshot-granted shard could re-snapshot itself after
		// compromise, poisoning the image every later microreboot restores.
		// Fixed by making VMSnapshot write-once per domain.
		{Persona: PersonaNetBack, Calls: []Call{
			{Op: OpVMSnapshot, Target: TSelf},
			{Op: OpVMRollback, Target: TSelf},
			{Op: OpVMSnapshot, Target: TSelf, Arg: 9},
		}},
		// Rollback raced against a live microreboot of the same shard: the
		// engine and a hostile builder-persona both drive VMRollback.
		{Persona: PersonaBuilder, Calls: []Call{
			{Op: OpMicroreboot, Target: TSelf},
			{Op: OpVMRollback, Target: TNetBack},
			{Op: OpPause, Target: TNetBack},
			{Op: OpUnpause, Target: TNetBack},
		}},
		// Foreign-DomID storm from a plain guest: every management call must
		// be refused with a counted denial, and nothing may crash the host.
		{Persona: PersonaGuest, Calls: []Call{
			{Op: OpMapForeign, Target: TBogus},
			{Op: OpDestroyDomain, Target: TNetBack},
			{Op: OpControlAll, Target: TSelf},
			{Op: OpDebugOp, Target: TSelf},
			{Op: OpUnmapForeign, Target: TBogus},
		}},
		// Builder implant chain: create a shard, grant it hypercalls, link a
		// victim to it, tear it down. All manifest-covered — the oracle must
		// track the acquired rights without false findings, and destruction
		// must reap the XenStore subtree.
		{Persona: PersonaBuilder, Calls: []Call{
			{Op: OpCreateDomain, Target: TSelf, Arg: 1},
			{Op: OpPermitHypercall, Target: TCreated, Arg: 10},
			{Op: OpLinkClient, Target: TCreated, Arg: 1},
			{Op: OpUnlinkClient, Target: TCreated, Arg: 1},
			{Op: OpDestroyDomain, Target: TCreated},
		}},
		// Toolstack overreach: reparenting a guest under itself is granted,
		// but unlinking a plain guest "shard" used to succeed as a silent
		// no-op with a bogus audit record. Fixed by the non-shard check in
		// UnlinkShardClient.
		{Persona: PersonaToolstack, Calls: []Call{
			{Op: OpSetParentSelf, Target: TVictimA},
			{Op: OpDelegateToSelf, Target: TNetBack},
			{Op: OpGrantFor, Target: TBlkBack, Arg: 7},
			{Op: OpUnlinkClient, Target: TVictimA, Arg: 2},
		}},
	}
}

// TestAttackCorpusReplay replays every regression sequence deterministically
// on every `go test ./...` run — no -fuzz flag needed — so the holes they
// pinned can never silently reopen. The encoded forms are also checked in
// under testdata/fuzz/FuzzHypercallSequence/, which the native fuzzer
// replays through the same oracle.
func TestAttackCorpusReplay(t *testing.T) {
	for i, seq := range regressionSequences() {
		res, err := RunSequence(seq)
		if err != nil {
			t.Fatalf("corpus %d: boot: %v", i, err)
		}
		if res.Attempted == 0 {
			t.Errorf("corpus %d (%v): no calls attempted", i, seq.Persona)
		}
		for _, f := range res.Findings {
			t.Errorf("corpus %d (%v): %v", i, seq.Persona, f)
		}
	}
}

// TestGeneratedSequencesClean is the seeded-generator sweep: the first 64
// seeds must run finding-free against the fixed hypervisor. A new hole in hv
// — or an oracle miscalibration — surfaces here before the fuzzer runs.
func TestGeneratedSequencesClean(t *testing.T) {
	for seed := int64(1); seed <= 64; seed++ {
		seq := Generate(seed)
		res, err := RunSequence(seq)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Attempted == 0 {
			t.Errorf("seed %d: generated sequence attempted nothing", seed)
		}
		for _, f := range res.Findings {
			t.Errorf("seed %d (%v): %v", seed, seq.Persona, f)
		}
	}
}

// TestSequenceDeterminism pins the replayability claim: the same seed yields
// byte-identical sequences, and two fresh harnesses running it report
// identical outcomes.
func TestSequenceDeterminism(t *testing.T) {
	seq := Generate(42)
	if !reflect.DeepEqual(seq, Generate(42)) {
		t.Fatal("Generate(42) is not deterministic")
	}
	decoded, ok := DecodeSequence(seq.Encode())
	if !ok || !reflect.DeepEqual(seq, decoded) {
		t.Fatalf("encode/decode roundtrip mismatch:\n got %+v\nwant %+v", decoded, seq)
	}
	a, err := RunSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if a.Attempted != b.Attempted || a.Denied != b.Denied ||
		!reflect.DeepEqual(a.Findings, b.Findings) {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

// TestDecodeSequenceTolerance: arbitrary fuzz bytes must always decode into
// an executable sequence (wrapping, truncation), never panic or reject.
func TestDecodeSequenceTolerance(t *testing.T) {
	if _, ok := DecodeSequence(nil); ok {
		t.Fatal("empty input decoded")
	}
	raw := make([]byte, 1+3*MaxCalls+50)
	for i := range raw {
		raw[i] = byte(251 + i*7)
	}
	seq, ok := DecodeSequence(raw)
	if !ok {
		t.Fatal("long input rejected")
	}
	if len(seq.Calls) != MaxCalls {
		t.Fatalf("calls = %d, want truncation to %d", len(seq.Calls), MaxCalls)
	}
	if seq.Persona >= NumPersonas {
		t.Fatalf("persona %d out of range", seq.Persona)
	}
	for _, c := range seq.Calls {
		if c.Op >= NumOps || c.Target >= NumTargets {
			t.Fatalf("call %v out of range", c)
		}
	}
}

// TestOracleDetectsStockXen is the oracle's sensitivity check: with the Xoar
// IVC policy switched off (stock Xen semantics), the self-link and
// guest-probe reproducers must surface escalations. If this test fails, the
// oracle has gone blind and every green fuzz run is meaningless.
func TestOracleDetectsStockXen(t *testing.T) {
	cases := []Sequence{
		{Persona: PersonaNetBack, Calls: []Call{
			{Op: OpLinkClient, Target: TSelf, Arg: 1},
		}},
		{Persona: PersonaGuest, Calls: []Call{
			{Op: OpGrant, Target: TVictimA},
			{Op: OpEvtchnAlloc, Target: TVictimB},
		}},
	}
	for i, seq := range cases {
		ha, err := NewHarness()
		if err != nil {
			t.Fatal(err)
		}
		ha.H.EnforceShardIVC = false
		res := ha.Run(seq)
		ha.Close()
		escalations := 0
		for _, f := range res.Findings {
			if f.Kind == KindEscalation {
				escalations++
			}
		}
		if escalations == 0 {
			t.Errorf("case %d (%v): oracle raised no escalation against stock-Xen semantics; findings: %v",
				i, seq.Persona, res.Findings)
		}
	}
}

// TestMinimizeShrinksReproducer: Minimize must strip the noise calls around
// a failing core while preserving the failure. Run against stock-Xen
// semantics via a harness-level wrapper is not possible (Minimize boots its
// own), so this exercises the pass-through path: a clean sequence minimizes
// to itself.
func TestMinimizeShrinksReproducer(t *testing.T) {
	seq := Generate(7)
	min, err := Minimize(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(min, seq) {
		t.Fatalf("clean sequence was altered: %+v", min)
	}
}
