package toolstack_test

import (
	"errors"
	"testing"

	"xoar/internal/boot"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
	"xoar/internal/xtypes"
)

// rig boots a full Xoar platform; the toolstack under test is the one the
// boot sequence provisioned, with both driver shards delegated.
type rig struct {
	env *sim.Env
	h   *hv.Hypervisor
	pl  *boot.Platform
	ts  *toolstack.Toolstack
}

func newRig(t *testing.T) *rig {
	t.Helper()
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	var pl *boot.Platform
	var err error
	env.Spawn("boot", func(p *sim.Proc) {
		pl, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{})
	})
	env.RunFor(120 * sim.Second)
	if err != nil || pl == nil {
		t.Fatalf("boot: %v", err)
	}
	return &rig{env: env, h: h, pl: pl, ts: pl.Toolstacks[0]}
}

func (r *rig) create(t *testing.T, cfg toolstack.GuestConfig) (*toolstack.Guest, error) {
	t.Helper()
	var g *toolstack.Guest
	var err error
	done := false
	r.env.Spawn("create", func(p *sim.Proc) {
		g, err = r.ts.CreateVM(p, cfg)
		done = true
	})
	r.env.RunFor(120 * sim.Second)
	if !done {
		t.Fatal("create did not complete")
	}
	return g, err
}

func (r *rig) destroy(t *testing.T, dom xtypes.DomID) error {
	t.Helper()
	var err error
	done := false
	r.env.Spawn("destroy", func(p *sim.Proc) {
		err = r.ts.DestroyVM(p, dom)
		done = true
	})
	r.env.RunFor(30 * sim.Second)
	if !done {
		t.Fatal("destroy did not complete")
	}
	return err
}

func TestCreateWiresDevicesAndConsole(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	g, err := r.create(t, toolstack.GuestConfig{Name: "g", Image: osimage.ImgGuestPV, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Net == nil || !g.Net.Connected() {
		t.Fatal("vif not connected")
	}
	if g.Blk == nil || !g.Blk.Connected() {
		t.Fatal("vbd not connected")
	}
	if r.pl.Console.Buffer(g.Dom) == nil && r.pl.Console.Consoles() == 0 {
		t.Fatal("console missing")
	}
	// The shard-client links exist in the hypervisor.
	nb, _ := r.h.Domain(g.NetB.Dom)
	found := false
	for _, c := range nb.Clients() {
		if c == g.Dom {
			found = true
		}
	}
	if !found {
		t.Fatal("guest not linked to netback")
	}
	// The backend holds the guest's disk image exclusively.
	if err := g.BlkB.DeleteImage("g-disk"); !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("mounted image deletable: %v", err)
	}
	if len(r.ts.Guests()) != 1 {
		t.Fatalf("guests = %d", len(r.ts.Guests()))
	}
}

func TestDestroyCleansEverything(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	g, err := r.create(t, toolstack.GuestConfig{Name: "g", Image: osimage.ImgGuestPV, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.destroy(t, g.Dom); err != nil {
		t.Fatal(err)
	}
	if _, err := r.h.Domain(g.Dom); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatal("domain survived")
	}
	// The disk image was unmounted and deleted; a new guest can reuse the name.
	if _, err := r.create(t, toolstack.GuestConfig{Name: "g", Image: osimage.ImgGuestPV, Disk: true}); err != nil {
		t.Fatalf("recreate after destroy: %v", err)
	}
	if r.ts.Destroyed != 1 {
		t.Fatalf("destroyed = %d", r.ts.Destroyed)
	}
}

func TestDestroyForeignGuestRefused(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	// A domain this toolstack does not manage.
	other, _ := r.h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "other", MemMB: 64})
	r.h.Unpause(hv.SystemCaller, other.ID)
	if err := r.destroy(t, other.ID); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("foreign destroy: %v", err)
	}
}

func TestQuotas(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	r.ts.SetQuota(toolstack.Quota{MaxVMs: 1, MaxMemMB: 8 * 1024})
	if _, err := r.create(t, toolstack.GuestConfig{Name: "a", Image: osimage.ImgGuestPV}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.create(t, toolstack.GuestConfig{Name: "b", Image: osimage.ImgGuestPV}); !errors.Is(err, xtypes.ErrQuota) {
		t.Fatalf("vm quota: %v", err)
	}
	r.ts.SetQuota(toolstack.Quota{MaxVMs: 10, MaxMemMB: 1500})
	if _, err := r.create(t, toolstack.GuestConfig{Name: "c", Image: osimage.ImgGuestPV, MemMB: 1024}); !errors.Is(err, xtypes.ErrQuota) {
		t.Fatalf("mem quota: %v", err)
	}
}

func TestConstraintLockReleasesOnDestroy(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	a, err := r.create(t, toolstack.GuestConfig{Name: "a", Image: osimage.ImgGuestPV, Net: true, ConstraintTag: "A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.create(t, toolstack.GuestConfig{Name: "b", Image: osimage.ImgGuestPV, Net: true, ConstraintTag: "B"}); !errors.Is(err, xtypes.ErrConstraint) {
		t.Fatalf("constraint: %v", err)
	}
	// Destroying the last tenant-A guest unlocks the shard for tenant B.
	if err := r.destroy(t, a.Dom); err != nil {
		t.Fatal(err)
	}
	if _, err := r.create(t, toolstack.GuestConfig{Name: "b", Image: osimage.ImgGuestPV, Net: true, ConstraintTag: "B"}); err != nil {
		t.Fatalf("post-release constraint: %v", err)
	}
}

func TestUntaggedGuestsShareFreely(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	for _, name := range []string{"x", "y", "z"} {
		if _, err := r.create(t, toolstack.GuestConfig{Name: name, Image: osimage.ImgGuestPV, Net: true}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestConstraintFailureLeavesNoDebris(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	if _, err := r.create(t, toolstack.GuestConfig{Name: "a", Image: osimage.ImgGuestPV, Net: true, Disk: true, ConstraintTag: "A"}); err != nil {
		t.Fatal(err)
	}
	before := len(r.h.Domains())
	// This fails on the disk shard after the net shard was picked; the net
	// reservation must be rolled back.
	if _, err := r.create(t, toolstack.GuestConfig{Name: "b", Image: osimage.ImgGuestPV, Net: true, Disk: true, ConstraintTag: "B"}); err == nil {
		t.Fatal("expected constraint failure")
	}
	if after := len(r.h.Domains()); after != before {
		t.Fatalf("domains leaked: %d -> %d", before, after)
	}
	// Tenant A can still place a second guest (shard not double-counted).
	if _, err := r.create(t, toolstack.GuestConfig{Name: "a2", Image: osimage.ImgGuestPV, Net: true, Disk: true, ConstraintTag: "A"}); err != nil {
		t.Fatalf("tenant A second guest: %v", err)
	}
}

func TestPauseUnpause(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	g, err := r.create(t, toolstack.GuestConfig{Name: "g", Image: osimage.ImgGuestPV})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ts.Pause(g.Dom); err != nil {
		t.Fatal(err)
	}
	d, _ := r.h.Domain(g.Dom)
	if d.State != hv.StatePaused {
		t.Fatalf("state = %v", d.State)
	}
	if err := r.ts.Unpause(g.Dom); err != nil {
		t.Fatal(err)
	}
	if d.State != hv.StateRunning {
		t.Fatalf("state = %v", d.State)
	}
}

func TestAdoptExistingDomain(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	// A domain that arrived outside this toolstack's CreateVM path (e.g. by
	// migration): build it directly, hand parenthood over, then adopt.
	var dom xtypes.DomID
	done := false
	r.env.Spawn("mk", func(p *sim.Proc) {
		d, err := r.h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "incoming", MemMB: 256})
		if err != nil {
			t.Error(err)
			return
		}
		r.h.Unpause(hv.SystemCaller, d.ID)
		r.h.SetParentTool(hv.SystemCaller, d.ID, r.ts.Dom)
		dom = d.ID
		done = true
	})
	r.env.RunFor(sim.Second)
	if !done {
		t.Fatal("setup incomplete")
	}

	var g *toolstack.Guest
	var err error
	done = false
	r.env.Spawn("adopt", func(p *sim.Proc) {
		g, err = r.ts.Adopt(p, dom, toolstack.GuestConfig{Name: "incoming", Net: true, Disk: true})
		done = true
	})
	r.env.RunFor(30 * sim.Second)
	if !done || err != nil {
		t.Fatalf("adopt: %v", err)
	}
	if g.Net == nil || !g.Net.Connected() || g.Blk == nil || !g.Blk.Connected() {
		t.Fatal("adopted guest's devices not wired")
	}
	// Double adoption is refused.
	r.env.Spawn("again", func(p *sim.Proc) {
		if _, err := r.ts.Adopt(p, dom, toolstack.GuestConfig{Name: "incoming"}); !errors.Is(err, xtypes.ErrExists) {
			t.Errorf("double adopt: %v", err)
		}
	})
	r.env.RunFor(sim.Second)
}

func TestForgetReleasesWithoutDestroy(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	g, err := r.create(t, toolstack.GuestConfig{Name: "m", Image: osimage.ImgGuestPV, Net: true, Disk: true, ConstraintTag: "X"})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the domain having migrated away.
	r.h.DestroyDomain(hv.SystemCaller, g.Dom, "migrated")
	r.ts.Forget(g.Dom)
	r.ts.Forget(g.Dom) // idempotent
	if len(r.ts.Guests()) != 0 {
		t.Fatal("record survived Forget")
	}
	// The constraint lock and the disk image were released: a different
	// tenant can use the shards and the image name immediately.
	if _, err := r.create(t, toolstack.GuestConfig{Name: "m", Image: osimage.ImgGuestPV, Net: true, Disk: true, ConstraintTag: "Y"}); err != nil {
		t.Fatalf("resources not released by Forget: %v", err)
	}
}

func TestHVMGuestViaToolstack(t *testing.T) {
	r := newRig(t)
	defer r.env.Shutdown()
	g, err := r.create(t, toolstack.GuestConfig{Name: "hvm", Image: osimage.ImgGuestHVM, HVM: true, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Qemu == nil || g.QemuDom == 0 {
		t.Fatal("no qemu stub")
	}
	// The guest itself has no direct frontends; the QemuVM carries them.
	if g.Net != nil || g.Blk != nil {
		t.Fatal("HVM guest wired with PV frontends directly")
	}
	if g.Qemu.Net == nil || g.Qemu.Blk == nil {
		t.Fatal("qemu frontends missing")
	}
	// Destroy reaps both domains and frees the image.
	if err := r.destroy(t, g.Dom); err != nil {
		t.Fatal(err)
	}
	if _, err := r.h.Domain(g.QemuDom); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatal("qemu survived destroy")
	}
}
