// Package toolstack implements the management Toolstack shard (§4.6, §5.6):
// a libxl-flavoured VM manager. A Toolstack creates guests by passing
// parameters to the Builder, wires devices by selecting among the driver
// shards *delegated to it*, enforces sharing-constraint groups (§3.2.1) and
// resource quotas (§3.4.2), and manages only the VMs it built — the
// hypervisor audits every management call against the parent-toolstack flag.
package toolstack

// The toolstack is the control plane: it holds *handles* to the driver and
// emulation shards delegated to it so it can orchestrate device attach, the
// in-model analogue of xl's hotplug scripts. Every runtime data path those
// handles set up still crosses the hypervisor's IVC audit; the imports below
// carry no shard-to-shard data channel, which is why each one is suppressed
// rather than the layering rule relaxed.
import (
	"fmt"

	//xoarlint:allow(layering) control plane holds delegated BlkBack handles; attach paths ride hv-audited IVC
	"xoar/internal/blkdrv"
	"xoar/internal/builder"
	//xoarlint:allow(layering) control plane wires guest consoles through the delegated Console Manager handle
	"xoar/internal/consolemgr"
	"xoar/internal/hv"
	//xoarlint:allow(layering) control plane holds delegated NetBack handles; attach paths ride hv-audited IVC
	"xoar/internal/netdrv"
	//xoarlint:allow(layering) control plane launches a per-HVM-guest QemuVM and keeps its handle for teardown
	"xoar/internal/qemudm"
	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

// GuestConfig describes a guest VM to create.
type GuestConfig struct {
	Name  string
	Image string
	// CustomKernel routes the build through the bootloader (§5.2).
	CustomKernel bool
	MemMB        int
	VCPUs        int
	DiskMB       int
	// Net / Disk select whether to attach a vif / vbd.
	Net  bool
	Disk bool
	// NetQueues selects the vif's ring-pair count (0 or 1 = single queue).
	// Multi-queue vifs hash flows across the rings so one guest can keep a
	// 10G+ NIC saturated past a single ring's slot count.
	NetQueues int
	// DiskQueues is the vbd counterpart, for NVMe-class disks.
	DiskQueues int
	// ConstraintTag restricts shard sharing: shards serving this guest may
	// only be shared with guests carrying the same tag (§3.2.1). Empty means
	// unconstrained.
	ConstraintTag string
	// HVM runs an unmodified guest: its devices are emulated by a dedicated
	// QemuVM stub domain (§4.5.2), which forwards I/O through its own PV
	// frontends. PV device flags (Net/Disk) then wire the QemuVM, not the
	// guest, to the driver shards.
	HVM bool
}

// Guest is the Toolstack's record of a VM it manages.
type Guest struct {
	Dom  xtypes.DomID
	Cfg  GuestConfig
	Net  *netdrv.Frontend
	Blk  *blkdrv.Frontend
	NetB *netdrv.Backend
	BlkB *blkdrv.Backend
	// Qemu is the per-guest device model for HVM guests (nil for PV).
	Qemu *qemudm.QemuVM
	// QemuDom is the stub domain hosting Qemu.
	QemuDom xtypes.DomID
}

// Quota bounds a Toolstack's resource usage (§3.4.2).
type Quota struct {
	MaxVMs   int
	MaxMemMB int
}

// Toolstack is one management domain.
type Toolstack struct {
	H       *hv.Hypervisor
	Dom     xtypes.DomID
	XS      *xenstore.Logic
	Builder *builder.Builder
	Console *consolemgr.Manager

	// Delegated driver shards this Toolstack may use (§5.6: "A Toolstack can
	// only use shards that have been delegated to it").
	NetBacks []*netdrv.Backend
	BlkBacks []*blkdrv.Backend

	// constraints tracks the tag each shard is currently dedicated to.
	// The tag locks on first tagged client and clears when unused.
	constraints map[xtypes.DomID]string
	clientCount map[xtypes.DomID]int

	quota  Quota
	guests map[xtypes.DomID]*Guest
	usedMB int

	Created   int
	Destroyed int
}

// New constructs a Toolstack in domain dom.
func New(h *hv.Hypervisor, dom xtypes.DomID, xs *xenstore.Logic, b *builder.Builder) *Toolstack {
	return &Toolstack{
		H:           h,
		Dom:         dom,
		XS:          xs,
		Builder:     b,
		constraints: make(map[xtypes.DomID]string),
		clientCount: make(map[xtypes.DomID]int),
		quota:       Quota{MaxVMs: 64, MaxMemMB: 1 << 20},
		guests:      make(map[xtypes.DomID]*Guest),
	}
}

// SetQuota replaces the toolstack's resource quota.
func (ts *Toolstack) SetQuota(q Quota) { ts.quota = q }

// Guests lists managed guests in creation order (by DomID).
func (ts *Toolstack) Guests() []*Guest {
	var out []*Guest
	for id := xtypes.DomID(0); int(id) < 1<<20 && len(out) < len(ts.guests); id++ {
		if g, ok := ts.guests[id]; ok {
			out = append(out, g)
		}
	}
	return out
}

// pickShard selects a delegated shard compatible with the guest's constraint
// tag, locking the shard to that tag. Creation fails rather than violating a
// constraint (§3.2.1).
func pickShard[T any](ts *Toolstack, shards []T, domOf func(T) xtypes.DomID, tag string) (T, error) {
	var zero T
	if len(shards) == 0 {
		return zero, fmt.Errorf("toolstack: no delegated shard available: %w", xtypes.ErrNotDelegated)
	}
	for _, s := range shards {
		d := domOf(s)
		cur, locked := ts.constraints[d]
		if !locked || cur == tag {
			if tag != "" {
				ts.constraints[d] = tag
			}
			ts.clientCount[d]++
			return s, nil
		}
	}
	return zero, fmt.Errorf("toolstack: no shard satisfies constraint %q: %w", tag, xtypes.ErrConstraint)
}

// releaseShard drops a client and unlocks the tag when unused.
func (ts *Toolstack) releaseShard(d xtypes.DomID) {
	if ts.clientCount[d] > 0 {
		ts.clientCount[d]--
	}
	if ts.clientCount[d] == 0 {
		delete(ts.constraints, d)
	}
}

// CreateVM builds and wires a guest.
func (ts *Toolstack) CreateVM(p *sim.Proc, cfg GuestConfig) (*Guest, error) {
	if len(ts.guests) >= ts.quota.MaxVMs {
		return nil, fmt.Errorf("toolstack: VM quota %d: %w", ts.quota.MaxVMs, xtypes.ErrQuota)
	}
	memMB := cfg.MemMB
	if memMB == 0 {
		memMB = 1024
	}
	if ts.usedMB+memMB > ts.quota.MaxMemMB {
		return nil, fmt.Errorf("toolstack: memory quota: %w", xtypes.ErrQuota)
	}

	// Select shards first so constraint failures don't leave half-built VMs.
	var nb *netdrv.Backend
	var bb *blkdrv.Backend
	var err error
	if cfg.Net {
		nb, err = pickShard(ts, ts.NetBacks, func(b *netdrv.Backend) xtypes.DomID { return b.Dom }, cfg.ConstraintTag)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Disk {
		bb, err = pickShard(ts, ts.BlkBacks, func(b *blkdrv.Backend) xtypes.DomID { return b.Dom }, cfg.ConstraintTag)
		if err != nil {
			if nb != nil {
				ts.releaseShard(nb.Dom)
			}
			return nil, err
		}
	}

	dom, err := ts.Builder.Submit(p, builder.Request{
		Requester:    ts.Dom,
		Name:         cfg.Name,
		Image:        cfg.Image,
		CustomKernel: cfg.CustomKernel,
		MemMB:        cfg.MemMB,
		VCPUs:        cfg.VCPUs,
	})
	if err != nil {
		if nb != nil {
			ts.releaseShard(nb.Dom)
		}
		if bb != nil {
			ts.releaseShard(bb.Dom)
		}
		return nil, err
	}

	g := &Guest{Dom: dom, Cfg: cfg, NetB: nb, BlkB: bb}

	if cfg.HVM {
		// Build the per-guest device model; the Builder fixes its image and
		// privileges and checks we are the guest's parent toolstack.
		qdom, qerr := ts.Builder.Submit(p, builder.Request{
			Requester: ts.Dom, Name: cfg.Name + "-qemu", QemuFor: dom,
		})
		if qerr != nil {
			return nil, qerr
		}
		g.QemuDom = qdom
		g.Qemu = qemudm.New(ts.H, qdom, dom)
		// The QemuVM — not the guest — is the driver shards' client; its PV
		// frontends carry the emulated I/O.
		wired := &Guest{Dom: qdom, Cfg: GuestConfig{Name: cfg.Name + "-qemu", Net: cfg.Net, Disk: cfg.Disk, DiskMB: cfg.DiskMB}, NetB: nb, BlkB: bb}
		if err := ts.wireDevices(p, wired); err != nil {
			return nil, err
		}
		g.Qemu.Net = wired.Net
		g.Qemu.Blk = wired.Blk
	} else {
		if err := ts.wireDevices(p, g); err != nil {
			return nil, err
		}
	}

	ts.guests[dom] = g
	ts.usedMB += memMB
	ts.Created++
	return g, nil
}

// wireDevices links the guest to its selected shards and connects the
// frontends; shared by CreateVM and Adopt.
func (ts *Toolstack) wireDevices(p *sim.Proc, g *Guest) error {
	dom, cfg := g.Dom, g.Cfg
	guestXS := ts.XS.Connect(dom, false)

	// Wire the network device.
	if g.NetB != nil {
		if err := ts.H.LinkShardClient(ts.Dom, g.NetB.Dom, dom); err != nil {
			return err
		}
		nq := cfg.NetQueues
		if nq < 1 {
			nq = 1
		}
		g.NetB.CreateVifQueues(dom, nq)
		g.Net = netdrv.NewFrontend(ts.H, dom, guestXS)
		if err := g.Net.Connect(p, g.NetB); err != nil {
			return err
		}
	}
	// Wire the disk: image creation is proxied to BlkBack (§5.4).
	if g.BlkB != nil {
		if err := ts.H.LinkShardClient(ts.Dom, g.BlkB.Dom, dom); err != nil {
			return err
		}
		diskMB := cfg.DiskMB
		if diskMB == 0 {
			diskMB = 15 * 1024
		}
		imgName := fmt.Sprintf("%s-disk", cfg.Name)
		if err := g.BlkB.CreateImage(imgName, diskMB); err != nil {
			return err
		}
		dq := cfg.DiskQueues
		if dq < 1 {
			dq = 1
		}
		if err := g.BlkB.CreateVbdQueues(dom, imgName, dq); err != nil {
			return err
		}
		g.Blk = blkdrv.NewFrontend(ts.H, dom, guestXS)
		if err := g.Blk.Connect(p, g.BlkB); err != nil {
			return err
		}
	}
	if ts.Console != nil {
		ts.Console.CreateConsole(dom)
	}
	return nil
}

// Adopt registers an already-running domain — typically one that just
// arrived via live migration — with this toolstack and wires the devices cfg
// asks for. The caller must already have made this toolstack the domain's
// parent; the hypervisor rejects the device linking otherwise.
func (ts *Toolstack) Adopt(p *sim.Proc, dom xtypes.DomID, cfg GuestConfig) (*Guest, error) {
	if _, ok := ts.guests[dom]; ok {
		return nil, fmt.Errorf("toolstack: adopt %v: %w", dom, xtypes.ErrExists)
	}
	if len(ts.guests) >= ts.quota.MaxVMs {
		return nil, fmt.Errorf("toolstack: VM quota %d: %w", ts.quota.MaxVMs, xtypes.ErrQuota)
	}
	memMB := cfg.MemMB
	if memMB == 0 {
		memMB = 1024
	}
	if ts.usedMB+memMB > ts.quota.MaxMemMB {
		return nil, fmt.Errorf("toolstack: memory quota: %w", xtypes.ErrQuota)
	}
	// Register the newcomer in this host's XenStore: the Builder does this
	// for domains it builds, but a migrated domain arrives without a local
	// subtree. Toolstacks are privileged XenStore clients, as in xenstored.
	admin := ts.XS.Connect(ts.Dom, true)
	base := fmt.Sprintf("/local/domain/%d", dom)
	if err := admin.Mkdir(xenstore.TxNone, base); err != nil {
		return nil, err
	}
	admin.Write(xenstore.TxNone, base+"/name", cfg.Name)
	if err := admin.SetPerms(base, xenstore.Perms{Owner: dom, Read: []xtypes.DomID{xtypes.DomIDNone}}); err != nil {
		return nil, err
	}

	g := &Guest{Dom: dom, Cfg: cfg}
	var err error
	if cfg.Net {
		g.NetB, err = pickShard(ts, ts.NetBacks, func(b *netdrv.Backend) xtypes.DomID { return b.Dom }, cfg.ConstraintTag)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Disk {
		g.BlkB, err = pickShard(ts, ts.BlkBacks, func(b *blkdrv.Backend) xtypes.DomID { return b.Dom }, cfg.ConstraintTag)
		if err != nil {
			if g.NetB != nil {
				ts.releaseShard(g.NetB.Dom)
			}
			return nil, err
		}
	}
	if err := ts.wireDevices(p, g); err != nil {
		return nil, err
	}
	ts.guests[dom] = g
	ts.usedMB += memMB
	return g, nil
}

// DestroyVM tears a managed guest down. The hypervisor rejects the call for
// guests this Toolstack did not build.
func (ts *Toolstack) DestroyVM(p *sim.Proc, dom xtypes.DomID) error {
	g, ok := ts.guests[dom]
	if !ok {
		return fmt.Errorf("toolstack: %v not managed here: %w", dom, xtypes.ErrPerm)
	}
	// HVM guests attach their devices through the QemuVM: detach there.
	devDom, imgName := dom, fmt.Sprintf("%s-disk", g.Cfg.Name)
	if g.Qemu != nil {
		devDom = g.QemuDom
		imgName = fmt.Sprintf("%s-qemu-disk", g.Cfg.Name)
	}
	if g.NetB != nil {
		g.NetB.RemoveVif(devDom)
		ts.H.UnlinkShardClient(ts.Dom, g.NetB.Dom, devDom)
		ts.releaseShard(g.NetB.Dom)
	}
	if g.BlkB != nil {
		g.BlkB.RemoveVbd(devDom)
		ts.H.UnlinkShardClient(ts.Dom, g.BlkB.Dom, devDom)
		ts.releaseShard(g.BlkB.Dom)
		g.BlkB.DeleteImage(imgName)
	}
	if ts.Console != nil {
		ts.Console.RemoveConsole(dom)
	}
	if err := ts.H.DestroyDomain(ts.Dom, dom, "destroyed by toolstack"); err != nil {
		return err
	}
	// The device model dies with its guest (Table 5.1: lifetime = guest VM).
	if g.Qemu != nil {
		if err := ts.H.DestroyDomain(ts.Dom, g.QemuDom, "guest destroyed"); err != nil {
			return err
		}
		ts.XS.Disconnect(g.QemuDom)
	}
	ts.XS.Disconnect(dom)
	memMB := g.Cfg.MemMB
	if memMB == 0 {
		memMB = 1024
	}
	ts.usedMB -= memMB
	delete(ts.guests, dom)
	ts.Destroyed++
	return nil
}

// Forget drops a guest record whose domain is already gone — it migrated
// away. Shard reservations, the vif/vbd and the local disk image are
// released, but no destroy is issued against the (nonexistent) domain.
func (ts *Toolstack) Forget(dom xtypes.DomID) {
	g, ok := ts.guests[dom]
	if !ok {
		return
	}
	if g.NetB != nil {
		g.NetB.RemoveVif(dom)
		ts.releaseShard(g.NetB.Dom)
	}
	if g.BlkB != nil {
		g.BlkB.RemoveVbd(dom)
		ts.releaseShard(g.BlkB.Dom)
		g.BlkB.DeleteImage(fmt.Sprintf("%s-disk", g.Cfg.Name))
	}
	if ts.Console != nil {
		ts.Console.RemoveConsole(dom)
	}
	memMB := g.Cfg.MemMB
	if memMB == 0 {
		memMB = 1024
	}
	ts.usedMB -= memMB
	delete(ts.guests, dom)
}

// Pause pauses a managed guest.
func (ts *Toolstack) Pause(dom xtypes.DomID) error { return ts.H.Pause(ts.Dom, dom) }

// Unpause resumes a managed guest.
func (ts *Toolstack) Unpause(dom xtypes.DomID) error { return ts.H.Unpause(ts.Dom, dom) }

// Name implements snapshot.Restartable.
func (ts *Toolstack) Name() string { return "toolstack" }

// Restart implements snapshot.Restartable: the Toolstack's own microreboot.
// Guest records live in XenStore (modelled by keeping the map — its state is
// reconstructible), so the restart is brief.
func (ts *Toolstack) Restart(p *sim.Proc, fast bool) {
	p.Sleep(20 * sim.Millisecond)
}

// restartableAdapter adapts Toolstack to snapshot.Restartable.
type restartableAdapter struct{ *Toolstack }

// Dom implements snapshot.Restartable.
func (a restartableAdapter) Dom() xtypes.DomID { return a.Toolstack.Dom }

// AsRestartable returns the snapshot.Restartable view.
func (ts *Toolstack) AsRestartable() interface {
	Dom() xtypes.DomID
	Name() string
	Restart(p *sim.Proc, fast bool)
} {
	return restartableAdapter{ts}
}
