package experiments

import (
	"fmt"

	"xoar/internal/boot"
	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/netdrv"
	"xoar/internal/osimage"
	"xoar/internal/sim"
)

// BootRigMachine boots a profile on an explicitly configured machine —
// the hook for running the evaluation on faster hardware generations than
// the paper's Gigabit testbed.
func BootRigMachine(profile Profile, seed int64, mcfg hw.MachineConfig, opts boot.Options) (*Rig, error) {
	env := sim.NewEnv(seed)
	h := hv.New(env, hw.NewMachineWith(env, mcfg))
	var pl *boot.Platform
	var err error
	done := false
	env.Spawn("boot", func(p *sim.Proc) {
		if profile == Dom0 {
			pl, err = boot.BootDom0(p, h, osimage.DefaultCatalog(), opts)
		} else {
			pl, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), opts)
		}
		done = true
	})
	env.RunFor(200 * sim.Second)
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("experiments: boot did not complete")
	}
	return &Rig{Env: env, HV: h, PL: pl}, nil
}

// --- Figure 6.1/6.2-style saturation sweep across NIC generations -----------

// SaturationPoint is one (NIC generation, profile) throughput measurement.
type SaturationPoint struct {
	NIC     string
	Profile Profile
	MBps    float64
}

// Saturation reruns the wget-to-/dev/null transfer on both profiles across
// NIC generations. The question it answers is the one the paper's Figures
// 6.1/6.2 answer for 1G: does pushing the data path out of dom0 into a
// NetBack shard cost throughput once the wire stops being the bottleneck?
// With batched ring transfers the shard overhead stays within noise at 10G
// and beyond.
func Saturation(scale Scale, models []hw.NICModel) (Table, []SaturationPoint, error) {
	t := Table{ID: "fig6.1-sat", Title: "Bulk transfer saturation across NIC generations (MB/s)"}
	if len(models) == 0 {
		models = []hw.NICModel{hw.NICModel1G, hw.NICModel10G}
	}
	bytes := int64(float64(512<<20) * float64(clampScale(scale)))
	var pts []SaturationPoint
	for _, nm := range models {
		var mbps [2]float64
		for _, prof := range []Profile{Dom0, Xoar} {
			mcfg := hw.DefaultMachineConfig()
			mcfg.NICModel = nm
			rig, err := BootRigMachine(prof, 1, mcfg, boot.Options{})
			if err != nil {
				return t, nil, err
			}
			vm, err := rig.NewGuest("sat")
			if err != nil {
				rig.Close()
				return t, nil, err
			}
			var res float64
			err = rig.Go(3000*sim.Second, func(p *sim.Proc) {
				res = vm.Fetch(p, bytes, guest.SinkNull).ThroughputMBps()
			})
			rig.Close()
			if err != nil {
				return t, nil, err
			}
			mbps[prof] = res
			pts = append(pts, SaturationPoint{NIC: nm.Driver, Profile: prof, MBps: res})
			t.Rows = append(t.Rows, Row{
				Label:    fmt.Sprintf("%s %s", nm.Driver, prof),
				Measured: res,
				Unit:     "MB/s",
			})
		}
		overhead := 0.0
		if mbps[Dom0] > 0 {
			overhead = (mbps[Dom0] - mbps[Xoar]) / mbps[Dom0] * 100
		}
		t.Rows = append(t.Rows, Row{
			Label:    fmt.Sprintf("%s shard overhead", nm.Driver),
			Measured: overhead,
			Unit:     "%",
		})
	}
	t.Notes = append(t.Notes,
		"paper: 1-2.5% network overhead at 1G; batched rings keep the shard within noise at 10G+")
	return t, pts, nil
}

// --- Tx batching: descriptors per backend wakeup -----------------------------

// TxBatching measures how many transmit descriptors NetBack services per
// wakeup at saturation, with notify suppression on (the req_event/rsp_event
// protocol) and ablated (every push notifies — the per-descriptor baseline).
func TxBatching(chunks int) (Table, error) {
	t := Table{ID: "datapath-batch", Title: "Tx descriptors per NetBack wakeup at saturation"}
	if chunks <= 0 {
		chunks = 400
	}
	run := func(alwaysNotify bool) (netdrv.DataPathStats, error) {
		rig, err := BootRig(Xoar, 1)
		if err != nil {
			return netdrv.DataPathStats{}, err
		}
		defer rig.Close()
		vm, err := rig.NewGuest("txb")
		if err != nil {
			return netdrv.DataPathStats{}, err
		}
		vm.NetB.SetAlwaysNotify(alwaysNotify)
		if err := rig.Go(3000*sim.Second, func(p *sim.Proc) {
			for i := 0; i < chunks; i++ {
				if serr := vm.Net.Send(p, netdrv.ChunkBytes, 1); serr != nil {
					return
				}
			}
		}); err != nil {
			return netdrv.DataPathStats{}, err
		}
		return vm.NetB.DataPathStats(), nil
	}
	sup, err := run(false)
	if err != nil {
		return t, err
	}
	abl, err := run(true)
	if err != nil {
		return t, err
	}
	if sup.TxNotifies == 0 || abl.TxNotifies == 0 {
		return t, fmt.Errorf("experiments: no tx notifies recorded")
	}
	supRatio := float64(sup.TxDescs) / float64(sup.TxNotifies)
	ablRatio := float64(abl.TxDescs) / float64(abl.TxNotifies)
	t.Rows = append(t.Rows,
		Row{Label: "descs/wakeup (suppressed)", Measured: supRatio, Unit: "descs"},
		Row{Label: "descs/wakeup (always-notify)", Measured: ablRatio, Unit: "descs"},
		Row{Label: "amortization", Measured: supRatio / ablRatio, Unit: "x"},
		Row{Label: "notifies suppressed", Measured: float64(sup.TxSuppressed), Unit: "count"},
	)
	t.Notes = append(t.Notes,
		"req_event/rsp_event suppression lets one backend wakeup drain a burst of descriptors;",
		"the ablation notifies per descriptor, the behaviour before this protocol")
	return t, nil
}
