package experiments

import (
	"reflect"
	"testing"
)

// A reduced-scale churn keeps the test quick; the full artifact scale runs
// in BenchmarkClusterChurn and is gated against BENCH_baseline.json.
func smallChurn() ClusterChurnConfig {
	return ClusterChurnConfig{Hosts: 2, ArrivalsPerSec: 200, Guests: 400, Seed: 7}
}

func TestClusterChurnRuns(t *testing.T) {
	tab, err := ClusterChurn(smallChurn())
	if err != nil {
		t.Fatal(err)
	}
	row := func(label string) Row {
		for _, r := range tab.Rows {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("row %q missing", label)
		return Row{}
	}
	if got := row("launched").Measured; got != 400 {
		t.Fatalf("launched = %v, want 400 (failed = %v)", got, row("failed").Measured)
	}
	p50, p99 := row("cold-start p50").Measured, row("cold-start p99").Measured
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("cold-start p50=%v p99=%v", p50, p99)
	}
	// Spread balances instantaneous load and breaks ties toward host 0, so
	// cumulative placements drift a little; anything past ~10% of the total
	// means the policy stopped spreading.
	if got := row("placement spread").Measured; got > 40 {
		t.Fatalf("placement spread = %v", got)
	}
	if got := row("rebalance migrations").Measured; got < 1 {
		t.Fatalf("rebalance migrations = %v", got)
	}
}

func TestClusterChurnDeterministic(t *testing.T) {
	a, err := ClusterChurn(smallChurn())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterChurn(smallChurn())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
