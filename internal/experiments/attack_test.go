package experiments

import "testing"

// TestAttackTaxonomyDrift pins the full attack-taxonomy artifact. The sim is
// deterministic, so every count is exact: a drifting number means either a
// scenario changed, a whitelist loosened (denials drop), a hole opened
// (escalations rise), or the microreboot stopped bounding the compromise
// window. Regenerate the expectations only after auditing the cause.
func TestAttackTaxonomyDrift(t *testing.T) {
	tbl, err := AttackTaxonomy()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"netback-compromise: calls attempted":                     7,
		"netback-compromise: calls denied":                        5,
		"netback-compromise: escalations":                         0,
		"netback-compromise: exposed guests (microreboot)":        3,
		"netback-compromise: exposed guests (no microreboot)":     4,
		"blkback-compromise: calls attempted":                     6,
		"blkback-compromise: calls denied":                        3,
		"blkback-compromise: escalations":                         0,
		"blkback-compromise: exposed guests (microreboot)":        3,
		"blkback-compromise: exposed guests (no microreboot)":     4,
		"toolstack-compromise: calls attempted":                   8,
		"toolstack-compromise: calls denied":                      5,
		"toolstack-compromise: escalations":                       0,
		"toolstack-compromise: exposed guests (microreboot)":      0,
		"toolstack-compromise: exposed guests (no microreboot)":   0,
		"guest-management-probe: calls attempted":                 7,
		"guest-management-probe: calls denied":                    7,
		"guest-management-probe: escalations":                     0,
		"guest-management-probe: exposed guests (microreboot)":    3,
		"guest-management-probe: exposed guests (no microreboot)": 4,
		"guest-ivc-sweep: calls attempted":                        6,
		"guest-ivc-sweep: calls denied":                           5,
		"guest-ivc-sweep: escalations":                            0,
		"guest-ivc-sweep: exposed guests (microreboot)":           3,
		"guest-ivc-sweep: exposed guests (no microreboot)":        4,
		"xenstore-poison: calls attempted":                        4,
		"xenstore-poison: calls denied":                           3,
		"xenstore-poison: escalations":                            0,
		"xenstore-poison: exposed guests (microreboot)":           3,
		"xenstore-poison: exposed guests (no microreboot)":        4,
		"debug-interface: calls attempted":                        4,
		"debug-interface: calls denied":                           4,
		"debug-interface: escalations":                            0,
		"debug-interface: exposed guests (microreboot)":           0,
		"debug-interface: exposed guests (no microreboot)":        0,
		"rollback-replay: calls attempted":                        5,
		"rollback-replay: calls denied":                           0,
		"rollback-replay: escalations":                            0,
		"rollback-replay: exposed guests (microreboot)":           3,
		"rollback-replay: exposed guests (no microreboot)":        4,
	}
	got := make(map[string]float64, len(tbl.Rows))
	for _, r := range tbl.Rows {
		got[r.Label] = r.Measured
	}
	for label, w := range want {
		v, ok := got[label]
		if !ok {
			t.Errorf("row %q missing from %s", label, tbl.ID)
			continue
		}
		if v != w {
			t.Errorf("%s = %g, want %g", label, v, w)
		}
	}
	if len(tbl.Rows) != len(want) {
		t.Errorf("table has %d rows, want %d — new scenarios must be added to the drift gate", len(tbl.Rows), len(want))
	}
	// Every scenario with a restartable shard must demonstrate the shrink:
	// the microreboot window strictly excludes the late tenant.
	for _, name := range []string{"netback-compromise", "blkback-compromise", "guest-ivc-sweep", "rollback-replay"} {
		mr := got[name+": exposed guests (microreboot)"]
		no := got[name+": exposed guests (no microreboot)"]
		if mr >= no {
			t.Errorf("%s: microreboot did not shrink exposure (%g vs %g)", name, mr, no)
		}
	}
}
