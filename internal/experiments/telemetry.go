// Telemetry surface: boots the platform with the metrics registry wired
// through every instrumented component, drives a representative workload,
// and exposes the snapshot both raw (for cmd/xoarbench -metrics) and as a
// headline Table alongside the paper's figures.

package experiments

import (
	"fmt"
	"strings"

	"xoar/internal/boot"
	"xoar/internal/guest"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
)

// MetricsSnapshot boots the Xoar profile with telemetry enabled, creates a
// guest, and runs a 64MB disk-backed fetch so every instrumented hot path
// (builder queue, restart engine registration, XenStore, both driver rings)
// records real observations. It returns the registry snapshot.
func MetricsSnapshot() (telemetry.Snapshot, error) {
	reg := telemetry.New()
	rig, err := BootRigOpts(Xoar, 1, boot.Options{Telemetry: reg})
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	defer rig.Close()
	vm, err := rig.NewGuest("metrics")
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	if err := rig.Go(600*sim.Second, func(p *sim.Proc) {
		vm.Fetch(p, 64<<20, guest.SinkDisk)
	}); err != nil {
		return telemetry.Snapshot{}, err
	}
	return reg.Snapshot(), nil
}

// Telemetry renders MetricsSnapshot as a headline table: every counter, and
// count/p50/p95 for every histogram.
func Telemetry() (Table, error) {
	snap, err := MetricsSnapshot()
	if err != nil {
		return Table{}, err
	}
	t := Table{ID: "telemetry", Title: "Platform telemetry (Xoar boot + 64MB disk-backed fetch)"}
	for _, c := range snap.Counters {
		t.Rows = append(t.Rows, Row{Label: c.Name, Measured: float64(c.Value), Unit: "count"})
	}
	for _, h := range snap.Histograms {
		u := metricUnit(h.Name)
		t.Rows = append(t.Rows,
			Row{Label: h.Name + " n", Measured: float64(h.Count), Unit: "count"},
			Row{Label: h.Name + " p50", Measured: h.P50, Unit: u},
			Row{Label: h.Name + " p95", Measured: h.P95, Unit: u},
		)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d spans recorded (%d dropped); JSON export via xoarbench -metrics -json",
		len(snap.Spans), snap.SpansDropped))
	return t, nil
}

// metricUnit derives the display unit from the metric-name suffix
// (DESIGN.md §8 naming scheme: <component>_<what>_<unit>).
func metricUnit(name string) string {
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	switch {
	case strings.HasSuffix(base, "_ms"):
		return "ms"
	case strings.HasSuffix(base, "_us"):
		return "µs"
	default:
		return ""
	}
}
