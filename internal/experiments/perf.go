package experiments

import (
	"fmt"

	"xoar/internal/boot"
	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/workload"
)

// Scale shrinks workload sizes for quick runs; 1.0 is the paper's scale.
type Scale float64

func (s Scale) apply(n int) int {
	if s <= 0 || s >= 1 {
		return n
	}
	v := int(float64(n) * float64(s))
	if v < 1 {
		v = 1
	}
	return v
}

// --- Table 6.1: memory consumption of individual shards ---------------------

// MemoryOverhead boots Xoar and inventories component memory.
func MemoryOverhead() (Table, error) {
	rig, err := BootRig(Xoar, 1)
	if err != nil {
		return Table{}, err
	}
	defer rig.Close()
	paper := map[string]float64{
		"xenstore-logic": 32, "xenstore-state": 32, "console": 128,
		"pciback": 256, "netback": 128, "blkback": 128,
		"builder": 64, "toolstack-0": 128,
	}
	t := Table{ID: "table6.1", Title: "Memory consumption of individual shards (MB)"}
	total := 0.0
	for _, d := range rig.HV.Domains() {
		if !d.IsShard() {
			continue
		}
		t.Rows = append(t.Rows, Row{
			Label:    d.Name,
			Measured: float64(d.Mem.MaxMB()),
			Paper:    paper[d.Name],
			Unit:     "MB",
		})
		total += float64(d.Mem.MaxMB())
	}
	t.Rows = append(t.Rows, Row{Label: "total (full config)", Measured: total, Paper: 896, Unit: "MB"})

	// The minimal hosting configuration: no console, PCIBack destroyed.
	envMin := sim.NewEnv(1)
	hMin := hv.New(envMin, hw.NewMachine(envMin))
	var plMin *boot.Platform
	var errMin error
	envMin.Spawn("boot", func(p *sim.Proc) {
		plMin, errMin = boot.BootXoar(p, hMin, osimage.DefaultCatalog(), boot.Options{NoConsole: true, DestroyPCIBack: true})
	})
	envMin.RunFor(200 * sim.Second)
	if errMin == nil && plMin != nil {
		minTotal := 0.0
		for _, d := range hMin.Domains() {
			if d.IsShard() {
				minTotal += float64(d.Mem.MaxMB())
			}
		}
		t.Rows = append(t.Rows, Row{Label: "total (minimal config)", Measured: minTotal, Paper: 512, Unit: "MB"})
	}
	envMin.Shutdown()

	t.Rows = append(t.Rows, Row{Label: "dom0 default (XenServer)", Measured: 750, Paper: 750, Unit: "MB"})
	t.Notes = append(t.Notes,
		"paper: totals range 512MB (no console, no resident PCIBack) to 896MB: -30% to +20% vs the 750MB Dom0")
	return t, nil
}

// --- Table 6.2: boot time -----------------------------------------------------

// BootTime boots both profiles and compares console/ping milestones, plus a
// serialized-Xoar ablation isolating the parallel-boot contribution.
func BootTime() (Table, error) {
	t := Table{ID: "table6.2", Title: "Comparison of boot times (s)"}
	rigD, err := BootRig(Dom0, 1)
	if err != nil {
		return t, err
	}
	defer rigD.Close()
	rigX, err := BootRig(Xoar, 1)
	if err != nil {
		return t, err
	}
	defer rigX.Close()

	d, x := rigD.PL.Timings, rigX.PL.Timings
	t.Rows = append(t.Rows,
		Row{Label: "dom0 console", Measured: d.ConsoleReady.Seconds(), Paper: 38.9, Unit: "s"},
		Row{Label: "xoar console", Measured: x.ConsoleReady.Seconds(), Paper: 25.9, Unit: "s"},
		Row{Label: "console speedup", Measured: d.ConsoleReady.Seconds() / x.ConsoleReady.Seconds(), Paper: 1.5, Unit: "x"},
		Row{Label: "dom0 ping", Measured: d.PingReady.Seconds(), Paper: 42.2, Unit: "s"},
		Row{Label: "xoar ping", Measured: x.PingReady.Seconds(), Paper: 36.6, Unit: "s"},
		Row{Label: "ping speedup", Measured: d.PingReady.Seconds() / x.PingReady.Seconds(), Paper: 1.15, Unit: "x"},
	)

	// Ablation: serialized Xoar boot (no Bootstrapper parallelism).
	envS := sim.NewEnv(1)
	hS := hv.New(envS, hw.NewMachine(envS))
	var plS *boot.Platform
	envS.Spawn("boot", func(p *sim.Proc) {
		plS, err = boot.BootXoar(p, hS, osimage.DefaultCatalog(), boot.Options{Serialize: true})
	})
	envS.RunFor(300 * sim.Second)
	if err == nil && plS != nil {
		// Console comes up first either way; the parallelism win shows in
		// the full-platform boot time.
		t.Rows = append(t.Rows,
			Row{Label: "xoar full boot (parallel)", Measured: rigX.PL.Timings.Done.Seconds(), Unit: "s"},
			Row{Label: "xoar full boot (serialized, ablation)", Measured: plS.Timings.Done.Seconds(), Unit: "s"})
	}
	envS.Shutdown()
	return t, nil
}

// --- Figure 6.1: Postmark ------------------------------------------------------

// Postmark runs the four paper configurations on both profiles.
func Postmark(scale Scale) (Table, error) {
	t := Table{ID: "fig6.1", Title: "Disk performance using Postmark (transactions/s)"}
	for _, cfg := range workload.Figure61Configs() {
		cfg.Transactions = scale.apply(cfg.Transactions)
		for _, prof := range []Profile{Dom0, Xoar} {
			rig, err := BootRig(prof, 1)
			if err != nil {
				return t, err
			}
			vm, err := rig.NewGuest("pm")
			if err != nil {
				rig.Close()
				return t, err
			}
			var res workload.PostmarkResult
			var werr error
			err = rig.Go(3000*sim.Second, func(p *sim.Proc) {
				res, werr = workload.Postmark(p, vm, cfg)
			})
			rig.Close()
			if err != nil {
				return t, err
			}
			if werr != nil {
				return t, werr
			}
			t.Rows = append(t.Rows, Row{
				Label:    fmt.Sprintf("%s %s", cfg, prof),
				Measured: res.OpsPerSec,
				Unit:     "ops/s",
			})
		}
	}
	t.Notes = append(t.Notes, "paper: Dom0 and Xoar within a few percent on every configuration")
	return t, nil
}

// --- Figure 6.2: wget ----------------------------------------------------------

// Wget fetches 512MB and 2GB to /dev/null and to disk on both profiles.
func Wget(scale Scale) (Table, error) {
	t := Table{ID: "fig6.2", Title: "Network performance with wget (MB/s)"}
	type cse struct {
		name  string
		bytes int64
		sink  guest.Sink
	}
	cases := []cse{
		{"/dev/null (512MB)", 512 << 20, guest.SinkNull},
		{"disk (512MB)", 512 << 20, guest.SinkDisk},
		{"/dev/null (2GB)", 2 << 30, guest.SinkNull},
		{"disk (2GB)", 2 << 30, guest.SinkDisk},
	}
	for _, c := range cases {
		bytes := int64(float64(c.bytes) * float64(clampScale(scale)))
		for _, prof := range []Profile{Dom0, Xoar} {
			rig, err := BootRig(prof, 1)
			if err != nil {
				return t, err
			}
			vm, err := rig.NewGuest("wget")
			if err != nil {
				rig.Close()
				return t, err
			}
			var res guest.FetchResult
			err = rig.Go(3000*sim.Second, func(p *sim.Proc) {
				res = vm.Fetch(p, bytes, c.sink)
			})
			rig.Close()
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, Row{
				Label:    fmt.Sprintf("%s %s", c.name, prof),
				Measured: res.ThroughputMBps(),
				Unit:     "MB/s",
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: network-only throughput down 1-2.5% on Xoar; combined net->disk up 6.5% (performance isolation)")
	return t, nil
}

func clampScale(s Scale) Scale {
	if s <= 0 || s > 1 {
		return 1
	}
	return s
}

// --- Figure 6.3: throughput with a restarting NetBack ---------------------------

// RestartPoint is one (interval, mode) measurement.
type RestartPoint struct {
	IntervalSec int
	Fast        bool
	MBps        float64
}

// RestartThroughput sweeps NetBack restart intervals for both restart
// flavours, fetching 2GB to /dev/null at each point.
func RestartThroughput(scale Scale, intervals []int) (Table, []RestartPoint, error) {
	t := Table{ID: "fig6.3", Title: "Throughput with a restarting NetBack (MB/s)"}
	// The transfer must span several restart cycles at the largest interval,
	// so scale never shrinks it below the paper's 2GB.
	_ = scale
	bytes := int64(2 << 30)

	baseline, err := oneRestartRun(bytes, 0, false)
	if err != nil {
		return t, nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "baseline (no restarts)", Measured: baseline, Unit: "MB/s"})
	var pts []RestartPoint
	for _, fast := range []bool{false, true} {
		mode := "slow (260ms)"
		if fast {
			mode = "fast (140ms)"
		}
		for _, iv := range intervals {
			mbps, err := oneRestartRun(bytes, iv, fast)
			if err != nil {
				return t, nil, err
			}
			pts = append(pts, RestartPoint{IntervalSec: iv, Fast: fast, MBps: mbps})
			t.Rows = append(t.Rows, Row{
				Label:    fmt.Sprintf("%s @ %ds", mode, iv),
				Measured: mbps,
				Unit:     "MB/s",
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: 10s restarts cost ~8%; 1s restarts cost ~58% (slow); fast restarts help most at small intervals, <1% at 10s")
	return t, pts, nil
}

func oneRestartRun(bytes int64, intervalSec int, fast bool) (float64, error) {
	rig, err := BootRig(Xoar, 1)
	if err != nil {
		return 0, err
	}
	defer rig.Close()
	vm, err := rig.NewGuest("wget")
	if err != nil {
		return 0, err
	}
	if intervalSec > 0 {
		eng := snapshot.NewEngine(rig.HV, rig.PL.BuilderDom)
		if err := eng.Manage(rig.PL.NetBacks[0].AsRestartable(), snapshot.Policy{
			Kind: snapshot.PolicyTimer, Interval: sim.Duration(intervalSec) * sim.Second, Fast: fast,
		}); err != nil {
			return 0, err
		}
	}
	var res guest.FetchResult
	if err := rig.Go(6000*sim.Second, func(p *sim.Proc) {
		res = vm.Fetch(p, bytes, guest.SinkNull)
	}); err != nil {
		return 0, err
	}
	return res.ThroughputMBps(), nil
}

// --- Figure 6.4: kernel build ---------------------------------------------------

// KernelBuild compiles locally and over NFS on both profiles, plus NFS runs
// under 10s and 5s NetBack restarts.
func KernelBuild(scale Scale) (Table, error) {
	t := Table{ID: "fig6.4", Title: "Kernel build: local and remote NFS (s)"}
	steps := scale.apply(1650)
	run := func(prof Profile, nfs bool, restartSec int) (float64, error) {
		rig, err := BootRig(prof, 1)
		if err != nil {
			return 0, err
		}
		defer rig.Close()
		vm, err := rig.NewGuest("make")
		if err != nil {
			return 0, err
		}
		if restartSec > 0 {
			eng := snapshot.NewEngine(rig.HV, rig.PL.BuilderDom)
			if err := eng.Manage(rig.PL.NetBacks[0].AsRestartable(), snapshot.Policy{
				Kind: snapshot.PolicyTimer, Interval: sim.Duration(restartSec) * sim.Second,
			}); err != nil {
				return 0, err
			}
		}
		var res workload.BuildResult
		var werr error
		if err := rig.Go(6000*sim.Second, func(p *sim.Proc) {
			res, werr = workload.KernelBuild(p, vm, workload.BuildConfig{Steps: steps, Jobs: 2, NFS: nfs})
		}); err != nil {
			return 0, err
		}
		if werr != nil {
			return 0, werr
		}
		return res.Elapsed.Seconds(), nil
	}
	type cse struct {
		label      string
		prof       Profile
		nfs        bool
		restartSec int
	}
	for _, c := range []cse{
		{"dom0 (local)", Dom0, false, 0},
		{"xoar (local)", Xoar, false, 0},
		{"dom0 (nfs)", Dom0, true, 0},
		{"xoar (nfs)", Xoar, true, 0},
		{"xoar (nfs, restarts 10s)", Xoar, true, 10},
		{"xoar (nfs, restarts 5s)", Xoar, true, 5},
	} {
		secs, err := run(c.prof, c.nfs, c.restartSec)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, Row{Label: c.label, Measured: secs, Unit: "s"})
	}
	t.Notes = append(t.Notes, "paper: Xoar overhead much less than 1%, local and NFS; restarts add visible but tunable overhead")
	return t, nil
}

// --- Figure 6.5: Apache benchmark ------------------------------------------------

// Apache runs the Apache benchmark on Dom0, Xoar, and Xoar with NetBack
// restarts at 10, 5 and 1 second intervals.
func Apache(scale Scale) (Table, error) {
	t := Table{ID: "fig6.5", Title: "Apache benchmark: regular and with NetBack restarts"}
	requests := scale.apply(100_000)
	run := func(prof Profile, restartSec int) (guest.HTTPBenchResult, error) {
		rig, err := BootRig(prof, 1)
		if err != nil {
			return guest.HTTPBenchResult{}, err
		}
		defer rig.Close()
		vm, err := rig.NewGuest("apache")
		if err != nil {
			return guest.HTTPBenchResult{}, err
		}
		if restartSec > 0 {
			eng := snapshot.NewEngine(rig.HV, rig.PL.BuilderDom)
			if err := eng.Manage(rig.PL.NetBacks[0].AsRestartable(), snapshot.Policy{
				Kind: snapshot.PolicyTimer, Interval: sim.Duration(restartSec) * sim.Second,
			}); err != nil {
				return guest.HTTPBenchResult{}, err
			}
		}
		var res guest.HTTPBenchResult
		if err := rig.Go(6000*sim.Second, func(p *sim.Proc) {
			srv := vm.StartHTTPServer(11 * 1024)
			defer srv.Stop()
			res = vm.RunHTTPBench(p, requests, 5, 11*1024)
		}); err != nil {
			return guest.HTTPBenchResult{}, err
		}
		return res, nil
	}
	type cse struct {
		label      string
		prof       Profile
		restartSec int
		paperTime  float64
		paperRPS   float64
		paperXfer  float64
	}
	for _, c := range []cse{
		{"dom0", Dom0, 0, 30.95, 3230.82, 36.04},
		{"xoar", Xoar, 0, 31.43, 3182.03, 35.49},
		{"restarts 10s", Xoar, 10, 44.00, 2273.39, 25.36},
		{"restarts 5s", Xoar, 5, 45.28, 2208.71, 24.64},
		{"restarts 1s", Xoar, 1, 114.39, 883.18, 9.85},
	} {
		res, err := run(c.prof, c.restartSec)
		if err != nil {
			return t, err
		}
		scaleBack := 1.0 / float64(clampScale(scale))
		paperLat := map[string]float64{
			"dom0": 1.55, "xoar": 1.57, "restarts 10s": 2.20, "restarts 5s": 2.26, "restarts 1s": 5.72,
		}[c.label]
		t.Rows = append(t.Rows,
			Row{Label: c.label + " total time", Measured: res.TotalTime.Seconds() * scaleBack, Paper: c.paperTime, Unit: "s"},
			Row{Label: c.label + " throughput", Measured: res.RequestsPerSecond(), Paper: c.paperRPS, Unit: "req/s"},
			Row{Label: c.label + " mean latency", Measured: res.MeanLatency.Seconds() * 1000, Paper: paperLat, Unit: "ms"},
			Row{Label: c.label + " transfer rate", Measured: res.TransferRateMBps(), Paper: c.paperXfer, Unit: "MB/s"},
			Row{Label: c.label + " max latency", Measured: res.MaxLatency.Seconds() * 1000, Unit: "ms"},
		)
	}
	t.Notes = append(t.Notes,
		"paper: longest requests 8-9ms unperturbed; 3000ms at 5/10s restarts; 7000ms at 1s restarts",
		"total time scaled back to the paper's 100k requests when run at reduced scale")
	return t, nil
}
