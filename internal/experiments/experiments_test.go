package experiments

import (
	"strings"
	"testing"

	"xoar/internal/hw"
)

func findRow(t *testing.T, tbl Table, label string) Row {
	t.Helper()
	for _, r := range tbl.Rows {
		if r.Label == label {
			return r
		}
	}
	t.Fatalf("row %q not found in %s (have %d rows)", label, tbl.ID, len(tbl.Rows))
	return Row{}
}

func TestMemoryOverheadMatchesTable61(t *testing.T) {
	tbl, err := MemoryOverhead()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"xenstore-logic", "xenstore-state", "console", "pciback", "netback", "blkback", "builder", "toolstack-0"} {
		r := findRow(t, tbl, label)
		if r.Paper == 0 || r.Measured != r.Paper {
			t.Errorf("%s = %v MB, paper %v", label, r.Measured, r.Paper)
		}
	}
	total := findRow(t, tbl, "total (full config)")
	if total.Measured != 896 {
		t.Errorf("full-config shard memory = %v, want 896", total.Measured)
	}
	minimal := findRow(t, tbl, "total (minimal config)")
	if minimal.Measured != 512 {
		t.Errorf("minimal-config shard memory = %v, want 512", minimal.Measured)
	}
}

func TestBootTimeMatchesTable62(t *testing.T) {
	tbl, err := BootTime()
	if err != nil {
		t.Fatal(err)
	}
	cs := findRow(t, tbl, "console speedup")
	if cs.Measured < 1.3 || cs.Measured > 1.7 {
		t.Errorf("console speedup = %.2f, paper 1.5", cs.Measured)
	}
	ps := findRow(t, tbl, "ping speedup")
	if ps.Measured < 1.05 || ps.Measured > 1.3 {
		t.Errorf("ping speedup = %.2f, paper 1.15", ps.Measured)
	}
	ser := findRow(t, tbl, "xoar full boot (serialized, ablation)")
	par := findRow(t, tbl, "xoar full boot (parallel)")
	if ser.Measured <= par.Measured {
		t.Errorf("serialized boot %.1fs not slower than parallel %.1fs", ser.Measured, par.Measured)
	}
}

func TestPostmarkParityAcrossProfiles(t *testing.T) {
	tbl, err := Postmark(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Compare dom0/xoar pairs.
	for i := 0; i < len(tbl.Rows); i += 2 {
		d, x := tbl.Rows[i], tbl.Rows[i+1]
		ratio := x.Measured / d.Measured
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s vs %s: ratio %.3f", d.Label, x.Label, ratio)
		}
	}
}

func TestWgetShapes(t *testing.T) {
	tbl, err := Wget(0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Network-only: near line rate on both profiles.
	nullD := findRow(t, tbl, "/dev/null (512MB) dom0")
	nullX := findRow(t, tbl, "/dev/null (512MB) xoar")
	if nullD.Measured < 100 || nullX.Measured < 100 {
		t.Errorf("null throughput dom0=%.1f xoar=%.1f", nullD.Measured, nullX.Measured)
	}
	// Combined net->disk: Xoar ahead by a few percent (paper: +6.5%).
	diskD := findRow(t, tbl, "disk (2GB) dom0")
	diskX := findRow(t, tbl, "disk (2GB) xoar")
	gain := diskX.Measured / diskD.Measured
	if gain < 1.02 || gain > 1.15 {
		t.Errorf("combined-path xoar/dom0 = %.3f (xoar %.1f, dom0 %.1f), paper ~1.065",
			gain, diskX.Measured, diskD.Measured)
	}
}

func TestRestartThroughputShape(t *testing.T) {
	tbl, pts, err := RestartThroughput(0.25, []int{1, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	base := findRow(t, tbl, "baseline (no restarts)")
	if base.Measured < 100 {
		t.Fatalf("baseline = %.1f", base.Measured)
	}
	get := func(iv int, fast bool) float64 {
		for _, p := range pts {
			if p.IntervalSec == iv && p.Fast == fast {
				return p.MBps
			}
		}
		t.Fatalf("missing point %d/%v", iv, fast)
		return 0
	}
	slow1, slow10 := get(1, false), get(10, false)
	fast1, fast10 := get(1, true), get(10, true)
	// Monotone in interval.
	if slow1 >= slow10 || fast1 >= fast10 {
		t.Errorf("throughput not increasing with interval: slow %.1f/%.1f fast %.1f/%.1f",
			slow1, slow10, fast1, fast10)
	}
	// Paper: ~58% drop at 1s slow; ~8% at 10s.
	drop1 := 1 - slow1/base.Measured
	drop10 := 1 - slow10/base.Measured
	if drop1 < 0.40 || drop1 > 0.75 {
		t.Errorf("1s slow drop = %.0f%%, paper ~58%%", drop1*100)
	}
	if drop10 < 0.02 || drop10 > 0.15 {
		t.Errorf("10s slow drop = %.0f%%, paper ~8%%", drop10*100)
	}
	// Fast beats slow at every interval.
	if fast1 <= slow1 {
		t.Errorf("fast (%.1f) not better than slow (%.1f) at 1s", fast1, slow1)
	}
}

func TestKernelBuildShape(t *testing.T) {
	tbl, err := KernelBuild(0.1)
	if err != nil {
		t.Fatal(err)
	}
	d0l := findRow(t, tbl, "dom0 (local)")
	xl := findRow(t, tbl, "xoar (local)")
	ratio := xl.Measured / d0l.Measured
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("local build xoar/dom0 = %.3f, paper <1%% overhead", ratio)
	}
	nfs := findRow(t, tbl, "xoar (nfs)")
	if nfs.Measured <= xl.Measured {
		t.Errorf("nfs (%.1fs) not slower than local (%.1fs)", nfs.Measured, xl.Measured)
	}
	r5 := findRow(t, tbl, "xoar (nfs, restarts 5s)")
	if r5.Measured < nfs.Measured {
		t.Errorf("restarts made the build faster: %.1f vs %.1f", r5.Measured, nfs.Measured)
	}
}

func TestApacheShape(t *testing.T) {
	tbl, err := Apache(0.2)
	if err != nil {
		t.Fatal(err)
	}
	d0 := findRow(t, tbl, "dom0 throughput")
	x := findRow(t, tbl, "xoar throughput")
	if d0.Measured < 2500 || d0.Measured > 4200 {
		t.Errorf("dom0 throughput = %.0f, paper 3231", d0.Measured)
	}
	ratio := x.Measured / d0.Measured
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("xoar/dom0 = %.3f, paper 0.985", ratio)
	}
	r1 := findRow(t, tbl, "restarts 1s throughput")
	if r1.Measured > 0.8*d0.Measured {
		t.Errorf("1s restarts throughput %.0f too high vs %.0f", r1.Measured, d0.Measured)
	}
	// Ordering: dom0 ≈ xoar ≥ 10s ≥ 5s > 1s. (At reduced scale the run can
	// be shorter than the 10s interval, leaving that row at baseline.)
	r10 := findRow(t, tbl, "restarts 10s throughput")
	r5 := findRow(t, tbl, "restarts 5s throughput")
	if !(x.Measured >= r10.Measured && r10.Measured >= r5.Measured && r5.Measured > r1.Measured) {
		t.Errorf("ordering violated: %.0f %.0f %.0f %.0f", x.Measured, r10.Measured, r5.Measured, r1.Measured)
	}
	// Tail latencies under restarts reach far beyond the 8-9ms baseline.
	maxLat := findRow(t, tbl, "restarts 1s max latency")
	if maxLat.Measured < 800 {
		t.Errorf("1s restarts max latency = %.0fms, paper ~7000ms", maxLat.Measured)
	}
	base := findRow(t, tbl, "dom0 max latency")
	if base.Measured > 30 {
		t.Errorf("unperturbed max latency = %.1fms, paper 8-9ms", base.Measured)
	}
}

func TestSecurityTables(t *testing.T) {
	tcb, err := TCBSize()
	if err != nil {
		t.Fatal(err)
	}
	x := findRow(t, tcb, "xoar source LoC")
	d := findRow(t, tcb, "dom0 source LoC")
	if d.Measured/x.Measured < 100 {
		t.Errorf("TCB reduction %0.fx", d.Measured/x.Measured)
	}
	atk, err := KnownAttacks()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"xoar contained", "xoar limited-to-sharers", "xoar whole-host"} {
		r := findRow(t, atk, label)
		if r.Measured != r.Paper {
			t.Errorf("%s = %v, paper %v", label, r.Measured, r.Paper)
		}
	}
}

func TestMetricsSnapshotCoversHotPaths(t *testing.T) {
	snap, err := MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	hist := func(name string) (h struct {
		Count uint64
		Sum   float64
	}) {
		t.Helper()
		for _, s := range snap.Histograms {
			if s.Name == name {
				return struct {
					Count uint64
					Sum   float64
				}{s.Count, s.Sum}
			}
		}
		t.Fatalf("histogram %q missing (have %d)", name, len(snap.Histograms))
		return
	}
	// The Xoar boot pushes netback, blkback and the toolstack through the
	// Builder's queue: build latency and queue depth must have samples.
	if h := hist("builder_build_latency_ms"); h.Count == 0 || h.Sum <= 0 {
		t.Errorf("builder_build_latency_ms empty: %+v", h)
	}
	if h := hist("builder_queue_depth"); h.Count == 0 {
		t.Errorf("builder_queue_depth empty: %+v", h)
	}
	// The fetch workload exercises both driver rings and XenStore.
	if h := hist(`netback_ring_rtt_us{dir=rx}`); h.Count == 0 {
		t.Errorf("netback rx ring histogram empty: %+v", h)
	}
	if h := hist(`blkback_ring_rtt_us{op=write}`); h.Count == 0 {
		t.Errorf("blkback write ring histogram empty: %+v", h)
	}
	var xsOps int64
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "xenstore_requests_total") {
			xsOps += c.Value
		}
	}
	if xsOps == 0 {
		t.Error("no xenstore requests counted")
	}
	// Boot and build spans are present and closed.
	if len(snap.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	for _, sp := range snap.Spans {
		if sp.Open {
			t.Errorf("span %s[%s] left open", sp.Domain, sp.Name)
		}
	}
}

func TestTelemetryTableRenders(t *testing.T) {
	tbl, err := Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty telemetry table")
	}
	r := findRow(t, tbl, "builder_builds_total")
	if r.Measured <= 0 {
		t.Errorf("builder_builds_total = %v", r.Measured)
	}
	if !strings.Contains(Render(tbl), "telemetry") {
		t.Error("render lost the table id")
	}
}

func TestRenderers(t *testing.T) {
	tbl := Table{
		ID: "t", Title: "demo",
		Rows:  []Row{{Label: "a", Measured: 12.34, Paper: 12, Unit: "MB/s"}, {Label: "b", Measured: 3, Unit: "s"}},
		Notes: []string{"a note"},
	}
	txt := Render(tbl)
	if !strings.Contains(txt, "paper: 12") || !strings.Contains(txt, "a note") {
		t.Fatalf("render = %q", txt)
	}
	md := Markdown(tbl)
	if !strings.Contains(md, "| a | 12.3 MB/s | 12 MB/s |") {
		t.Fatalf("markdown = %q", md)
	}
}

func TestAblationsTable(t *testing.T) {
	tbl, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	par := findRow(t, tbl, "full boot, parallel (Bootstrapper)")
	ser := findRow(t, tbl, "full boot, serialized (ablated)")
	if ser.Measured <= par.Measured {
		t.Errorf("serialized %.1fs not slower than parallel %.1fs", ser.Measured, par.Measured)
	}
	res := findRow(t, tbl, "control domains, PCIBack resident")
	des := findRow(t, tbl, "control domains, PCIBack destroyed (§5.3)")
	if des.Measured != res.Measured-1 {
		t.Errorf("destroy ablation: %v vs %v", des.Measured, res.Measured)
	}
	slow := findRow(t, tbl, "NetBack restart downtime, renegotiate (slow)")
	fast := findRow(t, tbl, "NetBack restart downtime, recovery box (fast)")
	if slow.Measured < 255 || slow.Measured > 275 || fast.Measured < 135 || fast.Measured > 155 {
		t.Errorf("downtimes slow=%.0f fast=%.0f, paper 260/140", slow.Measured, fast.Measured)
	}
	intact := findRow(t, tbl, "contents intact after Logic restarts (1=yes)")
	if intact.Measured != 1 {
		t.Error("XenStore split ablation lost contents")
	}
	dep := findRow(t, tbl, "hypercalls deprivilegeable (§7.1)")
	if dep.Measured < 5 {
		t.Errorf("deprivilegeable calls = %v", dep.Measured)
	}
}

func TestBootPipelineBeatsSerial(t *testing.T) {
	serial, pipelined, err := BootPipelineMakespans(4)
	if err != nil {
		t.Fatal(err)
	}
	if pipelined >= serial {
		t.Fatalf("pipelined makespan %v not below serial %v", pipelined, serial)
	}
	tbl, err := BootPipeline(4)
	if err != nil {
		t.Fatal(err)
	}
	sp := findRow(t, tbl, "speedup")
	if sp.Measured <= 1.0 {
		t.Errorf("speedup = %v, want > 1", sp.Measured)
	}
	saved := findRow(t, tbl, "construct overlap reclaimed")
	if saved.Measured <= 0 {
		t.Errorf("reclaimed overlap = %vms, want > 0", saved.Measured)
	}
}

func TestTraceJSONContainsBatchSpans(t *testing.T) {
	data, err := TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"traceEvents"`) || !strings.Contains(s, "build-batch[") {
		t.Fatalf("trace export missing batch spans: %.200s", s)
	}
	if !strings.Contains(s, "construct:trace-0") || !strings.Contains(s, "boot:trace-0") {
		t.Fatal("trace export missing per-domain pipeline children")
	}
}

func TestSaturationShardWithinNoise(t *testing.T) {
	tbl, pts, err := Saturation(0.05, []hw.NICModel{hw.NICModel10G})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	over := findRow(t, tbl, "ixgbe shard overhead")
	if over.Measured > 1.0 {
		t.Fatalf("10G shard overhead %.2f%%, want within noise (<=1%%)", over.Measured)
	}
	xoar := findRow(t, tbl, "ixgbe xoar")
	// 10GbE payload line rate is ~1170 MB/s; the shard must saturate it.
	if xoar.Measured < 1100 {
		t.Fatalf("xoar throughput %.1f MB/s, want near line rate", xoar.Measured)
	}
}

func TestTxBatchingAmortizes(t *testing.T) {
	tbl, err := TxBatching(120)
	if err != nil {
		t.Fatal(err)
	}
	sup := findRow(t, tbl, "descs/wakeup (suppressed)")
	abl := findRow(t, tbl, "descs/wakeup (always-notify)")
	if sup.Measured < 4*abl.Measured {
		t.Fatalf("suppressed %.1f vs ablated %.1f descs/wakeup, want >= 4x", sup.Measured, abl.Measured)
	}
}
