package experiments

import (
	"fmt"
	"strings"
)

// Render prints a table in the paper-vs-measured format used by
// cmd/xoarbench and EXPERIMENTS.md.
func Render(t Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	width := 0
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-*s  %10s %-6s", width, r.Label, fmtVal(r.Measured), r.Unit)
		if r.Paper != 0 {
			fmt.Fprintf(&b, "  (paper: %s)", fmtVal(r.Paper))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown section, used to
// regenerate EXPERIMENTS.md.
func Markdown(t Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| Metric | Measured | Paper |\n|---|---|---|\n")
	for _, r := range t.Rows {
		paper := "—"
		if r.Paper != 0 {
			paper = fmtVal(r.Paper) + " " + r.Unit
		}
		fmt.Fprintf(&b, "| %s | %s %s | %s |\n", r.Label, fmtVal(r.Measured), r.Unit, paper)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

func fmtVal(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e7:
		return fmt.Sprintf("%.0f", v)
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
