// Parallel-boot experiment: the paper's §6 boot evaluation (Figure 6.4)
// argues instantiation cost is dominated by serialized Builder work. This
// artifact measures exactly the slice SubmitAll reclaims — page-table setup
// and scrubbing overlapped with the previous domain's supervised boot —
// by booting the same guest fleet twice on identically-seeded rigs: once
// with N serial Submits, once with one pipelined SubmitAll batch.

package experiments

import (
	"fmt"

	"xoar/internal/boot"
	"xoar/internal/builder"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/telemetry"
)

// pipelineGuestMB is the per-guest reservation for the fleet. Large guests
// make the scrub stage (scrubPerMB per megabyte, on the Builder's vCPU)
// worth overlapping — the same reason the paper's boot numbers are taken
// on full-size guests.
const pipelineGuestMB = 4096

// bootXoarMachine boots the Xoar profile on an explicitly-sized machine —
// fleets of 4GB guests do not fit the default 4GB testbed.
func bootXoarMachine(seed int64, cfg hw.MachineConfig, opts boot.Options) (*Rig, error) {
	env := sim.NewEnv(seed)
	h := hv.New(env, hw.NewMachineWith(env, cfg))
	var pl *boot.Platform
	var err error
	done := false
	env.Spawn("boot", func(p *sim.Proc) {
		pl, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), opts)
		done = true
	})
	env.RunFor(200 * sim.Second)
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("experiments: boot did not complete")
	}
	return &Rig{Env: env, HV: h, PL: pl}, nil
}

// pipelineFleet returns the n build requests for the benchmark fleet,
// issued by the rig's first toolstack.
func pipelineFleet(r *Rig, n int) []builder.Request {
	reqs := make([]builder.Request, n)
	for i := range reqs {
		reqs[i] = builder.Request{
			Requester: r.PL.Toolstacks[0].Dom,
			Name:      fmt.Sprintf("fleet-%d", i),
			Image:     osimage.ImgGuestPV,
			MemMB:     pipelineGuestMB,
		}
	}
	return reqs
}

// BootPipelineMakespans boots two identically-seeded rigs and returns the
// makespan of creating an n-guest fleet serially (n Submits) and pipelined
// (one SubmitAll). Both are deterministic, so the comparison is exact.
func BootPipelineMakespans(n int) (serial, pipelined sim.Duration, err error) {
	cfg := hw.MachineConfig{CPUs: 8, RAMMB: 8192 + n*pipelineGuestMB, NICs: 1, Disks: 1}
	limit := sim.Duration(n+4) * 20 * sim.Second

	run := func(fn func(p *sim.Proc, r *Rig) (sim.Duration, error)) (sim.Duration, error) {
		r, rerr := bootXoarMachine(42, cfg, boot.Options{})
		if rerr != nil {
			return 0, rerr
		}
		defer r.Close()
		var d sim.Duration
		var ferr error
		if gerr := r.Go(limit, func(p *sim.Proc) { d, ferr = fn(p, r) }); gerr != nil {
			return 0, gerr
		}
		return d, ferr
	}

	serial, err = run(func(p *sim.Proc, r *Rig) (sim.Duration, error) {
		start := p.Now()
		for _, req := range pipelineFleet(r, n) {
			if _, serr := r.PL.Builder.Submit(p, req); serr != nil {
				return 0, serr
			}
		}
		return p.Now().Sub(start), nil
	})
	if err != nil {
		return 0, 0, err
	}

	pipelined, err = run(func(p *sim.Proc, r *Rig) (sim.Duration, error) {
		start := p.Now()
		_, errs := r.PL.Builder.SubmitAll(p, pipelineFleet(r, n))
		for _, berr := range errs {
			if berr != nil {
				return 0, berr
			}
		}
		return p.Now().Sub(start), nil
	})
	if err != nil {
		return 0, 0, err
	}
	return serial, pipelined, nil
}

// BootPipeline renders the serial-vs-pipelined comparison as a table.
func BootPipeline(n int) (Table, error) {
	serial, pipelined, err := BootPipelineMakespans(n)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "boot-pipeline",
		Title: fmt.Sprintf("Parallel boot: %d-guest fleet, serial Submit vs pipelined SubmitAll", n),
		Rows: []Row{
			{Label: "fleet size", Measured: float64(n), Unit: "domains"},
			{Label: "serial Submit makespan", Measured: serial.Seconds(), Unit: "s"},
			{Label: "pipelined SubmitAll makespan", Measured: pipelined.Seconds(), Unit: "s"},
			{Label: "construct overlap reclaimed", Measured: (serial - pipelined).Milliseconds(), Unit: "ms"},
			{Label: "speedup", Measured: serial.Seconds() / pipelined.Seconds(), Unit: "x"},
		},
		Notes: []string{
			"Boots stay serialized through the Builder (Table 6.2's constraint); the pipeline only overlaps page-table setup + scrubbing with the previous guest's boot.",
			"Figure 6.4's qualitative claim — instantiation throughput is bounded by serialized Builder work, not by steady-state overhead — is what the reclaimed-overlap row quantifies.",
		},
	}
	return t, nil
}

// TraceJSON boots the Xoar profile with telemetry, creates a small guest
// fleet through one SubmitAll batch, and returns the span buffer as Chrome
// trace_event JSON — the build-batch construct/boot overlap is directly
// visible on the builder track in chrome://tracing or Perfetto.
func TraceJSON() ([]byte, error) {
	reg := telemetry.New()
	rig, err := BootRigOpts(Xoar, 1, boot.Options{Telemetry: reg})
	if err != nil {
		return nil, err
	}
	defer rig.Close()
	reqs := make([]builder.Request, 4)
	for i := range reqs {
		reqs[i] = builder.Request{
			Requester: rig.PL.Toolstacks[0].Dom,
			Name:      fmt.Sprintf("trace-%d", i),
			Image:     osimage.ImgGuestPV,
			MemMB:     512,
		}
	}
	var batchErr error
	if err := rig.Go(300*sim.Second, func(p *sim.Proc) {
		_, errs := rig.PL.Builder.SubmitAll(p, reqs)
		for _, berr := range errs {
			if berr != nil {
				batchErr = berr
			}
		}
	}); err != nil {
		return nil, err
	}
	if batchErr != nil {
		return nil, batchErr
	}
	return reg.Tracer().ChromeTrace()
}
