package experiments

import (
	"fmt"

	"xoar/internal/attack"
)

// AttackTaxonomy regenerates the §2.3 attack-taxonomy artifact: every
// taxonomy scenario replayed on a fresh platform, with the per-scenario
// attempt/denial counts, manifest-oracle escalations (which must be zero),
// and the blast radius — dependent guests inside the compromise window with
// the microreboot bound versus without it. Deterministic end to end;
// TestAttackTaxonomyDrift pins the exact counts and the benchmark gate pins
// the aggregates in BENCH_baseline.json.
func AttackTaxonomy() (Table, error) {
	t := Table{
		ID:    "sec-attack-taxonomy",
		Title: "Attack taxonomy replay: denial and blast radius per compromised component (§2.3)",
	}
	results, err := attack.RunTaxonomy()
	if err != nil {
		return t, err
	}
	for _, r := range results {
		prefix := r.Scenario.Name
		t.Rows = append(t.Rows,
			Row{Label: prefix + ": calls attempted", Measured: float64(r.Attempted), Unit: "calls"},
			Row{Label: prefix + ": calls denied", Measured: float64(r.Denied), Unit: "calls"},
			Row{Label: prefix + ": escalations", Measured: float64(r.Escalations), Paper: 0, Unit: "findings"},
			Row{Label: prefix + ": exposed guests (microreboot)", Measured: float64(r.ExposedWithMR), Unit: "guests"},
			Row{Label: prefix + ": exposed guests (no microreboot)", Measured: float64(r.ExposedWithoutMR), Unit: "guests"},
		)
		t.Notes = append(t.Notes, fmt.Sprintf("%s — class: %s; persona %v, surface risk %d (%d ring-0 grants)",
			r.Scenario.Name, r.Scenario.Class, r.Scenario.Seq.Persona, r.RiskTotal, r.Ring0Grants))
	}
	t.Notes = append(t.Notes,
		"escalations count manifest-oracle violations and must stay zero on every scenario",
		"exposure is audit.DependentsOf over the compromise window; the microreboot closes it before the late tenant arrives")
	return t, nil
}
