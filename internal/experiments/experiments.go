// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment boots a fresh platform (or two, when the
// figure compares profiles), drives the workload, and returns structured
// rows carrying both the measured value and the paper's published value so
// callers — cmd/xoarbench, the root benchmarks, and EXPERIMENTS.md — can
// print paper-vs-measured comparisons.
package experiments

import (
	"fmt"

	"xoar/internal/boot"
	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
)

// Profile selects the platform under test.
type Profile uint8

const (
	// Dom0 is the stock monolithic platform.
	Dom0 Profile = iota
	// Xoar is the disaggregated platform.
	Xoar
)

func (p Profile) String() string {
	if p == Dom0 {
		return "dom0"
	}
	return "xoar"
}

// Row is one measured cell of a table or figure, with the paper's value
// when the paper publishes one (Paper == 0 means "not published").
type Row struct {
	Label    string
	Measured float64
	Paper    float64
	Unit     string
}

// Table is one regenerated table or figure.
type Table struct {
	ID    string // "table6.1", "fig6.3", ...
	Title string
	Rows  []Row
	Notes []string
}

// Rig is a booted platform plus its simulation environment.
type Rig struct {
	Env *sim.Env
	HV  *hv.Hypervisor
	PL  *boot.Platform
}

// BootRig boots a profile on a fresh machine with default options.
func BootRig(profile Profile, seed int64) (*Rig, error) {
	return BootRigOpts(profile, seed, boot.Options{})
}

// BootRigOpts boots a profile with explicit boot options — the hook for
// wiring a telemetry registry (or any other boot knob) into an experiment.
func BootRigOpts(profile Profile, seed int64, opts boot.Options) (*Rig, error) {
	env := sim.NewEnv(seed)
	h := hv.New(env, hw.NewMachine(env))
	var pl *boot.Platform
	var err error
	done := false
	env.Spawn("boot", func(p *sim.Proc) {
		if profile == Dom0 {
			pl, err = boot.BootDom0(p, h, osimage.DefaultCatalog(), opts)
		} else {
			pl, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), opts)
		}
		done = true
	})
	env.RunFor(200 * sim.Second)
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("experiments: boot did not complete")
	}
	return &Rig{Env: env, HV: h, PL: pl}, nil
}

// Close tears the rig down, reaping its processes.
func (r *Rig) Close() { r.Env.Shutdown() }

// NewGuest creates a standard benchmark guest: 2 vCPUs, 1GB, net + 15GB disk
// (the §6.1 guest configuration).
func (r *Rig) NewGuest(name string) (*guest.VM, error) {
	var vm *guest.VM
	var err error
	done := false
	r.Env.Spawn("mkguest", func(p *sim.Proc) {
		var g *toolstack.Guest
		g, err = r.PL.Toolstacks[0].CreateVM(p, toolstack.GuestConfig{
			Name: name, Image: osimage.ImgGuestPV, MemMB: 1024, VCPUs: 2,
			Net: true, Disk: true, DiskMB: 15 * 1024,
		})
		if err == nil {
			vm = &guest.VM{H: r.HV, Dom: g.Dom, Net: g.Net, Blk: g.Blk, NetB: g.NetB, BlkB: g.BlkB}
		}
		done = true
	})
	r.Env.RunFor(60 * sim.Second)
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("experiments: guest creation did not complete")
	}
	return vm, nil
}

// Go runs fn in a sim process and advances virtual time until it finishes
// (bounded by limit to keep broken models from spinning forever).
func (r *Rig) Go(limit sim.Duration, fn func(p *sim.Proc)) error {
	done := false
	r.Env.Spawn("exp", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	deadline := r.Env.Now().Add(limit)
	for !done && r.Env.Now() < deadline {
		r.Env.RunFor(10 * sim.Second)
	}
	if !done {
		return fmt.Errorf("experiments: workload did not complete within %v", limit)
	}
	return nil
}
