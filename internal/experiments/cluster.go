package experiments

import (
	"fmt"

	"xoar/internal/cluster"
	"xoar/internal/sim"
	"xoar/internal/workload"
)

// ClusterChurnConfig sizes the serverless-churn study.
type ClusterChurnConfig struct {
	// Hosts is the fleet size for the cold-start phase.
	Hosts int
	// ArrivalsPerSec is the fleet-wide Poisson arrival rate.
	ArrivalsPerSec float64
	// Guests is the total number of short-lived guests submitted.
	Guests int
	// Seed drives both phases.
	Seed int64
}

// DefaultClusterChurnConfig is the artifact configuration: an 8-host fleet
// absorbing a thousand launches per second — five thousand 64MB micro guests
// living ~150ms each, every cold start crossing scheduler, Builder queue,
// scrubber and boot.
func DefaultClusterChurnConfig() ClusterChurnConfig {
	return ClusterChurnConfig{Hosts: 8, ArrivalsPerSec: 1000, Guests: 5000, Seed: 42}
}

// ClusterChurn runs the two-phase cluster study.
//
// Phase one is the cold-start distribution: a Spread-placed fleet under the
// configured churn, reporting exact p50/p95/p99 submit-to-boot latencies,
// failure count, peak residency, and placement spread (the max-min gap in
// cumulative per-host placements — Spread's quality metric; 0 is perfect).
//
// Phase two is the rebalancer: a small BinPack fleet deliberately piles
// long-lived guests onto one host, then the migration rebalancer runs until
// the fleet levels out, reporting how many live migrations that took.
//
// Both phases are deterministic in (config, seed); every row is gated in
// BENCH_baseline.json via BenchmarkClusterChurn.
func ClusterChurn(cfg ClusterChurnConfig) (Table, error) {
	if cfg.Hosts <= 0 {
		cfg = DefaultClusterChurnConfig()
	}
	t := Table{
		ID:    "cluster-churn",
		Title: "Serverless churn across a Xoar fleet: cold starts, placement, rebalancing",
	}

	// --- Phase 1: cold starts under Spread placement ---------------------
	c, err := cluster.New(cluster.Config{
		Hosts: cfg.Hosts, Seed: cfg.Seed, Policy: cluster.Spread{},
	})
	if err != nil {
		return t, err
	}
	var st workload.ChurnStats
	done := false
	c.Env.Spawn("churn", func(p *sim.Proc) {
		st = workload.ServerlessChurn(p, c, workload.ChurnConfig{
			ArrivalsPerSec: cfg.ArrivalsPerSec,
			Total:          cfg.Guests,
			MeanLifetime:   150 * sim.Millisecond,
			MemMB:          64,
		})
		done = true
	})
	for i := 0; i < 900 && !done; i++ {
		c.Env.RunFor(sim.Second)
	}
	c.Env.Shutdown()
	if !done {
		return t, fmt.Errorf("experiments: churn did not complete")
	}
	minP, maxP := c.Hosts[0].Placed, c.Hosts[0].Placed
	for _, h := range c.Hosts[1:] {
		if h.Placed < minP {
			minP = h.Placed
		}
		if h.Placed > maxP {
			maxP = h.Placed
		}
	}
	t.Rows = append(t.Rows,
		Row{Label: "cold-start p50", Measured: st.ColdStartP50.Seconds() * 1000, Unit: "ms"},
		Row{Label: "cold-start p95", Measured: st.ColdStartP95.Seconds() * 1000, Unit: "ms"},
		Row{Label: "cold-start p99", Measured: st.ColdStartP99.Seconds() * 1000, Unit: "ms"},
		Row{Label: "launched", Measured: float64(st.Launched), Unit: "guests"},
		Row{Label: "failed", Measured: float64(st.Failed), Unit: "guests"},
		Row{Label: "peak resident", Measured: float64(st.PeakResident), Unit: "guests"},
		Row{Label: "placement spread", Measured: float64(maxP - minP), Unit: "guests"},
		Row{Label: "makespan", Measured: st.Makespan.Seconds(), Unit: "s"},
	)

	// --- Phase 2: rebalancer on a skewed BinPack fleet -------------------
	rb, err := cluster.New(cluster.Config{Hosts: 2, Seed: cfg.Seed, Policy: cluster.BinPack{}})
	if err != nil {
		return t, err
	}
	done = false
	rb.Env.Spawn("rebalance", func(p *sim.Proc) {
		defer func() { done = true }()
		for i := 0; i < 8; i++ {
			if _, err := rb.Launch(p, "svc-"+string(rune('a'+i)), 256); err != nil {
				return
			}
		}
		// Drain the hot host one migration per pass until balanced.
		for {
			moved, err := rb.RebalanceOnce(p, 512)
			if err != nil || !moved {
				return
			}
		}
	})
	for i := 0; i < 300 && !done; i++ {
		rb.Env.RunFor(sim.Second)
	}
	rb.Env.Shutdown()
	if !done {
		return t, fmt.Errorf("experiments: rebalance phase did not complete")
	}
	t.Rows = append(t.Rows,
		Row{Label: "rebalance migrations", Measured: float64(rb.Migrations), Unit: "migrations"},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d hosts, %.0f arrivals/s Poisson, %d guests, 150ms mean lifetime, 64MB micro image",
			cfg.Hosts, cfg.ArrivalsPerSec, cfg.Guests),
		"cold start = submit to boot-complete, end to end through scheduler, Builder queue, scrub and boot",
	)
	return t, nil
}
