package experiments

import (
	"xoar/internal/boot"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/osimage"
	"xoar/internal/seceval"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/xenstore"
)

// Ablations isolates the design choices DESIGN.md calls out: the
// parallel-boot orchestration, PCIBack self-destruction, the recovery-box
// fast-restart path, the XenStore Logic/State split, and the §7.1
// hypervisor ring split.
func Ablations() (Table, error) {
	t := Table{ID: "ablations", Title: "Design-choice ablations"}

	// 1. Parallel vs serialized boot (the Table 6.2 mechanism).
	bootTime := func(serialize bool) (float64, error) {
		env := sim.NewEnv(1)
		h := hv.New(env, hw.NewMachine(env))
		var pl *boot.Platform
		var err error
		env.Spawn("boot", func(p *sim.Proc) {
			pl, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{Serialize: serialize})
		})
		env.RunFor(300 * sim.Second)
		defer env.Shutdown()
		if err != nil {
			return 0, err
		}
		return pl.Timings.Done.Seconds(), nil
	}
	par, err := bootTime(false)
	if err != nil {
		return t, err
	}
	ser, err := bootTime(true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		Row{Label: "full boot, parallel (Bootstrapper)", Measured: par, Unit: "s"},
		Row{Label: "full boot, serialized (ablated)", Measured: ser, Unit: "s"},
	)

	// 2. PCIBack destruction: resident control-plane domains at steady state.
	countDomains := func(destroy bool) (float64, error) {
		env := sim.NewEnv(1)
		h := hv.New(env, hw.NewMachine(env))
		var err error
		env.Spawn("boot", func(p *sim.Proc) {
			_, err = boot.BootXoar(p, h, osimage.DefaultCatalog(), boot.Options{DestroyPCIBack: destroy})
		})
		env.RunFor(300 * sim.Second)
		defer env.Shutdown()
		if err != nil {
			return 0, err
		}
		return float64(len(h.Domains())), nil
	}
	resident, err := countDomains(false)
	if err != nil {
		return t, err
	}
	destroyed, err := countDomains(true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		Row{Label: "control domains, PCIBack resident", Measured: resident, Unit: "doms"},
		Row{Label: "control domains, PCIBack destroyed (§5.3)", Measured: destroyed, Unit: "doms"},
	)

	// 3. Fast vs slow NetBack restart downtime (the Figure 6.3 mechanism).
	downtime := func(fast bool) (float64, error) {
		rig, err := BootRig(Xoar, 1)
		if err != nil {
			return 0, err
		}
		defer rig.Close()
		if _, err := rig.NewGuest("g"); err != nil {
			return 0, err
		}
		eng := snapshot.NewEngine(rig.HV, rig.PL.BuilderDom)
		if err := eng.Manage(rig.PL.NetBacks[0].AsRestartable(), snapshot.Policy{
			Kind: snapshot.PolicyTimer, Interval: sim.Second, Fast: fast,
		}); err != nil {
			return 0, err
		}
		rig.Env.RunFor(10 * sim.Second)
		st, _ := eng.Stats(rig.PL.NetBacks[0].Dom)
		if st.Restarts == 0 {
			return 0, nil
		}
		return st.TotalDowntime.Seconds() / float64(st.Restarts) * 1000, nil
	}
	slow, err := downtime(false)
	if err != nil {
		return t, err
	}
	fast, err := downtime(true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		Row{Label: "NetBack restart downtime, renegotiate (slow)", Measured: slow, Paper: 260, Unit: "ms"},
		Row{Label: "NetBack restart downtime, recovery box (fast)", Measured: fast, Paper: 140, Unit: "ms"},
	)

	// 4. XenStore Logic/State split: mutations preserved across N Logic
	// microreboots (a monolithic XenStore would lose or have to re-load them).
	envXS := sim.NewEnv(1)
	logic := xenstore.NewLogic(envXS, xenstore.NewState())
	conn := logic.Connect(0, true)
	for i := 0; i < 200; i++ {
		conn.Write(xenstore.TxNone, "/persist/key", "v")
		logic.Restart()
	}
	survived := 0.0
	if v, err := conn.Read(xenstore.TxNone, "/persist/key"); err == nil && v == "v" {
		survived = 1
	}
	t.Rows = append(t.Rows,
		Row{Label: "XenStore-Logic microreboots survived", Measured: float64(logic.Restarts()), Unit: "restarts"},
		Row{Label: "contents intact after Logic restarts (1=yes)", Measured: survived, Unit: ""},
	)

	// 5. §7.1 hypervisor split: share of hypercall surface and of observed
	// traffic that could leave ring 0.
	rig, err := BootRig(Xoar, 1)
	if err != nil {
		return t, err
	}
	if _, err := rig.NewGuest("g"); err != nil {
		rig.Close()
		return t, err
	}
	split := seceval.HVSplit(rig.HV.HypercallCount)
	rig.Close()
	t.Rows = append(t.Rows,
		Row{Label: "hypercalls requiring ring 0", Measured: float64(len(split.Ring0Calls)), Unit: "calls"},
		Row{Label: "hypercalls deprivilegeable (§7.1)", Measured: float64(len(split.DeprivilegedCalls)), Unit: "calls"},
		Row{Label: "observed traffic, ring 0", Measured: float64(split.Ring0Traffic), Unit: "invocations"},
		Row{Label: "observed traffic, deprivilegeable", Measured: float64(split.DeprivilegedTraffic), Unit: "invocations"},
	)
	return t, nil
}
