package experiments

import (
	"fmt"

	"xoar/internal/seceval"
	"xoar/internal/xtypes"
)

// TCBSize reproduces the §6.2 TCB comparison: lines of code trusted with
// arbitrary guest-memory access, per profile, computed from live privilege
// state.
func TCBSize() (Table, error) {
	t := Table{ID: "sec-tcb", Title: "TCB size: code with arbitrary guest-memory access (§6.2)"}
	for _, prof := range []Profile{Dom0, Xoar} {
		rig, err := BootRig(prof, 1)
		if err != nil {
			return t, err
		}
		rep := seceval.TCB(rig.PL)
		rig.Close()
		paperSrc, paperComp := 0.0, 0.0
		if prof == Dom0 {
			paperSrc, paperComp = 7_600_000, 400_000
		} else {
			// Paper counts both nanOS components (13K/8K); steady state
			// leaves only the 8K-source Builder.
			paperSrc, paperComp = 13_000, 8_000
		}
		t.Rows = append(t.Rows,
			Row{Label: prof.String() + " source LoC", Measured: float64(rep.SourceLoC), Paper: paperSrc, Unit: "LoC"},
			Row{Label: prof.String() + " compiled LoC", Measured: float64(rep.CompLoC), Paper: paperComp, Unit: "LoC"},
		)
		for _, c := range rep.Components {
			t.Rows = append(t.Rows, Row{
				Label:    fmt.Sprintf("  %s component: %s (%s)", prof, c.Name, c.Image),
				Measured: float64(c.SrcLoC),
				Unit:     "LoC",
			})
		}
	}
	t.Rows = append(t.Rows, Row{Label: "xen hypervisor (both)", Measured: 280_000, Paper: 280_000, Unit: "LoC"})
	t.Notes = append(t.Notes,
		"xoar steady state holds only the Builder (8K source); the paper's 13K adds the boot-time Bootstrapper")
	return t, nil
}

// KnownAttacks reproduces §6.2.1: containment outcome counts for the 23
// guest-sourced vulnerabilities on both profiles, computed from the actual
// privilege graph of a two-tenant deployment.
func KnownAttacks() (Table, error) {
	t := Table{ID: "sec-attacks", Title: "Known attacks: containment of the 23 guest-sourced CVEs (§6.2.1)"}
	paperXoar := map[seceval.Outcome]float64{
		seceval.OutContained:     7,
		seceval.OutSharedClients: 11,
		seceval.OutMitigated:     2,
		seceval.OutNotApplicable: 2,
		seceval.OutWholeHost:     1,
	}
	for _, prof := range []Profile{Dom0, Xoar} {
		rig, err := BootRig(prof, 1)
		if err != nil {
			return t, err
		}
		// Two co-located tenants sharing the driver shards.
		attacker, err := rig.NewGuest("attacker")
		if err != nil {
			rig.Close()
			return t, err
		}
		if _, err := rig.NewGuest("victim"); err != nil {
			rig.Close()
			return t, err
		}
		an := seceval.NewAnalyzer(rig.PL, seceval.Options{
			DeprivilegedGuests: true,
			Attacker:           attacker.Dom,
			QemuOf:             xtypes.DomIDNone,
		})
		rep := an.Run()
		rig.Close()
		for _, o := range []seceval.Outcome{
			seceval.OutContained, seceval.OutSharedClients, seceval.OutMitigated,
			seceval.OutNotApplicable, seceval.OutWholeHost,
		} {
			paper := 0.0
			if prof == Xoar {
				paper = paperXoar[o]
			} else if o == seceval.OutWholeHost {
				paper = 19 // all live non-mitigated attacks own the platform
			} else if o == seceval.OutMitigated {
				paper = 2
			} else if o == seceval.OutNotApplicable {
				paper = 2
			}
			t.Rows = append(t.Rows, Row{
				Label:    fmt.Sprintf("%s %s", prof, o),
				Measured: float64(rep.ByOutcome[o]),
				Paper:    paper,
				Unit:     "CVEs",
			})
		}
	}
	t.Notes = append(t.Notes,
		"dom0 row: with guests deprivileged, 19 of 23 attacks compromise the whole platform; without, 21 do",
		"xoar: device-emulation attacks collapse to one guest's QemuVM; driver/toolstack attacks reach only co-clients")
	return t, nil
}
