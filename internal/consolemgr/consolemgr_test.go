package consolemgr

import (
	"errors"
	"testing"

	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

func setup(t *testing.T, grantPorts bool) (*sim.Env, *hv.Hypervisor, *Manager, *hv.Domain) {
	t.Helper()
	env := sim.NewEnv(1)
	machine := hw.NewMachine(env)
	h := hv.New(env, machine)
	cm, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "console", MemMB: 128, Shard: true})
	h.Unpause(hv.SystemCaller, cm.ID)
	guest, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "guest", MemMB: 64})
	h.Unpause(hv.SystemCaller, guest.ID)
	if grantPorts {
		if err := h.GrantIOPorts(hv.SystemCaller, cm.ID, "console"); err != nil {
			t.Fatal(err)
		}
	}
	logic := xenstore.NewLogic(env, xenstore.NewState())
	m := New(h, cm.ID, machine.Serial, logic.Connect(cm.ID, true))
	return env, h, m, guest
}

func TestStartRequiresIOPorts(t *testing.T) {
	env, _, m, _ := setup(t, false)
	var err error
	env.Spawn("boot", func(p *sim.Proc) { err = m.Start(p) })
	env.RunAll()
	if !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("start without ports: %v", err)
	}
}

func TestConsoleRoundTrip(t *testing.T) {
	env, _, m, guest := setup(t, true)
	env.Spawn("boot", func(p *sim.Proc) {
		if err := m.Start(p); err != nil {
			t.Error(err)
			return
		}
		m.CreateConsole(guest.ID)
		if err := m.GuestWrite(guest.ID, "Linux version 2.6.31"); err != nil {
			t.Error(err)
		}
		if err := m.GuestWrite(guest.ID, "login:"); err != nil {
			t.Error(err)
		}
	})
	env.RunFor(sim.Second)
	env.Shutdown()
	buf := m.Buffer(guest.ID)
	if len(buf) != 2 || buf[1] != "login:" {
		t.Fatalf("buffer = %v", buf)
	}
	if m.LinesHandled != 2 {
		t.Fatalf("lines = %d", m.LinesHandled)
	}
	// Output reached the physical serial port too.
	if got := m.Serial.Log(); len(got) != 2 {
		t.Fatalf("serial log = %v", got)
	}
}

func TestWriteWithoutConsole(t *testing.T) {
	env, _, m, guest := setup(t, true)
	var err error
	env.Spawn("boot", func(p *sim.Proc) {
		m.Start(p)
		err = m.GuestWrite(guest.ID, "x")
	})
	env.RunFor(sim.Second)
	env.Shutdown()
	if !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("write without console: %v", err)
	}
}

func TestWriteBeforeStart(t *testing.T) {
	_, _, m, guest := setup(t, true)
	if err := m.GuestWrite(guest.ID, "x"); !errors.Is(err, xtypes.ErrShutdown) {
		t.Fatalf("write before start: %v", err)
	}
}

func TestRemoveConsole(t *testing.T) {
	env, _, m, guest := setup(t, true)
	env.Spawn("boot", func(p *sim.Proc) {
		m.Start(p)
		m.CreateConsole(guest.ID)
		m.CreateConsole(guest.ID) // idempotent
		if m.Consoles() != 1 {
			t.Errorf("consoles = %d", m.Consoles())
		}
		m.RemoveConsole(guest.ID)
		if err := m.GuestWrite(guest.ID, "x"); !errors.Is(err, xtypes.ErrNotFound) {
			t.Errorf("write after removal: %v", err)
		}
	})
	env.RunFor(sim.Second)
	env.Shutdown()
}

func TestConsoleInputPath(t *testing.T) {
	env, h, m, guest := setup(t, true)
	// Route the console VIRQ to the manager, as the Bootstrapper does.
	h.AssignPrivileges(hv.SystemCaller, m.Dom, hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperSetVIRQ}})
	env.Spawn("flow", func(p *sim.Proc) {
		h.RouteHardwareVIRQ(m.Dom, xtypes.VIRQConsole, m.Dom)
		if err := m.Start(p); err != nil {
			t.Error(err)
			return
		}
		m.CreateConsole(guest.ID)
		if err := m.Attach(guest.ID); err != nil {
			t.Error(err)
			return
		}
		if err := m.InjectInput("root"); err != nil {
			t.Error(err)
			return
		}
		line, ok := m.GuestReadInput(p, guest.ID)
		if !ok || line != "root" {
			t.Errorf("guest read = %q, %v", line, ok)
		}
		_ = line
	})
	env.RunFor(sim.Second)
	env.Shutdown()
	if m.InputLines != 1 {
		t.Fatalf("input lines = %d", m.InputLines)
	}
}

func TestInputWithoutVIRQRouteDenied(t *testing.T) {
	env, _, m, guest := setup(t, true)
	env.Spawn("flow", func(p *sim.Proc) {
		m.Start(p)
		m.CreateConsole(guest.ID)
		m.Attach(guest.ID)
		// The hypervisor never routed VIRQConsole here (§5.8's hard-coded
		// Dom0 assumption, unfixed): input must be refused.
		if err := m.InjectInput("x"); !errors.Is(err, xtypes.ErrPerm) {
			t.Errorf("input without route: %v", err)
		}
	})
	env.RunFor(sim.Second)
	env.Shutdown()
}

func TestAttachUnknownConsole(t *testing.T) {
	env, _, m, _ := setup(t, true)
	env.Spawn("flow", func(p *sim.Proc) {
		m.Start(p)
		if err := m.Attach(99); !errors.Is(err, xtypes.ErrNotFound) {
			t.Errorf("attach unknown: %v", err)
		}
	})
	env.RunFor(sim.Second)
	env.Shutdown()
}
