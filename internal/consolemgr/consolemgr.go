// Package consolemgr implements the Console Manager shard (§5.5): it hosts
// the user-space console daemon (xenconsoled), exposing a virtual serial
// console to every guest and multiplexing output onto the physical serial
// port that Xen retains.
//
// In Xoar the Console Manager boots before any other Linux VM, skips PCI
// enumeration entirely (the §5.5 boot-path modification, reflected in its OS
// image's boot time), and runs deprivileged: its console rings are shared
// via Builder-created grants rather than Dom0-style foreign mapping (§5.6).
package consolemgr

import (
	"fmt"

	"xoar/internal/hv"
	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"

	hwpkg "xoar/internal/hw"
)

// perLineCPU is daemon CPU per console line (copy out of the ring, log).
const perLineCPU = 5 * sim.Microsecond

// vconsole is one guest's virtual console.
type vconsole struct {
	guest  xtypes.DomID
	lines  *sim.Chan[string]
	buffer []string
	pump   *sim.Proc
	// input queues operator keystrokes routed to this guest.
	input *sim.Chan[string]
}

// Manager is the Console Manager component.
type Manager struct {
	H      *hv.Hypervisor
	Dom    xtypes.DomID
	Serial *hwpkg.Serial
	XS     *xenstore.Conn

	consoles map[xtypes.DomID]*vconsole
	serving  *sim.Gate

	// attached selects which guest's console receives physical input, like
	// xenconsole's active session.
	attached xtypes.DomID

	LinesHandled int64
	InputLines   int64
}

// New constructs the Console Manager in domain dom.
func New(h *hv.Hypervisor, dom xtypes.DomID, serial *hwpkg.Serial, xs *xenstore.Conn) *Manager {
	return &Manager{
		H:        h,
		Dom:      dom,
		Serial:   serial,
		XS:       xs,
		consoles: make(map[xtypes.DomID]*vconsole),
		serving:  sim.NewGate(h.Env),
	}
}

// Start binds the console VIRQ and opens for service. The hypervisor must
// have routed VIRQConsole and the console I/O ports to this domain (§5.8).
func (m *Manager) Start(p *sim.Proc) error {
	if !m.H.HasIOPorts(m.Dom, "console") {
		return fmt.Errorf("consolemgr: no console I/O-port access: %w", xtypes.ErrPerm)
	}
	if _, err := m.H.Evtchn.BindVIRQ(m.Dom, xtypes.VIRQConsole); err != nil {
		return err
	}
	m.XS.Write(xenstore.TxNone, fmt.Sprintf("/local/domain/%d/console-daemon", m.Dom), "running")
	m.serving.Open()
	return nil
}

// Serving reports whether the daemon is up.
func (m *Manager) Serving() bool { return !m.serving.Closed() }

// CreateConsole provisions a virtual console for guest and starts its pump.
func (m *Manager) CreateConsole(guest xtypes.DomID) {
	if _, ok := m.consoles[guest]; ok {
		return
	}
	vc := &vconsole{guest: guest, lines: sim.NewChan[string](m.H.Env), input: sim.NewChan[string](m.H.Env)}
	m.consoles[guest] = vc
	vc.pump = m.H.Env.Spawn(fmt.Sprintf("console-%v", guest), func(p *sim.Proc) {
		for {
			line, ok := vc.lines.Recv(p)
			if !ok {
				return
			}
			m.H.Compute(p, m.Dom, perLineCPU)
			vc.buffer = append(vc.buffer, line)
			m.Serial.WriteLine(fmt.Sprintf("[%v] %s", guest, line))
			m.LinesHandled++
		}
	})
}

// RemoveConsole tears down a guest's console.
func (m *Manager) RemoveConsole(guest xtypes.DomID) {
	vc, ok := m.consoles[guest]
	if !ok {
		return
	}
	vc.lines.Close()
	delete(m.consoles, guest)
}

// GuestWrite is the frontend path: a guest emits a console line. It fails
// while the manager is down or the guest has no console.
func (m *Manager) GuestWrite(guest xtypes.DomID, line string) error {
	if m.serving.Closed() {
		return fmt.Errorf("consolemgr: not serving: %w", xtypes.ErrShutdown)
	}
	vc, ok := m.consoles[guest]
	if !ok {
		return fmt.Errorf("consolemgr: no console for %v: %w", guest, xtypes.ErrNotFound)
	}
	vc.lines.Send(line)
	return nil
}

// Buffer returns the captured output of a guest's console.
func (m *Manager) Buffer(guest xtypes.DomID) []string {
	vc, ok := m.consoles[guest]
	if !ok {
		return nil
	}
	out := make([]string, len(vc.buffer))
	copy(out, vc.buffer)
	return out
}

// Consoles reports the number of live virtual consoles.
func (m *Manager) Consoles() int { return len(m.consoles) }

// Attach directs physical console input to guest's virtual console —
// xenconsole's session switch. The Console Manager must hold the console
// VIRQ route for input to reach it at all.
func (m *Manager) Attach(guest xtypes.DomID) error {
	if _, ok := m.consoles[guest]; !ok {
		return fmt.Errorf("consolemgr: attach %v: %w", guest, xtypes.ErrNotFound)
	}
	m.attached = guest
	return nil
}

// InjectInput models operator keystrokes arriving on the physical serial
// port: the hardware raises the console VIRQ, and — if it is routed to this
// manager — the line lands in the attached guest's input queue.
func (m *Manager) InjectInput(line string) error {
	if m.serving.Closed() {
		return fmt.Errorf("consolemgr: not serving: %w", xtypes.ErrShutdown)
	}
	if route, ok := m.H.VIRQRoute(xtypes.VIRQConsole); !ok || route != m.Dom {
		return fmt.Errorf("consolemgr: console VIRQ not routed here: %w", xtypes.ErrPerm)
	}
	m.H.InjectHardwareVIRQ(xtypes.VIRQConsole)
	vc, ok := m.consoles[m.attached]
	if !ok {
		return fmt.Errorf("consolemgr: no attached console: %w", xtypes.ErrNotFound)
	}
	vc.input.Send(line)
	m.InputLines++
	return nil
}

// GuestReadInput blocks the guest process until an input line arrives on its
// virtual console.
func (m *Manager) GuestReadInput(p *sim.Proc, guest xtypes.DomID) (string, bool) {
	vc, ok := m.consoles[guest]
	if !ok {
		return "", false
	}
	return vc.input.Recv(p)
}
